#!/usr/bin/env bash
# Kill-and-resume smoke (ctest + CI): run the canned event stream halfway,
# snapshot the daemon, restore the snapshot into a brand-new process, feed
# it the remainder, and require the two decision logs concatenated to be
# byte-identical to the uninterrupted run's committed golden — the
# survivability contract of the online admission service.
#
#   tools/serve_resume_smoke.sh <taskdrop_cli> <events.stream> <decisions.golden>
set -euo pipefail

cli=${1:?usage: serve_resume_smoke.sh <taskdrop_cli> <events.stream> <decisions.golden>}
stream=${2:?usage: serve_resume_smoke.sh <taskdrop_cli> <events.stream> <decisions.golden>}
golden=${3:?usage: serve_resume_smoke.sh <taskdrop_cli> <events.stream> <decisions.golden>}

tmp_dir=$(mktemp -d)
trap 'rm -rf "$tmp_dir"' EXIT

# Split at a line boundary halfway through the stream. The daemon confirms
# every Start offer immediately, so its state after N lines is exactly its
# mid-stream state — a split is equivalent to a kill at that point.
total=$(wc -l < "$stream")
half=$((total / 2))
head -n "$half" "$stream" > "$tmp_dir/part1.stream"
tail -n +"$((half + 1))" "$stream" > "$tmp_dir/part2.stream"

serve_args=(--scenario=spec_hc --mapper=PAM --dropper=heuristic --volatile)

"$cli" serve "${serve_args[@]}" --stream="$tmp_dir/part1.stream" \
    --out="$tmp_dir/dec1.log" --stats-out="$tmp_dir/stats1.txt" \
    --snapshot-out="$tmp_dir/snapshot.txt"
"$cli" serve "${serve_args[@]}" --stream="$tmp_dir/part2.stream" \
    --out="$tmp_dir/dec2.log" --stats-out="$tmp_dir/stats2.txt" \
    --restore="$tmp_dir/snapshot.txt"

cat "$tmp_dir/dec1.log" "$tmp_dir/dec2.log" > "$tmp_dir/resumed.log"
diff "$golden" "$tmp_dir/resumed.log"

# The snapshot must also restore-and-resnapshot to identical bytes.
"$cli" serve "${serve_args[@]}" --stream=/dev/null \
    --out=/dev/null --stats-out=/dev/null \
    --restore="$tmp_dir/snapshot.txt" --snapshot-out="$tmp_dir/snapshot2.txt"
diff "$tmp_dir/snapshot.txt" "$tmp_dir/snapshot2.txt"

# --- Periodic checkpoints + a genuine mid-stream SIGKILL. ---------------
# Feed exactly `every` effective events (blank/comment lines do not count)
# through a fifo into a daemon running --snapshot-every=every: the single
# checkpoint lands atomically right after event `every`'s decisions are
# flushed. The daemon is then SIGKILLed while its stream is still open —
# no clean shutdown, no EOF — and a fresh process restored from the
# checkpoint serves the remainder. The concatenated decision logs must
# again match the golden byte for byte.
every=20
cut_line=$(awk -v n="$every" '
  !/^[ \t\r]*(#|$)/ { if (--n == 0) { print NR; exit } }
' "$stream")
head -n "$cut_line" "$stream" > "$tmp_dir/live.stream"
tail -n +"$((cut_line + 1))" "$stream" > "$tmp_dir/rest.stream"

fifo="$tmp_dir/events.fifo"
mkfifo "$fifo"
"$cli" serve "${serve_args[@]}" --stream="$fifo" \
    --out="$tmp_dir/dec_kill.log" --stats-out="$tmp_dir/stats_kill.txt" \
    --snapshot-out="$tmp_dir/checkpoint.txt" --snapshot-every="$every" &
daemon=$!
# Keep the fifo's write end open on fd 3 so the daemon never sees EOF:
# the kill below genuinely lands mid-stream.
exec 3> "$fifo"
cat "$tmp_dir/live.stream" >&3
for _ in $(seq 1 1000); do
  [[ -s "$tmp_dir/checkpoint.txt" ]] && break
  sleep 0.01
done
if [[ ! -s "$tmp_dir/checkpoint.txt" ]]; then
  kill -9 "$daemon" 2>/dev/null || true
  echo "serve_resume_smoke: periodic checkpoint never appeared" >&2
  exit 1
fi
kill -9 "$daemon" 2>/dev/null || true
wait "$daemon" 2>/dev/null || true
exec 3>&-

"$cli" serve "${serve_args[@]}" --stream="$tmp_dir/rest.stream" \
    --out="$tmp_dir/dec_rest.log" --stats-out="$tmp_dir/stats_rest.txt" \
    --restore="$tmp_dir/checkpoint.txt"
cat "$tmp_dir/dec_kill.log" "$tmp_dir/dec_rest.log" \
    > "$tmp_dir/checkpointed.log"
diff "$golden" "$tmp_dir/checkpointed.log"

echo "serve resume smoke OK: killed after $half/$total lines (snapshot)" \
     "and SIGKILLed mid-stream after $every events (periodic checkpoint);" \
     "both resumed logs are byte-identical to $(basename "$golden")"
