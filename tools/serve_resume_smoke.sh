#!/usr/bin/env bash
# Kill-and-resume smoke (ctest + CI): run the canned event stream halfway,
# snapshot the daemon, restore the snapshot into a brand-new process, feed
# it the remainder, and require the two decision logs concatenated to be
# byte-identical to the uninterrupted run's committed golden — the
# survivability contract of the online admission service.
#
#   tools/serve_resume_smoke.sh <taskdrop_cli> <events.stream> <decisions.golden>
set -euo pipefail

cli=${1:?usage: serve_resume_smoke.sh <taskdrop_cli> <events.stream> <decisions.golden>}
stream=${2:?usage: serve_resume_smoke.sh <taskdrop_cli> <events.stream> <decisions.golden>}
golden=${3:?usage: serve_resume_smoke.sh <taskdrop_cli> <events.stream> <decisions.golden>}

tmp_dir=$(mktemp -d)
trap 'rm -rf "$tmp_dir"' EXIT

# Split at a line boundary halfway through the stream. The daemon confirms
# every Start offer immediately, so its state after N lines is exactly its
# mid-stream state — a split is equivalent to a kill at that point.
total=$(wc -l < "$stream")
half=$((total / 2))
head -n "$half" "$stream" > "$tmp_dir/part1.stream"
tail -n +"$((half + 1))" "$stream" > "$tmp_dir/part2.stream"

serve_args=(--scenario=spec_hc --mapper=PAM --dropper=heuristic --volatile)

"$cli" serve "${serve_args[@]}" --stream="$tmp_dir/part1.stream" \
    --out="$tmp_dir/dec1.log" --stats-out="$tmp_dir/stats1.txt" \
    --snapshot-out="$tmp_dir/snapshot.txt"
"$cli" serve "${serve_args[@]}" --stream="$tmp_dir/part2.stream" \
    --out="$tmp_dir/dec2.log" --stats-out="$tmp_dir/stats2.txt" \
    --restore="$tmp_dir/snapshot.txt"

cat "$tmp_dir/dec1.log" "$tmp_dir/dec2.log" > "$tmp_dir/resumed.log"
diff "$golden" "$tmp_dir/resumed.log"

# The snapshot must also restore-and-resnapshot to identical bytes.
"$cli" serve "${serve_args[@]}" --stream=/dev/null \
    --out=/dev/null --stats-out=/dev/null \
    --restore="$tmp_dir/snapshot.txt" --snapshot-out="$tmp_dir/snapshot2.txt"
diff "$tmp_dir/snapshot.txt" "$tmp_dir/snapshot2.txt"

echo "serve resume smoke OK: killed after $half/$total lines," \
     "resumed log is byte-identical to $(basename "$golden")"
