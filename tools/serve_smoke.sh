#!/usr/bin/env bash
# Online-serve smoke (ctest + CI): pipe the canned event stream through
# `taskdrop_cli serve` and require the decision log to be byte-identical
# to the committed golden — the online admission service's end-to-end
# determinism contract (stats go to a side channel, so the log carries no
# timing noise).
#
#   tools/serve_smoke.sh <taskdrop_cli> <events.stream> <decisions.golden>
set -euo pipefail

cli=${1:?usage: serve_smoke.sh <taskdrop_cli> <events.stream> <decisions.golden>}
stream=${2:?usage: serve_smoke.sh <taskdrop_cli> <events.stream> <decisions.golden>}
golden=${3:?usage: serve_smoke.sh <taskdrop_cli> <events.stream> <decisions.golden>}

tmp_dir=$(mktemp -d)
trap 'rm -rf "$tmp_dir"' EXIT

"$cli" serve --scenario=spec_hc --mapper=PAM --dropper=heuristic \
    --volatile --stream="$stream" --out="$tmp_dir/decisions.log" \
    --stats-out="$tmp_dir/stats.txt"
diff "$golden" "$tmp_dir/decisions.log"
cat "$tmp_dir/stats.txt"
echo "serve smoke OK: decision log is byte-identical to $(basename "$golden")"
