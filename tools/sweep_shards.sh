#!/usr/bin/env bash
# Fan one sweep across N local shard processes and merge the shard
# reports into the report a single-process run would have produced
# (bit for bit — see the "Sharded sweeps" section of the README).
#
#   tools/sweep_shards.sh <taskdrop_cli> <shards> <out.json> [sweep args...]
#
# e.g.
#
#   tools/sweep_shards.sh build/tools/taskdrop_cli 4 grid.json \
#       --spec=specs/grid.sweep
#
# Every extra argument is passed to each `taskdrop_cli sweep` invocation,
# so axis overrides (--trials=2, --mapper=PAM,MM, ...) shard exactly like
# spec files. Size N against BENCH_macro.json: one shard costs roughly
# (units / N) x the macro per-trial time of the heaviest cell.
#
# Unless the caller passes --threads, each shard process is capped at
# (cores / N) worker threads so N local shards share the machine instead
# of oversubscribing it N-fold.
set -euo pipefail

if [[ $# -lt 3 ]]; then
  echo "usage: sweep_shards.sh <taskdrop_cli> <shards> <out.json> [sweep args...]" >&2
  exit 2
fi
cli=$1
shards=$2
out=$3
shift 3
if ! [[ "$shards" =~ ^[0-9]+$ ]] || (( shards < 1 )); then
  echo "sweep_shards: shard count must be a positive integer, got '$shards'" >&2
  exit 2
fi

threads_given=0
for arg in "$@"; do
  [[ "$arg" == --threads=* ]] && threads_given=1
done
if (( ! threads_given )); then
  cores=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
  per_shard=$(( cores / shards ))
  (( per_shard < 1 )) && per_shard=1
  set -- "$@" --threads="$per_shard"
fi

tmp_dir=$(mktemp -d)
trap 'rm -rf "$tmp_dir"' EXIT

pids=()
for (( i = 0; i < shards; i++ )); do
  "$cli" sweep "$@" --shard="$i/$shards" --json \
      --out="$tmp_dir/shard_$i.json" &
  pids+=("$!")
done

failed=0
for pid in "${pids[@]}"; do
  wait "$pid" || failed=1
done
if (( failed )); then
  echo "sweep_shards: a shard process failed" >&2
  exit 1
fi

files=()
for (( i = 0; i < shards; i++ )); do
  files+=("$tmp_dir/shard_$i.json")
done
"$cli" merge "${files[@]}" --format=json --out="$out"
