#!/usr/bin/env python3
"""Static layering and project-rule lint for the taskdrop tree.

Checks, over src/, tools/, bench/ and examples/ (tests/ is exempt from the
layering DAG — suites may reach into any layer):

1. *Module layering*: `#include "module/..."` edges must respect the DAG

       util <- prob <- {pet, cost, workload} <- {core, sched, sim, online}
            <- {metrics, exp} <- {cli, bench, examples}

   A module may include its own layer (the sim <-> core <-> sched cycles
   are deliberate — see src/CMakeLists.txt) and any lower layer, never a
   higher one.

2. *No assert-only validation in src/prob*: the prob layer promises real
   (throwing) error paths that survive Release builds, so `assert(` is
   banned there outright (static_assert stays fine).

3. *No direct convolve calls outside the prob layer*: everything above prob
   must run convolutions through the PmfWorkspace `*_into` kernels so the
   hot paths stay allocation-free. `convolve(` / `deadline_convolve(` are
   flagged outside src/prob; a deliberate exception (e.g. a benchmark of
   the allocating kernel itself) carries a
   `layering-allow(direct-convolve)` comment on the same or previous line.

4. *No FFT-plan bypass outside the prob layer*: the radix-2 kernel in
   `prob/fft.hpp` does not preserve the direct kernels' summation order, so
   whether it runs must stay a prob-internal decision (the measured
   crossover gate inside the `*_into` kernels). Including `prob/fft.hpp` or
   naming `FftPlan` outside src/prob is flagged; a deliberate exception
   (e.g. a benchmark pinning the gate) carries a
   `layering-allow(fft-plan)` comment on the same or previous line.

5. *No floating-point literal ==/!= in src/*: bitwise float comparison
   belongs to the lockdown test suites; in src/ an exact compare against a
   float literal is only allowed with a justifying `float-eq-ok` comment
   (the sparse-skip `p[i] == 0.0` idiom).

Exit status 0 when clean, 1 with one line per violation otherwise.
`--dot FILE` additionally writes the module-level include graph (violating
edges in red) for the CI artifact.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

# Layer index per module; an include edge a -> b is legal iff
# layer(b) <= layer(a).
LAYERS = {
    "util": 0,
    "prob": 1,
    "pet": 2,
    "cost": 2,
    "workload": 2,
    "core": 3,
    "sched": 3,
    "sim": 3,
    "online": 3,
    "metrics": 4,
    "exp": 4,
    "cli": 5,
    "bench": 5,
    "examples": 5,
}

SOURCE_SUFFIXES = {".cpp", ".hpp", ".cc", ".hh", ".h"}

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"', re.MULTILINE)
ASSERT_RE = re.compile(r"(?<![\w_])assert\s*\(")
DIRECT_CONVOLVE_RE = re.compile(r"(?<![\w_])(?:deadline_)?convolve\s*\(")
FFT_PLAN_RE = re.compile(r"(?<![\w_])FftPlan(?![\w_])")
FFT_INCLUDE = "prob/fft.hpp"
FLOAT_LITERAL = r"[-+]?(?:\d+\.\d*|\.\d+)(?:[eE][-+]?\d+)?"
FLOAT_EQ_RE = re.compile(
    r"(?:[=!]=\s*{lit})|(?:{lit}\s*[=!]=)".format(lit=FLOAT_LITERAL)
)

ALLOW_CONVOLVE = "layering-allow(direct-convolve)"
ALLOW_FFT = "layering-allow(fft-plan)"
ALLOW_FLOAT_EQ = "float-eq-ok"


def strip_comments_and_strings(text: str, keep_strings: bool = False) -> str:
    """Replaces comment (and, unless keep_strings, string-literal) contents
    with spaces, preserving line structure, so the rule regexes never fire
    on documentation. keep_strings=True is used for `#include "path"`
    extraction, where the string *is* the payload."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append('"')
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append("'")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append(text[i:i + 2] if keep_strings else "  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(quote)
            elif c == "\n":  # unterminated; keep line structure
                state = "code"
                out.append("\n")
            else:
                out.append(c if keep_strings else " ")
        i += 1
    return "".join(out)


def module_of(path: Path, root: Path) -> str | None:
    """Maps a file path to its layering module, or None when exempt."""
    rel = path.relative_to(root)
    parts = rel.parts
    if parts[0] == "src" and len(parts) >= 2 and parts[1] in LAYERS:
        return parts[1]
    if parts[0] == "tools":
        return "cli"
    if parts[0] == "bench":
        return "bench"
    if parts[0] == "examples":
        return "examples"
    return None  # tests/ and anything else: exempt from layering


class Violation:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def line_allowed(lines: list[str], index: int, marker: str) -> bool:
    """True when `marker` appears on the flagged line or the one above it
    (markers live in comments, so search the raw source lines)."""
    if marker in lines[index]:
        return True
    return index > 0 and marker in lines[index - 1]


def check_file(path: Path, root: Path, edges: dict) -> list:
    module = module_of(path, root)
    raw = path.read_text(encoding="utf-8", errors="replace")
    raw_lines = raw.splitlines()
    code = strip_comments_and_strings(raw)
    code_lines = code.splitlines()
    violations = []

    if module is not None:
        layer = LAYERS[module]
        include_text = strip_comments_and_strings(raw, keep_strings=True)
        for match in INCLUDE_RE.finditer(include_text):
            target = match.group(1).split("/")[0]
            if target not in LAYERS:
                continue  # non-module include ("test_util.hpp" etc.)
            line = include_text.count("\n", 0, match.start()) + 1
            edges.setdefault((module, target), []).append((path, line))
            if (module != "prob" and match.group(1) == FFT_INCLUDE
                    and not line_allowed(raw_lines, line - 1, ALLOW_FFT)):
                violations.append(
                    Violation(
                        path, line, "fft-plan",
                        "including prob/fft.hpp outside src/prob bypasses "
                        "the measured crossover gate — convolve through the "
                        "*_into kernels (or annotate with "
                        f"{ALLOW_FFT})"))
            if LAYERS[target] > layer:
                violations.append(
                    Violation(
                        path, line, "layering",
                        f"{module} (layer {layer}) must not include "
                        f"{target} (layer {LAYERS[target]})"))

    in_prob = module == "prob"
    for i, text in enumerate(code_lines):
        if in_prob and ASSERT_RE.search(text):
            violations.append(
                Violation(
                    path, i + 1, "prob-assert",
                    "assert-only validation is banned in src/prob — throw "
                    "a real exception (Release builds must reject bad "
                    "inputs too)"))
        if (module is not None and not in_prob
                and DIRECT_CONVOLVE_RE.search(text)
                and not line_allowed(raw_lines, i, ALLOW_CONVOLVE)):
            violations.append(
                Violation(
                    path, i + 1, "direct-convolve",
                    "direct convolve()/deadline_convolve() bypasses "
                    "PmfWorkspace — use the *_into kernels (or annotate "
                    f"with {ALLOW_CONVOLVE})"))
        if (module is not None and not in_prob
                and FFT_PLAN_RE.search(text)
                and not line_allowed(raw_lines, i, ALLOW_FFT)):
            violations.append(
                Violation(
                    path, i + 1, "fft-plan",
                    "FftPlan outside src/prob bypasses the measured "
                    "crossover gate — convolve through the *_into kernels "
                    f"(or annotate with {ALLOW_FFT})"))
        if (module is not None and module not in ("cli", "bench", "examples")
                and FLOAT_EQ_RE.search(text)
                and not line_allowed(raw_lines, i, ALLOW_FLOAT_EQ)):
            violations.append(
                Violation(
                    path, i + 1, "float-eq",
                    "floating-point literal ==/!= outside the lockdown "
                    "tests — compare a tolerance, or annotate a deliberate "
                    f"exact-zero skip with {ALLOW_FLOAT_EQ}"))
    return violations


def scan(root: Path):
    edges: dict = {}
    violations = []
    for top in ("src", "tools", "bench", "examples"):
        base = root / top
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in SOURCE_SUFFIXES and path.is_file():
                violations.extend(check_file(path, root, edges))
    return violations, edges


def write_dot(edges: dict, out_path: Path) -> None:
    bad = {(src, dst) for (src, dst) in edges
           if LAYERS[dst] > LAYERS[src]}
    lines = ["digraph taskdrop_layering {", "  rankdir=BT;"]
    for module, layer in sorted(LAYERS.items(), key=lambda kv: kv[1]):
        lines.append(f'  "{module}" [label="{module}\\n(layer {layer})"];')
    for (src, dst), sites in sorted(edges.items()):
        if src == dst:
            continue
        color = "red" if (src, dst) in bad else "black"
        lines.append(
            f'  "{src}" -> "{dst}" [label="{len(sites)}", color={color}];')
    lines.append("}")
    out_path.write_text("\n".join(lines) + "\n", encoding="utf-8")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--root", type=Path, default=Path(__file__).parent.parent,
                        help="repository root (default: this script's parent)")
    parser.add_argument("--dot", type=Path, default=None,
                        help="write the module include graph as Graphviz DOT")
    args = parser.parse_args(argv)

    violations, edges = scan(args.root.resolve())
    if args.dot is not None:
        write_dot(edges, args.dot)
    for violation in violations:
        print(violation)
    if violations:
        print(f"check_layering: {len(violations)} violation(s)",
              file=sys.stderr)
        return 1
    print(f"check_layering: OK ({len(edges)} module include edges)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
