#!/usr/bin/env bash
# Fault-injection proof for elastic lease-based sweeps (ctest + CI):
#
#   1. SIGKILL a worker mid-lease, let two survivors steal the orphaned
#      lease once its heartbeat expires, and require the merged report to
#      be byte-identical to the single-process run.
#   2. Kill a lone worker mid-sweep, re-launch against the same lease
#      directory, and require the resumed run to skip every landed lease
#      and still merge byte-identically.
#
#   tools/sweep_elastic_kill_test.sh <taskdrop_cli> <spec> [sweep args...]
#
# Every extra argument is passed to the reference run and to each elastic
# worker alike, so axis overrides shard exactly like spec files. The lease
# timeout is kept short (1500 ms) so waiting out a dead worker's claim
# costs the test little; real deployments should use the 30 s default.
set -euo pipefail

cli=${1:?usage: sweep_elastic_kill_test.sh <taskdrop_cli> <spec> [sweep args...]}
spec=${2:?usage: sweep_elastic_kill_test.sh <taskdrop_cli> <spec> [sweep args...]}
shift 2

timeout_ms=1500
tmp_dir=$(mktemp -d)
pids=()
cleanup() {
  for pid in ${pids[@]+"${pids[@]}"}; do kill -9 "$pid" 2>/dev/null || true; done
  rm -rf "$tmp_dir"
}
trap cleanup EXIT

"$cli" sweep --spec="$spec" "$@" --json --out="$tmp_dir/reference.json" \
    > /dev/null

# Waits (up to ~10 s) until a file matching $2 exists in $1 or pid $3 died.
wait_for_glob() {
  local dir=$1 glob=$2 pid=$3 i
  for (( i = 0; i < 1000; i++ )); do
    compgen -G "$dir/$glob" > /dev/null && return 0
    kill -0 "$pid" 2>/dev/null || return 0
    sleep 0.01
  done
  return 0
}

# --- Phase 1: three workers, one SIGKILLed mid-lease. -------------------
kill_dir="$tmp_dir/leases_kill"
elastic=(sweep --spec="$spec" "$@" --elastic --lease-dir="$kill_dir"
         --lease-timeout="$timeout_ms" --lease-units=1 --threads=2
         --progress)

"$cli" "${elastic[@]}" > /dev/null 2> "$tmp_dir/victim.log" &
victim=$!
pids+=("$victim")
# Claim files are created before a lease computes, so killing as soon as
# one appears lands mid-computation with overwhelming probability.
wait_for_glob "$kill_dir" 'lease_*.claim' "$victim"
kill -9 "$victim" 2>/dev/null || true
wait "$victim" 2>/dev/null || true

# Every claim the dead worker orphaned without publishing MUST end up
# computed by a survivor — either by stealing the expired claim outright
# or by acquiring the lease fresh in the instant after a concurrent thief
# renamed the corpse away. (If the victim raced to publish everything
# first, recovery is trivially exercised via the skip path — still a
# valid run.)
orphans=()
for claim in "$kill_dir"/lease_*.claim; do
  if [[ -e "$claim" && ! -e "${claim%.claim}.json" ]]; then
    name=$(basename "$claim" .claim)
    orphans+=("${name#lease_}")
  fi
done

"$cli" "${elastic[@]}" > "$tmp_dir/worker1.out" 2> "$tmp_dir/worker1.log" &
w1=$!
"$cli" "${elastic[@]}" > "$tmp_dir/worker2.out" 2> "$tmp_dir/worker2.log" &
w2=$!
pids+=("$w1" "$w2")
wait "$w1"
wait "$w2"

for id in ${orphans[@]+"${orphans[@]}"}; do
  if ! grep -hq "lease $id \[.*) published" \
      "$tmp_dir/worker1.log" "$tmp_dir/worker2.log"; then
    echo "sweep_elastic_kill_test: the dead worker orphaned lease $id but" \
         "no survivor reported publishing it" >&2
    exit 1
  fi
done

"$cli" merge "$kill_dir"/lease_*.json --allow-reexecuted --format=json \
    --out="$tmp_dir/killed.json" > /dev/null
if ! cmp "$tmp_dir/reference.json" "$tmp_dir/killed.json"; then
  echo "sweep_elastic_kill_test: merged report after a mid-lease SIGKILL" \
       "differs from the single-process run" >&2
  exit 1
fi

# --- Phase 2: kill a lone worker, re-launch, resume for free. -----------
resume_dir="$tmp_dir/leases_resume"
elastic_resume=(sweep --spec="$spec" "$@" --elastic --lease-dir="$resume_dir"
                --lease-timeout="$timeout_ms" --lease-units=1 --threads=2)

"$cli" "${elastic_resume[@]}" > /dev/null 2>&1 &
solo=$!
pids+=("$solo")
# Kill only after at least one result landed, so the resume genuinely
# starts from a partial directory.
wait_for_glob "$resume_dir" 'lease_*.json' "$solo"
kill -9 "$solo" 2>/dev/null || true
wait "$solo" 2>/dev/null || true
landed=$(ls "$resume_dir"/lease_*.json 2>/dev/null | wc -l)

"$cli" "${elastic_resume[@]}" > "$tmp_dir/resume.out"

skipped=$(grep -o 'skipped=[0-9]*' "$tmp_dir/resume.out" | cut -d= -f2)
if (( skipped < landed )); then
  echo "sweep_elastic_kill_test: resume skipped only $skipped leases but" \
       "$landed results had already landed before the kill" >&2
  exit 1
fi

"$cli" merge "$resume_dir"/lease_*.json --allow-reexecuted --format=json \
    --out="$tmp_dir/resumed.json" > /dev/null
if ! cmp "$tmp_dir/reference.json" "$tmp_dir/resumed.json"; then
  echo "sweep_elastic_kill_test: merged report after kill-and-resume" \
       "differs from the single-process run" >&2
  exit 1
fi

echo "sweep elastic kill test OK: survivors recovered ${#orphans[@]}" \
     "orphaned lease(s) after a mid-lease SIGKILL and resume skipped" \
     "$skipped/$landed landed leases, both byte-identical to the" \
     "single-process report"
