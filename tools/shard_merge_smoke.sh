#!/usr/bin/env bash
# Shard-merge smoke (ctest + CI): run a spec once in-process and once as
# three shard processes + merge, and require the two JSON reports to be
# byte-identical — the sharding subsystem's end-to-end contract.
#
#   tools/shard_merge_smoke.sh <taskdrop_cli> <spec.sweep>
set -euo pipefail

cli=${1:?usage: shard_merge_smoke.sh <taskdrop_cli> <spec.sweep>}
spec=${2:?usage: shard_merge_smoke.sh <taskdrop_cli> <spec.sweep>}

tmp_dir=$(mktemp -d)
trap 'rm -rf "$tmp_dir"' EXIT

"$cli" sweep --spec="$spec" --json --out="$tmp_dir/single.json"
"$(dirname "$0")/sweep_shards.sh" "$cli" 3 "$tmp_dir/merged.json" \
    --spec="$spec"
diff "$tmp_dir/single.json" "$tmp_dir/merged.json"
echo "shard-merge smoke OK: merged report is byte-identical"
