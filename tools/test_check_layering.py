#!/usr/bin/env python3
"""Unit tests for tools/check_layering.py — every rule is exercised on
fixture snippets in a synthetic tree (positive hit, clean negative, and
marker/comment immunity). Run directly or via ctest (lint.check_layering_unit).
"""

import sys
import tempfile
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
import check_layering  # noqa: E402


class FixtureTree:
    """Builds a throwaway repo-shaped tree of fixture files."""

    def __init__(self, root: Path):
        self.root = root

    def write(self, rel: str, text: str) -> Path:
        path = self.root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")
        return path

    def scan(self):
        return check_layering.scan(self.root)


class CheckLayeringTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.tree = FixtureTree(Path(self._tmp.name))

    def tearDown(self):
        self._tmp.cleanup()

    def rules_of(self, violations):
        return [v.rule for v in violations]

    # ------------------------------ layering ------------------------------

    def test_upward_include_is_flagged(self):
        self.tree.write("src/cost/cost_model.hpp",
                        '#include "sim/sim_result.hpp"\n')
        violations, _ = self.tree.scan()
        self.assertEqual(self.rules_of(violations), ["layering"])
        self.assertIn("cost (layer 2) must not include sim (layer 3)",
                      violations[0].message)

    def test_downward_and_same_layer_includes_are_clean(self):
        self.tree.write("src/sim/engine.cpp",
                        '#include "core/dropper.hpp"\n'   # same layer
                        '#include "prob/pmf.hpp"\n'       # lower layer
                        '#include "sim/engine.hpp"\n')    # own module
        violations, edges = self.tree.scan()
        self.assertEqual(violations, [])
        self.assertEqual(len(edges), 3)

    def test_commented_out_include_is_ignored(self):
        self.tree.write("src/util/stats.cpp",
                        '// #include "exp/sweep.hpp"\n'
                        '/* #include "sim/engine.hpp" */\n')
        violations, edges = self.tree.scan()
        self.assertEqual(violations, [])
        self.assertEqual(edges, {})

    def test_tests_are_exempt_from_layering(self):
        self.tree.write("tests/foo_test.cpp",
                        '#include "exp/sweep.hpp"\n'
                        'void f() { assert(1 == 1.0); }\n')
        violations, _ = self.tree.scan()
        self.assertEqual(violations, [])

    def test_tools_and_bench_are_top_layer(self):
        self.tree.write("tools/cli.cpp", '#include "exp/sweep.hpp"\n')
        self.tree.write("bench/bench.cpp", '#include "metrics/report.hpp"\n')
        violations, _ = self.tree.scan()
        self.assertEqual(violations, [])

    # ----------------------------- prob-assert ----------------------------

    def test_assert_in_prob_is_flagged(self):
        self.tree.write("src/prob/pmf.cpp",
                        "void f(int s) { assert(s >= 1); }\n")
        violations, _ = self.tree.scan()
        self.assertEqual(self.rules_of(violations), ["prob-assert"])

    def test_static_assert_in_prob_is_clean(self):
        self.tree.write("src/prob/pmf.cpp",
                        "static_assert(sizeof(int) == 4);\n")
        violations, _ = self.tree.scan()
        self.assertEqual(violations, [])

    def test_assert_mentioned_in_comment_is_clean(self):
        self.tree.write("src/prob/convolution.cpp",
                        "// an assert(x) here would be wrong\n")
        violations, _ = self.tree.scan()
        self.assertEqual(violations, [])

    def test_assert_outside_prob_is_allowed(self):
        self.tree.write("src/sim/engine.cpp",
                        "void f(bool ok) { assert(ok); }\n")
        violations, _ = self.tree.scan()
        self.assertEqual(violations, [])

    # --------------------------- direct-convolve --------------------------

    def test_direct_convolve_outside_prob_is_flagged(self):
        self.tree.write("src/core/model.cpp",
                        "void f() { auto c = convolve(a, b); }\n")
        self.tree.write("src/sched/pam.cpp",
                        "void f() { deadline_convolve(a, b, d); }\n")
        violations, _ = self.tree.scan()
        self.assertEqual(sorted(self.rules_of(violations)),
                         ["direct-convolve", "direct-convolve"])

    def test_workspace_into_kernels_are_clean(self):
        self.tree.write("src/core/model.cpp",
                        "void f() { convolve_into(a, b, ws, out);\n"
                        "  deadline_convolve_into(a, b, d, ws, out); }\n")
        violations, _ = self.tree.scan()
        self.assertEqual(violations, [])

    def test_direct_convolve_inside_prob_is_clean(self):
        self.tree.write("src/prob/convolution.cpp",
                        "Pmf g() { return convolve(a, b); }\n")
        violations, _ = self.tree.scan()
        self.assertEqual(violations, [])

    def test_direct_convolve_marker_suppresses(self):
        self.tree.write(
            "bench/micro.cpp",
            "void f() {\n"
            "  // baseline. layering-allow(direct-convolve)\n"
            "  auto c = convolve(a, b);\n"
            "  deadline_convolve(a, b, d);  "
            "// layering-allow(direct-convolve)\n"
            "}\n")
        violations, _ = self.tree.scan()
        self.assertEqual(violations, [])

    # ------------------------------ fft-plan ------------------------------

    def test_fft_include_outside_prob_is_flagged(self):
        self.tree.write("src/core/model.cpp",
                        '#include "prob/fft.hpp"\n')
        violations, _ = self.tree.scan()
        self.assertEqual(self.rules_of(violations), ["fft-plan"])

    def test_fft_plan_usage_outside_prob_is_flagged(self):
        self.tree.write("src/sched/pam.cpp",
                        "void f() { FftPlan plan; plan.convolve(a); }\n")
        violations, _ = self.tree.scan()
        # Direct FftPlan use trips both the fft-plan rule and (via .convolve)
        # the direct-convolve rule — each bypass is independently real.
        self.assertIn("fft-plan", self.rules_of(violations))

    def test_fft_inside_prob_is_clean(self):
        self.tree.write("src/prob/convolution.cpp",
                        '#include "prob/fft.hpp"\n'
                        "void f(PmfWorkspace& ws) { FftPlan& p = ws.fft; }\n")
        violations, _ = self.tree.scan()
        self.assertEqual(violations, [])

    def test_fft_marker_suppresses(self):
        self.tree.write(
            "bench/micro.cpp",
            "// layering-allow(fft-plan): pins the gate for the A/B curve.\n"
            '#include "prob/fft.hpp"\n')
        violations, _ = self.tree.scan()
        self.assertEqual(violations, [])

    def test_fft_mentioned_in_comment_is_clean(self):
        self.tree.write("src/core/model.cpp",
                        "// wide chains could use an FftPlan some day\n")
        violations, _ = self.tree.scan()
        self.assertEqual(violations, [])

    # ------------------------------ float-eq ------------------------------

    def test_float_literal_equality_is_flagged(self):
        self.tree.write("src/metrics/aggregate.cpp",
                        "bool f(double x) { return x == 0.5; }\n")
        self.tree.write("src/exp/sweep.cpp",
                        "bool g(double x) { return 1.0 != x; }\n")
        violations, _ = self.tree.scan()
        self.assertEqual(sorted(self.rules_of(violations)),
                         ["float-eq", "float-eq"])

    def test_integer_equality_is_clean(self):
        self.tree.write("src/metrics/aggregate.cpp",
                        "bool f(int x) { return x == 5 || x != 0; }\n")
        violations, _ = self.tree.scan()
        self.assertEqual(violations, [])

    def test_float_inequality_comparisons_are_clean(self):
        self.tree.write("src/metrics/aggregate.cpp",
                        "bool f(double x) { return x > 0.0 && x <= 1.5; }\n")
        violations, _ = self.tree.scan()
        self.assertEqual(violations, [])

    def test_float_eq_marker_suppresses(self):
        self.tree.write(
            "src/core/model.cpp",
            "void f(const double* p, int i) {\n"
            "  if (p[i] == 0.0) return;  // float-eq-ok: sparse skip\n"
            "}\n")
        violations, _ = self.tree.scan()
        self.assertEqual(violations, [])

    def test_float_eq_in_string_literal_is_clean(self):
        self.tree.write("src/util/table.cpp",
                        'const char* kMsg = "x == 0.5 is bad";\n')
        violations, _ = self.tree.scan()
        self.assertEqual(violations, [])

    # ------------------------------- output -------------------------------

    def test_dot_output_marks_violating_edges_red(self):
        self.tree.write("src/cost/cost_model.hpp",
                        '#include "sim/sim_result.hpp"\n')
        self.tree.write("src/prob/pmf.cpp", '#include "util/rng.hpp"\n')
        violations, edges = self.tree.scan()
        self.assertEqual(self.rules_of(violations), ["layering"])
        dot_path = self.tree.root / "graph.dot"
        check_layering.write_dot(edges, dot_path)
        dot = dot_path.read_text()
        self.assertIn('"cost" -> "sim" [label="1", color=red]', dot)
        self.assertIn('"prob" -> "util" [label="1", color=black]', dot)

    def test_main_exit_codes(self):
        self.tree.write("src/prob/pmf.cpp", "int x;\n")
        self.assertEqual(check_layering.main(["--root", str(self.tree.root)]),
                         0)
        self.tree.write("src/prob/bad.cpp", "void f() { assert(1); }\n")
        self.assertEqual(check_layering.main(["--root", str(self.tree.root)]),
                         1)


if __name__ == "__main__":
    unittest.main()
