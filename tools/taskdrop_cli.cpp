/* taskdrop_cli — run one experiment configuration from the command line.

     taskdrop_cli --scenario=spec_hc --mapper=PAM --dropper=heuristic \
                  --tasks=3000 --oversub=3.0 --trials=8 [--eta=2] [--beta=1] \
                  [--threshold=0.5] [--gamma=4] [--capacity=6] [--seed=42] \
                  [--bursty] [--failures --mtbf=60000 --mttr=3000] \
                  [--trace-out=trace.csv] [--csv]

   Droppers: reactive | heuristic | optimal | threshold | approx.
   Scenarios: spec_hc | video | homogeneous. */
#include <iostream>
#include <stdexcept>

#include "cost/cost_model.hpp"
#include "exp/experiment.hpp"
#include "metrics/report.hpp"
#include "util/flags.hpp"
#include "workload/trace_io.hpp"

using namespace taskdrop;

namespace {

ScenarioKind parse_scenario(const std::string& name) {
  if (name == "spec_hc") return ScenarioKind::SpecHC;
  if (name == "video") return ScenarioKind::Video;
  if (name == "homogeneous") return ScenarioKind::Homogeneous;
  throw std::invalid_argument("unknown scenario: " + name);
}

DropperConfig parse_dropper(const Flags& flags) {
  const std::string name = flags.get("dropper", "heuristic");
  const int eta = static_cast<int>(flags.get_int("eta", 2));
  const double beta = flags.get_double("beta", 1.0);
  if (name == "reactive") return DropperConfig::reactive_only();
  if (name == "heuristic") return DropperConfig::heuristic(eta, beta);
  if (name == "optimal") return DropperConfig::optimal();
  if (name == "threshold") {
    return DropperConfig::threshold(flags.get_double("threshold", 0.5),
                                    !flags.get_bool("static-threshold"));
  }
  if (name == "approx") return DropperConfig::approximate(eta, beta);
  throw std::invalid_argument("unknown dropper: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Flags flags(argc, argv);

    ExperimentConfig config;
    config.scenario = parse_scenario(flags.get("scenario", "spec_hc"));
    config.mapper = flags.get("mapper", "PAM");
    config.dropper = parse_dropper(flags);
    config.workload.n_tasks = static_cast<int>(flags.get_int("tasks", 3000));
    config.workload.oversubscription = flags.get_double("oversub", 3.0);
    config.workload.gamma =
        flags.get_double("gamma", config.workload.gamma);
    if (flags.get_bool("bursty")) {
      config.workload.pattern = ArrivalPattern::Bursty;
    }
    config.queue_capacity = static_cast<int>(flags.get_int("capacity", 6));
    config.trials = static_cast<int>(flags.get_int("trials", 8));
    config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
    if (flags.get_bool("failures")) {
      config.failures.enabled = true;
      config.failures.mean_time_between_failures =
          flags.get_double("mtbf", 60000.0);
      config.failures.mean_time_to_repair = flags.get_double("mttr", 3000.0);
    }
    if (flags.get_bool("on-deadline-miss")) {
      config.engagement = DropperEngagement::OnDeadlineMiss;
    }

    // Optional trace round-trip: archive the first trial's trace, or run
    // every trial on an externally supplied one.
    const Scenario scenario = build_scenario(config);
    if (flags.has("trace-out")) {
      WorkloadConfig workload = config.workload;
      workload.seed = Rng::derive(config.seed, 0)();
      write_trace_csv_file(
          flags.get("trace-out", ""),
          generate_trace(scenario.pet, scenario.machine_count(), workload));
      std::cout << "wrote trial-0 trace to " << flags.get("trace-out", "")
                << "\n";
    }

    const ExperimentResult result = run_experiment(config, &scenario);

    Table table({"metric", "mean", "ci95"});
    add_summary_row(table, "robustness (%)", result.robustness);
    add_summary_row(table, "utility (%)", result.utility);
    add_summary_row(table, "cost/robustness ($)", result.normalized_cost, 4);
    add_summary_row(table, "reactive share of queue drops (%)",
                    result.reactive_share);
    std::cout << "scenario=" << to_string(config.scenario)
              << " mapper=" << config.mapper
              << " dropper=" << flags.get("dropper", "heuristic")
              << " tasks=" << config.workload.n_tasks
              << " oversub=" << config.workload.oversubscription
              << " trials=" << config.trials << "\n\n";
    if (flags.get_bool("csv")) {
      table.print_csv(std::cout);
    } else {
      table.print(std::cout);
    }
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "taskdrop_cli: " << error.what() << "\n";
    return 1;
  }
}
