/* taskdrop_cli — run one experiment configuration or a declarative sweep.

     taskdrop_cli [run] --scenario=spec_hc --mapper=PAM --dropper=heuristic \
                  --tasks=3000 --oversub=3.0 --trials=8 [--eta=2] [--beta=1] \
                  [--threshold=0.5] [--gamma=4] [--capacity=6] [--seed=42] \
                  [--bursty] [--failures --mtbf=60000 --mttr=3000] \
                  [--trace-out=trace.csv] [--csv]

     taskdrop_cli sweep --spec=specs/fig8.sweep [--trials=2] [--csv|--json]
     taskdrop_cli sweep --scenario=spec_hc --mapper=PAM,MM \
                  --dropper=heuristic,reactive --tasks=2000,3000 \
                  --oversub=2.5,3.0 --trials=8 [--out=report.csv] [--progress]

     taskdrop_cli sweep --spec=specs/grid.sweep --shard=0/3 --json \
                  --out=shard_0.json
     taskdrop_cli sweep --spec=specs/grid.sweep --elastic \
                  --lease-dir=leases [--lease-timeout=30000] \
                  [--lease-units=N] [--bench-macro=BENCH_macro.json]
     taskdrop_cli merge shard_0.json shard_1.json shard_2.json \
                  [--allow-reexecuted] [--format=table|csv|json] \
                  [--out=merged.json]

     taskdrop_cli --list-scenarios --list-mappers --list-droppers

   `sweep` expands the cross product of every axis (see the specs/ dir and
   the README's sweep section); inline axis flags take comma-separated
   lists and override same-named keys of --spec. All names resolve through
   the registries, so unknown ones list the available set.

   `--shard=I/N` runs only shard I of the round-robin (cell x trial)
   partition and emits a mergeable JSON document; `merge` reunites all N
   such documents into the report the unsharded sweep would have produced,
   bit for bit (tools/sweep_shards.sh orchestrates both locally).

   `--elastic` replaces the static partition with lease-based coordination
   through --lease-dir (see src/exp/lease.hpp and the README's "Elastic
   sweeps" section): any number of workers share the directory, claim
   contiguous unit ranges, renew heartbeats while computing, and steal
   ranges whose owner died (heartbeat older than --lease-timeout ms).
   Results land as <dir>/lease_*.json; `merge --allow-reexecuted` over
   them reproduces the unsharded report byte for byte, tolerating
   re-executed (reclaimed) units only when their payloads are bitwise
   identical. Re-launching against a partial directory resumes: landed
   leases are skipped (tools/sweep_elastic_kill_test.sh proves both).

     taskdrop_cli serve --scenario=spec_hc --mapper=PAM --dropper=heuristic \
                  [--capacity=6] [--seed=42] [--on-deadline-miss] \
                  [--condition-running] [--volatile] [--approx] \
                  [--shed-watermark=N] [--shed-machine-backlog=N] \
                  [--on-error=abort|skip] [--restore=snap.txt] \
                  [--snapshot-out=snap.txt] [--snapshot-every=N] \
                  [--stream=events.stream] \
                  [--out=decisions.log] [--stats-out=stats.txt]

   `serve` runs the online admission service (src/online) as a daemon: it
   reads a line-delimited event stream (--stream, default stdin), feeds
   each event into the OnlineScheduler callback API, confirms every Start
   recommendation immediately, and emits one decision record per decision
   to --out (default stdout). The stream protocol (blank lines and
   #-comments are skipped; timestamps must be non-decreasing):

     arrive <t> <type> <deadline>   a task of PET type <type> arrives
     finish <t> <machine>           the running task on <machine> completed
     down <t> <machine>             <machine> failed
     up <t> <machine>               <machine> recovered
     advance <t>                    time passed with no event

   Robustness knobs (all off by default so the decision log stays
   byte-identical to earlier builds):

     --shed-watermark=N          shed arrivals once the aggregate pending
                                 backlog reaches N (ShedOverload records)
     --shed-machine-backlog=N    shed once every up machine has >= N
                                 pending tasks
     --on-error=abort|skip       abort (default): first bad line ends the
                                 run, exit 1 — deterministic for goldens.
                                 skip: emit a structured
                                 `error t=.. line=.. msg=".."` record to
                                 the decision log and keep serving; bad
                                 lines never mutate scheduler state.
     --snapshot-out=F            write a versioned text snapshot of full
                                 scheduler state at clean shutdown (the
                                 write is atomic: tmp + rename, so a kill
                                 mid-write never leaves a torn file)
     --snapshot-every=N          additionally checkpoint to --snapshot-out
                                 every N processed events (atomic, decision
                                 log flushed first); a daemon killed
                                 mid-stream resumes from the last
                                 checkpoint via --restore
     --restore=F                 restore a snapshot before reading the
                                 stream (same scenario/mapper/dropper
                                 flags required; validated). A daemon
                                 killed mid-stream and restored continues
                                 with a byte-identical decision stream.

   On shutdown (EOF) a summary — events, decisions, drop/shed rates,
   decisions/sec and p50/p99 per-event decision latency, kernel time only —
   goes to --stats-out (default stderr), so the decision log stays
   byte-deterministic for golden diffing (tools/serve_smoke.sh). The
   summary is emitted on *every* exit path, error teardown included; the
   per-event latency sample is a bounded deterministic reservoir (exact up
   to 8192 events, evenly strided subsample beyond), so a long-running
   daemon's memory stays bounded. */
#include <algorithm>
#include <chrono>
#include <exception>
#include <fstream>
#include <functional>
#include <iostream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "cost/cost_model.hpp"
#include "exp/experiment.hpp"
#include "exp/lease.hpp"
#include "exp/sweep.hpp"
#include "metrics/report.hpp"
#include "online/online_scheduler.hpp"
#include "util/atomic_file.hpp"
#include "util/flags.hpp"
#include "util/spec_parser.hpp"
#include "util/stats.hpp"
#include "workload/scenario_registry.hpp"
#include "workload/trace_io.hpp"

using namespace taskdrop;

namespace {

/// Prints the registry enumerations; returns true when any was requested.
bool handle_list_flags(const Flags& flags) {
  bool handled = false;
  const auto print_set = [&](const char* title,
                             const std::vector<std::string>& names) {
    std::cout << title << ":";
    for (const std::string& name : names) std::cout << ' ' << name;
    std::cout << '\n';
    handled = true;
  };
  if (flags.get_bool("list-scenarios")) {
    print_set("scenarios", scenario_names());
  }
  if (flags.get_bool("list-mappers")) print_set("mappers", mapper_names());
  if (flags.get_bool("list-droppers")) print_set("droppers", dropper_names());
  return handled;
}

/// Seeds feed Rng::derive as unsigned 64-bit values; a bare static_cast
/// would silently wrap a negative --seed into a huge unrelated seed, so
/// reject negatives up front instead.
std::uint64_t seed_from_flags(const Flags& flags) {
  const long long seed = flags.get_int("seed", 42);
  if (seed < 0) {
    throw std::invalid_argument("--seed must be non-negative, got " +
                                std::to_string(seed));
  }
  return static_cast<std::uint64_t>(seed);
}

/// Dropper construction for `run`: only explicitly set flags become
/// from_spec parameters, so registry defaults stay in one place.
DropperConfig dropper_from_flags(const Flags& flags) {
  std::map<std::string, std::string> params;
  for (const char* key : {"eta", "beta", "threshold"}) {
    if (flags.has(key)) params[key] = flags.get(key, "");
  }
  if (flags.get_bool("static-threshold")) params["adaptive"] = "0";
  return DropperConfig::from_spec(flags.get("dropper", "heuristic"), params);
}

int run_single(const Flags& flags) {
  ExperimentConfig config;
  config.scenario = scenario_from_name(flags.get("scenario", "spec_hc"));
  config.mapper = flags.get("mapper", "PAM");
  config.dropper = dropper_from_flags(flags);
  config.workload.n_tasks = static_cast<int>(flags.get_int("tasks", 3000));
  config.workload.oversubscription = flags.get_double("oversub", 3.0);
  config.workload.gamma = flags.get_double("gamma", config.workload.gamma);
  if (flags.get_bool("bursty")) {
    config.workload.pattern = ArrivalPattern::Bursty;
  }
  config.queue_capacity = static_cast<int>(flags.get_int("capacity", 6));
  config.trials = static_cast<int>(flags.get_int("trials", 8));
  config.seed = seed_from_flags(flags);
  if (flags.get_bool("failures")) {
    config.failures.enabled = true;
    config.failures.mean_time_between_failures =
        flags.get_double("mtbf", 60000.0);
    config.failures.mean_time_to_repair = flags.get_double("mttr", 3000.0);
  }
  if (flags.get_bool("on-deadline-miss")) {
    config.engagement = DropperEngagement::OnDeadlineMiss;
  }

  // Optional trace round-trip: archive the first trial's trace, or run
  // every trial on an externally supplied one.
  const Scenario scenario = build_scenario(config);
  if (flags.has("trace-out")) {
    WorkloadConfig workload = config.workload;
    workload.seed = Rng::derive(config.seed, 0)();
    write_trace_csv_file(
        flags.get("trace-out", ""),
        generate_trace(scenario.pet, scenario.machine_count(), workload));
    std::cout << "wrote trial-0 trace to " << flags.get("trace-out", "")
              << "\n";
  }

  const ExperimentResult result = run_experiment(config, &scenario);

  Table table({"metric", "mean", "ci95"});
  add_summary_row(table, "robustness (%)", result.robustness);
  add_summary_row(table, "utility (%)", result.utility);
  add_summary_row(table, "cost/robustness ($)", result.normalized_cost, 4);
  add_summary_row(table, "reactive share of queue drops (%)",
                  result.reactive_share);
  std::cout << "scenario=" << to_string(config.scenario)
            << " mapper=" << config.mapper
            << " dropper=" << config.dropper.name()
            << " tasks=" << config.workload.n_tasks
            << " oversub=" << config.workload.oversubscription
            << " trials=" << config.trials << "\n\n";
  if (flags.get_bool("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  return 0;
}

/// Renders through `write` to --out (atomically: a killed process never
/// leaves a truncated report for a later merge to half-read) or stdout.
int emit_to_out(const Flags& flags,
                const std::function<void(std::ostream&)>& write) {
  if (!flags.has("out")) {
    write(std::cout);
    return 0;
  }
  std::ostringstream buffer;
  write(buffer);
  atomic_write_file(flags.get("out", ""), buffer.str());
  std::cout << "wrote " << flags.get("out", "") << "\n";
  return 0;
}

int run_sweep_command(const Flags& flags) {
  // The Flags parser drops unrecognised tokens (so benches can share argv
  // with google-benchmark), but for sweeps a typo'd axis flag would
  // silently run the wrong grid — reject anything that is neither a spec
  // key nor a sweep option. "full" can appear via the REPRO_FULL fold-in.
  static const std::vector<std::string> kSweepOptions = {
      "spec",        "csv",           "json",        "out",
      "progress",    "threads",       "shard",       "elastic",
      "lease-dir",   "lease-timeout", "lease-units", "bench-macro",
      "full"};
  for (const std::string& key : flags.keys()) {
    const auto& spec_keys = sweep_spec_keys();
    const bool known =
        std::find(spec_keys.begin(), spec_keys.end(), key) !=
            spec_keys.end() ||
        std::find(kSweepOptions.begin(), kSweepOptions.end(), key) !=
            kSweepOptions.end();
    if (!known) {
      throw std::invalid_argument(
          "unknown sweep flag: --" + key + " (spec keys: " +
          join_spec_list(sweep_spec_keys()) +
          "; options: " + join_spec_list(kSweepOptions) + ")");
    }
  }

  // run/serve parity for --seed: a negative value must be the same
  // "--seed must be non-negative" error, not a spec-layer unsigned-parse
  // complaint (the value itself still flows through the spec map below,
  // so malformed text keeps its spec diagnostics).
  if (flags.has("seed")) seed_from_flags(flags);

  SpecMap map;
  if (flags.has("spec")) {
    map = parse_spec_file(flags.get("spec", ""));
  }
  // Every spec key doubles as an inline flag overriding the same key of
  // --spec; list-valued keys take comma syntax (--mapper=PAM,MM). The
  // levels axis has two spellings; an inline --levels drops the file's
  // tasks/oversub, while a partial --tasks/--oversub override decomposes a
  // file-side `levels` into its halves first, so the half the user did not
  // override is kept instead of silently resetting to defaults.
  if (flags.has("levels")) {
    map.erase("tasks");
    map.erase("oversub");
  } else if ((flags.has("tasks") || flags.has("oversub")) &&
             map.count("levels") != 0) {
    SpecMap halves;
    for (const std::string& entry : map.at("levels")) {
      // "label:tasks:oversub" or "tasks:oversub" — keep the last two
      // colon-separated fields (from_map re-validates the numbers).
      const auto last = entry.rfind(':');
      if (last == std::string::npos) continue;
      const auto mid = entry.rfind(':', last - 1);
      const std::size_t tasks_begin = mid == std::string::npos ? 0 : mid + 1;
      halves["tasks"].push_back(
          entry.substr(tasks_begin, last - tasks_begin));
      halves["oversub"].push_back(entry.substr(last + 1));
    }
    map.erase("levels");
    map.insert(halves.begin(), halves.end());
  }
  for (const std::string& key : sweep_spec_keys()) {
    if (flags.has(key)) {
      map[key] = split_spec_list(flags.get(key, ""));
    }
  }
  const SweepSpec spec = SweepSpec::from_map(map);

  const std::int64_t threads = flags.get_int("threads", 0);
  if (threads < 0 || threads > 4096) {
    throw std::invalid_argument("--threads must be in [0, 4096] (0 = "
                                "hardware concurrency), got " +
                                std::to_string(threads));
  }

  if (flags.get_bool("elastic")) {
    if (flags.has("shard")) {
      throw std::invalid_argument(
          "--elastic and --shard are mutually exclusive: leases replace "
          "the static partition");
    }
    if (flags.has("out") || flags.get_bool("json") || flags.get_bool("csv")) {
      throw std::invalid_argument(
          "--elastic writes mergeable lease documents into --lease-dir; "
          "render with `taskdrop_cli merge <dir>/lease_*.json "
          "--allow-reexecuted` instead of --json/--csv/--out");
    }
    ElasticSweepOptions elastic;
    elastic.lease_dir = flags.get("lease-dir", "");
    if (elastic.lease_dir.empty()) {
      throw std::invalid_argument("--elastic requires --lease-dir");
    }
    const std::int64_t timeout = flags.get_int("lease-timeout", 30000);
    if (timeout < 1) {
      throw std::invalid_argument(
          "--lease-timeout must be a positive millisecond count, got " +
          std::to_string(timeout));
    }
    elastic.lease_timeout_ms = timeout;
    const std::int64_t lease_units = flags.get_int("lease-units", 0);
    if (lease_units < 0) {
      throw std::invalid_argument(
          "--lease-units must be >= 0 (0 sizes leases from the cost "
          "model), got " + std::to_string(lease_units));
    }
    elastic.lease_units = static_cast<std::size_t>(lease_units);
    elastic.bench_macro_path = flags.get("bench-macro", "");
    elastic.threads = static_cast<std::size_t>(threads);
    if (flags.get_bool("progress")) {
      elastic.on_event = [](const std::string& line) {
        std::cerr << "elastic: " << line << "\n";
      };
    }
    const ElasticSweepStats stats = run_sweep_elastic(spec, elastic);
    std::cout << "elastic sweep: " << spec.name
              << "  leases=" << stats.leases_total
              << " run=" << stats.leases_run
              << " stolen=" << stats.leases_stolen
              << " skipped=" << stats.leases_skipped
              << " dir=" << elastic.lease_dir << "\n";
    return 0;
  }

  SweepOptions options;
  options.threads = static_cast<std::size_t>(threads);
  if (flags.has("shard")) {
    const std::string text = flags.get("shard", "");
    const auto slash = text.find('/');
    if (slash == std::string::npos) {
      throw std::invalid_argument(
          "--shard expects index/count (e.g. --shard=0/3), got '" + text +
          "'");
    }
    ShardSpec shard;
    shard.index = parse_spec_int("shard index", text.substr(0, slash));
    shard.count = parse_spec_int("shard count", text.substr(slash + 1));
    shard.validate();
    // Table/CSV of a shard would show partial means and zero rows for
    // untouched cells with nothing marking them as such — the only
    // faithful rendering of a shard is the mergeable JSON document.
    if (!flags.get_bool("json")) {
      throw std::invalid_argument(
          "--shard requires --json: a shard report is a mergeable JSON "
          "document, not a standalone summary (merge shards first, then "
          "render)");
    }
    options.shard = shard;
  }
  if (flags.get_bool("progress")) {
    options.on_cell = [](const SweepCellResult& cell, std::size_t done,
                         std::size_t total) {
      std::cerr << "[" << done << "/" << total << "] "
                << cell.point.scenario << " " << cell.point.level << " "
                << cell.point.mapper << " " << cell.point.dropper
                << " robustness=" << format_fixed(
                       cell.result.robustness.mean, 2)
                << "\n";
    };
  }
  const SweepReport report = run_sweep(spec, options);

  return emit_to_out(flags, [&](std::ostream& out) {
    if (flags.get_bool("json")) {
      write_sweep_json(out, report);
    } else if (flags.get_bool("csv")) {
      write_sweep_csv(out, report);
    } else {
      out << "sweep: " << report.name << "  cells=" << report.cells.size()
          << " trials=" << spec.trials << " seed=" << spec.seed << "\n\n";
      sweep_table(report).print(out);
    }
  });
}

int run_merge_command(const Flags& flags,
                      const std::vector<std::string>& files) {
  // "full" can appear via the REPRO_FULL fold-in (it scales sweeps, not
  // merges, but must not make merge refuse to run).
  static const std::vector<std::string> kMergeOptions = {
      "format", "out", "allow-reexecuted", "full"};
  for (const std::string& key : flags.keys()) {
    if (std::find(kMergeOptions.begin(), kMergeOptions.end(), key) ==
        kMergeOptions.end()) {
      throw std::invalid_argument("unknown merge flag: --" + key +
                                  " (options: " +
                                  join_spec_list(kMergeOptions) + ")");
    }
  }
  if (files.empty()) {
    throw std::invalid_argument(
        "merge: no shard files given (usage: taskdrop_cli merge "
        "shard_0.json shard_1.json ... [--format=table|csv|json] "
        "[--out=merged.json])");
  }
  const std::string format = flags.get("format", "table");
  if (format != "table" && format != "csv" && format != "json") {
    throw std::invalid_argument("unknown merge format: " + format +
                                " (available: table, csv, json)");
  }

  std::vector<SweepShardReport> shards;
  shards.reserve(files.size());
  for (const std::string& path : files) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("cannot read " + path);
    try {
      shards.push_back(read_sweep_shard_json(in));
    } catch (const std::invalid_argument& error) {
      throw std::invalid_argument(path + ": " + error.what());
    }
  }
  MergeOptions merge_options;
  merge_options.allow_reexecuted = flags.get_bool("allow-reexecuted");
  const SweepReport report = merge_sweep_reports(shards, merge_options);

  return emit_to_out(flags, [&](std::ostream& out) {
    if (format == "json") {
      write_sweep_json(out, report);
    } else if (format == "csv") {
      write_sweep_csv(out, report);
    } else {
      out << "merged sweep: " << report.name << "  cells="
          << report.cells.size() << " shards=" << shards.size() << "\n\n";
      sweep_table(report).print(out);
    }
  });
}

/// One parsed line of the serve event stream.
struct StreamEvent {
  enum class Kind { Arrive, Finish, Down, Up, Advance } kind;
  Tick t = 0;
  long long a = 0;  ///< type (arrive) or machine (finish/down/up)
  long long b = 0;  ///< deadline (arrive only)
};

/// Parses one non-empty, non-comment stream line; throws with the token
/// that failed (the caller prefixes the line number).
StreamEvent parse_stream_event(const std::string& line) {
  std::istringstream in(line);
  std::string op;
  in >> op;
  StreamEvent event;
  int operands = 0;
  if (op == "arrive") {
    event.kind = StreamEvent::Kind::Arrive;
    operands = 3;
  } else if (op == "finish") {
    event.kind = StreamEvent::Kind::Finish;
    operands = 2;
  } else if (op == "down") {
    event.kind = StreamEvent::Kind::Down;
    operands = 2;
  } else if (op == "up") {
    event.kind = StreamEvent::Kind::Up;
    operands = 2;
  } else if (op == "advance") {
    event.kind = StreamEvent::Kind::Advance;
    operands = 1;
  } else {
    throw std::invalid_argument(
        "unknown event '" + op +
        "' (available: arrive, finish, down, up, advance)");
  }
  long long fields[3] = {0, 0, 0};
  for (int i = 0; i < operands; ++i) {
    if (!(in >> fields[i])) {
      throw std::invalid_argument("event '" + op + "' needs " +
                                  std::to_string(operands) +
                                  " integer operand(s)");
    }
  }
  std::string trailing;
  if (in >> trailing) {
    throw std::invalid_argument("trailing token '" + trailing +
                                "' after event '" + op + "'");
  }
  event.t = fields[0];
  event.a = fields[1];
  event.b = fields[2];
  return event;
}

/// Validates a non-negative int-ranged serve flag (shed watermarks).
int nonnegative_int_flag(const Flags& flags, const char* name) {
  const long long value = flags.get_int(name, 0);
  if (value < 0 || value > std::numeric_limits<int>::max()) {
    throw std::invalid_argument("--" + std::string(name) +
                                " must be a non-negative int, got " +
                                std::to_string(value));
  }
  return static_cast<int>(value);
}

int run_serve_command(const Flags& flags) {
  static const std::vector<std::string> kServeOptions = {
      "scenario", "mapper",   "dropper",          "eta",
      "beta",     "threshold", "static-threshold", "capacity",
      "seed",     "on-deadline-miss", "condition-running", "volatile",
      "approx",   "stream",   "out",              "stats-out",
      "shed-watermark", "shed-machine-backlog", "on-error",
      "snapshot-out", "snapshot-every", "restore",
      "full"};
  for (const std::string& key : flags.keys()) {
    if (std::find(kServeOptions.begin(), kServeOptions.end(), key) ==
        kServeOptions.end()) {
      throw std::invalid_argument("unknown serve flag: --" + key +
                                  " (options: " +
                                  join_spec_list(kServeOptions) + ")");
    }
  }
  const std::string on_error = flags.get("on-error", "abort");
  if (on_error != "abort" && on_error != "skip") {
    throw std::invalid_argument("--on-error must be abort or skip, got '" +
                                on_error + "'");
  }
  const bool skip_bad_lines = on_error == "skip";
  const std::int64_t snapshot_every = flags.get_int("snapshot-every", 0);
  if (snapshot_every < 0) {
    throw std::invalid_argument(
        "--snapshot-every must be a non-negative event count (0 disables "
        "periodic checkpoints), got " + std::to_string(snapshot_every));
  }
  if (snapshot_every > 0 && !flags.has("snapshot-out")) {
    throw std::invalid_argument(
        "--snapshot-every needs --snapshot-out to name the checkpoint file");
  }

  const ScenarioKind kind =
      scenario_from_name(flags.get("scenario", "spec_hc"));
  const Scenario scenario = make_scenario(kind, seed_from_flags(flags));
  auto mapper = make_mapper(flags.get("mapper", "PAM"));
  const DropperConfig dropper_config = dropper_from_flags(flags);
  auto dropper = make_dropper(dropper_config);

  OnlineConfig config;
  config.queue_capacity = static_cast<int>(flags.get_int("capacity", 6));
  if (flags.get_bool("on-deadline-miss")) {
    config.engagement = DropperEngagement::OnDeadlineMiss;
  }
  config.condition_running = flags.get_bool("condition-running");
  config.volatile_machines = flags.get_bool("volatile");
  if (flags.get_bool("approx") ||
      dropper_config.kind == DropperConfig::Kind::Approx) {
    config.approx.enabled = true;
  }
  config.shed.total_pending_watermark =
      nonnegative_int_flag(flags, "shed-watermark");
  config.shed.machine_backlog_watermark =
      nonnegative_int_flag(flags, "shed-machine-backlog");
  OnlineScheduler scheduler(scenario.pet, scenario.profile.machine_types,
                            *mapper, *dropper, config);
  const auto machine_count =
      static_cast<long long>(scenario.profile.machine_types.size());
  const auto type_count =
      static_cast<long long>(scenario.pet.task_type_count());

  // Resurrect a snapshotted daemon before touching the stream: the restored
  // scheduler continues exactly where the snapshotted one stopped, so
  // feeding it the remainder of the stream reproduces the uninterrupted
  // run's decision log byte for byte (tools/serve_resume_smoke.sh).
  if (flags.has("restore")) {
    std::ifstream snapshot_in(flags.get("restore", ""));
    if (!snapshot_in) {
      throw std::runtime_error("cannot read " + flags.get("restore", ""));
    }
    scheduler.restore(snapshot_in);
  }

  std::ifstream stream_file;
  std::istream* events = &std::cin;
  if (flags.has("stream") && flags.get("stream", "") != "-") {
    stream_file.open(flags.get("stream", ""));
    if (!stream_file) {
      throw std::runtime_error("cannot read " + flags.get("stream", ""));
    }
    events = &stream_file;
  }
  std::ofstream out_file;
  std::ostream* out = &std::cout;
  if (flags.has("out")) {
    out_file.open(flags.get("out", ""));
    if (!out_file) {
      throw std::runtime_error("cannot write " + flags.get("out", ""));
    }
    out = &out_file;
  }
  std::ofstream stats_file;
  std::ostream* stats = &std::cerr;
  if (flags.has("stats-out")) {
    stats_file.open(flags.get("stats-out", ""));
    if (!stats_file) {
      throw std::runtime_error("cannot write " + flags.get("stats-out", ""));
    }
    stats = &stats_file;
  }

  // The daemon plays the environment side of the callback contract: every
  // Start recommendation is confirmed immediately (live mode, no
  // ground-truth duration), so machines are running from the decision's
  // own timestamp on.
  const auto confirm_starts = [&](Tick t,
                                  const std::vector<Decision>& decisions) {
    for (const Decision& decision : decisions) {
      if (decision.kind == DecisionKind::Start) {
        scheduler.task_started(t, decision.machine, decision.task);
      }
    }
  };

  using Clock = std::chrono::steady_clock;
  // One latency sample per stream event — bounded: a long-running daemon
  // must not grow a vector by one double per event forever.
  LatencyReservoir latency_ns(8192);
  long long events_seen = 0;
  long long decisions_out = 0;
  long long arrivals = 0;
  long long drops_proactive = 0, drops_reactive = 0, drops_expired = 0;
  long long shed = 0;
  long long lines_skipped = 0;

  std::string line;
  long long line_no = 0;
  // One bad stream line must not cost the operator the whole run's stats:
  // every exit path below — clean EOF and error teardown alike — funnels
  // through the shutdown summary at the end of this function.
  const auto process_stream = [&]() {
    while (std::getline(*events, line)) {
      ++line_no;
      const auto first = line.find_first_not_of(" \t\r");
      if (first == std::string::npos || line[first] == '#') continue;
      try {
        const StreamEvent event = parse_stream_event(line);
        const auto machine = [&]() -> MachineId {
          if (event.a < 0 || event.a >= machine_count) {
            throw std::invalid_argument(
                "machine " + std::to_string(event.a) + " out of range [0, " +
                std::to_string(machine_count) + ")");
          }
          return static_cast<MachineId>(event.a);
        };
        // Validate everything the scheduler would reject *before* calling
        // into it: under --on-error=skip a rejected line must leave no
        // trace in scheduler state (task_arrived in particular registers
        // the task before its own monotonicity check could fire).
        if (event.t < scheduler.now()) {
          throw std::invalid_argument(
              "time went backwards: t=" + std::to_string(event.t) +
              " < now=" + std::to_string(scheduler.now()));
        }

        // Time the decision kernels only (callback + immediate start
        // confirmations); log I/O happens outside the clock so the latency
        // percentiles describe the admission service, not the disk.
        const Clock::time_point begin = Clock::now();
        const std::vector<Decision>* decisions = nullptr;
        switch (event.kind) {
          case StreamEvent::Kind::Arrive: {
            if (event.a < 0 || event.a >= type_count) {
              throw std::invalid_argument(
                  "task type " + std::to_string(event.a) +
                  " out of range [0, " + std::to_string(type_count) + ")");
            }
            ++arrivals;
            decisions = &scheduler.task_arrived(
                event.t, static_cast<TaskTypeId>(event.a), event.b);
            break;
          }
          case StreamEvent::Kind::Finish: {
            const MachineId m = machine();
            if (!scheduler.machine(m).running) {
              throw std::invalid_argument("machine " + std::to_string(m) +
                                          " has no running task to finish");
            }
            decisions = &scheduler.task_finished(event.t, m);
            break;
          }
          case StreamEvent::Kind::Down: {
            const MachineId m = machine();
            if (!scheduler.machine(m).up) {
              throw std::invalid_argument("machine " + std::to_string(m) +
                                          " is already down");
            }
            decisions = &scheduler.machine_down(event.t, m);
            break;
          }
          case StreamEvent::Kind::Up: {
            const MachineId m = machine();
            if (scheduler.machine(m).up) {
              throw std::invalid_argument("machine " + std::to_string(m) +
                                          " is already up");
            }
            decisions = &scheduler.machine_up(event.t, m);
            break;
          }
          case StreamEvent::Kind::Advance:
            decisions = &scheduler.advance(event.t);
            break;
        }
        confirm_starts(event.t, *decisions);
        const Clock::time_point end = Clock::now();

        ++events_seen;
        latency_ns.add(static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin)
                .count()));
        for (const Decision& decision : *decisions) {
          ++decisions_out;
          switch (decision.kind) {
            case DecisionKind::DropProactive: ++drops_proactive; break;
            case DecisionKind::DropReactive: ++drops_reactive; break;
            case DecisionKind::ExpireUnmapped: ++drops_expired; break;
            case DecisionKind::ShedOverload: ++shed; break;
            default: break;
          }
          *out << decision << '\n';
        }
        // Periodic crash checkpoint: the decision log is flushed first so
        // the snapshot never claims events whose decisions have not hit the
        // log yet, and the write is atomic so a kill mid-checkpoint leaves
        // the previous snapshot intact.
        if (snapshot_every > 0 && events_seen % snapshot_every == 0) {
          out->flush();
          std::ostringstream snap;
          scheduler.snapshot(snap);
          atomic_write_file(flags.get("snapshot-out", ""), snap.str());
        }
      } catch (const std::exception& error) {
        if (!skip_bad_lines) {
          throw std::runtime_error("stream line " + std::to_string(line_no) +
                                   ": " + error.what());
        }
        // Structured recovery record in the decision log itself, so a
        // consumer tailing the log sees the gap in place.
        ++lines_skipped;
        *out << "error t=" << scheduler.now() << " line=" << line_no
             << " msg=\"" << error.what() << "\"\n";
      }
    }
  };
  std::exception_ptr teardown_error;
  try {
    process_stream();
  } catch (...) {
    teardown_error = std::current_exception();
  }
  out->flush();

  // Clean shutdown only: a snapshot taken mid-error would freeze a clock
  // the operator does not know the position of.
  if (!teardown_error && flags.has("snapshot-out")) {
    std::ostringstream snap;
    scheduler.snapshot(snap);
    atomic_write_file(flags.get("snapshot-out", ""), snap.str());
  }

  const double kernel_ns = latency_ns.total();
  const long long drops = drops_proactive + drops_reactive + drops_expired;
  // Sort the kept subsample once, extract every percentile from it.
  std::vector<double> latency_sorted = latency_ns.samples();
  std::sort(latency_sorted.begin(), latency_sorted.end());
  *stats << "serve: scenario=" << to_string(kind)
         << " mapper=" << flags.get("mapper", "PAM")
         << " dropper=" << dropper_config.name()
         << " machines=" << machine_count
         << " capacity=" << config.queue_capacity << "\n"
         << "events=" << events_seen << " decisions=" << decisions_out
         << " arrivals=" << arrivals << " drops=" << drops
         << " (proactive=" << drops_proactive
         << " reactive=" << drops_reactive << " expired=" << drops_expired
         << ")\n"
         << "drop_rate=" << format_fixed(
                arrivals > 0 ? 100.0 * static_cast<double>(drops) /
                                   static_cast<double>(arrivals)
                             : 0.0, 2)
         << "% of arrivals\n";
  if (config.shed.active()) {
    *stats << "shed=" << shed << " (shed_rate=" << format_fixed(
                  arrivals > 0 ? 100.0 * static_cast<double>(shed) /
                                     static_cast<double>(arrivals)
                               : 0.0, 2)
           << "% of arrivals, watermark=" << config.shed.total_pending_watermark
           << " machine_backlog=" << config.shed.machine_backlog_watermark
           << ")\n";
  }
  if (skip_bad_lines) {
    *stats << "lines_skipped=" << lines_skipped << "\n";
  }
  *stats << "kernel_time_ms=" << format_fixed(kernel_ns / 1e6, 3)
         << " decisions_per_sec=" << format_fixed(
                kernel_ns > 0.0
                    ? static_cast<double>(decisions_out) * 1e9 / kernel_ns
                    : 0.0, 0)
         << "\n"
         << "event_latency_us: p50=" << format_fixed(
                percentile_sorted(latency_sorted, 50.0) / 1e3, 3)
         << " p99=" << format_fixed(
                percentile_sorted(latency_sorted, 99.0) / 1e3, 3)
         << " max=" << format_fixed(latency_ns.max() / 1e3, 3);
  if (latency_ns.stride() > 1) {
    // Percentiles come from the strided subsample past reservoir capacity;
    // max is always exact.
    *stats << " (percentiles over 1/" << latency_ns.stride()
           << " strided sample)";
  }
  *stats << "\n";
  stats->flush();
  // Error teardown: the summary above still made it out; now surface the
  // original failure (exit 1 via main's handler).
  if (teardown_error) std::rethrow_exception(teardown_error);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Flags flags(argc, argv);
    if (handle_list_flags(flags)) return 0;
    // Subcommand word (bare, non-flag argv[1]); absent means `run` so
    // pre-subcommand invocations keep working.
    const std::string command =
        (argc > 1 && argv[1][0] != '-') ? argv[1] : "run";
    if (command == "run") return run_single(flags);
    if (command == "sweep") return run_sweep_command(flags);
    if (command == "serve") return run_serve_command(flags);
    if (command == "merge") {
      // Shard files are the bare (non-flag) tokens after the subcommand.
      std::vector<std::string> files;
      for (int i = 2; i < argc; ++i) {
        if (argv[i][0] != '-') files.emplace_back(argv[i]);
      }
      return run_merge_command(flags, files);
    }
    throw std::invalid_argument("unknown command: " + command +
                                " (available: run, sweep, merge, serve)");
  } catch (const std::exception& error) {
    std::cerr << "taskdrop_cli: " << error.what() << "\n";
    return 1;
  }
}
