#!/usr/bin/env bash
# Serve error-path regression suite (ctest + CI): every malformed stream
# line must fail with a line-numbered message, the shutdown stats summary
# must survive error teardown, and --on-error=skip must recover — emitting
# a structured error record while later decisions and the stats stay
# intact. Also covers CLI flag validation (negative --seed, bogus
# --on-error).
#
#   tools/serve_errors_test.sh <taskdrop_cli>
set -euo pipefail

cli=${1:?usage: serve_errors_test.sh <taskdrop_cli>}

tmp_dir=$(mktemp -d)
trap 'rm -rf "$tmp_dir"' EXIT

serve_args=(--scenario=spec_hc --mapper=PAM --dropper=heuristic --volatile)
fails=0

fail() {
  echo "FAIL: $1" >&2
  fails=$((fails + 1))
}

# expect_abort <name> <expected-stderr-substring> <<< stream
# Runs serve in abort mode on the stream from stdin; requires exit 1, the
# line-numbered message on stderr, and a non-empty stats summary.
expect_abort() {
  local name=$1 expected=$2
  local dir="$tmp_dir/$name"
  mkdir -p "$dir"
  cat > "$dir/events.stream"
  local status=0
  "$cli" serve "${serve_args[@]}" --stream="$dir/events.stream" \
      --out="$dir/decisions.log" --stats-out="$dir/stats.txt" \
      2> "$dir/stderr.txt" || status=$?
  [[ $status -eq 1 ]] || fail "$name: expected exit 1, got $status"
  grep -qF -- "$expected" "$dir/stderr.txt" ||
      fail "$name: stderr missing '$expected' (got: $(cat "$dir/stderr.txt"))"
  grep -q "^serve:" "$dir/stats.txt" ||
      fail "$name: stats summary was not emitted on error teardown"
}

expect_abort machine_out_of_range \
    "stream line 2: machine 99 out of range [0, 8)" <<'EOF'
arrive 0 0 50
finish 1 99
EOF

expect_abort type_out_of_range \
    "stream line 1: task type 99 out of range [0," <<'EOF'
arrive 0 99 50
EOF

expect_abort finish_on_idle \
    "stream line 1: machine 3 has no running task to finish" <<'EOF'
finish 0 3
EOF

expect_abort down_on_down \
    "stream line 3: machine 1 is already down" <<'EOF'
arrive 0 0 50
down 1 1
down 2 1
EOF

expect_abort up_on_up \
    "stream line 1: machine 1 is already up" <<'EOF'
up 0 1
EOF

expect_abort non_monotone \
    "stream line 2: time went backwards: t=5 < now=10" <<'EOF'
advance 10
advance 5
EOF

expect_abort unknown_event \
    "stream line 1: unknown event 'frobnicate'" <<'EOF'
frobnicate 1 2
EOF

# --on-error=skip: the same stream with one bad line in the middle must
# exit 0, log a structured error record in place, produce the identical
# decision records otherwise, and count the skip in the stats.
skip_dir="$tmp_dir/skip"
mkdir -p "$skip_dir"
cat > "$skip_dir/clean.stream" <<'EOF'
arrive 0 0 60
arrive 2 1 80
advance 10
arrive 12 2 90
advance 30
EOF
sed '3a finish 10 99' "$skip_dir/clean.stream" > "$skip_dir/broken.stream"

"$cli" serve "${serve_args[@]}" --stream="$skip_dir/clean.stream" \
    --out="$skip_dir/clean.log" --stats-out="$skip_dir/clean_stats.txt"
"$cli" serve "${serve_args[@]}" --on-error=skip \
    --stream="$skip_dir/broken.stream" \
    --out="$skip_dir/broken.log" --stats-out="$skip_dir/broken_stats.txt" ||
    fail "skip: expected exit 0 on a skipped line"
grep -qF 'error t=10 line=4 msg="machine 99 out of range [0, 8)"' \
    "$skip_dir/broken.log" ||
    fail "skip: structured error record missing from the decision log"
grep -v '^error ' "$skip_dir/broken.log" > "$skip_dir/broken_filtered.log"
diff "$skip_dir/clean.log" "$skip_dir/broken_filtered.log" ||
    fail "skip: decisions after the bad line diverged from the clean run"
grep -q "^lines_skipped=1$" "$skip_dir/broken_stats.txt" ||
    fail "skip: stats did not count the skipped line"

# In abort mode the same broken stream must stop at the bad line.
status=0
"$cli" serve "${serve_args[@]}" --stream="$skip_dir/broken.stream" \
    --out=/dev/null --stats-out=/dev/null 2> "$skip_dir/abort_stderr.txt" ||
    status=$?
[[ $status -eq 1 ]] || fail "abort: expected exit 1, got $status"
grep -qF "stream line 4: machine 99 out of range" \
    "$skip_dir/abort_stderr.txt" || fail "abort: line-numbered message missing"

# Flag validation: negative seeds and bogus --on-error are rejected before
# any stream is read, for serve and run alike.
expect_flag_error() {
  local name=$1 expected=$2
  shift 2
  local status=0
  "$cli" "$@" > /dev/null 2> "$tmp_dir/$name.stderr" || status=$?
  [[ $status -eq 1 ]] || fail "$name: expected exit 1, got $status"
  grep -qF -- "$expected" "$tmp_dir/$name.stderr" ||
      fail "$name: stderr missing '$expected'"
}

expect_flag_error serve_negative_seed "--seed must be non-negative, got -1" \
    serve "${serve_args[@]}" --seed=-1 --stream=/dev/null
expect_flag_error run_negative_seed "--seed must be non-negative, got -7" \
    --scenario=spec_hc --mapper=PAM --dropper=heuristic --tasks=100 \
    --trials=1 --seed=-7
expect_flag_error bad_on_error "--on-error must be abort or skip, got 'x'" \
    serve "${serve_args[@]}" --on-error=x --stream=/dev/null
expect_flag_error negative_watermark \
    "--shed-watermark must be a non-negative int, got -3" \
    serve "${serve_args[@]}" --shed-watermark=-3 --stream=/dev/null
expect_flag_error missing_restore "cannot read /nonexistent/snap" \
    serve "${serve_args[@]}" --restore=/nonexistent/snap --stream=/dev/null
expect_flag_error negative_snapshot_every \
    "--snapshot-every must be a non-negative event count" \
    serve "${serve_args[@]}" --snapshot-every=-5 --stream=/dev/null
expect_flag_error snapshot_every_without_out \
    "--snapshot-every needs --snapshot-out" \
    serve "${serve_args[@]}" --snapshot-every=10 --stream=/dev/null

if [[ $fails -ne 0 ]]; then
  echo "serve errors test: $fails check(s) failed" >&2
  exit 1
fi
echo "serve errors test OK: all error paths line-numbered, stats survive" \
     "teardown, skip mode recovers"
