#!/usr/bin/env bash
# Static-analysis gate for the taskdrop tree:
#
#   1. tools/check_layering.py      — module DAG + project rules (always runs)
#   2. clang-tidy                   — curated .clang-tidy set over the compile
#                                     database, with a content-keyed cache so
#                                     unchanged files are free on re-runs
#   3. shellcheck                   — tools/*.sh and bench/run_all.sh
#
# Usage: tools/lint.sh [--strict] [--build-dir DIR] [--cache-dir DIR]
#
# Without --strict a missing clang-tidy/shellcheck is skipped with a note so
# the script stays useful on minimal dev boxes; CI passes --strict, where a
# missing tool (or any finding) is a hard failure.
set -euo pipefail

root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${root}/build"
cache_dir="${root}/.lint-cache"
strict=0

while [[ $# -gt 0 ]]; do
  case "$1" in
    --strict) strict=1; shift ;;
    --build-dir) build_dir="$2"; shift 2 ;;
    --cache-dir) cache_dir="$2"; shift 2 ;;
    *) echo "lint.sh: unknown argument: $1" >&2; exit 2 ;;
  esac
done

failures=0

missing_tool() {
  local tool="$1"
  if [[ "${strict}" -eq 1 ]]; then
    echo "lint.sh: ${tool} not found (required with --strict)" >&2
    failures=$((failures + 1))
  else
    echo "lint.sh: ${tool} not found — skipping (CI runs it with --strict)"
  fi
}

# --- 1. layering / project rules -------------------------------------------
echo "== check_layering =="
if ! python3 "${root}/tools/check_layering.py" --root "${root}"; then
  failures=$((failures + 1))
fi

# --- 2. clang-tidy ----------------------------------------------------------
echo "== clang-tidy =="
if ! command -v clang-tidy >/dev/null 2>&1; then
  missing_tool clang-tidy
elif [[ ! -f "${build_dir}/compile_commands.json" ]]; then
  echo "lint.sh: ${build_dir}/compile_commands.json missing — configure" \
       "with cmake first" >&2
  failures=$((failures + 1))
else
  mkdir -p "${cache_dir}"
  # Cache key per file: clang-tidy version + .clang-tidy config + the file's
  # entry in the compile database (flags) + the file contents. A hit means
  # the previous run was clean for an identical input, so it can be skipped.
  tidy_version="$(clang-tidy --version | tr -d '\n')"
  config_hash="$(sha256sum "${root}/.clang-tidy" | cut -d' ' -f1)"
  db_path="${build_dir}/compile_commands.json"
  tidy_failures=0
  checked=0
  skipped=0
  while IFS= read -r file; do
    entry_hash="$(python3 - "$db_path" "$file" <<'PY'
import json, sys
db_path, want = sys.argv[1], sys.argv[2]
with open(db_path, encoding="utf-8") as handle:
    for entry in json.load(handle):
        if entry["file"] == want:
            print(entry.get("command") or " ".join(entry["arguments"]))
            break
PY
)"
    key="$( { echo "${tidy_version}"; echo "${config_hash}"; \
              echo "${entry_hash}"; cat "${file}"; } | sha256sum | cut -d' ' -f1)"
    stamp="${cache_dir}/${key}.clean"
    if [[ -f "${stamp}" ]]; then
      skipped=$((skipped + 1))
      continue
    fi
    checked=$((checked + 1))
    if clang-tidy -p "${build_dir}" --quiet "${file}"; then
      touch "${stamp}"
    else
      tidy_failures=$((tidy_failures + 1))
    fi
  done < <(python3 - "$db_path" "$root" <<'PY'
import json, sys
db_path, root = sys.argv[1], sys.argv[2]
with open(db_path, encoding="utf-8") as handle:
    for entry in json.load(handle):
        path = entry["file"]
        rel = path[len(root) + 1:] if path.startswith(root) else path
        # Lint first-party code only, not vendored third-party sources.
        if rel.startswith(("src/", "tools/", "bench/", "examples/")):
            print(path)
PY
)
  echo "clang-tidy: ${checked} file(s) analysed, ${skipped} cache hit(s)"
  if [[ "${tidy_failures}" -gt 0 ]]; then
    echo "lint.sh: clang-tidy found issues in ${tidy_failures} file(s)" >&2
    failures=$((failures + 1))
  fi
fi

# --- 3. shellcheck ----------------------------------------------------------
echo "== shellcheck =="
if ! command -v shellcheck >/dev/null 2>&1; then
  missing_tool shellcheck
else
  shell_scripts=("${root}"/tools/*.sh "${root}/bench/run_all.sh")
  if ! shellcheck "${shell_scripts[@]}"; then
    failures=$((failures + 1))
  else
    echo "shellcheck: ${#shell_scripts[@]} script(s) clean"
  fi
fi

if [[ "${failures}" -gt 0 ]]; then
  echo "lint.sh: FAILED (${failures} gate(s))" >&2
  exit 1
fi
echo "lint.sh: OK"
