// The paper's motivating application (sections I and V-H): live video
// stream transcoding on a heterogeneous cloud. Four transcoding task types
// (resolution / bit-rate / compression / packaging) run on four VM types;
// frames that miss their deadline are worthless, so late tasks should be
// dropped to preserve stream liveness.
//
// This example reproduces the Fig. 10 sweep — three mapping heuristics with
// and without proactive dropping — and also prints the incurred cost, which
// is where dropping pays twice (fewer wasted machine-hours).
#include <iostream>

#include "exp/experiment.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

using namespace taskdrop;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);

  ExperimentConfig config;
  config.scenario = ScenarioKind::Video;
  config.workload.n_tasks = static_cast<int>(flags.get_int("tasks", 2000));
  // Section V-H: "these video workload traces also have a lower arrival
  // rate and the system is moderately oversubscribed."
  config.workload.oversubscription = flags.get_double("oversub", 1.5);
  config.trials = static_cast<int>(flags.get_int("trials", 8));
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));

  const Scenario scenario = build_scenario(config);
  std::cout << "Video transcoding scenario: "
            << scenario.pet.task_type_count() << " task types, "
            << scenario.machine_count() << " VMs ("
            << scenario.pet.machine_type_count() << " types)\n\n";

  Table table({"mapper", "dropping", "robustness (%)", "ci95",
               "cost/robustness ($)"});
  for (const char* mapper : {"MSD", "MM", "PAM"}) {
    for (const bool heuristic : {true, false}) {
      config.mapper = mapper;
      config.dropper = heuristic ? DropperConfig::heuristic()
                                 : DropperConfig::reactive_only();
      const ExperimentResult result = run_experiment(config, &scenario);
      table.row()
          .cell(mapper)
          .cell(heuristic ? "+Heuristic" : "+ReactDrop")
          .cell(result.robustness.mean)
          .cell(result.robustness.ci95)
          .cell(result.normalized_cost.mean, 4);
    }
  }
  table.print(std::cout);
  std::cout << "\nWith proactive dropping in place, all three mapping\n"
               "heuristics converge to nearly the same robustness — the\n"
               "dropper compensates for poor mapping decisions (section "
               "V-H).\n";
  return 0;
}
