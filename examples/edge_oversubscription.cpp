// Edge-computing flavoured stress test (section I motivates dropping
// precisely "when resources are not abundant, e.g., in Edge computing"):
// a small fixed cluster is pushed through increasing oversubscription
// levels with *bursty* arrivals, and we track how gracefully robustness
// degrades with and without the autonomous dropping heuristic.
#include <iostream>

#include "exp/experiment.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

using namespace taskdrop;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);

  ExperimentConfig config;
  config.scenario = ScenarioKind::SpecHC;
  config.mapper = "PAM";
  config.workload.n_tasks = static_cast<int>(flags.get_int("tasks", 2000));
  config.workload.pattern = ArrivalPattern::Bursty;
  config.trials = static_cast<int>(flags.get_int("trials", 8));
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));

  const Scenario scenario = build_scenario(config);

  Table table({"oversubscription", "ReactDrop robustness (%)",
               "Heuristic robustness (%)", "gain (pp)"});
  for (const double oversub : {1.0, 1.5, 2.0, 3.0, 4.0, 6.0}) {
    config.workload.oversubscription = oversub;

    config.dropper = DropperConfig::reactive_only();
    const ExperimentResult reactive = run_experiment(config, &scenario);

    config.dropper = DropperConfig::heuristic();
    const ExperimentResult proactive = run_experiment(config, &scenario);

    table.row()
        .cell(oversub, 1)
        .cell(reactive.robustness.mean)
        .cell(proactive.robustness.mean)
        .cell(proactive.robustness.mean - reactive.robustness.mean);
  }
  table.print(std::cout);
  std::cout << "\nThe dropping heuristic matters most in the oversubscribed\n"
               "regime: at low load there is nothing worth dropping, while\n"
               "under heavy bursts it redirects machine time from doomed\n"
               "tasks to ones that can still meet their deadlines.\n";
  return 0;
}
