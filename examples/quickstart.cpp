// Quickstart: simulate an oversubscribed heterogeneous system once with
// reactive dropping only and once with the paper's autonomous proactive
// dropping heuristic, and compare robustness.
//
//   ./examples/quickstart [--tasks=3000] [--oversub=3.0] [--seed=42]
#include <iostream>

#include "exp/experiment.hpp"
#include "util/flags.hpp"

using namespace taskdrop;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);

  // 1. Describe the experiment: the SPECint-like scenario of section V-A
  //    (12 task types x 8 heterogeneous machines), PAM mapping, a 3x
  //    oversubscribed Poisson arrival stream.
  ExperimentConfig config;
  config.scenario = ScenarioKind::SpecHC;
  config.mapper = "PAM";
  config.workload.n_tasks = static_cast<int>(flags.get_int("tasks", 3000));
  config.workload.oversubscription = flags.get_double("oversub", 3.0);
  config.workload.gamma = flags.get_double("gamma", config.workload.gamma);
  config.trials = static_cast<int>(flags.get_int("trials", 8));
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));

  // 2. Baseline: reactive dropping only (tasks are discarded once they have
  //    already missed their deadlines).
  config.dropper = DropperConfig::reactive_only();
  const ExperimentResult reactive = run_experiment(config);

  // 3. The paper's mechanism: the autonomous proactive dropping heuristic
  //    (eta = 2, beta = 1 — no user-tuned threshold anywhere).
  config.dropper = DropperConfig::heuristic();
  if (flags.get_bool("every-event")) {
    config.engagement = DropperEngagement::EveryMappingEvent;
  }
  const ExperimentResult proactive = run_experiment(config);

  std::cout << "Tasks per trial:        " << config.workload.n_tasks << "\n"
            << "Oversubscription:       " << config.workload.oversubscription
            << "x cluster capacity\n"
            << "Trials:                 " << config.trials << "\n\n";
  std::cout << "Robustness (% of tasks completed on time, mean +/- 95% CI):\n"
            << "  PAM + ReactDrop:  " << reactive.robustness.mean << " +/- "
            << reactive.robustness.ci95 << "\n"
            << "  PAM + Heuristic:  " << proactive.robustness.mean << " +/- "
            << proactive.robustness.ci95 << "\n\n";

  const double gain = proactive.robustness.mean - reactive.robustness.mean;
  std::cout << "Proactive dropping gains " << gain
            << " percentage points of robustness on this workload.\n\n";

  const TrialMetrics& sample = proactive.trials.front();
  std::cout << "Outcome breakdown of one PAM+Heuristic trial:\n"
            << "  completed on time: " << sample.completed_on_time << "\n"
            << "  completed late:    " << sample.completed_late << "\n"
            << "  dropped reactive (in queue): " << sample.dropped_reactive_queued
            << "\n"
            << "  dropped proactive:           " << sample.dropped_proactive
            << "\n"
            << "  expired unmapped (batch):    " << sample.expired_unmapped
            << "\n"
            << "  reactive share of queue drops: "
            << proactive.reactive_share.mean << " %\n";
  return 0;
}
