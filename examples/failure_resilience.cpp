// Compound uncertainty, one step beyond the paper (its section VI names
// resource failure as future work): machines now fail and recover while the
// system is oversubscribed. This example sweeps the failure rate and shows
// how the three dropping postures degrade:
//
//   * ReactDrop  — reactive only,
//   * Heuristic  — the paper's autonomous proactive dropping,
//   * Approx     — drop-or-downgrade (approximate computing).
#include <iostream>

#include "exp/experiment.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

using namespace taskdrop;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);

  ExperimentConfig config;
  config.scenario = ScenarioKind::SpecHC;
  config.mapper = "PAM";
  config.workload.n_tasks = static_cast<int>(flags.get_int("tasks", 2000));
  config.workload.oversubscription = flags.get_double("oversub", 2.5);
  config.trials = static_cast<int>(flags.get_int("trials", 6));
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));

  const Scenario scenario = build_scenario(config);

  Table table({"MTBF (ticks)", "ReactDrop (%)", "Heuristic (%)",
               "Approx robustness (%)", "Approx utility (%)"});
  for (const double mtbf : {0.0, 60000.0, 20000.0, 8000.0}) {
    config.failures.enabled = mtbf > 0.0;
    config.failures.mean_time_between_failures = mtbf;
    config.failures.mean_time_to_repair = flags.get_double("mttr", 3000.0);

    config.dropper = DropperConfig::reactive_only();
    const ExperimentResult reactive = run_experiment(config, &scenario);
    config.dropper = DropperConfig::heuristic();
    const ExperimentResult heuristic = run_experiment(config, &scenario);
    config.dropper = DropperConfig::approximate();
    const ExperimentResult approx = run_experiment(config, &scenario);

    table.row()
        .cell(mtbf > 0.0 ? format_fixed(mtbf, 0) : "no failures")
        .cell(reactive.robustness.mean)
        .cell(heuristic.robustness.mean)
        .cell(approx.robustness.mean)
        .cell(approx.utility.mean);
  }
  table.print(std::cout);
  std::cout << "\nFailures shrink every column, but the proactive droppers\n"
               "keep their lead: by pruning tasks that a failure-shortened\n"
               "horizon has made hopeless, they waste none of the surviving\n"
               "machine time. The approximate variant converts part of the\n"
               "would-be drops into half-credit completions.\n";
  return 0;
}
