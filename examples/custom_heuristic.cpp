// Extending the library with your own mapping heuristic and dropping
// mechanism. The dropping framework is deliberately mapper-agnostic
// (section V-B: "the dropping mechanism ... can cooperate with any mapping
// heuristic"), so plugging in a custom Mapper or Dropper is just a
// subclass:
//
//  * RandomMapper      — assigns each batch task to a uniformly random free
//                        machine (a worst-case mapper: no completion-time
//                        reasoning at all).
//  * LastChanceDropper — a naive dropper that discards pending tasks whose
//                        chance of success is exactly zero.
//
// The demo shows that even a random mapper recovers most of its lost
// robustness once the paper's autonomous heuristic dropper is attached.
#include <iostream>

#include "core/null_dropper.hpp"
#include "core/proactive_heuristic_dropper.hpp"
#include "sim/engine.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"
#include "workload/generator.hpp"
#include "workload/scenario.hpp"

using namespace taskdrop;

namespace {

class RandomMapper final : public Mapper {
 public:
  explicit RandomMapper(std::uint64_t seed) : rng_(seed) {}

  std::string_view name() const override { return "Random"; }

  void map_tasks(SystemView& view, SchedulerOps& ops) override {
    for (;;) {
      const auto free_machines = mapper_detail::machines_with_free_slot(view);
      if (free_machines.empty() || view.batch_queue->empty()) return;
      const TaskId task = view.batch_queue->front();
      const auto pick = static_cast<std::size_t>(rng_.uniform_int(
          0, static_cast<std::int64_t>(free_machines.size()) - 1));
      ops.assign_task(task, free_machines[pick]);
    }
  }

 private:
  Rng rng_;
};

class LastChanceDropper final : public Dropper {
 public:
  std::string_view name() const override { return "LastChance"; }

  void run(SystemView& view, SchedulerOps& ops) override {
    for (Machine& machine : *view.machines) {
      CompletionModel& model =
          (*view.models)[static_cast<std::size_t>(machine.id)];
      std::size_t pos = machine.first_pending_pos();
      while (pos < machine.queue.size()) {
        if (model.chance(pos) <= 0.0) {
          ops.drop_queued_task(machine.id, pos);
        } else {
          ++pos;
        }
      }
    }
  }
};

double run_once(const Scenario& scenario, Mapper& mapper, Dropper& dropper,
                std::uint64_t seed, int n_tasks) {
  WorkloadConfig workload;
  workload.n_tasks = n_tasks;
  workload.oversubscription = 3.0;
  workload.seed = seed;
  const Trace trace =
      generate_trace(scenario.pet, scenario.machine_count(), workload);

  EngineConfig engine_config;
  engine_config.exec_seed = seed ^ 0xBEEF;
  Engine engine(scenario.pet, scenario.profile.machine_types, mapper, dropper,
                engine_config);
  return engine.run(trace).robustness_pct();
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  const auto n_tasks = static_cast<int>(flags.get_int("tasks", 3000));
  const Scenario scenario = make_scenario(ScenarioKind::SpecHC, seed);

  Table table({"mapper", "dropper", "robustness (%)"});
  const auto add_row = [&](const char* label, Mapper& mapper,
                           Dropper& dropper) {
    table.row().cell(label).cell(
        std::string(dropper.name()));
    table.cell(run_once(scenario, mapper, dropper, seed, n_tasks));
  };

  RandomMapper random_a(seed), random_b(seed), random_c(seed);
  NullDropper none;
  LastChanceDropper last_chance;
  ProactiveHeuristicDropper heuristic;

  add_row("Random", random_a, none);
  add_row("Random", random_b, last_chance);
  add_row("Random", random_c, heuristic);

  table.print(std::cout);
  std::cout << "\nBoth custom classes plug into the same Engine; the paper's\n"
               "heuristic dropper needs no tuning to rescue even a random\n"
               "mapper, while the naive zero-chance dropper helps less —\n"
               "it waits until a task is already doomed.\n";
  return 0;
}
