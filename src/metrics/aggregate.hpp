#pragma once

#include <vector>

#include "cost/cost_model.hpp"
#include "sim/sim_result.hpp"

namespace taskdrop {

/// Metrics extracted from one simulation trial, after warm-up/cool-down
/// exclusion.
struct TrialMetrics {
  double robustness_pct = 0.0;
  /// Approx-weighted robustness; equals robustness_pct when no task ran in
  /// approximate mode.
  double utility_pct = 0.0;
  double total_cost = 0.0;
  double normalized_cost = 0.0;  ///< Fig. 9's cost / robustness fraction
  double reactive_drop_share_pct = 0.0;
  long long completed_on_time = 0;
  long long completed_late = 0;
  long long dropped_reactive_queued = 0;
  long long dropped_proactive = 0;
  long long expired_unmapped = 0;
  long long lost_to_failure = 0;
  long long approx_on_time = 0;
  long long mapping_events = 0;
  long long dropper_invocations = 0;
};

TrialMetrics compute_trial_metrics(const SimResult& result,
                                   const CostModel& cost_model,
                                   int exclude_head = 100,
                                   int exclude_tail = 100,
                                   double approx_weight = 0.5);

/// Total dollars of executing time across all machines of a run. Lives
/// here rather than on CostModel so the cost layer stays below the
/// simulator in the module DAG (see tools/check_layering.py).
double total_cost(const CostModel& cost_model, const SimResult& result);

/// Fig. 9's normalised cost: total cost divided by the fraction of tasks
/// completed on time (robustness/100). Returns 0 when robustness is 0.
double cost_per_robustness(const CostModel& cost_model,
                           const SimResult& result, int exclude_head = 100,
                           int exclude_tail = 100);

/// Mean and 95 % confidence half-width of a per-trial series — the paper's
/// reporting convention (section V-A).
struct Summary {
  double mean = 0.0;
  double ci95 = 0.0;
};

Summary summarize(const std::vector<double>& values);

/// Extracts one field across trials, e.g.
/// `series(trials, &TrialMetrics::robustness_pct)`.
std::vector<double> series(const std::vector<TrialMetrics>& trials,
                           double TrialMetrics::* field);

}  // namespace taskdrop
