#include "metrics/report.hpp"

#include <ostream>

namespace taskdrop {

std::string format_summary(const Summary& summary, int precision) {
  return format_fixed(summary.mean, precision) + " +/- " +
         format_fixed(summary.ci95, precision);
}

void add_summary_row(Table& table, const std::string& label,
                     const Summary& summary, int precision) {
  table.row().cell(label).cell(summary.mean, precision).cell(summary.ci95,
                                                             precision);
}

Table sweep_table(const SweepReport& report) {
  std::vector<std::string> headers = report.active_axes;
  headers.insert(headers.end(),
                 {"robustness (%)", "ci95", "utility (%)",
                  "cost/robustness ($)", "reactive share (%)"});
  Table table(std::move(headers));
  for (const SweepCellResult& cell : report.cells) {
    table.row();
    for (const std::string& axis : report.active_axes) {
      table.cell(axis_label(cell.point, axis));
    }
    table.cell(cell.result.robustness.mean)
        .cell(cell.result.robustness.ci95)
        .cell(cell.result.utility.mean)
        .cell(cell.result.normalized_cost.mean, 4)
        .cell(cell.result.reactive_share.mean);
  }
  return table;
}

void write_sweep_csv(std::ostream& os, const SweepReport& report) {
  sweep_table(report).print_csv(os);
}

namespace {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

void write_summary_json(std::ostream& os, const char* key,
                        const Summary& summary) {
  os << '"' << key << "\": {\"mean\": " << summary.mean
     << ", \"ci95\": " << summary.ci95 << '}';
}

}  // namespace

void write_sweep_json(std::ostream& os, const SweepReport& report) {
  os << "{\n  \"schema\": \"taskdrop-sweep/v1\",\n  \"name\": \""
     << json_escape(report.name) << "\",\n  \"cells\": [";
  for (std::size_t i = 0; i < report.cells.size(); ++i) {
    const SweepCellResult& cell = report.cells[i];
    const ExperimentConfig& config = cell.config;
    os << (i == 0 ? "\n" : ",\n") << "    {\"point\": {";
    static const char* const kAxes[] = {
        "scenario",   "level",      "mapper",       "dropper", "gamma",
        "capacity",   "engagement", "conditioning", "failures"};
    bool first = true;
    for (const char* axis : kAxes) {
      os << (first ? "" : ", ") << '"' << axis << "\": \""
         << json_escape(axis_label(cell.point, axis)) << '"';
      first = false;
    }
    os << "},\n     \"config\": {\"mapper\": \"" << json_escape(config.mapper)
       << "\", \"dropper\": \"" << config.dropper.name()
       << "\", \"tasks\": " << config.workload.n_tasks
       << ", \"oversub\": " << config.workload.oversubscription
       << ", \"gamma\": " << config.workload.gamma
       << ", \"capacity\": " << config.queue_capacity
       << ", \"trials\": " << config.trials << ", \"seed\": " << config.seed
       << "},\n     \"metrics\": {";
    write_summary_json(os, "robustness_pct", cell.result.robustness);
    os << ", ";
    write_summary_json(os, "utility_pct", cell.result.utility);
    os << ", ";
    write_summary_json(os, "normalized_cost", cell.result.normalized_cost);
    os << ", ";
    write_summary_json(os, "reactive_share_pct", cell.result.reactive_share);
    os << "}}";
  }
  os << "\n  ]\n}\n";
}

}  // namespace taskdrop
