#include "metrics/report.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace taskdrop {

std::string format_summary(const Summary& summary, int precision) {
  return format_fixed(summary.mean, precision) + " +/- " +
         format_fixed(summary.ci95, precision);
}

void add_summary_row(Table& table, const std::string& label,
                     const Summary& summary, int precision) {
  table.row().cell(label).cell(summary.mean, precision).cell(summary.ci95,
                                                             precision);
}

Table sweep_table(const SweepReport& report) {
  std::vector<std::string> headers = report.active_axes;
  headers.insert(headers.end(),
                 {"robustness (%)", "ci95", "utility (%)",
                  "cost/robustness ($)", "reactive share (%)"});
  Table table(std::move(headers));
  for (const SweepCellResult& cell : report.cells) {
    table.row();
    for (const std::string& axis : report.active_axes) {
      table.cell(axis_label(cell.point, axis));
    }
    table.cell(cell.result.robustness.mean)
        .cell(cell.result.robustness.ci95)
        .cell(cell.result.utility.mean)
        .cell(cell.result.normalized_cost.mean, 4)
        .cell(cell.result.reactive_share.mean);
  }
  return table;
}

void write_sweep_csv(std::ostream& os, const SweepReport& report) {
  sweep_table(report).print_csv(os);
}

namespace {

const char* const kSchema = "taskdrop-sweep/v2";

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

/// JSON has no literal for inf/nan; summaries degrade to null (consumers
/// treat the statistic as undefined).
std::string json_number(double value) {
  return std::isfinite(value) ? format_double(value) : std::string("null");
}

/// Trial payloads must round-trip bitwise through merge, so non-finite
/// values are preserved as the strings "inf"/"-inf"/"nan" instead.
std::string json_trial_number(double value) {
  return std::isfinite(value) ? format_double(value)
                              : '"' + format_double(value) + '"';
}

/// The per-trial payload schema, shared by the writer and the shard
/// reader so the two cannot drift apart.
struct TrialField {
  const char* key;
  double TrialMetrics::* real;
  long long TrialMetrics::* integer;
};

constexpr TrialField kTrialFields[] = {
    {"robustness_pct", &TrialMetrics::robustness_pct, nullptr},
    {"utility_pct", &TrialMetrics::utility_pct, nullptr},
    {"total_cost", &TrialMetrics::total_cost, nullptr},
    {"normalized_cost", &TrialMetrics::normalized_cost, nullptr},
    {"reactive_drop_share_pct", &TrialMetrics::reactive_drop_share_pct,
     nullptr},
    {"completed_on_time", nullptr, &TrialMetrics::completed_on_time},
    {"completed_late", nullptr, &TrialMetrics::completed_late},
    {"dropped_reactive_queued", nullptr,
     &TrialMetrics::dropped_reactive_queued},
    {"dropped_proactive", nullptr, &TrialMetrics::dropped_proactive},
    {"expired_unmapped", nullptr, &TrialMetrics::expired_unmapped},
    {"lost_to_failure", nullptr, &TrialMetrics::lost_to_failure},
    {"approx_on_time", nullptr, &TrialMetrics::approx_on_time},
    {"mapping_events", nullptr, &TrialMetrics::mapping_events},
    {"dropper_invocations", nullptr, &TrialMetrics::dropper_invocations},
};

void write_summary_json(std::ostream& os, const char* key,
                        const Summary& summary) {
  os << '"' << key << "\": {\"mean\": " << json_number(summary.mean)
     << ", \"ci95\": " << json_number(summary.ci95) << '}';
}

void write_point_json(std::ostream& os, const SweepPoint& point) {
  static const char* const kAxes[] = {
      "scenario",   "level",      "mapper",       "dropper", "gamma",
      "capacity",   "engagement", "conditioning", "failures"};
  os << "\"point\": {";
  bool first = true;
  for (const char* axis : kAxes) {
    os << (first ? "" : ", ") << '"' << axis << "\": \""
       << json_escape(axis_label(point, axis)) << '"';
    first = false;
  }
  os << '}';
}

void write_config_json(std::ostream& os, const ExperimentConfig& config) {
  os << "\"config\": {\"mapper\": \"" << json_escape(config.mapper)
     << "\", \"dropper\": \"" << config.dropper.name()
     << "\", \"tasks\": " << config.workload.n_tasks
     << ", \"oversub\": " << json_number(config.workload.oversubscription)
     << ", \"gamma\": " << json_number(config.workload.gamma)
     << ", \"capacity\": " << config.queue_capacity
     << ", \"trials\": " << config.trials << ", \"seed\": " << config.seed
     << '}';
}

void write_cell_summaries_json(std::ostream& os, const ExperimentResult& r) {
  os << "\"metrics\": {";
  write_summary_json(os, "robustness_pct", r.robustness);
  os << ", ";
  write_summary_json(os, "utility_pct", r.utility);
  os << ", ";
  write_summary_json(os, "normalized_cost", r.normalized_cost);
  os << ", ";
  write_summary_json(os, "reactive_share_pct", r.reactive_share);
  os << '}';
}

void write_cell_trials_json(std::ostream& os, const SweepCellResult& cell) {
  os << "\"trials\": [";
  for (std::size_t j = 0; j < cell.trial_indices.size(); ++j) {
    const TrialMetrics& metrics = cell.result.trials[j];
    os << (j == 0 ? "\n" : ",\n") << "       {\"trial\": "
       << cell.trial_indices[j] << ", \"metrics\": {";
    bool first = true;
    for (const TrialField& field : kTrialFields) {
      os << (first ? "" : ", ") << '"' << field.key << "\": ";
      if (field.real != nullptr) {
        os << json_trial_number(metrics.*field.real);
      } else {
        os << metrics.*field.integer;
      }
      first = false;
    }
    os << "}}";
  }
  os << "\n     ]";
}

}  // namespace

void write_sweep_json(std::ostream& os, const SweepReport& report) {
  os << "{\n  \"schema\": \"" << kSchema << "\",\n  \"name\": \""
     << json_escape(report.name) << '"';
  if (report.shard) {
    os << ",\n  \"shard\": {\"index\": " << report.shard->index
       << ", \"count\": " << report.shard->count << "}";
    os << ",\n  \"spec\": {";
    bool first = true;
    for (const auto& [key, values] : report.spec_map) {
      os << (first ? "\n" : ",\n") << "    \"" << json_escape(key)
         << "\": [";
      for (std::size_t i = 0; i < values.size(); ++i) {
        os << (i == 0 ? "" : ", ") << '"' << json_escape(values[i]) << '"';
      }
      os << ']';
      first = false;
    }
    os << "\n  }";
  }
  os << ",\n  \"cells\": [";
  bool first_cell = true;
  for (std::size_t i = 0; i < report.cells.size(); ++i) {
    const SweepCellResult& cell = report.cells[i];
    // A shard document carries only the cells it owns trials of.
    if (report.shard && cell.trial_indices.empty()) continue;
    os << (first_cell ? "\n" : ",\n") << "    {";
    if (report.shard) os << "\"cell\": " << i << ",\n     ";
    write_point_json(os, cell.point);
    os << ",\n     ";
    write_config_json(os, cell.config);
    os << ",\n     ";
    if (report.shard) {
      write_cell_trials_json(os, cell);
    } else {
      write_cell_summaries_json(os, cell.result);
    }
    os << '}';
    first_cell = false;
  }
  os << "\n  ]\n}\n";
}

// --- Shard-document parsing: a minimal recursive-descent JSON reader
// sized to the report schema (objects, arrays, strings, numbers, bools,
// null; the escapes json_escape emits). Numbers keep their token text so
// integer fields convert exactly and doubles go through one strtod.

namespace {

struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool boolean = false;
  std::string text;  ///< number token or decoded string payload
  std::vector<JsonValue> items;
  std::vector<std::pair<std::string, JsonValue>> members;
};

class JsonParser {
 public:
  explicit JsonParser(std::string text) : text_(std::move(text)) {}

  JsonValue parse() {
    JsonValue value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw std::invalid_argument("sweep shard JSON: " + message +
                                " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of document");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_keyword(const char* word) {
    const std::size_t length = std::string(word).size();
    if (text_.compare(pos_, length, word) != 0) return false;
    pos_ += length;
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    JsonValue value;
    const char c = peek();
    if (c == '{') {
      value.kind = JsonValue::Kind::Object;
      ++pos_;
      skip_ws();
      if (peek() == '}') {
        ++pos_;
        return value;
      }
      for (;;) {
        skip_ws();
        std::string key = parse_string_token();
        skip_ws();
        expect(':');
        value.members.emplace_back(std::move(key), parse_value());
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect('}');
        return value;
      }
    }
    if (c == '[') {
      value.kind = JsonValue::Kind::Array;
      ++pos_;
      skip_ws();
      if (peek() == ']') {
        ++pos_;
        return value;
      }
      for (;;) {
        value.items.push_back(parse_value());
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect(']');
        return value;
      }
    }
    if (c == '"') {
      value.kind = JsonValue::Kind::String;
      value.text = parse_string_token();
      return value;
    }
    if (c == 't' || c == 'f') {
      value.kind = JsonValue::Kind::Bool;
      if (consume_keyword("true")) {
        value.boolean = true;
        return value;
      }
      if (consume_keyword("false")) return value;
      fail("malformed literal");
    }
    if (c == 'n') {
      if (consume_keyword("null")) return value;
      fail("malformed literal");
    }
    if (c == '-' || (c >= '0' && c <= '9')) {
      value.kind = JsonValue::Kind::Number;
      const std::size_t start = pos_;
      if (peek() == '-') ++pos_;
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
              text_[pos_] == '.' || text_[pos_] == 'e' ||
              text_[pos_] == 'E' || text_[pos_] == '+' ||
              text_[pos_] == '-')) {
        ++pos_;
      }
      value.text = text_.substr(start, pos_ - start);
      if (value.text.empty() || value.text == "-") fail("malformed number");
      return value;
    }
    fail("unexpected character");
  }

  std::string parse_string_token() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        default: fail("unsupported string escape");
      }
    }
  }

  std::string text_;
  std::size_t pos_ = 0;
};

const JsonValue* find_member(const JsonValue& object, const char* key) {
  for (const auto& [name, value] : object.members) {
    if (name == key) return &value;
  }
  return nullptr;
}

const JsonValue& require_member(const JsonValue& object, const char* key,
                                const char* where) {
  const JsonValue* value = find_member(object, key);
  if (value == nullptr) {
    throw std::invalid_argument("sweep shard JSON: missing \"" +
                                std::string(key) + "\" in " + where);
  }
  return *value;
}

double double_of(const JsonValue& value, const char* where) {
  if (value.kind == JsonValue::Kind::Number) {
    // The token scanner accepts any run of number characters, so demand
    // strtod consumes the whole token — "1.2.3" must be a loud error,
    // not a silently merged 1.2.
    char* end = nullptr;
    const double parsed = std::strtod(value.text.c_str(), &end);
    if (end != value.text.c_str() + value.text.size()) {
      throw std::invalid_argument("sweep shard JSON: malformed number '" +
                                  value.text + "' for " + std::string(where));
    }
    return parsed;
  }
  // Non-finite trial values round-trip as strings (see json_trial_number).
  if (value.kind == JsonValue::Kind::String) {
    if (value.text == "inf") return HUGE_VAL;
    if (value.text == "-inf") return -HUGE_VAL;
    if (value.text == "nan") return std::nan("");
  }
  throw std::invalid_argument("sweep shard JSON: expected a number for " +
                              std::string(where));
}

long long integer_of(const JsonValue& value, const char* where) {
  if (value.kind != JsonValue::Kind::Number ||
      value.text.find_first_of(".eE") != std::string::npos) {
    throw std::invalid_argument("sweep shard JSON: expected an integer for " +
                                std::string(where));
  }
  std::size_t consumed = 0;
  long long parsed = 0;
  try {
    parsed = std::stoll(value.text, &consumed);
  } catch (const std::exception&) {
    throw std::invalid_argument("sweep shard JSON: integer out of range for " +
                                std::string(where));
  }
  if (consumed != value.text.size()) {
    throw std::invalid_argument("sweep shard JSON: malformed integer '" +
                                value.text + "' for " + std::string(where));
  }
  return parsed;
}

const std::string& string_of(const JsonValue& value, const char* where) {
  if (value.kind != JsonValue::Kind::String) {
    throw std::invalid_argument("sweep shard JSON: expected a string for " +
                                std::string(where));
  }
  return value.text;
}

}  // namespace

SweepShardReport read_sweep_shard_json(std::istream& is) {
  std::ostringstream buffer;
  buffer << is.rdbuf();
  const JsonValue root = JsonParser(buffer.str()).parse();
  if (root.kind != JsonValue::Kind::Object) {
    throw std::invalid_argument("sweep shard JSON: document is not an object");
  }

  const std::string& schema =
      string_of(require_member(root, "schema", "document"), "schema");
  if (schema != kSchema) {
    throw std::invalid_argument("sweep shard JSON: unsupported schema \"" +
                                schema + "\" (expected \"" + kSchema + "\")");
  }

  SweepShardReport shard;
  shard.name = string_of(require_member(root, "name", "document"), "name");

  const JsonValue* header = find_member(root, "shard");
  if (header == nullptr) {
    throw std::invalid_argument(
        "sweep shard JSON: no shard header — this is a plain sweep dump "
        "(summaries only); mergeable documents come from sweep --shard I/N");
  }
  shard.shard.index = static_cast<int>(
      integer_of(require_member(*header, "index", "shard"), "shard.index"));
  shard.shard.count = static_cast<int>(
      integer_of(require_member(*header, "count", "shard"), "shard.count"));
  shard.shard.validate();

  const JsonValue& spec = require_member(root, "spec", "document");
  if (spec.kind != JsonValue::Kind::Object) {
    throw std::invalid_argument("sweep shard JSON: spec is not an object");
  }
  for (const auto& [key, values] : spec.members) {
    if (values.kind != JsonValue::Kind::Array) {
      throw std::invalid_argument("sweep shard JSON: spec key " + key +
                                  " is not an array");
    }
    std::vector<std::string>& list = shard.spec[key];
    for (const JsonValue& item : values.items) {
      list.push_back(string_of(item, "spec value"));
    }
  }

  const JsonValue& cells = require_member(root, "cells", "document");
  if (cells.kind != JsonValue::Kind::Array) {
    throw std::invalid_argument("sweep shard JSON: cells is not an array");
  }
  for (const JsonValue& cell : cells.items) {
    const std::size_t cell_index = static_cast<std::size_t>(
        integer_of(require_member(cell, "cell", "cell"), "cell"));
    const JsonValue& trials = require_member(cell, "trials", "cell");
    if (trials.kind != JsonValue::Kind::Array) {
      throw std::invalid_argument("sweep shard JSON: trials is not an array");
    }
    for (const JsonValue& trial : trials.items) {
      SweepShardReport::TrialRecord record;
      record.cell = cell_index;
      record.trial = static_cast<int>(
          integer_of(require_member(trial, "trial", "trial"), "trial"));
      const JsonValue& metrics = require_member(trial, "metrics", "trial");
      for (const TrialField& field : kTrialFields) {
        const JsonValue& value = require_member(metrics, field.key, "metrics");
        if (field.real != nullptr) {
          record.metrics.*field.real = double_of(value, field.key);
        } else {
          record.metrics.*field.integer = integer_of(value, field.key);
        }
      }
      shard.trials.push_back(std::move(record));
    }
  }
  return shard;
}

SweepReport merge_sweep_reports(const std::vector<SweepShardReport>& shards) {
  if (shards.empty()) {
    throw std::invalid_argument("merge: no shard reports given");
  }
  const SweepShardReport& first = shards.front();
  const int count = first.shard.count;
  std::vector<bool> seen(static_cast<std::size_t>(count), false);
  for (const SweepShardReport& shard : shards) {
    shard.shard.validate();
    if (shard.shard.count != count) {
      throw std::invalid_argument(
          "merge: shard counts disagree (" + std::to_string(count) + " vs " +
          std::to_string(shard.shard.count) + ")");
    }
    if (shard.name != first.name) {
      throw std::invalid_argument("merge: shards name different sweeps (\"" +
                                  first.name + "\" vs \"" + shard.name +
                                  "\")");
    }
    if (shard.spec != first.spec) {
      throw std::invalid_argument(
          "merge: shard spec headers differ — every shard must come from "
          "the same canonical spec");
    }
    auto flag = seen.begin() + shard.shard.index;
    if (*flag) {
      throw std::invalid_argument("merge: duplicate shard " +
                                  std::to_string(shard.shard.index) + "/" +
                                  std::to_string(count));
    }
    *flag = true;
  }
  for (int i = 0; i < count; ++i) {
    if (!seen[static_cast<std::size_t>(i)]) {
      throw std::invalid_argument("merge: missing shard " + std::to_string(i) +
                                  "/" + std::to_string(count));
    }
  }

  // Re-expand the shared spec header; the canonical-rendering check means
  // every shard process expanded this exact grid.
  const SweepSpec spec = SweepSpec::from_map(first.spec);
  if (spec.to_map() != first.spec) {
    throw std::invalid_argument(
        "merge: shard spec header is not the canonical to_map rendering");
  }
  const std::vector<SweepCell> cells = expand(spec);
  const std::size_t trials_per_cell = static_cast<std::size_t>(spec.trials);

  std::vector<std::vector<TrialMetrics>> trials(
      cells.size(), std::vector<TrialMetrics>(trials_per_cell));
  std::vector<std::vector<bool>> have(
      cells.size(), std::vector<bool>(trials_per_cell, false));
  for (const SweepShardReport& shard : shards) {
    for (const SweepShardReport::TrialRecord& record : shard.trials) {
      if (record.cell >= cells.size()) {
        throw std::invalid_argument(
            "merge: cell index " + std::to_string(record.cell) +
            " out of range (grid has " + std::to_string(cells.size()) +
            " cells)");
      }
      if (record.trial < 0 || record.trial >= spec.trials) {
        throw std::invalid_argument(
            "merge: trial index " + std::to_string(record.trial) +
            " out of range (spec has " + std::to_string(spec.trials) +
            " trials)");
      }
      if (!shard_owns(shard.shard,
                      sweep_unit(record.cell, record.trial, spec.trials))) {
        throw std::invalid_argument(
            "merge: trial " + std::to_string(record.trial) + " of cell " +
            std::to_string(record.cell) + " does not belong to shard " +
            std::to_string(shard.shard.index) + "/" + std::to_string(count));
      }
      if (have[record.cell][static_cast<std::size_t>(record.trial)]) {
        throw std::invalid_argument(
            "merge: duplicate payload for trial " +
            std::to_string(record.trial) + " of cell " +
            std::to_string(record.cell));
      }
      have[record.cell][static_cast<std::size_t>(record.trial)] = true;
      trials[record.cell][static_cast<std::size_t>(record.trial)] =
          record.metrics;
    }
  }
  for (std::size_t c = 0; c < cells.size(); ++c) {
    for (std::size_t t = 0; t < trials_per_cell; ++t) {
      if (!have[c][t]) {
        throw std::invalid_argument("merge: missing trial " +
                                    std::to_string(t) + " of cell " +
                                    std::to_string(c));
      }
    }
  }

  SweepReport report;
  report.name = spec.name;
  report.active_axes = active_axes_of(spec);
  report.cells.resize(cells.size());
  for (std::size_t c = 0; c < cells.size(); ++c) {
    report.cells[c].point = cells[c].point;
    report.cells[c].config = cells[c].config;
    report.cells[c].result = summarize_trials(std::move(trials[c]));
    report.cells[c].trial_indices.resize(trials_per_cell);
    for (std::size_t t = 0; t < trials_per_cell; ++t) {
      report.cells[c].trial_indices[t] = static_cast<int>(t);
    }
  }
  return report;
}

}  // namespace taskdrop
