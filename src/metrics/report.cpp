#include "metrics/report.hpp"

namespace taskdrop {

std::string format_summary(const Summary& summary, int precision) {
  return format_fixed(summary.mean, precision) + " +/- " +
         format_fixed(summary.ci95, precision);
}

void add_summary_row(Table& table, const std::string& label,
                     const Summary& summary, int precision) {
  table.row().cell(label).cell(summary.mean, precision).cell(summary.ci95,
                                                             precision);
}

}  // namespace taskdrop
