#include "metrics/report.hpp"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "util/json.hpp"

namespace taskdrop {

std::string format_summary(const Summary& summary, int precision) {
  return format_fixed(summary.mean, precision) + " +/- " +
         format_fixed(summary.ci95, precision);
}

void add_summary_row(Table& table, const std::string& label,
                     const Summary& summary, int precision) {
  table.row().cell(label).cell(summary.mean, precision).cell(summary.ci95,
                                                             precision);
}

Table sweep_table(const SweepReport& report) {
  std::vector<std::string> headers = report.active_axes;
  headers.insert(headers.end(),
                 {"robustness (%)", "ci95", "utility (%)",
                  "cost/robustness ($)", "reactive share (%)"});
  Table table(std::move(headers));
  for (const SweepCellResult& cell : report.cells) {
    table.row();
    for (const std::string& axis : report.active_axes) {
      table.cell(axis_label(cell.point, axis));
    }
    table.cell(cell.result.robustness.mean)
        .cell(cell.result.robustness.ci95)
        .cell(cell.result.utility.mean)
        .cell(cell.result.normalized_cost.mean, 4)
        .cell(cell.result.reactive_share.mean);
  }
  return table;
}

void write_sweep_csv(std::ostream& os, const SweepReport& report) {
  sweep_table(report).print_csv(os);
}

namespace {

const char* const kSchema = "taskdrop-sweep/v2";

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

/// JSON has no literal for inf/nan; summaries degrade to null (consumers
/// treat the statistic as undefined).
std::string json_number(double value) {
  return std::isfinite(value) ? format_double(value) : std::string("null");
}

/// Trial payloads must round-trip bitwise through merge, so non-finite
/// values are preserved as the strings "inf"/"-inf"/"nan" instead.
std::string json_trial_number(double value) {
  return std::isfinite(value) ? format_double(value)
                              : '"' + format_double(value) + '"';
}

/// The per-trial payload schema, shared by the writer and the shard
/// reader so the two cannot drift apart.
struct TrialField {
  const char* key;
  double TrialMetrics::* real;
  long long TrialMetrics::* integer;
};

constexpr TrialField kTrialFields[] = {
    {"robustness_pct", &TrialMetrics::robustness_pct, nullptr},
    {"utility_pct", &TrialMetrics::utility_pct, nullptr},
    {"total_cost", &TrialMetrics::total_cost, nullptr},
    {"normalized_cost", &TrialMetrics::normalized_cost, nullptr},
    {"reactive_drop_share_pct", &TrialMetrics::reactive_drop_share_pct,
     nullptr},
    {"completed_on_time", nullptr, &TrialMetrics::completed_on_time},
    {"completed_late", nullptr, &TrialMetrics::completed_late},
    {"dropped_reactive_queued", nullptr,
     &TrialMetrics::dropped_reactive_queued},
    {"dropped_proactive", nullptr, &TrialMetrics::dropped_proactive},
    {"expired_unmapped", nullptr, &TrialMetrics::expired_unmapped},
    {"lost_to_failure", nullptr, &TrialMetrics::lost_to_failure},
    {"approx_on_time", nullptr, &TrialMetrics::approx_on_time},
    {"mapping_events", nullptr, &TrialMetrics::mapping_events},
    {"dropper_invocations", nullptr, &TrialMetrics::dropper_invocations},
};

void write_summary_json(std::ostream& os, const char* key,
                        const Summary& summary) {
  os << '"' << key << "\": {\"mean\": " << json_number(summary.mean)
     << ", \"ci95\": " << json_number(summary.ci95) << '}';
}

void write_point_json(std::ostream& os, const SweepPoint& point) {
  static const char* const kAxes[] = {
      "scenario",   "level",      "mapper",       "dropper", "gamma",
      "capacity",   "engagement", "conditioning", "failures"};
  os << "\"point\": {";
  bool first = true;
  for (const char* axis : kAxes) {
    os << (first ? "" : ", ") << '"' << axis << "\": \""
       << json_escape(axis_label(point, axis)) << '"';
    first = false;
  }
  os << '}';
}

void write_config_json(std::ostream& os, const ExperimentConfig& config) {
  os << "\"config\": {\"mapper\": \"" << json_escape(config.mapper)
     << "\", \"dropper\": \"" << config.dropper.name()
     << "\", \"tasks\": " << config.workload.n_tasks
     << ", \"oversub\": " << json_number(config.workload.oversubscription)
     << ", \"gamma\": " << json_number(config.workload.gamma)
     << ", \"capacity\": " << config.queue_capacity
     << ", \"trials\": " << config.trials << ", \"seed\": " << config.seed
     << '}';
}

void write_cell_summaries_json(std::ostream& os, const ExperimentResult& r) {
  os << "\"metrics\": {";
  write_summary_json(os, "robustness_pct", r.robustness);
  os << ", ";
  write_summary_json(os, "utility_pct", r.utility);
  os << ", ";
  write_summary_json(os, "normalized_cost", r.normalized_cost);
  os << ", ";
  write_summary_json(os, "reactive_share_pct", r.reactive_share);
  os << '}';
}

void write_cell_trials_json(std::ostream& os, const SweepCellResult& cell) {
  os << "\"trials\": [";
  for (std::size_t j = 0; j < cell.trial_indices.size(); ++j) {
    const TrialMetrics& metrics = cell.result.trials[j];
    os << (j == 0 ? "\n" : ",\n") << "       {\"trial\": "
       << cell.trial_indices[j] << ", \"metrics\": {";
    bool first = true;
    for (const TrialField& field : kTrialFields) {
      os << (first ? "" : ", ") << '"' << field.key << "\": ";
      if (field.real != nullptr) {
        os << json_trial_number(metrics.*field.real);
      } else {
        os << metrics.*field.integer;
      }
      first = false;
    }
    os << "}}";
  }
  os << "\n     ]";
}

}  // namespace

void write_sweep_json(std::ostream& os, const SweepReport& report) {
  // A shard or lease report is the mergeable form: partition header,
  // canonical spec map, and per-trial payloads instead of summaries.
  const bool mergeable = report.shard.has_value() || report.lease.has_value();
  os << "{\n  \"schema\": \"" << kSchema << "\",\n  \"name\": \""
     << json_escape(report.name) << '"';
  if (report.shard) {
    os << ",\n  \"shard\": {\"index\": " << report.shard->index
       << ", \"count\": " << report.shard->count << "}";
  }
  if (report.lease) {
    os << ",\n  \"lease\": {\"id\": " << report.lease->id
       << ", \"begin\": " << report.lease->begin
       << ", \"end\": " << report.lease->end << "}";
  }
  if (mergeable) {
    os << ",\n  \"spec\": {";
    bool first = true;
    for (const auto& [key, values] : report.spec_map) {
      os << (first ? "\n" : ",\n") << "    \"" << json_escape(key)
         << "\": [";
      for (std::size_t i = 0; i < values.size(); ++i) {
        os << (i == 0 ? "" : ", ") << '"' << json_escape(values[i]) << '"';
      }
      os << ']';
      first = false;
    }
    os << "\n  }";
  }
  os << ",\n  \"cells\": [";
  bool first_cell = true;
  for (std::size_t i = 0; i < report.cells.size(); ++i) {
    const SweepCellResult& cell = report.cells[i];
    // A mergeable document carries only the cells it owns trials of.
    if (mergeable && cell.trial_indices.empty()) continue;
    os << (first_cell ? "\n" : ",\n") << "    {";
    if (mergeable) os << "\"cell\": " << i << ",\n     ";
    write_point_json(os, cell.point);
    os << ",\n     ";
    write_config_json(os, cell.config);
    os << ",\n     ";
    if (mergeable) {
      write_cell_trials_json(os, cell);
    } else {
      write_cell_summaries_json(os, cell.result);
    }
    os << '}';
    first_cell = false;
  }
  os << "\n  ]\n}\n";
}

// --- Shard-document parsing, via the shared util/json reader. Helpers
// below bind the "sweep shard JSON" error context once.

namespace {

const std::string& json_context() {
  static const std::string context = "sweep shard JSON";
  return context;
}

const JsonValue& require_member(const JsonValue& object, const char* key,
                                const char* where) {
  return json_require(object, key, where, json_context());
}

double double_of(const JsonValue& value, const char* where) {
  return json_double(value, where, json_context());
}

long long integer_of(const JsonValue& value, const char* where) {
  return json_integer(value, where, json_context());
}

const std::string& string_of(const JsonValue& value, const char* where) {
  return json_string(value, where, json_context());
}

/// Bitwise payload equality, field for field through the shared schema
/// table. Doubles are compared as their bit patterns (memcpy, not ==):
/// re-executed units must reproduce *exactly* the same bytes, and NaN
/// payloads must compare equal to themselves.
bool trials_bitwise_equal(const TrialMetrics& a, const TrialMetrics& b) {
  for (const TrialField& field : kTrialFields) {
    if (field.real != nullptr) {
      std::uint64_t bits_a = 0;
      std::uint64_t bits_b = 0;
      std::memcpy(&bits_a, &(a.*field.real), sizeof(bits_a));
      std::memcpy(&bits_b, &(b.*field.real), sizeof(bits_b));
      if (bits_a != bits_b) return false;
    } else if (a.*field.integer != b.*field.integer) {
      return false;
    }
  }
  return true;
}

}  // namespace

SweepShardReport read_sweep_shard_json(std::istream& is) {
  std::ostringstream buffer;
  buffer << is.rdbuf();
  const JsonValue root = parse_json(buffer.str(), json_context());
  if (root.kind != JsonValue::Kind::Object) {
    throw std::invalid_argument("sweep shard JSON: document is not an object");
  }

  const std::string& schema =
      string_of(require_member(root, "schema", "document"), "schema");
  if (schema != kSchema) {
    throw std::invalid_argument("sweep shard JSON: unsupported schema \"" +
                                schema + "\" (expected \"" + kSchema + "\")");
  }

  SweepShardReport shard;
  shard.name = string_of(require_member(root, "name", "document"), "name");

  const JsonValue* shard_header = json_find(root, "shard");
  const JsonValue* lease_header = json_find(root, "lease");
  if (shard_header == nullptr && lease_header == nullptr) {
    throw std::invalid_argument(
        "sweep shard JSON: no shard or lease header — this is a plain sweep "
        "dump (summaries only); mergeable documents come from sweep "
        "--shard I/N or sweep --elastic");
  }
  if (shard_header != nullptr && lease_header != nullptr) {
    throw std::invalid_argument(
        "sweep shard JSON: document carries both a shard and a lease "
        "header");
  }
  if (shard_header != nullptr) {
    ShardSpec parsed;
    parsed.index = static_cast<int>(integer_of(
        require_member(*shard_header, "index", "shard"), "shard.index"));
    parsed.count = static_cast<int>(integer_of(
        require_member(*shard_header, "count", "shard"), "shard.count"));
    parsed.validate();
    shard.shard = parsed;
  } else {
    SweepLeaseRange parsed;
    parsed.id =
        integer_of(require_member(*lease_header, "id", "lease"), "lease.id");
    parsed.begin = static_cast<std::size_t>(integer_of(
        require_member(*lease_header, "begin", "lease"), "lease.begin"));
    parsed.end = static_cast<std::size_t>(integer_of(
        require_member(*lease_header, "end", "lease"), "lease.end"));
    parsed.validate();
    shard.lease = parsed;
  }

  const JsonValue& spec = require_member(root, "spec", "document");
  if (spec.kind != JsonValue::Kind::Object) {
    throw std::invalid_argument("sweep shard JSON: spec is not an object");
  }
  for (const auto& [key, values] : spec.members) {
    if (values.kind != JsonValue::Kind::Array) {
      throw std::invalid_argument("sweep shard JSON: spec key " + key +
                                  " is not an array");
    }
    std::vector<std::string>& list = shard.spec[key];
    for (const JsonValue& item : values.items) {
      list.push_back(string_of(item, "spec value"));
    }
  }

  const JsonValue& cells = require_member(root, "cells", "document");
  if (cells.kind != JsonValue::Kind::Array) {
    throw std::invalid_argument("sweep shard JSON: cells is not an array");
  }
  for (const JsonValue& cell : cells.items) {
    const std::size_t cell_index = static_cast<std::size_t>(
        integer_of(require_member(cell, "cell", "cell"), "cell"));
    const JsonValue& trials = require_member(cell, "trials", "cell");
    if (trials.kind != JsonValue::Kind::Array) {
      throw std::invalid_argument("sweep shard JSON: trials is not an array");
    }
    for (const JsonValue& trial : trials.items) {
      SweepShardReport::TrialRecord record;
      record.cell = cell_index;
      record.trial = static_cast<int>(
          integer_of(require_member(trial, "trial", "trial"), "trial"));
      const JsonValue& metrics = require_member(trial, "metrics", "trial");
      for (const TrialField& field : kTrialFields) {
        const JsonValue& value = require_member(metrics, field.key, "metrics");
        if (field.real != nullptr) {
          record.metrics.*field.real = double_of(value, field.key);
        } else {
          record.metrics.*field.integer = integer_of(value, field.key);
        }
      }
      shard.trials.push_back(std::move(record));
    }
  }
  return shard;
}

SweepReport merge_sweep_reports(const std::vector<SweepShardReport>& shards,
                                const MergeOptions& options) {
  if (shards.empty()) {
    throw std::invalid_argument("merge: no shard reports given");
  }
  const SweepShardReport& first = shards.front();
  // One partition kind throughout: a shard document asserts "I own every
  // unit congruent to my index", a lease document "I own [begin, end)" —
  // mixing them would make the ownership checks incoherent.
  const bool leased = first.lease.has_value();
  for (const SweepShardReport& shard : shards) {
    if (shard.shard.has_value() == shard.lease.has_value()) {
      throw std::invalid_argument(
          "merge: document carries " +
          std::string(shard.shard ? "both shard and lease headers"
                                  : "neither a shard nor a lease header"));
    }
    if (shard.lease.has_value() != leased) {
      throw std::invalid_argument(
          "merge: shard and lease documents mixed — merge round-robin "
          "shards and elastic leases separately");
    }
    if (shard.name != first.name) {
      throw std::invalid_argument("merge: shards name different sweeps (\"" +
                                  first.name + "\" vs \"" + shard.name +
                                  "\")");
    }
    if (shard.spec != first.spec) {
      throw std::invalid_argument(
          "merge: shard spec headers differ — every shard must come from "
          "the same canonical spec");
    }
  }
  if (!leased) {
    const int count = first.shard->count;
    // Every index 0..count-1 must appear; without allow_reexecuted it must
    // appear exactly once (a re-run shard is a re-executed partition).
    std::vector<bool> seen(static_cast<std::size_t>(count), false);
    for (const SweepShardReport& shard : shards) {
      shard.shard->validate();
      if (shard.shard->count != count) {
        throw std::invalid_argument(
            "merge: shard counts disagree (" + std::to_string(count) +
            " vs " + std::to_string(shard.shard->count) + ")");
      }
      auto flag = seen.begin() + shard.shard->index;
      if (*flag && !options.allow_reexecuted) {
        throw std::invalid_argument("merge: duplicate shard " +
                                    std::to_string(shard.shard->index) + "/" +
                                    std::to_string(count));
      }
      *flag = true;
    }
    for (int i = 0; i < count; ++i) {
      if (!seen[static_cast<std::size_t>(i)]) {
        throw std::invalid_argument("merge: missing shard " +
                                    std::to_string(i) + "/" +
                                    std::to_string(count));
      }
    }
  }

  // Re-expand the shared spec header; the canonical-rendering check means
  // every shard process expanded this exact grid.
  const SweepSpec spec = SweepSpec::from_map(first.spec);
  if (spec.to_map() != first.spec) {
    throw std::invalid_argument(
        "merge: shard spec header is not the canonical to_map rendering");
  }
  const std::vector<SweepCell> cells = expand(spec);
  const std::size_t trials_per_cell = static_cast<std::size_t>(spec.trials);
  const std::size_t units = cells.size() * trials_per_cell;

  std::vector<std::vector<TrialMetrics>> trials(
      cells.size(), std::vector<TrialMetrics>(trials_per_cell));
  std::vector<std::vector<bool>> have(
      cells.size(), std::vector<bool>(trials_per_cell, false));
  for (const SweepShardReport& shard : shards) {
    if (leased) {
      shard.lease->validate();
      if (shard.lease->end > units) {
        throw std::invalid_argument(
            "merge: lease range [" + std::to_string(shard.lease->begin) +
            ", " + std::to_string(shard.lease->end) +
            ") exceeds the grid's " + std::to_string(units) + " units");
      }
    }
    for (const SweepShardReport::TrialRecord& record : shard.trials) {
      if (record.cell >= cells.size()) {
        throw std::invalid_argument(
            "merge: cell index " + std::to_string(record.cell) +
            " out of range (grid has " + std::to_string(cells.size()) +
            " cells)");
      }
      if (record.trial < 0 || record.trial >= spec.trials) {
        throw std::invalid_argument(
            "merge: trial index " + std::to_string(record.trial) +
            " out of range (spec has " + std::to_string(spec.trials) +
            " trials)");
      }
      const std::size_t unit =
          sweep_unit(record.cell, record.trial, spec.trials);
      const bool owned = leased ? lease_owns(*shard.lease, unit)
                                : shard_owns(*shard.shard, unit);
      if (!owned) {
        throw std::invalid_argument(
            "merge: trial " + std::to_string(record.trial) + " of cell " +
            std::to_string(record.cell) + " does not belong to " +
            (leased ? "lease " + std::to_string(shard.lease->id) + " [" +
                          std::to_string(shard.lease->begin) + ", " +
                          std::to_string(shard.lease->end) + ")"
                    : "shard " + std::to_string(shard.shard->index) + "/" +
                          std::to_string(shard.shard->count)));
      }
      auto slot = have[record.cell].begin() + record.trial;
      if (*slot) {
        // Deterministic trial seeding means a reclaimed-and-also-finished
        // unit reproduces the exact bytes; anything else is corruption or
        // a spec/code mismatch, and is loud with or without
        // allow_reexecuted.
        if (!trials_bitwise_equal(
                trials[record.cell][static_cast<std::size_t>(record.trial)],
                record.metrics)) {
          throw std::invalid_argument(
              "merge: divergent re-executed payloads for trial " +
              std::to_string(record.trial) + " of cell " +
              std::to_string(record.cell) +
              " — the documents disagree bitwise and cannot both be right");
        }
        if (!options.allow_reexecuted) {
          throw std::invalid_argument(
              "merge: duplicate payload for trial " +
              std::to_string(record.trial) + " of cell " +
              std::to_string(record.cell) +
              " (re-run merge with --allow-reexecuted if this is a "
              "reclaimed lease)");
        }
        continue;
      }
      *slot = true;
      trials[record.cell][static_cast<std::size_t>(record.trial)] =
          record.metrics;
    }
  }
  for (std::size_t c = 0; c < cells.size(); ++c) {
    for (std::size_t t = 0; t < trials_per_cell; ++t) {
      if (!have[c][t]) {
        throw std::invalid_argument("merge: missing trial " +
                                    std::to_string(t) + " of cell " +
                                    std::to_string(c));
      }
    }
  }

  SweepReport report;
  report.name = spec.name;
  report.active_axes = active_axes_of(spec);
  report.cells.resize(cells.size());
  for (std::size_t c = 0; c < cells.size(); ++c) {
    report.cells[c].point = cells[c].point;
    report.cells[c].config = cells[c].config;
    report.cells[c].result = summarize_trials(std::move(trials[c]));
    report.cells[c].trial_indices.resize(trials_per_cell);
    for (std::size_t t = 0; t < trials_per_cell; ++t) {
      report.cells[c].trial_indices[t] = static_cast<int>(t);
    }
  }
  return report;
}

}  // namespace taskdrop
