#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "exp/sweep.hpp"
#include "metrics/aggregate.hpp"
#include "util/table.hpp"

namespace taskdrop {

/// Formats a Summary as "mean ± ci" with the given precision.
std::string format_summary(const Summary& summary, int precision = 2);

/// Appends a labelled summary row (label, mean, ci) to a table that was
/// created with matching headers.
void add_summary_row(Table& table, const std::string& label,
                     const Summary& summary, int precision = 2);

// --- Consolidated sweep output. One long-format row per cell: the active
// axes identify it, then the standard summary metrics.

/// Headers: active axes + robustness/ci95/utility/cost/reactive-share.
Table sweep_table(const SweepReport& report);

/// sweep_table in RFC-4180-ish CSV.
void write_sweep_csv(std::ostream& os, const SweepReport& report);

/// Machine-readable dump (schema "taskdrop-sweep/v2"): every cell's full
/// axis point, the resolved config, and mean/ci95 of each summary metric.
/// All numbers are emitted with the shortest round-trippable rendering;
/// non-finite summary values become null so the document stays valid JSON.
///
/// When `report.shard` or `report.lease` is engaged (a run_sweep shard or
/// a leased unit range), the document grows the matching `shard`/`lease`
/// header, the canonical `spec` map, and per-trial metric payloads per
/// touched cell in place of the summary block — the mergeable form
/// read_sweep_shard_json consumes. Non-finite trial values are kept as the
/// strings "inf"/"-inf"/"nan" so they survive the round trip exactly.
void write_sweep_json(std::ostream& os, const SweepReport& report);

// --- Shard merging. A sharded (or elastic leased) run emits one mergeable
// JSON document per shard/lease; merging re-expands the shared spec header
// and reunites the per-trial payloads into a report bitwise-identical to
// the unsharded run_sweep (trial RNG is seeded per (cell, trial), so the
// partition cannot drift).

/// One parsed mergeable document: the header identifying its sweep and
/// partition — exactly one of `shard` (round-robin) or `lease` (contiguous
/// unit range) is engaged — plus every (cell, trial) payload it carries.
struct SweepShardReport {
  std::string name;
  std::optional<ShardSpec> shard;
  std::optional<SweepLeaseRange> lease;
  /// Canonical SweepSpec::to_map rendering shared by every shard.
  SpecMap spec;
  struct TrialRecord {
    std::size_t cell = 0;
    int trial = 0;
    TrialMetrics metrics;
  };
  std::vector<TrialRecord> trials;
};

/// Parses a mergeable document written by write_sweep_json for a sharded
/// or leased run. Throws std::invalid_argument on malformed JSON (the
/// error names the line and byte offset — a truncated file from a killed
/// worker is rejected loudly, never half-read), an unsupported schema, or
/// a document without a shard/lease header (plain sweep dumps carry only
/// summaries and cannot be merged).
SweepShardReport read_sweep_shard_json(std::istream& is);

struct MergeOptions {
  /// Tolerate the same (cell, trial) payload arriving from more than one
  /// document when the payloads are bitwise identical — the signature of a
  /// reclaimed lease whose original owner also finished (both executed the
  /// same deterministic unit). Divergent duplicate payloads are always a
  /// loud error: they mean the documents came from different code, specs,
  /// or corrupted files. Off by default, where any duplicate is an error.
  bool allow_reexecuted = false;
};

/// Reunites shard or lease reports into the unsharded SweepReport:
/// validates the headers against the canonical spec rendering (equal
/// specs and names; one header kind throughout; for shards, every index
/// 0..count-1 present — gaps are errors; order does not matter),
/// re-expands the spec, places every trial payload by its (cell, trial)
/// key after checking it belongs to the shard/lease that carries it, then
/// re-runs summarize_trials per completed cell. Throws
/// std::invalid_argument when any unit is missing, duplicated (see
/// MergeOptions::allow_reexecuted), or misplaced.
SweepReport merge_sweep_reports(const std::vector<SweepShardReport>& shards,
                                const MergeOptions& options = {});

}  // namespace taskdrop
