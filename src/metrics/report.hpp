#pragma once

#include <iosfwd>
#include <string>

#include "exp/sweep.hpp"
#include "metrics/aggregate.hpp"
#include "util/table.hpp"

namespace taskdrop {

/// Formats a Summary as "mean ± ci" with the given precision.
std::string format_summary(const Summary& summary, int precision = 2);

/// Appends a labelled summary row (label, mean, ci) to a table that was
/// created with matching headers.
void add_summary_row(Table& table, const std::string& label,
                     const Summary& summary, int precision = 2);

// --- Consolidated sweep output. One long-format row per cell: the active
// axes identify it, then the standard summary metrics.

/// Headers: active axes + robustness/ci95/utility/cost/reactive-share.
Table sweep_table(const SweepReport& report);

/// sweep_table in RFC-4180-ish CSV.
void write_sweep_csv(std::ostream& os, const SweepReport& report);

/// Machine-readable dump (schema "taskdrop-sweep/v1"): every cell's full
/// axis point, the resolved config, and mean/ci95 of each summary metric.
void write_sweep_json(std::ostream& os, const SweepReport& report);

}  // namespace taskdrop
