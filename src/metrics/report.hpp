#pragma once

#include <string>

#include "metrics/aggregate.hpp"
#include "util/table.hpp"

namespace taskdrop {

/// Formats a Summary as "mean ± ci" with the given precision.
std::string format_summary(const Summary& summary, int precision = 2);

/// Appends a labelled summary row (label, mean, ci) to a table that was
/// created with matching headers.
void add_summary_row(Table& table, const std::string& label,
                     const Summary& summary, int precision = 2);

}  // namespace taskdrop
