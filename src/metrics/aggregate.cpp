#include "metrics/aggregate.hpp"

#include "util/stats.hpp"

namespace taskdrop {

TrialMetrics compute_trial_metrics(const SimResult& result,
                                   const CostModel& cost_model,
                                   int exclude_head, int exclude_tail,
                                   double approx_weight) {
  TrialMetrics metrics;
  metrics.robustness_pct = result.robustness_pct(exclude_head, exclude_tail);
  metrics.utility_pct =
      result.utility_pct(approx_weight, exclude_head, exclude_tail);
  metrics.total_cost = total_cost(cost_model, result);
  metrics.normalized_cost =
      cost_per_robustness(cost_model, result, exclude_head, exclude_tail);
  metrics.reactive_drop_share_pct =
      result.reactive_drop_share_pct(exclude_head, exclude_tail);
  const SimCounts counts = result.counts_in_window(exclude_head, exclude_tail);
  metrics.completed_on_time = counts.completed_on_time;
  metrics.completed_late = counts.completed_late;
  metrics.dropped_reactive_queued = counts.dropped_reactive_queued;
  metrics.expired_unmapped = counts.expired_unmapped;
  metrics.lost_to_failure = counts.lost_to_failure;
  metrics.approx_on_time = counts.approx_on_time;
  metrics.dropped_proactive = counts.dropped_proactive;
  metrics.mapping_events = result.mapping_events;
  metrics.dropper_invocations = result.dropper_invocations;
  return metrics;
}

double total_cost(const CostModel& cost_model, const SimResult& result) {
  return cost_model.busy_cost(result.busy_ticks, result.machine_types);
}

double cost_per_robustness(const CostModel& cost_model,
                           const SimResult& result, int exclude_head,
                           int exclude_tail) {
  const double robustness =
      result.robustness_pct(exclude_head, exclude_tail);
  if (robustness <= 0.0) return 0.0;
  return total_cost(cost_model, result) / (robustness / 100.0);
}

Summary summarize(const std::vector<double>& values) {
  return Summary{mean(values), ci95_halfwidth(values)};
}

std::vector<double> series(const std::vector<TrialMetrics>& trials,
                           double TrialMetrics::* field) {
  std::vector<double> out;
  out.reserve(trials.size());
  for (const TrialMetrics& t : trials) out.push_back(t.*field);
  return out;
}

}  // namespace taskdrop
