#pragma once

#include <cstdint>
#include <string>

namespace taskdrop {

// --- Crash-safe file publication. Every report, snapshot and lease
// document in the tree goes through these two helpers so a killed process
// can never leave a truncated file that a later merge or restore
// half-reads: the bytes are staged to a uniquely named temporary in the
// destination directory, fsync'd, and moved into place with one atomic
// directory operation. A reader (or a crash at any point) sees either the
// old file or the complete new one, never a prefix.

/// Replaces `path` with `content` atomically (tmp + fsync + rename(2)).
/// Throws std::runtime_error ("cannot write <path>: ...") on any I/O
/// failure; the temporary is unlinked best-effort.
void atomic_write_file(const std::string& path, const std::string& content);

/// Creates `path` with `content` atomically *and exclusively* (tmp +
/// fsync + link(2), which fails when `path` already exists). Returns false
/// when `path` exists — the lease layer's claim race loser — and throws
/// std::runtime_error on any other I/O failure. Like atomic_write_file,
/// readers never observe a partially written file.
bool atomic_create_file(const std::string& path, const std::string& content);

/// Milliseconds on the system-wide monotonic clock (CLOCK_MONOTONIC: time
/// since boot, immune to wall-clock steps and comparable across processes
/// on the same host). Lease heartbeats are stamped with it, so an expiry
/// check never trips over NTP adjustments. Not comparable across machines
/// — the filesystem lease coordinator is a same-host protocol (the
/// cross-machine TCP coordinator is a noted follow-on).
std::int64_t monotonic_ms();

}  // namespace taskdrop
