#include "util/stats.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <string>

namespace taskdrop {

void RunningStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double sample_stddev(const std::vector<double>& xs) {
  RunningStats acc;
  for (double x : xs) acc.add(x);
  return acc.stddev();
}

double t_critical_95(std::size_t df) {
  // Two-sided 95 % quantiles of the Student-t distribution, df = 1..30.
  static constexpr std::array<double, 30> kTable = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  if (df == 0) return 0.0;
  if (df <= kTable.size()) return kTable[df - 1];
  return 1.96;  // normal limit
}

double ci95_halfwidth(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double s = sample_stddev(xs);
  const double t = t_critical_95(xs.size() - 1);
  return t * s / std::sqrt(static_cast<double>(xs.size()));
}

double percentile(std::vector<double> xs, double p) {
  std::sort(xs.begin(), xs.end());
  return percentile_sorted(xs, p);
}

double percentile_sorted(const std::vector<double>& sorted_xs, double p) {
  if (p < 0.0 || p > 100.0) {
    throw std::invalid_argument("percentile p must be in [0, 100], got " +
                                std::to_string(p));
  }
  assert(std::is_sorted(sorted_xs.begin(), sorted_xs.end()) &&
         "percentile_sorted requires ascending input");
  if (sorted_xs.empty()) return 0.0;
  const double rank =
      p / 100.0 * static_cast<double>(sorted_xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  if (lo + 1 >= sorted_xs.size()) return sorted_xs.back();
  const double frac = rank - static_cast<double>(lo);
  return sorted_xs[lo] + frac * (sorted_xs[lo + 1] - sorted_xs[lo]);
}

LatencyReservoir::LatencyReservoir(std::size_t capacity)
    : capacity_(capacity + capacity % 2) {
  if (capacity < 2) {
    throw std::invalid_argument(
        "LatencyReservoir capacity must be >= 2, got " +
        std::to_string(capacity));
  }
  samples_.reserve(capacity_);
}

void LatencyReservoir::add(double x) {
  const std::size_t index = count_;
  ++count_;
  total_ += x;
  if (x > max_) max_ = x;
  if (index % stride_ != 0) return;
  if (samples_.size() == capacity_) {
    // Compact to every second sample and double the stride. Kept indices
    // were k*stride for k in [0, capacity); keeping even k leaves
    // m*(2*stride) for m in [0, capacity/2) — and the incoming index,
    // capacity*stride, lies on the new lattice because capacity is even.
    for (std::size_t i = 0; 2 * i < samples_.size(); ++i) {
      samples_[i] = samples_[2 * i];
    }
    samples_.resize(capacity_ / 2);
    stride_ *= 2;
    if (index % stride_ != 0) return;
  }
  samples_.push_back(x);
}

}  // namespace taskdrop
