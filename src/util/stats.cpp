#include "util/stats.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>
#include <string>

namespace taskdrop {

void RunningStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double sample_stddev(const std::vector<double>& xs) {
  RunningStats acc;
  for (double x : xs) acc.add(x);
  return acc.stddev();
}

double t_critical_95(std::size_t df) {
  // Two-sided 95 % quantiles of the Student-t distribution, df = 1..30.
  static constexpr std::array<double, 30> kTable = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  if (df == 0) return 0.0;
  if (df <= kTable.size()) return kTable[df - 1];
  return 1.96;  // normal limit
}

double ci95_halfwidth(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double s = sample_stddev(xs);
  const double t = t_critical_95(xs.size() - 1);
  return t * s / std::sqrt(static_cast<double>(xs.size()));
}

double percentile(std::vector<double> xs, double p) {
  if (p < 0.0 || p > 100.0) {
    throw std::invalid_argument("percentile p must be in [0, 100], got " +
                                std::to_string(p));
  }
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double rank =
      p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  if (lo + 1 >= xs.size()) return xs.back();
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + frac * (xs[lo + 1] - xs[lo]);
}

}  // namespace taskdrop
