#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <limits>
#include <ostream>
#include <sstream>

namespace taskdrop {

std::string format_fixed(double value, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << value;
  return oss.str();
}

std::string format_double(double value) {
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0.0 ? "inf" : "-inf";
  std::ostringstream oss;
  for (int digits = 1; digits <= std::numeric_limits<double>::max_digits10;
       ++digits) {
    oss.str("");
    oss << std::setprecision(digits) << value;
    if (std::strtod(oss.str().c_str(), nullptr) == value) break;
  }
  return oss.str();
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(const std::string& value) {
  rows_.back().push_back(value);
  return *this;
}

Table& Table::cell(double value, int precision) {
  return cell(format_fixed(value, precision));
}

Table& Table::cell(long long value) { return cell(std::to_string(value)); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], r[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& text = c < cells.size() ? cells[c] : std::string();
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << text;
    }
    os << '\n';
  };
  print_row(headers_);
  for (std::size_t c = 0; c < widths.size(); ++c) {
    os << std::string(widths[c], '-') << "  ";
  }
  os << '\n';
  for (const auto& r : rows_) print_row(r);
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

void Table::print_csv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(cells[c]);
    }
    os << '\n';
  };
  print_row(headers_);
  for (const auto& r : rows_) print_row(r);
}

}  // namespace taskdrop
