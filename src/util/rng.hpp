#pragma once

#include <cstdint>
#include <random>

namespace taskdrop {

/// Deterministic, stream-splittable random number generator.
///
/// The generator is xoshiro256** seeded via SplitMix64, which is the
/// recommended seeding procedure of the xoshiro authors. It satisfies
/// std::uniform_random_bit_generator, so the standard distributions
/// (std::gamma_distribution etc.) can run on top of it.
///
/// Reproducibility contract: every experiment derives independent streams
/// with Rng::derive(root_seed, stream_id). The same (seed, stream) pair
/// always yields the same sequence on every platform, because only
/// shift/xor/multiply arithmetic on std::uint64_t is involved. (Note that
/// std:: distributions themselves are not cross-vendor deterministic; within
/// one toolchain, runs are exactly reproducible, which is what the
/// experiment harness requires.)
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four xoshiro words with successive SplitMix64 outputs.
  explicit Rng(std::uint64_t seed) { reseed(seed); }

  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() { return next(); }

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive), lo <= hi required.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Gamma variate with the given shape and scale (mean = shape * scale).
  double gamma(double shape, double scale);

  /// Exponential variate with the given mean.
  double exponential(double mean);

  /// A new generator whose state is a pure function of (seed, stream).
  /// Distinct streams are statistically independent for all practical
  /// purposes (SplitMix64 mixing of the pair).
  static Rng derive(std::uint64_t seed, std::uint64_t stream);

 private:
  std::uint64_t next();

  std::uint64_t state_[4]{};
};

}  // namespace taskdrop
