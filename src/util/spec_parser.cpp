#include "util/spec_parser.hpp"

#include <cctype>
#include <cerrno>
#include <climits>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace taskdrop {
namespace {

std::string trim(const std::string& text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

// --- JSON subset: one object of scalars / flat arrays of scalars. Numbers
// are kept as their source text so the sweep layer re-parses them with its
// own validation, exactly as it does for key=value input.

class JsonCursor {
 public:
  explicit JsonCursor(const std::string& text) : text_(text) {}

  SpecMap parse_object() {
    SpecMap map;
    expect('{');
    skip_space();
    if (peek() == '}') {
      ++pos_;
      finish();
      return map;
    }
    for (;;) {
      skip_space();
      const std::string key = parse_string();
      expect(':');
      auto& values = map[key];
      skip_space();
      if (peek() == '[') {
        ++pos_;
        skip_space();
        if (peek() == ']') {
          ++pos_;
        } else {
          for (;;) {
            values.push_back(parse_scalar());
            skip_space();
            if (peek() == ',') {
              ++pos_;
              continue;
            }
            expect(']');
            break;
          }
        }
      } else {
        values.push_back(parse_scalar());
      }
      skip_space();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      break;
    }
    finish();
    return map;
  }

 private:
  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void skip_space() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  void expect(char wanted) {
    skip_space();
    if (peek() != wanted) {
      throw std::invalid_argument("spec JSON: expected '" +
                                  std::string(1, wanted) + "' at offset " +
                                  std::to_string(pos_));
    }
    ++pos_;
  }

  void finish() {
    skip_space();
    if (pos_ != text_.size()) {
      throw std::invalid_argument("spec JSON: trailing content at offset " +
                                  std::to_string(pos_));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        c = text_[pos_++];
        if (c == 'n') c = '\n';
        if (c == 't') c = '\t';
        // '"', '\\' and '/' map to themselves.
      }
      out += c;
    }
    if (pos_ >= text_.size()) {
      throw std::invalid_argument("spec JSON: unterminated string");
    }
    ++pos_;  // closing quote
    return out;
  }

  std::string parse_scalar() {
    skip_space();
    if (peek() == '"') return parse_string();
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ',' || c == ']' || c == '}' ||
          std::isspace(static_cast<unsigned char>(c))) {
        break;
      }
      out += c;
      ++pos_;
    }
    if (out.empty()) {
      throw std::invalid_argument("spec JSON: expected a value at offset " +
                                  std::to_string(pos_));
    }
    return out;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

SpecMap parse_key_value(const std::string& text) {
  SpecMap map;
  std::istringstream stream(text);
  std::string line;
  int line_number = 0;
  while (std::getline(stream, line)) {
    ++line_number;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("spec line " + std::to_string(line_number) +
                                  ": expected key = value, got '" + line +
                                  "'");
    }
    const std::string key = trim(line.substr(0, eq));
    if (key.empty()) {
      throw std::invalid_argument("spec line " + std::to_string(line_number) +
                                  ": empty key");
    }
    const std::vector<std::string> values =
        split_spec_list(line.substr(eq + 1));
    if (values.empty()) {
      throw std::invalid_argument("spec line " + std::to_string(line_number) +
                                  ": no values for key '" + key + "'");
    }
    auto& slot = map[key];
    slot.insert(slot.end(), values.begin(), values.end());
  }
  return map;
}

}  // namespace

std::vector<std::string> split_spec_list(const std::string& text) {
  std::string body = trim(text);
  if (body.size() >= 2 && body.front() == '[' && body.back() == ']') {
    body = trim(body.substr(1, body.size() - 2));
  }
  std::vector<std::string> items;
  std::size_t start = 0;
  while (start <= body.size()) {
    const auto comma = body.find(',', start);
    const std::string item =
        trim(comma == std::string::npos ? body.substr(start)
                                        : body.substr(start, comma - start));
    if (!item.empty()) items.push_back(item);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return items;
}

std::string join_spec_list(const std::vector<std::string>& items) {
  std::string joined;
  for (const std::string& item : items) {
    if (!joined.empty()) joined += ", ";
    joined += item;
  }
  return joined;
}

SpecMap parse_spec_text(const std::string& text) {
  const std::string body = trim(text);
  if (!body.empty() && body.front() == '{') {
    return JsonCursor(body).parse_object();
  }
  return parse_key_value(text);
}

SpecMap parse_spec_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    throw std::runtime_error("cannot read sweep spec: " + path);
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return parse_spec_text(buffer.str());
}

namespace {

[[noreturn]] void bad_number(const std::string& context,
                             const std::string& value, const char* what) {
  throw std::invalid_argument(context + ": " + what + " '" + value + "'");
}

}  // namespace

int parse_spec_int(const std::string& context, const std::string& value) {
  errno = 0;
  char* end = nullptr;
  const long parsed = std::strtol(value.c_str(), &end, 10);
  if (value.empty() || end != value.c_str() + value.size()) {
    bad_number(context, value, "malformed integer");
  }
  if (errno == ERANGE || parsed < INT_MIN || parsed > INT_MAX) {
    bad_number(context, value, "integer out of range");
  }
  return static_cast<int>(parsed);
}

std::uint64_t parse_spec_u64(const std::string& context,
                             const std::string& value) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
  if (value.empty() || value.front() == '-' ||
      end != value.c_str() + value.size()) {
    bad_number(context, value, "malformed unsigned integer");
  }
  if (errno == ERANGE) bad_number(context, value, "integer out of range");
  return static_cast<std::uint64_t>(parsed);
}

double parse_spec_double(const std::string& context,
                         const std::string& value) {
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (value.empty() || end != value.c_str() + value.size()) {
    bad_number(context, value, "malformed number");
  }
  if (errno == ERANGE || !std::isfinite(parsed)) {
    bad_number(context, value, "number out of range");
  }
  return parsed;
}

bool parse_spec_bool(const std::string& context, const std::string& value) {
  if (value == "1" || value == "true") return true;
  if (value == "0" || value == "false") return false;
  throw std::invalid_argument(context + ": expected 0/1/true/false, got '" +
                              value + "'");
}

std::string spec_to_text(const SpecMap& map) {
  std::ostringstream out;
  for (const auto& [key, values] : map) {
    out << key << " = " << join_spec_list(values) << '\n';
  }
  return out.str();
}

}  // namespace taskdrop
