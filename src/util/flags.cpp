#include "util/flags.hpp"

#include <cstdlib>
#include <string_view>

namespace taskdrop {

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (!arg.starts_with("--")) continue;
    arg.remove_prefix(2);
    const auto eq = arg.find('=');
    if (eq == std::string_view::npos) {
      values_[std::string(arg)] = "1";
    } else {
      values_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    }
  }
  if (const char* full = std::getenv("REPRO_FULL"); full && full[0] == '1') {
    values_.emplace("full", "1");
  }
}

bool Flags::has(const std::string& key) const { return values_.count(key) != 0; }

std::vector<std::string> Flags::keys() const {
  std::vector<std::string> keys;
  keys.reserve(values_.size());
  for (const auto& [key, value] : values_) keys.push_back(key);
  return keys;
}

std::string Flags::get(const std::string& key, const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Flags::get_int(const std::string& key, std::int64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Flags::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return it->second != "0" && it->second != "false";
}

}  // namespace taskdrop
