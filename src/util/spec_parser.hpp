#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace taskdrop {

/// A parsed sweep-spec document: each key maps to its list of scalar
/// values, all kept as text (the sweep layer owns typing, the parser owns
/// syntax). Two input syntaxes are accepted:
///
/// key=value (one axis per line, '#' comments, repeated keys append —
/// handy for wrapping long axes):
///
///     # Fig. 8 at divisor-10 scale
///     scenario = spec_hc
///     dropper  = [optimal, heuristic, threshold]
///     levels   = 20k:2000:2.5, 30k:3000:3.0
///     trials   = 8
///
/// or a JSON object whose values are scalars or flat arrays of scalars
/// (strings, numbers, true/false):
///
///     {"scenario": "spec_hc", "dropper": ["optimal", "heuristic"]}
///
/// A document starting with '{' (after whitespace) is parsed as JSON.
using SpecMap = std::map<std::string, std::vector<std::string>>;

/// Parses either syntax; throws std::invalid_argument with a line/position
/// diagnostic on malformed input.
SpecMap parse_spec_text(const std::string& text);

/// Reads and parses a file; throws std::runtime_error if unreadable.
SpecMap parse_spec_file(const std::string& path);

/// Canonical key=value rendering: `parse_spec_text(spec_to_text(m)) == m`
/// for any map whose values contain no commas, brackets or newlines.
std::string spec_to_text(const SpecMap& map);

/// Splits "a, b, c" (optionally "[a, b, c]") into trimmed items — the same
/// list syntax spec files use, reused by the CLI's inline axis flags.
std::vector<std::string> split_spec_list(const std::string& text);

/// Inverse of split_spec_list: "a, b, c". Used for "(available: ...)"
/// registry error messages as well as spec serialisation.
std::string join_spec_list(const std::vector<std::string>& items);

// --- Whole-string scalar parses shared by every consumer of spec values
// (sweep keys, dropper parameters). Spec input comes from files and CLI
// flags, so "2x" and out-of-range magnitudes must be loud
// std::invalid_argument errors (prefixed with `context`, e.g. "sweep key
// trials"), never silent truncation.

int parse_spec_int(const std::string& context, const std::string& value);
std::uint64_t parse_spec_u64(const std::string& context,
                             const std::string& value);
double parse_spec_double(const std::string& context, const std::string& value);
/// Accepts 0/1/true/false.
bool parse_spec_bool(const std::string& context, const std::string& value);

}  // namespace taskdrop
