#include "util/rng.hpp"

namespace taskdrop {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform01() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform01();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // Unbiased rejection sampling (Lemire-style threshold).
  const std::uint64_t limit = (~std::uint64_t{0}) - (~std::uint64_t{0}) % span;
  std::uint64_t draw = next();
  while (draw >= limit) draw = next();
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::gamma(double shape, double scale) {
  std::gamma_distribution<double> dist(shape, scale);
  return dist(*this);
}

double Rng::exponential(double mean) {
  std::exponential_distribution<double> dist(1.0 / mean);
  return dist(*this);
}

Rng Rng::derive(std::uint64_t seed, std::uint64_t stream) {
  std::uint64_t sm = seed;
  const std::uint64_t a = splitmix64(sm);
  sm ^= stream * 0x9e3779b97f4a7c15ULL + 0x632be59bd9b4e019ULL;
  const std::uint64_t b = splitmix64(sm);
  return Rng(a ^ rotl(b, 31) ^ stream);
}

}  // namespace taskdrop
