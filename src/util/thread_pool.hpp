#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace taskdrop {

/// Fixed-size thread pool used by the experiment harness to run independent
/// simulation trials concurrently.
///
/// Design notes (deliberately minimal for an HPC-batch use case):
///  * Jobs are type-erased std::function<void()> closures; results are
///    written into caller-owned slots indexed by trial, so reduction order
///    is deterministic regardless of scheduling.
///  * No futures/exceptions plumbing: a job that throws would terminate the
///    process, so jobs are required to be noexcept in spirit; the experiment
///    runner wraps trial bodies accordingly.
class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains outstanding jobs, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Enqueues a job for asynchronous execution.
  void submit(std::function<void()> job);

  /// Blocks until every submitted job has finished executing.
  void wait_idle();

  /// Runs body(i) for i in [0, count) across the pool and waits for all of
  /// them. `body` must be safe to invoke concurrently for distinct i.
  static void parallel_for(std::size_t count,
                           const std::function<void(std::size_t)>& body,
                           std::size_t threads = 0);

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable all_done_;
  std::queue<std::function<void()>> jobs_;
  std::vector<std::thread> workers_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

}  // namespace taskdrop
