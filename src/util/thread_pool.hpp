#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace taskdrop {

/// Fixed-size thread pool used by the experiment harness to run independent
/// simulation trials concurrently.
///
/// Design notes (deliberately minimal for an HPC-batch use case):
///  * Jobs are type-erased std::function<void()> closures; results are
///    written into caller-owned slots indexed by trial, so reduction order
///    is deterministic regardless of scheduling.
///  * No futures/exceptions plumbing on submit(): a job that throws would
///    terminate the process, so submitted jobs must not throw — callers
///    (run_sweep, parallel_for) wrap bodies, capture the first exception
///    and rethrow it on the calling thread after the pool drains.
class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains outstanding jobs, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Enqueues a job for asynchronous execution.
  void submit(std::function<void()> job);

  /// Blocks until every submitted job has finished executing.
  void wait_idle();

  /// Runs body(i) for i in [0, count) across the pool and waits for all of
  /// them. `body` must be safe to invoke concurrently for distinct i. If a
  /// body throws, remaining iterations are skipped and the first exception
  /// is rethrown here once every in-flight iteration has finished.
  static void parallel_for(std::size_t count,
                           const std::function<void(std::size_t)>& body,
                           std::size_t threads = 0);

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable all_done_;
  std::queue<std::function<void()>> jobs_;
  std::vector<std::thread> workers_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

/// First-exception capture for pool jobs — ThreadPool::submit forbids
/// throwing jobs, so callers route their job bodies through run(): once
/// one body has thrown, later wrapped bodies are skipped, and
/// rethrow_if_failed() reraises the first exception on the calling thread
/// (call it after wait_idle()). Shared by parallel_for and run_sweep.
class JobErrorCollector {
 public:
  /// Invokes `body` unless a previous wrapped body threw; captures the
  /// first exception instead of letting it escape the pool worker.
  void run(const std::function<void()>& body);

  /// Rethrows the first captured exception, if any. Only meaningful once
  /// every wrapped job has finished (after ThreadPool::wait_idle).
  void rethrow_if_failed();

 private:
  std::mutex mutex_;
  std::exception_ptr error_;
  std::atomic<bool> failed_{false};
};

}  // namespace taskdrop
