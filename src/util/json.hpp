#pragma once

#include <string>
#include <utility>
#include <vector>

namespace taskdrop {

/// Minimal JSON document model shared by every reader in the tree (sweep
/// shard/lease documents, the BENCH_macro cost model). Sized to the
/// project's own schemas: objects, arrays, strings, numbers, bools, null,
/// and exactly the escapes the report writer emits. Numbers keep their
/// token text so integer fields convert exactly and doubles go through one
/// strtod (see json_double / json_integer).
struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool boolean = false;
  std::string text;  ///< number token or decoded string payload
  std::vector<JsonValue> items;
  std::vector<std::pair<std::string, JsonValue>> members;
};

/// Parses a complete document. Every error is a std::invalid_argument
/// prefixed with `context` (e.g. "sweep shard JSON") and carries the
/// 1-based line and byte offset where parsing stopped — a truncated or
/// corrupted file names the exact place it broke.
JsonValue parse_json(const std::string& text, const std::string& context);

/// Member lookup; nullptr when absent.
const JsonValue* json_find(const JsonValue& object, const char* key);

/// Member lookup that throws std::invalid_argument
/// ("<context>: missing \"key\" in <where>") when absent.
const JsonValue& json_require(const JsonValue& object, const char* key,
                              const char* where, const std::string& context);

/// Number-token conversions with full-consumption checks: the token
/// scanner accepts any run of number characters, so "1.2.3" and "1e" must
/// be loud errors, never a silently converted prefix.
double json_double(const JsonValue& value, const char* where,
                   const std::string& context);
long long json_integer(const JsonValue& value, const char* where,
                       const std::string& context);
const std::string& json_string(const JsonValue& value, const char* where,
                               const std::string& context);

}  // namespace taskdrop
