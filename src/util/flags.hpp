#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace taskdrop {

/// Tiny command-line flag parser for the bench and example binaries.
///
/// Accepted syntax: `--key=value` and bare `--switch` (value "1"). Anything
/// else is ignored, which lets google-benchmark flags coexist in the same
/// argv. The environment variable REPRO_FULL=1 is folded in as `--full`,
/// so `for b in build/bench/*; do $b; done` can be scaled up globally.
class Flags {
 public:
  Flags(int argc, const char* const* argv);

  bool has(const std::string& key) const;
  /// All parsed --key names, sorted — lets strict consumers (the sweep
  /// subcommand) reject typo'd flags that the lenient parser would
  /// otherwise silently drop.
  std::vector<std::string> keys() const;
  std::string get(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback = false) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace taskdrop
