#include "util/atomic_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace taskdrop {
namespace {

[[noreturn]] void fail(const std::string& path, const char* what) {
  throw std::runtime_error("cannot write " + path + ": " + what + " (" +
                           std::strerror(errno) + ")");
}

/// Unique same-directory temporary name: rename/link must not cross a
/// filesystem boundary, and two writers in one process must not collide.
std::string temp_name(const std::string& path) {
  static std::atomic<unsigned long long> sequence{0};
  return path + ".tmp." + std::to_string(static_cast<long long>(::getpid())) +
         "." + std::to_string(sequence.fetch_add(1));
}

/// Writes content to a fresh temporary next to `path`, fsyncs it, and
/// returns the temporary's name. Throws via fail() on any error.
std::string stage_temp(const std::string& path, const std::string& content) {
  const std::string temp = temp_name(path);
  const int fd = ::open(temp.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
  if (fd < 0) fail(path, "cannot create temporary");
  std::size_t written = 0;
  while (written < content.size()) {
    const ssize_t n =
        ::write(fd, content.data() + written, content.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(temp.c_str());
      fail(path, "short write to temporary");
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0 || ::close(fd) != 0) {
    ::unlink(temp.c_str());
    fail(path, "fsync of temporary failed");
  }
  return temp;
}

/// Best-effort directory fsync so the rename/link itself is durable; a
/// failure here (e.g. an unsupported filesystem) does not lose atomicity,
/// only durability of the very last publication, so it is not fatal.
void sync_parent_dir(const std::string& path) {
  const auto slash = path.rfind('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

void atomic_write_file(const std::string& path, const std::string& content) {
  const std::string temp = stage_temp(path, content);
  if (::rename(temp.c_str(), path.c_str()) != 0) {
    ::unlink(temp.c_str());
    fail(path, "rename into place failed");
  }
  sync_parent_dir(path);
}

bool atomic_create_file(const std::string& path, const std::string& content) {
  const std::string temp = stage_temp(path, content);
  const int rc = ::link(temp.c_str(), path.c_str());
  const int link_errno = errno;
  ::unlink(temp.c_str());
  if (rc == 0) {
    sync_parent_dir(path);
    return true;
  }
  if (link_errno == EEXIST) return false;
  errno = link_errno;
  fail(path, "exclusive link into place failed");
}

std::int64_t monotonic_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace taskdrop
