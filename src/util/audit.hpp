#pragma once

#include <cstdint>
#include <string>

namespace taskdrop::audit {

/// Debug invariant auditor. In TASKDROP_AUDIT builds (cmake
/// -DTASKDROP_AUDIT=ON, or the `audit` preset) the hot incremental caches
/// cross-check themselves against direct recomputation at a sampled rate:
///
///   * CompletionModel: the incremental chain, the appended-distribution
///     memo and the tail-mean memo versus from-scratch evaluation, bit for
///     bit (the caches promise bit-identity, so the comparison is exact).
///   * Engine: BatchQueue link/size coherence and lazy expiry-heap coverage
///     after every sampled mapping event.
///
/// In normal builds `kEnabled` is false and every `due()` gate folds to a
/// compile-time `false`, so the audit blocks vanish entirely — the hooks
/// cost nothing and stay type-checked in all configurations.
#if defined(TASKDROP_AUDIT)
inline constexpr bool kEnabled = true;
#else
inline constexpr bool kEnabled = false;
#endif

/// Sampling interval: every interval-th gated call runs its cross-check.
/// Read once from the TASKDROP_AUDIT_INTERVAL environment variable
/// (default 256, clamped to >= 1); smaller means denser auditing and a
/// proportionally slower run.
std::uint64_t interval();

/// Overrides the sampling interval (tests audit the auditor densely
/// without re-execing with a different environment).
void set_interval_for_testing(std::uint64_t interval);

/// Sampled gate: bumps the call-site counter and fires every interval-th
/// call. Each audited site keeps its own counter so one chatty call site
/// cannot starve the others.
inline bool due(std::uint64_t& counter) {
  if constexpr (!kEnabled) {
    return false;
  } else {
    return ++counter % interval() == 0;
  }
}

/// Reports an invariant breach: throws std::logic_error with the message.
/// Audited runs are correctness harnesses, so a breach must be loud — it
/// propagates out of the simulation loop and fails the enclosing test.
[[noreturn]] void fail(const std::string& what);

}  // namespace taskdrop::audit
