#include "util/json.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace taskdrop {
namespace {

class JsonParser {
 public:
  JsonParser(const std::string& text, const std::string& context)
      : text_(text), context_(context) {}

  JsonValue parse() {
    JsonValue value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  /// A truncated or corrupted file should name the exact place it broke,
  /// so every error carries both the 1-based line and the byte offset.
  [[noreturn]] void fail(const std::string& message) const {
    const auto line =
        1 + std::count(text_.begin(),
                       text_.begin() + static_cast<std::ptrdiff_t>(pos_), '\n');
    throw std::invalid_argument(context_ + ": " + message + " at line " +
                                std::to_string(line) + ", offset " +
                                std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of document");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_keyword(const char* word) {
    const std::size_t length = std::string(word).size();
    if (text_.compare(pos_, length, word) != 0) return false;
    pos_ += length;
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    JsonValue value;
    const char c = peek();
    if (c == '{') {
      value.kind = JsonValue::Kind::Object;
      ++pos_;
      skip_ws();
      if (peek() == '}') {
        ++pos_;
        return value;
      }
      for (;;) {
        skip_ws();
        std::string key = parse_string_token();
        skip_ws();
        expect(':');
        value.members.emplace_back(std::move(key), parse_value());
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect('}');
        return value;
      }
    }
    if (c == '[') {
      value.kind = JsonValue::Kind::Array;
      ++pos_;
      skip_ws();
      if (peek() == ']') {
        ++pos_;
        return value;
      }
      for (;;) {
        value.items.push_back(parse_value());
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect(']');
        return value;
      }
    }
    if (c == '"') {
      value.kind = JsonValue::Kind::String;
      value.text = parse_string_token();
      return value;
    }
    if (c == 't' || c == 'f') {
      value.kind = JsonValue::Kind::Bool;
      if (consume_keyword("true")) {
        value.boolean = true;
        return value;
      }
      if (consume_keyword("false")) return value;
      fail("malformed literal");
    }
    if (c == 'n') {
      if (consume_keyword("null")) return value;
      fail("malformed literal");
    }
    if (c == '-' || (c >= '0' && c <= '9')) {
      value.kind = JsonValue::Kind::Number;
      const std::size_t start = pos_;
      if (peek() == '-') ++pos_;
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
              text_[pos_] == '.' || text_[pos_] == 'e' ||
              text_[pos_] == 'E' || text_[pos_] == '+' ||
              text_[pos_] == '-')) {
        ++pos_;
      }
      value.text = text_.substr(start, pos_ - start);
      if (value.text.empty() || value.text == "-") fail("malformed number");
      return value;
    }
    fail("unexpected character");
  }

  std::string parse_string_token() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        default: fail("unsupported string escape");
      }
    }
  }

  const std::string& text_;
  const std::string& context_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(const std::string& text, const std::string& context) {
  return JsonParser(text, context).parse();
}

const JsonValue* json_find(const JsonValue& object, const char* key) {
  for (const auto& [name, value] : object.members) {
    if (name == key) return &value;
  }
  return nullptr;
}

const JsonValue& json_require(const JsonValue& object, const char* key,
                              const char* where, const std::string& context) {
  const JsonValue* value = json_find(object, key);
  if (value == nullptr) {
    throw std::invalid_argument(context + ": missing \"" + std::string(key) +
                                "\" in " + where);
  }
  return *value;
}

double json_double(const JsonValue& value, const char* where,
                   const std::string& context) {
  if (value.kind == JsonValue::Kind::Number) {
    // The token scanner accepts any run of number characters, so demand
    // strtod consumes the whole token — "1.2.3" must be a loud error,
    // not a silently merged 1.2.
    char* end = nullptr;
    const double parsed = std::strtod(value.text.c_str(), &end);
    if (end != value.text.c_str() + value.text.size()) {
      throw std::invalid_argument(context + ": malformed number '" +
                                  value.text + "' for " + std::string(where));
    }
    return parsed;
  }
  // Non-finite trial values round-trip as strings (see json_trial_number
  // in metrics/report.cpp).
  if (value.kind == JsonValue::Kind::String) {
    if (value.text == "inf") return HUGE_VAL;
    if (value.text == "-inf") return -HUGE_VAL;
    if (value.text == "nan") return std::nan("");
  }
  throw std::invalid_argument(context + ": expected a number for " +
                              std::string(where));
}

long long json_integer(const JsonValue& value, const char* where,
                       const std::string& context) {
  if (value.kind != JsonValue::Kind::Number ||
      value.text.find_first_of(".eE") != std::string::npos) {
    throw std::invalid_argument(context + ": expected an integer for " +
                                std::string(where));
  }
  std::size_t consumed = 0;
  long long parsed = 0;
  try {
    parsed = std::stoll(value.text, &consumed);
  } catch (const std::exception&) {
    throw std::invalid_argument(context + ": integer out of range for " +
                                std::string(where));
  }
  if (consumed != value.text.size()) {
    throw std::invalid_argument(context + ": malformed integer '" +
                                value.text + "' for " + std::string(where));
  }
  return parsed;
}

const std::string& json_string(const JsonValue& value, const char* where,
                               const std::string& context) {
  if (value.kind != JsonValue::Kind::String) {
    throw std::invalid_argument(context + ": expected a string for " +
                                std::string(where));
  }
  return value.text;
}

}  // namespace taskdrop
