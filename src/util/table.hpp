#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace taskdrop {

/// Minimal text-table builder used by the bench binaries to print the rows
/// and series of the paper's figures. Cells are strings; numeric helpers
/// format with fixed precision so tables diff cleanly between runs.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row; subsequent cell() calls append to it.
  Table& row();
  Table& cell(const std::string& value);
  Table& cell(double value, int precision = 2);
  Table& cell(long long value);

  std::size_t row_count() const { return rows_.size(); }
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  /// Pretty-prints with aligned columns.
  void print(std::ostream& os) const;

  /// Machine-readable CSV (RFC-4180-ish; cells containing commas or quotes
  /// are quoted).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats `value` with `precision` fractional digits.
std::string format_fixed(double value, int precision);

/// Shortest decimal rendering of `value` that parses back to the same bits
/// ("4", "2.5", "0.1234567"): the fewest significant digits (up to
/// max_digits10) whose strtod round-trip is exact, so spec serialisation is
/// a fixpoint for any finite double. Non-finite values render as "inf",
/// "-inf" or "nan"; emitters targeting formats without those literals
/// (JSON) must special-case them.
std::string format_double(double value);

}  // namespace taskdrop
