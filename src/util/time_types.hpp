#pragma once

#include <cstdint>
#include <limits>

namespace taskdrop {

/// Simulated time is an integer tick; one tick corresponds to one
/// millisecond at the paper's scale (task-type mean execution times range
/// from 50 to 200 ms). All PMFs, deadlines and event timestamps share this
/// unit, so there is never a unit conversion inside the library.
using Tick = std::int64_t;

/// Sentinel for "no time" / "never".
inline constexpr Tick kNeverTick = std::numeric_limits<Tick>::max();

/// Identifier types. They are plain integers rather than strong types so the
/// hot simulation loop stays branch- and wrapper-free, but every API names
/// its parameters so call sites stay readable.
using TaskId = std::int64_t;
using TaskTypeId = int;
using MachineId = int;
using MachineTypeId = int;

}  // namespace taskdrop
