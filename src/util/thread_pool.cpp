#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace taskdrop {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::unique_lock lock(mutex_);
    jobs_.push(std::move(job));
    ++in_flight_;
  }
  work_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock lock(mutex_);
      work_ready_.wait(lock, [this] { return stopping_ || !jobs_.empty(); });
      if (jobs_.empty()) return;  // stopping_ and drained
      job = std::move(jobs_.front());
      jobs_.pop();
    }
    job();
    {
      std::unique_lock lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body,
                              std::size_t threads) {
  if (count == 0) return;
  JobErrorCollector errors;
  ThreadPool pool(threads == 0 ? 0 : threads);
  for (std::size_t i = 0; i < count; ++i) {
    pool.submit([&, i] { errors.run([&] { body(i); }); });
  }
  pool.wait_idle();
  errors.rethrow_if_failed();
}

void JobErrorCollector::run(const std::function<void()>& body) {
  if (failed_.load(std::memory_order_relaxed)) return;
  try {
    body();
  } catch (...) {
    failed_.store(true, std::memory_order_relaxed);
    std::lock_guard lock(mutex_);
    if (!error_) error_ = std::current_exception();
  }
}

void JobErrorCollector::rethrow_if_failed() {
  std::lock_guard lock(mutex_);
  if (error_) std::rethrow_exception(error_);
}

}  // namespace taskdrop
