#pragma once

#include <cstddef>
#include <vector>

namespace taskdrop {

/// Streaming mean/variance accumulator (Welford's algorithm). Used to
/// aggregate per-trial metrics without storing every sample when the trial
/// count is large.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 for fewer than two samples.
  double variance() const;
  double stddev() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Mean of a sample; 0 for an empty sample.
double mean(const std::vector<double>& xs);

/// Unbiased sample standard deviation; 0 for fewer than two samples.
double sample_stddev(const std::vector<double>& xs);

/// Two-sided Student-t critical value at 95 % confidence for the given
/// degrees of freedom (exact table for df <= 30, normal limit beyond).
double t_critical_95(std::size_t degrees_of_freedom);

/// Half-width of the 95 % confidence interval on the mean of `xs`
/// (t_crit * s / sqrt(n)); 0 for fewer than two samples. This is the
/// error-bar quantity the paper reports ("the mean and 95 % confidence
/// interval are reported", section V-A).
double ci95_halfwidth(const std::vector<double>& xs);

/// The p-th percentile (p in [0, 100]) of a sample, linearly interpolated
/// between order statistics (the "linear" / type-7 estimator, matching
/// numpy's default). Takes `xs` by value because it sorts its copy; 0 for
/// an empty sample. Throws std::invalid_argument for p outside [0, 100].
double percentile(std::vector<double> xs, double p);

}  // namespace taskdrop
