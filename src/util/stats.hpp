#pragma once

#include <cstddef>
#include <vector>

namespace taskdrop {

/// Streaming mean/variance accumulator (Welford's algorithm). Used to
/// aggregate per-trial metrics without storing every sample when the trial
/// count is large.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 for fewer than two samples.
  double variance() const;
  double stddev() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Mean of a sample; 0 for an empty sample.
double mean(const std::vector<double>& xs);

/// Unbiased sample standard deviation; 0 for fewer than two samples.
double sample_stddev(const std::vector<double>& xs);

/// Two-sided Student-t critical value at 95 % confidence for the given
/// degrees of freedom (exact table for df <= 30, normal limit beyond).
double t_critical_95(std::size_t degrees_of_freedom);

/// Half-width of the 95 % confidence interval on the mean of `xs`
/// (t_crit * s / sqrt(n)); 0 for fewer than two samples. This is the
/// error-bar quantity the paper reports ("the mean and 95 % confidence
/// interval are reported", section V-A).
double ci95_halfwidth(const std::vector<double>& xs);

/// The p-th percentile (p in [0, 100]) of a sample, linearly interpolated
/// between order statistics (the "linear" / type-7 estimator, matching
/// numpy's default). Takes `xs` by value because it sorts its copy; 0 for
/// an empty sample. Throws std::invalid_argument for p outside [0, 100].
double percentile(std::vector<double> xs, double p);

/// percentile() for a sample that is already sorted ascending: no copy, no
/// re-sort. A caller extracting several percentiles (p50/p99/...) sorts
/// once and calls this per quantile instead of paying one full sort per
/// call. The input must be sorted (asserted in debug builds); same p
/// validation and empty-sample behaviour as percentile().
double percentile_sorted(const std::vector<double>& sorted_xs, double p);

/// Bounded, deterministic sample reservoir for unbounded streams — the
/// shutdown-latency sample of a long-running `taskdrop_cli serve` daemon
/// must not grow by one double per event forever.
///
/// Up to `capacity` observations the reservoir is exact: every sample is
/// kept in arrival order and percentiles over samples() equal percentiles
/// over the full stream. Beyond capacity it degrades deterministically by
/// stride doubling: the buffer is compacted to every second sample and
/// from then on only every stride-th observation is admitted, so the
/// buffer holds an evenly strided subsample of the stream (indices
/// 0, stride, 2*stride, ...), always in [capacity/2, capacity]. No RNG is
/// involved — two identical streams yield bit-identical reservoirs.
/// count/total/max are always exact (maintained outside the buffer).
class LatencyReservoir {
 public:
  /// `capacity` is rounded up to the next even number (stride doubling
  /// halves the buffer, so an odd capacity would drift off the stride
  /// lattice); must be >= 2.
  explicit LatencyReservoir(std::size_t capacity = 4096);

  void add(double x);

  /// Total observations (exact).
  std::size_t count() const { return count_; }
  /// Sum of all observations (exact).
  double total() const { return total_; }
  /// Largest observation; 0 before the first add (exact).
  double max() const { return max_; }
  /// Kept subsample in arrival order (exact iff stride() == 1).
  const std::vector<double>& samples() const { return samples_; }
  /// Current admission stride; 1 while the reservoir is still exact.
  std::size_t stride() const { return stride_; }

 private:
  std::size_t capacity_;
  std::size_t stride_ = 1;
  std::size_t count_ = 0;
  double total_ = 0.0;
  double max_ = 0.0;
  std::vector<double> samples_;
};

}  // namespace taskdrop
