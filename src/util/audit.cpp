#include "util/audit.hpp"

#include <cstdlib>
#include <stdexcept>

namespace taskdrop::audit {
namespace {

std::uint64_t g_interval = 0;  // 0 = not yet initialised from the env

std::uint64_t interval_from_env() {
  const char* raw = std::getenv("TASKDROP_AUDIT_INTERVAL");
  if (raw == nullptr || *raw == '\0') return 256;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(raw, &end, 10);
  if (end == raw || *end != '\0' || parsed == 0) {
    throw std::invalid_argument(
        std::string("TASKDROP_AUDIT_INTERVAL must be a positive integer, "
                    "got: ") + raw);
  }
  return parsed;
}

}  // namespace

std::uint64_t interval() {
  if (g_interval == 0) g_interval = interval_from_env();
  return g_interval;
}

void set_interval_for_testing(std::uint64_t interval) {
  g_interval = interval == 0 ? 1 : interval;
}

void fail(const std::string& what) {
  throw std::logic_error("taskdrop audit: " + what);
}

}  // namespace taskdrop::audit
