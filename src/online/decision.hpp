#pragma once

#include <cstdint>
#include <iosfwd>
#include <string_view>

#include "util/time_types.hpp"

namespace taskdrop {

/// One streamed scheduling decision emitted by the OnlineScheduler. Every
/// observable state transition the decision kernels cause — an admission
/// (assignment), a proactive or reactive drop, an execution-start
/// recommendation, a downgrade, or a terminal completion/loss record —
/// becomes exactly one Decision, in mutation order. The engine-driven and
/// callback-driven paths emit bit-identical streams for the same inputs
/// (tests/online_replay_test.cpp locks this down).
enum class DecisionKind : std::uint8_t {
  /// The mapper moved the task from the batch queue to `machine`'s queue.
  Assign,
  /// The machine's queue head should begin executing now. Advisory: the
  /// environment confirms with OnlineScheduler::task_started, after which
  /// the task is modelled as running.
  Start,
  /// Approximate-computing extension: the task was switched to its
  /// degraded-quality variant.
  Downgrade,
  /// The dropping mechanism discarded the task from a machine queue.
  DropProactive,
  /// The task's deadline passed while it waited in a machine queue (or at
  /// the start gate); it can no longer finish in time.
  DropReactive,
  /// The task's deadline passed while it was still unmapped in the batch
  /// queue.
  ExpireUnmapped,
  /// The environment reported the task finished strictly before its
  /// deadline.
  FinishOnTime,
  /// The environment reported the task finished at/after its deadline.
  FinishLate,
  /// The task was executing when its machine went down.
  LostToFailure,
  /// Overload shedding (OnlineConfig::shed): the admission valve refused
  /// the arrival because the backlog watermark was crossed; the task never
  /// entered the batch queue.
  ShedOverload,
};

std::string_view to_string(DecisionKind kind);

/// True when the kind puts the task in a terminal state (the task will
/// never appear in a later decision).
constexpr bool is_terminal(DecisionKind kind) {
  return kind == DecisionKind::DropProactive ||
         kind == DecisionKind::DropReactive ||
         kind == DecisionKind::ExpireUnmapped ||
         kind == DecisionKind::FinishOnTime ||
         kind == DecisionKind::FinishLate ||
         kind == DecisionKind::LostToFailure ||
         kind == DecisionKind::ShedOverload;
}

struct Decision {
  DecisionKind kind = DecisionKind::Assign;
  /// Scheduler clock at emission.
  Tick time = 0;
  TaskId task = -1;
  /// Machine involved; -1 for ExpireUnmapped (the task never left the
  /// batch queue).
  MachineId machine = -1;

  friend bool operator==(const Decision& a, const Decision& b) {
    return a.kind == b.kind && a.time == b.time && a.task == b.task &&
           a.machine == b.machine;
  }
  friend bool operator!=(const Decision& a, const Decision& b) {
    return !(a == b);
  }
};

/// One-line textual rendering, the record format of `taskdrop_cli serve`:
///   `t=<time> kind=<kind> task=<id> machine=<id>`
/// (machine omitted when -1). Deterministic — the serve golden files
/// byte-diff against it.
std::ostream& operator<<(std::ostream& out, const Decision& decision);

}  // namespace taskdrop
