#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "online/online_scheduler.hpp"

namespace taskdrop {

/// Deterministic, versioned text serialization of full OnlineScheduler
/// state — the survivability half of the online admission service: a
/// daemon killed mid-stream restores from its last snapshot and continues
/// emitting a decision stream byte-identical to the uninterrupted run
/// (tests/online_snapshot_test.cpp and the serve kill-and-resume smoke
/// lock this down).
///
/// Format (one record per line, space-separated tokens, '\n' line ends):
///
///   taskdrop-online-snapshot v1
///   config capacity=.. engagement=.. condition_running=.. ... pet=<hex>
///   clock now=<tick>
///   flags deadline_miss_pending=<0|1>
///   counters mapping_events=.. dropper_invocations=.. shed=..
///   mapper name=<name> state=<token|->
///   tasks n=<N>
///   T <id> <type> <arrival> <deadline> <state> <approx> <machine>
///     ... <start> <finish> <drop> <actual>        (N lines, one line each)
///   machines n=<M>
///   M <id> <type> <up> <running> <run_start> <run_end> <run_token>
///     ... <busy> <offer> q <k> <ids...>           (M lines, one line each)
///   batch n=<K> <ids in arrival order...>
///   end taskdrop-online-snapshot
///
/// What is serialized is exactly the *logical* state: the task table,
/// machine queues and execution status, the batch queue (arrival order),
/// the advisory-offer latches, the clock, the deadline-miss latch, the
/// event counters, the mapper's cross-event state, and an echo of the
/// construction-time config (including a content fingerprint of the PET)
/// that restore() validates so a snapshot cannot be silently replayed
/// against a different scenario. Completion chains, CDF views and every
/// revision-keyed memo are *derived* state and deliberately not
/// serialized: rebuilding them from the logical state is bit-identical to
/// the incrementally maintained originals (the chain-vs-rebuild lockdown
/// suite), and the droppers' examined-revision skips are pure
/// optimisations whose re-examination reproduces the identical decisions.
///
/// snapshot()/restore() live on OnlineScheduler (implemented in
/// snapshot.cpp); the helpers here are the string conveniences and the
/// PET fingerprint shared with tests.

/// FNV-1a content fingerprint of a PET matrix (shape + every cell's
/// lattice and probability bits). Two scenarios that differ in seed or
/// kind differ here, so restore() can reject a snapshot taken against a
/// different PET.
std::uint64_t pet_fingerprint(const PetMatrix& pet);

/// Convenience: snapshot to / restore from a string.
std::string snapshot_to_string(const OnlineScheduler& scheduler);
void restore_from_string(OnlineScheduler& scheduler,
                         const std::string& snapshot);

}  // namespace taskdrop
