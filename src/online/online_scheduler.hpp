#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <vector>

#include "core/completion_model.hpp"
#include "core/context.hpp"
#include "core/dropper.hpp"
#include "online/decision.hpp"
#include "pet/pet_matrix.hpp"
#include "prob/workspace.hpp"
#include "sched/mapper.hpp"
#include "sim/batch_queue.hpp"
#include "sim/expiry_heap.hpp"
#include "sim/machine.hpp"
#include "sim/task.hpp"

namespace taskdrop {

/// Approximate-computing extension (section VI future work): tasks can be
/// switched to a degraded-quality variant whose execution PMF is the full
/// one time-scaled by `time_factor`; an on-time approximate completion
/// contributes `utility_weight` (vs 1.0) to the utility metric.
///
/// (Defined here rather than in sim/engine.hpp because the online
/// scheduler owns the approximate PET; EngineConfig embeds it via this
/// header.)
struct ApproxModel {
  bool enabled = false;
  double time_factor = 0.5;
  double utility_weight = 0.5;
};

/// Overload-shedding admission valve. Both watermarks default to 0 =
/// disabled, so an unconfigured scheduler admits everything and the
/// decision stream is bit-identical to the pre-shedding implementation
/// (the serve golden and the differential replay suite rely on this).
///
/// When active, an arrival is shed — refused admission with a single
/// ShedOverload decision, never entering the batch queue — if, at the
/// moment of arrival:
///
///   * `total_pending_watermark` > 0 and the aggregate backlog (unmapped
///     batch tasks plus queued-but-not-running tasks across all machines)
///     is already at or above it, or
///   * `machine_backlog_watermark` > 0 and every up machine's pending
///     backlog is already at or above it (no machine has headroom; a fleet
///     with no up machine at all counts as fully backlogged).
///
/// Shedding is evaluated before admission, so the watermark bounds the
/// backlog the decision kernels ever have to chew through — the dropper
/// as a pressure valve, applied at the front door.
struct ShedPolicy {
  /// Aggregate pending-work watermark; 0 disables the aggregate check.
  int total_pending_watermark = 0;
  /// Per-machine pending-backlog watermark; 0 disables the per-machine
  /// check.
  int machine_backlog_watermark = 0;

  bool active() const {
    return total_pending_watermark > 0 || machine_backlog_watermark > 0;
  }
};

/// Tuning knobs of the online admission service. Defaults mirror the
/// paper's evaluation setup (and EngineConfig, which maps onto this).
struct OnlineConfig {
  /// Machine-queue capacity, running task included (section V-A: six).
  int queue_capacity = 6;
  /// When the dropping mechanism runs (Fig. 4 vs section V-A).
  DropperEngagement engagement = DropperEngagement::EveryMappingEvent;
  /// Extension: condition the running task's completion PMF on "not done
  /// yet" (see CompletionModel::Options).
  bool condition_running = false;
  /// Declare that machines may go down (machine_down can be called).
  /// Retained for configuration echo (snapshots) and as documentation of
  /// the driver's intent; since the chain-keep refactor it no longer
  /// changes behaviour — CompletionModel::notify_head_started decides
  /// per start whether the cached chain is keepable (it always is on an
  /// up machine whose chain set_now rebased across the idle gap), so
  /// volatile fleets get the same start-time keep as stable ones, with
  /// bit-identical decisions.
  bool volatile_machines = false;
  /// Test knob: force the conservative invalidate-and-rebuild on every
  /// task start and time advance (CompletionModel::Options::
  /// paranoid_rebuild). The chain-keep regression suites run a paranoid
  /// scheduler against a default one and require bit-identical decision
  /// streams. Decision-neutral by construction — deliberately NOT part of
  /// the snapshot config echo.
  bool paranoid_invalidate = false;
  ApproxModel approx;
  /// Overload shedding; inactive by default (see ShedPolicy).
  ShedPolicy shed;
};

/// The paper's decision kernels — mapper + dropper + per-machine
/// CompletionModel stack — decoupled from the discrete-event simulation
/// clock: an online admission service driven by wall-clock callbacks.
///
/// The environment (a simulator event loop, a socket daemon, an in-process
/// queue) reports what happened —
///
///   task_arrived(t, ...)      a new task wants admission
///   task_started(t, m, task)  machine m began executing its queue head
///   task_finished(t, m)       machine m's running task completed
///   machine_down(t, m)        machine m failed (kills its running task)
///   machine_up(t, m)          machine m recovered
///   advance(t)                time passed with no event (expiries fire)
///
/// — and every callback returns the stream of admission/map/drop decisions
/// it caused, in mutation order. Each callback is one mapping event
/// (section III): expired tasks are reactively dropped, the Task Dropper
/// runs (per the engagement policy), the Mapper assigns unmapped tasks to
/// free machine-queue slots, and idle machines get Start recommendations.
/// A Start decision is advisory: the scheduler models the task as running
/// only once the environment confirms it with task_started (the sim engine
/// confirms immediately, reproducing classic batch-mode semantics; a live
/// driver confirms when a worker actually picks the task up). While a
/// Start is unconfirmed the scheduler does not re-issue it; if the head it
/// named is dropped or the machine goes down first, the offer lapses and a
/// later mapping event re-evaluates.
///
/// The clock is monotone: callbacks must carry non-decreasing `t`
/// (std::invalid_argument otherwise). The scheduler sees only execution
/// *distributions* (the PET); ground-truth durations stay on the
/// environment side — the optional `duration` of task_started is recorded
/// for the environment's own bookkeeping (SimResult) and never read by a
/// decision path.
///
/// sim/Engine drives this same kernel stack (one driver among others), so
/// the existing figure suites lock the decision stream down bit for bit.
class OnlineScheduler final : public SchedulerOps {
 public:
  /// `pet` must outlive the scheduler. `machine_types[i]` is machine i's
  /// type (an index into the PET matrix's machine axis). Throws
  /// std::invalid_argument on an empty fleet or capacity < 1.
  OnlineScheduler(const PetMatrix& pet,
                  std::vector<MachineTypeId> machine_types, Mapper& mapper,
                  Dropper& dropper, OnlineConfig config = {});

  OnlineScheduler(const OnlineScheduler&) = delete;
  OnlineScheduler& operator=(const OnlineScheduler&) = delete;

  /// Pre-sizes task storage (an optimisation; storage grows on demand).
  void reserve_tasks(std::size_t task_count);

  /// Registers a task without announcing its arrival — storage-only, no
  /// clock advance, no decisions. Lets a driver that knows its workload up
  /// front (the sim engine, a trace replayer) pin task ids to trace
  /// indices. Ids are assigned sequentially from 0.
  TaskId register_task(TaskTypeId type, Tick arrival, Tick deadline);

  /// A new task arrived at `t` and asks for admission. Returns the
  /// decision stream of the triggered mapping event (valid until the next
  /// decision-returning callback). `out_id` receives the new task's id.
  const std::vector<Decision>& task_arrived(Tick t, TaskTypeId type,
                                            Tick deadline,
                                            TaskId* out_id = nullptr);
  /// Arrival of a pre-registered task (see register_task).
  const std::vector<Decision>& task_arrived(Tick t, TaskId task);

  /// Confirms a Start decision: machine `machine` began executing its
  /// queue head `task` at `t`. `duration` is the environment's
  /// ground-truth execution time when it knows one up front (the sim
  /// engine's sampled duration, recorded into Task::actual_execution and
  /// Machine::run_end); pass a negative value when unknown (live mode).
  /// Emits no decisions — a start is not a mapping event (section III).
  void task_started(Tick t, MachineId machine, TaskId task,
                    Tick duration = -1);

  /// Machine `machine`'s running task finished at `t`. Returns the
  /// FinishOnTime/FinishLate record followed by the decisions of the
  /// triggered mapping event.
  const std::vector<Decision>& task_finished(Tick t, MachineId machine);

  /// Machine `machine` went down at `t`: its running task (if any) is
  /// lost — partially executed time is still billed — and its queued
  /// tasks wait for recovery (mapped tasks cannot be remapped,
  /// section III). Down machines accept no new assignments.
  const std::vector<Decision>& machine_down(Tick t, MachineId machine);

  /// Machine `machine` recovered at `t`.
  const std::vector<Decision>& machine_up(Tick t, MachineId machine);

  /// Time advanced to `t` with no task/machine event: runs a mapping event
  /// so deadline expiries and deferred mappings are reconsidered.
  const std::vector<Decision>& advance(Tick t);

  Tick now() const { return now_; }
  std::size_t task_count() const { return tasks_.size(); }
  const Task& task(TaskId id) const {
    return tasks_[static_cast<std::size_t>(id)];
  }
  const std::vector<Machine>& machines() const { return machines_; }
  const Machine& machine(MachineId id) const {
    return machines_[static_cast<std::size_t>(id)];
  }
  /// Unmapped tasks currently waiting in the batch queue.
  std::size_t unmapped_count() const { return batch_.size(); }
  /// Earliest deadline among unmapped tasks; kNeverTick when none. The
  /// engine schedules its drain-time wakeup from this.
  Tick earliest_unmapped_deadline() const;
  long long mapping_events() const { return mapping_events_; }
  long long dropper_invocations() const { return dropper_invocations_; }
  /// Arrivals refused by the overload-shedding valve (ShedOverload).
  long long shed_count() const { return shed_count_; }
  /// The shedding valve's aggregate load signal: unmapped batch tasks plus
  /// queued-but-not-running tasks across all machines.
  std::size_t pending_backlog() const;
  /// The time-scaled PET of the approximate-computing extension (null when
  /// disabled). Environments sample approximate tasks' ground truth here.
  const PetMatrix* approx_pet() const {
    return approx_pet_ ? &*approx_pet_ : nullptr;
  }

  /// Moves the task table out (the engine harvests SimResult from it).
  /// The scheduler must not be used afterwards, only destroyed.
  std::vector<Task> take_tasks() { return std::move(tasks_); }

  /// Writes a deterministic, versioned text serialization of the full
  /// scheduler state (task table, machine queues, batch queue, advisory
  /// offers, clock, counters, config echo, mapper state) — see
  /// online/snapshot.hpp for the format and the round-trip contract.
  /// Implemented in snapshot.cpp.
  void snapshot(std::ostream& out) const;

  /// Restores a snapshot into this scheduler. The scheduler must be
  /// freshly constructed — no callbacks issued yet — with the same PET,
  /// fleet, config, mapper and dropper the snapshotted instance had (the
  /// snapshot's config echo is validated against this instance; a fresh
  /// mapper/dropper stack is required because their skip-memoisation keys
  /// reference the old process's model revisions). Throws
  /// std::invalid_argument on a malformed snapshot, a config mismatch, or
  /// a non-fresh scheduler; the scheduler is unusable after a failed
  /// restore. Completion chains are not serialized: they are derived state,
  /// rebuilt on demand bit-identically to the incremental originals
  /// (tests/completion_incremental_test.cpp locks rebuild ≡ incremental).
  /// Implemented in snapshot.cpp.
  void restore(std::istream& in);

  // SchedulerOps — the mutation interface the mapper and dropper act
  // through during a mapping event. Public for parity with SystemSandbox;
  // calling these outside a mapping event breaks the decision stream.
  void assign_task(TaskId task, MachineId machine) override;
  void drop_queued_task(MachineId machine, std::size_t pos) override;
  void downgrade_task(MachineId machine, std::size_t pos) override;

 private:
  void advance_clock(Tick t);
  /// True when the shedding valve (config_.shed) refuses this arrival.
  bool should_shed() const;
  void mapping_event();
  /// Drops expired pending tasks (machine queues and batch queue); returns
  /// true when at least one task was dropped.
  bool reactive_drop_pass();
  /// End of the mapping event: reactively drop late queue heads, then
  /// offer a Start for every up, idle machine with a startable head.
  void start_pass();
  void emit(DecisionKind kind, TaskId task, MachineId machine);
  /// TASKDROP_AUDIT cross-check (sampled from mapping_event): BatchQueue
  /// link/size/state coherence and expiry-heap coverage of the batch.
  void audit_batch_coherence() const;

  const PetMatrix& pet_;
  Mapper& mapper_;
  Dropper& dropper_;
  OnlineConfig config_;
  /// Time-scaled PET for approximate-mode tasks (approx extension only).
  std::optional<PetMatrix> approx_pet_;

  Tick now_ = 0;
  std::vector<Task> tasks_;
  std::vector<Machine> machines_;
  /// Convolution scratch shared by every per-machine completion model (the
  /// scheduler is single-threaded, and one buffer keeps the hot
  /// chain-rebuild loop in cache across machines).
  PmfWorkspace model_ws_;
  std::vector<CompletionModel> models_;
  BatchQueue batch_;
  /// Unmapped tasks ordered by deadline (lazy deletion: entries whose task
  /// already left the batch are skipped on pop), so the reactive pass only
  /// ever touches tasks that actually expired.
  ExpiryHeap batch_expiry_;
  SystemView view_;
  /// Unconfirmed Start offer per machine (-1: none). Prevents duplicate
  /// Start decisions while the environment has not reported the start yet;
  /// lapses automatically when the offered head leaves the queue.
  std::vector<TaskId> start_offered_;
  bool deadline_miss_pending_ = false;
  long long mapping_events_ = 0;
  long long dropper_invocations_ = 0;
  long long shed_count_ = 0;
  /// Decision stream of the current callback (reused storage).
  std::vector<Decision> decisions_;
  /// Sampling counter for the TASKDROP_AUDIT coherence pass (unused in
  /// normal builds, where the audit gate folds to constant false).
  std::uint64_t audit_counter_ = 0;
};

}  // namespace taskdrop
