#include "online/snapshot.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/table.hpp"

namespace taskdrop {
namespace {

constexpr const char* kMagic = "taskdrop-online-snapshot";
constexpr const char* kVersion = "v1";

[[noreturn]] void bad(const std::string& what) {
  throw std::invalid_argument("snapshot: " + what);
}

/// FNV-1a over a fixed-width little-endian byte view of `value`.
template <typename T>
void fnv_mix(std::uint64_t& hash, const T& value) {
  unsigned char bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  for (unsigned char byte : bytes) {
    hash ^= byte;
    hash *= 1099511628211ull;
  }
}

const char* engagement_name(DropperEngagement engagement) {
  return engagement == DropperEngagement::EveryMappingEvent
             ? "every_mapping_event"
             : "on_deadline_miss";
}

TaskState task_state_from_name(const std::string& name) {
  for (TaskState s : {TaskState::Unmapped, TaskState::Queued,
                      TaskState::Running, TaskState::CompletedOnTime,
                      TaskState::CompletedLate, TaskState::DroppedReactive,
                      TaskState::DroppedProactive, TaskState::LostToFailure}) {
    if (name == to_string(s)) return s;
  }
  bad("unknown task state '" + name + "'");
}

/// Reads the next line; throws on EOF.
std::string next_line(std::istream& in, const char* section) {
  std::string line;
  if (!std::getline(in, line)) {
    bad(std::string("unexpected end of snapshot (reading ") + section + ")");
  }
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return line;
}

/// Next whitespace token of `in`; throws naming `what` when exhausted.
std::string next_token(std::istringstream& in, const std::string& what) {
  std::string token;
  if (!(in >> token)) bad("missing " + what);
  return token;
}

/// Next token, required to be `key=<value>`; returns <value>.
std::string expect_kv(std::istringstream& in, const std::string& key) {
  const std::string token = next_token(in, key + "=...");
  const std::string prefix = key + "=";
  if (token.rfind(prefix, 0) != 0) {
    bad("expected " + key + "=..., got '" + token + "'");
  }
  return token.substr(prefix.size());
}

long long parse_ll(const std::string& what, const std::string& text) {
  if (text.empty()) bad(what + " is empty");
  char* end = nullptr;
  errno = 0;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) {
    bad(what + " is not an integer: '" + text + "'");
  }
  return value;
}

long long parse_kv_ll(std::istringstream& in, const std::string& key) {
  return parse_ll(key, expect_kv(in, key));
}

std::uint64_t parse_u64(const std::string& what, const std::string& text) {
  if (text.empty() || text[0] == '-') bad(what + " must be non-negative");
  char* end = nullptr;
  errno = 0;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) {
    bad(what + " is not an integer: '" + text + "'");
  }
  return value;
}

bool parse_kv_bool(std::istringstream& in, const std::string& key) {
  const long long value = parse_kv_ll(in, key);
  if (value != 0 && value != 1) bad(key + " must be 0 or 1");
  return value != 0;
}

double parse_double(const std::string& what, const std::string& text) {
  if (text.empty()) bad(what + " is empty");
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(text.c_str(), &end);
  if (errno != 0 || end != text.c_str() + text.size()) {
    bad(what + " is not a number: '" + text + "'");
  }
  return value;
}

void expect_literal(std::istringstream& in, const std::string& literal) {
  const std::string token = next_token(in, "'" + literal + "'");
  if (token != literal) {
    bad("expected '" + literal + "', got '" + token + "'");
  }
}

void expect_line_done(std::istringstream& in) {
  std::string trailing;
  if (in >> trailing) bad("trailing token '" + trailing + "'");
}

void check(bool ok, const std::string& what) {
  if (!ok) bad(what);
}

}  // namespace

std::uint64_t pet_fingerprint(const PetMatrix& pet) {
  std::uint64_t hash = 14695981039346656037ull;
  fnv_mix(hash, pet.task_type_count());
  fnv_mix(hash, pet.machine_type_count());
  for (TaskTypeId task = 0; task < pet.task_type_count(); ++task) {
    for (MachineTypeId machine = 0; machine < pet.machine_type_count();
         ++machine) {
      const Pmf& pmf = pet.pmf(task, machine);
      fnv_mix(hash, pmf.offset());
      fnv_mix(hash, pmf.stride());
      fnv_mix(hash, static_cast<std::uint64_t>(pmf.size()));
      for (std::size_t i = 0; i < pmf.size(); ++i) {
        fnv_mix(hash, pmf.prob_at_index(i));
      }
    }
  }
  return hash;
}

void OnlineScheduler::snapshot(std::ostream& out) const {
  out << kMagic << ' ' << kVersion << '\n';
  out << "config capacity=" << config_.queue_capacity
      << " engagement=" << engagement_name(config_.engagement)
      << " condition_running=" << (config_.condition_running ? 1 : 0)
      << " volatile_machines=" << (config_.volatile_machines ? 1 : 0)
      << " approx_enabled=" << (config_.approx.enabled ? 1 : 0)
      << " approx_time_factor=" << format_double(config_.approx.time_factor)
      << " approx_utility_weight="
      << format_double(config_.approx.utility_weight)
      << " shed_total=" << config_.shed.total_pending_watermark
      << " shed_machine=" << config_.shed.machine_backlog_watermark
      << " pet=" << pet_fingerprint(pet_) << '\n';
  out << "clock now=" << now_ << '\n';
  out << "flags deadline_miss_pending=" << (deadline_miss_pending_ ? 1 : 0)
      << '\n';
  out << "counters mapping_events=" << mapping_events_
      << " dropper_invocations=" << dropper_invocations_
      << " shed=" << shed_count_ << '\n';
  const std::string mapper_state = mapper_.snapshot_state();
  out << "mapper name=" << mapper_.name() << " state="
      << (mapper_state.empty() ? "-" : mapper_state) << '\n';

  out << "tasks n=" << tasks_.size() << '\n';
  for (const Task& task : tasks_) {
    out << "T " << task.id << ' ' << task.type << ' ' << task.arrival << ' '
        << task.deadline << ' ' << to_string(task.state) << ' '
        << (task.approximate ? 1 : 0) << ' ' << task.machine << ' '
        << task.start_time << ' ' << task.finish_time << ' '
        << task.drop_time << ' ' << task.actual_execution << '\n';
  }

  out << "machines n=" << machines_.size() << '\n';
  for (const Machine& machine : machines_) {
    out << "M " << machine.id << ' ' << machine.type << ' '
        << (machine.up ? 1 : 0) << ' ' << (machine.running ? 1 : 0) << ' '
        << machine.run_start << ' ' << machine.run_end << ' '
        << machine.run_token << ' ' << machine.busy_ticks << ' '
        << start_offered_[static_cast<std::size_t>(machine.id)] << " q "
        << machine.queue.size();
    for (const TaskId id : machine.queue) out << ' ' << id;
    out << '\n';
  }

  out << "batch n=" << batch_.size();
  for (const TaskId id : batch_) out << ' ' << id;
  out << '\n';
  out << "end " << kMagic << '\n';
}

void OnlineScheduler::restore(std::istream& in) {
  check(tasks_.empty() && now_ == 0 && mapping_events_ == 0 &&
            batch_.empty() && decisions_.empty(),
        "restore target must be a freshly constructed scheduler");

  // Header.
  {
    std::istringstream line(next_line(in, "header"));
    expect_literal(line, kMagic);
    const std::string version = next_token(line, "format version");
    check(version == kVersion, "unsupported snapshot version '" + version +
                                   "' (this build reads " + kVersion + ")");
    expect_line_done(line);
  }

  // Config echo: a snapshot only restores into the identical kernel stack.
  {
    std::istringstream line(next_line(in, "config"));
    expect_literal(line, "config");
    check(parse_kv_ll(line, "capacity") == config_.queue_capacity,
          "queue capacity differs from the snapshotted config");
    check(expect_kv(line, "engagement") ==
              engagement_name(config_.engagement),
          "dropper engagement differs from the snapshotted config");
    check(parse_kv_bool(line, "condition_running") ==
              config_.condition_running,
          "condition_running differs from the snapshotted config");
    check(parse_kv_bool(line, "volatile_machines") ==
              config_.volatile_machines,
          "volatile_machines differs from the snapshotted config");
    check(parse_kv_bool(line, "approx_enabled") == config_.approx.enabled,
          "approx extension differs from the snapshotted config");
    // float-eq-ok: the echo is written with shortest-round-trip rendering,
    // so bitwise equality is exactly the "same config" contract.
    check(parse_double("approx_time_factor",
                       expect_kv(line, "approx_time_factor")) ==
              config_.approx.time_factor,
          "approx time factor differs from the snapshotted config");
    // float-eq-ok: same shortest-round-trip echo contract as above.
    check(parse_double("approx_utility_weight",
                       expect_kv(line, "approx_utility_weight")) ==
              config_.approx.utility_weight,
          "approx utility weight differs from the snapshotted config");
    check(parse_kv_ll(line, "shed_total") ==
              config_.shed.total_pending_watermark,
          "shed total watermark differs from the snapshotted config");
    check(parse_kv_ll(line, "shed_machine") ==
              config_.shed.machine_backlog_watermark,
          "shed machine watermark differs from the snapshotted config");
    check(parse_u64("pet fingerprint", expect_kv(line, "pet")) ==
              pet_fingerprint(pet_),
          "PET fingerprint differs — snapshot was taken against a "
          "different scenario");
    expect_line_done(line);
  }

  Tick restored_now = 0;
  {
    std::istringstream line(next_line(in, "clock"));
    expect_literal(line, "clock");
    restored_now = parse_kv_ll(line, "now");
    expect_line_done(line);
  }
  {
    std::istringstream line(next_line(in, "flags"));
    expect_literal(line, "flags");
    deadline_miss_pending_ = parse_kv_bool(line, "deadline_miss_pending");
    expect_line_done(line);
  }
  {
    std::istringstream line(next_line(in, "counters"));
    expect_literal(line, "counters");
    mapping_events_ = parse_kv_ll(line, "mapping_events");
    dropper_invocations_ = parse_kv_ll(line, "dropper_invocations");
    shed_count_ = parse_kv_ll(line, "shed");
    expect_line_done(line);
  }
  {
    std::istringstream line(next_line(in, "mapper"));
    expect_literal(line, "mapper");
    const std::string name = expect_kv(line, "name");
    check(name == mapper_.name(),
          "snapshot was taken with mapper '" + name + "', restoring with '" +
              std::string(mapper_.name()) + "'");
    const std::string state = expect_kv(line, "state");
    mapper_.restore_state(state == "-" ? std::string() : state);
    expect_line_done(line);
  }

  // Task table.
  {
    std::istringstream line(next_line(in, "tasks"));
    expect_literal(line, "tasks");
    const long long count = parse_kv_ll(line, "n");
    check(count >= 0, "negative task count");
    expect_line_done(line);
    tasks_.reserve(static_cast<std::size_t>(count));
    for (long long i = 0; i < count; ++i) {
      std::istringstream task_line(next_line(in, "task table"));
      expect_literal(task_line, "T");
      Task task;
      task.id = parse_ll("task id", next_token(task_line, "task id"));
      check(task.id == i, "task ids must be dense and ascending");
      task.type = static_cast<TaskTypeId>(
          parse_ll("task type", next_token(task_line, "task type")));
      check(task.type >= 0 && task.type < pet_.task_type_count(),
            "task type out of range for this PET");
      task.arrival = parse_ll("arrival", next_token(task_line, "arrival"));
      task.deadline = parse_ll("deadline", next_token(task_line, "deadline"));
      task.state = task_state_from_name(next_token(task_line, "task state"));
      const long long approx =
          parse_ll("approx flag", next_token(task_line, "approx flag"));
      check(approx == 0 || approx == 1, "approx flag must be 0 or 1");
      task.approximate = approx != 0;
      task.machine = static_cast<MachineId>(
          parse_ll("task machine", next_token(task_line, "task machine")));
      check(task.machine >= -1 &&
                task.machine < static_cast<MachineId>(machines_.size()),
            "task machine out of range");
      task.start_time =
          parse_ll("start time", next_token(task_line, "start time"));
      task.finish_time =
          parse_ll("finish time", next_token(task_line, "finish time"));
      task.drop_time =
          parse_ll("drop time", next_token(task_line, "drop time"));
      task.actual_execution = parse_ll(
          "actual execution", next_token(task_line, "actual execution"));
      expect_line_done(task_line);
      tasks_.push_back(task);
    }
  }

  // Machines.
  {
    std::istringstream line(next_line(in, "machines"));
    expect_literal(line, "machines");
    const long long count = parse_kv_ll(line, "n");
    check(count == static_cast<long long>(machines_.size()),
          "machine count differs from the constructed fleet");
    expect_line_done(line);
    for (std::size_t m = 0; m < machines_.size(); ++m) {
      std::istringstream machine_line(next_line(in, "machine table"));
      expect_literal(machine_line, "M");
      Machine& machine = machines_[m];
      check(parse_ll("machine id", next_token(machine_line, "machine id")) ==
                machine.id,
            "machine ids must be dense and ascending");
      check(parse_ll("machine type",
                     next_token(machine_line, "machine type")) ==
                machine.type,
            "machine type differs from the constructed fleet");
      const long long up = parse_ll("up", next_token(machine_line, "up"));
      const long long running =
          parse_ll("running", next_token(machine_line, "running"));
      check((up == 0 || up == 1) && (running == 0 || running == 1),
            "up/running flags must be 0 or 1");
      machine.up = up != 0;
      machine.running = running != 0;
      machine.run_start =
          parse_ll("run_start", next_token(machine_line, "run_start"));
      machine.run_end =
          parse_ll("run_end", next_token(machine_line, "run_end"));
      machine.run_token = static_cast<std::uint32_t>(
          parse_ll("run_token", next_token(machine_line, "run_token")));
      machine.busy_ticks =
          parse_ll("busy_ticks", next_token(machine_line, "busy_ticks"));
      const TaskId offer = parse_ll(
          "start offer", next_token(machine_line, "start offer"));
      check(offer >= -1 && offer < static_cast<TaskId>(tasks_.size()),
            "start offer out of range");
      start_offered_[m] = offer;
      expect_literal(machine_line, "q");
      const long long queued =
          parse_ll("queue length", next_token(machine_line, "queue length"));
      check(queued >= 0 && queued <= machine.capacity,
            "queue length exceeds capacity");
      machine.queue.clear();
      for (long long k = 0; k < queued; ++k) {
        const TaskId id = parse_ll(
            "queued task id", next_token(machine_line, "queued task id"));
        check(id >= 0 && id < static_cast<TaskId>(tasks_.size()),
              "queued task id out of range");
        const Task& task = tasks_[static_cast<std::size_t>(id)];
        check(task.machine == machine.id,
              "queued task does not reference its machine");
        check(task.state == (machine.running && k == 0 ? TaskState::Running
                                                       : TaskState::Queued),
              "queued task state disagrees with its queue position");
        machine.queue.push_back(id);
      }
      check(!machine.running || queued > 0,
            "a running machine must have a queue head");
      expect_line_done(machine_line);
    }
  }

  // Batch queue (arrival order) + the expiry heap derived from it. Stale
  // lazy-deletion entries of the original heap are dropped: they are
  // skipped unobservably on pop, so the rebuilt heap reproduces the exact
  // ExpireUnmapped pop order (the multiset of live entries determines it).
  {
    std::istringstream line(next_line(in, "batch"));
    expect_literal(line, "batch");
    const long long count = parse_kv_ll(line, "n");
    check(count >= 0 && count <= static_cast<long long>(tasks_.size()),
          "batch size out of range");
    batch_.reset(tasks_.size());
    batch_expiry_.clear();
    for (long long i = 0; i < count; ++i) {
      const TaskId id =
          parse_ll("batch task id", next_token(line, "batch task id"));
      check(id >= 0 && id < static_cast<TaskId>(tasks_.size()),
            "batch task id out of range");
      const Task& task = tasks_[static_cast<std::size_t>(id)];
      check(task.state == TaskState::Unmapped,
            "batch task is not in state unmapped");
      batch_.push_back(id);
      batch_expiry_.push(task.deadline, id);
    }
    expect_line_done(line);
  }
  {
    std::istringstream line(next_line(in, "trailer"));
    expect_literal(line, "end");
    expect_literal(line, kMagic);
    expect_line_done(line);
  }

  // Re-root the derived state at the restored clock. The completion
  // chains, CDF views and revision-keyed memos rebuild lazily from the
  // logical state, bit-identically to the incrementally maintained
  // originals.
  now_ = restored_now;
  view_.now = restored_now;
  for (CompletionModel& model : models_) {
    model.set_now(restored_now);
    model.invalidate_all();
  }
}

std::string snapshot_to_string(const OnlineScheduler& scheduler) {
  std::ostringstream out;
  scheduler.snapshot(out);
  return out.str();
}

void restore_from_string(OnlineScheduler& scheduler,
                         const std::string& snapshot) {
  std::istringstream in(snapshot);
  scheduler.restore(in);
}

}  // namespace taskdrop
