#include "online/decision.hpp"

#include <ostream>

namespace taskdrop {

std::string_view to_string(DecisionKind kind) {
  switch (kind) {
    case DecisionKind::Assign: return "assign";
    case DecisionKind::Start: return "start";
    case DecisionKind::Downgrade: return "downgrade";
    case DecisionKind::DropProactive: return "drop_proactive";
    case DecisionKind::DropReactive: return "drop_reactive";
    case DecisionKind::ExpireUnmapped: return "expire_unmapped";
    case DecisionKind::FinishOnTime: return "finish_on_time";
    case DecisionKind::FinishLate: return "finish_late";
    case DecisionKind::LostToFailure: return "lost_to_failure";
    case DecisionKind::ShedOverload: return "shed_overload";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& out, const Decision& decision) {
  out << "t=" << decision.time << " kind=" << to_string(decision.kind)
      << " task=" << decision.task;
  if (decision.machine >= 0) out << " machine=" << decision.machine;
  return out;
}

}  // namespace taskdrop
