#include "online/online_scheduler.hpp"

#include <cassert>
#include <stdexcept>
#include <string>

#include "pet/pet_builder.hpp"
#include "util/audit.hpp"

namespace taskdrop {

OnlineScheduler::OnlineScheduler(const PetMatrix& pet,
                                 std::vector<MachineTypeId> machine_types,
                                 Mapper& mapper, Dropper& dropper,
                                 OnlineConfig config)
    : pet_(pet), mapper_(mapper), dropper_(dropper), config_(config) {
  if (machine_types.empty()) {
    throw std::invalid_argument("OnlineScheduler: empty fleet");
  }
  if (config_.queue_capacity < 1) {
    throw std::invalid_argument("OnlineScheduler: queue capacity must be >= 1");
  }
  if (config_.approx.enabled) {
    approx_pet_.emplace(scaled_pet(pet_, config_.approx.time_factor));
  }

  machines_.reserve(machine_types.size());
  for (std::size_t m = 0; m < machine_types.size(); ++m) {
    machines_.emplace_back(static_cast<MachineId>(m), machine_types[m],
                           config_.queue_capacity);
  }
  start_offered_.assign(machines_.size(), TaskId{-1});

  // Models bind to stable storage: machines_ is fully sized here and never
  // reallocates; tasks_ is referenced through the vector object (not its
  // data), so task storage may grow on demand.
  CompletionModel::Options options;
  options.condition_running = config_.condition_running;
  options.approx_pet = approx_pet_ ? &*approx_pet_ : nullptr;
  options.paranoid_rebuild = config_.paranoid_invalidate;
  models_.reserve(machines_.size());
  for (std::size_t m = 0; m < machines_.size(); ++m) {
    models_.emplace_back(&pet_, &machines_[m], &tasks_, options, &model_ws_);
  }

  view_ = SystemView{0,
                     &pet_,
                     approx_pet_ ? &*approx_pet_ : nullptr,
                     config_.approx.utility_weight,
                     &tasks_,
                     &machines_,
                     &models_,
                     &batch_};
}

void OnlineScheduler::reserve_tasks(std::size_t task_count) {
  tasks_.reserve(task_count);
  if (tasks_.empty() && batch_.empty()) batch_.reset(task_count);
}

TaskId OnlineScheduler::register_task(TaskTypeId type, Tick arrival,
                                      Tick deadline) {
  Task task;
  task.id = static_cast<TaskId>(tasks_.size());
  task.type = type;
  task.arrival = arrival;
  task.deadline = deadline;
  tasks_.push_back(task);
  return task.id;
}

void OnlineScheduler::advance_clock(Tick t) {
  if (t < now_) {
    throw std::invalid_argument(
        "OnlineScheduler: clock must be monotone (got t=" + std::to_string(t) +
        " after now=" + std::to_string(now_) + ")");
  }
  now_ = t;
  view_.now = t;
  // set_now early-returns when `now` is unchanged, so calling it on every
  // callback reproduces the engine's per-event set_now exactly.
  for (CompletionModel& model : models_) model.set_now(t);
}

std::size_t OnlineScheduler::pending_backlog() const {
  std::size_t backlog = batch_.size();
  for (const Machine& machine : machines_) backlog += machine.pending_count();
  return backlog;
}

bool OnlineScheduler::should_shed() const {
  const ShedPolicy& shed = config_.shed;
  if (!shed.active()) return false;
  if (shed.total_pending_watermark > 0 &&
      pending_backlog() >=
          static_cast<std::size_t>(shed.total_pending_watermark)) {
    return true;
  }
  if (shed.machine_backlog_watermark > 0) {
    // Shed only when no up machine has headroom below the watermark — a
    // single lightly loaded machine is enough to admit. A fleet with no up
    // machine at all counts as fully backlogged.
    bool any_headroom = false;
    for (const Machine& machine : machines_) {
      if (machine.up &&
          machine.pending_count() <
              static_cast<std::size_t>(shed.machine_backlog_watermark)) {
        any_headroom = true;
        break;
      }
    }
    if (!any_headroom) return true;
  }
  return false;
}

Tick OnlineScheduler::earliest_unmapped_deadline() const {
  Tick earliest = kNeverTick;
  for (const TaskId id : batch_) {
    const Tick deadline = tasks_[static_cast<std::size_t>(id)].deadline;
    if (deadline < earliest) earliest = deadline;
  }
  return earliest;
}

void OnlineScheduler::emit(DecisionKind kind, TaskId task, MachineId machine) {
  decisions_.push_back(Decision{kind, now_, task, machine});
}

const std::vector<Decision>& OnlineScheduler::task_arrived(Tick t,
                                                           TaskTypeId type,
                                                           Tick deadline,
                                                           TaskId* out_id) {
  const TaskId id = register_task(type, t, deadline);
  if (out_id != nullptr) *out_id = id;
  return task_arrived(t, id);
}

const std::vector<Decision>& OnlineScheduler::task_arrived(Tick t,
                                                           TaskId task_id) {
  advance_clock(t);
  decisions_.clear();
  Task& task = tasks_[static_cast<std::size_t>(task_id)];
  assert(task.state == TaskState::Unmapped);
  assert(task.arrival <= t && "announced before its registered arrival");
  if (should_shed()) {
    // Admission refused: the task never enters the batch queue. The
    // arrival still triggers a mapping event (expiries must not wait for
    // the next admitted task), so the valve changes admission only.
    task.state = TaskState::DroppedProactive;
    task.drop_time = now_;
    ++shed_count_;
    emit(DecisionKind::ShedOverload, task_id, -1);
    mapping_event();
    return decisions_;
  }
  batch_.push_back(task_id);
  batch_expiry_.push(task.deadline, task_id);
  mapping_event();
  return decisions_;
}

void OnlineScheduler::task_started(Tick t, MachineId machine_id, TaskId task_id,
                                   Tick duration) {
  advance_clock(t);
  Machine& machine = machines_[static_cast<std::size_t>(machine_id)];
  assert(machine.up && "a down machine cannot start a task");
  assert(!machine.running && "machine already has a running task");
  assert(!machine.queue.empty() && machine.queue.front() == task_id &&
         "only the queue head can start");
  Task& task = tasks_[static_cast<std::size_t>(task_id)];
  assert(task.state == TaskState::Queued);
  assert(now_ < task.deadline && "a late head must be dropped, not started");
  task.state = TaskState::Running;
  task.start_time = now_;
  if (duration >= 0) task.actual_execution = duration;
  machine.running = true;
  machine.run_start = now_;
  machine.run_end = duration >= 0 ? now_ + duration : kNeverTick;
  ++machine.run_token;
  start_offered_[static_cast<std::size_t>(machine_id)] = -1;
  // The cached chain stays valid bit for bit whenever the head starts at
  // run_start == now strictly before its deadline (asserted above): the
  // running completion delta(run_start) (x) exec equals the cached pending
  // chain rooted at base = delta(now) — the deadline truncation was
  // vacuous — and if time advanced since the chain was last rooted (an
  // idle gap on a volatile machine, a delayed live-mode confirmation),
  // advance_clock's set_now already rebased this idle machine's chain.
  // notify_head_started keeps the chain in that case and bumps the
  // revision so the droppers' re-examination is scheduled exactly as the
  // rebuild used to; it falls back to the full invalidate itself when
  // conditioning is on (normalize rescales slot 0 even when nothing is
  // stripped) or the keep precondition fails. This retires the blanket
  // invalidate that made every start under failure injection pay a full
  // queue-chain rebuild — the main convolution source in steady state.
  models_[static_cast<std::size_t>(machine_id)].notify_head_started(
      task.deadline);
}

const std::vector<Decision>& OnlineScheduler::task_finished(Tick t,
                                                            MachineId
                                                                machine_id) {
  advance_clock(t);
  decisions_.clear();
  Machine& machine = machines_[static_cast<std::size_t>(machine_id)];
  assert(machine.running && "no running task to finish");
  assert((machine.run_end == kNeverTick || machine.run_end == now_) &&
         "finish time disagrees with the announced duration");
  Task& task = tasks_[static_cast<std::size_t>(machine.queue.front())];
  task.finish_time = now_;
  if (now_ < task.deadline) {
    task.state = TaskState::CompletedOnTime;
    emit(DecisionKind::FinishOnTime, task.id, machine_id);
  } else {
    task.state = TaskState::CompletedLate;
    emit(DecisionKind::FinishLate, task.id, machine_id);
    deadline_miss_pending_ = true;
  }
  machine.busy_ticks += now_ - machine.run_start;
  machine.queue.pop_front();
  machine.running = false;
  machine.run_end = kNeverTick;
  models_[static_cast<std::size_t>(machine_id)].invalidate_all();
  mapping_event();
  return decisions_;
}

const std::vector<Decision>& OnlineScheduler::machine_down(Tick t,
                                                           MachineId
                                                               machine_id) {
  advance_clock(t);
  decisions_.clear();
  Machine& machine = machines_[static_cast<std::size_t>(machine_id)];
  assert(machine.up && "machine is already down");
  machine.up = false;
  start_offered_[static_cast<std::size_t>(machine_id)] = -1;
  if (machine.running) {
    Task& task = tasks_[static_cast<std::size_t>(machine.queue.front())];
    task.state = TaskState::LostToFailure;
    task.drop_time = now_;
    emit(DecisionKind::LostToFailure, task.id, machine_id);
    // The partially executed time was still paid for.
    machine.busy_ticks += now_ - machine.run_start;
    machine.queue.pop_front();
    machine.running = false;
    machine.run_end = kNeverTick;
    ++machine.run_token;  // invalidates any scheduled completion
    models_[static_cast<std::size_t>(machine_id)].invalidate_all();
  }
  mapping_event();
  return decisions_;
}

const std::vector<Decision>& OnlineScheduler::machine_up(Tick t,
                                                         MachineId
                                                             machine_id) {
  advance_clock(t);
  decisions_.clear();
  Machine& machine = machines_[static_cast<std::size_t>(machine_id)];
  assert(!machine.up && "machine is already up");
  machine.up = true;
  // Start offers for the recovered machine come out of the mapping event's
  // start pass, same as after any other event.
  mapping_event();
  return decisions_;
}

const std::vector<Decision>& OnlineScheduler::advance(Tick t) {
  advance_clock(t);
  decisions_.clear();
  mapping_event();
  return decisions_;
}

bool OnlineScheduler::reactive_drop_pass() {
  bool any = false;
  for (Machine& machine : machines_) {
    std::size_t pos = machine.first_pending_pos();
    while (pos < machine.queue.size()) {
      Task& task = tasks_[static_cast<std::size_t>(machine.queue[pos])];
      if (now_ >= task.deadline) {
        task.state = TaskState::DroppedReactive;
        task.drop_time = now_;
        emit(DecisionKind::DropReactive, task.id, machine.id);
        machine.remove_at(pos);
        models_[static_cast<std::size_t>(machine.id)].invalidate_from(pos);
        any = true;
      } else {
        ++pos;
      }
    }
  }
  // Unmapped tasks whose deadlines passed can never start in time either.
  // The expiry heap hands them over directly; entries whose task was
  // assigned (and so left the batch) in the meantime are skipped.
  while (!batch_expiry_.empty() && batch_expiry_.top().first <= now_) {
    const TaskId id = batch_expiry_.top().second;
    batch_expiry_.pop();
    if (!batch_.contains(id)) continue;
    Task& task = tasks_[static_cast<std::size_t>(id)];
    task.state = TaskState::DroppedReactive;
    task.drop_time = now_;
    emit(DecisionKind::ExpireUnmapped, task.id, -1);
    batch_.remove(id);
    any = true;
  }
  return any;
}

void OnlineScheduler::mapping_event() {
  ++mapping_events_;
  bool miss_noticed = deadline_miss_pending_;
  deadline_miss_pending_ = false;
  // Step 2 of Fig. 4: reactive drops come first.
  miss_noticed |= reactive_drop_pass();

  if (config_.engagement == DropperEngagement::EveryMappingEvent ||
      miss_noticed) {
    ++dropper_invocations_;
    dropper_.run(view_, *this);
  }

  // Step 10 of Fig. 4: the mapping heuristic runs after the dropper.
  mapper_.map_tasks(view_, *this);

  start_pass();

  if (audit::due(audit_counter_)) audit_batch_coherence();
}

void OnlineScheduler::start_pass() {
  for (Machine& machine : machines_) {
    while (machine.up && !machine.running && !machine.queue.empty()) {
      Task& task = tasks_[static_cast<std::size_t>(machine.queue.front())];
      if (now_ >= task.deadline) {
        // Could not start before its deadline: reactive drop (section IV-B).
        task.state = TaskState::DroppedReactive;
        task.drop_time = now_;
        emit(DecisionKind::DropReactive, task.id, machine.id);
        machine.queue.pop_front();
        models_[static_cast<std::size_t>(machine.id)].invalidate_all();
        deadline_miss_pending_ = true;
        continue;
      }
      // Offer the head to the environment. The scheduler keeps modelling it
      // as pending until task_started confirms; the latch keeps the offer
      // from repeating at every mapping event in between, and lapses on its
      // own when the offered head leaves the queue.
      if (start_offered_[static_cast<std::size_t>(machine.id)] != task.id) {
        emit(DecisionKind::Start, task.id, machine.id);
        start_offered_[static_cast<std::size_t>(machine.id)] = task.id;
      }
      break;
    }
  }
}

void OnlineScheduler::assign_task(TaskId task_id, MachineId machine_id) {
  Machine& machine = machines_[static_cast<std::size_t>(machine_id)];
  Task& task = tasks_[static_cast<std::size_t>(task_id)];
  assert(task.state == TaskState::Unmapped);
  assert(machine.has_free_slot());
  assert(machine.up && "down machines accept no assignments");
  assert(batch_.contains(task_id) && "task must come from the batch queue");
  batch_.remove(task_id);
  task.state = TaskState::Queued;
  task.machine = machine_id;
  machine.enqueue(task_id);
  emit(DecisionKind::Assign, task_id, machine_id);
  models_[static_cast<std::size_t>(machine_id)].invalidate_from(
      machine.queue.size() - 1);
}

void OnlineScheduler::drop_queued_task(MachineId machine_id, std::size_t pos) {
  Machine& machine = machines_[static_cast<std::size_t>(machine_id)];
  assert(pos >= machine.first_pending_pos() && pos < machine.queue.size());
  Task& task = tasks_[static_cast<std::size_t>(machine.queue[pos])];
  assert(task.state == TaskState::Queued);
  task.state = TaskState::DroppedProactive;
  task.drop_time = now_;
  emit(DecisionKind::DropProactive, task.id, machine_id);
  machine.remove_at(pos);
  models_[static_cast<std::size_t>(machine_id)].invalidate_from(pos);
}

void OnlineScheduler::downgrade_task(MachineId machine_id, std::size_t pos) {
  Machine& machine = machines_[static_cast<std::size_t>(machine_id)];
  assert(pos >= machine.first_pending_pos() && pos < machine.queue.size());
  Task& task = tasks_[static_cast<std::size_t>(machine.queue[pos])];
  assert(task.state == TaskState::Queued);
  if (task.approximate) return;
  task.approximate = true;
  emit(DecisionKind::Downgrade, task.id, machine_id);
  models_[static_cast<std::size_t>(machine_id)].invalidate_from(pos);
}

void OnlineScheduler::audit_batch_coherence() const {
  // BatchQueue: forward iteration must visit exactly size() live entries,
  // every one an Unmapped task that arrived, and the expiry heap must hold
  // a (deadline, id) entry for each so the lazy reactive pass can never
  // miss an expiry. The heap may hold stale extras (lazy deletion), but
  // its backing store must still be a well-formed min-heap.
  std::size_t seen = 0;
  for (const TaskId id : batch_) {
    ++seen;
    if (!batch_.contains(id)) {
      audit::fail("batch iteration reached a non-live task " +
                  std::to_string(id));
    }
    const Task& task = tasks_[static_cast<std::size_t>(id)];
    if (task.state != TaskState::Unmapped) {
      audit::fail("batch task " + std::to_string(id) +
                  " is not in state Unmapped");
    }
    if (task.arrival > now_) {
      audit::fail("batch task " + std::to_string(id) +
                  " has not arrived yet");
    }
    if (!batch_expiry_.contains(task.deadline, id)) {
      audit::fail("batch task " + std::to_string(id) +
                  " has no expiry-heap entry — it could expire unnoticed");
    }
  }
  if (seen != batch_.size()) {
    audit::fail("batch size " + std::to_string(batch_.size()) +
                " disagrees with iteration count " + std::to_string(seen));
  }
  if (!batch_expiry_.is_heap()) {
    audit::fail("expiry heap lost the heap property");
  }
}

}  // namespace taskdrop
