#include "online/replay.hpp"

#include <stdexcept>

#include "online/online_scheduler.hpp"

namespace taskdrop {

std::vector<Decision> replay_decisions(OnlineScheduler& scheduler,
                                       const ReplayLog& log) {
  if (scheduler.task_count() != 0) {
    throw std::invalid_argument(
        "replay_decisions: scheduler must be freshly constructed");
  }
  scheduler.reserve_tasks(log.tasks.size());
  for (const TaskSpec& spec : log.tasks) {
    scheduler.register_task(spec.type, spec.arrival, spec.deadline);
  }

  std::vector<Decision> decisions;
  decisions.reserve(log.decisions.size());
  const auto append = [&decisions](const std::vector<Decision>& batch) {
    decisions.insert(decisions.end(), batch.begin(), batch.end());
  };

  for (const ReplayEvent& event : log.events) {
    switch (event.kind) {
      case ReplayEvent::Kind::Arrive:
        append(scheduler.task_arrived(event.time, event.task));
        break;
      case ReplayEvent::Kind::Start:
        scheduler.task_started(event.time, event.machine, event.task,
                               event.duration);
        break;
      case ReplayEvent::Kind::Finish:
        append(scheduler.task_finished(event.time, event.machine));
        break;
      case ReplayEvent::Kind::Down:
        append(scheduler.machine_down(event.time, event.machine));
        break;
      case ReplayEvent::Kind::Up:
        append(scheduler.machine_up(event.time, event.machine));
        break;
      case ReplayEvent::Kind::Advance:
        append(scheduler.advance(event.time));
        break;
    }
  }
  return decisions;
}

}  // namespace taskdrop
