#pragma once

#include <cstdint>
#include <vector>

#include "online/decision.hpp"
#include "workload/trace.hpp"

namespace taskdrop {

class OnlineScheduler;

/// One environment callback as the engine recorded it: what happened, when,
/// and to whom — exactly the information a live driver would have had.
struct ReplayEvent {
  enum class Kind : std::uint8_t {
    /// A registered task arrived (task is its id into ReplayLog::tasks).
    Arrive,
    /// The engine confirmed a Start offer: `task` began on `machine` with
    /// ground-truth `duration` (the engine's sample — the one input the
    /// environment owns and the scheduler never reads for decisions).
    Start,
    /// `machine`'s running task completed.
    Finish,
    /// `machine` failed.
    Down,
    /// `machine` recovered.
    Up,
    /// Time passed with no task/machine event (stale completion or failure,
    /// drain-time mapping wakeup).
    Advance,
  };

  Kind kind = Kind::Advance;
  Tick time = 0;
  TaskId task = -1;
  MachineId machine = -1;
  Tick duration = -1;
};

/// A full environment trace of one engine run: the task table (ids match
/// trace indices), every callback in order, and the decision stream the
/// engine-driven kernels emitted. Feeding `events` back through a fresh
/// OnlineScheduler must reproduce `decisions` bit for bit — the contract
/// tests/online_replay_test.cpp locks down.
struct ReplayLog {
  Trace tasks;
  std::vector<ReplayEvent> events;
  std::vector<Decision> decisions;
};

/// Drives `scheduler` through every event of `log` (pre-registering the
/// task table first) and returns the concatenated decision stream. The
/// scheduler must be freshly constructed with the same PET, fleet, mapper,
/// dropper and config the recording run used.
std::vector<Decision> replay_decisions(OnlineScheduler& scheduler,
                                       const ReplayLog& log);

}  // namespace taskdrop
