#pragma once

#include <vector>

#include "prob/pmf.hpp"
#include "util/time_types.hpp"

namespace taskdrop {

/// Builds an execution-time PMF from continuous-time samples (milliseconds),
/// reproducing the paper's estimation recipe: "we applied a histogram to
/// discretize the result and produce PMFs" (section V-A).
///
/// Each sample is rounded to the nearest lattice point i * bin_width and
/// clamped to at least one bin (execution times are strictly positive). The
/// result sits on the global lattice (offset is a multiple of bin_width),
/// which the deadline-truncated convolution requires, and sums to exactly 1.
Pmf pmf_from_samples(const std::vector<double>& samples_ms, Tick bin_width);

}  // namespace taskdrop
