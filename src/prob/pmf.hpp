#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "util/rng.hpp"
#include "util/time_types.hpp"

namespace taskdrop {

/// Discrete probability mass function over time ticks.
///
/// This is the workhorse of the paper's probabilistic model: execution times
/// of every (task type, machine type) pair are PMFs stored in the PET matrix
/// (Shestak et al.'s modelling, adopted by the paper), and completion times
/// of queued tasks are PMFs produced by deadline-truncated convolution
/// (Eq. 1). A Pmf is stored densely on a regular lattice:
///
///     support = { offset + i * stride : 0 <= i < size }
///
/// with one probability per lattice point. `stride` is the histogram bin
/// width used when the PMF was estimated from samples; convolving two PMFs
/// with the same stride stays on a lattice with that stride, so the dense
/// representation is closed under the operations the model needs.
///
/// Numerical conventions:
///  * Probabilities are doubles; a *proper* PMF sums to 1 within 1e-9, but
///    intermediate objects (e.g. partial convolutions) may carry less mass.
///  * trim() removes leading/trailing bins below a tiny epsilon; interior
///    zeros are kept so the lattice stays regular.
///  * An empty Pmf (size() == 0) represents "no distribution" and has mass 0.
class Pmf {
 public:
  /// Empty PMF (no support, zero mass).
  Pmf() = default;

  /// PMF carrying all mass at a single time. Deltas are stride-agnostic:
  /// they combine with a PMF of any stride.
  static Pmf delta(Tick t);

  /// Builds a PMF from (time, probability) impulses. Every time must lie on
  /// the lattice {min_time + i * stride}. Probabilities must be >= 0.
  static Pmf from_impulses(std::vector<std::pair<Tick, double>> impulses,
                           Tick stride = 1);

  /// Direct constructor from a dense probability vector.
  Pmf(Tick offset, Tick stride, std::vector<double> probs);

  /// Replaces the contents with the dense bin range [first, last) starting
  /// at `offset`, reusing the existing allocation when its capacity
  /// suffices (the convolution workspace path relies on this staying
  /// allocation-free in steady state). An empty range resets to the empty
  /// PMF (offset 0, stride 1), matching what trim() leaves behind.
  void assign(Tick offset, Tick stride, const double* first,
              const double* last);

  /// Keeps only the bin index range [first, last) in place, rebasing the
  /// offset; no allocation, unlike assign() with overlapping pointers
  /// (which would be UB through vector::assign). An empty range resets to
  /// the empty PMF. Used by the conditioned-completion path to strip the
  /// already-elapsed prefix of a running task's completion PMF.
  void slice(std::size_t first, std::size_t last);

  bool empty() const { return probs_.empty(); }
  std::size_t size() const { return probs_.size(); }
  Tick stride() const { return stride_; }
  Tick offset() const { return offset_; }

  /// Time of the i-th lattice point (i < size()).
  Tick time_at(std::size_t i) const {
    return offset_ + static_cast<Tick>(i) * stride_;
  }
  double prob_at_index(std::size_t i) const { return probs_[i]; }

  /// Dense probability array (size() entries); for kernel inner loops.
  const double* data() const { return probs_.data(); }

  /// Probability at an exact time; 0 when t is off-lattice or out of range.
  double prob_at(Tick t) const;

  Tick min_time() const { return offset_; }
  Tick max_time() const {
    return offset_ + static_cast<Tick>(probs_.size() - 1) * stride_;
  }

  double total_mass() const;

  /// P(X < t) — strictly before, matching Eq. 2's sum over t < delta.
  double mass_before(Tick t) const;

  /// P(X >= t).
  double mass_at_or_after(Tick t) const;

  /// Expectation; 0 for an empty PMF. Not normalised: for a sub-probability
  /// PMF this is sum(t * p(t)), not a conditional mean.
  double mean() const;

  /// Variance of a *proper* PMF (mass ~ 1).
  double variance() const;

  /// Multiplies every probability by `factor`.
  void scale(double factor);

  /// Rescales to total mass 1. No-op on an empty or zero-mass PMF.
  void normalize();

  /// Removes leading/trailing bins with probability <= eps.
  void trim(double eps = 1e-12);

  /// Collapses all mass at times >= horizon into the single lattice bin at
  /// (or just above) horizon. Bounds support growth when queue PMFs are
  /// only ever compared against deadlines below the horizon.
  void lump_tail(Tick horizon);

  /// Adds probability p at time t. Grows the dense array as needed; t must
  /// be lattice-compatible with the current offset/stride.
  void add_impulse(Tick t, double p);

  /// Time-scales the distribution: X' = round(factor * X), snapped to the
  /// stride lattice and clamped to at least one stride (durations stay
  /// positive). Masses landing in the same bin accumulate. Used by the
  /// approximate-computing extension to derive the degraded-quality
  /// execution PMF (e.g. factor 0.5 = "half the work").
  Pmf scale_time(double factor) const;

  /// Smallest time q with P(X <= q) >= p (p in (0, 1]). The PMF must carry
  /// mass; returns max_time() when p exceeds the total mass.
  Tick quantile(double p) const;

  /// Draws a variate by inverse-CDF sampling. The PMF must be proper.
  Tick sample(Rng& rng) const;

  bool operator==(const Pmf& other) const = default;

 private:
  Tick offset_ = 0;
  Tick stride_ = 1;
  std::vector<double> probs_;
};

}  // namespace taskdrop
