#include "prob/histogram.hpp"

#include <cmath>
#include <map>
#include <stdexcept>

namespace taskdrop {

Pmf pmf_from_samples(const std::vector<double>& samples_ms, Tick bin_width) {
  if (bin_width < 1) {
    throw std::invalid_argument("pmf_from_samples: bin width must be >= 1");
  }
  if (samples_ms.empty()) {
    throw std::invalid_argument("pmf_from_samples: no samples");
  }
  std::map<Tick, double> counts;
  for (double x : samples_ms) {
    if (x < 0.0) {
      throw std::invalid_argument(
          "pmf_from_samples: samples must be >= 0");
    }
    auto bin = static_cast<Tick>(std::llround(x / static_cast<double>(bin_width)));
    if (bin < 1) bin = 1;  // execution takes at least one bin
    counts[bin * bin_width] += 1.0;
  }
  std::vector<std::pair<Tick, double>> impulses;
  impulses.reserve(counts.size());
  const double n = static_cast<double>(samples_ms.size());
  for (const auto& [t, c] : counts) impulses.emplace_back(t, c / n);
  return Pmf::from_impulses(std::move(impulses), bin_width);
}

}  // namespace taskdrop
