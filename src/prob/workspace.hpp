#pragma once

#include <cstddef>
#include <vector>

#include "prob/fft.hpp"
#include "prob/pmf.hpp"

namespace taskdrop {

/// Reusable scratch state for the convolution kernels and the queue-chain
/// walks built on them.
///
/// The prob-layer hot paths (CompletionModel rebuilds, the droppers'
/// provisional-drop chains, PAM's what-if probes) perform thousands of
/// convolutions per mapping event. Each convolve/deadline_convolve call used
/// to allocate a fresh dense buffer plus a result Pmf; with a workspace the
/// accumulation buffer and the chain Pmf are owned by the caller and reused
/// across calls, so steady-state convolution is allocation-free.
///
/// A workspace is plain mutable scratch: it carries no results across calls
/// and may be shared by any number of sequential users (the engine shares
/// one across its per-machine completion models; each dropper owns one for
/// its what-if chains). It must not be shared across threads.
class PmfWorkspace {
 public:
  /// Dense accumulation buffer of `bins` zeros. Reuses capacity; the
  /// returned reference stays valid until the next zeroed() call.
  std::vector<double>& zeroed(std::size_t bins) {
    acc_.assign(bins, 0.0);
    return acc_;
  }

  /// Scratch chain PMF for iterated-convolution walks (window_chance_sum,
  /// the droppers' provisional chains). Kernels never touch it, so a chain
  /// held here may be passed as both input and output of the *_into calls.
  Pmf chain;

  /// FFT plan + scratch for the wide-PMF convolution path (see fft.hpp).
  /// Owned here so its transform buffers and twiddle tables amortize across
  /// calls exactly like the accumulation buffer does.
  FftPlan fft;

 private:
  std::vector<double> acc_;
};

}  // namespace taskdrop
