#pragma once

#include "prob/pmf.hpp"
#include "util/time_types.hpp"

namespace taskdrop {

/// Plain convolution: distribution of X + Y for independent X ~ a, Y ~ b.
/// Either PMF may be a single impulse (pure shift); otherwise the strides
/// must match. Returns an empty PMF when either input is empty.
Pmf convolve(const Pmf& a, const Pmf& b);

/// Deadline-truncated convolution — Eq. 1 (and Eqs. 4, 5) of the paper.
///
/// `pred` is the completion-time PMF of the task immediately ahead in the
/// machine queue; `exec` is the execution-time PMF of the pending task;
/// `deadline` is the pending task's deadline (delta_i). A pending task that
/// cannot *start* before its deadline is reactively dropped, so:
///
///   * predecessor-completion mass at times k <  deadline convolves with the
///     execution PMF (the task runs, possibly finishing past the deadline);
///   * predecessor-completion mass at times k >= deadline passes through
///     unchanged (the task is dropped; the slot's completion time equals the
///     predecessor's).
///
/// The result is a proper PMF whenever `pred` and `exec` are proper.
Pmf deadline_convolve(const Pmf& pred, const Pmf& exec, Tick deadline);

/// Chance of success — Eq. 2: the completion-time mass strictly before the
/// deadline.
double chance_of_success(const Pmf& completion, Tick deadline);

}  // namespace taskdrop
