#pragma once

#include "prob/pmf.hpp"
#include "prob/workspace.hpp"
#include "util/time_types.hpp"

namespace taskdrop {

/// Plain convolution: distribution of X + Y for independent X ~ a, Y ~ b.
/// Either PMF may be a single impulse (pure shift); otherwise the strides
/// must match (throws std::invalid_argument — all PMFs of one scenario are
/// built with one histogram bin width). Returns an empty PMF when either
/// input is empty.
Pmf convolve(const Pmf& a, const Pmf& b);

/// Allocation-free variant: accumulates into `ws` scratch and publishes the
/// result into `out`, reusing out's storage. `out` may alias `a` or `b`
/// (the kernels read the inputs fully before `out` is written).
void convolve_into(const Pmf& a, const Pmf& b, PmfWorkspace& ws, Pmf& out);

/// Deadline-truncated convolution — Eq. 1 (and Eqs. 4, 5) of the paper.
///
/// `pred` is the completion-time PMF of the task immediately ahead in the
/// machine queue; `exec` is the execution-time PMF of the pending task;
/// `deadline` is the pending task's deadline (delta_i). A pending task that
/// cannot *start* before its deadline is reactively dropped, so:
///
///   * predecessor-completion mass at times k <  deadline convolves with the
///     execution PMF (the task runs, possibly finishing past the deadline);
///   * predecessor-completion mass at times k >= deadline passes through
///     unchanged (the task is dropped; the slot's completion time equals the
///     predecessor's).
///
/// The result is a proper PMF whenever `pred` and `exec` are proper.
/// Throws std::invalid_argument when the lattices are incompatible (stride
/// mismatch, or an execution PMF offset off the global lattice while
/// pass-through bins exist) or when `exec` is empty.
Pmf deadline_convolve(const Pmf& pred, const Pmf& exec, Tick deadline);

/// Allocation-free variant of deadline_convolve. `out` may alias `pred` or
/// `exec`, which is what lets chain walks ping-pong one workspace PMF:
///
///   deadline_convolve_into(ws.chain, exec, d, ws, ws.chain);
void deadline_convolve_into(const Pmf& pred, const Pmf& exec, Tick deadline,
                            PmfWorkspace& ws, Pmf& out);

/// Chance of success — Eq. 2: the completion-time mass strictly before the
/// deadline.
double chance_of_success(const Pmf& completion, Tick deadline);

}  // namespace taskdrop
