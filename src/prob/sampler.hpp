#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "prob/pmf.hpp"
#include "util/rng.hpp"
#include "util/time_types.hpp"

namespace taskdrop {

/// Precomputed inverse-CDF sampler over a PMF.
///
/// The simulation engine draws one "ground-truth" execution time per
/// task-start from the PET matrix; Pmf::sample is a linear scan, so the
/// engine caches one CdfSampler per (task type, machine type) and samples
/// in O(log n) instead.
class CdfSampler {
 public:
  CdfSampler() = default;

  /// `pmf` must be proper (total mass ~ 1).
  explicit CdfSampler(const Pmf& pmf);

  bool valid() const { return !times_.empty(); }

  Tick sample(Rng& rng) const;

 private:
  std::vector<Tick> times_;
  std::vector<double> cdf_;  // inclusive prefix sums
};

/// O(1) cumulative-mass queries over a PMF.
///
/// The PAM mapping heuristic evaluates the chance of success of every
/// unmapped task on every candidate machine at every mapping event; each
/// evaluation folds an execution CDF against the machine's queue-tail PMF.
/// Pmf::mass_before is a linear scan, so the PET matrix caches one PmfCdf
/// per cell and the fold becomes O(|tail|) instead of O(|tail| * |exec|).
class PmfCdf {
 public:
  PmfCdf() = default;
  explicit PmfCdf(const Pmf& pmf) { rebuild(pmf); }

  /// Recomputes the prefix sums for `pmf`, reusing the existing allocation
  /// (the completion model rebuilds one PmfCdf per queue slot on every
  /// chain update; steady-state rebuilds are allocation-free). Summation
  /// runs in ascending bin order, so mass_before returns bit-identical
  /// values to Pmf::mass_before on the source PMF.
  void rebuild(const Pmf& pmf);

  /// Resets the view to `bins` lattice bins at (offset, stride) and returns
  /// the prefix array (size bins + 1) for the caller to fill. Entry i is
  /// the value mass_before reports for every query time in
  /// (offset + (i-1)*stride, offset + i*stride]; entry 0 must be 0 and the
  /// entries must be monotone for the result to behave like a CDF. This is
  /// how CompletionModel::appended_view caches externally computed
  /// cumulative evaluations on the combined queue-tail x execution lattice
  /// without materialising the underlying PMF.
  std::vector<double>& rebuild_prefix(Tick offset, Tick stride,
                                      std::size_t bins);

  bool valid() const { return !prefix_.empty(); }

  /// P(X < t), identical to Pmf::mass_before on the source PMF. Inline:
  /// the appended-distribution cells and the PAM probes issue tens of
  /// millions of these per trial.
  double mass_before(Tick t) const {
    if (prefix_.size() <= 1 || t <= offset_) return 0.0;
    const Tick span = t - offset_;
    auto bins = static_cast<std::size_t>((span + stride_ - 1) / stride_);
    bins = std::min(bins, prefix_.size() - 1);
    return prefix_[bins];
  }

  /// Cumulative mass of the first `bins_before` bins — mass_before for a
  /// caller that already knows the bin index (the appended-cell window
  /// fold derives it from lattice arithmetic and skips the division).
  double prefix_at(std::size_t bins_before) const {
    return prefix_[bins_before];
  }

  double total_mass() const { return prefix_.empty() ? 0.0 : prefix_.back(); }

 private:
  Tick offset_ = 0;
  Tick stride_ = 1;
  /// prefix_[i] = mass of the first i bins; size = bin count + 1.
  std::vector<double> prefix_;
};

}  // namespace taskdrop
