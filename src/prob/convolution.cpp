#include "prob/convolution.hpp"

#include <algorithm>
#include <cassert>
#include <vector>

namespace taskdrop {
namespace {

/// Stride of the lattice produced by combining `a` and `b`. Single-impulse
/// PMFs are stride-agnostic shifts; two multi-bin PMFs must share a stride
/// (all PMFs of one scenario are built with one histogram bin width).
Tick combined_stride(const Pmf& a, const Pmf& b) {
  if (a.size() <= 1) return b.size() <= 1 ? Tick{1} : b.stride();
  if (b.size() <= 1) return a.stride();
  assert(a.stride() == b.stride() &&
         "convolving PMFs with different bin widths is not supported");
  return a.stride();
}

}  // namespace

Pmf convolve(const Pmf& a, const Pmf& b) {
  if (a.empty() || b.empty()) return Pmf();
  const Tick stride = combined_stride(a, b);
  const Tick lo = a.min_time() + b.min_time();
  const Tick hi = a.max_time() + b.max_time();
  std::vector<double> out(static_cast<std::size_t>((hi - lo) / stride) + 1,
                          0.0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double pa = a.prob_at_index(i);
    if (pa == 0.0) continue;
    const Tick ta = a.time_at(i);
    for (std::size_t j = 0; j < b.size(); ++j) {
      const double pb = b.prob_at_index(j);
      if (pb == 0.0) continue;
      out[static_cast<std::size_t>((ta + b.time_at(j) - lo) / stride)] +=
          pa * pb;
    }
  }
  Pmf result(lo, stride, std::move(out));
  result.trim();
  return result;
}

Pmf deadline_convolve(const Pmf& pred, const Pmf& exec, Tick deadline) {
  if (pred.empty()) return Pmf();
  assert(!exec.empty() && "execution PMF must be non-empty");

  const bool has_conv = pred.min_time() < deadline;
  const bool has_pass = pred.max_time() >= deadline;
  if (!has_conv) {
    // The task can never start before its deadline: it is dropped with
    // certainty and the slot completes exactly when the predecessor does.
    return pred;
  }

  const Tick stride = combined_stride(pred, exec);
  if (has_pass && pred.size() > 1 && exec.size() > 1) {
    // Pass-through bins live on the predecessor's lattice while convolved
    // bins live on (pred + exec); they only coincide when the execution
    // PMF's offset is itself a lattice multiple, which the histogram
    // builder guarantees for PET-matrix PMFs.
    assert(exec.min_time() % stride == 0 &&
           "execution PMF must sit on the global lattice");
  }

  // Support bounds. The convolved part only uses start times strictly
  // below the deadline; the pass-through part only uses predecessor bins at
  // or above it. Both live on the predecessor's lattice base.
  Tick last_start = pred.max_time();
  if (last_start >= deadline) {
    const Tick over = last_start - (deadline - 1);
    last_start -= ((over + stride - 1) / stride) * stride;
  }
  Tick lo = pred.min_time() + exec.min_time();
  Tick hi = last_start + exec.max_time();
  if (has_pass) {
    // First predecessor lattice point at or above the deadline.
    const Tick over = deadline - pred.min_time();
    const Tick pass_lo = pred.min_time() + ((over + stride - 1) / stride) * stride;
    lo = std::min(lo, pass_lo);
    hi = std::max(hi, pred.max_time());
  }
  std::vector<double> out(static_cast<std::size_t>((hi - lo) / stride) + 1,
                          0.0);
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double pk = pred.prob_at_index(i);
    if (pk == 0.0) continue;
    const Tick k = pred.time_at(i);
    if (k < deadline) {
      for (std::size_t j = 0; j < exec.size(); ++j) {
        const double pe = exec.prob_at_index(j);
        if (pe == 0.0) continue;
        out[static_cast<std::size_t>((k + exec.time_at(j) - lo) / stride)] +=
            pk * pe;
      }
    } else {
      out[static_cast<std::size_t>((k - lo) / stride)] += pk;
    }
  }
  Pmf result(lo, stride, std::move(out));
  result.trim();
  return result;
}

double chance_of_success(const Pmf& completion, Tick deadline) {
  return completion.mass_before(deadline);
}

}  // namespace taskdrop
