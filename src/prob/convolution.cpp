#include "prob/convolution.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "prob/fft.hpp"

namespace taskdrop {
namespace {

/// Matches Pmf::trim's epsilon: bins at or below this are support noise.
constexpr double kEps = 1e-12;

/// o[j] += s * x[j]. The accumulation buffer is workspace-owned scratch and
/// never aliases a PMF's probability storage, so the restrict qualification
/// is structurally sound; it is what lets the autovectorizer emit straight
/// vector code instead of a runtime alias-versioned loop (-fopt-info-vec
/// reports "loop vectorized" with no versioning note). Summation order is
/// identical to the plain scalar loop — vectorization only reorders
/// *independent* lanes, so results stay bit-identical to the reference.
inline void axpy(double* __restrict o, const double* __restrict x,
                 std::size_t n, double s) {
  for (std::size_t j = 0; j < n; ++j) o[j] += s * x[j];
}

/// o[j] = s * x[j], same aliasing contract as axpy.
inline void scaled_copy(double* __restrict o, const double* __restrict x,
                        std::size_t n, double s) {
  for (std::size_t j = 0; j < n; ++j) o[j] = s * x[j];
}

/// Stride of the lattice produced by combining `a` and `b`. Single-impulse
/// PMFs are stride-agnostic shifts; two multi-bin PMFs must share a stride
/// (all PMFs of one scenario are built with one histogram bin width). A
/// mismatch is a real error path — an assert here would let Release builds
/// silently index a garbage lattice.
Tick combined_stride(const Pmf& a, const Pmf& b) {
  if (a.size() <= 1) return b.size() <= 1 ? Tick{1} : b.stride();
  if (b.size() <= 1) return a.stride();
  if (a.stride() != b.stride()) {
    throw std::invalid_argument(
        "convolve: PMF bin widths differ (" + std::to_string(a.stride()) +
        " vs " + std::to_string(b.stride()) +
        "); all PMFs of one scenario must share one histogram bin width");
  }
  return a.stride();
}

/// Publishes the accumulation buffer as a trimmed PMF. Leading bins at or
/// below epsilon are dropped exactly as Pmf::trim would. The trailing
/// sub-epsilon tail is truncated early via lumping: the longest suffix
/// whose *cumulative* mass is at or below epsilon is folded into the last
/// surviving bin. This bounds support growth along deep completion chains
/// (bin products shrink geometrically with queue depth) while conserving
/// total mass; every published bin differs from the untrimmed sum by at
/// most epsilon.
void publish(std::vector<double>& acc, Tick lo, Tick stride, Pmf& out) {
  const std::size_t n = acc.size();
  std::size_t first = 0;
  while (first < n && acc[first] <= kEps) ++first;
  if (first == n) {
    out.assign(0, 1, nullptr, nullptr);
    return;
  }
  std::size_t last = n - 1;
  double tail = 0.0;
  while (last > first && tail + acc[last] <= kEps) tail += acc[last--];
  acc[last] += tail;
  out.assign(lo + static_cast<Tick>(first) * stride, stride,
             acc.data() + first, acc.data() + last + 1);
}

}  // namespace

void convolve_into(const Pmf& a, const Pmf& b, PmfWorkspace& ws, Pmf& out) {
  if (a.empty() || b.empty()) {
    out.assign(0, 1, nullptr, nullptr);
    return;
  }
  const Tick stride = combined_stride(a, b);
  const Tick lo = a.min_time() + b.min_time();
  const Tick hi = a.max_time() + b.max_time();
  auto& acc = ws.zeroed(static_cast<std::size_t>((hi - lo) / stride) + 1);
  if (a.size() == 1 || b.size() == 1) {
    // Single-impulse fast path: a pure shift of the wider PMF, scaled by
    // the impulse mass (1.0 for a proper delta, leaving the bins
    // bit-identical).
    const Pmf& wide = a.size() == 1 ? b : a;
    const double scale = (a.size() == 1 ? a : b).prob_at_index(0);
    scaled_copy(acc.data(), wide.data(), wide.size(), scale);
  } else if (fft_profitable(a.size(), b.size())) {
    // Wide-PMF regime: O(n log n) FFT convolution. acc has exactly
    // size(a) + size(b) - 1 bins here, the full product support.
    ws.fft.convolve(a.data(), a.size(), b.data(), b.size(), acc.data());
  } else {
    // Both inputs share the stride, so bin i of `a` against bin j of `b`
    // lands exactly on bin i + j: the inner loop is a contiguous
    // multiply-accumulate with no per-element lattice arithmetic.
    const double* pb = b.data();
    const std::size_t nb = b.size();
    for (std::size_t i = 0; i < a.size(); ++i) {
      const double pa = a.prob_at_index(i);
      if (pa == 0.0) continue;  // float-eq-ok: exact-zero sparse skip
      axpy(acc.data() + i, pb, nb, pa);
    }
  }
  publish(acc, lo, stride, out);
}

Pmf convolve(const Pmf& a, const Pmf& b) {
  PmfWorkspace ws;
  Pmf out;
  convolve_into(a, b, ws, out);
  return out;
}

void deadline_convolve_into(const Pmf& pred, const Pmf& exec, Tick deadline,
                            PmfWorkspace& ws, Pmf& out) {
  if (pred.empty()) {
    out.assign(0, 1, nullptr, nullptr);
    return;
  }
  if (exec.empty()) {
    throw std::invalid_argument(
        "deadline_convolve: execution PMF must be non-empty");
  }

  const bool has_conv = pred.min_time() < deadline;
  const bool has_pass = pred.max_time() >= deadline;
  if (!has_conv) {
    // The task can never start before its deadline: it is dropped with
    // certainty and the slot completes exactly when the predecessor does.
    if (&out != &pred) out = pred;
    return;
  }

  const Tick stride = combined_stride(pred, exec);
  if (has_pass && exec.min_time() % stride != 0) {
    // Pass-through bins live on the predecessor's lattice while convolved
    // bins live on (pred + exec); they only coincide when the execution
    // PMF's offset is itself a lattice multiple, which the histogram
    // builder guarantees for PET-matrix PMFs. This holds for *any*
    // execution PMF, single-impulse shifts included: a mixed result is not
    // representable on one lattice. (Reaching here implies has_conv, so a
    // multi-bin predecessor; pred.size() == 1 cannot have both regimes.)
    throw std::invalid_argument(
        "deadline_convolve: execution PMF offset " +
        std::to_string(exec.min_time()) + " is off the stride-" +
        std::to_string(stride) +
        " lattice; convolved and pass-through bins cannot share a lattice");
  }

  // Support bounds. The convolved part only uses start times strictly
  // below the deadline; the pass-through part only uses predecessor bins at
  // or above it. Both live on the predecessor's lattice base.
  Tick last_start = pred.max_time();
  if (last_start >= deadline) {
    const Tick over = last_start - (deadline - 1);
    last_start -= ((over + stride - 1) / stride) * stride;
  }
  Tick lo = pred.min_time() + exec.min_time();
  Tick hi = last_start + exec.max_time();
  if (has_pass) {
    // First predecessor lattice point at or above the deadline.
    const Tick over = deadline - pred.min_time();
    const Tick pass_lo =
        pred.min_time() + ((over + stride - 1) / stride) * stride;
    lo = std::min(lo, pass_lo);
    hi = std::max(hi, pred.max_time());
  }
  auto& acc = ws.zeroed(static_cast<std::size_t>((hi - lo) / stride) + 1);

  // Predecessor bins split into a convolved prefix (start < deadline) and a
  // pass-through suffix, so both loops run branch-free with all lattice
  // divisions hoisted out.
  const std::size_t split =
      has_pass ? static_cast<std::size_t>(
                     (deadline - pred.min_time() + stride - 1) / stride)
               : pred.size();
  const double* pe = exec.data();
  const std::size_t ne = exec.size();
  const auto conv_base =
      static_cast<std::size_t>((pred.min_time() + exec.min_time() - lo) /
                               stride);
  if (fft_profitable(split, ne)) {
    // Wide-PMF regime. The convolved block occupies acc[conv_base ..
    // conv_base + split + ne - 1), still all zeros at this point; the FFT
    // writes each of those bins exactly once and the pass-through loop
    // below adds on top, matching the direct path's accumulation.
    ws.fft.convolve(pred.data(), split, pe, ne, acc.data() + conv_base);
  } else {
    for (std::size_t i = 0; i < split; ++i) {
      const double pk = pred.prob_at_index(i);
      if (pk == 0.0) continue;  // float-eq-ok: exact-zero sparse skip
      axpy(acc.data() + conv_base + i, pe, ne, pk);
    }
  }
  const auto pass_base =
      static_cast<std::size_t>((pred.min_time() - lo) / stride);
  if (split < pred.size()) {
    // Pass-through mass: s = 1.0 makes the fused multiply exact, so this
    // is bit-identical to `acc[k] += p` while sharing the restrict kernel.
    axpy(acc.data() + pass_base + split, pred.data() + split,
         pred.size() - split, 1.0);
  }
  publish(acc, lo, stride, out);
}

Pmf deadline_convolve(const Pmf& pred, const Pmf& exec, Tick deadline) {
  PmfWorkspace ws;
  Pmf out;
  deadline_convolve_into(pred, exec, deadline, ws, out);
  return out;
}

double chance_of_success(const Pmf& completion, Tick deadline) {
  return completion.mass_before(deadline);
}

}  // namespace taskdrop
