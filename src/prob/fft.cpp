#include "prob/fft.hpp"

#include <atomic>
#include <cmath>
#include <utility>

namespace taskdrop {
namespace {

constexpr double kPi = 3.141592653589793238462643383279502884;

/// Measured on the BM_WideConvolve direct-vs-fft curve (Release, g++,
/// x86-64, committed BENCH_micro.json): the vectorized direct kernel
/// wins through 256x256 bins (15.6us vs 18.2us there), and the FFT wins
/// from 512x512 up (1.6x there, 5.5x at 2048, 25x at 8192). The gate
/// sits at the clear win, not break-even: mixed shapes like (256, 512)
/// measure break-even too, and below-gate sizes keep the scalar
/// kernels' bit-exact summation order for free. See the README
/// "FFT crossover" table; re-measure with
/// `micro_chain --benchmark_filter='BM_Wide'`.
constexpr std::size_t kDefaultFftMinBins = 512;

std::atomic<std::size_t> g_fft_min_bins{kDefaultFftMinBins};

}  // namespace

std::size_t fft_min_bins() {
  return g_fft_min_bins.load(std::memory_order_relaxed);
}

void set_fft_min_bins(std::size_t bins) {
  g_fft_min_bins.store(bins, std::memory_order_relaxed);
}

bool fft_profitable(std::size_t na, std::size_t nb) {
  const std::size_t t = fft_min_bins();
  return t != 0 && na >= t && nb >= t;
}

const FftPlan::Twiddles& FftPlan::level(std::size_t idx) {
  if (idx >= levels_.size()) levels_.resize(idx + 1);
  Twiddles& tw = levels_[idx];
  const std::size_t len = std::size_t{1} << (idx + 1);
  if (tw.re.size() != len / 2) {
    tw.re.resize(len / 2);
    tw.im.resize(len / 2);
    for (std::size_t k = 0; k < len / 2; ++k) {
      const double ang =
          -2.0 * kPi * static_cast<double>(k) / static_cast<double>(len);
      tw.re[k] = std::cos(ang);
      tw.im[k] = std::sin(ang);
    }
  }
  return tw;
}

void FftPlan::forward(double* re, double* im, std::size_t n) {
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j |= bit;
    if (i < j) {
      std::swap(re[i], re[j]);
      std::swap(im[i], im[j]);
    }
  }
  // Iterative Cooley-Tukey butterflies, smallest span first.
  std::size_t idx = 0;
  for (std::size_t len = 2; len <= n; len <<= 1, ++idx) {
    const Twiddles& tw = level(idx);
    const std::size_t half = len / 2;
    for (std::size_t base = 0; base < n; base += len) {
      for (std::size_t k = 0; k < half; ++k) {
        const std::size_t lo = base + k;
        const std::size_t hi = lo + half;
        const double xr = re[hi] * tw.re[k] - im[hi] * tw.im[k];
        const double xi = re[hi] * tw.im[k] + im[hi] * tw.re[k];
        re[hi] = re[lo] - xr;
        im[hi] = im[lo] - xi;
        re[lo] += xr;
        im[lo] += xi;
      }
    }
  }
}

void FftPlan::convolve(const double* a, std::size_t na, const double* b,
                       std::size_t nb, double* out) {
  const std::size_t n_out = na + nb - 1;
  std::size_t n = 1;
  while (n < n_out) n <<= 1;

  // Pack a into the real lane and b into the imaginary lane; one transform
  // carries both spectra.
  re_.assign(n, 0.0);
  im_.assign(n, 0.0);
  for (std::size_t i = 0; i < na; ++i) re_[i] = a[i];
  for (std::size_t i = 0; i < nb; ++i) im_[i] = b[i];
  forward(re_.data(), im_.data(), n);

  // Unpack A = FFT(a) and B = FFT(b) by conjugate symmetry and form the
  // product spectrum C = A*B in place. For the pair (k, j = n-k mod n):
  //   A[k] = ((re[k]+re[j]) + i(im[k]-im[j])) / 2
  //   B[k] = ((im[k]+im[j]) + i(re[j]-re[k])) / 2
  // and C[j] = conj(C[k]) because the product sequence is real. Each j in
  // (n/2, n) is read and written exactly once, inside its partner's
  // iteration, so the in-place update never reads a clobbered value.
  for (std::size_t k = 0; k <= n / 2; ++k) {
    const std::size_t j = (n - k) & (n - 1);
    const double ar = 0.5 * (re_[k] + re_[j]);
    const double ai = 0.5 * (im_[k] - im_[j]);
    const double br = 0.5 * (im_[k] + im_[j]);
    const double bi = 0.5 * (re_[j] - re_[k]);
    const double cr = ar * br - ai * bi;
    const double ci = ar * bi + ai * br;
    re_[k] = cr;
    im_[k] = ci;
    if (j != k) {
      re_[j] = cr;
      im_[j] = -ci;
    }
  }

  // Inverse transform via forward-on-conjugate: c = conj(F(conj(C))) / n.
  // Only the real part is needed, so the outer conjugation is free.
  for (std::size_t k = 0; k < n; ++k) im_[k] = -im_[k];
  forward(re_.data(), im_.data(), n);
  const double inv = 1.0 / static_cast<double>(n);
  for (std::size_t i = 0; i < n_out; ++i) {
    const double v = re_[i] * inv;
    out[i] = v > 0.0 ? v : 0.0;
  }
}

}  // namespace taskdrop
