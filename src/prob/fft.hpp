#pragma once

#include <cstddef>
#include <vector>

namespace taskdrop {

/// Radix-2 real-sequence linear convolution for the wide-PMF regime.
///
/// Both real inputs are packed into one complex sequence (a in the real
/// lane, b in the imaginary lane), transformed with a single iterative
/// radix-2 FFT, unpacked by conjugate symmetry, multiplied, and inverted —
/// two transforms total instead of three. The plan owns the transform
/// buffers and per-size twiddle tables, so steady-state calls are
/// allocation-free once the largest size has been seen.
///
/// Numerics: the result of a size-n transform is a pure function of the
/// inputs and n (twiddle tables are computed per exact butterfly size, never
/// resampled from a larger table), so equal inputs give bit-equal outputs
/// regardless of what the plan transformed before. Round-off is bounded by
/// O(eps * log n) relative to the direct sum — the differential suite locks
/// 1e-12 absolute agreement — and tiny negative round-off in bins whose
/// exact value is 0 is clamped to +0.0 so downstream trim/mass logic never
/// sees a negative probability.
///
/// This path does NOT preserve the direct kernels' summation order; callers
/// that need bit-identity with the scalar reference (every figure path) must
/// stay below the dispatch crossover. See fft_profitable().
class FftPlan {
 public:
  /// Linear convolution of a[0..na) with b[0..nb): writes the na+nb-1
  /// coefficients of the product polynomial to out[0..na+nb-1). `out` must
  /// not alias `a` or `b`. Requires na >= 1 and nb >= 1.
  void convolve(const double* a, std::size_t na, const double* b,
                std::size_t nb, double* out);

 private:
  /// In-place forward DFT of (re, im), n a power of two, using the cached
  /// twiddle tables. Inversion is forward-on-conjugate, done by the caller.
  void forward(double* re, double* im, std::size_t n);

  /// Twiddles for butterfly size 1 << (level + 1); lazily built, each a pure
  /// function of its own size.
  struct Twiddles {
    std::vector<double> re, im;
  };
  const Twiddles& level(std::size_t idx);

  std::vector<Twiddles> levels_;
  std::vector<double> re_, im_;
};

/// Crossover gate for the FFT dispatch in convolve_into /
/// deadline_convolve_into: the FFT path runs only when *both* operands have
/// at least this many bins. The default is the measured break-even on the
/// micro_chain wide-PMF curve (see README and bench/micro_chain.cpp); the
/// paper's execution-time PMFs are far narrower, so every figure
/// configuration stays on the order-preserving direct kernels.
std::size_t fft_min_bins();

/// Overrides the crossover. 0 disables the FFT path entirely; small values
/// (e.g. 2) force it on. Test and bench hook — not used by production
/// configs. Thread-safe (relaxed atomic); takes effect on the next call.
void set_fft_min_bins(std::size_t bins);

/// True when the (na, nb) convolution should take the FFT path.
bool fft_profitable(std::size_t na, std::size_t nb);

}  // namespace taskdrop
