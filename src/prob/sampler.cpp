#include "prob/sampler.hpp"

#include <algorithm>
#include <stdexcept>

namespace taskdrop {

CdfSampler::CdfSampler(const Pmf& pmf) {
  times_.reserve(pmf.size());
  cdf_.reserve(pmf.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < pmf.size(); ++i) {
    const double p = pmf.prob_at_index(i);
    if (p == 0.0) continue;  // float-eq-ok: exact-zero sparse skip
    acc += p;
    times_.push_back(pmf.time_at(i));
    cdf_.push_back(acc);
  }
}

void PmfCdf::rebuild(const Pmf& pmf) {
  offset_ = pmf.offset();
  stride_ = pmf.stride();
  prefix_.resize(pmf.size() + 1);
  prefix_[0] = 0.0;
  for (std::size_t i = 0; i < pmf.size(); ++i) {
    prefix_[i + 1] = prefix_[i] + pmf.prob_at_index(i);
  }
}

std::vector<double>& PmfCdf::rebuild_prefix(Tick offset, Tick stride,
                                            std::size_t bins) {
  if (stride < 1) {
    throw std::invalid_argument(
        "PmfCdf::rebuild_prefix: stride must be >= 1");
  }
  offset_ = offset;
  stride_ = stride;
  prefix_.resize(bins + 1);
  return prefix_;
}

Tick CdfSampler::sample(Rng& rng) const {
  if (!valid()) {
    throw std::logic_error("CdfSampler::sample: empty distribution");
  }
  const double u = rng.uniform01() * cdf_.back();
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  const auto i = static_cast<std::size_t>(
      std::min<std::ptrdiff_t>(it - cdf_.begin(),
                               static_cast<std::ptrdiff_t>(cdf_.size()) - 1));
  return times_[i];
}

}  // namespace taskdrop
