#include "prob/pmf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace taskdrop {

Pmf Pmf::delta(Tick t) { return Pmf(t, 1, {1.0}); }

Pmf Pmf::from_impulses(std::vector<std::pair<Tick, double>> impulses,
                       Tick stride) {
  if (stride < 1) {
    throw std::invalid_argument("Pmf::from_impulses: stride must be >= 1");
  }
  if (impulses.empty()) return Pmf();
  std::sort(impulses.begin(), impulses.end());
  const Tick lo = impulses.front().first;
  const Tick hi = impulses.back().first;
  if ((hi - lo) % stride != 0) {
    throw std::invalid_argument(
        "Pmf::from_impulses: impulses must lie on a common lattice");
  }
  Pmf out(lo, stride,
          std::vector<double>(static_cast<std::size_t>((hi - lo) / stride + 1),
                              0.0));
  for (const auto& [t, p] : impulses) {
    if (p < 0.0) {
      throw std::invalid_argument(
          "Pmf::from_impulses: impulse mass must be >= 0");
    }
    if ((t - lo) % stride != 0) {
      throw std::invalid_argument("Pmf::from_impulses: impulse off lattice");
    }
    out.probs_[static_cast<std::size_t>((t - lo) / stride)] += p;
  }
  return out;
}

Pmf::Pmf(Tick offset, Tick stride, std::vector<double> probs)
    : offset_(offset), stride_(stride), probs_(std::move(probs)) {
  if (stride_ < 1) {
    throw std::invalid_argument("Pmf: stride must be >= 1");
  }
}

void Pmf::assign(Tick offset, Tick stride, const double* first,
                 const double* last) {
  if (stride < 1) {
    throw std::invalid_argument("Pmf::assign: stride must be >= 1");
  }
  if (first > last) {
    throw std::invalid_argument("Pmf::assign: invalid impulse range");
  }
  probs_.assign(first, last);
  if (probs_.empty()) {
    offset_ = 0;
    stride_ = 1;
  } else {
    offset_ = offset;
    stride_ = stride;
  }
}

void Pmf::slice(std::size_t first, std::size_t last) {
  if (first > last || last > probs_.size()) {
    throw std::invalid_argument("Pmf::slice: invalid bin range");
  }
  if (first == last) {
    probs_.clear();
    offset_ = 0;
    stride_ = 1;
    return;
  }
  if (first > 0) {
    std::move(probs_.begin() + static_cast<std::ptrdiff_t>(first),
              probs_.begin() + static_cast<std::ptrdiff_t>(last),
              probs_.begin());
    offset_ += static_cast<Tick>(first) * stride_;
  }
  probs_.resize(last - first);
}

double Pmf::prob_at(Tick t) const {
  if (empty() || t < offset_ || (t - offset_) % stride_ != 0) return 0.0;
  const auto i = static_cast<std::size_t>((t - offset_) / stride_);
  return i < probs_.size() ? probs_[i] : 0.0;
}

double Pmf::total_mass() const {
  double sum = 0.0;
  for (double p : probs_) sum += p;
  return sum;
}

double Pmf::mass_before(Tick t) const {
  if (empty() || t <= offset_) return 0.0;
  // Number of lattice points strictly below t.
  const Tick span = t - offset_;
  auto count = static_cast<std::size_t>((span + stride_ - 1) / stride_);
  count = std::min(count, probs_.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < count; ++i) sum += probs_[i];
  return sum;
}

double Pmf::mass_at_or_after(Tick t) const { return total_mass() - mass_before(t); }

double Pmf::mean() const {
  double sum = 0.0;
  for (std::size_t i = 0; i < probs_.size(); ++i) {
    sum += static_cast<double>(time_at(i)) * probs_[i];
  }
  return sum;
}

double Pmf::variance() const {
  const double mu = mean();
  double sum = 0.0;
  for (std::size_t i = 0; i < probs_.size(); ++i) {
    const double d = static_cast<double>(time_at(i)) - mu;
    sum += d * d * probs_[i];
  }
  return sum;
}

void Pmf::scale(double factor) {
  for (double& p : probs_) p *= factor;
}

void Pmf::normalize() {
  const double mass = total_mass();
  if (mass <= 0.0) return;
  scale(1.0 / mass);
}

void Pmf::trim(double eps) {
  std::size_t lo = 0;
  std::size_t hi = probs_.size();
  while (lo < hi && probs_[lo] <= eps) ++lo;
  while (hi > lo && probs_[hi - 1] <= eps) --hi;
  if (lo == 0 && hi == probs_.size()) return;
  offset_ += static_cast<Tick>(lo) * stride_;
  probs_ = std::vector<double>(probs_.begin() + static_cast<std::ptrdiff_t>(lo),
                               probs_.begin() + static_cast<std::ptrdiff_t>(hi));
  if (probs_.empty()) {
    offset_ = 0;
    stride_ = 1;
  }
}

void Pmf::lump_tail(Tick horizon) {
  if (empty() || max_time() < horizon) return;
  // First lattice index at or above the horizon.
  Tick span = horizon - offset_;
  if (span < 0) span = 0;
  const auto first = static_cast<std::size_t>((span + stride_ - 1) / stride_);
  if (first >= probs_.size()) return;
  double tail = 0.0;
  for (std::size_t i = first; i < probs_.size(); ++i) tail += probs_[i];
  probs_.resize(first + 1);
  probs_[first] = tail;
}

void Pmf::add_impulse(Tick t, double p) {
  if (p < 0.0) {
    throw std::invalid_argument("Pmf::add_impulse: mass must be >= 0");
  }
  if (empty()) {
    offset_ = t;
    probs_ = {p};
    return;
  }
  if ((t - offset_) % stride_ != 0) {
    throw std::invalid_argument("Pmf::add_impulse: impulse off lattice");
  }
  if (t < offset_) {
    const auto grow = static_cast<std::size_t>((offset_ - t) / stride_);
    probs_.insert(probs_.begin(), grow, 0.0);
    offset_ = t;
  }
  const auto i = static_cast<std::size_t>((t - offset_) / stride_);
  if (i >= probs_.size()) probs_.resize(i + 1, 0.0);
  probs_[i] += p;
}

Pmf Pmf::scale_time(double factor) const {
  if (!(factor > 0.0)) {
    throw std::invalid_argument("Pmf::scale_time: factor must be > 0");
  }
  if (empty()) return Pmf();
  std::vector<std::pair<Tick, double>> impulses;
  impulses.reserve(size());
  for (std::size_t i = 0; i < probs_.size(); ++i) {
    if (probs_[i] == 0.0) continue;  // float-eq-ok: exact-zero sparse skip
    const double scaled = factor * static_cast<double>(time_at(i));
    Tick bin = static_cast<Tick>(
                   std::llround(scaled / static_cast<double>(stride_))) *
               stride_;
    if (bin < stride_) bin = stride_;
    impulses.emplace_back(bin, probs_[i]);
  }
  return Pmf::from_impulses(std::move(impulses), stride_);
}

Tick Pmf::quantile(double p) const {
  if (empty()) {
    throw std::logic_error("Pmf::quantile: empty distribution");
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < probs_.size(); ++i) {
    acc += probs_[i];
    if (acc >= p) return time_at(i);
  }
  return max_time();
}

Tick Pmf::sample(Rng& rng) const {
  if (empty()) {
    throw std::logic_error("Pmf::sample: empty distribution");
  }
  const double u = rng.uniform01() * total_mass();
  double acc = 0.0;
  for (std::size_t i = 0; i < probs_.size(); ++i) {
    acc += probs_[i];
    if (u < acc) return time_at(i);
  }
  return max_time();
}

}  // namespace taskdrop
