#pragma once

#include "sched/ordered_mapper.hpp"

namespace taskdrop {

/// Earliest Deadline First: tasks with the soonest deadline are mapped
/// first. In an oversubscribed system this prioritises exactly the tasks
/// least likely to succeed (section V-E's explanation of why EDF and MSD
/// underperform without dropping).
class EdfMapper final : public OrderedMapper {
 public:
  using OrderedMapper::OrderedMapper;
  std::string_view name() const override { return "EDF"; }

 protected:
  double priority_key(const SystemView& /*view*/,
                      const Task& task) const override {
    return static_cast<double>(task.deadline);
  }
};

}  // namespace taskdrop
