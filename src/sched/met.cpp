#include "sched/met.hpp"

namespace taskdrop {

void MetMapper::map_tasks(SystemView& view, SchedulerOps& ops) {
  for (;;) {
    const auto free_machines = mapper_detail::machines_with_free_slot(view);
    if (free_machines.empty() || view.batch_queue->empty()) return;
    if (window_ < 1) return;
    // MET only ever maps the head of the candidate window.
    const TaskId task_id = view.batch_queue->front();
    const Task& task = view.task(task_id);
    MachineId best_machine = -1;
    double best_exec = 0.0;
    for (MachineId m : free_machines) {
      const MachineTypeId type =
          (*view.machines)[static_cast<std::size_t>(m)].type;
      const double exec = view.pet->mean_execution(task.type, type);
      if (best_machine < 0 || exec < best_exec) {
        best_machine = m;
        best_exec = exec;
      }
    }
    ops.assign_task(task_id, best_machine);
  }
}

}  // namespace taskdrop
