#pragma once

#include "sched/ordered_mapper.hpp"

namespace taskdrop {

/// First-Come First-Serve: tasks are mapped in arrival order.
class FcfsMapper final : public OrderedMapper {
 public:
  using OrderedMapper::OrderedMapper;
  std::string_view name() const override { return "FCFS"; }

 protected:
  double priority_key(const SystemView& /*view*/,
                      const Task& task) const override {
    return static_cast<double>(task.arrival);
  }
};

}  // namespace taskdrop
