#include "sched/registry.hpp"

#include <stdexcept>

#include "util/spec_parser.hpp"

#include "core/approx_dropper.hpp"
#include "core/null_dropper.hpp"
#include "core/optimal_dropper.hpp"
#include "core/proactive_heuristic_dropper.hpp"
#include "core/threshold_dropper.hpp"
#include "sched/edf.hpp"
#include "sched/fcfs.hpp"
#include "sched/max_min.hpp"
#include "sched/met.hpp"
#include "sched/min_min.hpp"
#include "sched/msd.hpp"
#include "sched/pam.hpp"
#include "sched/round_robin.hpp"
#include "sched/sjf.hpp"

namespace taskdrop {
namespace {

/// from_spec inputs come from files and CLI flags; the util/spec_parser
/// whole-string parses make "2x" and overflow loud errors.
std::string param_context(const std::string& key) {
  return "dropper parameter " + key;
}

}  // namespace

std::unique_ptr<Mapper> make_mapper(const std::string& name,
                                    int candidate_window) {
  if (name == "MM" || name == "MinMin") {
    return std::make_unique<MinMinMapper>(candidate_window);
  }
  if (name == "MSD") return std::make_unique<MsdMapper>(candidate_window);
  if (name == "PAM") return std::make_unique<PamMapper>(candidate_window);
  if (name == "PAMD") {
    // Deferring PAM: threshold 0.3, Gentry et al.'s default regime.
    return std::make_unique<PamMapper>(candidate_window, 0.3);
  }
  if (name == "MaxMin") return std::make_unique<MaxMinMapper>(candidate_window);
  if (name == "MET") return std::make_unique<MetMapper>(candidate_window);
  if (name == "RR") return std::make_unique<RoundRobinMapper>(candidate_window);
  if (name == "FCFS") return std::make_unique<FcfsMapper>(candidate_window);
  if (name == "SJF") return std::make_unique<SjfMapper>(candidate_window);
  if (name == "EDF") return std::make_unique<EdfMapper>(candidate_window);
  throw std::invalid_argument("unknown mapper: " + name + " (available: " +
                              join_spec_list(mapper_names()) + ")");
}

std::vector<std::string> mapper_names() {
  return {"MSD", "MM", "PAM", "FCFS", "EDF", "SJF", "MaxMin", "MET", "RR",
          "PAMD"};
}

DropperConfig DropperConfig::from_spec(
    const std::string& name, const std::map<std::string, std::string>& params) {
  DropperConfig config;
  if (name == "reactive") {
    config = reactive_only();
  } else if (name == "heuristic") {
    config = heuristic();
  } else if (name == "optimal") {
    config = optimal();
  } else if (name == "threshold") {
    config = threshold();
  } else if (name == "approx") {
    config = approximate();
  } else {
    throw std::invalid_argument("unknown dropper: " + name +
                                " (available: " +
                                join_spec_list(dropper_names()) + ")");
  }
  const bool tunable_depth =
      config.kind == Kind::Heuristic || config.kind == Kind::Approx;
  for (const auto& [key, value] : params) {
    if (key == "eta") {
      if (tunable_depth) {
        config.effective_depth = parse_spec_int(param_context(key), value);
        if (config.effective_depth < 1) {
          throw std::invalid_argument("dropper parameter eta must be >= 1, "
                                      "got " + value);
        }
      }
    } else if (key == "beta") {
      if (tunable_depth) {
        config.beta = parse_spec_double(param_context(key), value);
        if (config.beta < 1.0) {
          throw std::invalid_argument("dropper parameter beta must be >= 1, "
                                      "got " + value);
        }
      }
    } else if (key == "threshold") {
      if (config.kind == Kind::Threshold) {
        config.base_threshold = parse_spec_double(param_context(key), value);
      }
    } else if (key == "adaptive") {
      if (config.kind == Kind::Threshold) {
        config.adaptive_threshold = parse_spec_bool(param_context(key), value);
      }
    } else {
      throw std::invalid_argument(
          "unknown dropper parameter: " + key +
          " (available: eta, beta, threshold, adaptive)");
    }
  }
  return config;
}

std::string DropperConfig::name() const {
  switch (kind) {
    case Kind::ReactiveOnly: return "reactive";
    case Kind::Heuristic: return "heuristic";
    case Kind::Optimal: return "optimal";
    case Kind::Threshold: return "threshold";
    case Kind::Approx: return "approx";
  }
  return "?";
}

std::vector<std::string> dropper_names() {
  return {"reactive", "heuristic", "optimal", "threshold", "approx"};
}

std::unique_ptr<Dropper> make_dropper(const DropperConfig& config) {
  switch (config.kind) {
    case DropperConfig::Kind::ReactiveOnly:
      return std::make_unique<NullDropper>();
    case DropperConfig::Kind::Heuristic:
      return std::make_unique<ProactiveHeuristicDropper>(
          ProactiveHeuristicDropper::Params{config.effective_depth,
                                            config.beta});
    case DropperConfig::Kind::Optimal:
      return std::make_unique<OptimalDropper>();
    case DropperConfig::Kind::Threshold:
      return std::make_unique<ThresholdDropper>(ThresholdDropper::Params{
          config.base_threshold, config.adaptive_threshold});
    case DropperConfig::Kind::Approx:
      return std::make_unique<ApproxDropper>(
          ApproxDropper::Params{config.effective_depth, config.beta});
  }
  throw std::invalid_argument("unknown dropper kind");
}

}  // namespace taskdrop
