#include "sched/registry.hpp"

#include <stdexcept>

#include "core/approx_dropper.hpp"
#include "core/null_dropper.hpp"
#include "core/optimal_dropper.hpp"
#include "core/proactive_heuristic_dropper.hpp"
#include "core/threshold_dropper.hpp"
#include "sched/edf.hpp"
#include "sched/fcfs.hpp"
#include "sched/max_min.hpp"
#include "sched/met.hpp"
#include "sched/min_min.hpp"
#include "sched/msd.hpp"
#include "sched/pam.hpp"
#include "sched/round_robin.hpp"
#include "sched/sjf.hpp"

namespace taskdrop {

std::unique_ptr<Mapper> make_mapper(const std::string& name,
                                    int candidate_window) {
  if (name == "MM" || name == "MinMin") {
    return std::make_unique<MinMinMapper>(candidate_window);
  }
  if (name == "MSD") return std::make_unique<MsdMapper>(candidate_window);
  if (name == "PAM") return std::make_unique<PamMapper>(candidate_window);
  if (name == "PAMD") {
    // Deferring PAM: threshold 0.3, Gentry et al.'s default regime.
    return std::make_unique<PamMapper>(candidate_window, 0.3);
  }
  if (name == "MaxMin") return std::make_unique<MaxMinMapper>(candidate_window);
  if (name == "MET") return std::make_unique<MetMapper>(candidate_window);
  if (name == "RR") return std::make_unique<RoundRobinMapper>(candidate_window);
  if (name == "FCFS") return std::make_unique<FcfsMapper>(candidate_window);
  if (name == "SJF") return std::make_unique<SjfMapper>(candidate_window);
  if (name == "EDF") return std::make_unique<EdfMapper>(candidate_window);
  throw std::invalid_argument("unknown mapper: " + name);
}

std::vector<std::string> mapper_names() {
  return {"MSD", "MM", "PAM", "FCFS", "EDF", "SJF", "MaxMin", "MET", "RR",
          "PAMD"};
}

std::unique_ptr<Dropper> make_dropper(const DropperConfig& config) {
  switch (config.kind) {
    case DropperConfig::Kind::ReactiveOnly:
      return std::make_unique<NullDropper>();
    case DropperConfig::Kind::Heuristic:
      return std::make_unique<ProactiveHeuristicDropper>(
          ProactiveHeuristicDropper::Params{config.effective_depth,
                                            config.beta});
    case DropperConfig::Kind::Optimal:
      return std::make_unique<OptimalDropper>();
    case DropperConfig::Kind::Threshold:
      return std::make_unique<ThresholdDropper>(ThresholdDropper::Params{
          config.base_threshold, config.adaptive_threshold});
    case DropperConfig::Kind::Approx:
      return std::make_unique<ApproxDropper>(
          ApproxDropper::Params{config.effective_depth, config.beta});
  }
  throw std::invalid_argument("unknown dropper kind");
}

}  // namespace taskdrop
