#include "sched/round_robin.hpp"

namespace taskdrop {

void RoundRobinMapper::map_tasks(SystemView& view, SchedulerOps& ops) {
  const std::size_t machine_count = view.machines->size();
  for (;;) {
    if (view.batch_queue->empty() || window_ < 1) return;

    // Next machine in cyclic order with a free slot.
    MachineId target = -1;
    for (std::size_t probe = 0; probe < machine_count; ++probe) {
      const std::size_t index = (next_machine_ + probe) % machine_count;
      if ((*view.machines)[index].up &&
          (*view.machines)[index].has_free_slot()) {
        target = static_cast<MachineId>(index);
        next_machine_ = index + 1;
        break;
      }
    }
    if (target < 0) return;
    ops.assign_task(view.batch_queue->front(), target);
  }
}

}  // namespace taskdrop
