#include "sched/round_robin.hpp"

#include <stdexcept>
#include <string>

namespace taskdrop {

std::string RoundRobinMapper::snapshot_state() const {
  return std::to_string(next_machine_);
}

void RoundRobinMapper::restore_state(const std::string& state) {
  std::size_t consumed = 0;
  unsigned long long value = 0;
  try {
    value = std::stoull(state, &consumed);
  } catch (const std::exception&) {
    consumed = 0;
  }
  if (consumed == 0 || consumed != state.size()) {
    throw std::invalid_argument("RR mapper state must be a non-negative "
                                "integer dealing position, got '" +
                                state + "'");
  }
  next_machine_ = static_cast<std::size_t>(value);
}

void RoundRobinMapper::map_tasks(SystemView& view, SchedulerOps& ops) {
  const std::size_t machine_count = view.machines->size();
  for (;;) {
    if (view.batch_queue->empty() || window_ < 1) return;

    // Next machine in cyclic order with a free slot.
    MachineId target = -1;
    for (std::size_t probe = 0; probe < machine_count; ++probe) {
      const std::size_t index = (next_machine_ + probe) % machine_count;
      if ((*view.machines)[index].up &&
          (*view.machines)[index].has_free_slot()) {
        target = static_cast<MachineId>(index);
        next_machine_ = index + 1;
        break;
      }
    }
    if (target < 0) return;
    ops.assign_task(view.batch_queue->front(), target);
  }
}

}  // namespace taskdrop
