#include "sched/max_min.hpp"

namespace taskdrop {

void MaxMinMapper::map_tasks(SystemView& view, SchedulerOps& ops) {
  using mapper_detail::CandidatePair;
  for (;;) {
    mapper_detail::machines_with_free_slot(view, free_machines_);
    const auto& free_machines = free_machines_;
    if (free_machines.empty() || view.batch_queue->empty()) return;
    const auto pairs =
        mapper_detail::min_completion_pairs(view, free_machines, window_);
    if (pairs.empty()) return;

    bool assigned_any = false;
    for (MachineId m : free_machines) {
      const CandidatePair* best = nullptr;
      for (const CandidatePair& pair : pairs) {
        if (pair.machine != m) continue;
        if (best == nullptr ||
            pair.expected_completion > best->expected_completion) {
          best = &pair;
        }
      }
      if (best != nullptr) {
        ops.assign_task(best->task, m);
        assigned_any = true;
      }
    }
    if (!assigned_any) return;
  }
}

}  // namespace taskdrop
