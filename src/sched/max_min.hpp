#pragma once

#include "sched/mapper.hpp"

namespace taskdrop {

/// MaxMin — the classic counterpart of MinMin in the HC-scheduling
/// literature (Ibarra & Kim's family, [23]): phase 1 pairs each unmapped
/// task with its minimum-expected-completion machine, phase 2 assigns, per
/// machine, the pair with the *largest* expected completion time. The
/// intuition is to schedule long tasks early so they do not linger behind
/// short ones. Not part of the paper's evaluation; included as an extra
/// baseline for the mapper-sweep benches.
class MaxMinMapper final : public Mapper {
 public:
  explicit MaxMinMapper(int candidate_window = 256)
      : window_(candidate_window) {}

  std::string_view name() const override { return "MaxMin"; }
  void map_tasks(SystemView& view, SchedulerOps& ops) override;

 private:
  int window_;
  /// Free-machine scratch reused across the rounds of a mapping event.
  std::vector<MachineId> free_machines_;
};

}  // namespace taskdrop
