#include "sched/pam.hpp"

namespace taskdrop {

void PamMapper::map_tasks(SystemView& view, SchedulerOps& ops) {
  for (;;) {
    mapper_detail::machines_with_free_slot(view, free_machines_);
    const auto& free_machines = free_machines_;
    if (free_machines.empty() || view.batch_queue->empty()) return;

    TaskId best_task = -1;
    MachineId best_machine = -1;
    double best_completion = 0.0;
    double best_exec_mean = 0.0;

    for (TaskId id : mapper_detail::candidate_window(view, window_)) {
      const Task& task = view.task(id);
      // Phase 1: machine with the highest chance of success for this task.
      // chance_if_appended resolves through the revision-keyed appended-
      // distribution cache, so rescanning the window after each assignment
      // only re-folds the tail of the machine that actually changed.
      MachineId chance_machine = -1;
      double chance_best = -1.0;
      for (MachineId m : free_machines) {
        CompletionModel& model = (*view.models)[static_cast<std::size_t>(m)];
        const double chance = model.chance_if_appended(task.type, task.deadline);
        if (chance > chance_best) {
          chance_best = chance;
          chance_machine = m;
        }
      }
      if (chance_machine < 0) continue;
      // Deferring variant (PAMD): tasks unlikely to succeed anywhere stay
      // in the batch queue this round rather than wasting a machine slot.
      if (defer_threshold_ > 0.0 && chance_best < defer_threshold_) continue;

      // Phase 2 key: lowest expected completion, ties by shortest expected
      // execution time.
      const double completion =
          mapper_detail::expected_completion_mean(view, chance_machine, task);
      const double exec_mean = view.pet->mean_execution(
          task.type,
          (*view.machines)[static_cast<std::size_t>(chance_machine)].type);
      if (best_task < 0 || completion < best_completion ||
          (completion == best_completion && exec_mean < best_exec_mean)) {
        best_task = id;
        best_machine = chance_machine;
        best_completion = completion;
        best_exec_mean = exec_mean;
      }
    }
    if (best_task < 0) return;
    ops.assign_task(best_task, best_machine);
  }
}

}  // namespace taskdrop
