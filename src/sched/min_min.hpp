#pragma once

#include "sched/mapper.hpp"

namespace taskdrop {

/// MinCompletion-MinCompletion (MinMin / MM) — section V-B1.
///
/// Phase 1: for each unmapped task, find the free machine offering the
/// minimum expected completion time. Phase 2: for each machine with an
/// available slot, assign the provisionally mapped pair with the minimum
/// expected completion time. Rounds repeat until machine queues are full or
/// the batch queue is depleted.
class MinMinMapper final : public Mapper {
 public:
  explicit MinMinMapper(int candidate_window = 256)
      : window_(candidate_window) {}

  std::string_view name() const override { return "MM"; }
  void map_tasks(SystemView& view, SchedulerOps& ops) override;

 private:
  int window_;
  /// Free-machine scratch reused across the rounds of a mapping event.
  std::vector<MachineId> free_machines_;
};

}  // namespace taskdrop
