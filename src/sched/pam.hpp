#pragma once

#include "sched/mapper.hpp"

namespace taskdrop {

/// Pruning-Aware Mapping (PAM) — section V-B3, from Gentry et al. [2].
///
/// Phase 1: for each unmapped task, find the free machine providing the
/// *highest chance of success* (Eq. 2 applied to the provisional queue
/// tail). Phase 2: among those pairs, map the single pair with the lowest
/// expected completion time; ties broken by the shortest expected execution
/// time. Rounds repeat until queues are full or the batch is depleted.
///
/// The original PAM also drops and defers with a predetermined threshold;
/// per section V-B3 deferring is disabled by default here (dropping is
/// supplied by whichever Dropper the experiment composes with the mapper).
/// Construct with `defer_threshold > 0` to restore Gentry et al.'s
/// deferring: a task whose best chance of success falls below the threshold
/// stays in the batch queue this round, waiting for a better slot — the
/// "PAMD" registry entry, ablated in bench/ablation_deferral.
class PamMapper final : public Mapper {
 public:
  explicit PamMapper(int candidate_window = 256, double defer_threshold = 0.0)
      : window_(candidate_window), defer_threshold_(defer_threshold) {}

  std::string_view name() const override {
    return defer_threshold_ > 0.0 ? "PAMD" : "PAM";
  }
  void map_tasks(SystemView& view, SchedulerOps& ops) override;

 private:
  int window_;
  double defer_threshold_;
  /// Free-machine scratch reused across the rounds of a mapping event.
  std::vector<MachineId> free_machines_;
};

}  // namespace taskdrop
