#pragma once

#include "sched/ordered_mapper.hpp"

namespace taskdrop {

/// Shortest Job First: tasks with the smallest mean execution time (averaged
/// over machine types — on a homogeneous system this is just the task
/// type's mean) are mapped first. Section V-E notes SJF's strength in
/// oversubscription: always running the shortest tasks maximises the count
/// of completed tasks.
class SjfMapper final : public OrderedMapper {
 public:
  using OrderedMapper::OrderedMapper;
  std::string_view name() const override { return "SJF"; }

 protected:
  double priority_key(const SystemView& view, const Task& task) const override {
    return view.pet->mean_over_machines(task.type);
  }
};

}  // namespace taskdrop
