#include "sched/ordered_mapper.hpp"

namespace taskdrop {

void OrderedMapper::map_tasks(SystemView& view, SchedulerOps& ops) {
  for (;;) {
    mapper_detail::machines_with_free_slot(view, free_machines_);
    const auto& free_machines = free_machines_;
    if (free_machines.empty() || view.batch_queue->empty()) return;

    // Highest-priority candidate (batch order breaks ties, so equal keys
    // resolve to first-come first-serve).
    TaskId best_task = -1;
    double best_key = 0.0;
    for (TaskId id : mapper_detail::candidate_window(view, window_)) {
      const double key = priority_key(view, view.task(id));
      if (best_task < 0 || key < best_key) {
        best_task = id;
        best_key = key;
      }
    }
    if (best_task < 0) return;

    // Least-loaded free machine by expected queue-tail completion.
    MachineId best_machine = -1;
    double best_completion = 0.0;
    for (MachineId m : free_machines) {
      const double ect = mapper_detail::expected_completion_mean(
          view, m, view.task(best_task));
      if (best_machine < 0 || ect < best_completion) {
        best_machine = m;
        best_completion = ect;
      }
    }
    ops.assign_task(best_task, best_machine);
  }
}

}  // namespace taskdrop
