#pragma once

#include "sched/mapper.hpp"

namespace taskdrop {

/// Shared machinery for the single-phase, priority-ordered mapping
/// heuristics popular in homogeneous systems (FCFS, SJF, EDF — section
/// V-B). Each round picks the highest-priority unmapped task according to
/// `priority_key` (lower = map first) and assigns it to the free machine
/// whose queue-tail expected completion is smallest (the least-loaded
/// machine; on a homogeneous cluster this is the natural choice and on a
/// heterogeneous one it degrades gracefully).
class OrderedMapper : public Mapper {
 public:
  explicit OrderedMapper(int candidate_window = 256)
      : window_(candidate_window) {}

  void map_tasks(SystemView& view, SchedulerOps& ops) final;

 protected:
  /// Lower key = mapped earlier. Ties resolve to arrival order (stable).
  virtual double priority_key(const SystemView& view,
                              const Task& task) const = 0;

 private:
  int window_;
  /// Free-machine scratch reused across the rounds of a mapping event.
  std::vector<MachineId> free_machines_;
};

}  // namespace taskdrop
