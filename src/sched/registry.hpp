#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/dropper.hpp"
#include "sched/mapper.hpp"

namespace taskdrop {

/// Named construction of mapping heuristics. The paper's six: "MM"
/// (alias "MinMin"), "MSD", "PAM", "FCFS", "SJF", "EDF". Extras provided by
/// this repo: "PAMD" (PAM with batch-queue deferring re-enabled), "MaxMin",
/// "MET", "RR". Case-sensitive; throws std::invalid_argument for unknown
/// names.
std::unique_ptr<Mapper> make_mapper(const std::string& name,
                                    int candidate_window = 256);

/// All registered mapper names, in the order the paper's figures use them.
std::vector<std::string> mapper_names();

/// Declarative dropping-mechanism configuration used by the experiment
/// harness and the registry.
struct DropperConfig {
  enum class Kind {
    ReactiveOnly,  ///< NullDropper: reactive deadline drops only
    Heuristic,     ///< ProactiveHeuristicDropper (the paper's contribution)
    Optimal,       ///< OptimalDropper (exhaustive subset search)
    Threshold,     ///< ThresholdDropper (PAM+Threshold baseline)
    Approx,        ///< ApproxDropper (drop-or-downgrade; section VI
                   ///< future-work extension — requires the engine's
                   ///< approximate-computing model to be enabled)
  };

  Kind kind = Kind::Heuristic;
  int effective_depth = 2;      ///< eta   (Heuristic, Approx)
  double beta = 1.0;            ///< beta  (Heuristic, Approx)
  double base_threshold = 0.5;  ///< Threshold
  bool adaptive_threshold = true;

  static DropperConfig reactive_only() {
    return DropperConfig{Kind::ReactiveOnly, 2, 1.0, 0.5, true};
  }
  static DropperConfig heuristic(int eta = 2, double beta = 1.0) {
    return DropperConfig{Kind::Heuristic, eta, beta, 0.5, true};
  }
  static DropperConfig optimal() {
    return DropperConfig{Kind::Optimal, 2, 1.0, 0.5, true};
  }
  static DropperConfig threshold(double base = 0.5, bool adaptive = true) {
    return DropperConfig{Kind::Threshold, 2, 1.0, base, adaptive};
  }
  static DropperConfig approximate(int eta = 2, double beta = 1.0) {
    return DropperConfig{Kind::Approx, eta, beta, 0.5, true};
  }

  /// Text-driven construction: `name` is one of dropper_names() and
  /// `params` tunes it ("eta", "beta", "threshold", "adaptive"). Parameters
  /// that do not apply to the named kind are ignored so a sweep can hand
  /// every dropper the same grid point; unknown parameter keys and
  /// malformed values throw std::invalid_argument, as do unknown names
  /// (listing the available set).
  static DropperConfig from_spec(
      const std::string& name,
      const std::map<std::string, std::string>& params = {});

  /// The registry name this config round-trips through ("heuristic", ...).
  std::string name() const;
};

/// All registered dropper names, in the order the paper introduces them.
std::vector<std::string> dropper_names();

std::unique_ptr<Dropper> make_dropper(const DropperConfig& config);

}  // namespace taskdrop
