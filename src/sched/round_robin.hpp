#pragma once

#include "sched/mapper.hpp"

namespace taskdrop {

/// Round-robin: tasks are taken in arrival order and dealt to machines in
/// cyclic order, skipping full queues. The weakest sensible baseline — it
/// uses neither execution times nor deadlines — and therefore the cleanest
/// probe of how much a dropping mechanism can compensate for a mapper with
/// no information at all.
class RoundRobinMapper final : public Mapper {
 public:
  explicit RoundRobinMapper(int candidate_window = 256)
      : window_(candidate_window) {}

  std::string_view name() const override { return "RR"; }
  void map_tasks(SystemView& view, SchedulerOps& ops) override;

  /// The cyclic dealing position is genuine cross-event state: two RR
  /// mappers with different positions deal the next task differently, so
  /// it must survive a snapshot/restore round trip.
  std::string snapshot_state() const override;
  void restore_state(const std::string& state) override;

 private:
  int window_;
  std::size_t next_machine_ = 0;
};

}  // namespace taskdrop
