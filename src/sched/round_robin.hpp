#pragma once

#include "sched/mapper.hpp"

namespace taskdrop {

/// Round-robin: tasks are taken in arrival order and dealt to machines in
/// cyclic order, skipping full queues. The weakest sensible baseline — it
/// uses neither execution times nor deadlines — and therefore the cleanest
/// probe of how much a dropping mechanism can compensate for a mapper with
/// no information at all.
class RoundRobinMapper final : public Mapper {
 public:
  explicit RoundRobinMapper(int candidate_window = 256)
      : window_(candidate_window) {}

  std::string_view name() const override { return "RR"; }
  void map_tasks(SystemView& view, SchedulerOps& ops) override;

 private:
  int window_;
  std::size_t next_machine_ = 0;
};

}  // namespace taskdrop
