#include "sched/mapper.hpp"

#include <algorithm>

namespace taskdrop {
namespace mapper_detail {

std::vector<MachineId> machines_with_free_slot(const SystemView& view) {
  std::vector<MachineId> free;
  machines_with_free_slot(view, free);
  return free;
}

void machines_with_free_slot(const SystemView& view,
                             std::vector<MachineId>& out) {
  out.clear();
  for (const Machine& machine : *view.machines) {
    // Down machines (failure-injection extension) accept no assignments.
    if (machine.up && machine.has_free_slot()) out.push_back(machine.id);
  }
}

double expected_completion_mean(SystemView& view, MachineId machine,
                                const Task& task) {
  const Machine& m = (*view.machines)[static_cast<std::size_t>(machine)];
  CompletionModel& model = (*view.models)[static_cast<std::size_t>(machine)];
  // tail_mean is memoised per machine revision, so a best-pair scan over a
  // deep candidate window costs one tail-PMF walk per *machine*, not one
  // per (task, machine) pair.
  return model.tail_mean() + view.pet->mean_execution(task.type, m.type);
}

std::vector<CandidatePair> min_completion_pairs(
    SystemView& view, const std::vector<MachineId>& free_machines,
    int window) {
  std::vector<CandidatePair> pairs;
  for (TaskId id : candidate_window(view, window)) {
    const Task& task = view.task(id);
    CandidatePair best;
    for (MachineId m : free_machines) {
      const double ect = expected_completion_mean(view, m, task);
      if (best.machine < 0 || ect < best.expected_completion) {
        best = CandidatePair{id, m, ect};
      }
    }
    if (best.machine >= 0) pairs.push_back(best);
  }
  return pairs;
}

}  // namespace mapper_detail
}  // namespace taskdrop
