#include "sched/mapper.hpp"

#include <algorithm>

namespace taskdrop {
namespace mapper_detail {

std::vector<MachineId> machines_with_free_slot(const SystemView& view) {
  std::vector<MachineId> free;
  for (const Machine& machine : *view.machines) {
    // Down machines (failure-injection extension) accept no assignments.
    if (machine.up && machine.has_free_slot()) free.push_back(machine.id);
  }
  return free;
}

double expected_completion_mean(SystemView& view, MachineId machine,
                                const Task& task) {
  const Machine& m = (*view.machines)[static_cast<std::size_t>(machine)];
  CompletionModel& model = (*view.models)[static_cast<std::size_t>(machine)];
  return model.tail_mean() + view.pet->mean_execution(task.type, m.type);
}

std::vector<TaskId> candidate_tasks(const SystemView& view, int window) {
  const auto& batch = *view.batch_queue;
  const auto count = std::min<std::size_t>(batch.size(),
                                           static_cast<std::size_t>(window));
  return {batch.begin(), batch.begin() + static_cast<std::ptrdiff_t>(count)};
}

std::vector<CandidatePair> min_completion_pairs(
    SystemView& view, const std::vector<MachineId>& free_machines,
    int window) {
  std::vector<CandidatePair> pairs;
  for (TaskId id : candidate_tasks(view, window)) {
    const Task& task = view.task(id);
    CandidatePair best;
    for (MachineId m : free_machines) {
      const double ect = expected_completion_mean(view, m, task);
      if (best.machine < 0 || ect < best.expected_completion) {
        best = CandidatePair{id, m, ect};
      }
    }
    if (best.machine >= 0) pairs.push_back(best);
  }
  return pairs;
}

}  // namespace mapper_detail
}  // namespace taskdrop
