#pragma once

#include "sched/mapper.hpp"

namespace taskdrop {

/// Minimum Execution Time (MET): each task goes to the free machine with
/// the smallest *execution* time for its task type, ignoring queue backlog
/// entirely. A classic lightweight HC heuristic that performs well when
/// load is balanced and degenerates when one machine dominates — a useful
/// stress case for the dropping mechanism. Tasks are taken in batch order.
class MetMapper final : public Mapper {
 public:
  explicit MetMapper(int candidate_window = 256)
      : window_(candidate_window) {}

  std::string_view name() const override { return "MET"; }
  void map_tasks(SystemView& view, SchedulerOps& ops) override;

 private:
  int window_;
};

}  // namespace taskdrop
