#pragma once

#include "sched/mapper.hpp"

namespace taskdrop {

/// MinCompletion-Soonest Deadline (MSD) — section V-B2.
///
/// Phase 1 is MinMin's: pair each unmapped task with the free machine of
/// minimum expected completion time. Phase 2 assigns, per machine with a
/// free slot, the pair with the *soonest deadline*; ties go to the pair
/// with the minimum expected completion time.
class MsdMapper final : public Mapper {
 public:
  explicit MsdMapper(int candidate_window = 256) : window_(candidate_window) {}

  std::string_view name() const override { return "MSD"; }
  void map_tasks(SystemView& view, SchedulerOps& ops) override;

 private:
  int window_;
  /// Free-machine scratch reused across the rounds of a mapping event.
  std::vector<MachineId> free_machines_;
};

}  // namespace taskdrop
