#pragma once

#include <string_view>
#include <vector>

#include "core/context.hpp"

namespace taskdrop {

/// A batch-mode mapping heuristic (Fig. 1's Mapper). Invoked at each
/// mapping event after the dropping mechanism; assigns unmapped tasks from
/// the batch queue to free machine-queue slots through `ops`.
class Mapper {
 public:
  virtual ~Mapper() = default;
  virtual std::string_view name() const = 0;
  virtual void map_tasks(SystemView& view, SchedulerOps& ops) = 0;
};

namespace mapper_detail {

/// Machines that currently have a free machine-queue slot.
std::vector<MachineId> machines_with_free_slot(const SystemView& view);

/// Expected completion time of `task` if appended to `machine`'s queue:
/// mean of the queue-tail completion PMF plus the mean execution time of
/// the task type on that machine type (means are additive under
/// convolution). This is the "expected completion time" both phases of
/// MinMin/MSD/PAM rank by.
double expected_completion_mean(SystemView& view, MachineId machine,
                                const Task& task);

/// The first `window` unmapped tasks considered by the heuristics. A cap
/// bounds per-event mapping cost under extreme oversubscription; with the
/// paper's parameters the batch rarely exceeds it (stale tasks are
/// reactively dropped as their deadlines pass).
std::vector<TaskId> candidate_tasks(const SystemView& view, int window);

/// One provisional task->machine pair from the first phase of a two-phase
/// heuristic.
struct CandidatePair {
  TaskId task = -1;
  MachineId machine = -1;
  double expected_completion = 0.0;
};

/// First phase shared by MinMin and MSD: for every candidate task, the free
/// machine offering the minimum expected completion time.
std::vector<CandidatePair> min_completion_pairs(
    SystemView& view, const std::vector<MachineId>& free_machines, int window);

}  // namespace mapper_detail
}  // namespace taskdrop
