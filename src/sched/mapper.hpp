#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/context.hpp"

namespace taskdrop {

/// A batch-mode mapping heuristic (Fig. 1's Mapper). Invoked at each
/// mapping event after the dropping mechanism; assigns unmapped tasks from
/// the batch queue to free machine-queue slots through `ops`.
class Mapper {
 public:
  virtual ~Mapper() = default;
  virtual std::string_view name() const = 0;
  virtual void map_tasks(SystemView& view, SchedulerOps& ops) = 0;

  /// Decision-relevant state the mapper carries across mapping events,
  /// rendered as one whitespace-free token for the online snapshot
  /// subsystem (online/snapshot.hpp). Most mappers are stateless between
  /// events (their scratch vectors and skip-memos are derived state) and
  /// return "" — only state that changes future decisions belongs here
  /// (e.g. RoundRobinMapper's cyclic dealing position).
  virtual std::string snapshot_state() const { return {}; }

  /// Restores a token produced by snapshot_state. The default accepts only
  /// the empty token: handing non-empty state to a stateless mapper means
  /// the snapshot was taken with a different mapper.
  virtual void restore_state(const std::string& state) {
    if (!state.empty()) {
      throw std::invalid_argument("mapper " + std::string(name()) +
                                  " carries no cross-event state, got '" +
                                  state + "'");
    }
  }
};

namespace mapper_detail {

/// Machines that currently have a free machine-queue slot.
std::vector<MachineId> machines_with_free_slot(const SystemView& view);

/// Allocation-free variant: refills `out` (mappers keep one scratch vector
/// across the many rounds of a mapping event).
void machines_with_free_slot(const SystemView& view,
                             std::vector<MachineId>& out);

/// Expected completion time of `task` if appended to `machine`'s queue:
/// mean of the queue-tail completion PMF plus the mean execution time of
/// the task type on that machine type (means are additive under
/// convolution). This is the "expected completion time" both phases of
/// MinMin/MSD/PAM rank by.
double expected_completion_mean(SystemView& view, MachineId machine,
                                const Task& task);

/// Allocation-free range over the first `window` unmapped tasks — the
/// candidate set every phase-1 scan walks, often several times per mapping
/// event. The cap bounds per-event mapping cost under extreme
/// oversubscription; with the paper's parameters the batch rarely exceeds
/// it (stale tasks are reactively dropped as their deadlines pass).
class CandidateWindow {
 public:
  class iterator {
   public:
    iterator(const BatchQueue* batch, TaskId at, int remaining)
        : batch_(batch), at_(at), remaining_(remaining) {}
    TaskId operator*() const { return at_; }
    iterator& operator++() {
      at_ = batch_->next(at_);
      --remaining_;
      return *this;
    }
    /// Exhausted the window cap or walked off the batch tail.
    bool done() const { return remaining_ <= 0 || at_ < 0; }
    bool operator!=(const iterator& other) const {
      if (done() || other.done()) return done() != other.done();
      return at_ != other.at_;
    }

   private:
    const BatchQueue* batch_;
    TaskId at_;
    int remaining_;
  };

  CandidateWindow(const BatchQueue& batch, int window)
      : batch_(&batch), window_(window) {}
  iterator begin() const { return {batch_, batch_->front(), window_}; }
  iterator end() const { return {batch_, -1, 0}; }

 private:
  const BatchQueue* batch_;
  int window_;
};

inline CandidateWindow candidate_window(const SystemView& view, int window) {
  return {*view.batch_queue, window};
}

/// One provisional task->machine pair from the first phase of a two-phase
/// heuristic.
struct CandidatePair {
  TaskId task = -1;
  MachineId machine = -1;
  double expected_completion = 0.0;
};

/// First phase shared by MinMin and MSD: for every candidate task, the free
/// machine offering the minimum expected completion time.
std::vector<CandidatePair> min_completion_pairs(
    SystemView& view, const std::vector<MachineId>& free_machines, int window);

}  // namespace mapper_detail
}  // namespace taskdrop
