#pragma once

#include <vector>

#include "pet/pet_matrix.hpp"
#include "prob/pmf.hpp"
#include "util/rng.hpp"
#include "util/time_types.hpp"

namespace taskdrop {

/// Options reproducing the PET estimation recipe of section V-A: "Gamma
/// distribution was used to generate the distributions ... We sampled 500
/// execution times for each application on each machine where the scale
/// parameter of each Gamma distribution was chosen uniformly from the range
/// [1, 20]. Once the sample execution times were generated, we applied a
/// histogram to discretize the result and produce PMFs."
struct PetBuildOptions {
  int samples_per_cell = 500;
  Tick bin_width = 5;
  double scale_min = 1.0;
  double scale_max = 20.0;
};

/// Samples a unimodal Gamma execution-time distribution with the given mean
/// and scale (shape = mean / scale) and discretizes it into a PMF.
Pmf gamma_execution_pmf(Rng& rng, double mean_ms, double scale, int samples,
                        Tick bin_width);

/// Builds a frozen PET matrix from a [task_type][machine_type] matrix of
/// mean execution times (ms). Each cell draws its own Gamma scale parameter
/// uniformly from [scale_min, scale_max], per the paper's recipe.
PetMatrix build_pet_from_means(const std::vector<std::vector<double>>& means,
                               Rng& rng, const PetBuildOptions& options = {});

/// Approximate-computing extension: a PET whose every cell is the source
/// cell time-scaled by `time_factor` (< 1 = the degraded-quality variant
/// runs faster). Used for both scheduling (completion models of approximate
/// tasks) and ground-truth sampling.
PetMatrix scaled_pet(const PetMatrix& source, double time_factor);

}  // namespace taskdrop
