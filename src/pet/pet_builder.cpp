#include "pet/pet_builder.hpp"

#include <cassert>

#include "prob/histogram.hpp"

namespace taskdrop {

Pmf gamma_execution_pmf(Rng& rng, double mean_ms, double scale, int samples,
                        Tick bin_width) {
  assert(mean_ms > 0.0 && scale > 0.0 && samples > 0);
  const double shape = mean_ms / scale;
  std::vector<double> draws;
  draws.reserve(static_cast<std::size_t>(samples));
  for (int i = 0; i < samples; ++i) {
    draws.push_back(rng.gamma(shape, scale));
  }
  return pmf_from_samples(draws, bin_width);
}

PetMatrix build_pet_from_means(const std::vector<std::vector<double>>& means,
                               Rng& rng, const PetBuildOptions& options) {
  assert(!means.empty() && !means.front().empty());
  const int task_types = static_cast<int>(means.size());
  const int machine_types = static_cast<int>(means.front().size());
  PetMatrix pet(task_types, machine_types);
  for (TaskTypeId t = 0; t < task_types; ++t) {
    assert(static_cast<int>(means[t].size()) == machine_types &&
           "mean matrix must be rectangular");
    for (MachineTypeId m = 0; m < machine_types; ++m) {
      const double scale = rng.uniform(options.scale_min, options.scale_max);
      pet.set(t, m,
              gamma_execution_pmf(rng, means[static_cast<std::size_t>(t)]
                                           [static_cast<std::size_t>(m)],
                                  scale, options.samples_per_cell,
                                  options.bin_width));
    }
  }
  pet.freeze();
  return pet;
}

PetMatrix scaled_pet(const PetMatrix& source, double time_factor) {
  assert(time_factor > 0.0);
  PetMatrix scaled(source.task_type_count(), source.machine_type_count());
  for (TaskTypeId t = 0; t < source.task_type_count(); ++t) {
    for (MachineTypeId m = 0; m < source.machine_type_count(); ++m) {
      scaled.set(t, m, source.pmf(t, m).scale_time(time_factor));
    }
  }
  scaled.freeze();
  return scaled;
}

}  // namespace taskdrop
