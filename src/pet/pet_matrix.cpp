#include "pet/pet_matrix.hpp"

#include <cassert>

namespace taskdrop {

PetMatrix::PetMatrix(int task_types, int machine_types)
    : task_types_(task_types),
      machine_types_(machine_types),
      cells_(static_cast<std::size_t>(task_types) * machine_types),
      present_(cells_.size(), false) {
  assert(task_types > 0 && machine_types > 0);
}

void PetMatrix::set(TaskTypeId task, MachineTypeId machine, Pmf pmf) {
  assert(!frozen_ && "PET matrix is immutable after freeze()");
  assert(!pmf.empty());
  const std::size_t i = index(task, machine);
  cells_[i] = std::move(pmf);
  present_[i] = true;
}

void PetMatrix::freeze() {
  assert(!frozen_);
  means_.resize(cells_.size());
  samplers_.resize(cells_.size());
  cdfs_.resize(cells_.size());
  task_means_.assign(static_cast<std::size_t>(task_types_), 0.0);
  double total = 0.0;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    assert(present_[i] && "every PET cell must be set before freeze()");
    means_[i] = cells_[i].mean();
    samplers_[i] = CdfSampler(cells_[i]);
    cdfs_[i] = PmfCdf(cells_[i]);
    task_means_[i / machine_types_] += means_[i];
    total += means_[i];
  }
  for (double& m : task_means_) m /= static_cast<double>(machine_types_);
  grand_mean_ = total / static_cast<double>(cells_.size());
  frozen_ = true;
}

double PetMatrix::mean_over_machines(TaskTypeId task) const {
  assert(frozen_);
  return task_means_[static_cast<std::size_t>(task)];
}

double PetMatrix::mean_overall() const {
  assert(frozen_);
  return grand_mean_;
}

const CdfSampler& PetMatrix::sampler(TaskTypeId task,
                                     MachineTypeId machine) const {
  assert(frozen_);
  return samplers_[index(task, machine)];
}

}  // namespace taskdrop
