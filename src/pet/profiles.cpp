#include "pet/profiles.hpp"

#include "util/rng.hpp"

namespace taskdrop {
namespace {

/// Seed that fixes the synthetic mean matrices. Changing it changes the
/// concrete PET numbers but not any qualitative result; it is pinned so
/// every build reproduces the same tables.
constexpr std::uint64_t kProfileSeed = 0x5eed0f11e5ULL;

}  // namespace

SystemProfile spec_hc_profile() {
  constexpr int kTaskTypes = 12;
  constexpr int kMachineTypes = 8;
  SystemProfile profile;
  profile.name = "spec_hc";

  // Inconsistent heterogeneity is produced by combining a per-task base
  // demand, a per-machine speed factor, and a strong per-cell perturbation.
  // The perturbation is what makes the matrix *inconsistent*: it reorders
  // machine preference from one task type to the next (verified by a unit
  // test), mirroring the paper's eight real machines running SPECint.
  Rng rng = Rng::derive(kProfileSeed, 1);
  std::vector<double> task_base(kTaskTypes);
  for (auto& b : task_base) b = rng.uniform(60.0, 170.0);
  std::vector<double> machine_speed(kMachineTypes);
  for (auto& s : machine_speed) s = rng.uniform(0.75, 1.35);

  profile.mean_execution_ms.assign(kTaskTypes,
                                   std::vector<double>(kMachineTypes));
  for (int t = 0; t < kTaskTypes; ++t) {
    for (int m = 0; m < kMachineTypes; ++m) {
      const double perturb = rng.uniform(0.55, 1.45);
      double mean = task_base[static_cast<std::size_t>(t)] *
                    machine_speed[static_cast<std::size_t>(m)] * perturb;
      // Keep every mean inside the paper's stated 50..200 ms band.
      if (mean < 50.0) mean = 50.0 + (50.0 - mean) * 0.1;
      if (mean > 200.0) mean = 200.0 - (mean - 200.0) * 0.1;
      if (mean > 200.0) mean = 200.0;
      profile.mean_execution_ms[static_cast<std::size_t>(t)]
                               [static_cast<std::size_t>(m)] = mean;
    }
  }

  // One machine of each type, as in the paper's eight distinct machines.
  profile.machine_types = {0, 1, 2, 3, 4, 5, 6, 7};

  // AWS-style rates: faster machine types cost more. Rates are inversely
  // related to the machine's average execution time across task types.
  profile.cost_per_hour.assign(kMachineTypes, 0.0);
  for (int m = 0; m < kMachineTypes; ++m) {
    double avg = 0.0;
    for (int t = 0; t < kTaskTypes; ++t) {
      avg += profile.mean_execution_ms[static_cast<std::size_t>(t)]
                                      [static_cast<std::size_t>(m)];
    }
    avg /= kTaskTypes;
    profile.cost_per_hour[static_cast<std::size_t>(m)] = 0.10 * 120.0 / avg;
  }
  return profile;
}

SystemProfile video_profile() {
  SystemProfile profile;
  profile.name = "video";
  // Four transcoding operations (e.g. resolution change, bit-rate change,
  // compression change, packaging) whose demands differ strongly — the
  // paper notes "certain task type takes significantly shorter time to
  // execute than the others across all machine types" (section V-H).
  const std::vector<double> task_base = {35.0, 85.0, 150.0, 290.0};
  // Four VM types (CPU-optimized, memory-optimized, GPU, general) with
  // mild inconsistency across task types.
  const std::vector<std::vector<double>> speed = {
      {0.80, 1.00, 1.30, 1.05},   // task 0 relative cost per machine type
      {1.10, 0.85, 1.25, 1.00},   // task 1
      {1.25, 1.05, 0.70, 1.10},   // task 2 (GPU-friendly)
      {0.95, 1.15, 0.85, 1.20}};  // task 3
  profile.mean_execution_ms.assign(4, std::vector<double>(4));
  for (int t = 0; t < 4; ++t) {
    for (int m = 0; m < 4; ++m) {
      profile.mean_execution_ms[static_cast<std::size_t>(t)]
                               [static_cast<std::size_t>(m)] =
          task_base[static_cast<std::size_t>(t)] *
          speed[static_cast<std::size_t>(t)][static_cast<std::size_t>(m)];
    }
  }
  // Two machines per VM type, as in section V-H's four types / eight VMs.
  profile.machine_types = {0, 0, 1, 1, 2, 2, 3, 3};
  profile.cost_per_hour = {0.085, 0.096, 0.270, 0.120};
  return profile;
}

SystemProfile homogeneous_profile() {
  const SystemProfile spec = spec_hc_profile();
  SystemProfile profile;
  profile.name = "homogeneous";
  const auto task_types = spec.mean_execution_ms.size();
  profile.mean_execution_ms.assign(task_types, std::vector<double>(1));
  for (std::size_t t = 0; t < task_types; ++t) {
    double avg = 0.0;
    for (double m : spec.mean_execution_ms[t]) avg += m;
    profile.mean_execution_ms[t][0] =
        avg / static_cast<double>(spec.mean_execution_ms[t].size());
  }
  // Same cluster size as the heterogeneous system: eight identical machines.
  profile.machine_types.assign(8, 0);
  profile.cost_per_hour = {0.10};
  return profile;
}

}  // namespace taskdrop
