#pragma once

#include <string>
#include <vector>

namespace taskdrop {

/// Static description of one HC-system profile: which machine types exist,
/// how many machines of each, what the mean execution times are, and what
/// each machine type costs to run. The PET matrix itself is built from
/// `mean_execution_ms` by the Gamma recipe (pet_builder).
struct SystemProfile {
  std::string name;
  /// [task_type][machine_type] mean execution time in ms (ticks).
  std::vector<std::vector<double>> mean_execution_ms;
  /// machine index -> machine type (size = number of machines).
  std::vector<int> machine_types;
  /// $ per hour per machine *type* (AWS-style pricing; Fig. 9 only uses
  /// the relative magnitudes).
  std::vector<double> cost_per_hour;
};

/// SPECint-like inconsistently heterogeneous profile of section V-A:
/// 12 task types on 8 single-machine types, mean execution times in
/// [50, 200] ms. The means are a fixed pseudo-random inconsistent matrix
/// (machine A faster than B for some task types and slower for others),
/// standing in for the paper's measured SPECint timings (see DESIGN.md
/// substitution table).
SystemProfile spec_hc_profile();

/// Video-transcoding validation profile of section V-H: 4 transcoding task
/// types on 4 cloud VM types, two machines per type, with high
/// execution-time variation across task types.
SystemProfile video_profile();

/// Homogeneous control profile used by Fig. 7b: every machine is the same
/// type; each task type's mean is its spec_hc mean averaged over machines.
SystemProfile homogeneous_profile();

}  // namespace taskdrop
