#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

#include "prob/pmf.hpp"
#include "prob/sampler.hpp"
#include "util/time_types.hpp"

namespace taskdrop {

/// Probabilistic Execution Time (PET) matrix.
///
/// Stores one execution-time PMF per (task type, machine type) pair — the
/// stochastic modelling of Salehi et al. that the paper builds on: "a
/// matrix, called Probabilistic Execution Time (PET), is employed to store
/// the execution time PMFs of all task types on all machine types"
/// (section III). The matrix is immutable once frozen; freezing precomputes
/// per-cell means and inverse-CDF samplers so the simulation hot path never
/// rescans a PMF.
class PetMatrix {
 public:
  PetMatrix(int task_types, int machine_types);

  int task_type_count() const { return task_types_; }
  int machine_type_count() const { return machine_types_; }

  /// Installs the PMF for one cell. Only valid before freeze().
  void set(TaskTypeId task, MachineTypeId machine, Pmf pmf);

  /// Precomputes means and samplers. Every cell must have been set.
  void freeze();
  bool frozen() const { return frozen_; }

  // The per-cell getters below are inline: the mapping heuristics read
  // them once per (candidate, machine) probe, millions of times per trial.

  const Pmf& pmf(TaskTypeId task, MachineTypeId machine) const {
    return cells_[index(task, machine)];
  }

  /// Mean execution time of the cell (ticks).
  double mean_execution(TaskTypeId task, MachineTypeId machine) const {
    assert(frozen_);
    return means_[index(task, machine)];
  }

  /// Mean execution time of a task type averaged over machine types —
  /// the `avg_i` of the deadline rule delta_i = arr_i + avg_i + gamma*avg_all.
  double mean_over_machines(TaskTypeId task) const;

  /// Grand mean over all cells — the `avg_all` of the deadline rule.
  double mean_overall() const;

  /// Ground-truth execution-time sampler for the cell (O(log n) draws).
  const CdfSampler& sampler(TaskTypeId task, MachineTypeId machine) const;

  /// Cached cumulative-mass view of the cell's PMF (O(1) P(X < t) queries).
  const PmfCdf& cdf(TaskTypeId task, MachineTypeId machine) const {
    assert(frozen_);
    return cdfs_[index(task, machine)];
  }

 private:
  std::size_t index(TaskTypeId task, MachineTypeId machine) const {
    assert(task >= 0 && task < task_types_);
    assert(machine >= 0 && machine < machine_types_);
    return static_cast<std::size_t>(task) *
               static_cast<std::size_t>(machine_types_) +
           static_cast<std::size_t>(machine);
  }

  int task_types_;
  int machine_types_;
  bool frozen_ = false;
  std::vector<Pmf> cells_;
  std::vector<bool> present_;
  std::vector<double> means_;
  std::vector<CdfSampler> samplers_;
  std::vector<PmfCdf> cdfs_;
  std::vector<double> task_means_;
  double grand_mean_ = 0.0;
};

}  // namespace taskdrop
