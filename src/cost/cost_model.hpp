#pragma once

#include <vector>

#include "sim/sim_result.hpp"

namespace taskdrop {

/// AWS-style usage pricing (section V-G): each machine *type* has an hourly
/// rate, and a machine incurs cost while it is executing tasks. Fig. 9's
/// metric normalises the total incurred cost by the achieved robustness —
/// "the price incurred to process the tasks is divided by the percentage of
/// tasks completed on time".
class CostModel {
 public:
  /// `rate_per_hour[t]` = $ per hour of machine type t.
  explicit CostModel(std::vector<double> rate_per_hour);

  double rate(MachineTypeId type) const;

  /// Total dollars of executing time across all machines of a run.
  double total_cost(const SimResult& result) const;

  /// Fig. 9's normalised cost: total cost divided by the fraction of tasks
  /// completed on time (robustness/100). Returns 0 when robustness is 0.
  double cost_per_robustness(const SimResult& result, int exclude_head = 100,
                             int exclude_tail = 100) const;

 private:
  std::vector<double> rate_per_hour_;
};

}  // namespace taskdrop
