#pragma once

#include <vector>

#include "util/time_types.hpp"

namespace taskdrop {

/// AWS-style usage pricing (section V-G): each machine *type* has an hourly
/// rate, and a machine incurs cost while it is executing tasks. Fig. 9's
/// metric normalises the total incurred cost by the achieved robustness —
/// "the price incurred to process the tasks is divided by the percentage of
/// tasks completed on time".
///
/// The model is pure pricing arithmetic over (busy time, machine type)
/// pairs — it deliberately knows nothing about the simulator. The
/// SimResult-consuming conveniences (total cost of a run, Fig. 9's
/// normalised cost) live in metrics/aggregate.hpp, the layer that already
/// joins simulation outputs with pricing.
class CostModel {
 public:
  /// `rate_per_hour[t]` = $ per hour of machine type t.
  explicit CostModel(std::vector<double> rate_per_hour);

  double rate(MachineTypeId type) const;

  /// Total dollars of executing time: busy_ticks[m] ticks on a machine of
  /// type machine_types[m], for every machine m.
  double busy_cost(const std::vector<Tick>& busy_ticks,
                   const std::vector<MachineTypeId>& machine_types) const;

 private:
  std::vector<double> rate_per_hour_;
};

}  // namespace taskdrop
