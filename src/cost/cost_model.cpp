#include "cost/cost_model.hpp"

#include <cassert>

namespace taskdrop {
namespace {
constexpr double kTicksPerHour = 3600.0 * 1000.0;  // 1 tick = 1 ms
}

CostModel::CostModel(std::vector<double> rate_per_hour)
    : rate_per_hour_(std::move(rate_per_hour)) {
  assert(!rate_per_hour_.empty());
}

double CostModel::rate(MachineTypeId type) const {
  assert(type >= 0 &&
         static_cast<std::size_t>(type) < rate_per_hour_.size());
  return rate_per_hour_[static_cast<std::size_t>(type)];
}

double CostModel::busy_cost(
    const std::vector<Tick>& busy_ticks,
    const std::vector<MachineTypeId>& machine_types) const {
  assert(busy_ticks.size() == machine_types.size());
  double dollars = 0.0;
  for (std::size_t m = 0; m < busy_ticks.size(); ++m) {
    dollars += static_cast<double>(busy_ticks[m]) / kTicksPerHour *
               rate(machine_types[m]);
  }
  return dollars;
}

}  // namespace taskdrop
