#include "cost/cost_model.hpp"

#include <cassert>

namespace taskdrop {
namespace {
constexpr double kTicksPerHour = 3600.0 * 1000.0;  // 1 tick = 1 ms
}

CostModel::CostModel(std::vector<double> rate_per_hour)
    : rate_per_hour_(std::move(rate_per_hour)) {
  assert(!rate_per_hour_.empty());
}

double CostModel::rate(MachineTypeId type) const {
  assert(type >= 0 &&
         static_cast<std::size_t>(type) < rate_per_hour_.size());
  return rate_per_hour_[static_cast<std::size_t>(type)];
}

double CostModel::total_cost(const SimResult& result) const {
  assert(result.busy_ticks.size() == result.machine_types.size());
  double dollars = 0.0;
  for (std::size_t m = 0; m < result.busy_ticks.size(); ++m) {
    dollars += static_cast<double>(result.busy_ticks[m]) / kTicksPerHour *
               rate(result.machine_types[m]);
  }
  return dollars;
}

double CostModel::cost_per_robustness(const SimResult& result,
                                      int exclude_head,
                                      int exclude_tail) const {
  const double robustness =
      result.robustness_pct(exclude_head, exclude_tail);
  if (robustness <= 0.0) return 0.0;
  return total_cost(result) / (robustness / 100.0);
}

}  // namespace taskdrop
