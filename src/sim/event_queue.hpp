#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "util/time_types.hpp"

namespace taskdrop {

/// Kinds of discrete events driving the simulation. Section III: "A mapping
/// event is triggered by completing or arrival of a task."
enum class EventKind : std::uint8_t {
  TaskArrival,
  TaskCompletion,
  /// Failure-injection extension: a machine goes down / comes back.
  MachineFailure,
  MachineRecovery,
  /// Drain-time safety net: a payload-less mapping event the engine
  /// schedules when the queue would otherwise go empty while unmapped
  /// tasks still sit in the batch queue (a deferring mapper can strand
  /// them). Fires at the earliest such deadline, so every task reaches a
  /// terminal state even if it is only by reactive expiry.
  MappingWakeup,
};

struct Event {
  Tick time = 0;
  EventKind kind = EventKind::TaskArrival;
  /// TaskArrival: the arriving task id. TaskCompletion: machine id plus the
  /// run token (see Engine). MachineFailure/Recovery: the machine id.
  /// MappingWakeup: unused (-1).
  std::int64_t payload = -1;
  /// Monotonic sequence number breaking time ties deterministically
  /// (FIFO among same-tick events).
  std::uint64_t seq = 0;
};

/// Min-heap of events ordered by (time, insertion order). Determinism of the
/// whole simulation rests on the tie-break: two events at the same tick are
/// processed in the order they were scheduled.
class EventQueue {
 public:
  void push(Tick time, EventKind kind, std::int64_t payload);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Pops the earliest event. Precondition: !empty().
  Event pop();

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace taskdrop
