#include "sim/sim_result.hpp"

#include <algorithm>

namespace taskdrop {

SimCounts SimResult::counts_in_window(int exclude_head,
                                      int exclude_tail) const {
  SimCounts counts;
  const auto n = static_cast<long long>(tasks.size());
  long long head = std::max(0LL, static_cast<long long>(exclude_head));
  long long tail = std::max(0LL, static_cast<long long>(exclude_tail));
  if (head + tail >= n) {
    head = 0;
    tail = 0;
  }
  for (long long i = head; i < n - tail; ++i) {
    const Task& task = tasks[static_cast<std::size_t>(i)];
    switch (task.state) {
      case TaskState::CompletedOnTime:
        ++counts.completed_on_time;
        if (task.approximate) ++counts.approx_on_time;
        break;
      case TaskState::CompletedLate: ++counts.completed_late; break;
      case TaskState::LostToFailure: ++counts.lost_to_failure; break;
      case TaskState::DroppedReactive:
        // machine >= 0 means the task had been mapped when it expired.
        if (task.machine >= 0) {
          ++counts.dropped_reactive_queued;
        } else {
          ++counts.expired_unmapped;
        }
        break;
      case TaskState::DroppedProactive: ++counts.dropped_proactive; break;
      default: break;  // non-terminal states never survive a finished run
    }
  }
  return counts;
}

double SimResult::robustness_pct(int exclude_head, int exclude_tail) const {
  const SimCounts counts = counts_in_window(exclude_head, exclude_tail);
  if (counts.total() == 0) return 0.0;
  return 100.0 * static_cast<double>(counts.completed_on_time) /
         static_cast<double>(counts.total());
}

double SimResult::utility_pct(double approx_weight, int exclude_head,
                              int exclude_tail) const {
  const SimCounts counts = counts_in_window(exclude_head, exclude_tail);
  if (counts.total() == 0) return 0.0;
  const double full = static_cast<double>(counts.completed_on_time -
                                          counts.approx_on_time);
  const double approx =
      approx_weight * static_cast<double>(counts.approx_on_time);
  return 100.0 * (full + approx) / static_cast<double>(counts.total());
}

double SimResult::reactive_drop_share_pct(int exclude_head,
                                          int exclude_tail) const {
  const SimCounts counts = counts_in_window(exclude_head, exclude_tail);
  if (counts.dropped_in_queue() == 0) return 0.0;
  return 100.0 * static_cast<double>(counts.dropped_reactive_queued) /
         static_cast<double>(counts.dropped_in_queue());
}

}  // namespace taskdrop
