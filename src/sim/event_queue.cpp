#include "sim/event_queue.hpp"

#include <cassert>

namespace taskdrop {

void EventQueue::push(Tick time, EventKind kind, std::int64_t payload) {
  heap_.push(Event{time, kind, payload, next_seq_++});
}

Event EventQueue::pop() {
  assert(!heap_.empty());
  Event e = heap_.top();
  heap_.pop();
  return e;
}

}  // namespace taskdrop
