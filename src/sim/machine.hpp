#pragma once

#include <cassert>
#include <deque>

#include "util/time_types.hpp"

namespace taskdrop {

/// One machine of the HC system: a bounded FCFS local queue plus an
/// execution unit. The queue capacity *includes* the running task, matching
/// section V-A ("a machine-queue which can store up to six tasks, including
/// the task that is currently executing"). Mapped tasks cannot be remapped
/// (section III), but pending (non-running) tasks can be dropped.
struct Machine {
  Machine(MachineId id_in, MachineTypeId type_in, int capacity_in)
      : id(id_in), type(type_in), capacity(capacity_in) {}

  MachineId id;
  MachineTypeId type;
  int capacity;

  /// Front = oldest; when `running` is true the front task is executing.
  std::deque<TaskId> queue;
  bool running = false;
  Tick run_start = 0;
  Tick run_end = kNeverTick;
  /// Failure-injection extension: a down machine neither executes nor
  /// accepts new assignments; its queued tasks wait for recovery (mapped
  /// tasks cannot be remapped, section III).
  bool up = true;
  /// Bumped on every execution start and failure kill; lets the engine
  /// discard completion events that became stale when a failure interrupted
  /// the run they were scheduled for.
  std::uint32_t run_token = 0;

  /// Cumulative busy (executing) time, for the cost model.
  Tick busy_ticks = 0;

  bool has_free_slot() const {
    return static_cast<int>(queue.size()) < capacity;
  }

  /// Number of pending (queued, not running) tasks.
  std::size_t pending_count() const {
    return queue.size() - (running ? 1u : 0u);
  }

  /// Queue position of the first droppable (non-running) task.
  std::size_t first_pending_pos() const { return running ? 1u : 0u; }

  void enqueue(TaskId task) {
    assert(has_free_slot());
    queue.push_back(task);
  }

  /// Removes the task at `pos` (must not be the running task).
  void remove_at(std::size_t pos) {
    assert(pos < queue.size());
    assert(!(running && pos == 0) && "cannot remove the running task");
    queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(pos));
  }
};

}  // namespace taskdrop
