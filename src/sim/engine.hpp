#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "core/context.hpp"
#include "core/dropper.hpp"
#include "pet/pet_matrix.hpp"
#include "prob/workspace.hpp"
#include "sched/mapper.hpp"
#include "sim/batch_queue.hpp"
#include "sim/event_queue.hpp"
#include "sim/expiry_heap.hpp"
#include "sim/sim_result.hpp"
#include "workload/trace.hpp"

namespace taskdrop {

/// Failure-injection extension (the paper's section VI future work on
/// "resource failure"): machines fail and recover with exponential
/// inter-failure and repair times. A failing machine kills its running task
/// (state LostToFailure — partially executed time is still billed); its
/// queued tasks wait for recovery (mapped tasks cannot be remapped,
/// section III) and expire reactively as their deadlines pass. Down
/// machines accept no new assignments.
struct FailureModel {
  bool enabled = false;
  /// Mean up-time between failures per machine, ticks.
  double mean_time_between_failures = 60000.0;
  /// Mean repair duration, ticks.
  double mean_time_to_repair = 3000.0;
  std::uint64_t seed = 0xFA11;
};

/// Approximate-computing extension (section VI future work): tasks can be
/// switched to a degraded-quality variant whose execution PMF is the full
/// one time-scaled by `time_factor`; an on-time approximate completion
/// contributes `utility_weight` (vs 1.0) to the utility metric.
struct ApproxModel {
  bool enabled = false;
  double time_factor = 0.5;
  double utility_weight = 0.5;
};

/// Engine tuning knobs. Defaults mirror the paper's evaluation setup.
struct EngineConfig {
  /// Machine-queue capacity, running task included (section V-A: six).
  int queue_capacity = 6;
  /// When the dropping mechanism runs (Fig. 4 vs section V-A).
  DropperEngagement engagement = DropperEngagement::EveryMappingEvent;
  /// Extension: condition the running task's completion PMF on "not done
  /// yet" (see CompletionModel::Options).
  bool condition_running = false;
  /// Seed of the ground-truth execution-time sampling stream.
  std::uint64_t exec_seed = 7;
  FailureModel failures;
  ApproxModel approx;
};

/// The online batch-mode resource-allocation simulator of Fig. 1.
///
/// Drives a discrete-event loop over task arrivals and completions. Every
/// event triggers a mapping event (section III): expired pending tasks are
/// reactively dropped, the Task Dropper runs (per the engagement policy),
/// the Mapper assigns unmapped batch-queue tasks to free machine-queue
/// slots, and idle machines start their queue heads. Ground-truth execution
/// times are sampled from the same PET PMFs the scheduler reasons over —
/// the scheduler sees only distributions, never the sampled durations.
class Engine final : private SchedulerOps {
 public:
  /// `pet` must outlive the engine. `machine_types[i]` is machine i's type
  /// (an index into the PET matrix's machine axis).
  Engine(const PetMatrix& pet, std::vector<MachineTypeId> machine_types,
         Mapper& mapper, Dropper& dropper, EngineConfig config = {});

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Runs one trial to completion (system drains back to idle) and returns
  /// the per-task outcomes. The engine can be reused for further runs.
  SimResult run(const Trace& trace);

 private:
  // SchedulerOps (exposed to the mapper and dropper via SystemView).
  void assign_task(TaskId task, MachineId machine) override;
  void drop_queued_task(MachineId machine, std::size_t pos) override;
  void downgrade_task(MachineId machine, std::size_t pos) override;

  void reset(const Trace& trace);
  void handle_arrival(TaskId task);
  void handle_completion(MachineId machine, std::uint32_t token);
  void handle_failure(MachineId machine);
  void handle_recovery(MachineId machine);
  void mapping_event();
  /// Drops expired pending tasks (machine queues and batch queue); returns
  /// true when at least one task was dropped.
  bool reactive_drop_pass();
  void start_next(Machine& machine);
  void set_now(Tick now);
  /// Marks a terminal transition (bookkeeping for failure-event cutoff).
  void on_terminal() { --live_tasks_; }
  void schedule_next_failure(MachineId machine);
  /// TASKDROP_AUDIT cross-check (sampled from mapping_event): BatchQueue
  /// link/size/state coherence and expiry-heap coverage of the batch.
  void audit_batch_coherence() const;

  const PetMatrix& pet_;
  std::vector<MachineTypeId> machine_type_of_;
  Mapper& mapper_;
  Dropper& dropper_;
  EngineConfig config_;
  /// Time-scaled PET for approximate-mode tasks (approx extension only).
  std::optional<PetMatrix> approx_pet_;

  Tick now_ = 0;
  std::vector<Task> tasks_;
  std::vector<Machine> machines_;
  /// Convolution scratch shared by every per-machine completion model (the
  /// engine is single-threaded, and one buffer keeps the hot chain-rebuild
  /// loop in cache across machines).
  PmfWorkspace model_ws_;
  std::vector<CompletionModel> models_;
  BatchQueue batch_;
  /// Unmapped tasks ordered by deadline (lazy deletion: entries whose task
  /// already left the batch are skipped on pop). The reactive pass used to
  /// rescan the whole batch every mapping event — O(batch) per event, the
  /// dominant cost once oversubscription lets thousands of unmapped tasks
  /// accumulate; with the heap it only ever touches tasks that actually
  /// expired.
  ExpiryHeap batch_expiry_;
  EventQueue events_;
  Rng exec_rng_;
  Rng failure_rng_;
  SystemView view_;
  bool deadline_miss_pending_ = false;
  long long mapping_events_ = 0;
  long long dropper_invocations_ = 0;
  /// Tasks not yet in a terminal state; failure events stop being scheduled
  /// once this reaches zero so the simulation always drains.
  long long live_tasks_ = 0;
  /// Sampling counter for the TASKDROP_AUDIT coherence pass (unused in
  /// normal builds, where the audit gate folds to constant false).
  std::uint64_t audit_counter_ = 0;
};

}  // namespace taskdrop
