#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "online/online_scheduler.hpp"
#include "online/replay.hpp"
#include "sim/event_queue.hpp"
#include "sim/sim_result.hpp"
#include "util/rng.hpp"
#include "workload/trace.hpp"

namespace taskdrop {

/// Failure-injection extension (the paper's section VI future work on
/// "resource failure"): machines fail and recover with exponential
/// inter-failure and repair times. A failing machine kills its running task
/// (state LostToFailure — partially executed time is still billed); its
/// queued tasks wait for recovery (mapped tasks cannot be remapped,
/// section III) and expire reactively as their deadlines pass. Down
/// machines accept no new assignments.
struct FailureModel {
  bool enabled = false;
  /// Mean up-time between failures per machine, ticks.
  double mean_time_between_failures = 60000.0;
  /// Mean repair duration, ticks.
  double mean_time_to_repair = 3000.0;
  std::uint64_t seed = 0xFA11;
};

/// Engine tuning knobs. Defaults mirror the paper's evaluation setup.
/// (ApproxModel lives in online/online_scheduler.hpp with the kernel stack
/// that owns the approximate PET; this header re-exports it.)
struct EngineConfig {
  /// Machine-queue capacity, running task included (section V-A: six).
  int queue_capacity = 6;
  /// When the dropping mechanism runs (Fig. 4 vs section V-A).
  DropperEngagement engagement = DropperEngagement::EveryMappingEvent;
  /// Extension: condition the running task's completion PMF on "not done
  /// yet" (see CompletionModel::Options).
  bool condition_running = false;
  /// Seed of the ground-truth execution-time sampling stream.
  std::uint64_t exec_seed = 7;
  /// Test knob: forwarded to OnlineConfig::paranoid_invalidate — forces
  /// conservative invalidate-and-rebuild chain maintenance. Decision
  /// streams and SimResults must be bit-identical either way; the
  /// chain-keep regression suites assert exactly that.
  bool paranoid_invalidate = false;
  FailureModel failures;
  ApproxModel approx;
};

/// The online batch-mode resource-allocation simulator of Fig. 1.
///
/// The engine is the discrete-event driver of the OnlineScheduler kernel
/// stack: it owns everything the *environment* owns — the event queue, the
/// ground-truth execution-time sampling stream, and the failure process —
/// and translates popped events into the scheduler's wall-clock callbacks
/// (task_arrived / task_finished / machine_down / machine_up / advance).
/// Start decisions coming back from the scheduler are confirmed immediately
/// with a sampled ground-truth duration (task_started), which schedules the
/// matching completion event. The scheduler sees only distributions, never
/// the sampled durations — exactly the paper's information split.
class Engine final {
 public:
  /// `pet` must outlive the engine. `machine_types[i]` is machine i's type
  /// (an index into the PET matrix's machine axis).
  Engine(const PetMatrix& pet, std::vector<MachineTypeId> machine_types,
         Mapper& mapper, Dropper& dropper, EngineConfig config = {});

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Runs one trial to completion (system drains back to idle) and returns
  /// the per-task outcomes. The engine can be reused for further runs.
  SimResult run(const Trace& trace);

  /// When set, run() records the full environment trace — task table, every
  /// scheduler callback, every decision — into `log` (cleared first). The
  /// differential replay suite feeds it back through a fresh
  /// OnlineScheduler and requires a bit-identical decision stream.
  void set_replay_log(ReplayLog* log) { replay_ = log; }

 private:
  void reset(const Trace& trace);
  /// Confirms the callback's Start offers (sampling ground truth and
  /// scheduling completions), maintains the live-task count, and records
  /// the decisions to the replay log.
  void apply_decisions(Tick t, const std::vector<Decision>& decisions);
  void schedule_next_failure(MachineId machine, Tick now);
  void record(ReplayEvent::Kind kind, Tick time, TaskId task = -1,
              MachineId machine = -1, Tick duration = -1);

  const PetMatrix& pet_;
  std::vector<MachineTypeId> machine_type_of_;
  Mapper& mapper_;
  Dropper& dropper_;
  EngineConfig config_;

  /// The decision kernels. Re-emplaced per run so every trial starts from
  /// the same clean state reset() used to rebuild in place.
  std::optional<OnlineScheduler> sched_;
  EventQueue events_;
  Rng exec_rng_;
  Rng failure_rng_;
  /// Tasks not yet in a terminal state; failure events stop being scheduled
  /// once this reaches zero so the simulation always drains.
  long long live_tasks_ = 0;
  ReplayLog* replay_ = nullptr;
};

}  // namespace taskdrop
