#pragma once

#include <vector>

#include "sim/task.hpp"
#include "util/time_types.hpp"

namespace taskdrop {

/// Terminal-state tallies of one simulation run. Reactive drops are split
/// by where they happened: inside a machine queue (the Task Dropper's
/// domain — what section V-F's "percentage of tasks dropped reactively"
/// measures) versus expiring unmapped in the batch queue before any slot
/// freed up.
struct SimCounts {
  long long completed_on_time = 0;
  long long completed_late = 0;
  long long dropped_reactive_queued = 0;
  long long dropped_proactive = 0;
  long long expired_unmapped = 0;
  long long lost_to_failure = 0;
  /// Approximate-computing extension: of completed_on_time, how many ran in
  /// approximate (degraded-quality) mode.
  long long approx_on_time = 0;

  long long total() const {
    return completed_on_time + completed_late + dropped_reactive_queued +
           dropped_proactive + expired_unmapped + lost_to_failure;
  }
  /// Drops within machine queues (reactive + proactive).
  long long dropped_in_queue() const {
    return dropped_reactive_queued + dropped_proactive;
  }
};

/// Everything a simulation run produces. `tasks` is in arrival order (the
/// trace order), which is what the paper's warm-up/cool-down exclusion is
/// defined over: "the first and last 100 tasks in each workload trial are
/// excluded from the results" (section V-A).
struct SimResult {
  std::vector<Task> tasks;
  /// Cumulative executing time per machine (cost model input).
  std::vector<Tick> busy_ticks;
  /// Machine type of each machine (cost model input).
  std::vector<MachineTypeId> machine_types;
  Tick makespan = 0;
  long long mapping_events = 0;
  long long dropper_invocations = 0;

  SimCounts counts() const { return counts_in_window(0, 0); }

  /// Tallies over tasks[exclude_head, size - exclude_tail). Exclusions are
  /// clamped when the trace is shorter than the excluded window.
  SimCounts counts_in_window(int exclude_head, int exclude_tail) const;

  /// The paper's robustness metric: percentage of (counted) tasks that
  /// completed strictly before their deadlines.
  double robustness_pct(int exclude_head = 100, int exclude_tail = 100) const;

  /// Approximate-computing extension metric: like robustness, but an
  /// on-time *approximate* completion contributes only `approx_weight`
  /// (full-quality completions contribute 1).
  double utility_pct(double approx_weight, int exclude_head = 100,
                     int exclude_tail = 100) const;

  /// Section V-F's metric: of the drops that happened inside machine
  /// queues, the percentage that were reactive (deadline already missed)
  /// rather than proactive. 0 when nothing was dropped from a queue.
  double reactive_drop_share_pct(int exclude_head = 100,
                                 int exclude_tail = 100) const;
};

}  // namespace taskdrop
