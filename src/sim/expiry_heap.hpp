#pragma once

#include <algorithm>
#include <cassert>
#include <functional>
#include <utility>
#include <vector>

#include "util/time_types.hpp"

namespace taskdrop {

/// Min-heap of (deadline, task) pairs backing the engine's lazy reactive
/// expiry pass. Replaces a bare std::priority_queue with the same ordering
/// (std::greater over the pair, so earliest deadline on top, task id as the
/// deterministic tie-break) but with an inspectable backing store: the
/// invariant auditor needs to verify that every live batch-queue task is
/// covered by a heap entry and that the heap property actually holds, and
/// a std::priority_queue hides its container.
///
/// Lazy-deletion contract (same as before the refactor): entries are never
/// removed when a task leaves the batch queue by assignment; the consumer
/// pops and skips entries whose task is no longer in the batch.
class ExpiryHeap {
 public:
  using Entry = std::pair<Tick, TaskId>;

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }

  /// Earliest-deadline entry. Must not be called on an empty heap.
  const Entry& top() const {
    assert(!entries_.empty());
    return entries_.front();
  }

  void push(Tick deadline, TaskId task) {
    entries_.emplace_back(deadline, task);
    std::push_heap(entries_.begin(), entries_.end(), Compare{});
  }

  void pop() {
    assert(!entries_.empty());
    std::pop_heap(entries_.begin(), entries_.end(), Compare{});
    entries_.pop_back();
  }

  void clear() { entries_.clear(); }

  /// Audit introspection: the raw backing store, heap-ordered.
  const std::vector<Entry>& entries() const { return entries_; }

  /// Audit introspection: does the backing store satisfy the heap property?
  bool is_heap() const {
    return std::is_heap(entries_.begin(), entries_.end(), Compare{});
  }

  /// Audit introspection: is (deadline, task) present? Linear scan — only
  /// ever called from sampled audit passes.
  bool contains(Tick deadline, TaskId task) const {
    return std::find(entries_.begin(), entries_.end(),
                     Entry{deadline, task}) != entries_.end();
  }

 private:
  /// std::greater makes std::push_heap/pop_heap maintain a min-heap —
  /// exactly the priority_queue<..., std::greater<>> this class replaced.
  using Compare = std::greater<Entry>;

  std::vector<Entry> entries_;
};

}  // namespace taskdrop
