#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <vector>

#include "util/time_types.hpp"

namespace taskdrop {

/// The unmapped-task batch queue of Fig. 1: an arrival-ordered set of task
/// ids supporting O(1) removal from any position.
///
/// The engine used to keep the batch as a plain vector, so every
/// assignment paid an O(n) std::find + erase — measurable once an
/// oversubscribed run accumulates thousands of unmapped tasks. This is an
/// intrusive doubly-linked list threaded through per-task link slots
/// (task ids are dense indices), which keeps push_back/remove O(1) while
/// iterating in exactly the order the vector representation had: arrival
/// order minus removals. Mappers walk it through SystemView; candidate
/// windows are just the first `window` live entries.
class BatchQueue {
 public:
  /// Forward iteration over live entries in arrival order.
  class const_iterator {
   public:
    using value_type = TaskId;
    const_iterator(const BatchQueue* queue, TaskId at)
        : queue_(queue), at_(at) {}
    TaskId operator*() const { return at_; }
    const_iterator& operator++() {
      at_ = queue_->next(at_);
      return *this;
    }
    bool operator==(const const_iterator& other) const {
      return at_ == other.at_;
    }
    bool operator!=(const const_iterator& other) const {
      return at_ != other.at_;
    }

   private:
    const BatchQueue* queue_;
    TaskId at_;
  };

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  /// Oldest live entry; kNoTask when empty.
  TaskId front() const { return head_; }
  /// Successor of a live entry; kNoTask at the tail. Safe to call on an
  /// entry about to be removed (grab the successor first, then remove).
  TaskId next(TaskId id) const {
    return next_[static_cast<std::size_t>(id)];
  }
  bool contains(TaskId id) const {
    const auto i = static_cast<std::size_t>(id);
    return i < live_.size() && live_[i] != 0;
  }

  const_iterator begin() const { return {this, head_}; }
  const_iterator end() const { return {this, kNoTask}; }

  void clear() {
    head_ = tail_ = kNoTask;
    size_ = 0;
    std::fill(live_.begin(), live_.end(), static_cast<unsigned char>(0));
  }

  /// Pre-sizes the link slots for task ids [0, task_count) and empties the
  /// queue. push_back grows the slots on demand, so calling this is an
  /// optimisation, not a requirement.
  void reset(std::size_t task_count) {
    next_.assign(task_count, kNoTask);
    prev_.assign(task_count, kNoTask);
    live_.assign(task_count, 0);
    head_ = tail_ = kNoTask;
    size_ = 0;
  }

  void push_back(TaskId id) {
    const auto i = static_cast<std::size_t>(id);
    if (i >= next_.size()) {
      next_.resize(i + 1, kNoTask);
      prev_.resize(i + 1, kNoTask);
      live_.resize(i + 1, 0);
    }
    assert(live_[i] == 0 && "task already in the batch queue");
    next_[i] = kNoTask;
    prev_[i] = tail_;
    live_[i] = 1;
    if (tail_ != kNoTask) {
      next_[static_cast<std::size_t>(tail_)] = id;
    } else {
      head_ = id;
    }
    tail_ = id;
    ++size_;
  }

  /// Unlinks a live entry in O(1); the relative order of the remaining
  /// entries is untouched.
  void remove(TaskId id) {
    const auto i = static_cast<std::size_t>(id);
    assert(contains(id) && "task not in the batch queue");
    const TaskId before = prev_[i];
    const TaskId after = next_[i];
    if (before != kNoTask) {
      next_[static_cast<std::size_t>(before)] = after;
    } else {
      head_ = after;
    }
    if (after != kNoTask) {
      prev_[static_cast<std::size_t>(after)] = before;
    } else {
      tail_ = before;
    }
    live_[i] = 0;
    next_[i] = prev_[i] = kNoTask;
    --size_;
  }

 private:
  static constexpr TaskId kNoTask = -1;

  std::vector<TaskId> next_;
  std::vector<TaskId> prev_;
  std::vector<unsigned char> live_;
  TaskId head_ = kNoTask;
  TaskId tail_ = kNoTask;
  std::size_t size_ = 0;
};

}  // namespace taskdrop
