#include "sim/engine.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace taskdrop {
namespace {

/// TaskCompletion events pack (machine, run token) so completions scheduled
/// for a run that a failure killed can be recognised as stale.
constexpr std::int64_t kTokenShift = 20;

std::int64_t pack_completion(MachineId machine, std::uint32_t token) {
  return static_cast<std::int64_t>(machine) +
         (static_cast<std::int64_t>(token) << kTokenShift);
}

MachineId unpack_machine(std::int64_t payload) {
  return static_cast<MachineId>(payload & ((std::int64_t{1} << kTokenShift) - 1));
}

std::uint32_t unpack_token(std::int64_t payload) {
  return static_cast<std::uint32_t>(payload >> kTokenShift);
}

}  // namespace

Engine::Engine(const PetMatrix& pet, std::vector<MachineTypeId> machine_types,
               Mapper& mapper, Dropper& dropper, EngineConfig config)
    : pet_(pet),
      machine_type_of_(std::move(machine_types)),
      mapper_(mapper),
      dropper_(dropper),
      config_(config),
      exec_rng_(config.exec_seed),
      failure_rng_(config.failures.seed) {
  assert(!machine_type_of_.empty());
  assert(config_.queue_capacity >= 1);
}

void Engine::reset(const Trace& trace) {
  live_tasks_ = static_cast<long long>(trace.size());
  exec_rng_.reseed(config_.exec_seed);
  failure_rng_.reseed(config_.failures.seed);
  events_ = EventQueue();

  OnlineConfig online;
  online.queue_capacity = config_.queue_capacity;
  online.engagement = config_.engagement;
  online.condition_running = config_.condition_running;
  online.volatile_machines = config_.failures.enabled;
  online.paranoid_invalidate = config_.paranoid_invalidate;
  online.approx = config_.approx;
  sched_.emplace(pet_, machine_type_of_, mapper_, dropper_, online);
  sched_->reserve_tasks(trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const TaskId id =
        sched_->register_task(trace[i].type, trace[i].arrival,
                              trace[i].deadline);
    events_.push(trace[i].arrival, EventKind::TaskArrival, id);
  }

  if (replay_ != nullptr) {
    replay_->tasks = trace;
    replay_->events.clear();
    replay_->decisions.clear();
  }

  if (config_.failures.enabled && live_tasks_ > 0) {
    for (MachineId m = 0; m < static_cast<MachineId>(machine_type_of_.size());
         ++m) {
      schedule_next_failure(m, 0);
    }
  }
}

void Engine::schedule_next_failure(MachineId machine, Tick now) {
  if (!config_.failures.enabled || live_tasks_ <= 0) return;
  const double up_time =
      failure_rng_.exponential(config_.failures.mean_time_between_failures);
  events_.push(now + std::max<Tick>(1, std::llround(up_time)),
               EventKind::MachineFailure, machine);
}

void Engine::record(ReplayEvent::Kind kind, Tick time, TaskId task,
                    MachineId machine, Tick duration) {
  if (replay_ == nullptr) return;
  replay_->events.push_back(ReplayEvent{kind, time, task, machine, duration});
}

SimResult Engine::run(const Trace& trace) {
  reset(trace);

  while (!events_.empty()) {
    const Event event = events_.pop();
    const Tick t = event.time;
    switch (event.kind) {
      case EventKind::TaskArrival: {
        const TaskId task = static_cast<TaskId>(event.payload);
        record(ReplayEvent::Kind::Arrive, t, task);
        apply_decisions(t, sched_->task_arrived(t, task));
        break;
      }
      case EventKind::TaskCompletion: {
        const MachineId m = unpack_machine(event.payload);
        const Machine& machine = sched_->machine(m);
        if (!machine.running || machine.run_token != unpack_token(event.payload)) {
          // Stale: the run this completion belonged to was interrupted. The
          // popped event still advances time and triggers a mapping event.
          record(ReplayEvent::Kind::Advance, t);
          apply_decisions(t, sched_->advance(t));
        } else {
          record(ReplayEvent::Kind::Finish, t, -1, m);
          apply_decisions(t, sched_->task_finished(t, m));
        }
        break;
      }
      case EventKind::MachineFailure: {
        const MachineId m = static_cast<MachineId>(event.payload);
        if (!sched_->machine(m).up) {
          // Already down (stale failure): no repair is scheduled.
          record(ReplayEvent::Kind::Advance, t);
          apply_decisions(t, sched_->advance(t));
        } else {
          // The repair draw and the recovery push come before the callback;
          // machine_down itself pushes no events and draws nothing, so the
          // event sequence numbers match the pre-refactor engine's.
          const double repair =
              failure_rng_.exponential(config_.failures.mean_time_to_repair);
          events_.push(t + std::max<Tick>(1, std::llround(repair)),
                       EventKind::MachineRecovery, m);
          record(ReplayEvent::Kind::Down, t, -1, m);
          apply_decisions(t, sched_->machine_down(t, m));
        }
        break;
      }
      case EventKind::MachineRecovery: {
        const MachineId m = static_cast<MachineId>(event.payload);
        // The next-failure draw reads live_tasks_ before the mapping event
        // the recovery triggers, matching the pre-refactor order.
        schedule_next_failure(m, t);
        record(ReplayEvent::Kind::Up, t, -1, m);
        apply_decisions(t, sched_->machine_up(t, m));
        break;
      }
      case EventKind::MappingWakeup: {
        record(ReplayEvent::Kind::Advance, t);
        apply_decisions(t, sched_->advance(t));
        break;
      }
    }
    if (events_.empty() && sched_->unmapped_count() > 0) {
      // A deferring mapper (e.g. PAMD) left unmapped tasks behind and no
      // future event would ever reconsider or expire them. Wake up at the
      // earliest remaining deadline: reactive dropping then retires at
      // least that task, so the simulation always drains. (Batch tasks
      // with passed deadlines were already dropped by this mapping event,
      // so the wakeup time is strictly in the future.)
      events_.push(sched_->earliest_unmapped_deadline(),
                   EventKind::MappingWakeup, -1);
    }
  }

  SimResult result;
  result.busy_ticks.reserve(sched_->machines().size());
  result.machine_types = machine_type_of_;
  for (const Machine& machine : sched_->machines()) {
    result.busy_ticks.push_back(machine.busy_ticks);
    assert(machine.queue.empty() && "system must drain to idle");
  }
  result.makespan = sched_->now();
  result.mapping_events = sched_->mapping_events();
  result.dropper_invocations = sched_->dropper_invocations();
  result.tasks = sched_->take_tasks();
  return result;
}

void Engine::apply_decisions(Tick t, const std::vector<Decision>& decisions) {
  for (const Decision& decision : decisions) {
    if (decision.kind == DecisionKind::Start) {
      // Confirm the offer: sample the ground-truth duration (a secret the
      // scheduler never learns for its decisions) and schedule completion.
      // Start decisions arrive in machine-ascending order, so the sampling
      // stream consumes draws exactly as the pre-refactor start loop did.
      const Task& task = sched_->task(decision.task);
      const Machine& machine = sched_->machine(decision.machine);
      const PetMatrix& source = task.approximate && sched_->approx_pet()
                                    ? *sched_->approx_pet()
                                    : pet_;
      const Tick duration =
          source.sampler(task.type, machine.type).sample(exec_rng_);
      record(ReplayEvent::Kind::Start, t, decision.task, decision.machine,
             duration);
      sched_->task_started(t, decision.machine, decision.task, duration);
      events_.push(t + duration, EventKind::TaskCompletion,
                   pack_completion(decision.machine, machine.run_token));
    } else if (is_terminal(decision.kind)) {
      --live_tasks_;
    }
    if (replay_ != nullptr) replay_->decisions.push_back(decision);
  }
}

}  // namespace taskdrop
