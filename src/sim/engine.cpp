#include "sim/engine.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string>

#include "pet/pet_builder.hpp"
#include "util/audit.hpp"

namespace taskdrop {
namespace {

/// TaskCompletion events pack (machine, run token) so completions scheduled
/// for a run that a failure killed can be recognised as stale.
constexpr std::int64_t kTokenShift = 20;

std::int64_t pack_completion(MachineId machine, std::uint32_t token) {
  return static_cast<std::int64_t>(machine) +
         (static_cast<std::int64_t>(token) << kTokenShift);
}

MachineId unpack_machine(std::int64_t payload) {
  return static_cast<MachineId>(payload & ((std::int64_t{1} << kTokenShift) - 1));
}

std::uint32_t unpack_token(std::int64_t payload) {
  return static_cast<std::uint32_t>(payload >> kTokenShift);
}

}  // namespace

Engine::Engine(const PetMatrix& pet, std::vector<MachineTypeId> machine_types,
               Mapper& mapper, Dropper& dropper, EngineConfig config)
    : pet_(pet),
      machine_type_of_(std::move(machine_types)),
      mapper_(mapper),
      dropper_(dropper),
      config_(config),
      exec_rng_(config.exec_seed),
      failure_rng_(config.failures.seed) {
  assert(!machine_type_of_.empty());
  assert(config_.queue_capacity >= 1);
  if (config_.approx.enabled) {
    approx_pet_.emplace(scaled_pet(pet_, config_.approx.time_factor));
  }
}

void Engine::reset(const Trace& trace) {
  now_ = 0;
  deadline_miss_pending_ = false;
  mapping_events_ = 0;
  dropper_invocations_ = 0;
  live_tasks_ = static_cast<long long>(trace.size());
  exec_rng_.reseed(config_.exec_seed);
  failure_rng_.reseed(config_.failures.seed);
  batch_.reset(trace.size());
  batch_expiry_.clear();
  events_ = EventQueue();

  tasks_.clear();
  tasks_.reserve(trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    Task task;
    task.id = static_cast<TaskId>(i);
    task.type = trace[i].type;
    task.arrival = trace[i].arrival;
    task.deadline = trace[i].deadline;
    tasks_.push_back(task);
    events_.push(task.arrival, EventKind::TaskArrival, task.id);
  }

  machines_.clear();
  machines_.reserve(machine_type_of_.size());
  models_.clear();
  models_.reserve(machine_type_of_.size());
  for (std::size_t m = 0; m < machine_type_of_.size(); ++m) {
    machines_.emplace_back(static_cast<MachineId>(m), machine_type_of_[m],
                           config_.queue_capacity);
  }
  // Models bind to stable storage: machines_ and tasks_ are fully sized by
  // now and never reallocate during the run.
  CompletionModel::Options options;
  options.condition_running = config_.condition_running;
  options.approx_pet = approx_pet_ ? &*approx_pet_ : nullptr;
  for (std::size_t m = 0; m < machines_.size(); ++m) {
    models_.emplace_back(&pet_, &machines_[m], &tasks_, options, &model_ws_);
  }

  view_ = SystemView{0,
                     &pet_,
                     approx_pet_ ? &*approx_pet_ : nullptr,
                     config_.approx.utility_weight,
                     &tasks_,
                     &machines_,
                     &models_,
                     &batch_};

  if (config_.failures.enabled && live_tasks_ > 0) {
    for (const Machine& machine : machines_) {
      schedule_next_failure(machine.id);
    }
  }
}

void Engine::schedule_next_failure(MachineId machine) {
  if (!config_.failures.enabled || live_tasks_ <= 0) return;
  const double up_time =
      failure_rng_.exponential(config_.failures.mean_time_between_failures);
  events_.push(now_ + std::max<Tick>(1, std::llround(up_time)),
               EventKind::MachineFailure, machine);
}

void Engine::set_now(Tick now) {
  now_ = now;
  view_.now = now;
  for (CompletionModel& model : models_) model.set_now(now);
}

SimResult Engine::run(const Trace& trace) {
  reset(trace);

  while (!events_.empty()) {
    const Event event = events_.pop();
    set_now(event.time);
    switch (event.kind) {
      case EventKind::TaskArrival:
        handle_arrival(static_cast<TaskId>(event.payload));
        break;
      case EventKind::TaskCompletion:
        handle_completion(unpack_machine(event.payload),
                          unpack_token(event.payload));
        break;
      case EventKind::MachineFailure:
        handle_failure(static_cast<MachineId>(event.payload));
        break;
      case EventKind::MachineRecovery:
        handle_recovery(static_cast<MachineId>(event.payload));
        break;
      case EventKind::MappingWakeup:
        break;  // the mapping event below is the entire point
    }
    mapping_event();
    if (events_.empty() && !batch_.empty()) {
      // A deferring mapper (e.g. PAMD) left unmapped tasks behind and no
      // future event would ever reconsider or expire them. Wake up at the
      // earliest remaining deadline: reactive dropping then retires at
      // least that task, so the simulation always drains. (Batch tasks
      // with passed deadlines were already dropped by this mapping event,
      // so the wakeup time is strictly in the future.)
      Tick earliest = kNeverTick;
      for (const TaskId id : batch_) {
        earliest =
            std::min(earliest, tasks_[static_cast<std::size_t>(id)].deadline);
      }
      events_.push(earliest, EventKind::MappingWakeup, -1);
    }
  }

  SimResult result;
  result.tasks = std::move(tasks_);
  result.busy_ticks.reserve(machines_.size());
  result.machine_types = machine_type_of_;
  for (const Machine& machine : machines_) {
    result.busy_ticks.push_back(machine.busy_ticks);
    assert(machine.queue.empty() && "system must drain to idle");
  }
  result.makespan = now_;
  result.mapping_events = mapping_events_;
  result.dropper_invocations = dropper_invocations_;
  return result;
}

void Engine::handle_arrival(TaskId task) {
  assert(tasks_[static_cast<std::size_t>(task)].state == TaskState::Unmapped);
  batch_.push_back(task);
  batch_expiry_.push(tasks_[static_cast<std::size_t>(task)].deadline, task);
}

void Engine::handle_completion(MachineId machine_id, std::uint32_t token) {
  Machine& machine = machines_[static_cast<std::size_t>(machine_id)];
  if (!machine.running || machine.run_token != token) {
    return;  // stale: the run this completion belonged to was interrupted
  }
  assert(now_ == machine.run_end);
  Task& task = tasks_[static_cast<std::size_t>(machine.queue.front())];
  task.finish_time = now_;
  if (now_ < task.deadline) {
    task.state = TaskState::CompletedOnTime;
  } else {
    task.state = TaskState::CompletedLate;
    deadline_miss_pending_ = true;
  }
  on_terminal();
  machine.busy_ticks += now_ - machine.run_start;
  machine.queue.pop_front();
  machine.running = false;
  machine.run_end = kNeverTick;
  models_[static_cast<std::size_t>(machine_id)].invalidate_all();
}

void Engine::handle_failure(MachineId machine_id) {
  Machine& machine = machines_[static_cast<std::size_t>(machine_id)];
  if (!machine.up) return;  // already down (stale failure)
  machine.up = false;
  if (machine.running) {
    Task& task = tasks_[static_cast<std::size_t>(machine.queue.front())];
    task.state = TaskState::LostToFailure;
    task.drop_time = now_;
    on_terminal();
    // The partially executed time was still paid for.
    machine.busy_ticks += now_ - machine.run_start;
    machine.queue.pop_front();
    machine.running = false;
    machine.run_end = kNeverTick;
    ++machine.run_token;  // invalidates the scheduled completion event
    models_[static_cast<std::size_t>(machine_id)].invalidate_all();
  }
  const double repair =
      failure_rng_.exponential(config_.failures.mean_time_to_repair);
  events_.push(now_ + std::max<Tick>(1, std::llround(repair)),
               EventKind::MachineRecovery, machine_id);
}

void Engine::handle_recovery(MachineId machine_id) {
  Machine& machine = machines_[static_cast<std::size_t>(machine_id)];
  machine.up = true;
  schedule_next_failure(machine_id);
  // start_next runs at the end of the mapping event that follows.
}

bool Engine::reactive_drop_pass() {
  bool any = false;
  for (Machine& machine : machines_) {
    std::size_t pos = machine.first_pending_pos();
    while (pos < machine.queue.size()) {
      Task& task = tasks_[static_cast<std::size_t>(machine.queue[pos])];
      if (now_ >= task.deadline) {
        task.state = TaskState::DroppedReactive;
        task.drop_time = now_;
        on_terminal();
        machine.remove_at(pos);
        models_[static_cast<std::size_t>(machine.id)].invalidate_from(pos);
        any = true;
      } else {
        ++pos;
      }
    }
  }
  // Unmapped tasks whose deadlines passed can never start in time either.
  // The expiry heap hands them over directly; entries whose task was
  // assigned (and so left the batch) in the meantime are skipped.
  while (!batch_expiry_.empty() && batch_expiry_.top().first <= now_) {
    const TaskId id = batch_expiry_.top().second;
    batch_expiry_.pop();
    if (!batch_.contains(id)) continue;
    Task& task = tasks_[static_cast<std::size_t>(id)];
    task.state = TaskState::DroppedReactive;
    task.drop_time = now_;
    on_terminal();
    batch_.remove(id);
    any = true;
  }
  return any;
}

void Engine::mapping_event() {
  ++mapping_events_;
  bool miss_noticed = deadline_miss_pending_;
  deadline_miss_pending_ = false;
  // Step 2 of Fig. 4: reactive drops come first.
  miss_noticed |= reactive_drop_pass();

  if (config_.engagement == DropperEngagement::EveryMappingEvent ||
      miss_noticed) {
    ++dropper_invocations_;
    dropper_.run(view_, *this);
  }

  // Step 10 of Fig. 4: the mapping heuristic runs after the dropper.
  mapper_.map_tasks(view_, *this);

  for (Machine& machine : machines_) start_next(machine);

  if (audit::due(audit_counter_)) audit_batch_coherence();
}

void Engine::audit_batch_coherence() const {
  // BatchQueue: forward iteration must visit exactly size() live entries,
  // every one an Unmapped task that arrived, and the expiry heap must hold
  // a (deadline, id) entry for each so the lazy reactive pass can never
  // miss an expiry. The heap may hold stale extras (lazy deletion), but
  // its backing store must still be a well-formed min-heap.
  std::size_t seen = 0;
  for (const TaskId id : batch_) {
    ++seen;
    if (!batch_.contains(id)) {
      audit::fail("batch iteration reached a non-live task " +
                  std::to_string(id));
    }
    const Task& task = tasks_[static_cast<std::size_t>(id)];
    if (task.state != TaskState::Unmapped) {
      audit::fail("batch task " + std::to_string(id) +
                  " is not in state Unmapped");
    }
    if (task.arrival > now_) {
      audit::fail("batch task " + std::to_string(id) +
                  " has not arrived yet");
    }
    if (!batch_expiry_.contains(task.deadline, id)) {
      audit::fail("batch task " + std::to_string(id) +
                  " has no expiry-heap entry — it could expire unnoticed");
    }
  }
  if (seen != batch_.size()) {
    audit::fail("batch size " + std::to_string(batch_.size()) +
                " disagrees with iteration count " + std::to_string(seen));
  }
  if (!batch_expiry_.is_heap()) {
    audit::fail("expiry heap lost the heap property");
  }
}

void Engine::start_next(Machine& machine) {
  while (machine.up && !machine.running && !machine.queue.empty()) {
    Task& task = tasks_[static_cast<std::size_t>(machine.queue.front())];
    if (now_ >= task.deadline) {
      // Could not start before its deadline: reactive drop (section IV-B).
      task.state = TaskState::DroppedReactive;
      task.drop_time = now_;
      on_terminal();
      machine.queue.pop_front();
      models_[static_cast<std::size_t>(machine.id)].invalidate_all();
      deadline_miss_pending_ = true;
      continue;
    }
    const PetMatrix& source =
        task.approximate && approx_pet_ ? *approx_pet_ : pet_;
    const Tick duration =
        source.sampler(task.type, machine.type).sample(exec_rng_);
    task.state = TaskState::Running;
    task.start_time = now_;
    task.actual_execution = duration;
    machine.running = true;
    machine.run_start = now_;
    machine.run_end = now_ + duration;
    ++machine.run_token;
    if (config_.condition_running || config_.failures.enabled) {
      // Conditioning makes the running PMF depend on `now`; failures can
      // leave a queue idle across a time gap, so the cached chain may be
      // rooted at an older base than run_start. Both need the rebuild.
      models_[static_cast<std::size_t>(machine.id)].invalidate_all();
    } else {
      // The cached chain stays valid bit for bit: the head starts at
      // run_start == now, so its running completion delta(run_start) (x)
      // exec equals the cached pending chain rooted at base = delta(now)
      // — the deadline truncation is vacuous because a head with now >=
      // deadline was reactively dropped above, and an up machine cannot
      // have sat non-running across a time step (start_next runs at the
      // end of every mapping event). Keeping the chain saves a full
      // queue-chain rebuild per task start — the engine's main
      // convolution source in steady state — while the revision bump
      // still schedules the droppers' re-examination exactly as the
      // rebuild used to (see CompletionModel::bump_revision).
      models_[static_cast<std::size_t>(machine.id)].bump_revision();
    }
    events_.push(machine.run_end, EventKind::TaskCompletion,
                 pack_completion(machine.id, machine.run_token));
  }
}

void Engine::assign_task(TaskId task_id, MachineId machine_id) {
  Machine& machine = machines_[static_cast<std::size_t>(machine_id)];
  Task& task = tasks_[static_cast<std::size_t>(task_id)];
  assert(task.state == TaskState::Unmapped);
  assert(machine.has_free_slot());
  assert(machine.up && "down machines accept no assignments");
  assert(batch_.contains(task_id) && "task must come from the batch queue");
  batch_.remove(task_id);
  task.state = TaskState::Queued;
  task.machine = machine_id;
  machine.enqueue(task_id);
  models_[static_cast<std::size_t>(machine_id)].invalidate_from(
      machine.queue.size() - 1);
}

void Engine::drop_queued_task(MachineId machine_id, std::size_t pos) {
  Machine& machine = machines_[static_cast<std::size_t>(machine_id)];
  assert(pos >= machine.first_pending_pos() && pos < machine.queue.size());
  Task& task = tasks_[static_cast<std::size_t>(machine.queue[pos])];
  assert(task.state == TaskState::Queued);
  task.state = TaskState::DroppedProactive;
  task.drop_time = now_;
  on_terminal();
  machine.remove_at(pos);
  models_[static_cast<std::size_t>(machine_id)].invalidate_from(pos);
}

void Engine::downgrade_task(MachineId machine_id, std::size_t pos) {
  Machine& machine = machines_[static_cast<std::size_t>(machine_id)];
  assert(pos >= machine.first_pending_pos() && pos < machine.queue.size());
  Task& task = tasks_[static_cast<std::size_t>(machine.queue[pos])];
  assert(task.state == TaskState::Queued);
  if (task.approximate) return;
  task.approximate = true;
  models_[static_cast<std::size_t>(machine_id)].invalidate_from(pos);
}

}  // namespace taskdrop
