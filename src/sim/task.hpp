#pragma once

#include <string_view>

#include "util/time_types.hpp"

namespace taskdrop {

/// Lifecycle of a task in the simulated HC system.
///
/// Tasks are independent, sequential, non-preemptible and carry individual
/// hard deadlines (section III). A task ends in exactly one of the four
/// terminal states.
enum class TaskState {
  Unmapped,          ///< in the batch queue, not yet assigned to a machine
  Queued,            ///< waiting in a machine queue
  Running,           ///< executing on a machine
  CompletedOnTime,   ///< finished strictly before its deadline (success)
  CompletedLate,     ///< started before but finished at/after its deadline
  DroppedReactive,   ///< discarded because it could not start before its
                     ///< deadline (reactive dropping, section IV-B)
  DroppedProactive,  ///< discarded ahead of time by a dropping mechanism
  LostToFailure,     ///< was executing when its machine failed (failure-
                     ///< injection extension; see EngineConfig::failures)
};

constexpr bool is_terminal(TaskState s) {
  return s == TaskState::CompletedOnTime || s == TaskState::CompletedLate ||
         s == TaskState::DroppedReactive || s == TaskState::DroppedProactive ||
         s == TaskState::LostToFailure;
}

std::string_view to_string(TaskState s);

/// One task instance flowing through the system.
struct Task {
  TaskId id = -1;
  TaskTypeId type = -1;
  Tick arrival = 0;
  Tick deadline = 0;  ///< hard individual deadline delta_i

  TaskState state = TaskState::Unmapped;
  /// Approximate-computing extension: when true the task runs (and is
  /// modelled) with the time-scaled approximate execution PMF and yields
  /// partial utility on success (see ApproxDropper).
  bool approximate = false;
  MachineId machine = -1;         ///< assigned machine, -1 while unmapped
  Tick start_time = kNeverTick;   ///< execution start
  Tick finish_time = kNeverTick;  ///< execution end (completions only)
  Tick drop_time = kNeverTick;    ///< drop instant (drops only)
  Tick actual_execution = 0;      ///< ground-truth duration, sampled at start

  bool succeeded() const { return state == TaskState::CompletedOnTime; }
};

inline std::string_view to_string(TaskState s) {
  switch (s) {
    case TaskState::Unmapped: return "unmapped";
    case TaskState::Queued: return "queued";
    case TaskState::Running: return "running";
    case TaskState::CompletedOnTime: return "completed_on_time";
    case TaskState::CompletedLate: return "completed_late";
    case TaskState::DroppedReactive: return "dropped_reactive";
    case TaskState::DroppedProactive: return "dropped_proactive";
    case TaskState::LostToFailure: return "lost_to_failure";
  }
  return "?";
}

}  // namespace taskdrop
