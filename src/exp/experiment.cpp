#include "exp/experiment.hpp"

#include <optional>
#include <stdexcept>

#include "cost/cost_model.hpp"
#include "util/thread_pool.hpp"

namespace taskdrop {

Scenario build_scenario(const ExperimentConfig& config) {
  return make_scenario(config.scenario, config.seed);
}

TrialMetrics run_trial(const ExperimentConfig& config,
                       const Scenario& scenario, const CostModel& cost_model,
                       std::size_t trial, ReplayLog* replay) {
  WorkloadConfig workload = config.workload;
  workload.seed = Rng::derive(config.seed, trial)();

  const Trace trace =
      generate_trace(scenario.pet, scenario.machine_count(), workload);

  auto mapper = make_mapper(config.mapper, config.candidate_window);
  auto dropper = make_dropper(config.dropper);

  EngineConfig engine_config;
  engine_config.queue_capacity = config.queue_capacity;
  engine_config.engagement = config.engagement;
  engine_config.condition_running = config.condition_running;
  engine_config.paranoid_invalidate = config.paranoid_invalidate;
  engine_config.exec_seed = Rng::derive(config.seed, 1000 + trial)();
  engine_config.failures = config.failures;
  engine_config.failures.seed = Rng::derive(config.seed, 2000 + trial)();
  engine_config.approx = config.approx;
  if (config.dropper.kind == DropperConfig::Kind::Approx) {
    engine_config.approx.enabled = true;
  }

  Engine engine(scenario.pet, scenario.profile.machine_types, *mapper,
                *dropper, engine_config);
  engine.set_replay_log(replay);
  const SimResult result = engine.run(trace);
  return compute_trial_metrics(result, cost_model, config.exclude_head,
                               config.exclude_tail,
                               engine_config.approx.utility_weight);
}

ExperimentResult summarize_trials(std::vector<TrialMetrics> trials) {
  ExperimentResult out;
  out.robustness = summarize(series(trials, &TrialMetrics::robustness_pct));
  out.utility = summarize(series(trials, &TrialMetrics::utility_pct));
  out.normalized_cost =
      summarize(series(trials, &TrialMetrics::normalized_cost));
  out.reactive_share =
      summarize(series(trials, &TrialMetrics::reactive_drop_share_pct));
  out.trials = std::move(trials);
  return out;
}

ExperimentResult run_experiment(const ExperimentConfig& config,
                                const Scenario* prebuilt) {
  if (config.trials < 1) {
    throw std::invalid_argument("experiment trials must be >= 1, got " +
                                std::to_string(config.trials));
  }
  std::optional<Scenario> local;
  const Scenario* scenario = prebuilt;
  // Validate the mapper/dropper names on the calling thread: an exception
  // escaping a pool worker would std::terminate instead of reaching the
  // caller's catch.
  make_mapper(config.mapper, config.candidate_window);
  make_dropper(config.dropper);

  if (scenario == nullptr) {
    local.emplace(build_scenario(config));
    scenario = &*local;
  }
  const CostModel cost_model(scenario->profile.cost_per_hour);

  std::vector<TrialMetrics> trials(static_cast<std::size_t>(config.trials));
  ThreadPool::parallel_for(trials.size(), [&](std::size_t trial) {
    trials[trial] = run_trial(config, *scenario, cost_model, trial);
  });

  return summarize_trials(std::move(trials));
}

}  // namespace taskdrop
