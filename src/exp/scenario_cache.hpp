#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "workload/scenario.hpp"

namespace taskdrop {

/// Shares materialised scenarios across a sweep. A Scenario depends only on
/// (kind, seed) — the PET matrix is frozen at build time — so every cell of
/// a grid with the same pair can read one instance concurrently. Building
/// the SpecHC PET is the expensive part (12 x 8 histogram fits), which is
/// why the per-figure binaries always prebuilt a single scenario; the cache
/// generalises that to arbitrary grids. Thread-safe.
class ScenarioCache {
 public:
  /// Returns the cached scenario for (kind, seed), building it on first
  /// use. The returned pointer stays valid for the caller's lifetime even
  /// if the cache is cleared.
  std::shared_ptr<const Scenario> get(ScenarioKind kind, std::uint64_t seed);

  std::size_t size() const;
  void clear();

 private:
  using Key = std::pair<ScenarioKind, std::uint64_t>;

  mutable std::mutex mutex_;
  std::map<Key, std::shared_ptr<const Scenario>> cache_;
};

}  // namespace taskdrop
