#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "metrics/aggregate.hpp"
#include "sched/registry.hpp"
#include "sim/engine.hpp"
#include "workload/generator.hpp"
#include "workload/scenario.hpp"

namespace taskdrop {

/// Declarative description of one experimental configuration: a scenario,
/// a mapper+dropper pair, a workload level and a trial count. This is the
/// unit every figure of section V sweeps over.
struct ExperimentConfig {
  ScenarioKind scenario = ScenarioKind::SpecHC;
  std::string mapper = "PAM";
  DropperConfig dropper = DropperConfig::heuristic();
  DropperEngagement engagement = DropperEngagement::EveryMappingEvent;
  bool condition_running = false;
  /// Forces the conservative invalidate-and-rebuild completion-model paths
  /// instead of the chain-keeping fast paths. Decision-neutral by
  /// construction — exists for bitwise A/B regression tests and the macro
  /// benchmarks that quantify what the keeps buy.
  bool paranoid_invalidate = false;

  WorkloadConfig workload;
  int queue_capacity = 6;
  /// Failure-injection extension (off by default).
  FailureModel failures;
  /// Approximate-computing extension. Enabled automatically when the
  /// dropper kind is Approx; can also be enabled standalone.
  ApproxModel approx;
  int trials = 8;
  std::uint64_t seed = 42;
  /// Warm-up/cool-down exclusion (section V-A: first and last 100 tasks).
  int exclude_head = 100;
  int exclude_tail = 100;
  int candidate_window = 256;
};

struct ExperimentResult {
  std::vector<TrialMetrics> trials;
  Summary robustness;       ///< % tasks completed on time
  Summary utility;          ///< approx-weighted robustness (== robustness
                            ///< when the approx extension is off)
  Summary normalized_cost;  ///< Fig. 9 metric
  Summary reactive_share;   ///< % of queue drops that were reactive
};

/// Runs all trials of one configuration, in parallel across hardware
/// threads. Trial i uses workload seed derive(seed, i) and execution seed
/// derive(seed, 1000 + i); results are bitwise reproducible for a fixed
/// toolchain regardless of thread scheduling. Throws std::invalid_argument
/// for trials < 1 and for unknown mapper/dropper names.
///
/// `prebuilt` lets a sweep share one Scenario (the PET matrix depends only
/// on (scenario, seed), so figures build it once).
ExperimentResult run_experiment(const ExperimentConfig& config,
                                const Scenario* prebuilt = nullptr);

/// One trial of `config` against a prebuilt scenario — the kernel shared by
/// run_experiment and the SweepRunner, so a sweep cell and a standalone
/// run_experiment on the same config are bitwise-identical by construction.
/// `cost_model` must be built from `scenario.profile.cost_per_hour`.
/// When `replay` is non-null the trial's full environment trace and
/// decision stream are recorded into it (see Engine::set_replay_log) — the
/// differential replay suite records paper-config trials this way.
TrialMetrics run_trial(const ExperimentConfig& config,
                       const Scenario& scenario, const CostModel& cost_model,
                       std::size_t trial, ReplayLog* replay = nullptr);

/// Reduces per-trial metrics into the summaries of ExperimentResult.
ExperimentResult summarize_trials(std::vector<TrialMetrics> trials);

/// The scenario a config would build (for sharing across a sweep).
Scenario build_scenario(const ExperimentConfig& config);

}  // namespace taskdrop
