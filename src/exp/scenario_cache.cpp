#include "exp/scenario_cache.hpp"

namespace taskdrop {

std::shared_ptr<const Scenario> ScenarioCache::get(ScenarioKind kind,
                                                   std::uint64_t seed) {
  const Key key{kind, seed};
  {
    std::lock_guard lock(mutex_);
    if (const auto it = cache_.find(key); it != cache_.end()) {
      return it->second;
    }
  }
  // Build outside the lock: PET construction is the slow path and two
  // threads racing on the same key both produce the identical scenario
  // (make_scenario is deterministic in (kind, seed)), so last-writer-wins
  // insertion below is benign.
  auto built = std::make_shared<const Scenario>(make_scenario(kind, seed));
  std::lock_guard lock(mutex_);
  const auto [it, inserted] = cache_.emplace(key, std::move(built));
  return it->second;
}

std::size_t ScenarioCache::size() const {
  std::lock_guard lock(mutex_);
  return cache_.size();
}

void ScenarioCache::clear() {
  std::lock_guard lock(mutex_);
  cache_.clear();
}

}  // namespace taskdrop
