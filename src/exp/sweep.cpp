#include "exp/sweep.hpp"

#include <atomic>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "cost/cost_model.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "workload/scenario_registry.hpp"

namespace taskdrop {
namespace {

/// Shortest round-trippable rendering ("4", "2.5", "0.55") — the util
/// formatter, so from_map(to_map()) is a fixpoint for any finite double.
std::string format_number(double value) { return format_double(value); }

// Whole-string parses shared with the dropper registry (util/spec_parser),
// prefixed with the sweep key for the error message.
int parse_int(const std::string& key, const std::string& value) {
  return parse_spec_int("sweep key " + key, value);
}

std::uint64_t parse_u64(const std::string& key, const std::string& value) {
  return parse_spec_u64("sweep key " + key, value);
}

double parse_double(const std::string& key, const std::string& value) {
  return parse_spec_double("sweep key " + key, value);
}

bool parse_bool(const std::string& key, const std::string& value) {
  return parse_spec_bool("sweep key " + key, value);
}

/// The one value of a single-valued key, or fallback when absent.
std::string single(const SpecMap& map, const std::string& key,
                   const std::string& fallback) {
  const auto it = map.find(key);
  if (it == map.end()) return fallback;
  if (it->second.size() != 1) {
    throw std::invalid_argument("sweep key " + key +
                                " expects a single value, got " +
                                std::to_string(it->second.size()));
  }
  return it->second.front();
}

std::vector<std::string> list_or(const SpecMap& map, const std::string& key,
                                 std::vector<std::string> fallback) {
  const auto it = map.find(key);
  return it == map.end() ? std::move(fallback) : it->second;
}

/// "label:tasks:oversub" (label optional: "tasks:oversub").
SweepLevel parse_level(const std::string& text) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (;;) {
    const auto colon = text.find(':', start);
    parts.push_back(colon == std::string::npos
                        ? text.substr(start)
                        : text.substr(start, colon - start));
    if (colon == std::string::npos) break;
    start = colon + 1;
  }
  SweepLevel level;
  if (parts.size() == 3) {
    level.label = parts[0];
    level.n_tasks = parse_int("levels", parts[1]);
    level.oversubscription = parse_double("levels", parts[2]);
  } else if (parts.size() == 2) {
    level.n_tasks = parse_int("levels", parts[0]);
    level.oversubscription = parse_double("levels", parts[1]);
    level.label = parts[0] + "@" + parts[1];
  } else if (parts.size() > 3) {
    // A label containing ':' is indistinguishable from extra fields, so it
    // is rejected outright instead of guessing which colon splits the
    // label (validate() enforces the same rule on hand-built specs).
    throw std::invalid_argument(
        "sweep key levels: expected [label:]tasks:oversub, got '" + text +
        "' (labels must not contain ':')");
  } else {
    throw std::invalid_argument(
        "sweep key levels: expected [label:]tasks:oversub, got '" + text +
        "'");
  }
  return level;
}

std::vector<SweepLevel> levels_from_map(const SpecMap& map) {
  if (map.count("levels") != 0) {
    // One levels axis, two spellings: mixing them would make one silently
    // win, so reject the combination (the CLI resolves an inline override
    // by dropping the other spelling before calling from_map).
    if (map.count("tasks") != 0 || map.count("oversub") != 0) {
      throw std::invalid_argument(
          "sweep keys levels and tasks/oversub both given — they describe "
          "the same axis; use one spelling");
    }
    std::vector<SweepLevel> levels;
    for (const std::string& entry : map.at("levels")) {
      levels.push_back(parse_level(entry));
    }
    return levels;
  }
  // Zipped tasks/oversub lists; a singleton broadcasts over the other.
  const auto& tasks = list_or(map, "tasks", {"3000"});
  const auto& oversubs = list_or(map, "oversub", {"3.0"});
  const std::size_t count = std::max(tasks.size(), oversubs.size());
  if ((tasks.size() != count && tasks.size() != 1) ||
      (oversubs.size() != count && oversubs.size() != 1)) {
    throw std::invalid_argument(
        "sweep keys tasks/oversub: lists must match in length (or be "
        "single) — got " +
        std::to_string(tasks.size()) + " vs " +
        std::to_string(oversubs.size()));
  }
  std::vector<SweepLevel> levels;
  for (std::size_t i = 0; i < count; ++i) {
    const std::string& task_text = tasks[tasks.size() == 1 ? 0 : i];
    const std::string& oversub_text = oversubs[oversubs.size() == 1 ? 0 : i];
    levels.push_back({task_text + "@" + oversub_text,
                      parse_int("tasks", task_text),
                      parse_double("oversub", oversub_text)});
  }
  return levels;
}

std::vector<DropperVariant> droppers_from_map(const SpecMap& map) {
  const auto& names = list_or(map, "dropper", {"heuristic"});
  const auto& etas = list_or(map, "eta", {"2"});
  const auto& betas = list_or(map, "beta", {"1"});
  const auto& thresholds = list_or(map, "threshold", {"0.5"});
  const std::string adaptive = single(map, "adaptive", "1");

  std::vector<DropperVariant> variants;
  for (const std::string& name : names) {
    // Cross each name with the grids that tune its kind only, so `eta`
    // lists do not multiply the threshold baseline (and vice versa).
    const DropperConfig::Kind kind = DropperConfig::from_spec(name).kind;
    if (kind == DropperConfig::Kind::Heuristic ||
        kind == DropperConfig::Kind::Approx) {
      for (const std::string& eta : etas) {
        for (const std::string& beta : betas) {
          std::string label = name;
          if (etas.size() > 1) label += " eta=" + eta;
          if (betas.size() > 1) label += " beta=" + beta;
          variants.push_back({std::move(label),
                              DropperConfig::from_spec(
                                  name, {{"eta", eta}, {"beta", beta}})});
        }
      }
    } else if (kind == DropperConfig::Kind::Threshold) {
      for (const std::string& threshold : thresholds) {
        std::string label = name;
        if (thresholds.size() > 1) label += " threshold=" + threshold;
        variants.push_back(
            {std::move(label),
             DropperConfig::from_spec(name, {{"threshold", threshold},
                                             {"adaptive", adaptive}})});
      }
    } else {
      variants.push_back({name, DropperConfig::from_spec(name)});
    }
  }
  return variants;
}

std::vector<FailureVariant> failures_from_map(const SpecMap& map) {
  if (map.count("mtbf") == 0) {
    if (map.count("mttr") != 0) {
      throw std::invalid_argument(
          "sweep key mttr given without mtbf — failure injection needs the "
          "mtbf axis (0 disables it)");
    }
    return {{"off", FailureModel{}}};
  }
  const double mttr = parse_double("mttr", single(map, "mttr", "3000"));
  std::vector<FailureVariant> variants;
  for (const std::string& text : map.at("mtbf")) {
    const double mtbf = parse_double("mtbf", text);
    FailureModel model;
    if (mtbf > 0.0) {
      model.enabled = true;
      model.mean_time_between_failures = mtbf;
      model.mean_time_to_repair = mttr;
    }
    variants.push_back({mtbf > 0.0 ? "mtbf=" + text : "off", model});
  }
  return variants;
}

bool known_key(const std::string& key) {
  for (const std::string& known : sweep_spec_keys()) {
    if (key == known) return true;
  }
  return false;
}

}  // namespace

const std::vector<std::string>& sweep_spec_keys() {
  static const std::vector<std::string> keys = {
      "name",       "scenario",   "mapper",
      "dropper",    "eta",        "beta",
      "threshold",  "adaptive",   "levels",
      "tasks",      "oversub",    "gamma",
      "capacity",   "engagement", "conditioning",
      "mtbf",       "mttr",       "pattern",
      "approx",     "approx_time_factor", "approx_utility_weight",
      "trials",     "seed",       "exclude_head",
      "exclude_tail", "candidate_window"};
  return keys;
}

DropperEngagement engagement_from_name(const std::string& name) {
  if (name == "every-event") return DropperEngagement::EveryMappingEvent;
  if (name == "on-deadline-miss") return DropperEngagement::OnDeadlineMiss;
  throw std::invalid_argument(
      "unknown engagement: " + name +
      " (available: every-event, on-deadline-miss)");
}

std::string_view engagement_name(DropperEngagement engagement) {
  return engagement == DropperEngagement::EveryMappingEvent
             ? "every-event"
             : "on-deadline-miss";
}

std::size_t SweepSpec::cell_count() const {
  const std::size_t pairs =
      series.empty() ? mappers.size() * droppers.size() : series.size();
  return scenarios.size() * levels.size() * pairs * gammas.size() *
         queue_capacities.size() * engagements.size() * conditioning.size() *
         failures.size();
}

void SweepSpec::validate() const {
  const auto require = [](bool ok, const std::string& message) {
    if (!ok) throw std::invalid_argument("sweep spec: " + message);
  };
  require(trials >= 1, "trials must be >= 1, got " + std::to_string(trials));
  require(!scenarios.empty(), "scenario axis is empty");
  require(!levels.empty(), "levels axis is empty");
  require(!gammas.empty(), "gamma axis is empty");
  require(!queue_capacities.empty(), "capacity axis is empty");
  require(!engagements.empty(), "engagement axis is empty");
  require(!conditioning.empty(), "conditioning axis is empty");
  require(!failures.empty(), "failures axis is empty");
  if (series.empty()) {
    require(!mappers.empty(), "mapper axis is empty");
    require(!droppers.empty(), "dropper axis is empty");
  }
  for (const SweepLevel& level : levels) {
    require(level.n_tasks >= 1,
            "level " + level.label + ": n_tasks must be >= 1");
    require(level.oversubscription > 0.0,
            "level " + level.label + ": oversubscription must be > 0");
    // ':' is the levels-entry field separator, so a label containing it
    // would render a to_map() entry parse_level cannot read back.
    require(level.label.find(':') == std::string::npos,
            "level label '" + level.label + "' must not contain ':'");
  }
  for (const int capacity : queue_capacities) {
    require(capacity >= 1, "queue capacity must be >= 1, got " +
                               std::to_string(capacity));
  }
  require(exclude_head >= 0 && exclude_tail >= 0,
          "exclusion windows must be >= 0");
  require(candidate_window >= 1, "candidate_window must be >= 1");
  // Registry-check every mapper up front so the error carries the
  // available set and no pool worker can throw mid-sweep.
  if (series.empty()) {
    for (const std::string& mapper : mappers) make_mapper(mapper);
  } else {
    for (const SeriesVariant& variant : series) make_mapper(variant.mapper);
  }
}

SweepSpec SweepSpec::from_map(const SpecMap& map) {
  for (const auto& [key, values] : map) {
    if (!known_key(key)) {
      throw std::invalid_argument("unknown sweep key: " + key + " (known: " +
                                  join_spec_list(sweep_spec_keys()) + ")");
    }
  }
  SweepSpec spec;
  spec.name = single(map, "name", spec.name);

  spec.scenarios.clear();
  for (const std::string& name : list_or(map, "scenario", {"spec_hc"})) {
    spec.scenarios.push_back(scenario_from_name(name));
  }
  spec.levels = levels_from_map(map);
  spec.mappers = list_or(map, "mapper", {"PAM"});
  spec.droppers = droppers_from_map(map);
  spec.gammas.clear();
  for (const std::string& text : list_or(map, "gamma", {"4"})) {
    spec.gammas.push_back(parse_double("gamma", text));
  }
  spec.queue_capacities.clear();
  for (const std::string& text : list_or(map, "capacity", {"6"})) {
    spec.queue_capacities.push_back(parse_int("capacity", text));
  }
  spec.engagements.clear();
  for (const std::string& name :
       list_or(map, "engagement", {"every-event"})) {
    spec.engagements.push_back(engagement_from_name(name));
  }
  spec.conditioning.clear();
  for (const std::string& text : list_or(map, "conditioning", {"0"})) {
    spec.conditioning.push_back(parse_bool("conditioning", text));
  }
  spec.failures = failures_from_map(map);

  const std::string pattern = single(map, "pattern", "poisson");
  if (pattern == "poisson") {
    spec.pattern = ArrivalPattern::Poisson;
  } else if (pattern == "bursty") {
    spec.pattern = ArrivalPattern::Bursty;
  } else {
    throw std::invalid_argument("unknown arrival pattern: " + pattern +
                                " (available: poisson, bursty)");
  }
  spec.approx.enabled = parse_bool("approx", single(map, "approx", "0"));
  spec.approx.time_factor = parse_double(
      "approx_time_factor",
      single(map, "approx_time_factor", format_number(spec.approx.time_factor)));
  spec.approx.utility_weight =
      parse_double("approx_utility_weight",
                   single(map, "approx_utility_weight",
                          format_number(spec.approx.utility_weight)));
  spec.trials = parse_int("trials", single(map, "trials", "8"));
  spec.seed = parse_u64("seed", single(map, "seed", "42"));
  spec.exclude_head =
      parse_int("exclude_head", single(map, "exclude_head", "100"));
  spec.exclude_tail =
      parse_int("exclude_tail", single(map, "exclude_tail", "100"));
  spec.candidate_window =
      parse_int("candidate_window", single(map, "candidate_window", "256"));
  spec.validate();
  return spec;
}

SpecMap SweepSpec::to_map() const {
  SpecMap map;
  const auto push_unique = [](std::vector<std::string>& values,
                              const std::string& value) {
    for (const std::string& existing : values) {
      if (existing == value) return;
    }
    values.push_back(value);
  };

  map["name"] = {name};
  for (const ScenarioKind kind : scenarios) {
    map["scenario"].push_back(std::string(to_string(kind)));
  }
  for (const SweepLevel& level : levels) {
    map["levels"].push_back(level.label + ":" + std::to_string(level.n_tasks) +
                            ":" + format_number(level.oversubscription));
  }
  map["mapper"] = mappers;
  for (const DropperVariant& variant : droppers) {
    push_unique(map["dropper"], variant.config.name());
    const DropperConfig::Kind kind = variant.config.kind;
    if (kind == DropperConfig::Kind::Heuristic ||
        kind == DropperConfig::Kind::Approx) {
      push_unique(map["eta"], std::to_string(variant.config.effective_depth));
      push_unique(map["beta"], format_number(variant.config.beta));
    } else if (kind == DropperConfig::Kind::Threshold) {
      push_unique(map["threshold"],
                  format_number(variant.config.base_threshold));
      map["adaptive"] = {variant.config.adaptive_threshold ? "1" : "0"};
    }
  }
  for (const double gamma : gammas) {
    map["gamma"].push_back(format_number(gamma));
  }
  for (const int capacity : queue_capacities) {
    map["capacity"].push_back(std::to_string(capacity));
  }
  for (const DropperEngagement engagement : engagements) {
    map["engagement"].push_back(std::string(engagement_name(engagement)));
  }
  for (const bool conditioned : conditioning) {
    map["conditioning"].push_back(conditioned ? "1" : "0");
  }
  bool any_failures = false;
  for (const FailureVariant& variant : failures) {
    any_failures = any_failures || variant.model.enabled;
  }
  if (any_failures || failures.size() > 1) {
    for (const FailureVariant& variant : failures) {
      map["mtbf"].push_back(
          variant.model.enabled
              ? format_number(variant.model.mean_time_between_failures)
              : "0");
      if (variant.model.enabled) {
        map["mttr"] = {format_number(variant.model.mean_time_to_repair)};
      }
    }
  }
  if (pattern == ArrivalPattern::Bursty) map["pattern"] = {"bursty"};
  if (approx.enabled) map["approx"] = {"1"};
  // Non-default approx tuning must render too, or a sharded spec would
  // re-expand at merge time with different engine parameters.
  const ApproxModel approx_defaults;
  if (approx.time_factor != approx_defaults.time_factor) {
    map["approx_time_factor"] = {format_number(approx.time_factor)};
  }
  if (approx.utility_weight != approx_defaults.utility_weight) {
    map["approx_utility_weight"] = {format_number(approx.utility_weight)};
  }
  map["trials"] = {std::to_string(trials)};
  map["seed"] = {std::to_string(seed)};
  map["exclude_head"] = {std::to_string(exclude_head)};
  map["exclude_tail"] = {std::to_string(exclude_tail)};
  map["candidate_window"] = {std::to_string(candidate_window)};
  return map;
}

std::vector<SweepCell> expand(const SweepSpec& spec) {
  // Materialised (mapper, dropper) pairs: the cross product, or the
  // explicit series list when given.
  std::vector<SeriesVariant> pairs;
  if (spec.series.empty()) {
    for (const std::string& mapper : spec.mappers) {
      for (const DropperVariant& dropper : spec.droppers) {
        pairs.push_back({dropper.label, mapper, dropper.config});
      }
    }
  } else {
    pairs = spec.series;
  }

  std::vector<SweepCell> cells;
  cells.reserve(spec.cell_count());
  for (const ScenarioKind scenario : spec.scenarios) {
    for (const SweepLevel& level : spec.levels) {
      for (const SeriesVariant& pair : pairs) {
        for (const double gamma : spec.gammas) {
          for (const int capacity : spec.queue_capacities) {
            for (const DropperEngagement engagement : spec.engagements) {
              for (const bool conditioned : spec.conditioning) {
                for (const FailureVariant& failure : spec.failures) {
                  SweepCell cell;
                  cell.point.scenario = std::string(to_string(scenario));
                  cell.point.level = level.label;
                  cell.point.mapper = pair.mapper;
                  cell.point.dropper = pair.label;
                  cell.point.gamma = format_number(gamma);
                  cell.point.capacity = std::to_string(capacity);
                  cell.point.engagement =
                      std::string(engagement_name(engagement));
                  cell.point.conditioning =
                      conditioned ? "conditioned" : "unconditioned";
                  cell.point.failures = failure.label;

                  ExperimentConfig& config = cell.config;
                  config.scenario = scenario;
                  config.mapper = pair.mapper;
                  config.dropper = pair.dropper;
                  config.engagement = engagement;
                  config.condition_running = conditioned;
                  config.workload.n_tasks = level.n_tasks;
                  config.workload.oversubscription = level.oversubscription;
                  config.workload.gamma = gamma;
                  config.workload.pattern = spec.pattern;
                  config.queue_capacity = capacity;
                  config.failures = failure.model;
                  config.approx = spec.approx;
                  config.trials = spec.trials;
                  config.seed = spec.seed;
                  config.exclude_head = spec.exclude_head;
                  config.exclude_tail = spec.exclude_tail;
                  config.candidate_window = spec.candidate_window;
                  cells.push_back(std::move(cell));
                }
              }
            }
          }
        }
      }
    }
  }
  return cells;
}

std::vector<std::string> active_axes_of(const SweepSpec& spec) {
  std::vector<std::string> axes;
  if (spec.scenarios.size() > 1) axes.push_back("scenario");
  if (spec.levels.size() > 1) axes.push_back("level");
  if (spec.series.empty() ? spec.mappers.size() > 1 : false) {
    axes.push_back("mapper");
  }
  if ((spec.series.empty() ? spec.droppers.size() : spec.series.size()) > 1) {
    axes.push_back("dropper");
  }
  if (spec.gammas.size() > 1) axes.push_back("gamma");
  if (spec.queue_capacities.size() > 1) axes.push_back("capacity");
  if (spec.engagements.size() > 1) axes.push_back("engagement");
  if (spec.conditioning.size() > 1) axes.push_back("conditioning");
  if (spec.failures.size() > 1) axes.push_back("failures");
  if (axes.empty()) axes = {"scenario", "mapper", "dropper"};
  return axes;
}

namespace {

bool same_point(const SweepPoint& a, const SweepPoint& b) {
  return a.scenario == b.scenario && a.level == b.level &&
         a.mapper == b.mapper && a.dropper == b.dropper &&
         a.gamma == b.gamma && a.capacity == b.capacity &&
         a.engagement == b.engagement && a.conditioning == b.conditioning &&
         a.failures == b.failures;
}

bool same_config(const ExperimentConfig& a, const ExperimentConfig& b) {
  return a.scenario == b.scenario && a.mapper == b.mapper &&
         a.dropper.kind == b.dropper.kind &&
         a.dropper.effective_depth == b.dropper.effective_depth &&
         a.dropper.beta == b.dropper.beta &&
         a.dropper.base_threshold == b.dropper.base_threshold &&
         a.dropper.adaptive_threshold == b.dropper.adaptive_threshold &&
         a.engagement == b.engagement &&
         a.condition_running == b.condition_running &&
         a.workload.n_tasks == b.workload.n_tasks &&
         a.workload.oversubscription == b.workload.oversubscription &&
         a.workload.gamma == b.workload.gamma &&
         a.workload.pattern == b.workload.pattern &&
         a.queue_capacity == b.queue_capacity &&
         a.failures.enabled == b.failures.enabled &&
         a.failures.mean_time_between_failures ==
             b.failures.mean_time_between_failures &&
         a.failures.mean_time_to_repair == b.failures.mean_time_to_repair &&
         a.approx.enabled == b.approx.enabled &&
         a.approx.time_factor == b.approx.time_factor &&
         a.approx.utility_weight == b.approx.utility_weight &&
         a.trials == b.trials && a.seed == b.seed &&
         a.exclude_head == b.exclude_head &&
         a.exclude_tail == b.exclude_tail &&
         a.candidate_window == b.candidate_window;
}

}  // namespace

void ShardSpec::validate() const {
  if (count < 1) {
    throw std::invalid_argument("shard count must be >= 1, got " +
                                std::to_string(count));
  }
  if (index < 0 || index >= count) {
    throw std::invalid_argument("shard index must be in [0, " +
                                std::to_string(count) + "), got " +
                                std::to_string(index));
  }
}

void SweepLeaseRange::validate() const {
  if (id < 0) {
    throw std::invalid_argument("lease id must be >= 0, got " +
                                std::to_string(id));
  }
  if (begin >= end) {
    throw std::invalid_argument(
        "lease range must be non-empty, got [" + std::to_string(begin) +
        ", " + std::to_string(end) + ")");
  }
}

SpecMap canonical_spec_map(const SweepSpec& spec) {
  // A shard/lease report is only mergeable if re-expanding its spec header
  // reproduces this grid exactly — cell for cell, since the merge
  // attributes trial payloads by cell index. A map-level fixpoint check
  // is not enough: a hand-built dropper variant list can render to a
  // grid of the same keys and size whose re-expansion *orders* cells
  // differently. Demand identity up front instead of corrupting the
  // merge silently.
  if (!spec.series.empty()) {
    throw std::invalid_argument(
        "sharded sweeps need a grid spec: series lists have no to_map "
        "rendering for the shard header");
  }
  SpecMap map = spec.to_map();
  const std::vector<SweepCell> cells = expand(spec);
  const SweepSpec reparsed = SweepSpec::from_map(map);
  const std::vector<SweepCell> recells =
      reparsed.to_map() == map ? expand(reparsed) : std::vector<SweepCell>{};
  bool canonical = recells.size() == cells.size();
  for (std::size_t c = 0; canonical && c < cells.size(); ++c) {
    canonical = same_point(cells[c].point, recells[c].point) &&
                same_config(cells[c].config, recells[c].config);
  }
  if (!canonical) {
    throw std::invalid_argument(
        "sharded sweeps need a canonical spec: from_map(to_map()) does "
        "not reproduce this grid cell for cell (hand-built dropper "
        "variant lists that do not form an ordered grid re-expand "
        "differently)");
  }
  return map;
}

SweepReport run_sweep(const SweepSpec& spec, const SweepOptions& options) {
  spec.validate();
  if (options.shard && options.lease) {
    throw std::invalid_argument(
        "run_sweep: shard and lease options are mutually exclusive");
  }
  const ShardSpec shard = options.shard.value_or(ShardSpec{});
  shard.validate();

  SweepReport report;
  report.name = spec.name;
  report.active_axes = active_axes_of(spec);
  const std::vector<SweepCell> cells = expand(spec);
  if (options.shard || options.lease) {
    report.spec_map = canonical_spec_map(spec);
    if (options.shard) report.shard = shard;
  }
  if (options.lease) {
    options.lease->validate();
    const std::size_t units =
        cells.size() * static_cast<std::size_t>(spec.trials);
    if (options.lease->end > units) {
      throw std::invalid_argument(
          "lease range [" + std::to_string(options.lease->begin) + ", " +
          std::to_string(options.lease->end) + ") exceeds the grid's " +
          std::to_string(units) + " units");
    }
    report.lease = options.lease;
  }
  // Unit ownership under the engaged partition (everything when plain).
  const auto owns = [&](std::size_t unit) {
    if (options.lease) return lease_owns(*options.lease, unit);
    return shard_owns(shard, unit);
  };

  report.cells.resize(cells.size());

  ScenarioCache local_cache;
  ScenarioCache& cache = options.cache != nullptr ? *options.cache : local_cache;

  // Per-cell execution state. Scenarios are prefetched sequentially so the
  // grid shares each (kind, seed) build instead of racing on it. `owned`
  // lists this shard's trial indices for the cell (all of them when
  // unsharded); trials are keyed by that original index so shard results
  // reunite into the unsharded trial order.
  struct CellState {
    std::shared_ptr<const Scenario> scenario;
    std::unique_ptr<CostModel> cost_model;
    std::vector<int> owned;
    std::vector<TrialMetrics> trials;
    std::atomic<int> remaining{0};
  };
  std::vector<CellState> states(cells.size());
  std::size_t touched_cells = 0;
  for (std::size_t c = 0; c < cells.size(); ++c) {
    for (int t = 0; t < spec.trials; ++t) {
      if (owns(sweep_unit(c, t, spec.trials))) {
        states[c].owned.push_back(t);
      }
    }
    if (states[c].owned.empty()) {
      report.cells[c].point = cells[c].point;
      report.cells[c].config = cells[c].config;
      continue;
    }
    ++touched_cells;
    states[c].scenario = cache.get(cells[c].config.scenario,
                                   cells[c].config.seed);
    states[c].cost_model = std::make_unique<CostModel>(
        states[c].scenario->profile.cost_per_hour);
    states[c].trials.resize(states[c].owned.size());
    states[c].remaining.store(static_cast<int>(states[c].owned.size()),
                              std::memory_order_relaxed);
    report.cells[c].point = cells[c].point;
    report.cells[c].config = cells[c].config;
  }

  std::mutex progress_mutex;
  std::size_t done = 0;

  // First-exception capture: a throwing trial (bad dropper parameters, a
  // model-layer invalid_argument) must not std::terminate the pool. Later
  // units are skipped once a unit has failed; the report is abandoned and
  // the exception rethrown after the pool drains.
  JobErrorCollector errors;

  ThreadPool pool(options.threads);
  for (std::size_t c = 0; c < cells.size(); ++c) {
    for (std::size_t o = 0; o < states[c].owned.size(); ++o) {
      pool.submit([&, c, o] {
        errors.run([&] {
          CellState& state = states[c];
          const int t = state.owned[o];
          state.trials[o] =
              run_trial(report.cells[c].config, *state.scenario,
                        *state.cost_model, static_cast<std::size_t>(t));
          if (state.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            // Last owned trial of this cell: reduce and stream it.
            report.cells[c].result = summarize_trials(std::move(state.trials));
            report.cells[c].trial_indices = state.owned;
            std::lock_guard lock(progress_mutex);
            ++done;
            if (options.on_cell) {
              options.on_cell(report.cells[c], done, touched_cells);
            }
          }
        });
      });
    }
  }
  pool.wait_idle();
  errors.rethrow_if_failed();
  return report;
}

const SweepCellResult* find_cell(
    const SweepReport& report,
    const std::function<bool(const SweepCellResult&)>& pred) {
  for (const SweepCellResult& cell : report.cells) {
    if (pred(cell)) return &cell;
  }
  return nullptr;
}

const std::string& axis_label(const SweepPoint& point,
                              const std::string& axis) {
  if (axis == "scenario") return point.scenario;
  if (axis == "level") return point.level;
  if (axis == "mapper") return point.mapper;
  if (axis == "dropper") return point.dropper;
  if (axis == "gamma") return point.gamma;
  if (axis == "capacity") return point.capacity;
  if (axis == "engagement") return point.engagement;
  if (axis == "conditioning") return point.conditioning;
  if (axis == "failures") return point.failures;
  throw std::invalid_argument("unknown sweep axis: " + axis);
}

const SweepCellResult& cell_at(
    const SweepReport& report,
    std::initializer_list<std::pair<const char*, std::string>> where) {
  const SweepCellResult* found = find_cell(report, [&](const auto& cell) {
    for (const auto& [axis, label] : where) {
      if (axis_label(cell.point, axis) != label) return false;
    }
    return true;
  });
  if (found == nullptr) {
    std::string description;
    for (const auto& [axis, label] : where) {
      if (!description.empty()) description += ", ";
      description += std::string(axis) + "=" + label;
    }
    throw std::out_of_range("sweep cell not found: " + description);
  }
  return *found;
}

}  // namespace taskdrop
