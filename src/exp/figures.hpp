#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/flags.hpp"
#include "util/table.hpp"

namespace taskdrop {

/// Scale of a figure regeneration run. The paper uses 30 trials of
/// 20k/30k/40k tasks; the default here divides task counts by 10 and uses
/// 8 trials so every bench binary finishes in about a minute, preserving
/// the oversubscription ratios that drive all reported effects (DESIGN.md
/// section 6). `--full` (or REPRO_FULL=1) restores paper scale; `--trials`
/// and `--divisor` override individually.
struct FigureScale {
  int tasks_divisor = 10;
  int trials = 8;
  std::uint64_t seed = 42;

  /// Throws std::invalid_argument when --trials < 1 or --divisor < 1, so a
  /// bad flag fails up front instead of as a downstream division or an
  /// empty summary.
  static FigureScale from_flags(const Flags& flags);
};

/// One oversubscription level of the evaluation (section V-A).
struct OversubLevel {
  std::string label;       ///< "20k" / "30k" / "40k" (paper-scale naming)
  int n_tasks;             ///< actual task count after scaling
  double oversubscription; ///< arrival rate / service capacity
};

/// The paper's three levels, scaled.
std::vector<OversubLevel> oversubscription_levels(const FigureScale& scale);

// --- Figure regenerators (section V). Each declares its grid as a
// SweepSpec against exp/sweep.hpp and returns the paper's series as a
// table of robustness (or cost) mean +/- 95 % CI over trials.

/// Fig. 5: effective depth eta in {1..5} x three levels, PAM + Heuristic.
Table fig5_effective_depth(const FigureScale& scale);

/// Fig. 6: robustness improvement factor beta in {1.0..4.0 step 0.5} x
/// three levels, PAM + Heuristic.
Table fig6_beta(const FigureScale& scale);

/// Fig. 7a: {MSD, MM, PAM} x {+Heuristic, +ReactDrop} on the heterogeneous
/// system at the 30k level.
Table fig7a_hetero_mappers(const FigureScale& scale);

/// Fig. 7b: {FCFS, EDF, SJF, PAM} x {+Heuristic, +ReactDrop} on the
/// homogeneous system at the 30k level.
Table fig7b_homog_mappers(const FigureScale& scale);

/// Fig. 8: {PAM+Optimal, PAM+Heuristic, PAM+Threshold} x three levels,
/// plus section V-F's reactive-drop share for PAM+Heuristic.
Table fig8_dropping_variants(const FigureScale& scale);

/// Fig. 9: normalised incurred cost for {PAM+Threshold, PAM+Heuristic,
/// MM+ReactDrop} x three levels.
Table fig9_cost(const FigureScale& scale);

/// Fig. 10: video-transcoding validation — {MSD, MM, PAM} x {+Heuristic,
/// +ReactDrop} at a moderate oversubscription level.
Table fig10_video(const FigureScale& scale);

// --- Ablations beyond the paper (DESIGN.md experiment index A2 et al.).

/// Dropper engagement policy: on-deadline-miss (section V-A) vs every
/// mapping event (Fig. 4), PAM + Heuristic across levels.
Table ablation_engagement(const FigureScale& scale);

/// Conditioning the running task's completion PMF on "not finished yet"
/// (repo extension) vs the paper's unconditioned model.
Table ablation_conditioning(const FigureScale& scale);

/// Failure-injection extension (section VI future work): robustness under
/// increasing machine-failure rates, with reactive-only vs the proactive
/// heuristic. Shows that dropping keeps helping when machines also fail.
Table ablation_failures(const FigureScale& scale);

/// Approximate-computing extension (section VI future work):
/// {ReactDrop, Heuristic (drop only), Approx (drop or downgrade)} across
/// levels, reporting both robustness and weighted utility.
Table ablation_approx(const FigureScale& scale);

/// PAM's original batch-queue deferring (disabled in the paper's
/// comparison): PAM vs PAMD, each with and without the heuristic dropper.
Table ablation_deferral(const FigureScale& scale);

/// Sensitivity of the headline comparison to the deadline-slack
/// coefficient gamma (the one free calibration parameter — see
/// EXPERIMENTS.md).
Table ablation_gamma(const FigureScale& scale);

/// Sensitivity to machine-queue capacity (the paper fixes six, including
/// the running task).
Table ablation_queue_capacity(const FigureScale& scale);

}  // namespace taskdrop
