#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "exp/scenario_cache.hpp"
#include "exp/sweep.hpp"

namespace taskdrop {

// --- Elastic lease-based sweep execution. A lease directory is a
// filesystem coordinator shared by any number of worker processes on one
// host: the unit grid (flat cell-major (cell, trial) indices, see
// sweep_unit) is partitioned into contiguous ranges by a plan file, and
// each range is claimed through an atomically created claim file carrying
// a monotonic heartbeat. Workers renew their heartbeat while computing,
// publish the range's mergeable shard JSON atomically, and release; a
// worker that finds a claim whose heartbeat is older than the timeout
// steals it (rename-away, so exactly one thief wins) and re-runs the
// range. Deterministic per-(cell, trial) seeding makes re-execution safe:
// a stolen range reproduces the exact bytes, and merge_sweep_reports with
// allow_reexecuted verifies that bitwise. Killing every worker and
// re-launching resumes for free — ranges whose result files landed are
// skipped.
//
// Directory layout (`<dir>/`):
//   plan.txt           the agreed partition (first writer wins)
//   lease_<id>.claim   live claim: "owner <name>" + "heartbeat <ms>" lines
//   lease_<id>.json    published result (mergeable shard JSON)

/// Relative execution weight per expanded cell, used to size leases so
/// expensive cells (deep windows, large levels) do not serialize the tail.
/// When `bench_macro_path` names a BENCH_macro.json (google-benchmark
/// output of bench/macro_trial, run names "scenario/mapper/<tasks>k"), each
/// cell is priced by linear task-count scaling from the nearest measured
/// (scenario, mapper) point. When the path is empty, unreadable, or any
/// cell has no covering point, *every* cell falls back to the analytic
/// n_tasks * oversubscription proxy — mixing measured and analytic scales
/// would skew the split worse than either alone.
std::vector<double> lease_cell_weights(const SweepSpec& spec,
                                       const std::string& bench_macro_path);

/// The deterministic partition of the unit grid into contiguous leases.
/// Workers may be launched with different cost models or --lease-units, so
/// the plan is agreed through the directory: the first worker publishes
/// its plan atomically and every later worker adopts it verbatim.
struct LeasePlan {
  /// Canonical spec rendering (canonical_spec_map) the plan was built for.
  SpecMap spec_map;
  std::vector<SweepLeaseRange> ranges;

  /// Splits cells.size() * trials units into contiguous ranges. With
  /// lease_units > 0, fixed-size chunks of that many units; with 0, a
  /// weight-balanced split into min(units, clamp(units/8, 16, 256)) leases
  /// using the per-cell weights (each unit inherits its cell's weight).
  static LeasePlan build(const SweepSpec& spec, std::size_t lease_units,
                         const std::vector<double>& cell_weights);

  /// Versioned text form stored as plan.txt; from_text(to_text()) is
  /// exact. Throws std::invalid_argument when the spec map does not
  /// round-trip through spec_to_text (pathological names).
  std::string to_text() const;
  static LeasePlan from_text(const std::string& text);
};

/// The filesystem coordinator for one lease directory. All operations are
/// crash-safe: claim files are created exclusively via link(2) staging and
/// results via tmp+rename, so readers never observe partial content.
class LeaseDir {
 public:
  enum class Claim {
    Acquired,  ///< claim created; caller owns the lease
    Stolen,    ///< expired claim reclaimed; caller owns the lease
    Busy,      ///< live claim held elsewhere
    Done,      ///< result already published
  };

  /// `owner` names this worker in claim files (diagnostics only; steal
  /// uniqueness comes from rename, not the name).
  LeaseDir(std::string dir, std::int64_t timeout_ms, std::string owner);

  const std::string& dir() const { return dir_; }
  const std::string& owner() const { return owner_; }

  /// Publishes `plan` as plan.txt unless one exists, then loads whichever
  /// won. Throws std::invalid_argument when the directory's plan was built
  /// for a different spec (a stale lease dir must not silently corrupt a
  /// new sweep).
  LeasePlan publish_or_load_plan(const LeasePlan& plan) const;

  /// Tries to take ownership of `lease`: Done when its result file exists,
  /// Acquired on a fresh claim, Stolen when an expired claim was reclaimed,
  /// Busy when a live claim (heartbeat within the timeout) is held
  /// elsewhere.
  Claim try_claim(const SweepLeaseRange& lease) const;

  /// Overwrites the claim's heartbeat with the current monotonic time.
  /// Harmlessly resurrects a claim file after a concurrent steal — the
  /// thief's published result wins, and try_claim checks results first.
  void renew(const SweepLeaseRange& lease) const;

  /// Abandons a claim without publishing (error paths), so another worker
  /// can claim the lease immediately instead of waiting out the timeout.
  void release(const SweepLeaseRange& lease) const;

  /// Atomically publishes the lease's mergeable shard JSON, then drops the
  /// claim.
  void publish_result(const SweepLeaseRange& lease,
                      const std::string& json) const;

  bool result_exists(const SweepLeaseRange& lease) const;

  std::string plan_path() const;
  std::string claim_path(const SweepLeaseRange& lease) const;
  std::string result_path(const SweepLeaseRange& lease) const;

 private:
  std::string dir_;
  std::int64_t timeout_ms_;
  std::string owner_;
};

struct ElasticSweepOptions {
  /// Lease directory (created if absent). Required.
  std::string lease_dir;
  /// A claim whose heartbeat is older than this is considered dead and
  /// gets stolen. Must comfortably exceed the renewal period (timeout/3).
  std::int64_t lease_timeout_ms = 30000;
  /// Fixed units per lease; 0 sizes leases from the cost model.
  std::size_t lease_units = 0;
  /// Optional BENCH_macro.json for cost-model lease sizing.
  std::string bench_macro_path;
  /// Worker threads per lease (run_sweep semantics; 0 = hardware).
  std::size_t threads = 0;
  /// Optional externally shared scenario cache.
  ScenarioCache* cache = nullptr;
  /// Worker name for claim files; empty derives "pid-<pid>".
  std::string owner;
  /// Progress lines ("lease 3 [24, 48) acquired", ...), serialized.
  std::function<void(const std::string&)> on_event;
};

struct ElasticSweepStats {
  std::size_t leases_total = 0;
  std::size_t leases_run = 0;      ///< computed by this worker
  std::size_t leases_stolen = 0;   ///< of leases_run, reclaimed from dead owners
  std::size_t leases_skipped = 0;  ///< result already present at first visit
};

/// Runs the spec's unit grid through the lease directory until every lease
/// has a published result, claiming and computing whatever is free and
/// waiting out (or stealing) leases held elsewhere. Heartbeats are renewed
/// from a background thread while a lease computes. Returns per-worker
/// stats; after it returns, `merge --allow-reexecuted` over
/// <dir>/lease_*.json reproduces the unsharded report byte for byte.
ElasticSweepStats run_sweep_elastic(const SweepSpec& spec,
                                    const ElasticSweepOptions& options);

}  // namespace taskdrop
