#include "exp/figures.hpp"

#include "exp/experiment.hpp"

namespace taskdrop {
namespace {

/// Builds the shared base config for one figure cell.
ExperimentConfig base_config(ScenarioKind scenario, const OversubLevel& level,
                             const FigureScale& scale) {
  ExperimentConfig config;
  config.scenario = scenario;
  config.workload.n_tasks = level.n_tasks;
  config.workload.oversubscription = level.oversubscription;
  config.trials = scale.trials;
  config.seed = scale.seed;
  return config;
}

/// Shared column layout for level-sweep tables: one (mean, ci) pair per
/// oversubscription level.
std::vector<std::string> level_headers(const std::string& first,
                                       const std::vector<OversubLevel>& levels) {
  std::vector<std::string> headers{first};
  for (const auto& level : levels) {
    headers.push_back(level.label + " robustness (%)");
    headers.push_back(level.label + " ci95");
  }
  return headers;
}

}  // namespace

FigureScale FigureScale::from_flags(const Flags& flags) {
  FigureScale scale;
  if (flags.get_bool("full")) {
    scale.tasks_divisor = 1;
    scale.trials = 30;
  }
  scale.tasks_divisor =
      static_cast<int>(flags.get_int("divisor", scale.tasks_divisor));
  scale.trials = static_cast<int>(flags.get_int("trials", scale.trials));
  scale.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  return scale;
}

std::vector<OversubLevel> oversubscription_levels(const FigureScale& scale) {
  const int div = scale.tasks_divisor;
  // Oversubscription multiples calibrated so the three levels land in the
  // paper's robustness bands (~47 % / ~37-46 % / ~30 % under PAM+Heuristic,
  // Figs. 5 and 8) — see EXPERIMENTS.md.
  return {
      {"20k", 20000 / div, 2.5},
      {"30k", 30000 / div, 3.0},
      {"40k", 40000 / div, 3.5},
  };
}

Table fig5_effective_depth(const FigureScale& scale) {
  const auto levels = oversubscription_levels(scale);
  Table table(level_headers("eta", levels));
  ExperimentConfig probe = base_config(ScenarioKind::SpecHC, levels[0], scale);
  const Scenario scenario = build_scenario(probe);
  for (int eta = 1; eta <= 5; ++eta) {
    table.row().cell(static_cast<long long>(eta));
    for (const auto& level : levels) {
      ExperimentConfig config = base_config(ScenarioKind::SpecHC, level, scale);
      config.mapper = "PAM";
      config.dropper = DropperConfig::heuristic(eta, 1.0);
      const ExperimentResult result = run_experiment(config, &scenario);
      table.cell(result.robustness.mean).cell(result.robustness.ci95);
    }
  }
  return table;
}

Table fig6_beta(const FigureScale& scale) {
  const auto levels = oversubscription_levels(scale);
  Table table(level_headers("beta", levels));
  ExperimentConfig probe = base_config(ScenarioKind::SpecHC, levels[0], scale);
  const Scenario scenario = build_scenario(probe);
  for (double beta = 1.0; beta <= 4.0 + 1e-9; beta += 0.5) {
    table.row().cell(beta, 1);
    for (const auto& level : levels) {
      ExperimentConfig config = base_config(ScenarioKind::SpecHC, level, scale);
      config.mapper = "PAM";
      config.dropper = DropperConfig::heuristic(2, beta);
      const ExperimentResult result = run_experiment(config, &scenario);
      table.cell(result.robustness.mean).cell(result.robustness.ci95);
    }
  }
  return table;
}

namespace {

/// Shared body of Figs. 7a, 7b and 10: a mapper sweep with and without the
/// proactive dropping heuristic, on one scenario and level.
Table mapper_sweep(ScenarioKind kind, const std::vector<std::string>& mappers,
                   const OversubLevel& level, const FigureScale& scale) {
  Table table({"mapper", "dropping", "robustness (%)", "ci95"});
  ExperimentConfig probe = base_config(kind, level, scale);
  const Scenario scenario = build_scenario(probe);
  for (const std::string& mapper : mappers) {
    for (const bool heuristic : {true, false}) {
      ExperimentConfig config = base_config(kind, level, scale);
      config.mapper = mapper;
      config.dropper = heuristic ? DropperConfig::heuristic()
                                 : DropperConfig::reactive_only();
      const ExperimentResult result = run_experiment(config, &scenario);
      table.row()
          .cell(mapper)
          .cell(heuristic ? "+Heuristic" : "+ReactDrop")
          .cell(result.robustness.mean)
          .cell(result.robustness.ci95);
    }
  }
  return table;
}

}  // namespace

Table fig7a_hetero_mappers(const FigureScale& scale) {
  const auto levels = oversubscription_levels(scale);
  return mapper_sweep(ScenarioKind::SpecHC, {"MSD", "MM", "PAM"}, levels[1],
                      scale);
}

Table fig7b_homog_mappers(const FigureScale& scale) {
  const auto levels = oversubscription_levels(scale);
  return mapper_sweep(ScenarioKind::Homogeneous, {"FCFS", "EDF", "SJF", "PAM"},
                      levels[1], scale);
}

Table fig8_dropping_variants(const FigureScale& scale) {
  const auto levels = oversubscription_levels(scale);
  Table table({"level", "variant", "robustness (%)", "ci95",
               "reactive share of drops (%)"});
  ExperimentConfig probe = base_config(ScenarioKind::SpecHC, levels[0], scale);
  const Scenario scenario = build_scenario(probe);
  struct Variant {
    std::string label;
    DropperConfig dropper;
  };
  const std::vector<Variant> variants = {
      {"PAM+Optimal", DropperConfig::optimal()},
      {"PAM+Heuristic", DropperConfig::heuristic()},
      {"PAM+Threshold", DropperConfig::threshold()},
  };
  for (const auto& level : levels) {
    for (const auto& variant : variants) {
      ExperimentConfig config = base_config(ScenarioKind::SpecHC, level, scale);
      config.mapper = "PAM";
      config.dropper = variant.dropper;
      const ExperimentResult result = run_experiment(config, &scenario);
      table.row()
          .cell(level.label)
          .cell(variant.label)
          .cell(result.robustness.mean)
          .cell(result.robustness.ci95)
          .cell(result.reactive_share.mean);
    }
  }
  return table;
}

Table fig9_cost(const FigureScale& scale) {
  const auto levels = oversubscription_levels(scale);
  Table table({"level", "variant", "cost / robustness ($)", "ci95"});
  ExperimentConfig probe = base_config(ScenarioKind::SpecHC, levels[0], scale);
  const Scenario scenario = build_scenario(probe);
  struct Variant {
    std::string label;
    std::string mapper;
    DropperConfig dropper;
  };
  const std::vector<Variant> variants = {
      {"PAM+Threshold", "PAM", DropperConfig::threshold()},
      {"PAM+Heuristic", "PAM", DropperConfig::heuristic()},
      {"MM+ReactDrop", "MM", DropperConfig::reactive_only()},
  };
  for (const auto& level : levels) {
    for (const auto& variant : variants) {
      ExperimentConfig config = base_config(ScenarioKind::SpecHC, level, scale);
      config.mapper = variant.mapper;
      config.dropper = variant.dropper;
      const ExperimentResult result = run_experiment(config, &scenario);
      table.row()
          .cell(level.label)
          .cell(variant.label)
          .cell(result.normalized_cost.mean, 4)
          .cell(result.normalized_cost.ci95, 4);
    }
  }
  return table;
}

Table fig10_video(const FigureScale& scale) {
  // Section V-H: lower arrival rate, moderately oversubscribed system.
  const OversubLevel level{"20k", 20000 / scale.tasks_divisor, 1.5};
  return mapper_sweep(ScenarioKind::Video, {"MSD", "MM", "PAM"}, level, scale);
}

Table ablation_engagement(const FigureScale& scale) {
  const auto levels = oversubscription_levels(scale);
  Table table({"level", "engagement", "robustness (%)", "ci95",
               "dropper invocations / trial"});
  ExperimentConfig probe = base_config(ScenarioKind::SpecHC, levels[0], scale);
  const Scenario scenario = build_scenario(probe);
  struct Policy {
    std::string label;
    DropperEngagement engagement;
  };
  const std::vector<Policy> policies = {
      {"every-event (Fig. 4)", DropperEngagement::EveryMappingEvent},
      {"on-deadline-miss (V-A)", DropperEngagement::OnDeadlineMiss},
  };
  for (const auto& level : levels) {
    for (const auto& policy : policies) {
      ExperimentConfig config = base_config(ScenarioKind::SpecHC, level, scale);
      config.mapper = "PAM";
      config.dropper = DropperConfig::heuristic();
      config.engagement = policy.engagement;
      const ExperimentResult result = run_experiment(config, &scenario);
      double invocations = 0.0;
      for (const TrialMetrics& trial : result.trials) {
        invocations += static_cast<double>(trial.dropper_invocations);
      }
      invocations /= static_cast<double>(result.trials.size());
      table.row()
          .cell(level.label)
          .cell(policy.label)
          .cell(result.robustness.mean)
          .cell(result.robustness.ci95)
          .cell(invocations, 0);
    }
  }
  return table;
}

Table ablation_conditioning(const FigureScale& scale) {
  const auto levels = oversubscription_levels(scale);
  Table table({"level", "running-task model", "robustness (%)", "ci95"});
  ExperimentConfig probe = base_config(ScenarioKind::SpecHC, levels[0], scale);
  const Scenario scenario = build_scenario(probe);
  for (const auto& level : levels) {
    for (const bool conditioned : {false, true}) {
      ExperimentConfig config = base_config(ScenarioKind::SpecHC, level, scale);
      config.mapper = "PAM";
      config.dropper = DropperConfig::heuristic();
      config.condition_running = conditioned;
      const ExperimentResult result = run_experiment(config, &scenario);
      table.row()
          .cell(level.label)
          .cell(conditioned ? "conditioned" : "unconditioned (paper)")
          .cell(result.robustness.mean)
          .cell(result.robustness.ci95);
    }
  }
  return table;
}

Table ablation_failures(const FigureScale& scale) {
  const auto levels = oversubscription_levels(scale);
  const OversubLevel& level = levels[1];  // 30k
  Table table({"MTBF (ticks)", "dropping", "robustness (%)", "ci95",
               "lost to failure / trial"});
  ExperimentConfig probe = base_config(ScenarioKind::SpecHC, level, scale);
  const Scenario scenario = build_scenario(probe);
  // Infinity (failures off), then increasingly failure-prone machines.
  const std::vector<double> mtbfs = {0.0, 120000.0, 60000.0, 30000.0, 15000.0};
  for (const double mtbf : mtbfs) {
    for (const bool heuristic : {false, true}) {
      ExperimentConfig config = base_config(ScenarioKind::SpecHC, level, scale);
      config.mapper = "PAM";
      config.dropper = heuristic ? DropperConfig::heuristic()
                                 : DropperConfig::reactive_only();
      if (mtbf > 0.0) {
        config.failures.enabled = true;
        config.failures.mean_time_between_failures = mtbf;
        config.failures.mean_time_to_repair = 3000.0;
      }
      const ExperimentResult result = run_experiment(config, &scenario);
      double lost = 0.0;
      for (const TrialMetrics& trial : result.trials) {
        lost += static_cast<double>(trial.lost_to_failure);
      }
      lost /= static_cast<double>(result.trials.size());
      table.row()
          .cell(mtbf > 0.0 ? format_fixed(mtbf, 0) : "no failures")
          .cell(heuristic ? "+Heuristic" : "+ReactDrop")
          .cell(result.robustness.mean)
          .cell(result.robustness.ci95)
          .cell(lost, 1);
    }
  }
  return table;
}

Table ablation_approx(const FigureScale& scale) {
  const auto levels = oversubscription_levels(scale);
  Table table({"level", "mechanism", "robustness (%)", "utility (%)",
               "approx completions / trial"});
  ExperimentConfig probe = base_config(ScenarioKind::SpecHC, levels[0], scale);
  const Scenario scenario = build_scenario(probe);
  struct Mechanism {
    std::string label;
    DropperConfig dropper;
  };
  const std::vector<Mechanism> mechanisms = {
      {"ReactDrop", DropperConfig::reactive_only()},
      {"Heuristic (drop)", DropperConfig::heuristic()},
      {"Approx (drop/downgrade)", DropperConfig::approximate()},
  };
  for (const auto& level : levels) {
    for (const auto& mechanism : mechanisms) {
      ExperimentConfig config = base_config(ScenarioKind::SpecHC, level, scale);
      config.mapper = "PAM";
      config.dropper = mechanism.dropper;
      const ExperimentResult result = run_experiment(config, &scenario);
      double approx = 0.0;
      for (const TrialMetrics& trial : result.trials) {
        approx += static_cast<double>(trial.approx_on_time);
      }
      approx /= static_cast<double>(result.trials.size());
      table.row()
          .cell(level.label)
          .cell(mechanism.label)
          .cell(result.robustness.mean)
          .cell(result.utility.mean)
          .cell(approx, 1);
    }
  }
  return table;
}

Table ablation_deferral(const FigureScale& scale) {
  const auto levels = oversubscription_levels(scale);
  const OversubLevel& level = levels[1];
  Table table({"mapper", "dropping", "robustness (%)", "ci95"});
  ExperimentConfig probe = base_config(ScenarioKind::SpecHC, level, scale);
  const Scenario scenario = build_scenario(probe);
  for (const std::string mapper : {"PAM", "PAMD"}) {
    for (const bool heuristic : {false, true}) {
      ExperimentConfig config = base_config(ScenarioKind::SpecHC, level, scale);
      config.mapper = mapper;
      config.dropper = heuristic ? DropperConfig::heuristic()
                                 : DropperConfig::reactive_only();
      const ExperimentResult result = run_experiment(config, &scenario);
      table.row()
          .cell(mapper)
          .cell(heuristic ? "+Heuristic" : "+ReactDrop")
          .cell(result.robustness.mean)
          .cell(result.robustness.ci95);
    }
  }
  return table;
}

Table ablation_gamma(const FigureScale& scale) {
  const auto levels = oversubscription_levels(scale);
  const OversubLevel& level = levels[1];
  Table table({"gamma", "ReactDrop robustness (%)", "Heuristic robustness (%)",
               "gain (pp)"});
  ExperimentConfig probe = base_config(ScenarioKind::SpecHC, level, scale);
  const Scenario scenario = build_scenario(probe);
  for (const double gamma : {1.0, 2.0, 3.0, 4.0, 6.0, 8.0}) {
    ExperimentConfig config = base_config(ScenarioKind::SpecHC, level, scale);
    config.mapper = "PAM";
    config.workload.gamma = gamma;
    config.dropper = DropperConfig::reactive_only();
    const ExperimentResult reactive = run_experiment(config, &scenario);
    config.dropper = DropperConfig::heuristic();
    const ExperimentResult proactive = run_experiment(config, &scenario);
    table.row()
        .cell(gamma, 1)
        .cell(reactive.robustness.mean)
        .cell(proactive.robustness.mean)
        .cell(proactive.robustness.mean - reactive.robustness.mean);
  }
  return table;
}

Table ablation_queue_capacity(const FigureScale& scale) {
  const auto levels = oversubscription_levels(scale);
  const OversubLevel& level = levels[1];
  Table table({"queue capacity", "ReactDrop robustness (%)",
               "Heuristic robustness (%)", "gain (pp)"});
  ExperimentConfig probe = base_config(ScenarioKind::SpecHC, level, scale);
  const Scenario scenario = build_scenario(probe);
  for (const int capacity : {2, 4, 6, 8, 12}) {
    ExperimentConfig config = base_config(ScenarioKind::SpecHC, level, scale);
    config.mapper = "PAM";
    config.queue_capacity = capacity;
    config.dropper = DropperConfig::reactive_only();
    const ExperimentResult reactive = run_experiment(config, &scenario);
    config.dropper = DropperConfig::heuristic();
    const ExperimentResult proactive = run_experiment(config, &scenario);
    table.row()
        .cell(static_cast<long long>(capacity))
        .cell(reactive.robustness.mean)
        .cell(proactive.robustness.mean)
        .cell(proactive.robustness.mean - reactive.robustness.mean);
  }
  return table;
}

}  // namespace taskdrop
