#include "exp/figures.hpp"

#include <stdexcept>

#include "exp/sweep.hpp"

namespace taskdrop {
namespace {

/// The paper's levels as sweep-axis entries.
std::vector<SweepLevel> sweep_levels(const FigureScale& scale) {
  std::vector<SweepLevel> entries;
  for (const OversubLevel& level : oversubscription_levels(scale)) {
    entries.push_back({level.label, level.n_tasks, level.oversubscription});
  }
  return entries;
}

/// Shared base for every figure: SpecHC across all three levels at the
/// requested scale. Figures override the axes they sweep.
SweepSpec base_spec(const std::string& name, const FigureScale& scale) {
  SweepSpec spec;
  spec.name = name;
  spec.scenarios = {ScenarioKind::SpecHC};
  spec.levels = sweep_levels(scale);
  spec.trials = scale.trials;
  spec.seed = scale.seed;
  return spec;
}

DropperVariant heuristic_variant(const std::string& label) {
  return {label, DropperConfig::from_spec("heuristic")};
}

DropperVariant reactive_variant(const std::string& label) {
  return {label, DropperConfig::from_spec("reactive")};
}

/// Mean of an integral per-trial counter.
double trial_mean(const ExperimentResult& result,
                  long long TrialMetrics::* field) {
  double total = 0.0;
  for (const TrialMetrics& trial : result.trials) {
    total += static_cast<double>(trial.*field);
  }
  return total / static_cast<double>(result.trials.size());
}

/// Shared column layout for level-sweep tables: one (mean, ci) pair per
/// oversubscription level.
std::vector<std::string> level_headers(const std::string& first,
                                       const std::vector<SweepLevel>& levels) {
  std::vector<std::string> headers{first};
  for (const auto& level : levels) {
    headers.push_back(level.label + " robustness (%)");
    headers.push_back(level.label + " ci95");
  }
  return headers;
}

}  // namespace

FigureScale FigureScale::from_flags(const Flags& flags) {
  FigureScale scale;
  if (flags.get_bool("full")) {
    scale.tasks_divisor = 1;
    scale.trials = 30;
  }
  scale.tasks_divisor =
      static_cast<int>(flags.get_int("divisor", scale.tasks_divisor));
  scale.trials = static_cast<int>(flags.get_int("trials", scale.trials));
  scale.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  // Fail fast with the flag name: a zero divisor would crash in level
  // scaling and zero trials would surface as an empty-summary NaN later.
  if (scale.trials < 1) {
    throw std::invalid_argument("--trials must be >= 1, got " +
                                std::to_string(scale.trials));
  }
  if (scale.tasks_divisor < 1) {
    throw std::invalid_argument("--divisor must be >= 1, got " +
                                std::to_string(scale.tasks_divisor));
  }
  return scale;
}

std::vector<OversubLevel> oversubscription_levels(const FigureScale& scale) {
  const int div = scale.tasks_divisor;
  // Oversubscription multiples calibrated so the three levels land in the
  // paper's robustness bands (~47 % / ~37-46 % / ~30 % under PAM+Heuristic,
  // Figs. 5 and 8) — see EXPERIMENTS.md.
  return {
      {"20k", 20000 / div, 2.5},
      {"30k", 30000 / div, 3.0},
      {"40k", 40000 / div, 3.5},
  };
}

Table fig5_effective_depth(const FigureScale& scale) {
  SweepSpec spec = base_spec("fig5 effective depth", scale);
  spec.droppers.clear();
  for (int eta = 1; eta <= 5; ++eta) {
    spec.droppers.push_back(
        {std::to_string(eta),
         DropperConfig::from_spec("heuristic", {{"eta", std::to_string(eta)}})});
  }
  const SweepReport report = run_sweep(spec);

  Table table(level_headers("eta", spec.levels));
  for (const DropperVariant& variant : spec.droppers) {
    table.row().cell(variant.label);
    for (const SweepLevel& level : spec.levels) {
      const auto& cell = cell_at(
          report, {{"dropper", variant.label}, {"level", level.label}});
      table.cell(cell.result.robustness.mean).cell(cell.result.robustness.ci95);
    }
  }
  return table;
}

Table fig6_beta(const FigureScale& scale) {
  SweepSpec spec = base_spec("fig6 beta", scale);
  spec.droppers.clear();
  for (double beta = 1.0; beta <= 4.0 + 1e-9; beta += 0.5) {
    spec.droppers.push_back(
        {format_fixed(beta, 1),
         DropperConfig::from_spec("heuristic",
                                  {{"beta", format_fixed(beta, 1)}})});
  }
  const SweepReport report = run_sweep(spec);

  Table table(level_headers("beta", spec.levels));
  for (const DropperVariant& variant : spec.droppers) {
    table.row().cell(variant.label);
    for (const SweepLevel& level : spec.levels) {
      const auto& cell = cell_at(
          report, {{"dropper", variant.label}, {"level", level.label}});
      table.cell(cell.result.robustness.mean).cell(cell.result.robustness.ci95);
    }
  }
  return table;
}

namespace {

/// Shared body of Figs. 7a, 7b and 10: a mapper sweep with and without the
/// proactive dropping heuristic, on one scenario and level.
Table mapper_sweep(ScenarioKind kind, const std::vector<std::string>& mappers,
                   const SweepLevel& level, const FigureScale& scale) {
  SweepSpec spec = base_spec("mapper sweep", scale);
  spec.scenarios = {kind};
  spec.levels = {level};
  spec.mappers = mappers;
  spec.droppers = {heuristic_variant("+Heuristic"),
                   reactive_variant("+ReactDrop")};
  const SweepReport report = run_sweep(spec);

  Table table({"mapper", "dropping", "robustness (%)", "ci95"});
  for (const std::string& mapper : mappers) {
    for (const DropperVariant& dropping : spec.droppers) {
      const auto& cell = cell_at(
          report, {{"mapper", mapper}, {"dropper", dropping.label}});
      table.row()
          .cell(mapper)
          .cell(dropping.label)
          .cell(cell.result.robustness.mean)
          .cell(cell.result.robustness.ci95);
    }
  }
  return table;
}

}  // namespace

Table fig7a_hetero_mappers(const FigureScale& scale) {
  const auto levels = sweep_levels(scale);
  return mapper_sweep(ScenarioKind::SpecHC, {"MSD", "MM", "PAM"}, levels[1],
                      scale);
}

Table fig7b_homog_mappers(const FigureScale& scale) {
  const auto levels = sweep_levels(scale);
  return mapper_sweep(ScenarioKind::Homogeneous, {"FCFS", "EDF", "SJF", "PAM"},
                      levels[1], scale);
}

Table fig8_dropping_variants(const FigureScale& scale) {
  SweepSpec spec = base_spec("fig8 dropping variants", scale);
  spec.droppers = {{"PAM+Optimal", DropperConfig::from_spec("optimal")},
                   {"PAM+Heuristic", DropperConfig::from_spec("heuristic")},
                   {"PAM+Threshold", DropperConfig::from_spec("threshold")}};
  const SweepReport report = run_sweep(spec);

  Table table({"level", "variant", "robustness (%)", "ci95",
               "reactive share of drops (%)"});
  for (const SweepLevel& level : spec.levels) {
    for (const DropperVariant& variant : spec.droppers) {
      const auto& cell = cell_at(
          report, {{"level", level.label}, {"dropper", variant.label}});
      table.row()
          .cell(level.label)
          .cell(variant.label)
          .cell(cell.result.robustness.mean)
          .cell(cell.result.robustness.ci95)
          .cell(cell.result.reactive_share.mean);
    }
  }
  return table;
}

Table fig9_cost(const FigureScale& scale) {
  SweepSpec spec = base_spec("fig9 cost", scale);
  // The three series differ in mapper and dropper at once, so a paired
  // series list replaces the mappers x droppers cross product.
  spec.series = {
      {"PAM+Threshold", "PAM", DropperConfig::from_spec("threshold")},
      {"PAM+Heuristic", "PAM", DropperConfig::from_spec("heuristic")},
      {"MM+ReactDrop", "MM", DropperConfig::from_spec("reactive")}};
  const SweepReport report = run_sweep(spec);

  Table table({"level", "variant", "cost / robustness ($)", "ci95"});
  for (const SweepLevel& level : spec.levels) {
    for (const SeriesVariant& variant : spec.series) {
      const auto& cell = cell_at(
          report, {{"level", level.label}, {"dropper", variant.label}});
      table.row()
          .cell(level.label)
          .cell(variant.label)
          .cell(cell.result.normalized_cost.mean, 4)
          .cell(cell.result.normalized_cost.ci95, 4);
    }
  }
  return table;
}

Table fig10_video(const FigureScale& scale) {
  // Section V-H: lower arrival rate, moderately oversubscribed system.
  const SweepLevel level{"20k", 20000 / scale.tasks_divisor, 1.5};
  return mapper_sweep(ScenarioKind::Video, {"MSD", "MM", "PAM"}, level, scale);
}

Table ablation_engagement(const FigureScale& scale) {
  SweepSpec spec = base_spec("ablation engagement", scale);
  spec.engagements = {DropperEngagement::EveryMappingEvent,
                      DropperEngagement::OnDeadlineMiss};
  const SweepReport report = run_sweep(spec);

  // Display labels annotate the axis names with the paper reference.
  const auto policy_label = [](DropperEngagement engagement) {
    return engagement == DropperEngagement::EveryMappingEvent
               ? "every-event (Fig. 4)"
               : "on-deadline-miss (V-A)";
  };
  Table table({"level", "engagement", "robustness (%)", "ci95",
               "dropper invocations / trial"});
  for (const SweepLevel& level : spec.levels) {
    for (const DropperEngagement engagement : spec.engagements) {
      const auto& cell = cell_at(
          report,
          {{"level", level.label},
           {"engagement", std::string(engagement_name(engagement))}});
      table.row()
          .cell(level.label)
          .cell(policy_label(engagement))
          .cell(cell.result.robustness.mean)
          .cell(cell.result.robustness.ci95)
          .cell(trial_mean(cell.result, &TrialMetrics::dropper_invocations),
                0);
    }
  }
  return table;
}

Table ablation_conditioning(const FigureScale& scale) {
  SweepSpec spec = base_spec("ablation conditioning", scale);
  spec.conditioning = {false, true};
  const SweepReport report = run_sweep(spec);

  Table table({"level", "running-task model", "robustness (%)", "ci95"});
  for (const SweepLevel& level : spec.levels) {
    for (const bool conditioned : spec.conditioning) {
      const auto& cell = cell_at(
          report, {{"level", level.label},
                   {"conditioning",
                    conditioned ? "conditioned" : "unconditioned"}});
      table.row()
          .cell(level.label)
          .cell(conditioned ? "conditioned" : "unconditioned (paper)")
          .cell(cell.result.robustness.mean)
          .cell(cell.result.robustness.ci95);
    }
  }
  return table;
}

Table ablation_failures(const FigureScale& scale) {
  SweepSpec spec = base_spec("ablation failures", scale);
  spec.levels = {sweep_levels(scale)[1]};  // 30k
  spec.droppers = {reactive_variant("+ReactDrop"),
                   heuristic_variant("+Heuristic")};
  // Infinity (failures off), then increasingly failure-prone machines.
  const std::vector<double> mtbfs = {0.0, 120000.0, 60000.0, 30000.0, 15000.0};
  spec.failures.clear();
  for (const double mtbf : mtbfs) {
    FailureModel model;
    if (mtbf > 0.0) {
      model.enabled = true;
      model.mean_time_between_failures = mtbf;
      model.mean_time_to_repair = 3000.0;
    }
    spec.failures.push_back(
        {mtbf > 0.0 ? "mtbf=" + format_fixed(mtbf, 0) : "off", model});
  }
  const SweepReport report = run_sweep(spec);

  Table table({"MTBF (ticks)", "dropping", "robustness (%)", "ci95",
               "lost to failure / trial"});
  for (const FailureVariant& failure : spec.failures) {
    for (const DropperVariant& dropping : spec.droppers) {
      const auto& cell = cell_at(
          report,
          {{"failures", failure.label}, {"dropper", dropping.label}});
      table.row()
          .cell(failure.model.enabled
                    ? format_fixed(failure.model.mean_time_between_failures, 0)
                    : "no failures")
          .cell(dropping.label)
          .cell(cell.result.robustness.mean)
          .cell(cell.result.robustness.ci95)
          .cell(trial_mean(cell.result, &TrialMetrics::lost_to_failure), 1);
    }
  }
  return table;
}

Table ablation_approx(const FigureScale& scale) {
  SweepSpec spec = base_spec("ablation approx", scale);
  spec.droppers = {
      {"ReactDrop", DropperConfig::from_spec("reactive")},
      {"Heuristic (drop)", DropperConfig::from_spec("heuristic")},
      {"Approx (drop/downgrade)", DropperConfig::from_spec("approx")}};
  const SweepReport report = run_sweep(spec);

  Table table({"level", "mechanism", "robustness (%)", "utility (%)",
               "approx completions / trial"});
  for (const SweepLevel& level : spec.levels) {
    for (const DropperVariant& mechanism : spec.droppers) {
      const auto& cell = cell_at(
          report, {{"level", level.label}, {"dropper", mechanism.label}});
      table.row()
          .cell(level.label)
          .cell(mechanism.label)
          .cell(cell.result.robustness.mean)
          .cell(cell.result.utility.mean)
          .cell(trial_mean(cell.result, &TrialMetrics::approx_on_time), 1);
    }
  }
  return table;
}

Table ablation_deferral(const FigureScale& scale) {
  SweepSpec spec = base_spec("ablation deferral", scale);
  spec.levels = {sweep_levels(scale)[1]};
  spec.mappers = {"PAM", "PAMD"};
  spec.droppers = {reactive_variant("+ReactDrop"),
                   heuristic_variant("+Heuristic")};
  const SweepReport report = run_sweep(spec);

  Table table({"mapper", "dropping", "robustness (%)", "ci95"});
  for (const std::string& mapper : spec.mappers) {
    for (const DropperVariant& dropping : spec.droppers) {
      const auto& cell = cell_at(
          report, {{"mapper", mapper}, {"dropper", dropping.label}});
      table.row()
          .cell(mapper)
          .cell(dropping.label)
          .cell(cell.result.robustness.mean)
          .cell(cell.result.robustness.ci95);
    }
  }
  return table;
}

Table ablation_gamma(const FigureScale& scale) {
  SweepSpec spec = base_spec("ablation gamma", scale);
  spec.levels = {sweep_levels(scale)[1]};
  spec.gammas = {1.0, 2.0, 3.0, 4.0, 6.0, 8.0};
  spec.droppers = {reactive_variant("+ReactDrop"),
                   heuristic_variant("+Heuristic")};
  const SweepReport report = run_sweep(spec);

  Table table({"gamma", "ReactDrop robustness (%)", "Heuristic robustness (%)",
               "gain (pp)"});
  for (const double gamma : spec.gammas) {
    const auto by_gamma = [&](const std::string& dropper) -> const Summary& {
      const SweepCellResult* cell =
          find_cell(report, [&](const SweepCellResult& candidate) {
            return candidate.config.workload.gamma == gamma &&
                   candidate.point.dropper == dropper;
          });
      if (cell == nullptr) throw std::out_of_range("gamma cell missing");
      return cell->result.robustness;
    };
    const Summary& reactive = by_gamma("+ReactDrop");
    const Summary& proactive = by_gamma("+Heuristic");
    table.row()
        .cell(gamma, 1)
        .cell(reactive.mean)
        .cell(proactive.mean)
        .cell(proactive.mean - reactive.mean);
  }
  return table;
}

Table ablation_queue_capacity(const FigureScale& scale) {
  SweepSpec spec = base_spec("ablation queue capacity", scale);
  spec.levels = {sweep_levels(scale)[1]};
  spec.queue_capacities = {2, 4, 6, 8, 12};
  spec.droppers = {reactive_variant("+ReactDrop"),
                   heuristic_variant("+Heuristic")};
  const SweepReport report = run_sweep(spec);

  Table table({"queue capacity", "ReactDrop robustness (%)",
               "Heuristic robustness (%)", "gain (pp)"});
  for (const int capacity : spec.queue_capacities) {
    const auto& reactive =
        cell_at(report, {{"capacity", std::to_string(capacity)},
                         {"dropper", "+ReactDrop"}});
    const auto& proactive =
        cell_at(report, {{"capacity", std::to_string(capacity)},
                         {"dropper", "+Heuristic"}});
    table.row()
        .cell(static_cast<long long>(capacity))
        .cell(reactive.result.robustness.mean)
        .cell(proactive.result.robustness.mean)
        .cell(proactive.result.robustness.mean -
              reactive.result.robustness.mean);
  }
  return table;
}

}  // namespace taskdrop
