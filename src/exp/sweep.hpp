#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "exp/experiment.hpp"
#include "exp/scenario_cache.hpp"
#include "util/spec_parser.hpp"

namespace taskdrop {

/// One workload level of a sweep. Task count and oversubscription move
/// together (the paper's 20k/30k/40k levels scale both), so they form one
/// labelled axis entry rather than two independent axes.
struct SweepLevel {
  std::string label;
  int n_tasks = 3000;
  double oversubscription = 3.0;
};

/// One dropper axis entry: a labelled DropperConfig ("PAM+Optimal", ...).
struct DropperVariant {
  std::string label;
  DropperConfig config;
};

/// One failure axis entry ("off", "mtbf=60000", ...).
struct FailureVariant {
  std::string label;
  FailureModel model;
};

/// One paired (mapper, dropper) series. When a figure's series differ in
/// mapper and dropper at once (Fig. 9's MM+ReactDrop vs PAM+Heuristic),
/// the cross product would run cells nobody reports; `SweepSpec::series`
/// replaces the two axes with this explicit list instead.
struct SeriesVariant {
  std::string label;
  std::string mapper;
  DropperConfig dropper;
};

DropperEngagement engagement_from_name(const std::string& name);
std::string_view engagement_name(DropperEngagement engagement);

/// Every key SweepSpec::from_map understands, in documentation order. The
/// single source of truth for the CLI's inline sweep flags and for
/// unknown-key error messages.
const std::vector<std::string>& sweep_spec_keys();

/// Declarative description of an experiment grid: every axis is a list and
/// the cross product of all axes expands into ExperimentConfigs. Defaults
/// make every axis a singleton, so a default-constructed spec is one cell
/// matching a default ExperimentConfig. Constructible from text via
/// from_map (sweep files and CLI flags share the SpecMap shape).
struct SweepSpec {
  std::string name = "sweep";

  // --- Axes (cross-multiplied, nesting order as declared).
  std::vector<ScenarioKind> scenarios = {ScenarioKind::SpecHC};
  std::vector<SweepLevel> levels = {{"3000@3.0", 3000, 3.0}};
  std::vector<std::string> mappers = {"PAM"};
  std::vector<DropperVariant> droppers = {
      {"heuristic", DropperConfig::heuristic()}};
  /// When non-empty, replaces the mappers x droppers cross product.
  std::vector<SeriesVariant> series;
  std::vector<double> gammas = {4.0};
  std::vector<int> queue_capacities = {6};
  std::vector<DropperEngagement> engagements = {
      DropperEngagement::EveryMappingEvent};
  std::vector<bool> conditioning = {false};
  std::vector<FailureVariant> failures = {{"off", FailureModel{}}};

  // --- Fixed (shared by every cell).
  ArrivalPattern pattern = ArrivalPattern::Poisson;
  ApproxModel approx;
  int trials = 8;
  std::uint64_t seed = 42;
  int exclude_head = 100;
  int exclude_tail = 100;
  int candidate_window = 256;

  /// Cells the cross product expands to.
  std::size_t cell_count() const;

  /// Rejects empty axes, trials < 1, non-positive task counts /
  /// oversubscription / capacities and unknown mapper names, with an error
  /// naming the offending key. Called by run_sweep.
  void validate() const;

  /// Builds a spec from parsed text (see util/spec_parser.hpp for the
  /// accepted syntaxes). Every name goes through the registries —
  /// scenario_from_name, make_mapper, DropperConfig::from_spec — so errors
  /// list the available sets. Unknown keys throw, listing the known ones.
  static SweepSpec from_map(const SpecMap& map);

  /// Canonical SpecMap rendering; from_map(to_map()) is a fixpoint. The
  /// dropper axis is emitted in grid form (names x eta/beta/threshold
  /// lists), which reproduces any from_map-built spec exactly; hand-built
  /// variant lists that do not form a grid re-expand to their enclosing
  /// grid.
  SpecMap to_map() const;
};

/// Axis labels identifying one expanded cell, in reporting form.
struct SweepPoint {
  std::string scenario;
  std::string level;
  std::string mapper;
  std::string dropper;
  std::string gamma;
  std::string capacity;
  std::string engagement;
  std::string conditioning;
  std::string failures;
};

/// Label of one named axis ("scenario", "level", "mapper", "dropper",
/// "gamma", "capacity", "engagement", "conditioning", "failures").
const std::string& axis_label(const SweepPoint& point,
                              const std::string& axis);

struct SweepCell {
  SweepPoint point;
  ExperimentConfig config;
};

/// The expanded cross product, in deterministic axis-nesting order
/// (scenario outermost, failures innermost).
std::vector<SweepCell> expand(const SweepSpec& spec);

struct SweepCellResult {
  SweepPoint point;
  ExperimentConfig config;
  ExperimentResult result;
  /// Trial indices present in result.trials, ascending. A complete cell
  /// holds 0..config.trials-1; a sharded run leaves each cell with only
  /// the trials its shard owns (possibly none).
  std::vector<int> trial_indices;
};

/// One shard of a sweep: this process runs every expanded (cell, trial)
/// unit whose flat cell-major index is congruent to `index` mod `count`.
/// The interleaved round-robin partition spreads expensive cells (deep
/// windows, large levels) across shards, and is deterministic in spec
/// expansion order, so N shards always reunite into the exact unsharded
/// unit set. {0, 1} is the whole sweep.
struct ShardSpec {
  int index = 0;
  int count = 1;

  /// Rejects count < 1 and index outside [0, count).
  void validate() const;
};

/// Flat unit index of (cell, trial) under `trials` trials per cell — the
/// quantity the round-robin partition is taken over.
inline std::size_t sweep_unit(std::size_t cell, int trial, int trials) {
  return cell * static_cast<std::size_t>(trials) +
         static_cast<std::size_t>(trial);
}

/// Whether `shard` owns the given unit.
inline bool shard_owns(const ShardSpec& shard, std::size_t unit) {
  return unit % static_cast<std::size_t>(shard.count) ==
         static_cast<std::size_t>(shard.index);
}

/// One lease of a sweep: a contiguous range [begin, end) of flat
/// cell-major unit indices (see sweep_unit). Leases are the elastic
/// counterpart of ShardSpec — instead of a partition fixed up front, a
/// lease directory (exp/lease.hpp) hands ranges to whichever worker claims
/// them, so a dead worker's range is re-run by a survivor. Contiguity
/// keeps each lease's cells clustered, which the cost-model-driven plan
/// exploits to even out deep-window cells.
struct SweepLeaseRange {
  long long id = 0;
  std::size_t begin = 0;
  std::size_t end = 0;

  /// Rejects id < 0 and begin >= end.
  void validate() const;
};

/// Whether `lease` covers the given unit.
inline bool lease_owns(const SweepLeaseRange& lease, std::size_t unit) {
  return unit >= lease.begin && unit < lease.end;
}

/// Consolidated output of one sweep; metrics/report.hpp renders it as an
/// aligned table, CSV or JSON (and merges shard reports back together).
struct SweepReport {
  std::string name;
  /// Axes whose spec lists had more than one entry, in nesting order —
  /// the identity columns of the long-format report.
  std::vector<std::string> active_axes;
  /// Engaged when run_sweep executed an explicit shard (even 0/1): the
  /// JSON form then carries the shard header and per-trial payloads that
  /// merge_sweep_reports consumes. Disengaged for plain and merged runs.
  std::optional<ShardSpec> shard;
  /// Engaged when run_sweep executed one lease range: the JSON form then
  /// carries a lease header instead of a shard header (same mergeable
  /// per-trial payloads). At most one of shard/lease is engaged.
  std::optional<SweepLeaseRange> lease;
  /// Canonical SweepSpec::to_map rendering, filled for sharded and leased
  /// runs — the header merge_sweep_reports validates compatibility against.
  SpecMap spec_map;
  /// Expansion order (stable regardless of scheduling).
  std::vector<SweepCellResult> cells;
};

struct SweepOptions {
  /// Worker threads; 0 means hardware concurrency.
  std::size_t threads = 0;
  /// Optional externally shared cache (e.g. across several specs).
  ScenarioCache* cache = nullptr;
  /// When engaged, run only this shard's (cell, trial) units. Requires a
  /// grid spec whose to_map rendering is a from_map fixpoint (no hand-built
  /// series lists), so the merge can re-expand identical cells.
  std::optional<ShardSpec> shard;
  /// When engaged, run only the units in this contiguous range (mutually
  /// exclusive with `shard`; same canonical-spec requirement). The report
  /// carries a lease header instead of a shard header.
  std::optional<SweepLeaseRange> lease;
  /// Streaming progress: invoked once per finished cell (serialised, from
  /// worker threads) with the completed cell and done/total counts. Under
  /// sharding a cell counts as finished when its owned trials are done;
  /// cells the shard does not touch are excluded from the totals.
  std::function<void(const SweepCellResult&, std::size_t done,
                     std::size_t total)>
      on_cell;
};

/// Expands the spec and fans every (cell, trial) across one thread pool.
/// Scenarios are shared through the cache — every cell with the same
/// (scenario, seed) reads one instance — and each cell's result is
/// bitwise-identical to run_experiment on its config. Trial RNG streams
/// are seeded per (cell, trial), so a sharded run computes exactly the
/// trials the unsharded run would, and merging shard reports reproduces
/// the unsharded report bit for bit. A trial body that throws no longer
/// terminates the process: the first exception is captured, remaining
/// units are skipped, and it is rethrown here once the pool drains.
SweepReport run_sweep(const SweepSpec& spec, const SweepOptions& options = {});

/// The active-axes column set run_sweep derives from a spec (exposed for
/// merge_sweep_reports, which rebuilds reports from shard headers).
std::vector<std::string> active_axes_of(const SweepSpec& spec);

/// The canonical to_map rendering a mergeable (sharded or leased) run may
/// publish as its header: requires a grid spec (no series lists) whose
/// re-expansion through from_map reproduces the grid cell for cell —
/// merging attributes trial payloads by cell index, so anything weaker
/// would corrupt the merge silently. Throws std::invalid_argument when the
/// spec has no such rendering.
SpecMap canonical_spec_map(const SweepSpec& spec);

/// First cell matching the predicate, or nullptr.
const SweepCellResult* find_cell(
    const SweepReport& report,
    const std::function<bool(const SweepCellResult&)>& pred);

/// The unique cell whose point matches every (axis, label) pair; throws
/// std::out_of_range when absent.
const SweepCellResult& cell_at(
    const SweepReport& report,
    std::initializer_list<std::pair<const char*, std::string>> where);

}  // namespace taskdrop
