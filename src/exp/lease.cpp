#include "exp/lease.hpp"

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "metrics/report.hpp"
#include "util/atomic_file.hpp"
#include "util/json.hpp"

namespace taskdrop {
namespace {

const char* const kPlanSchema = "taskdrop-lease-plan/v1";

/// Benchmark label "<n>k" or "<n>" -> task count; 0 when unparsable.
double tasks_of_label(const std::string& label) {
  if (label.empty()) return 0.0;
  char* end = nullptr;
  const double value = std::strtod(label.c_str(), &end);
  if (end == label.c_str() || value <= 0.0) return 0.0;
  if (*end == '\0') return value;
  if (std::string(end) == "k") return value * 1000.0;
  return 0.0;
}

/// One measured (task count, real_time ms) point of a (scenario, mapper).
struct BenchPoint {
  double tasks = 0.0;
  double ms = 0.0;
};

using BenchPoints =
    std::map<std::pair<std::string, std::string>, std::vector<BenchPoint>>;

/// Extracts every "scenario/mapper/<tasks>" run of a BENCH_macro.json;
/// empty on any shape surprise (the caller falls back to the analytic
/// model — a stale or foreign benchmark file must not abort a sweep).
BenchPoints bench_points_of(const std::string& path) {
  BenchPoints points;
  std::ifstream in(path);
  if (!in) return points;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    const JsonValue root = parse_json(buffer.str(), "bench macro JSON");
    const JsonValue* suites = json_find(root, "benchmarks");
    if (suites == nullptr || suites->kind != JsonValue::Kind::Object) {
      return points;
    }
    for (const auto& [suite_name, suite] : suites->members) {
      if (suite.kind != JsonValue::Kind::Object) continue;
      const JsonValue* runs = json_find(suite, "benchmarks");
      if (runs == nullptr || runs->kind != JsonValue::Kind::Array) continue;
      for (const JsonValue& run : runs->items) {
        if (run.kind != JsonValue::Kind::Object) continue;
        const JsonValue* name = json_find(run, "run_name");
        const JsonValue* ms = json_find(run, "real_time");
        if (name == nullptr || name->kind != JsonValue::Kind::String ||
            ms == nullptr || ms->kind != JsonValue::Kind::Number) {
          continue;
        }
        const auto first = name->text.find('/');
        const auto last = name->text.rfind('/');
        if (first == std::string::npos || last == first) continue;
        const double tasks =
            tasks_of_label(name->text.substr(last + 1));
        if (tasks <= 0.0) continue;
        const double real_time =
            json_double(*ms, "real_time", "bench macro JSON");
        if (!(real_time > 0.0)) continue;
        points[{name->text.substr(0, first),
                name->text.substr(first + 1, last - first - 1)}]
            .push_back({tasks, real_time});
      }
    }
  } catch (const std::invalid_argument&) {
    points.clear();
  }
  return points;
}

/// Unique per-process suffix for steal renames: two thieves must never
/// pick the same destination name even when they share an owner string.
std::string unique_suffix() {
  static std::atomic<unsigned long long> sequence{0};
  return std::to_string(static_cast<long long>(::getpid())) + "." +
         std::to_string(sequence.fetch_add(1));
}

std::string range_text(const SweepLeaseRange& lease) {
  return "lease " + std::to_string(lease.id) + " [" +
         std::to_string(lease.begin) + ", " + std::to_string(lease.end) + ")";
}

/// Renews a claim's heartbeat from a background thread while the owning
/// worker computes the lease body.
class HeartbeatGuard {
 public:
  HeartbeatGuard(const LeaseDir& dir, const SweepLeaseRange& lease,
                 std::int64_t period_ms)
      : dir_(dir),
        lease_(lease),
        period_ms_(std::max<std::int64_t>(period_ms, 1)),
        thread_([this] { run(); }) {}

  HeartbeatGuard(const HeartbeatGuard&) = delete;
  HeartbeatGuard& operator=(const HeartbeatGuard&) = delete;

  ~HeartbeatGuard() { stop(); }

  void stop() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopped_) return;
      stopped_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) thread_.join();
  }

 private:
  void run() {
    std::unique_lock<std::mutex> lock(mutex_);
    while (!cv_.wait_for(lock, std::chrono::milliseconds(period_ms_),
                         [&] { return stopped_; })) {
      lock.unlock();
      try {
        dir_.renew(lease_);
      } catch (const std::exception&) {
        // A failed renewal must not terminate the process (exceptions may
        // not escape a thread body); the claim simply ages toward being
        // stolen, and the bitwise re-execution contract makes that safe.
      }
      lock.lock();
    }
  }

  const LeaseDir& dir_;
  const SweepLeaseRange lease_;
  const std::int64_t period_ms_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopped_ = false;
  std::thread thread_;
};

}  // namespace

std::vector<double> lease_cell_weights(const SweepSpec& spec,
                                       const std::string& bench_macro_path) {
  const std::vector<SweepCell> cells = expand(spec);
  std::vector<double> weights(cells.size(), 0.0);
  const auto analytic = [&]() -> std::vector<double>& {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      weights[c] =
          static_cast<double>(cells[c].config.workload.n_tasks) *
          cells[c].config.workload.oversubscription;
    }
    return weights;
  };
  if (bench_macro_path.empty()) return analytic();
  const BenchPoints points = bench_points_of(bench_macro_path);
  if (points.empty()) return analytic();
  for (std::size_t c = 0; c < cells.size(); ++c) {
    const auto it = points.find(
        {cells[c].point.scenario, cells[c].config.mapper});
    // One uncovered cell poisons the whole model: mixing measured and
    // analytic scales would skew the split worse than either alone.
    if (it == points.end()) return analytic();
    const double tasks = static_cast<double>(cells[c].config.workload.n_tasks);
    const BenchPoint* nearest = &it->second.front();
    for (const BenchPoint& point : it->second) {
      if (std::abs(point.tasks - tasks) <
          std::abs(nearest->tasks - tasks)) {
        nearest = &point;
      }
    }
    weights[c] = nearest->ms * tasks / nearest->tasks;
  }
  return weights;
}

LeasePlan LeasePlan::build(const SweepSpec& spec, std::size_t lease_units,
                           const std::vector<double>& cell_weights) {
  spec.validate();
  LeasePlan plan;
  plan.spec_map = canonical_spec_map(spec);
  const std::size_t cell_count = spec.cell_count();
  if (cell_weights.size() != cell_count) {
    throw std::invalid_argument(
        "lease plan: " + std::to_string(cell_weights.size()) +
        " cell weights for a " + std::to_string(cell_count) + "-cell grid");
  }
  const std::size_t trials = static_cast<std::size_t>(spec.trials);
  const std::size_t units = cell_count * trials;

  if (lease_units > 0) {
    for (std::size_t begin = 0; begin < units; begin += lease_units) {
      plan.ranges.push_back({static_cast<long long>(plan.ranges.size()),
                             begin, std::min(begin + lease_units, units)});
    }
    return plan;
  }

  // Weight-balanced split: each unit inherits its cell's weight, and cuts
  // land at the cumulative-weight quantiles, so deep-window cells spread
  // over many leases instead of serializing the tail.
  const std::size_t target =
      std::min(units, std::clamp<std::size_t>(units / 8, 16, 256));
  double total = 0.0;
  for (const double weight : cell_weights) {
    total += std::max(weight, 0.0) * static_cast<double>(trials);
  }
  std::size_t begin = 0;
  double cumulative = 0.0;
  for (std::size_t u = 0; u < units; ++u) {
    cumulative += std::max(cell_weights[u / trials], 0.0);
    const std::size_t lease_index = plan.ranges.size();
    if (lease_index + 1 == target) break;  // the final lease takes the rest
    const std::size_t units_after = units - (u + 1);
    const std::size_t leases_after = target - lease_index - 1;
    const bool quota_met =
        total > 0.0 &&
        cumulative >= total * static_cast<double>(lease_index + 1) /
                          static_cast<double>(target);
    // Never cut so late that a later lease would come up empty.
    if ((quota_met || units_after == leases_after) &&
        units_after >= leases_after) {
      plan.ranges.push_back(
          {static_cast<long long>(lease_index), begin, u + 1});
      begin = u + 1;
    }
  }
  plan.ranges.push_back(
      {static_cast<long long>(plan.ranges.size()), begin, units});
  return plan;
}

std::string LeasePlan::to_text() const {
  std::ostringstream out;
  out << kPlanSchema << "\n";
  out << "leases " << ranges.size() << "\n";
  for (const SweepLeaseRange& lease : ranges) {
    out << "lease " << lease.id << " " << lease.begin << " " << lease.end
        << "\n";
  }
  out << "spec\n" << spec_to_text(spec_map);
  // Every worker re-reads the plan from disk, so the spec must survive the
  // text round trip exactly (a sweep name containing a comma would not).
  if (parse_spec_text(spec_to_text(spec_map)) != spec_map) {
    throw std::invalid_argument(
        "lease plan: spec map does not round-trip through its text "
        "rendering — rename the sweep (no commas, brackets or newlines)");
  }
  return out.str();
}

LeasePlan LeasePlan::from_text(const std::string& text) {
  std::istringstream in(text);
  const auto fail = [](const std::string& message) -> void {
    throw std::invalid_argument("lease plan: " + message);
  };
  std::string line;
  if (!std::getline(in, line) || line != kPlanSchema) {
    fail("unsupported plan header (expected \"" + std::string(kPlanSchema) +
         "\")");
  }
  std::size_t count = 0;
  {
    if (!std::getline(in, line)) fail("truncated plan: no lease count");
    std::istringstream fields(line);
    std::string word;
    if (!(fields >> word >> count) || word != "leases") {
      fail("malformed lease count line '" + line + "'");
    }
  }
  LeasePlan plan;
  for (std::size_t i = 0; i < count; ++i) {
    if (!std::getline(in, line)) fail("truncated plan: missing lease line");
    std::istringstream fields(line);
    std::string word;
    SweepLeaseRange lease;
    if (!(fields >> word >> lease.id >> lease.begin >> lease.end) ||
        word != "lease") {
      fail("malformed lease line '" + line + "'");
    }
    lease.validate();
    // The ranges must tile the unit grid in order: plan files are written
    // by LeasePlan::build, so anything else is hand-edited or corrupt.
    if (lease.id != static_cast<long long>(i) ||
        lease.begin != (plan.ranges.empty() ? 0 : plan.ranges.back().end)) {
      fail("lease ranges do not tile the unit grid in order at " +
           range_text(lease));
    }
    plan.ranges.push_back(lease);
  }
  if (plan.ranges.empty()) fail("plan holds no leases");
  if (!std::getline(in, line) || line != "spec") {
    fail("truncated plan: missing spec section");
  }
  std::ostringstream spec_text;
  while (std::getline(in, line)) spec_text << line << "\n";
  plan.spec_map = parse_spec_text(spec_text.str());
  return plan;
}

LeaseDir::LeaseDir(std::string dir, std::int64_t timeout_ms, std::string owner)
    : dir_(std::move(dir)), timeout_ms_(timeout_ms), owner_(std::move(owner)) {
  if (dir_.empty()) {
    throw std::invalid_argument("lease dir: empty directory path");
  }
  if (timeout_ms_ < 1) {
    throw std::invalid_argument("lease timeout must be >= 1 ms, got " +
                                std::to_string(timeout_ms_));
  }
  if (owner_.empty()) {
    throw std::invalid_argument("lease dir: empty owner name");
  }
  if (::mkdir(dir_.c_str(), 0755) != 0 && errno != EEXIST) {
    throw std::runtime_error("cannot create lease dir " + dir_ + ": " +
                             std::strerror(errno));
  }
}

std::string LeaseDir::plan_path() const { return dir_ + "/plan.txt"; }

std::string LeaseDir::claim_path(const SweepLeaseRange& lease) const {
  return dir_ + "/lease_" + std::to_string(lease.id) + ".claim";
}

std::string LeaseDir::result_path(const SweepLeaseRange& lease) const {
  return dir_ + "/lease_" + std::to_string(lease.id) + ".json";
}

bool LeaseDir::result_exists(const SweepLeaseRange& lease) const {
  return ::access(result_path(lease).c_str(), F_OK) == 0;
}

LeasePlan LeaseDir::publish_or_load_plan(const LeasePlan& plan) const {
  // First writer wins; every worker (the winner included) adopts the file,
  // so cost-model differences between workers cannot split the partition.
  atomic_create_file(plan_path(), plan.to_text());
  std::ifstream in(plan_path());
  if (!in) throw std::runtime_error("cannot read " + plan_path());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  LeasePlan agreed = LeasePlan::from_text(buffer.str());
  if (agreed.spec_map != plan.spec_map) {
    throw std::invalid_argument(
        "lease dir " + dir_ +
        " holds a plan for a different sweep spec — point --lease-dir at a "
        "fresh directory (or finish/remove the old sweep first)");
  }
  return agreed;
}

namespace {

/// Claim-file content: owner for diagnostics, heartbeat for expiry.
std::string claim_stamp(const std::string& owner) {
  return "owner " + owner + "\nheartbeat " + std::to_string(monotonic_ms()) +
         "\n";
}

/// Heartbeat of an existing claim file; false when the file vanished or is
/// unreadable (the caller re-examines the directory state).
bool read_heartbeat(const std::string& path, std::int64_t* heartbeat) {
  std::ifstream in(path);
  if (!in) return false;
  std::string word;
  while (in >> word) {
    if (word == "heartbeat") return static_cast<bool>(in >> *heartbeat);
  }
  return false;
}

}  // namespace

LeaseDir::Claim LeaseDir::try_claim(const SweepLeaseRange& lease) const {
  const std::string claim = claim_path(lease);
  for (;;) {
    if (result_exists(lease)) return Claim::Done;
    if (atomic_create_file(claim, claim_stamp(owner_))) {
      // The result may have been published between the existence check and
      // the claim (owner finished, dropped its claim); yield ownership.
      if (result_exists(lease)) {
        release(lease);
        return Claim::Done;
      }
      return Claim::Acquired;
    }
    std::int64_t heartbeat = 0;
    if (!read_heartbeat(claim, &heartbeat)) continue;  // vanished: re-check
    if (monotonic_ms() - heartbeat <= timeout_ms_) return Claim::Busy;
    // Expired claim: steal it. The rename moves the dead claim out of the
    // way atomically — when several workers race for the corpse, exactly
    // one rename succeeds and the losers re-examine the directory.
    const std::string dead = claim + ".dead." + unique_suffix();
    if (::rename(claim.c_str(), dead.c_str()) != 0) continue;
    ::unlink(dead.c_str());
    if (atomic_create_file(claim, claim_stamp(owner_))) {
      if (result_exists(lease)) {
        release(lease);
        return Claim::Done;
      }
      return Claim::Stolen;
    }
    // Another worker slipped its claim in after our steal; it is live.
    return Claim::Busy;
  }
}

void LeaseDir::renew(const SweepLeaseRange& lease) const {
  atomic_write_file(claim_path(lease), claim_stamp(owner_));
}

void LeaseDir::release(const SweepLeaseRange& lease) const {
  ::unlink(claim_path(lease).c_str());
}

void LeaseDir::publish_result(const SweepLeaseRange& lease,
                              const std::string& json) const {
  // Result first, claim second: a crash between the two leaves a claim
  // that expires and gets stolen, and the thief's try_claim finds the
  // result and reports Done — never a lost or half-written result.
  atomic_write_file(result_path(lease), json);
  release(lease);
}

ElasticSweepStats run_sweep_elastic(const SweepSpec& spec,
                                    const ElasticSweepOptions& options) {
  spec.validate();
  if (options.lease_dir.empty()) {
    throw std::invalid_argument("elastic sweep: lease_dir is required");
  }
  const std::string owner =
      options.owner.empty() ? "pid-" + std::to_string(::getpid())
                            : options.owner;
  const LeaseDir dir(options.lease_dir, options.lease_timeout_ms, owner);
  const LeasePlan plan = dir.publish_or_load_plan(LeasePlan::build(
      spec, options.lease_units,
      lease_cell_weights(spec, options.bench_macro_path)));

  const auto emit = [&](const std::string& line) {
    if (options.on_event) options.on_event(line);
  };

  ElasticSweepStats stats;
  stats.leases_total = plan.ranges.size();
  std::vector<bool> finished(plan.ranges.size(), false);
  std::vector<bool> ran(plan.ranges.size(), false);

  ScenarioCache local_cache;
  ScenarioCache* cache =
      options.cache != nullptr ? options.cache : &local_cache;
  const std::int64_t poll_ms =
      std::clamp<std::int64_t>(options.lease_timeout_ms / 4, 10, 500);
  // Start each worker's scan at a different lease so simultaneous launches
  // fan out instead of hammering lease 0 in lockstep.
  const std::size_t scan_offset =
      std::hash<std::string>{}(owner) % plan.ranges.size();

  for (;;) {
    bool progressed = false;
    for (std::size_t scan = 0; scan < plan.ranges.size(); ++scan) {
      const std::size_t i = (scan + scan_offset) % plan.ranges.size();
      if (finished[i]) continue;
      const SweepLeaseRange& lease = plan.ranges[i];
      const LeaseDir::Claim claim = dir.try_claim(lease);
      if (claim == LeaseDir::Claim::Done) {
        finished[i] = true;
        progressed = true;
        if (!ran[i]) {
          ++stats.leases_skipped;
          emit(range_text(lease) + " already done");
        }
        continue;
      }
      if (claim == LeaseDir::Claim::Busy) continue;
      const bool stolen = claim == LeaseDir::Claim::Stolen;
      emit(range_text(lease) + (stolen ? " stolen from expired claim"
                                       : " acquired"));
      SweepReport report;
      {
        HeartbeatGuard heartbeat(dir, lease, options.lease_timeout_ms / 3);
        try {
          SweepOptions sweep_options;
          sweep_options.threads = options.threads;
          sweep_options.cache = cache;
          sweep_options.lease = lease;
          report = run_sweep(spec, sweep_options);
        } catch (...) {
          // Free the claim so another worker can take over immediately
          // instead of waiting out the timeout; then surface the failure.
          heartbeat.stop();
          dir.release(lease);
          throw;
        }
      }
      std::ostringstream json;
      write_sweep_json(json, report);
      dir.publish_result(lease, json.str());
      finished[i] = true;
      ran[i] = true;
      ++stats.leases_run;
      if (stolen) ++stats.leases_stolen;
      progressed = true;
      emit(range_text(lease) + " published");
    }
    if (std::find(finished.begin(), finished.end(), false) ==
        finished.end()) {
      break;
    }
    if (!progressed) {
      // Everything left is held by live workers: wait for their results to
      // land or their heartbeats to expire.
      std::this_thread::sleep_for(std::chrono::milliseconds(poll_ms));
    }
  }
  return stats;
}

}  // namespace taskdrop
