#pragma once

#include "core/dropper.hpp"
#include "prob/workspace.hpp"

namespace taskdrop {

/// Optimal proactive task dropping (section IV-D).
///
/// For each machine queue, exhaustively examines every subset of droppable
/// pending tasks (the last task is excluded — its influence zone is null, so
/// dropping it can only lose robustness) and keeps the subset that maximises
/// the queue's instantaneous robustness (Eq. 3), i.e. the sum of chances of
/// success of the tasks remaining in the queue. With queue size q this is
/// the paper's 2^(q-1) case analysis; it is tractable here because machine
/// queues are bounded (capacity 6 in the evaluation) but its per-event cost
/// is what motivates the heuristic (section IV-F).
///
/// Ties are resolved toward dropping fewer tasks, and the empty subset is
/// always a candidate, so the mechanism never drops without a strict
/// robustness improvement.
///
/// Subsets are enumerated as a branch tree over the lowest dropped
/// position, so chain prefixes shared by many subsets are convolved once
/// (and the all-kept prefix is read straight from the model's cached
/// chain) instead of once per subset; every subset's robustness is still
/// evaluated with the exact summation order of the direct walk, so the
/// selected subset is bit-identical.
class OptimalDropper final : public Dropper {
 public:
  std::string_view name() const override { return "Optimal"; }
  void run(SystemView& view, SchedulerOps& ops) override;

 private:
  /// Same skip-if-unchanged memoisation as the heuristic dropper: a queue
  /// whose structure is unchanged would re-derive the identical subset.
  std::vector<std::uint64_t> examined_versions_;
  /// Scratch for the candidate chains: one PMF per enumeration depth plus
  /// one robustness slot per subset, reused across machines and events.
  PmfWorkspace ws_;
  std::vector<Pmf> chain_stack_;
  std::vector<double> results_;
};

}  // namespace taskdrop
