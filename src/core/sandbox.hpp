#pragma once

#include <utility>
#include <vector>

#include "core/context.hpp"

namespace taskdrop {

/// A minimal, engine-free system state for exercising droppers and mapping
/// heuristics directly: build machine queues by hand, then call
/// `dropper.run(sandbox.view(), sandbox)` and inspect what was dropped or
/// assigned. Used by the unit tests, the micro benchmarks and the
/// custom_heuristic example; also handy for debugging a new heuristic
/// against a hand-crafted queue.
///
/// The sandbox implements SchedulerOps with the same invariants as the
/// engine (state transitions, queue edits, completion-model invalidation)
/// and additionally records every mutation in `dropped` / `assigned`.
class SystemSandbox final : public SchedulerOps {
 public:
  SystemSandbox(const PetMatrix& pet, std::vector<MachineTypeId> machine_types,
                int queue_capacity, Tick now = 0,
                CompletionModel::Options model_options = {});

  SystemSandbox(const SystemSandbox&) = delete;
  SystemSandbox& operator=(const SystemSandbox&) = delete;

  /// Adds a task to the batch queue (state Unmapped). Returns its id.
  TaskId add_unmapped(TaskTypeId type, Tick arrival, Tick deadline);

  /// Creates a task and places it directly at the tail of a machine queue
  /// (state Queued). Returns its id.
  TaskId enqueue(MachineId machine, TaskTypeId type, Tick deadline,
                 Tick arrival = 0);

  /// Marks the queue head of `machine` as running since `run_start`.
  void set_running(MachineId machine, Tick run_start);

  void set_now(Tick now);

  SystemView& view() { return view_; }
  Machine& machine(MachineId id) {
    return machines_[static_cast<std::size_t>(id)];
  }
  CompletionModel& model(MachineId id) {
    return models_[static_cast<std::size_t>(id)];
  }
  Task& task(TaskId id) { return tasks_[static_cast<std::size_t>(id)]; }

  // SchedulerOps
  void assign_task(TaskId task, MachineId machine) override;
  void drop_queued_task(MachineId machine, std::size_t pos) override;
  void downgrade_task(MachineId machine, std::size_t pos) override;

  /// Mutation log, in call order.
  std::vector<TaskId> dropped;
  std::vector<TaskId> downgraded;
  std::vector<std::pair<TaskId, MachineId>> assigned;

 private:
  const PetMatrix& pet_;
  /// Shared convolution scratch for the models (mirrors the engine).
  PmfWorkspace ws_;
  Tick now_ = 0;
  std::vector<Task> tasks_;
  std::vector<Machine> machines_;
  std::vector<CompletionModel> models_;
  BatchQueue batch_;
  SystemView view_;
  CompletionModel::Options model_options_;
};

}  // namespace taskdrop
