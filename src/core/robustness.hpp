#pragma once

#include "core/context.hpp"

namespace taskdrop {

/// System-wide instantaneous robustness: the sum over machines of Eq. 3's
/// per-queue robustness (sum of chances of success of all queued tasks).
/// The paper's hypothesis (section IV-C) is that improving this quantity at
/// each mapping event improves the end-to-end robustness metric (% of tasks
/// completed on time).
double system_instantaneous_robustness(SystemView& view);

}  // namespace taskdrop
