#pragma once

#include "core/dropper.hpp"

namespace taskdrop {

/// No proactive dropping at all. With this dropper the system only performs
/// the built-in *reactive* dropping (tasks that miss their deadline are
/// discarded by the engine) — the "+ReactDrop" configurations of Figs. 7
/// and 10.
class NullDropper final : public Dropper {
 public:
  std::string_view name() const override { return "ReactDrop"; }
  void run(SystemView& view, SchedulerOps& ops) override;
};

}  // namespace taskdrop
