#include "core/completion_model.hpp"

#include <algorithm>
#include <cassert>

#include "prob/convolution.hpp"

namespace taskdrop {

CompletionModel::CompletionModel(const PetMatrix* pet, const Machine* machine,
                                 const std::vector<Task>* tasks,
                                 Options options)
    : pet_(pet), machine_(machine), tasks_(tasks), options_(options) {}

void CompletionModel::set_now(Tick now) {
  if (now == now_) return;
  now_ = now;
  if (options_.condition_running && machine_ != nullptr && machine_->running) {
    // The conditioned running-task PMF depends on `now`.
    invalidate_all();
  }
  // The unconditioned model only depends on `now` through the idle-machine
  // base, and an idle machine has no cached positions to invalidate.
}

void CompletionModel::invalidate_from(std::size_t pos) {
  valid_count_ = std::min(valid_count_, pos);
  ++version_;
}

const Pmf& execution_pmf(const Task& task, MachineTypeId machine_type,
                         const PetMatrix& pet, const PetMatrix* approx_pet) {
  if (task.approximate && approx_pet != nullptr) {
    return approx_pet->pmf(task.type, machine_type);
  }
  return pet.pmf(task.type, machine_type);
}

const Pmf& CompletionModel::exec_pmf(std::size_t pos) const {
  const Task& task = (*tasks_)[static_cast<std::size_t>(machine_->queue[pos])];
  return execution_pmf(task, machine_->type, *pet_, options_.approx_pet);
}

Pmf CompletionModel::running_completion() const {
  assert(machine_->running);
  const Task& task =
      (*tasks_)[static_cast<std::size_t>(machine_->queue.front())];
  const Pmf& exec =
      execution_pmf(task, machine_->type, *pet_, options_.approx_pet);
  Pmf completion = convolve(Pmf::delta(machine_->run_start), exec);
  if (options_.condition_running) {
    // Condition on "not finished yet": strip mass at or before now_ and
    // renormalise. If every bin is at or before now_ the task is about to
    // complete; keep the last bin as a degenerate point mass.
    std::vector<std::pair<Tick, double>> kept;
    for (std::size_t i = 0; i < completion.size(); ++i) {
      if (completion.time_at(i) > now_ && completion.prob_at_index(i) > 0.0) {
        kept.emplace_back(completion.time_at(i), completion.prob_at_index(i));
      }
    }
    if (kept.empty()) return Pmf::delta(completion.max_time());
    Pmf conditioned = Pmf::from_impulses(std::move(kept), completion.stride());
    conditioned.normalize();
    return conditioned;
  }
  return completion;
}

void CompletionModel::ensure(std::size_t pos) {
  assert(machine_ != nullptr && "model not bound to a machine");
  const std::size_t q = machine_->queue.size();
  assert(pos < q);
  if (completions_.size() < q) {
    completions_.resize(q);
    chances_.resize(q);
  }
  for (std::size_t i = valid_count_; i <= pos; ++i) {
    const Task& task =
        (*tasks_)[static_cast<std::size_t>(machine_->queue[i])];
    if (i == 0) {
      if (machine_->running) {
        completions_[0] = running_completion();
      } else {
        completions_[0] = deadline_convolve(Pmf::delta(now_), exec_pmf(0),
                                            task.deadline);
      }
    } else {
      completions_[i] =
          deadline_convolve(completions_[i - 1], exec_pmf(i), task.deadline);
    }
    chances_[i] = completions_[i].mass_before(task.deadline);
  }
  valid_count_ = std::max(valid_count_, pos + 1);
}

const Pmf& CompletionModel::completion(std::size_t pos) {
  ensure(pos);
  return completions_[pos];
}

double CompletionModel::chance(std::size_t pos) {
  ensure(pos);
  return chances_[pos];
}

Pmf CompletionModel::predecessor(std::size_t pos) {
  if (pos == 0) {
    assert(!machine_->running &&
           "the running task has no droppable predecessor slot");
    return Pmf::delta(now_);
  }
  return completion(pos - 1);
}

Pmf CompletionModel::tail() {
  if (machine_->queue.empty()) return Pmf::delta(now_);
  return completion(machine_->queue.size() - 1);
}

double CompletionModel::tail_mean() {
  if (machine_->queue.empty()) return static_cast<double>(now_);
  const std::size_t last = machine_->queue.size() - 1;
  return completion(last).mean();
}

double CompletionModel::instantaneous_robustness() {
  double sum = 0.0;
  for (std::size_t i = 0; i < machine_->queue.size(); ++i) sum += chance(i);
  return sum;
}

double CompletionModel::chance_if_appended(TaskTypeId type, Tick deadline) {
  const PmfCdf& exec_cdf = pet_->cdf(type, machine_->type);
  if (machine_->queue.empty()) {
    // The task would start immediately at now_.
    return now_ < deadline ? exec_cdf.mass_before(deadline - now_) : 0.0;
  }
  const Pmf& pred = completion(machine_->queue.size() - 1);
  double sum = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const Tick k = pred.time_at(i);
    if (k >= deadline) break;
    const double p = pred.prob_at_index(i);
    if (p == 0.0) continue;
    sum += p * exec_cdf.mass_before(deadline - k);
  }
  return sum;
}

double window_chance_sum(const Pmf& pred, const Machine& machine,
                         const std::vector<Task>& tasks, const PetMatrix& pet,
                         std::size_t first, std::size_t last,
                         const PetMatrix* approx_pet) {
  if (machine.queue.empty() || first >= machine.queue.size()) return 0.0;
  last = std::min(last, machine.queue.size() - 1);
  double sum = 0.0;
  Pmf chain = pred;
  for (std::size_t i = first; i <= last; ++i) {
    const Task& task = tasks[static_cast<std::size_t>(machine.queue[i])];
    const Pmf& exec = execution_pmf(task, machine.type, pet, approx_pet);
    chain = deadline_convolve(chain, exec, task.deadline);
    sum += chain.mass_before(task.deadline);
  }
  return sum;
}

}  // namespace taskdrop
