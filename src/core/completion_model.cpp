#include "core/completion_model.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>
#include <string>

#include "prob/convolution.hpp"
#include "util/audit.hpp"

namespace taskdrop {
namespace {

constexpr double kUnitMass = 1.0;

/// In-place delta(t) without releasing the PMF's allocation.
void set_delta(Pmf& pmf, Tick t) {
  pmf.assign(t, 1, &kUnitMass, &kUnitMass + 1);
}

/// TASKDROP_AUDIT helper: bitwise PMF comparison. The incremental chain
/// promises bit-identity with direct recomputation (the *_into kernels and
/// the allocating ones share one implementation), so the comparison is
/// exact, not tolerance-based.
void audit_expect_same_pmf(const Pmf& got, const Pmf& ref,
                           const std::string& what) {
  bool same = got.size() == ref.size();
  for (std::size_t i = 0; same && i < got.size(); ++i) {
    same = got.time_at(i) == ref.time_at(i) &&
           // float-eq-ok: bit-identity audit is exact by design
           got.prob_at_index(i) == ref.prob_at_index(i);
  }
  if (!same) {
    audit::fail(what + ": incremental chain diverged from direct recompute");
  }
}

}  // namespace

CompletionModel::CompletionModel(const PetMatrix* pet, const Machine* machine,
                                 const std::vector<Task>* tasks,
                                 Options options, PmfWorkspace* workspace)
    : pet_(pet), machine_(machine), tasks_(tasks), options_(options),
      shared_ws_(workspace) {
  set_delta(base_, now_);
}

void CompletionModel::set_now(Tick now) {
  if (now == now_) return;
  now_ = now;
  set_delta(base_, now_);
  if (machine_ == nullptr) return;
  if (machine_->running) {
    // The conditioned running-task PMF depends on `now`; the unconditioned
    // one is rooted at run_start and survives time advancing.
    if (options_.condition_running) {
      if (!options_.paranoid_rebuild && valid_count_ > 0 &&
          now_ < cond_keep_below_) {
        // The conditioned slot 0 is bitwise unchanged while now stays
        // strictly below its first kept bin (see cond_keep_below_), so the
        // chain built on it — and the value memos keyed on chain_version_ —
        // stay valid. Revision-keyed consumers observe the advance exactly
        // as they would have across the invalidate-and-rebuild this
        // replaces, and the rebuilt values would have been bit-identical.
        bump_revision();
      } else {
        invalidate_all();
      }
    }
  } else if (!machine_->queue.empty()) {
    // A non-running machine with queued tasks — a failure holding the
    // machine down, or (live mode) a Start offer the environment has not
    // confirmed yet while time advances — has its cached chain rooted at
    // base = delta(old now). Rebase it, or chance queries against the idle
    // machine keep answering from the stale start time. Surfaced by the
    // TASKDROP_AUDIT chain cross-check under failure injection.
    invalidate_all();
  }
  // An idle machine with an empty queue has no cached positions; the
  // refreshed base_ alone covers it.
}

void CompletionModel::notify_head_started(Tick deadline) {
  // Keep precondition (see the header): the cached slot 0, when cached at
  // all, is rooted at delta(now_) — set_now rebases non-running machines
  // with queued tasks on every advance — and for run_start == now_ <
  // deadline the pending slot's deadline truncation was vacuous, making
  // the pending and running slot-0 kernels bit-identical (a delta
  // predecessor entirely below the deadline convolves with no pass-through
  // term, which is exactly the running branch's plain convolution).
  if (options_.paranoid_rebuild || options_.condition_running ||
      machine_ == nullptr || !machine_->running ||
      machine_->run_start != now_ || now_ >= deadline) {
    invalidate_all();
    return;
  }
  bump_revision();
}

void CompletionModel::invalidate_from(std::size_t pos) {
  valid_count_ = std::min(valid_count_, pos);
  cdf_valid_count_ = std::min(cdf_valid_count_, pos);
  ++version_;
  ++chain_version_;
}

const Pmf& execution_pmf(const Task& task, MachineTypeId machine_type,
                         const PetMatrix& pet, const PetMatrix* approx_pet) {
  if (task.approximate && approx_pet != nullptr) {
    return approx_pet->pmf(task.type, machine_type);
  }
  return pet.pmf(task.type, machine_type);
}

const Pmf& CompletionModel::exec_pmf(std::size_t pos) const {
  const Task& task = (*tasks_)[static_cast<std::size_t>(machine_->queue[pos])];
  return execution_pmf(task, machine_->type, *pet_, options_.approx_pet);
}

void CompletionModel::compute_running_completion(Pmf& out) {
  assert(machine_->running);
  const Task& task =
      (*tasks_)[static_cast<std::size_t>(machine_->queue.front())];
  const Pmf& exec =
      execution_pmf(task, machine_->type, *pet_, options_.approx_pet);
  set_delta(start_, machine_->run_start);
  convolve_into(start_, exec, workspace(), out);
  if (options_.condition_running) {
    // Condition on "not finished yet": strip mass at or before now_ and
    // renormalise, in place. Sliced bins reproduce the dense lattice the
    // old from_impulses build produced (interior zeros included) bit for
    // bit, and normalize() divides by the same dense-order mass sum — so
    // the conditioned PMF is bitwise identical to the allocating build the
    // audit reference still performs, with no per-rebuild allocation. If
    // every bin is at or before now_ the task is about to complete; keep
    // the last bin as a degenerate point mass.
    std::size_t first = 0;
    while (first < out.size() && (out.time_at(first) <= now_ ||
                                  !(out.prob_at_index(first) > 0.0))) {
      ++first;
    }
    if (first == out.size()) {
      set_delta(out, out.max_time());
      // Degenerate point masses stay degenerate as now advances further:
      // the kept set can only stay empty.
      cond_keep_below_ = std::numeric_limits<Tick>::max();
      return;
    }
    std::size_t last = out.size();
    while (!(out.prob_at_index(last - 1) > 0.0)) --last;
    out.slice(first, last);
    out.normalize();
    // The conditioned slot is unchanged until now reaches its first bin.
    cond_keep_below_ = out.min_time();
  }
}

void CompletionModel::ensure(std::size_t pos) {
  assert(machine_ != nullptr && "model not bound to a machine");
  const std::size_t q = machine_->queue.size();
  assert(pos < q);
  if (completions_.size() < q) {
    completions_.resize(q);
    cdfs_.resize(q);
    chances_.resize(q);
  }
  for (std::size_t i = valid_count_; i <= pos; ++i) {
    const Task& task =
        (*tasks_)[static_cast<std::size_t>(machine_->queue[i])];
    if (i == 0) {
      if (machine_->running) {
        compute_running_completion(completions_[0]);
      } else {
        deadline_convolve_into(base_, exec_pmf(0), task.deadline, workspace(),
                               completions_[0]);
      }
    } else {
      deadline_convolve_into(completions_[i - 1], exec_pmf(i), task.deadline,
                             workspace(), completions_[i]);
    }
    chances_[i] = completions_[i].mass_before(task.deadline);
  }
  valid_count_ = std::max(valid_count_, pos + 1);
  if (audit::due(audit_chain_counter_)) audit_verify_chain(pos);
}

void CompletionModel::audit_verify_chain(std::size_t pos) {
  // Reference recompute: rebuild [0, pos] from scratch with the allocating
  // kernels (one shared implementation with the *_into variants, so equal
  // inputs give bit-equal outputs) and an independent chain variable —
  // nothing here reads the cached completions_ except to compare.
  Pmf ref;
  for (std::size_t i = 0; i <= pos; ++i) {
    const Task& task =
        (*tasks_)[static_cast<std::size_t>(machine_->queue[i])];
    if (i == 0) {
      if (machine_->running) {
        const Pmf start(machine_->run_start, 1, {1.0});
        // Audit reference path on purpose. layering-allow(direct-convolve)
        ref = convolve(start, exec_pmf(0));
        if (options_.condition_running) {
          // Mirror compute_running_completion's conditioning: strip mass at
          // or before now_, renormalise, degenerate to the last bin when
          // everything is in the past.
          std::vector<std::pair<Tick, double>> kept;
          for (std::size_t j = 0; j < ref.size(); ++j) {
            if (ref.time_at(j) > now_ && ref.prob_at_index(j) > 0.0) {
              kept.emplace_back(ref.time_at(j), ref.prob_at_index(j));
            }
          }
          if (kept.empty()) {
            set_delta(ref, ref.max_time());
          } else {
            ref = Pmf::from_impulses(std::move(kept), ref.stride());
            ref.normalize();
          }
        }
      } else {
        // Audit reference path on purpose. layering-allow(direct-convolve)
        ref = deadline_convolve(base_, exec_pmf(0), task.deadline);
      }
    } else {
      // Audit reference path on purpose. layering-allow(direct-convolve)
      ref = deadline_convolve(ref, exec_pmf(i), task.deadline);
    }
    audit_expect_same_pmf(completions_[i], ref,
                          "completion chain position " + std::to_string(i));
    // float-eq-ok: bit-identity audit is exact by design
    if (chances_[i] != ref.mass_before(task.deadline)) {
      audit::fail("cached chance at position " + std::to_string(i) +
                  " diverged from direct recompute");
    }
  }
}

const Pmf& CompletionModel::completion(std::size_t pos) {
  ensure(pos);
  return completions_[pos];
}

const PmfCdf& CompletionModel::completion_cdf(std::size_t pos) {
  ensure(pos);
  // Prefix sums are rebuilt lazily: chain maintenance itself never pays
  // for them (the one chance query per slot reads the PMF directly), so
  // the views only cost when a caller actually wants repeated O(1)
  // cumulative-mass queries.
  for (std::size_t i = cdf_valid_count_; i <= pos; ++i) {
    cdfs_[i].rebuild(completions_[i]);
  }
  cdf_valid_count_ = std::max(cdf_valid_count_, pos + 1);
  return cdfs_[pos];
}

double CompletionModel::chance(std::size_t pos) {
  ensure(pos);
  return chances_[pos];
}

const Pmf& CompletionModel::predecessor(std::size_t pos) {
  if (pos == 0) {
    assert(!machine_->running &&
           "the running task has no droppable predecessor slot");
    return base_;
  }
  return completion(pos - 1);
}

const Pmf& CompletionModel::tail() {
  if (machine_->queue.empty()) return base_;
  return completion(machine_->queue.size() - 1);
}

double CompletionModel::tail_mean() {
  if (machine_->queue.empty()) return static_cast<double>(now_);
  if (tail_mean_valid_ && tail_mean_revision_ == chain_version_) {
    if (audit::due(audit_tail_mean_counter_)) {
      // float-eq-ok: bit-identity audit is exact by design
      if (tail_mean_ != completion(machine_->queue.size() - 1).mean()) {
        audit::fail("tail_mean memo diverged from completion(last).mean()");
      }
    }
    return tail_mean_;
  }
  const std::size_t last = machine_->queue.size() - 1;
  tail_mean_ = completion(last).mean();
  tail_mean_revision_ = chain_version_;
  tail_mean_valid_ = true;
  return tail_mean_;
}

double CompletionModel::instantaneous_robustness() {
  double sum = 0.0;
  for (std::size_t i = 0; i < machine_->queue.size(); ++i) sum += chance(i);
  return sum;
}

double CompletionModel::direct_chance_if_appended(TaskTypeId type,
                                                  Tick deadline) {
  const PmfCdf& exec_cdf = pet_->cdf(type, machine_->type);
  if (machine_->queue.empty()) {
    // The task would start immediately at now_.
    return now_ < deadline ? exec_cdf.mass_before(deadline - now_) : 0.0;
  }
  // Dot product of the cached tail PMF against the execution CDF. The
  // summation deliberately runs over tail bins in ascending time order —
  // the same order as materialising Eq. 1 and summing Eq. 2 — so the probe
  // stays bit-compatible with the decisions the chains themselves produce.
  const Pmf& pred = completion(machine_->queue.size() - 1);
  double sum = 0.0;
  const double* p = pred.data();
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const Tick k = pred.time_at(i);
    if (k >= deadline) break;
    if (p[i] == 0.0) continue;  // float-eq-ok: exact-zero sparse skip
    sum += p[i] * exec_cdf.mass_before(deadline - k);
  }
  return sum;
}

CompletionModel::AppendedSlot& CompletionModel::appended_slot(
    TaskTypeId type) {
  if (appended_.empty()) {
    appended_.resize(static_cast<std::size_t>(pet_->task_type_count()));
  }
  AppendedSlot& slot = appended_[static_cast<std::size_t>(type)];
  if (slot.stamped && slot.revision == chain_version_) return slot;

  // Re-stamp: recompute the combined lattice for the current tail. The
  // appended chance F(d) only changes as d crosses a point of
  // {tail bin + exec bin}, which (deltas aside) all lie on the lattice
  // {tail.min + exec.min + i*stride} — so one cached evaluation per lattice
  // cell reproduces the direct fold at *every* deadline, bit for bit.
  const Pmf& pred = machine_->queue.empty()
                        ? base_
                        : completion(machine_->queue.size() - 1);
  const Pmf& exec = pet_->pmf(type, machine_->type);
  slot.incompatible =
      pred.size() > 1 && exec.size() > 1 && pred.stride() != exec.stride();
  slot.revision = chain_version_;
  slot.stamped = true;
  slot.view_ready = false;
  if (slot.incompatible) return slot;
  slot.stride = pred.size() > 1
                    ? pred.stride()
                    : (exec.size() > 1 ? exec.stride() : Tick{1});
  slot.offset = pred.min_time() + exec.min_time();
  const auto bins = static_cast<std::size_t>(
      (pred.max_time() + exec.max_time() - slot.offset) / slot.stride + 1);
  slot.value.resize(bins + 1);
  slot.known.assign(bins + 1, 0);
  slot.pred = &pred;
  slot.exec = &exec;
  // Left-fold prefixes of the saturated terms (see AppendedSlot): one
  // O(|tail|) pass per restamp — the price of a single direct fold —
  // after which every cell costs O(|exec|).
  const double exec_total = pet_->cdf(type, machine_->type).total_mass();
  slot.sat_prefix.resize(pred.size());
  {
    double acc = 0.0;
    const double* p = pred.data();
    for (std::size_t i = 0; i < pred.size(); ++i) {
      // float-eq-ok: exact-zero sparse skip
      if (p[i] != 0.0) acc += p[i] * exec_total;
      slot.sat_prefix[i] = acc;
    }
  }
  return slot;
}

double CompletionModel::appended_cell(AppendedSlot& slot, TaskTypeId type,
                                      std::size_t cell) {
  if (slot.known[cell]) return slot.value[cell];
  // Fold the unsaturated window of sum_i p_i * E(d - k_i) on top of the
  // saturated prefix, in the same ascending-i order as the direct fold.
  // Tail bins with i >= cell only ever multiply E(x <= exec.min) == 0 and
  // are skipped, exactly like the direct fold's break-plus-zero terms.
  const PmfCdf& exec_cdf = pet_->cdf(type, machine_->type);
  const Pmf& pred = *slot.pred;
  const std::size_t exec_bins = slot.exec->size();
  double sum = 0.0;
  std::size_t window_lo = 0;
  if (cell >= exec_bins) {
    const std::size_t m = std::min(cell - exec_bins, pred.size() - 1);
    sum = slot.sat_prefix[m];
    window_lo = cell - exec_bins + 1;
  }
  const double* p = pred.data();
  const std::size_t window_hi = std::min(cell, pred.size());
  for (std::size_t i = window_lo; i < window_hi; ++i) {
    if (p[i] == 0.0) continue;  // float-eq-ok: exact-zero sparse skip
    // In-window terms sit at execution-prefix index cell - i by lattice
    // arithmetic (same double mass_before(d - k_i) would return).
    sum += p[i] * exec_cdf.prefix_at(cell - i);
  }
  slot.value[cell] = sum;
  slot.known[cell] = 1;
  return sum;
}

double CompletionModel::chance_if_appended(TaskTypeId type, Tick deadline) {
  // The idle-empty probe depends on `now` rather than the revision and is
  // already a single CDF lookup; memoising it would only add staleness
  // hazards.
  if (machine_->queue.empty()) {
    return direct_chance_if_appended(type, deadline);
  }
  AppendedSlot& slot = appended_slot(type);
  if (slot.incompatible) return direct_chance_if_appended(type, deadline);
  if (deadline <= slot.offset) return 0.0;
  // Snap the deadline up to its combined-lattice cell; F is constant (and
  // bit-identical to the direct fold) across the half-open cell interval.
  const auto cell = std::min<std::size_t>(
      static_cast<std::size_t>(
          (deadline - slot.offset + slot.stride - 1) / slot.stride),
      slot.value.size() - 1);
  const double result = appended_cell(slot, type, cell);
  if (audit::due(audit_appended_counter_)) {
    // float-eq-ok: bit-identity audit is exact by design
    if (result != direct_chance_if_appended(type, deadline)) {
      audit::fail("appended-distribution cache diverged from the direct "
                  "tail fold");
    }
  }
  return result;
}

const PmfCdf& CompletionModel::appended_view(TaskTypeId type) {
  if (machine_->queue.empty()) {
    // Build a transient-lattice slot rooted at the idle base delta(now_).
    // The queue is empty, so the revision stamp alone cannot witness `now`
    // changes; force a rebuild instead of trusting the stamp.
    AppendedSlot& slot = appended_slot(type);
    slot.stamped = false;  // never reuse across calls
    if (slot.incompatible) {
      throw std::invalid_argument(
          "appended_view: tail/execution stride mismatch");
    }
    auto& prefix =
        slot.view.rebuild_prefix(slot.offset, slot.stride,
                                 slot.value.size() - 1);
    for (std::size_t i = 0; i < slot.value.size(); ++i) {
      prefix[i] = direct_chance_if_appended(
          type, slot.offset + static_cast<Tick>(i) * slot.stride);
    }
    return slot.view;
  }
  AppendedSlot& slot = appended_slot(type);
  if (slot.incompatible) {
    throw std::invalid_argument(
        "appended_view: tail/execution stride mismatch");
  }
  if (!slot.view_ready) {
    auto& prefix = slot.view.rebuild_prefix(slot.offset, slot.stride,
                                            slot.value.size() - 1);
    for (std::size_t i = 0; i < slot.value.size(); ++i) {
      prefix[i] = appended_cell(slot, type, i);
    }
    slot.view_ready = true;
  }
  return slot.view;
}

double window_chance_sum(const Pmf& pred, const Machine& machine,
                         const std::vector<Task>& tasks, const PetMatrix& pet,
                         std::size_t first, std::size_t last,
                         const PetMatrix* approx_pet, PmfWorkspace* ws) {
  if (machine.queue.empty() || first >= machine.queue.size()) return 0.0;
  last = std::min(last, machine.queue.size() - 1);
  PmfWorkspace local;
  PmfWorkspace& w = ws != nullptr ? *ws : local;
  assert(&pred != &w.chain && "pred must not alias the workspace chain");
  Pmf& chain = w.chain;
  chain = pred;
  double sum = 0.0;
  for (std::size_t i = first; i <= last; ++i) {
    const Task& task = tasks[static_cast<std::size_t>(machine.queue[i])];
    const Pmf& exec = execution_pmf(task, machine.type, pet, approx_pet);
    deadline_convolve_into(chain, exec, task.deadline, w, chain);
    sum += chain.mass_before(task.deadline);
  }
  return sum;
}

}  // namespace taskdrop
