#include "core/completion_model.hpp"

#include <algorithm>
#include <cassert>

#include "prob/convolution.hpp"

namespace taskdrop {
namespace {

constexpr double kUnitMass = 1.0;

/// In-place delta(t) without releasing the PMF's allocation.
void set_delta(Pmf& pmf, Tick t) {
  pmf.assign(t, 1, &kUnitMass, &kUnitMass + 1);
}

}  // namespace

CompletionModel::CompletionModel(const PetMatrix* pet, const Machine* machine,
                                 const std::vector<Task>* tasks,
                                 Options options, PmfWorkspace* workspace)
    : pet_(pet), machine_(machine), tasks_(tasks), options_(options),
      shared_ws_(workspace) {
  set_delta(base_, now_);
}

void CompletionModel::set_now(Tick now) {
  if (now == now_) return;
  now_ = now;
  set_delta(base_, now_);
  if (options_.condition_running && machine_ != nullptr && machine_->running) {
    // The conditioned running-task PMF depends on `now`.
    invalidate_all();
  }
  // The unconditioned model only depends on `now` through the idle-machine
  // base, and an idle machine has no cached positions to invalidate.
}

void CompletionModel::invalidate_from(std::size_t pos) {
  valid_count_ = std::min(valid_count_, pos);
  cdf_valid_count_ = std::min(cdf_valid_count_, pos);
  ++version_;
}

const Pmf& execution_pmf(const Task& task, MachineTypeId machine_type,
                         const PetMatrix& pet, const PetMatrix* approx_pet) {
  if (task.approximate && approx_pet != nullptr) {
    return approx_pet->pmf(task.type, machine_type);
  }
  return pet.pmf(task.type, machine_type);
}

const Pmf& CompletionModel::exec_pmf(std::size_t pos) const {
  const Task& task = (*tasks_)[static_cast<std::size_t>(machine_->queue[pos])];
  return execution_pmf(task, machine_->type, *pet_, options_.approx_pet);
}

void CompletionModel::compute_running_completion(Pmf& out) {
  assert(machine_->running);
  const Task& task =
      (*tasks_)[static_cast<std::size_t>(machine_->queue.front())];
  const Pmf& exec =
      execution_pmf(task, machine_->type, *pet_, options_.approx_pet);
  set_delta(start_, machine_->run_start);
  convolve_into(start_, exec, workspace(), out);
  if (options_.condition_running) {
    // Condition on "not finished yet": strip mass at or before now_ and
    // renormalise. If every bin is at or before now_ the task is about to
    // complete; keep the last bin as a degenerate point mass. (Ablation
    // path — not allocation-free, and it does not need to be.)
    std::vector<std::pair<Tick, double>> kept;
    for (std::size_t i = 0; i < out.size(); ++i) {
      if (out.time_at(i) > now_ && out.prob_at_index(i) > 0.0) {
        kept.emplace_back(out.time_at(i), out.prob_at_index(i));
      }
    }
    if (kept.empty()) {
      set_delta(out, out.max_time());
      return;
    }
    Pmf conditioned = Pmf::from_impulses(std::move(kept), out.stride());
    conditioned.normalize();
    out = conditioned;
  }
}

void CompletionModel::ensure(std::size_t pos) {
  assert(machine_ != nullptr && "model not bound to a machine");
  const std::size_t q = machine_->queue.size();
  assert(pos < q);
  if (completions_.size() < q) {
    completions_.resize(q);
    cdfs_.resize(q);
    chances_.resize(q);
  }
  for (std::size_t i = valid_count_; i <= pos; ++i) {
    const Task& task =
        (*tasks_)[static_cast<std::size_t>(machine_->queue[i])];
    if (i == 0) {
      if (machine_->running) {
        compute_running_completion(completions_[0]);
      } else {
        deadline_convolve_into(base_, exec_pmf(0), task.deadline, workspace(),
                               completions_[0]);
      }
    } else {
      deadline_convolve_into(completions_[i - 1], exec_pmf(i), task.deadline,
                             workspace(), completions_[i]);
    }
    chances_[i] = completions_[i].mass_before(task.deadline);
  }
  valid_count_ = std::max(valid_count_, pos + 1);
}

const Pmf& CompletionModel::completion(std::size_t pos) {
  ensure(pos);
  return completions_[pos];
}

const PmfCdf& CompletionModel::completion_cdf(std::size_t pos) {
  ensure(pos);
  // Prefix sums are rebuilt lazily: chain maintenance itself never pays
  // for them (the one chance query per slot reads the PMF directly), so
  // the views only cost when a caller actually wants repeated O(1)
  // cumulative-mass queries.
  for (std::size_t i = cdf_valid_count_; i <= pos; ++i) {
    cdfs_[i].rebuild(completions_[i]);
  }
  cdf_valid_count_ = std::max(cdf_valid_count_, pos + 1);
  return cdfs_[pos];
}

double CompletionModel::chance(std::size_t pos) {
  ensure(pos);
  return chances_[pos];
}

const Pmf& CompletionModel::predecessor(std::size_t pos) {
  if (pos == 0) {
    assert(!machine_->running &&
           "the running task has no droppable predecessor slot");
    return base_;
  }
  return completion(pos - 1);
}

const Pmf& CompletionModel::tail() {
  if (machine_->queue.empty()) return base_;
  return completion(machine_->queue.size() - 1);
}

double CompletionModel::tail_mean() {
  if (machine_->queue.empty()) return static_cast<double>(now_);
  const std::size_t last = machine_->queue.size() - 1;
  return completion(last).mean();
}

double CompletionModel::instantaneous_robustness() {
  double sum = 0.0;
  for (std::size_t i = 0; i < machine_->queue.size(); ++i) sum += chance(i);
  return sum;
}

double CompletionModel::chance_if_appended(TaskTypeId type, Tick deadline) {
  const PmfCdf& exec_cdf = pet_->cdf(type, machine_->type);
  if (machine_->queue.empty()) {
    // The task would start immediately at now_.
    return now_ < deadline ? exec_cdf.mass_before(deadline - now_) : 0.0;
  }
  // Dot product of the cached tail PMF against the execution CDF. The
  // summation deliberately runs over tail bins in ascending time order —
  // the same order as materialising Eq. 1 and summing Eq. 2 — so the probe
  // stays bit-compatible with the decisions the chains themselves produce.
  const Pmf& pred = completion(machine_->queue.size() - 1);
  double sum = 0.0;
  const double* p = pred.data();
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const Tick k = pred.time_at(i);
    if (k >= deadline) break;
    if (p[i] == 0.0) continue;
    sum += p[i] * exec_cdf.mass_before(deadline - k);
  }
  return sum;
}

double window_chance_sum(const Pmf& pred, const Machine& machine,
                         const std::vector<Task>& tasks, const PetMatrix& pet,
                         std::size_t first, std::size_t last,
                         const PetMatrix* approx_pet, PmfWorkspace* ws) {
  if (machine.queue.empty() || first >= machine.queue.size()) return 0.0;
  last = std::min(last, machine.queue.size() - 1);
  PmfWorkspace local;
  PmfWorkspace& w = ws != nullptr ? *ws : local;
  assert(&pred != &w.chain && "pred must not alias the workspace chain");
  Pmf& chain = w.chain;
  chain = pred;
  double sum = 0.0;
  for (std::size_t i = first; i <= last; ++i) {
    const Task& task = tasks[static_cast<std::size_t>(machine.queue[i])];
    const Pmf& exec = execution_pmf(task, machine.type, pet, approx_pet);
    deadline_convolve_into(chain, exec, task.deadline, w, chain);
    sum += chain.mass_before(task.deadline);
  }
  return sum;
}

}  // namespace taskdrop
