#pragma once

#include "core/dropper.hpp"
#include "prob/workspace.hpp"

namespace taskdrop {

/// The paper's primary contribution: the autonomous proactive task-dropping
/// heuristic of section IV-E / Fig. 4.
///
/// In one head-to-tail pass per machine queue, each pending task i is
/// provisionally dropped and the chances of success of the next
/// `effective_depth` (eta) tasks are recomputed from task i's predecessor
/// (Eqs. 4–6). The drop is confirmed iff Eq. 8 holds:
///
///     sum_{n=i+1}^{i+eta} p^(i)_nj  >  beta * sum_{n=i}^{i+eta} p_nj
///
/// i.e. the robustness gained inside the effective depth of the influence
/// zone must outweigh the robustness lost by giving up task i, by at least
/// the robustness-improvement factor beta. beta -> infinity disables
/// proactive dropping; beta = 1 drops on any net improvement. The paper's
/// tuning experiments (Figs. 5 and 6) select eta = 2, beta = 1.
///
/// The running task is never dropped (no preemption, section III); the last
/// task of a queue has an empty influence zone and is skipped (section
/// IV-D). No user threshold is involved — the mechanism is autonomous.
class ProactiveHeuristicDropper final : public Dropper {
 public:
  struct Params {
    int effective_depth = 2;  ///< eta
    double beta = 1.0;        ///< robustness improvement factor (>= 1)
  };

  ProactiveHeuristicDropper() : params_() {}
  /// Throws std::invalid_argument for eta < 1 or beta < 1 (a real Release
  /// error path: DropperConfig can carry hand-built parameters that never
  /// went through from_spec's validation).
  explicit ProactiveHeuristicDropper(Params params);

  std::string_view name() const override { return "Heuristic"; }
  const Params& params() const { return params_; }

  void run(SystemView& view, SchedulerOps& ops) override;

 private:
  Params params_;
  /// Last examined CompletionModel::revision per machine. A queue
  /// whose structure is unchanged since the previous pass would yield the
  /// identical (no-drop) decision, so it is skipped — this is what keeps
  /// Fig. 4's every-mapping-event engagement cheap in steady state.
  std::vector<std::uint64_t> examined_versions_;
  /// Scratch for the provisional-drop chains of Eqs. 4–6.
  PmfWorkspace ws_;
};

}  // namespace taskdrop
