#pragma once

#include <string_view>

#include "core/context.hpp"

namespace taskdrop {

/// When the engine invokes the dropping mechanism (section V-A vs Fig. 4 —
/// see DESIGN.md).
enum class DropperEngagement {
  /// Fig. 4's pseudo-code: run at every mapping event. This is the default;
  /// it reproduces section V-F's low reactive-drop share (the dropper keeps
  /// machine queues pruned continuously).
  EveryMappingEvent,
  /// "Task dropping mechanism is engaged each time a system notices a task
  /// missing its deadline" (section V-A): run only at mapping events where a
  /// deadline miss (reactive drop or late completion) was observed. Cheaper
  /// but lets queues clog between misses — ablated in bench/
  /// ablation_engagement.
  OnDeadlineMiss,
};

/// A task-dropping mechanism. Runs during a mapping event, after reactive
/// deadline drops and before the mapping heuristic (Fig. 1's Task Dropper
/// cooperating with the Mapper). Implementations inspect machine queues via
/// the completion models and request drops through `ops`.
class Dropper {
 public:
  virtual ~Dropper() = default;
  virtual std::string_view name() const = 0;
  virtual void run(SystemView& view, SchedulerOps& ops) = 0;
};

}  // namespace taskdrop
