#include "core/sandbox.hpp"

#include <algorithm>
#include <cassert>

namespace taskdrop {
namespace {
/// Fixed upper bound on sandbox tasks so `tasks_` never reallocates (the
/// completion models hold a pointer to it). Plenty for hand-built queues.
constexpr std::size_t kMaxSandboxTasks = 4096;
}  // namespace

SystemSandbox::SystemSandbox(const PetMatrix& pet,
                             std::vector<MachineTypeId> machine_types,
                             int queue_capacity, Tick now,
                             CompletionModel::Options model_options)
    : pet_(pet), now_(now), model_options_(model_options) {
  assert(!machine_types.empty());
  tasks_.reserve(kMaxSandboxTasks);
  machines_.reserve(machine_types.size());
  models_.reserve(machine_types.size());
  for (std::size_t m = 0; m < machine_types.size(); ++m) {
    machines_.emplace_back(static_cast<MachineId>(m), machine_types[m],
                           queue_capacity);
  }
  for (std::size_t m = 0; m < machines_.size(); ++m) {
    models_.emplace_back(&pet_, &machines_[m], &tasks_, model_options_, &ws_);
    models_[m].set_now(now_);
  }
  view_ = SystemView{now_,
                     &pet_,
                     model_options_.approx_pet,
                     /*approx_weight=*/0.5,
                     &tasks_,
                     &machines_,
                     &models_,
                     &batch_};
}

TaskId SystemSandbox::add_unmapped(TaskTypeId type, Tick arrival,
                                   Tick deadline) {
  assert(tasks_.size() < kMaxSandboxTasks);
  Task task;
  task.id = static_cast<TaskId>(tasks_.size());
  task.type = type;
  task.arrival = arrival;
  task.deadline = deadline;
  tasks_.push_back(task);
  batch_.push_back(task.id);
  return task.id;
}

TaskId SystemSandbox::enqueue(MachineId machine_id, TaskTypeId type,
                              Tick deadline, Tick arrival) {
  assert(tasks_.size() < kMaxSandboxTasks);
  Machine& machine = machines_[static_cast<std::size_t>(machine_id)];
  Task task;
  task.id = static_cast<TaskId>(tasks_.size());
  task.type = type;
  task.arrival = arrival;
  task.deadline = deadline;
  task.state = TaskState::Queued;
  task.machine = machine_id;
  tasks_.push_back(task);
  machine.enqueue(task.id);
  models_[static_cast<std::size_t>(machine_id)].invalidate_from(
      machine.queue.size() - 1);
  return task.id;
}

void SystemSandbox::set_running(MachineId machine_id, Tick run_start) {
  Machine& machine = machines_[static_cast<std::size_t>(machine_id)];
  assert(!machine.queue.empty());
  Task& task = tasks_[static_cast<std::size_t>(machine.queue.front())];
  task.state = TaskState::Running;
  task.start_time = run_start;
  machine.running = true;
  machine.run_start = run_start;
  if (run_start == now_) {
    // A head starting "now" is the keep-eligible Start event; the model
    // falls back to a full invalidate itself whenever the keep
    // precondition fails (conditioning on, start at/past the deadline).
    models_[static_cast<std::size_t>(machine_id)].notify_head_started(
        task.deadline);
  } else {
    models_[static_cast<std::size_t>(machine_id)].invalidate_all();
  }
}

void SystemSandbox::set_now(Tick now) {
  now_ = now;
  view_.now = now;
  for (CompletionModel& model : models_) model.set_now(now);
}

void SystemSandbox::assign_task(TaskId task_id, MachineId machine_id) {
  Machine& machine = machines_[static_cast<std::size_t>(machine_id)];
  Task& task = tasks_[static_cast<std::size_t>(task_id)];
  assert(task.state == TaskState::Unmapped);
  assert(machine.has_free_slot());
  assert(batch_.contains(task_id));
  batch_.remove(task_id);
  task.state = TaskState::Queued;
  task.machine = machine_id;
  machine.enqueue(task_id);
  models_[static_cast<std::size_t>(machine_id)].invalidate_from(
      machine.queue.size() - 1);
  assigned.emplace_back(task_id, machine_id);
}

void SystemSandbox::drop_queued_task(MachineId machine_id, std::size_t pos) {
  Machine& machine = machines_[static_cast<std::size_t>(machine_id)];
  assert(pos >= machine.first_pending_pos() && pos < machine.queue.size());
  Task& task = tasks_[static_cast<std::size_t>(machine.queue[pos])];
  assert(task.state == TaskState::Queued);
  task.state = TaskState::DroppedProactive;
  task.drop_time = now_;
  machine.remove_at(pos);
  models_[static_cast<std::size_t>(machine_id)].invalidate_from(pos);
  dropped.push_back(task.id);
}

void SystemSandbox::downgrade_task(MachineId machine_id, std::size_t pos) {
  Machine& machine = machines_[static_cast<std::size_t>(machine_id)];
  assert(pos >= machine.first_pending_pos() && pos < machine.queue.size());
  Task& task = tasks_[static_cast<std::size_t>(machine.queue[pos])];
  assert(task.state == TaskState::Queued);
  if (task.approximate) return;
  task.approximate = true;
  models_[static_cast<std::size_t>(machine_id)].invalidate_from(pos);
  downgraded.push_back(task.id);
}

}  // namespace taskdrop
