#pragma once

#include "core/dropper.hpp"

namespace taskdrop {

/// Threshold-based probabilistic task pruning — the PAM+Threshold baseline
/// (Gentry et al. [2], Denninnart et al. [17]).
///
/// A pending task is dropped when its chance of success (Eq. 2) falls below
/// a threshold. This is the family of mechanisms the paper argues against:
/// the threshold is a user-supplied, workload-dependent parameter. Following
/// [2], the configured base threshold is *adapted at each mapping event* by
/// an oversubscription signal — here the fill fraction of the machine
/// queues — so the mechanism backs off when the system is lightly loaded:
///
///     effective = base_threshold * clamp(queued / total_slots, 0, 1)
///
/// (The original implementation is not public; DESIGN.md's substitution
/// table records why this stand-in preserves the comparison: it keeps both
/// defining properties — user tuning and per-task chance thresholds with no
/// influence-zone accounting.)
class ThresholdDropper final : public Dropper {
 public:
  struct Params {
    double base_threshold = 0.5;
    /// When false, the base threshold is applied verbatim (the static
    /// variant of earlier works, e.g. Khemka et al. [16]).
    bool adaptive = true;
  };

  ThresholdDropper() : params_() {}
  explicit ThresholdDropper(Params params) : params_(params) {}

  std::string_view name() const override { return "Threshold"; }
  const Params& params() const { return params_; }

  void run(SystemView& view, SchedulerOps& ops) override;

 private:
  Params params_;
};

}  // namespace taskdrop
