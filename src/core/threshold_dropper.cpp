#include "core/threshold_dropper.hpp"

#include <algorithm>

namespace taskdrop {

void ThresholdDropper::run(SystemView& view, SchedulerOps& ops) {
  double effective = params_.base_threshold;
  if (params_.adaptive) {
    std::size_t queued = 0;
    std::size_t slots = 0;
    for (const Machine& machine : *view.machines) {
      queued += machine.queue.size();
      slots += static_cast<std::size_t>(machine.capacity);
    }
    const double fill =
        slots == 0 ? 0.0
                   : std::clamp(static_cast<double>(queued) /
                                    static_cast<double>(slots),
                                0.0, 1.0);
    effective *= fill;
  }
  if (effective <= 0.0) return;

  for (Machine& machine : *view.machines) {
    CompletionModel& model = (*view.models)[static_cast<std::size_t>(machine.id)];
    std::size_t pos = machine.first_pending_pos();
    while (pos < machine.queue.size()) {
      if (model.chance(pos) < effective) {
        ops.drop_queued_task(machine.id, pos);
        // Dropping improves the successors' chances; re-evaluate the task
        // that shifted into this position before moving on.
      } else {
        ++pos;
      }
    }
  }
}

}  // namespace taskdrop
