#include "core/approx_dropper.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

#include "prob/convolution.hpp"

namespace taskdrop {
namespace {

constexpr std::ptrdiff_t kNone = -1;

/// Weighted utility of queue window [first, last] given the predecessor
/// chain start: each position's chance of success (Eq. 2 over the Eq. 1
/// chain) weighted 1.0 for full-quality tasks and `approx_weight` for
/// approximate ones. `skipped_pos` simulates a provisional drop;
/// `downgraded_pos` simulates a provisional downgrade.
double weighted_window_utility(const Pmf& pred, const Machine& machine,
                               const std::vector<Task>& tasks,
                               const PetMatrix& pet,
                               const PetMatrix* approx_pet,
                               std::size_t first, std::size_t last,
                               double approx_weight,
                               std::ptrdiff_t skipped_pos,
                               std::ptrdiff_t downgraded_pos,
                               PmfWorkspace& ws) {
  if (machine.queue.empty() || first >= machine.queue.size()) return 0.0;
  last = std::min(last, machine.queue.size() - 1);
  double utility = 0.0;
  Pmf& chain = ws.chain;
  chain = pred;
  for (std::size_t i = first; i <= last; ++i) {
    if (static_cast<std::ptrdiff_t>(i) == skipped_pos) continue;
    const Task& task = tasks[static_cast<std::size_t>(machine.queue[i])];
    const bool approx_mode =
        task.approximate || static_cast<std::ptrdiff_t>(i) == downgraded_pos;
    const Pmf& exec = approx_mode && approx_pet != nullptr
                          ? approx_pet->pmf(task.type, machine.type)
                          : pet.pmf(task.type, machine.type);
    deadline_convolve_into(chain, exec, task.deadline, ws, chain);
    utility +=
        (approx_mode ? approx_weight : 1.0) * chain.mass_before(task.deadline);
  }
  return utility;
}

}  // namespace

ApproxDropper::ApproxDropper(Params params) : params_(params) {
  if (params_.effective_depth < 1) {
    throw std::invalid_argument("approx dropper: eta must be >= 1, got " +
                                std::to_string(params_.effective_depth));
  }
  if (params_.beta < 1.0) {
    throw std::invalid_argument("approx dropper: beta must be >= 1, got " +
                                std::to_string(params_.beta));
  }
}

void ApproxDropper::run(SystemView& view, SchedulerOps& ops) {
  assert(params_.effective_depth >= 1);
  assert(params_.beta >= 1.0);
  const auto eta = static_cast<std::size_t>(params_.effective_depth);
  const double weight = view.approx_pet != nullptr ? view.approx_weight : 1.0;
  examined_versions_.resize(view.machines->size(), ~std::uint64_t{0});

  for (Machine& machine : *view.machines) {
    CompletionModel& model =
        (*view.models)[static_cast<std::size_t>(machine.id)];
    auto& examined = examined_versions_[static_cast<std::size_t>(machine.id)];
    if (model.revision() == examined) continue;

    std::size_t pos = machine.first_pending_pos();
    while (pos < machine.queue.size()) {
      const bool is_last = pos + 1 == machine.queue.size();
      const std::size_t window_end =
          std::min(pos + eta, machine.queue.size() - 1);
      const Task& task =
          (*view.tasks)[static_cast<std::size_t>(machine.queue[pos])];
      const Pmf& pred = model.predecessor(pos);

      // Keep utility straight from the model's cached chain: the cached
      // per-slot chances are the same convolution sequence the provisional
      // keep walk would rebuild, so folding them (in the same ascending
      // order, with the same weights) is bit-identical and saves one full
      // window walk per examined position.
      double keep = 0.0;
      for (std::size_t n = pos; n <= window_end; ++n) {
        const Task& kept =
            (*view.tasks)[static_cast<std::size_t>(machine.queue[n])];
        keep += (kept.approximate ? weight : 1.0) * model.chance(n);
      }
      const double drop =
          is_last ? -1.0
                  : weighted_window_utility(
                        pred, machine, *view.tasks, *view.pet, view.approx_pet,
                        pos, window_end, weight,
                        static_cast<std::ptrdiff_t>(pos), kNone, ws_);
      const double downgrade =
          task.approximate || view.approx_pet == nullptr
              ? -1.0
              : weighted_window_utility(
                    pred, machine, *view.tasks, *view.pet, view.approx_pet,
                    pos, window_end, weight, kNone,
                    static_cast<std::ptrdiff_t>(pos), ws_);

      const double best = std::max(drop, downgrade);
      if (best > params_.beta * keep) {
        if (drop >= downgrade) {
          ops.drop_queued_task(machine.id, pos);
          // Re-examine the task that shifted into this position.
        } else {
          ops.downgrade_task(machine.id, pos);
          ++pos;  // the downgraded task was just optimised; move on
        }
      } else {
        ++pos;
      }
    }
    examined = model.revision();
  }
}

}  // namespace taskdrop
