#include "core/optimal_dropper.hpp"

#include <cassert>
#include <vector>

#include "prob/convolution.hpp"

namespace taskdrop {
namespace {

/// Instantaneous robustness (Eq. 3) of one machine queue when the pending
/// positions in `dropped_mask` (bit k = droppable position k) are removed.
/// `droppable` maps mask bits to queue positions.
double robustness_without(const Machine& machine, const std::vector<Task>& tasks,
                          const PetMatrix& pet, const PetMatrix* approx_pet,
                          CompletionModel& model,
                          const std::vector<std::size_t>& droppable,
                          unsigned mask, PmfWorkspace& ws) {
  // Chain over the surviving queue, starting from the running task's
  // completion (whose chance is unaffected by pending drops) or from the
  // idle-machine base. The candidate chain lives in the dropper's
  // workspace, so evaluating all 2^(q-1) subsets allocates nothing.
  double sum = 0.0;
  Pmf& chain = ws.chain;
  std::size_t start = machine.first_pending_pos();
  if (machine.running) {
    sum += model.chance(0);
    chain = model.completion(0);
  } else {
    chain = model.predecessor(start);
  }
  std::size_t bit = 0;
  for (std::size_t pos = start; pos < machine.queue.size(); ++pos) {
    const bool dropped = bit < droppable.size() && droppable[bit] == pos &&
                         ((mask >> bit) & 1u);
    if (bit < droppable.size() && droppable[bit] == pos) ++bit;
    if (dropped) continue;
    const Task& task = tasks[static_cast<std::size_t>(machine.queue[pos])];
    deadline_convolve_into(chain,
                           execution_pmf(task, machine.type, pet, approx_pet),
                           task.deadline, ws, chain);
    sum += chain.mass_before(task.deadline);
  }
  return sum;
}

}  // namespace

void OptimalDropper::run(SystemView& view, SchedulerOps& ops) {
  examined_versions_.resize(view.machines->size(), ~std::uint64_t{0});
  for (Machine& machine : *view.machines) {
    CompletionModel& model = (*view.models)[static_cast<std::size_t>(machine.id)];
    auto& examined = examined_versions_[static_cast<std::size_t>(machine.id)];
    if (model.structure_version() == examined) continue;
    examined = model.structure_version();
    // Droppable positions: pending tasks except the queue's last task.
    std::vector<std::size_t> droppable;
    for (std::size_t pos = machine.first_pending_pos();
         pos + 1 < machine.queue.size(); ++pos) {
      droppable.push_back(pos);
    }
    if (droppable.empty()) continue;
    assert(droppable.size() < 8 * sizeof(unsigned));

    unsigned best_mask = 0;
    int best_popcount = 0;
    double best_robustness =
        robustness_without(machine, *view.tasks, *view.pet, view.approx_pet,
                           model, droppable, 0u, ws_);
    const unsigned subsets = 1u << droppable.size();
    for (unsigned mask = 1; mask < subsets; ++mask) {
      const double r =
          robustness_without(machine, *view.tasks, *view.pet, view.approx_pet,
                             model, droppable, mask, ws_);
      const int popcount = __builtin_popcount(mask);
      // Strictly better, or equal with fewer drops. A small epsilon keeps
      // floating-point ties from flapping toward needless drops.
      if (r > best_robustness + 1e-12 ||
          (r > best_robustness - 1e-12 && popcount < best_popcount)) {
        best_robustness = r;
        best_mask = mask;
        best_popcount = popcount;
      }
    }

    if (best_mask == 0) continue;
    // Apply drops back-to-front so earlier positions stay valid.
    for (std::size_t bit = droppable.size(); bit-- > 0;) {
      if ((best_mask >> bit) & 1u) {
        ops.drop_queued_task(machine.id, droppable[bit]);
      }
    }
    // The post-drop queue is the optimum we just computed; no need to
    // re-examine it until something else mutates it.
    examined = model.structure_version();
  }
}

}  // namespace taskdrop
