#include "core/optimal_dropper.hpp"

#include <cassert>
#include <vector>

#include "prob/convolution.hpp"

namespace taskdrop {
namespace {

/// One subset-enumeration pass over a machine queue, sharing provisional
/// chain prefixes across subsets.
///
/// The droppable positions are the consecutive pending positions
/// [start, q-2]; the last task is always kept. Instead of rebuilding the
/// surviving chain from scratch per subset (2^k walks of up to k+1
/// convolutions each), the enumeration branches on the lowest dropped
/// position b: every position before b is kept, so its chance comes from
/// the model's cached chain (ensure() built it with the identical
/// convolution sequence), and the subtree of subsets behind b shares each
/// chain prefix — one convolution per enumeration-tree edge instead of one
/// per (subset, position). All 2^k robustness values land in `results`
/// indexed by drop mask, so the selection loop can scan masks in plain
/// ascending order and stays bit-identical to the direct evaluation,
/// epsilon tie-breaks included.
class SubsetEnumerator {
 public:
  SubsetEnumerator(const Machine& machine, const std::vector<Task>& tasks,
                   const PetMatrix& pet, const PetMatrix* approx_pet,
                   CompletionModel& model, std::size_t droppable_count,
                   PmfWorkspace& ws, std::vector<Pmf>& chain_stack,
                   std::vector<double>& results)
      : machine_(machine), tasks_(tasks), pet_(pet), approx_pet_(approx_pet),
        model_(model), start_(machine.first_pending_pos()),
        k_(droppable_count), ws_(ws), chain_stack_(chain_stack),
        results_(results) {
    if (chain_stack_.size() < k_ + 1) chain_stack_.resize(k_ + 1);
    results_.assign(std::size_t{1} << k_, 0.0);
  }

  void enumerate() {
    // Mask 0 (keep everything) is the model's cached Eq. 3 sum.
    double keep_all = 0.0;
    for (std::size_t pos = 0; pos < machine_.queue.size(); ++pos) {
      keep_all += model_.chance(pos);
    }
    results_[0] = keep_all;

    // Subtrees by lowest dropped position. The prefix [0, start_+b) is
    // kept, so its chance sum folds the cached per-slot chances in the
    // same ascending order the direct walk used.
    double prefix_sum = 0.0;
    for (std::size_t i = 0; i < start_; ++i) prefix_sum += model_.chance(i);
    for (std::size_t b = 0; b < k_; ++b) {
      const std::size_t pos = start_ + b;
      descend(b + 1, model_.predecessor(pos), prefix_sum,
              1u << b, /*depth=*/0);
      prefix_sum += model_.chance(pos);
    }
  }

 private:
  const Pmf& exec_of(std::size_t pos) const {
    const Task& task =
        tasks_[static_cast<std::size_t>(machine_.queue[pos])];
    return execution_pmf(task, machine_.type, pet_, approx_pet_);
  }

  /// Extends `chain` over droppable bits [bit, k_) then the always-kept
  /// queue tail, recording one robustness per completed mask.
  void descend(std::size_t bit, const Pmf& chain, double sum, unsigned mask,
               std::size_t depth) {
    if (bit == k_) {
      const std::size_t last = machine_.queue.size() - 1;
      const Task& task =
          tasks_[static_cast<std::size_t>(machine_.queue[last])];
      Pmf& out = chain_stack_[depth];
      deadline_convolve_into(chain, exec_of(last), task.deadline, ws_, out);
      results_[mask] = sum + out.mass_before(task.deadline);
      return;
    }
    const std::size_t pos = start_ + bit;
    const Task& task = tasks_[static_cast<std::size_t>(machine_.queue[pos])];
    // Keep position `pos`: one convolution shared by the whole subtree.
    Pmf& kept = chain_stack_[depth];
    deadline_convolve_into(chain, exec_of(pos), task.deadline, ws_, kept);
    descend(bit + 1, kept, sum + kept.mass_before(task.deadline), mask,
            depth + 1);
    // Drop position `pos`: the chain and sum pass through unchanged.
    descend(bit + 1, chain, sum, mask | (1u << bit), depth);
  }

  const Machine& machine_;
  const std::vector<Task>& tasks_;
  const PetMatrix& pet_;
  const PetMatrix* approx_pet_;
  CompletionModel& model_;
  std::size_t start_;
  std::size_t k_;
  PmfWorkspace& ws_;
  std::vector<Pmf>& chain_stack_;
  std::vector<double>& results_;
};

}  // namespace

void OptimalDropper::run(SystemView& view, SchedulerOps& ops) {
  examined_versions_.resize(view.machines->size(), ~std::uint64_t{0});
  for (Machine& machine : *view.machines) {
    CompletionModel& model = (*view.models)[static_cast<std::size_t>(machine.id)];
    auto& examined = examined_versions_[static_cast<std::size_t>(machine.id)];
    if (model.revision() == examined) continue;
    examined = model.revision();
    // Droppable positions: pending tasks except the queue's last task.
    const std::size_t start = machine.first_pending_pos();
    const std::size_t droppable_count =
        machine.queue.size() > start + 1 ? machine.queue.size() - start - 1
                                         : 0;
    if (droppable_count == 0) continue;
    assert(droppable_count < 8 * sizeof(unsigned));

    SubsetEnumerator enumerator(machine, *view.tasks, *view.pet,
                                view.approx_pet, model, droppable_count, ws_,
                                chain_stack_, results_);
    enumerator.enumerate();

    unsigned best_mask = 0;
    int best_popcount = 0;
    double best_robustness = results_[0];
    const unsigned subsets = 1u << droppable_count;
    for (unsigned mask = 1; mask < subsets; ++mask) {
      const double r = results_[mask];
      const int popcount = __builtin_popcount(mask);
      // Strictly better, or equal with fewer drops. A small epsilon keeps
      // floating-point ties from flapping toward needless drops.
      if (r > best_robustness + 1e-12 ||
          (r > best_robustness - 1e-12 && popcount < best_popcount)) {
        best_robustness = r;
        best_mask = mask;
        best_popcount = popcount;
      }
    }

    if (best_mask == 0) continue;
    // Apply drops back-to-front so earlier positions stay valid.
    for (std::size_t bit = droppable_count; bit-- > 0;) {
      if ((best_mask >> bit) & 1u) {
        ops.drop_queued_task(machine.id, start + bit);
      }
    }
    // The post-drop queue is the optimum we just computed; no need to
    // re-examine it until something else mutates it.
    examined = model.revision();
  }
}

}  // namespace taskdrop
