#pragma once

#include <cstddef>
#include <vector>

#include "pet/pet_matrix.hpp"
#include "prob/pmf.hpp"
#include "prob/sampler.hpp"
#include "prob/workspace.hpp"
#include "sim/machine.hpp"
#include "sim/task.hpp"
#include "util/time_types.hpp"

namespace taskdrop {

/// Per-machine stochastic completion-time model (Eqs. 1–3 of the paper).
///
/// For a machine queue [T_0, T_1, ..., T_{q-1}] (front = running task when
/// the machine is busy), the completion-time PMF of position i is
///
///   c_0 = start-time delta (x) exec PMF            (running: no truncation —
///                                                    the task already started)
///   c_i = deadline_convolve(c_{i-1}, E_i, delta_i) (Eq. 1)
///
/// and the chance of success of position i is c_i's mass before delta_i
/// (Eq. 2).
///
/// The chain is maintained incrementally with dirty-index tracking: PMFs
/// are cached per position together with a per-slot cumulative-mass view
/// (PmfCdf), and recomputed lazily from the first position whose
/// predecessor chain changed. Appending one task (the common mapping-event
/// mutation) re-convolves only the new tail slot; dropping a mid-queue task
/// re-convolves only the suffix from its position. Rebuilds run through a
/// shared PmfWorkspace, so steady-state chain maintenance performs no
/// allocation.
///
/// On top of the chain cache sits a revision-keyed appended-distribution
/// cache: the provisional "what if a task of type t were appended here"
/// distribution depends only on (machine state, task type) — a candidate's
/// deadline is just a CDF evaluation point — so its cumulative table is
/// built at most once per (machine, task type) per revision and every
/// further probe is an O(1) lookup (chance_if_appended / appended_view).
///
/// The model reads the machine's queue and the global task table at query
/// time; the engine owns both and calls invalidate_* on every structural
/// mutation (enqueue, drop, start, completion).
class CompletionModel {
 public:
  struct Options {
    /// When true, the running task's completion PMF is conditioned on the
    /// fact that it has not finished yet (mass at or before `now` is
    /// discarded and the rest renormalised). The paper uses the
    /// unconditioned PMF; conditioning is this repo's extension, ablated in
    /// bench/ablation_conditioning.
    bool condition_running = false;
    /// Approximate-computing extension: the time-scaled PET consulted for
    /// tasks whose `approximate` flag is set. Null disables the extension.
    const PetMatrix* approx_pet = nullptr;
    /// Test knob: disables every chain-keep fast path (the conditioned
    /// set_now keep and the notify_head_started keep), forcing the
    /// conservative invalidate-and-rebuild behaviour those paths replaced.
    /// The chain-keep differential suites run both settings and require
    /// bitwise-identical chains and decisions. Decision-neutral by
    /// construction, so it is not part of any serialised configuration.
    bool paranoid_rebuild = false;
  };

  CompletionModel() = default;
  /// `workspace` is optional shared convolution scratch (the engine passes
  /// one workspace to all its per-machine models); the model owns a private
  /// workspace when none is given.
  CompletionModel(const PetMatrix* pet, const Machine* machine,
                  const std::vector<Task>* tasks, Options options,
                  PmfWorkspace* workspace = nullptr);

  /// Must be called whenever simulated time advances (the idle-machine base
  /// PMF and the conditioned running PMF depend on `now`).
  void set_now(Tick now);

  /// Invalidates cached completion PMFs from queue position `pos` on.
  void invalidate_from(std::size_t pos);
  void invalidate_all() { invalidate_from(0); }

  /// The queue head just transitioned from pending to running with
  /// run_start == now (a Start event). When the cached slot 0 is still
  /// rooted at delta(now) — guaranteed whenever anything is cached, because
  /// set_now rebases every non-running machine with a non-empty queue on
  /// each time advance — and the head started strictly before `deadline`,
  /// the pending slot's deadline truncation was vacuous and the running
  /// slot is bit-identical to it: the whole chain plus the value memos
  /// keyed on it stay valid, and only the revision is bumped (see
  /// bump_revision for why consumers must still observe the start). Falls
  /// back to invalidate_all whenever the keep precondition does not hold —
  /// conditioning enabled (normalize rescales slot 0 even when nothing is
  /// stripped), run_start != now, a start at or past the deadline, or the
  /// paranoid_rebuild knob. Replaces the blanket invalidate the failure
  /// and volatile-machine paths used to pay on every start.
  void notify_head_started(Tick deadline);

  /// Bumps the revision without touching the cached chain. The engine
  /// calls this when a queue head starts executing with run_start == now:
  /// the chain PMFs are bit-identical before and after (the pending head's
  /// deadline truncation was vacuous), so the chain and the value memos
  /// keyed on it stay valid — but revision-keyed consumers must still
  /// observe the start. The proactive droppers' single head-to-tail pass
  /// is order-dependent (a drop at position i changes the influence zones
  /// of the positions already examined), and their examined-revision skip
  /// uses the re-examination this bump schedules to reach the same fixed
  /// point the always-invalidate engine reached.
  void bump_revision() { ++version_; }

  /// Monotone counter bumped by every invalidate_from/invalidate_all and
  /// by bump_revision. Chances of success only change when the queue
  /// structure (or the conditioned base) changes, so droppers use it to
  /// skip machines whose queues they already examined in a previous
  /// mapping event.
  std::uint64_t revision() const { return version_; }

  /// Completion-time PMF of queue position `pos` (Eq. 1).
  const Pmf& completion(std::size_t pos);

  /// Cached cumulative-mass view of completion(pos): P(X < t) in O(1),
  /// bit-identical to completion(pos).mass_before(t). Views are rebuilt
  /// lazily on first access after an invalidation, so chain maintenance
  /// never pays for them.
  const PmfCdf& completion_cdf(std::size_t pos);

  /// Chance of success of queue position `pos` (Eq. 2).
  double chance(std::size_t pos);

  /// Completion PMF of the predecessor of `pos`: c_{pos-1}, or the machine
  /// base distribution (start-availability) for pos == 0. The reference is
  /// valid until the next mutation or set_now call.
  const Pmf& predecessor(std::size_t pos);

  /// Completion PMF of the last queued task — the distribution of when the
  /// machine would start a newly appended task. delta(now) when idle-empty.
  const Pmf& tail();

  /// Mean of tail(), memoised per revision (hot in the mapping heuristics'
  /// phase-2 expected-completion scans, which query it once per candidate
  /// (task, machine) pair per round).
  double tail_mean();

  /// Instantaneous robustness of this machine queue — Eq. 3: the sum of
  /// chances of success over all queued tasks (running task included).
  double instantaneous_robustness();

  /// Chance of success a task of type `type` with deadline `deadline`
  /// would have if appended to the current queue tail (used by PAM's
  /// phase 1 and by the threshold dropper's deferral logic). Computed as
  ///   sum_k tail(k) * P(E < deadline - k)   over k < deadline,
  /// i.e. a dot product of the cached tail PMF against the execution CDF —
  /// Eq. 2 applied to Eq. 1 without materialising the convolution, in the
  /// same summation order so probe and chain decisions stay bit-compatible.
  ///
  /// The dot product is memoised per (task type, deadline lattice cell)
  /// into the revision-keyed appended-distribution cache (see
  /// appended_view): the appended chance is piecewise constant between
  /// points of the combined tail x execution lattice, so one evaluation
  /// per cell serves every deadline that snaps to it. A mapping-event scan
  /// that probes the same (machine, task) pair across successive PAM
  /// rounds — or across events that leave this queue untouched — pays the
  /// O(|tail|) fold once and O(1) afterwards, bit-identically.
  double chance_if_appended(TaskTypeId type, Tick deadline);

  /// Cumulative view of the appended-completion distribution for `type`:
  /// mass_before(d) is exactly chance_if_appended(type, d) for every d.
  /// Built at most once per (machine, task type) per revision into
  /// per-model cached storage; a phase-1 scan evaluating one view at many
  /// deadlines is a few table builds plus O(1) lookups instead of one
  /// tail-fold per (candidate, machine) pair. Throws std::invalid_argument
  /// when the tail and execution lattices are incompatible (mixed strides
  /// — never the case for PMFs built by one scenario). The reference is
  /// valid until the next mutation of this machine's queue.
  const PmfCdf& appended_view(TaskTypeId type);

 private:
  /// Per-(task type) appended-distribution cache entry. `value[i]` holds
  /// the appended chance at combined-lattice point offset + i*stride,
  /// filled lazily cell by cell (chance_if_appended) or fully
  /// (appended_view); `known` tracks which cells are filled.
  ///
  /// Cell evaluation is O(|exec|) instead of the direct fold's O(|tail|):
  /// in the ascending-time dot product sum_i p_i * E(d - k_i), every tail
  /// bin with d - k_i beyond the execution support contributes exactly
  /// p_i * E_total, and those bins come *first* in ascending order — so
  /// their running sums are the left-fold prefixes cached in `sat_prefix`
  /// and each cell only folds the O(|exec|) window of unsaturated terms on
  /// top of the matching prefix, reproducing the direct fold bit for bit.
  struct AppendedSlot {
    Tick offset = 0;
    Tick stride = 1;
    std::vector<double> value;
    std::vector<unsigned char> known;
    /// sat_prefix[i] = left fold of p_0*E_total .. p_i*E_total over the
    /// tail PMF, where E_total is the execution CDF's total mass.
    std::vector<double> sat_prefix;
    /// The cached tail and execution PMFs the cells fold over; stable for
    /// the lifetime of the stamp (invalidations restamp before reuse).
    const Pmf* pred = nullptr;
    const Pmf* exec = nullptr;
    PmfCdf view;
    bool view_ready = false;
    /// Tail/exec stride mismatch: fall back to direct evaluation.
    bool incompatible = false;
    std::uint64_t revision = 0;
    bool stamped = false;
  };

  const Pmf& exec_pmf(std::size_t pos) const;
  void ensure(std::size_t pos);
  void compute_running_completion(Pmf& out);
  /// TASKDROP_AUDIT cross-check (sampled from ensure): recompute the chain
  /// [0, pos] from scratch with the allocating kernels and require bitwise
  /// equality with the incrementally maintained completions_/chances_.
  void audit_verify_chain(std::size_t pos);
  AppendedSlot& appended_slot(TaskTypeId type);
  double appended_cell(AppendedSlot& slot, TaskTypeId type, std::size_t cell);
  double direct_chance_if_appended(TaskTypeId type, Tick deadline);
  PmfWorkspace& workspace() {
    return shared_ws_ != nullptr ? *shared_ws_ : owned_ws_;
  }

  const PetMatrix* pet_ = nullptr;
  const Machine* machine_ = nullptr;
  const std::vector<Task>* tasks_ = nullptr;
  Options options_;
  Tick now_ = 0;

  /// First kept bin of the conditioned running-task slot (valid while the
  /// machine is running, condition_running is set, and valid_count_ > 0):
  /// the conditioned slot 0 is bitwise unchanged while now_ stays strictly
  /// below it, because the stripped bin set and the renormalising mass are
  /// both unchanged. Degenerate point masses keep forever (Tick max).
  Tick cond_keep_below_ = 0;

  /// delta(now_): the idle machine's start-availability distribution. Kept
  /// materialised so predecessor()/ensure() never build temporaries.
  Pmf base_;
  /// Scratch delta for the running task's start time.
  Pmf start_;

  std::vector<Pmf> completions_;
  /// Lazily-rebuilt cumulative views over completions_; valid for slots
  /// below cdf_valid_count_ (always <= valid_count_).
  std::vector<PmfCdf> cdfs_;
  std::vector<double> chances_;
  std::size_t valid_count_ = 0;
  std::size_t cdf_valid_count_ = 0;
  std::uint64_t version_ = 0;
  /// Bumped only by invalidate_from — i.e. exactly when the cached chain
  /// contents change. bump_revision (a start with an unchanged chain)
  /// advances version_ but not this, so the value memos below survive it.
  std::uint64_t chain_version_ = 0;

  /// Appended-distribution cache, one slot per task type (sized on first
  /// use). Slots are stamped with the chain version they were built at;
  /// the idle-empty queue is evaluated directly (it depends on `now`, not
  /// on the revision, and costs a single execution-CDF lookup anyway).
  std::vector<AppendedSlot> appended_;

  /// tail_mean memo (valid while tail_mean_revision_ == chain_version_ and
  /// the queue is non-empty; the empty-queue mean is just `now`).
  double tail_mean_ = 0.0;
  std::uint64_t tail_mean_revision_ = 0;
  bool tail_mean_valid_ = false;

  /// TASKDROP_AUDIT sampling counters, one per audited memo so a chatty
  /// site cannot starve the others (unused in normal builds, where the
  /// audit gates fold to constant false).
  std::uint64_t audit_chain_counter_ = 0;
  std::uint64_t audit_appended_counter_ = 0;
  std::uint64_t audit_tail_mean_counter_ = 0;

  PmfWorkspace* shared_ws_ = nullptr;
  PmfWorkspace owned_ws_;
};

/// Execution PMF of `task` on machine type `machine_type`, honouring the
/// task's approximate flag when `approx_pet` is non-null.
const Pmf& execution_pmf(const Task& task, MachineTypeId machine_type,
                         const PetMatrix& pet, const PetMatrix* approx_pet);

/// Sum of the chances of success of queue positions [first, last] when their
/// predecessor chain starts from `pred` — the window quantity of Eqs. 4–7.
/// Positions index `machine.queue`; `last` is clamped to the queue tail.
/// This is the "what-if" primitive shared by the proactive heuristic
/// (provisional drop of one task, Eq. 8) and the optimal subset search.
/// When `ws` is given the provisional chain lives in ws->chain and the walk
/// allocates nothing in steady state; `pred` must not alias ws->chain.
double window_chance_sum(const Pmf& pred, const Machine& machine,
                         const std::vector<Task>& tasks, const PetMatrix& pet,
                         std::size_t first, std::size_t last,
                         const PetMatrix* approx_pet = nullptr,
                         PmfWorkspace* ws = nullptr);

}  // namespace taskdrop
