#pragma once

#include <cstddef>
#include <vector>

#include "pet/pet_matrix.hpp"
#include "prob/pmf.hpp"
#include "prob/sampler.hpp"
#include "prob/workspace.hpp"
#include "sim/machine.hpp"
#include "sim/task.hpp"
#include "util/time_types.hpp"

namespace taskdrop {

/// Per-machine stochastic completion-time model (Eqs. 1–3 of the paper).
///
/// For a machine queue [T_0, T_1, ..., T_{q-1}] (front = running task when
/// the machine is busy), the completion-time PMF of position i is
///
///   c_0 = start-time delta (x) exec PMF            (running: no truncation —
///                                                    the task already started)
///   c_i = deadline_convolve(c_{i-1}, E_i, delta_i) (Eq. 1)
///
/// and the chance of success of position i is c_i's mass before delta_i
/// (Eq. 2).
///
/// The chain is maintained incrementally with dirty-index tracking: PMFs
/// are cached per position together with a per-slot cumulative-mass view
/// (PmfCdf), and recomputed lazily from the first position whose
/// predecessor chain changed. Appending one task (the common mapping-event
/// mutation) re-convolves only the new tail slot; dropping a mid-queue task
/// re-convolves only the suffix from its position. Rebuilds run through a
/// shared PmfWorkspace, so steady-state chain maintenance performs no
/// allocation.
///
/// The model reads the machine's queue and the global task table at query
/// time; the engine owns both and calls invalidate_* on every structural
/// mutation (enqueue, drop, start, completion).
class CompletionModel {
 public:
  struct Options {
    /// When true, the running task's completion PMF is conditioned on the
    /// fact that it has not finished yet (mass at or before `now` is
    /// discarded and the rest renormalised). The paper uses the
    /// unconditioned PMF; conditioning is this repo's extension, ablated in
    /// bench/ablation_conditioning.
    bool condition_running = false;
    /// Approximate-computing extension: the time-scaled PET consulted for
    /// tasks whose `approximate` flag is set. Null disables the extension.
    const PetMatrix* approx_pet = nullptr;
  };

  CompletionModel() = default;
  /// `workspace` is optional shared convolution scratch (the engine passes
  /// one workspace to all its per-machine models); the model owns a private
  /// workspace when none is given.
  CompletionModel(const PetMatrix* pet, const Machine* machine,
                  const std::vector<Task>* tasks, Options options,
                  PmfWorkspace* workspace = nullptr);

  /// Must be called whenever simulated time advances (the idle-machine base
  /// PMF and the conditioned running PMF depend on `now`).
  void set_now(Tick now);

  /// Invalidates cached completion PMFs from queue position `pos` on.
  void invalidate_from(std::size_t pos);
  void invalidate_all() { invalidate_from(0); }

  /// Monotone counter bumped by every invalidation. Chances of success only
  /// change when the queue structure (or the conditioned base) changes, so
  /// droppers use this to skip machines whose queues they already examined
  /// in a previous mapping event.
  std::uint64_t structure_version() const { return version_; }

  /// Completion-time PMF of queue position `pos` (Eq. 1).
  const Pmf& completion(std::size_t pos);

  /// Cached cumulative-mass view of completion(pos): P(X < t) in O(1),
  /// bit-identical to completion(pos).mass_before(t). Views are rebuilt
  /// lazily on first access after an invalidation, so chain maintenance
  /// never pays for them.
  const PmfCdf& completion_cdf(std::size_t pos);

  /// Chance of success of queue position `pos` (Eq. 2).
  double chance(std::size_t pos);

  /// Completion PMF of the predecessor of `pos`: c_{pos-1}, or the machine
  /// base distribution (start-availability) for pos == 0. The reference is
  /// valid until the next mutation or set_now call.
  const Pmf& predecessor(std::size_t pos);

  /// Completion PMF of the last queued task — the distribution of when the
  /// machine would start a newly appended task. delta(now) when idle-empty.
  const Pmf& tail();

  /// Mean of tail(), cached (hot in the mapping heuristics' phase 1).
  double tail_mean();

  /// Instantaneous robustness of this machine queue — Eq. 3: the sum of
  /// chances of success over all queued tasks (running task included).
  double instantaneous_robustness();

  /// Chance of success a task of type `type` with deadline `deadline`
  /// would have if appended to the current queue tail (used by PAM's
  /// phase 1 and by the threshold dropper's deferral logic). Computed as
  ///   sum_k tail(k) * P(E < deadline - k)   over k < deadline,
  /// i.e. a dot product of the cached tail PMF against the execution CDF —
  /// Eq. 2 applied to Eq. 1 without materialising the convolution, in the
  /// same summation order so probe and chain decisions stay bit-compatible.
  double chance_if_appended(TaskTypeId type, Tick deadline);

 private:
  const Pmf& exec_pmf(std::size_t pos) const;
  void ensure(std::size_t pos);
  void compute_running_completion(Pmf& out);
  PmfWorkspace& workspace() {
    return shared_ws_ != nullptr ? *shared_ws_ : owned_ws_;
  }

  const PetMatrix* pet_ = nullptr;
  const Machine* machine_ = nullptr;
  const std::vector<Task>* tasks_ = nullptr;
  Options options_;
  Tick now_ = 0;

  /// delta(now_): the idle machine's start-availability distribution. Kept
  /// materialised so predecessor()/ensure() never build temporaries.
  Pmf base_;
  /// Scratch delta for the running task's start time.
  Pmf start_;

  std::vector<Pmf> completions_;
  /// Lazily-rebuilt cumulative views over completions_; valid for slots
  /// below cdf_valid_count_ (always <= valid_count_).
  std::vector<PmfCdf> cdfs_;
  std::vector<double> chances_;
  std::size_t valid_count_ = 0;
  std::size_t cdf_valid_count_ = 0;
  std::uint64_t version_ = 0;

  PmfWorkspace* shared_ws_ = nullptr;
  PmfWorkspace owned_ws_;
};

/// Execution PMF of `task` on machine type `machine_type`, honouring the
/// task's approximate flag when `approx_pet` is non-null.
const Pmf& execution_pmf(const Task& task, MachineTypeId machine_type,
                         const PetMatrix& pet, const PetMatrix* approx_pet);

/// Sum of the chances of success of queue positions [first, last] when their
/// predecessor chain starts from `pred` — the window quantity of Eqs. 4–7.
/// Positions index `machine.queue`; `last` is clamped to the queue tail.
/// This is the "what-if" primitive shared by the proactive heuristic
/// (provisional drop of one task, Eq. 8) and the optimal subset search.
/// When `ws` is given the provisional chain lives in ws->chain and the walk
/// allocates nothing in steady state; `pred` must not alias ws->chain.
double window_chance_sum(const Pmf& pred, const Machine& machine,
                         const std::vector<Task>& tasks, const PetMatrix& pet,
                         std::size_t first, std::size_t last,
                         const PetMatrix* approx_pet = nullptr,
                         PmfWorkspace* ws = nullptr);

}  // namespace taskdrop
