#include "core/proactive_heuristic_dropper.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

namespace taskdrop {

ProactiveHeuristicDropper::ProactiveHeuristicDropper(Params params)
    : params_(params) {
  if (params_.effective_depth < 1) {
    throw std::invalid_argument(
        "heuristic dropper: eta must be >= 1, got " +
        std::to_string(params_.effective_depth));
  }
  if (params_.beta < 1.0) {
    throw std::invalid_argument("heuristic dropper: beta must be >= 1, got " +
                                std::to_string(params_.beta));
  }
}

void ProactiveHeuristicDropper::run(SystemView& view, SchedulerOps& ops) {
  assert(params_.effective_depth >= 1);
  assert(params_.beta >= 1.0);
  const auto eta = static_cast<std::size_t>(params_.effective_depth);

  examined_versions_.resize(view.machines->size(), ~std::uint64_t{0});

  for (Machine& machine : *view.machines) {
    CompletionModel& model = (*view.models)[static_cast<std::size_t>(machine.id)];
    auto& examined = examined_versions_[static_cast<std::size_t>(machine.id)];
    if (model.revision() == examined) continue;
    // Single head-to-tail pass (section IV-E). Confirming a drop shifts the
    // queue left, so the position index is *not* advanced after a drop: the
    // next unexamined task slides into the current position.
    std::size_t pos = machine.first_pending_pos();
    while (pos + 1 < machine.queue.size()) {  // last task: null influence zone
      const std::size_t window_end =
          std::min(pos + eta, machine.queue.size() - 1);

      // R_keep = sum_{n=i}^{i+eta} p_nj (right-hand side of Eq. 8).
      double keep_sum = 0.0;
      for (std::size_t n = pos; n <= window_end; ++n) keep_sum += model.chance(n);

      // R_drop = sum_{n=i+1}^{i+eta} p^(i)_nj: the same window, excluding
      // task i itself, with the chain re-rooted at i's predecessor
      // (Eqs. 4–6).
      const double drop_sum =
          window_chance_sum(model.predecessor(pos), machine, *view.tasks,
                            *view.pet, pos + 1, window_end, view.approx_pet,
                            &ws_);

      if (drop_sum > params_.beta * keep_sum) {
        ops.drop_queued_task(machine.id, pos);
        // Re-examine the task that just shifted into `pos`.
      } else {
        ++pos;
      }
    }
    // Record the post-pass revision (drops above already bumped it).
    examined = model.revision();
  }
}

}  // namespace taskdrop
