#include "core/null_dropper.hpp"

namespace taskdrop {

void NullDropper::run(SystemView& /*view*/, SchedulerOps& /*ops*/) {}

}  // namespace taskdrop
