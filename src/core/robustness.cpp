#include "core/robustness.hpp"

namespace taskdrop {

double system_instantaneous_robustness(SystemView& view) {
  double sum = 0.0;
  for (CompletionModel& model : *view.models) {
    sum += model.instantaneous_robustness();
  }
  return sum;
}

}  // namespace taskdrop
