#pragma once

#include <vector>

#include "core/completion_model.hpp"
#include "pet/pet_matrix.hpp"
#include "sim/batch_queue.hpp"
#include "sim/machine.hpp"
#include "sim/task.hpp"
#include "util/time_types.hpp"

namespace taskdrop {

/// Read view of the whole resource-allocation system handed to mapping
/// heuristics and dropping mechanisms at each mapping event. All pointers
/// reference engine-owned storage that outlives the call.
struct SystemView {
  Tick now = 0;
  const PetMatrix* pet = nullptr;
  /// Approximate-computing extension: the time-scaled PET used for tasks
  /// running in approximate mode. Null when the extension is disabled.
  const PetMatrix* approx_pet = nullptr;
  /// Utility weight of an on-time approximate completion (vs 1.0 for full).
  double approx_weight = 0.5;
  std::vector<Task>* tasks = nullptr;
  std::vector<Machine>* machines = nullptr;
  /// One completion model per machine, same indexing as `machines`.
  std::vector<CompletionModel>* models = nullptr;
  /// Unmapped tasks in arrival order (the batch queue of Fig. 1).
  const BatchQueue* batch_queue = nullptr;

  Task& task(TaskId id) const { return (*tasks)[static_cast<std::size_t>(id)]; }
};

/// Mutation interface implemented by the engine. Mappers and droppers act
/// on the system exclusively through these operations, which keep the
/// machine queues, task states and completion models consistent.
class SchedulerOps {
 public:
  virtual ~SchedulerOps() = default;

  /// Moves an unmapped task from the batch queue to the tail of the given
  /// machine's queue. The machine must have a free slot.
  virtual void assign_task(TaskId task, MachineId machine) = 0;

  /// Proactively drops the pending task at queue position `pos` of
  /// `machine` (must not be the running position).
  virtual void drop_queued_task(MachineId machine, std::size_t pos) = 0;

  /// Approximate-computing extension: switches the pending task at `pos`
  /// to approximate mode (time-scaled execution, partial utility). Must not
  /// be the running position; a no-op if the task is already approximate.
  virtual void downgrade_task(MachineId machine, std::size_t pos) = 0;
};

}  // namespace taskdrop
