#pragma once

#include "core/dropper.hpp"
#include "prob/workspace.hpp"

namespace taskdrop {

/// Approximate-computing dropping — the paper's stated future work
/// (section VI: "we plan to extend the probabilistic analysis to consider
/// approximately computing tasks, in addition to task dropping").
///
/// Like the proactive heuristic, this mechanism walks each machine queue
/// once and examines every pending task i against its effective-depth
/// window. But where the heuristic's only lever is *drop*, this one has
/// two:
///
///   * drop task i           — window utility becomes   sum p^(i)_n
///   * downgrade task i      — task i switches to its approximate variant
///                             (execution PMF time-scaled by the engine's
///                             ApproxModel) and contributes only
///                             `approx_weight` per unit of success chance:
///                             window utility = w * p~_i + sum p~_n
///
/// The baseline is the weighted keep utility (tasks already approximate
/// contribute with weight w). The best option is taken when it beats
/// beta * keep — the same autonomous, threshold-free decision rule as
/// Eq. 8, generalised from robustness to expected utility. Unlike dropping,
/// downgrading is also considered for the *last* task in a queue: it has no
/// influence zone, but shrinking its own execution raises its own chance.
///
/// Requires the engine's approximate-computing extension to be enabled
/// (SystemView::approx_pet non-null); otherwise behaves exactly like
/// ProactiveHeuristicDropper.
class ApproxDropper final : public Dropper {
 public:
  struct Params {
    int effective_depth = 2;  ///< eta
    double beta = 1.0;        ///< utility improvement factor (>= 1)
  };

  ApproxDropper() : params_() {}
  /// Throws std::invalid_argument for eta < 1 or beta < 1 (same contract
  /// as ProactiveHeuristicDropper).
  explicit ApproxDropper(Params params);

  std::string_view name() const override { return "Approx"; }
  const Params& params() const { return params_; }

  void run(SystemView& view, SchedulerOps& ops) override;

 private:
  Params params_;
  std::vector<std::uint64_t> examined_versions_;
  /// Scratch for the provisional keep/drop/downgrade chains.
  PmfWorkspace ws_;
};

}  // namespace taskdrop
