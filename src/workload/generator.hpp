#pragma once

#include <cstdint>

#include "pet/pet_matrix.hpp"
#include "workload/arrival.hpp"
#include "workload/trace.hpp"

namespace taskdrop {

/// Parameters of one workload trial.
struct WorkloadConfig {
  int n_tasks = 3000;
  /// Mean arrival rate as a multiple of the cluster's aggregate service
  /// rate (machines / grand-mean execution time). Values > 1 oversubscribe
  /// the system; the paper's 20k/30k/40k levels correspond to increasing
  /// multiples at a fixed arrival window (see DESIGN.md scaling notes).
  double oversubscription = 3.0;
  /// Slack coefficient gamma of the deadline rule. The paper does not state
  /// its value; 4.0 was calibrated so that the reproduction's absolute
  /// robustness and the ReactDrop-vs-Heuristic gaps land in the paper's
  /// reported bands (see EXPERIMENTS.md, calibration notes).
  double gamma = 4.0;
  ArrivalPattern pattern = ArrivalPattern::Poisson;
  std::uint64_t seed = 1;
};

/// Generates a trial: task types drawn uniformly, arrivals from the chosen
/// process at rate oversubscription * machine_count / pet.mean_overall(),
/// deadlines from the paper's rule.
Trace generate_trace(const PetMatrix& pet, std::size_t machine_count,
                     const WorkloadConfig& config);

}  // namespace taskdrop
