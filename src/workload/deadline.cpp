#include "workload/deadline.hpp"

#include <cassert>
#include <cmath>

namespace taskdrop {

Tick assign_deadline(Tick arrival, double task_type_mean, double grand_mean,
                     double gamma) {
  assert(task_type_mean > 0.0 && grand_mean > 0.0 && gamma >= 0.0);
  const double slack = task_type_mean + gamma * grand_mean;
  return arrival + static_cast<Tick>(std::llround(slack));
}

}  // namespace taskdrop
