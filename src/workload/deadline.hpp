#pragma once

#include "util/time_types.hpp"

namespace taskdrop {

/// The paper's deadline rule (section V-A):
///
///     delta_i = arr_i + avg_i + gamma * avg_all
///
/// where avg_i is the mean execution time of the task's type (across
/// machine types), avg_all the grand mean over all task types, and gamma a
/// slack coefficient. Every task is individually feasible (its deadline
/// leaves room for at least its own average execution), but under
/// oversubscription not all tasks can make it.
Tick assign_deadline(Tick arrival, double task_type_mean, double grand_mean,
                     double gamma);

}  // namespace taskdrop
