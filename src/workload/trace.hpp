#pragma once

#include <vector>

#include "util/time_types.hpp"

namespace taskdrop {

/// One task request of a workload trial.
struct TaskSpec {
  TaskTypeId type = 0;
  Tick arrival = 0;
  Tick deadline = 0;
};

/// A workload trial: task specs sorted by arrival time.
using Trace = std::vector<TaskSpec>;

/// True when arrivals are non-decreasing, deadlines are after arrivals and
/// task types are in [0, task_types).
bool validate_trace(const Trace& trace, int task_types);

}  // namespace taskdrop
