#pragma once

#include <iosfwd>
#include <string>

#include "workload/trace.hpp"

namespace taskdrop {

/// CSV persistence for workload traces, so synthetic trials can be archived
/// and real traces (e.g. measured video-transcoding request logs) can be
/// fed to the simulator.
///
/// Format: a header line `type,arrival,deadline` followed by one data row
/// per task. Parsing is strict: malformed rows, non-monotonic arrivals or
/// deadlines at/before arrival raise std::runtime_error.
void write_trace_csv(std::ostream& os, const Trace& trace);
void write_trace_csv_file(const std::string& path, const Trace& trace);

Trace read_trace_csv(std::istream& is);
Trace read_trace_csv_file(const std::string& path);

}  // namespace taskdrop
