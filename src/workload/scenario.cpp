#include "workload/scenario.hpp"

#include <stdexcept>

namespace taskdrop {

std::string_view to_string(ScenarioKind kind) {
  switch (kind) {
    case ScenarioKind::SpecHC: return "spec_hc";
    case ScenarioKind::Video: return "video";
    case ScenarioKind::Homogeneous: return "homogeneous";
  }
  return "?";
}

Scenario make_scenario(ScenarioKind kind, std::uint64_t seed,
                       const PetBuildOptions& options) {
  SystemProfile profile;
  switch (kind) {
    case ScenarioKind::SpecHC: profile = spec_hc_profile(); break;
    case ScenarioKind::Video: profile = video_profile(); break;
    case ScenarioKind::Homogeneous: profile = homogeneous_profile(); break;
    default: throw std::invalid_argument("unknown scenario kind");
  }
  Rng rng = Rng::derive(seed, 0x9e7);
  PetMatrix pet = build_pet_from_means(profile.mean_execution_ms, rng, options);
  return Scenario{std::move(profile), std::move(pet)};
}

}  // namespace taskdrop
