#include "workload/trace_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace taskdrop {

void write_trace_csv(std::ostream& os, const Trace& trace) {
  os << "type,arrival,deadline\n";
  for (const TaskSpec& spec : trace) {
    os << spec.type << ',' << spec.arrival << ',' << spec.deadline << '\n';
  }
}

void write_trace_csv_file(const std::string& path, const Trace& trace) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open for writing: " + path);
  write_trace_csv(os, trace);
}

Trace read_trace_csv(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line != "type,arrival,deadline") {
    throw std::runtime_error("trace CSV: missing or wrong header");
  }
  Trace trace;
  Tick prev_arrival = 0;
  std::size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream row(line);
    TaskSpec spec;
    char comma1 = 0, comma2 = 0;
    long long type = 0, arrival = 0, deadline = 0;
    if (!(row >> type >> comma1 >> arrival >> comma2 >> deadline) ||
        comma1 != ',' || comma2 != ',') {
      throw std::runtime_error("trace CSV: malformed row at line " +
                               std::to_string(line_no));
    }
    spec.type = static_cast<TaskTypeId>(type);
    spec.arrival = arrival;
    spec.deadline = deadline;
    if (spec.type < 0) {
      throw std::runtime_error("trace CSV: negative task type at line " +
                               std::to_string(line_no));
    }
    if (spec.arrival < prev_arrival) {
      throw std::runtime_error("trace CSV: arrivals not sorted at line " +
                               std::to_string(line_no));
    }
    if (spec.deadline <= spec.arrival) {
      throw std::runtime_error("trace CSV: deadline at/before arrival at line " +
                               std::to_string(line_no));
    }
    prev_arrival = spec.arrival;
    trace.push_back(spec);
  }
  return trace;
}

Trace read_trace_csv_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open for reading: " + path);
  return read_trace_csv(is);
}

}  // namespace taskdrop
