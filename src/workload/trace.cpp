#include "workload/trace.hpp"

namespace taskdrop {

bool validate_trace(const Trace& trace, int task_types) {
  Tick prev = 0;
  for (const TaskSpec& spec : trace) {
    if (spec.type < 0 || spec.type >= task_types) return false;
    if (spec.arrival < prev) return false;
    if (spec.deadline <= spec.arrival) return false;
    prev = spec.arrival;
  }
  return true;
}

}  // namespace taskdrop
