#include "workload/arrival.hpp"

#include <cassert>
#include <cmath>

namespace taskdrop {

std::vector<Tick> generate_arrivals(Rng& rng, int n, double rate_per_tick,
                                    ArrivalPattern pattern) {
  assert(n >= 0);
  assert(rate_per_tick > 0.0);
  std::vector<Tick> arrivals;
  arrivals.reserve(static_cast<std::size_t>(n));
  const double mean_gap = 1.0 / rate_per_tick;

  double clock = 0.0;
  // Bursty state: phase length in ticks and the rate multiplier to apply.
  const double phase_len = 250.0 * mean_gap;
  double phase_left = phase_len;
  bool high_phase = true;

  for (int i = 0; i < n; ++i) {
    double gap_mean = mean_gap;
    if (pattern == ArrivalPattern::Bursty) {
      // 1.5x rate in high phases, 0.5x in low phases. Phases alternate
      // evenly in *time*, so the long-run rate is the time-average of the
      // phase rates — (1.5 + 0.5) / 2 = 1.0x rate_per_tick. (A 2x/0.5x
      // split would inflate the mean to 1.25x.)
      gap_mean = high_phase ? mean_gap / 1.5 : mean_gap * 2.0;
    }
    const double gap = rng.exponential(gap_mean);
    clock += gap;
    if (pattern == ArrivalPattern::Bursty) {
      phase_left -= gap;
      while (phase_left <= 0.0) {
        phase_left += phase_len;
        high_phase = !high_phase;
      }
    }
    arrivals.push_back(static_cast<Tick>(std::llround(std::max(1.0, clock))));
  }
  // Rounding can produce equal ticks; keep them non-decreasing (they are by
  // construction) — ties are resolved by event-queue insertion order.
  return arrivals;
}

}  // namespace taskdrop
