#include "workload/generator.hpp"

#include <cassert>

#include "workload/deadline.hpp"

namespace taskdrop {

Trace generate_trace(const PetMatrix& pet, std::size_t machine_count,
                     const WorkloadConfig& config) {
  assert(machine_count > 0);
  assert(config.n_tasks >= 0);
  assert(config.oversubscription > 0.0);

  Rng arrival_rng = Rng::derive(config.seed, 0xA221);
  Rng type_rng = Rng::derive(config.seed, 0x7139);

  const double service_rate =
      static_cast<double>(machine_count) / pet.mean_overall();
  const double arrival_rate = config.oversubscription * service_rate;
  const auto arrivals = generate_arrivals(arrival_rng, config.n_tasks,
                                          arrival_rate, config.pattern);

  Trace trace;
  trace.reserve(arrivals.size());
  for (const Tick arrival : arrivals) {
    const auto type = static_cast<TaskTypeId>(
        type_rng.uniform_int(0, pet.task_type_count() - 1));
    const Tick deadline =
        assign_deadline(arrival, pet.mean_over_machines(type),
                        pet.mean_overall(), config.gamma);
    trace.push_back(TaskSpec{type, arrival, deadline});
  }
  return trace;
}

}  // namespace taskdrop
