#include "workload/scenario_registry.hpp"

#include <stdexcept>

#include "util/spec_parser.hpp"

namespace taskdrop {
namespace {

struct ScenarioEntry {
  const char* name;
  ScenarioKind kind;
};

constexpr ScenarioEntry kScenarios[] = {
    {"spec_hc", ScenarioKind::SpecHC},
    {"video", ScenarioKind::Video},
    {"homogeneous", ScenarioKind::Homogeneous},
};

}  // namespace

ScenarioKind scenario_from_name(const std::string& name) {
  for (const ScenarioEntry& entry : kScenarios) {
    if (name == entry.name) return entry.kind;
  }
  throw std::invalid_argument("unknown scenario: " + name + " (available: " +
                              join_spec_list(scenario_names()) + ")");
}

std::vector<std::string> scenario_names() {
  std::vector<std::string> names;
  for (const ScenarioEntry& entry : kScenarios) names.emplace_back(entry.name);
  return names;
}

}  // namespace taskdrop
