#pragma once

#include <string>
#include <vector>

#include "workload/scenario.hpp"

namespace taskdrop {

/// String-keyed construction of evaluation scenarios, mirroring the mapper
/// and dropper registries in sched/registry.hpp. Names are the same
/// spellings `to_string(ScenarioKind)` emits ("spec_hc", "video",
/// "homogeneous"), so configs round-trip through text. Throws
/// std::invalid_argument listing the available set for unknown names.
ScenarioKind scenario_from_name(const std::string& name);

/// All registered scenario names, in declaration order.
std::vector<std::string> scenario_names();

}  // namespace taskdrop
