#pragma once

#include <cstdint>
#include <string_view>

#include "pet/pet_builder.hpp"
#include "pet/pet_matrix.hpp"
#include "pet/profiles.hpp"

namespace taskdrop {

/// The evaluation scenarios of section V.
enum class ScenarioKind {
  SpecHC,       ///< SPECint-like 12 task types x 8 machine types (V-A)
  Video,        ///< video transcoding, 4 task types x 4 VM types (V-H)
  Homogeneous,  ///< identical machines control system (Fig. 7b)
};

std::string_view to_string(ScenarioKind kind);

/// A fully materialised scenario: the machine fleet description plus a
/// frozen PET matrix built with the paper's Gamma/histogram recipe. The
/// seed pins the PET sampling; one scenario is shared read-only by all
/// trials of an experiment.
struct Scenario {
  SystemProfile profile;
  PetMatrix pet;

  std::size_t machine_count() const { return profile.machine_types.size(); }
};

Scenario make_scenario(ScenarioKind kind, std::uint64_t seed,
                       const PetBuildOptions& options = {});

}  // namespace taskdrop
