#pragma once

#include <vector>

#include "util/rng.hpp"
#include "util/time_types.hpp"

namespace taskdrop {

/// Shape of the task arrival process. Arrival uncertainty is one of the two
/// compound uncertainties the paper targets; the generator realises it as a
/// stochastic arrival process whose *mean* rate sets the oversubscription
/// level.
enum class ArrivalPattern {
  /// Poisson process: i.i.d. exponential inter-arrival times.
  Poisson,
  /// Alternating high-/low-rate phases (1.5x and 0.5x the mean rate, so the
  /// time-averaged rate is unchanged) of roughly 250 mean-inter-arrival
  /// lengths each — a spiky arrival stream that stresses the dropper harder
  /// than Poisson at the same mean rate.
  Bursty,
};

/// Generates `n` non-decreasing arrival ticks starting after tick 0, with
/// mean rate `rate_per_tick` (tasks per tick).
std::vector<Tick> generate_arrivals(Rng& rng, int n, double rate_per_tick,
                                    ArrivalPattern pattern);

}  // namespace taskdrop
