#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace taskdrop {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue queue;
  queue.push(30, EventKind::TaskArrival, 1);
  queue.push(10, EventKind::TaskArrival, 2);
  queue.push(20, EventKind::TaskCompletion, 3);
  EXPECT_EQ(queue.size(), 3u);
  EXPECT_EQ(queue.pop().time, 10);
  EXPECT_EQ(queue.pop().time, 20);
  EXPECT_EQ(queue.pop().time, 30);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue queue;
  for (std::int64_t payload = 0; payload < 10; ++payload) {
    queue.push(5, EventKind::TaskArrival, payload);
  }
  for (std::int64_t expected = 0; expected < 10; ++expected) {
    EXPECT_EQ(queue.pop().payload, expected);
  }
}

TEST(EventQueue, InterleavedPushPopKeepsOrder) {
  EventQueue queue;
  queue.push(10, EventKind::TaskArrival, 1);
  queue.push(30, EventKind::TaskArrival, 3);
  EXPECT_EQ(queue.pop().payload, 1);
  queue.push(20, EventKind::TaskCompletion, 2);
  EXPECT_EQ(queue.pop().payload, 2);
  EXPECT_EQ(queue.pop().payload, 3);
}

TEST(EventQueue, CarriesKindAndPayload) {
  EventQueue queue;
  queue.push(7, EventKind::TaskCompletion, 42);
  const Event event = queue.pop();
  EXPECT_EQ(event.kind, EventKind::TaskCompletion);
  EXPECT_EQ(event.payload, 42);
  EXPECT_EQ(event.time, 7);
}

TEST(EventQueue, RandomisedOrderingIsTotallyConsistent) {
  EventQueue queue;
  Rng rng(17);
  std::vector<std::pair<Tick, std::uint64_t>> inserted;  // (time, seq)
  for (std::uint64_t i = 0; i < 500; ++i) {
    const Tick t = rng.uniform_int(0, 50);
    queue.push(t, EventKind::TaskArrival, static_cast<std::int64_t>(i));
    inserted.emplace_back(t, i);
  }
  Tick prev_time = -1;
  std::uint64_t prev_seq = 0;
  bool first = true;
  while (!queue.empty()) {
    const Event event = queue.pop();
    if (!first) {
      ASSERT_GE(event.time, prev_time);
      if (event.time == prev_time) {
        ASSERT_GT(event.seq, prev_seq);
      }
    }
    prev_time = event.time;
    prev_seq = event.seq;
    first = false;
  }
}

}  // namespace
}  // namespace taskdrop
