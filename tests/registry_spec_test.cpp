// String-keyed registry layer: scenario names, dropper from_spec, and the
// "unknown name lists the available set" contract the CLI relies on.
#include <gtest/gtest.h>

#include <stdexcept>

#include "sched/registry.hpp"
#include "workload/scenario_registry.hpp"

namespace taskdrop {
namespace {

TEST(ScenarioRegistry, RoundTripsEveryName) {
  const auto names = scenario_names();
  ASSERT_EQ(names.size(), 3u);
  for (const std::string& name : names) {
    EXPECT_EQ(to_string(scenario_from_name(name)), name);
  }
}

TEST(ScenarioRegistry, UnknownNameListsAvailableSet) {
  try {
    scenario_from_name("warehouse");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("spec_hc"), std::string::npos);
    EXPECT_NE(std::string(error.what()).find("video"), std::string::npos);
  }
}

TEST(MapperRegistry, UnknownNameListsAvailableSet) {
  try {
    make_mapper("NOPE");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("PAM"), std::string::npos);
    EXPECT_NE(std::string(error.what()).find("MSD"), std::string::npos);
  }
}

TEST(DropperRegistry, FromSpecBuildsEveryRegisteredKind) {
  EXPECT_EQ(DropperConfig::from_spec("reactive").kind,
            DropperConfig::Kind::ReactiveOnly);
  EXPECT_EQ(DropperConfig::from_spec("heuristic").kind,
            DropperConfig::Kind::Heuristic);
  EXPECT_EQ(DropperConfig::from_spec("optimal").kind,
            DropperConfig::Kind::Optimal);
  EXPECT_EQ(DropperConfig::from_spec("threshold").kind,
            DropperConfig::Kind::Threshold);
  EXPECT_EQ(DropperConfig::from_spec("approx").kind,
            DropperConfig::Kind::Approx);
  for (const std::string& name : dropper_names()) {
    EXPECT_EQ(DropperConfig::from_spec(name).name(), name);
    EXPECT_NE(make_dropper(DropperConfig::from_spec(name)), nullptr);
  }
}

TEST(DropperRegistry, FromSpecAppliesParameters) {
  const DropperConfig heuristic = DropperConfig::from_spec(
      "heuristic", {{"eta", "4"}, {"beta", "2.5"}});
  EXPECT_EQ(heuristic.effective_depth, 4);
  EXPECT_DOUBLE_EQ(heuristic.beta, 2.5);

  const DropperConfig threshold = DropperConfig::from_spec(
      "threshold", {{"threshold", "0.7"}, {"adaptive", "0"}});
  EXPECT_DOUBLE_EQ(threshold.base_threshold, 0.7);
  EXPECT_FALSE(threshold.adaptive_threshold);
}

TEST(DropperRegistry, FromSpecIgnoresParametersOfOtherKinds) {
  // A grid can hand every dropper the same point; irrelevant knobs are
  // dropped instead of erroring.
  const DropperConfig optimal =
      DropperConfig::from_spec("optimal", {{"eta", "5"}, {"threshold", "0.9"}});
  EXPECT_EQ(optimal.kind, DropperConfig::Kind::Optimal);
  EXPECT_EQ(optimal.effective_depth, DropperConfig::optimal().effective_depth);
}

TEST(DropperRegistry, FromSpecRejectsBadInput) {
  try {
    DropperConfig::from_spec("magic");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("heuristic"), std::string::npos);
  }
  EXPECT_THROW(DropperConfig::from_spec("heuristic", {{"eta", "2x"}}),
               std::invalid_argument);
  EXPECT_THROW(DropperConfig::from_spec("heuristic", {{"zeta", "2"}}),
               std::invalid_argument);
  EXPECT_THROW(DropperConfig::from_spec("threshold", {{"adaptive", "maybe"}}),
               std::invalid_argument);
  // Overflow must not silently truncate, and eta must stay a real depth.
  EXPECT_THROW(
      DropperConfig::from_spec("heuristic", {{"eta", "99999999999"}}),
      std::invalid_argument);
  EXPECT_THROW(DropperConfig::from_spec("heuristic", {{"eta", "0"}}),
               std::invalid_argument);
  // beta < 1 inverts Eq. 8's improvement test; rejected at parse time
  // (and again by the dropper constructors for hand-built configs).
  EXPECT_THROW(DropperConfig::from_spec("heuristic", {{"beta", "0.5"}}),
               std::invalid_argument);
  EXPECT_THROW(DropperConfig::from_spec("approx", {{"beta", "0.99"}}),
               std::invalid_argument);
  EXPECT_NO_THROW(DropperConfig::from_spec("heuristic", {{"beta", "1"}}));
}

TEST(DropperRegistry, MakeDropperValidatesHandBuiltParameters) {
  DropperConfig bad_beta = DropperConfig::heuristic();
  bad_beta.beta = 0.5;
  EXPECT_THROW(make_dropper(bad_beta), std::invalid_argument);
  DropperConfig bad_eta = DropperConfig::approximate();
  bad_eta.effective_depth = 0;
  EXPECT_THROW(make_dropper(bad_eta), std::invalid_argument);
}

}  // namespace
}  // namespace taskdrop
