#include "workload/trace_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "test_util.hpp"
#include "workload/generator.hpp"

namespace taskdrop {
namespace {

TEST(TraceIo, RoundTripsThroughStreams) {
  const Trace original = {{0, 10, 100}, {2, 20, 150}, {1, 20, 180}};
  std::stringstream buffer;
  write_trace_csv(buffer, original);
  const Trace loaded = read_trace_csv(buffer);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded[i].type, original[i].type);
    EXPECT_EQ(loaded[i].arrival, original[i].arrival);
    EXPECT_EQ(loaded[i].deadline, original[i].deadline);
  }
}

TEST(TraceIo, RoundTripsAGeneratedTrace) {
  const PetMatrix pet = test::pet_of({{{{100, 1.0}}}, {{{50, 1.0}}}});
  WorkloadConfig config;
  config.n_tasks = 200;
  config.seed = 5;
  const Trace original = generate_trace(pet, 4, config);
  std::stringstream buffer;
  write_trace_csv(buffer, original);
  const Trace loaded = read_trace_csv(buffer);
  ASSERT_EQ(loaded.size(), original.size());
  EXPECT_TRUE(validate_trace(loaded, pet.task_type_count()));
}

TEST(TraceIo, EmptyTraceIsJustTheHeader) {
  std::stringstream buffer;
  write_trace_csv(buffer, {});
  EXPECT_EQ(buffer.str(), "type,arrival,deadline\n");
  EXPECT_TRUE(read_trace_csv(buffer).empty());
}

TEST(TraceIo, RejectsMissingHeader) {
  std::stringstream buffer("0,10,100\n");
  EXPECT_THROW(read_trace_csv(buffer), std::runtime_error);
}

TEST(TraceIo, RejectsMalformedRow) {
  std::stringstream buffer("type,arrival,deadline\n0;10;100\n");
  EXPECT_THROW(read_trace_csv(buffer), std::runtime_error);
}

TEST(TraceIo, RejectsUnsortedArrivals) {
  std::stringstream buffer("type,arrival,deadline\n0,20,100\n0,10,100\n");
  EXPECT_THROW(read_trace_csv(buffer), std::runtime_error);
}

TEST(TraceIo, RejectsDeadlineBeforeArrival) {
  std::stringstream buffer("type,arrival,deadline\n0,20,20\n");
  EXPECT_THROW(read_trace_csv(buffer), std::runtime_error);
}

TEST(TraceIo, SkipsBlankLines) {
  std::stringstream buffer("type,arrival,deadline\n0,10,100\n\n1,20,200\n");
  const Trace trace = read_trace_csv(buffer);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[1].type, 1);
}

TEST(TraceIo, FileRoundTrip) {
  const std::string path = "/tmp/taskdrop_trace_io_test.csv";
  const Trace original = {{0, 1, 10}, {1, 2, 20}};
  write_trace_csv_file(path, original);
  const Trace loaded = read_trace_csv_file(path);
  EXPECT_EQ(loaded.size(), 2u);
  std::remove(path.c_str());
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(read_trace_csv_file("/nonexistent/path.csv"),
               std::runtime_error);
}

}  // namespace
}  // namespace taskdrop
