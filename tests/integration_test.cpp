// End-to-end tests across modules: experiment harness, figure generators,
// and the paper's headline qualitative claims at reduced scale.
#include <gtest/gtest.h>

#include "exp/experiment.hpp"
#include "exp/figures.hpp"
#include "util/stats.hpp"

namespace taskdrop {
namespace {

ExperimentConfig small_config() {
  ExperimentConfig config;
  config.scenario = ScenarioKind::SpecHC;
  config.mapper = "PAM";
  config.workload.n_tasks = 500;
  config.workload.oversubscription = 3.0;
  config.trials = 4;
  config.seed = 42;
  return config;
}

TEST(Experiment, RunsRequestedTrialsAndAggregates) {
  ExperimentConfig config = small_config();
  const ExperimentResult result = run_experiment(config);
  ASSERT_EQ(result.trials.size(), 4u);
  const std::vector<double> robustness =
      series(result.trials, &TrialMetrics::robustness_pct);
  EXPECT_NEAR(result.robustness.mean, mean(robustness), 1e-9);
  for (const TrialMetrics& trial : result.trials) {
    EXPECT_GT(trial.robustness_pct, 0.0);
    EXPECT_LT(trial.robustness_pct, 100.0);
    EXPECT_GT(trial.total_cost, 0.0);
  }
}

TEST(Experiment, IsExactlyReproducible) {
  ExperimentConfig config = small_config();
  const ExperimentResult a = run_experiment(config);
  const ExperimentResult b = run_experiment(config);
  ASSERT_EQ(a.trials.size(), b.trials.size());
  for (std::size_t i = 0; i < a.trials.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.trials[i].robustness_pct, b.trials[i].robustness_pct);
    EXPECT_DOUBLE_EQ(a.trials[i].total_cost, b.trials[i].total_cost);
    EXPECT_EQ(a.trials[i].dropped_proactive, b.trials[i].dropped_proactive);
  }
}

TEST(Experiment, DifferentSeedsGiveDifferentTrials) {
  ExperimentConfig config = small_config();
  const ExperimentResult a = run_experiment(config);
  config.seed = 43;
  const ExperimentResult b = run_experiment(config);
  EXPECT_NE(a.trials[0].robustness_pct, b.trials[0].robustness_pct);
}

TEST(Experiment, PrebuiltScenarioMatchesInternalBuild) {
  ExperimentConfig config = small_config();
  config.trials = 2;
  const Scenario scenario = build_scenario(config);
  const ExperimentResult with_prebuilt = run_experiment(config, &scenario);
  const ExperimentResult without = run_experiment(config);
  EXPECT_DOUBLE_EQ(with_prebuilt.robustness.mean, without.robustness.mean);
}

// ----------------------- the paper's claims ------------------------

TEST(PaperClaims, ProactiveDroppingBeatsReactiveOnly) {
  ExperimentConfig config = small_config();
  config.workload.n_tasks = 800;
  config.dropper = DropperConfig::reactive_only();
  const ExperimentResult reactive = run_experiment(config);
  config.dropper = DropperConfig::heuristic();
  const ExperimentResult proactive = run_experiment(config);
  // The paper reports ~20 % improvement; at this scale we only require a
  // clear margin.
  EXPECT_GT(proactive.robustness.mean, reactive.robustness.mean + 2.0);
}

TEST(PaperClaims, HeuristicTracksOptimal) {
  ExperimentConfig config = small_config();
  config.dropper = DropperConfig::optimal();
  const ExperimentResult optimal = run_experiment(config);
  config.dropper = DropperConfig::heuristic();
  const ExperimentResult heuristic = run_experiment(config);
  // Section V-F: "no statistically and practically significant difference".
  EXPECT_NEAR(heuristic.robustness.mean, optimal.robustness.mean, 5.0);
}

TEST(PaperClaims, DroppingLiftsWeakMappersToCompetitiveRobustness) {
  // Fig. 7a's story: MSD without dropping is far below MM; with the
  // heuristic dropper the gap collapses.
  ExperimentConfig config = small_config();
  config.workload.n_tasks = 800;

  auto robustness = [&](const std::string& mapper, DropperConfig dropper) {
    ExperimentConfig c = config;
    c.mapper = mapper;
    c.dropper = dropper;
    return run_experiment(c).robustness.mean;
  };
  const double msd_react = robustness("MSD", DropperConfig::reactive_only());
  const double mm_react = robustness("MM", DropperConfig::reactive_only());
  const double msd_drop = robustness("MSD", DropperConfig::heuristic());
  const double mm_drop = robustness("MM", DropperConfig::heuristic());

  EXPECT_LT(msd_react, mm_react - 5.0);               // MSD suffers alone
  EXPECT_GT(msd_drop, msd_react + 10.0);              // dropping rescues it
  EXPECT_NEAR(msd_drop, mm_drop, 12.0);               // near-convergence
}

TEST(PaperClaims, ReactiveShareOfQueueDropsIsSmall) {
  ExperimentConfig config = small_config();
  config.workload.n_tasks = 800;
  config.dropper = DropperConfig::heuristic();
  const ExperimentResult result = run_experiment(config);
  // Section V-F: "only around 7% of the task droppings happen reactively".
  EXPECT_LT(result.reactive_share.mean, 30.0);
}

TEST(PaperClaims, NormalisedCostLowerWithDroppingThanMmReactive) {
  ExperimentConfig config = small_config();
  config.workload.n_tasks = 800;
  config.mapper = "PAM";
  config.dropper = DropperConfig::heuristic();
  const ExperimentResult pam = run_experiment(config);
  config.mapper = "MM";
  config.dropper = DropperConfig::reactive_only();
  const ExperimentResult mm = run_experiment(config);
  // Fig. 9: MM+ReactDrop incurs a much higher cost per completed task.
  EXPECT_LT(pam.normalized_cost.mean, mm.normalized_cost.mean);
}

TEST(PaperClaims, HomogeneousSystemAlsoBenefits) {
  ExperimentConfig config = small_config();
  config.scenario = ScenarioKind::Homogeneous;
  config.mapper = "FCFS";
  config.workload.n_tasks = 600;
  config.dropper = DropperConfig::reactive_only();
  const ExperimentResult reactive = run_experiment(config);
  config.dropper = DropperConfig::heuristic();
  const ExperimentResult proactive = run_experiment(config);
  EXPECT_GT(proactive.robustness.mean, reactive.robustness.mean + 5.0);
}

// --------------------------- figure smoke ---------------------------

FigureScale tiny_scale() {
  FigureScale scale;
  scale.tasks_divisor = 50;  // 400/600/800 tasks
  scale.trials = 2;
  return scale;
}

TEST(Figures, LevelsScaleWithDivisor) {
  FigureScale scale;
  scale.tasks_divisor = 10;
  const auto levels = oversubscription_levels(scale);
  ASSERT_EQ(levels.size(), 3u);
  EXPECT_EQ(levels[0].label, "20k");
  EXPECT_EQ(levels[0].n_tasks, 2000);
  EXPECT_LT(levels[0].oversubscription, levels[2].oversubscription);
}

TEST(Figures, FromFlagsHonoursFullAndOverrides) {
  const char* argv[] = {"prog", "--full", "--trials=5"};
  const Flags flags(3, argv);
  const FigureScale scale = FigureScale::from_flags(flags);
  EXPECT_EQ(scale.tasks_divisor, 1);
  EXPECT_EQ(scale.trials, 5);  // explicit override wins over --full's 30
}

TEST(Figures, Fig7aProducesAllSeries) {
  const Table table = fig7a_hetero_mappers(tiny_scale());
  EXPECT_EQ(table.row_count(), 6u);  // 3 mappers x {Heuristic, ReactDrop}
  EXPECT_EQ(table.headers().size(), 4u);
}

TEST(Figures, Fig8CoversAllVariantsAndLevels) {
  const Table table = fig8_dropping_variants(tiny_scale());
  EXPECT_EQ(table.row_count(), 9u);  // 3 levels x 3 variants
}

TEST(Figures, Fig10RunsTheVideoScenario) {
  const Table table = fig10_video(tiny_scale());
  EXPECT_EQ(table.row_count(), 6u);
}

TEST(Figures, ApproxAblationReportsUtilityColumn) {
  const Table table = ablation_approx(tiny_scale());
  EXPECT_EQ(table.row_count(), 9u);  // 3 levels x 3 mechanisms
  // ReactDrop and drop-only rows must report utility == robustness.
  for (const auto& row : table.rows()) {
    if (row[1] == "ReactDrop" || row[1] == "Heuristic (drop)") {
      EXPECT_EQ(row[2], row[3]) << row[0] << " " << row[1];
    }
  }
}

TEST(Figures, FailureAblationIncludesBaselineRow) {
  const Table table = ablation_failures(tiny_scale());
  EXPECT_EQ(table.row_count(), 10u);  // 5 MTBF points x 2 droppers
  EXPECT_EQ(table.rows()[0][0], "no failures");
}

TEST(Figures, DeferralAblationCoversBothPams) {
  const Table table = ablation_deferral(tiny_scale());
  EXPECT_EQ(table.row_count(), 4u);
  EXPECT_EQ(table.rows()[0][0], "PAM");
  EXPECT_EQ(table.rows()[2][0], "PAMD");
}

TEST(Figures, SensitivitySweepsProduceMonotoneAxes) {
  const Table gamma = ablation_gamma(tiny_scale());
  EXPECT_EQ(gamma.row_count(), 6u);
  const Table capacity = ablation_queue_capacity(tiny_scale());
  EXPECT_EQ(capacity.row_count(), 5u);
}

TEST(PaperClaims, ApproxUtilityBeatsDropOnlyRobustnessAtSameScale) {
  ExperimentConfig config = small_config();
  config.workload.n_tasks = 800;
  config.dropper = DropperConfig::heuristic();
  const ExperimentResult drop_only = run_experiment(config);
  // With no approximate tasks, utility must equal robustness exactly.
  EXPECT_DOUBLE_EQ(drop_only.utility.mean, drop_only.robustness.mean);

  config.dropper = DropperConfig::approximate();
  const ExperimentResult approx = run_experiment(config);
  // Downgrades trade quality for throughput: utility stays at least
  // competitive and robustness rises.
  EXPECT_GT(approx.robustness.mean, drop_only.robustness.mean);
  EXPECT_LT(approx.utility.mean, approx.robustness.mean);
}

}  // namespace
}  // namespace taskdrop
