// Concurrency stress suite — the TSan preset's main target. Hammers the
// harness's shared-state surfaces with enough threads and iterations that
// ThreadSanitizer can observe conflicting accesses if any exist:
// ThreadPool's job queue and idle tracking, JobErrorCollector's
// first-exception capture under true contention, ScenarioCache's
// build-outside-lock sharing, and run_sweep driven from several threads at
// once against one shared cache.
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "exp/scenario_cache.hpp"
#include "exp/sweep.hpp"

namespace taskdrop {
namespace {

constexpr std::size_t kPoolThreads = 4;

TEST(ThreadPoolStress, SubmitHammerAcrossWaitIdleCycles) {
  ThreadPool pool(kPoolThreads);
  std::atomic<std::uint64_t> sum{0};
  std::vector<int> slots(256, 0);
  // Several submit/wait_idle rounds: wait_idle must establish a full
  // happens-before edge so the unsynchronised slot writes of one round are
  // visible to the next round's reads.
  for (int round = 0; round < 8; ++round) {
    for (std::size_t i = 0; i < slots.size(); ++i) {
      pool.submit([&sum, &slots, i] {
        slots[i] += 1;  // disjoint per job; racy only if the pool is broken
        sum.fetch_add(i, std::memory_order_relaxed);
      });
    }
    pool.wait_idle();
    for (std::size_t i = 0; i < slots.size(); ++i) {
      ASSERT_EQ(slots[i], round + 1) << "slot " << i;
    }
  }
  EXPECT_EQ(sum.load(), 8u * (255u * 256u / 2u));
}

TEST(ThreadPoolStress, ParallelForCoversEveryIndexRepeatedly) {
  std::vector<std::uint8_t> hit(1000);
  for (int round = 0; round < 5; ++round) {
    std::fill(hit.begin(), hit.end(), std::uint8_t{0});
    ThreadPool::parallel_for(
        hit.size(), [&hit](std::size_t i) { hit[i] = 1; }, kPoolThreads);
    for (std::size_t i = 0; i < hit.size(); ++i) {
      ASSERT_EQ(hit[i], 1) << "index " << i << " round " << round;
    }
  }
}

TEST(ThreadPoolStress, ParallelForRethrowsWithoutTerminating) {
  std::atomic<int> executed{0};
  EXPECT_THROW(
      ThreadPool::parallel_for(
          500,
          [&executed](std::size_t i) {
            executed.fetch_add(1, std::memory_order_relaxed);
            if (i % 7 == 0) {
              throw std::runtime_error("iteration " + std::to_string(i));
            }
          },
          kPoolThreads),
      std::runtime_error);
  EXPECT_GE(executed.load(), 1);
  EXPECT_LE(executed.load(), 500);
}

TEST(JobErrorCollectorStress, ManyThreadsThrowingDeliverExactlyOne) {
  // True contention on the capture path: every job throws, from many
  // workers at once. Exactly one exception must be captured (never a
  // terminate from an escaping exception), and the winner must be intact.
  for (int round = 0; round < 20; ++round) {
    ThreadPool pool(kPoolThreads);
    JobErrorCollector collector;
    std::atomic<int> attempts{0};
    constexpr int kJobs = 64;
    for (int j = 0; j < kJobs; ++j) {
      pool.submit([&collector, &attempts, j] {
        collector.run([&attempts, j] {
          attempts.fetch_add(1, std::memory_order_relaxed);
          throw std::runtime_error("job " + std::to_string(j));
        });
      });
    }
    pool.wait_idle();
    int delivered = 0;
    std::string what;
    try {
      collector.rethrow_if_failed();
    } catch (const std::runtime_error& error) {
      ++delivered;
      what = error.what();
    }
    ASSERT_EQ(delivered, 1);
    EXPECT_EQ(what.rfind("job ", 0), 0u) << what;
    EXPECT_GE(attempts.load(), 1);
  }
}

TEST(JobErrorCollectorStress, MixedOutcomesSkipAfterFirstFailure) {
  ThreadPool pool(kPoolThreads);
  JobErrorCollector collector;
  std::atomic<int> completed{0};
  for (int j = 0; j < 200; ++j) {
    pool.submit([&collector, &completed, j] {
      collector.run([&completed, j] {
        if (j == 13) throw std::logic_error("poison");
        completed.fetch_add(1, std::memory_order_relaxed);
      });
    });
  }
  pool.wait_idle();
  EXPECT_THROW(collector.rethrow_if_failed(), std::logic_error);
  // Everything that ran to completion did so exactly once; jobs entered
  // after the failure were skipped, so the count cannot exceed the total.
  EXPECT_LT(completed.load(), 200);
}

TEST(ScenarioCacheStress, ContentionOnSameAndDistinctKeys) {
  ScenarioCache cache;
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const Scenario>> seen(
      static_cast<std::size_t>(kThreads));
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&cache, &seen, t] {
        // Half the threads fight over one key; the rest spread across
        // distinct (kind, seed) pairs. Builds run outside the cache lock
        // (deliberate — duplicated builds are deterministic and the last
        // writer wins), so the only invariant on the racy first round is
        // that every returned scenario is complete and consistent.
        const std::uint64_t seed = t % 2 == 0 ? 42u : 100u + unsigned(t);
        const auto scenario = cache.get(ScenarioKind::Homogeneous, seed);
        seen[static_cast<std::size_t>(t)] = scenario;
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  for (const auto& scenario : seen) {
    ASSERT_NE(scenario, nullptr);
    EXPECT_FALSE(scenario->profile.machine_types.empty());
  }
  // Settled state: one entry per distinct key, and repeat lookups share it.
  EXPECT_EQ(cache.size(), 1u + kThreads / 2);
  EXPECT_EQ(cache.get(ScenarioKind::Homogeneous, 42),
            cache.get(ScenarioKind::Homogeneous, 42));
}

TEST(SweepStress, ConcurrentSweepsShareOneCache) {
  // Two multi-threaded run_sweep calls racing on one ScenarioCache, each
  // of which must still produce exactly the single-threaded report.
  SweepSpec spec;
  spec.name = "stress";
  spec.scenarios = {ScenarioKind::Homogeneous};
  spec.levels = {{"tiny", 200, 3.0}};
  spec.mappers = {"PAM", "MM"};
  spec.trials = 2;
  spec.seed = 42;

  SweepOptions serial;
  serial.threads = 1;
  const SweepReport expected = run_sweep(spec, serial);

  ScenarioCache cache;
  std::vector<SweepReport> reports(2);
  {
    std::vector<std::thread> drivers;
    for (int d = 0; d < 2; ++d) {
      drivers.emplace_back([&spec, &cache, &reports, d] {
        SweepOptions options;
        options.threads = 2;
        options.cache = &cache;
        reports[static_cast<std::size_t>(d)] = run_sweep(spec, options);
      });
    }
    for (std::thread& driver : drivers) driver.join();
  }
  for (const SweepReport& report : reports) {
    ASSERT_EQ(report.cells.size(), expected.cells.size());
    for (std::size_t c = 0; c < report.cells.size(); ++c) {
      const auto& got = report.cells[c].result;
      const auto& want = expected.cells[c].result;
      ASSERT_EQ(got.trials.size(), want.trials.size());
      for (std::size_t t = 0; t < got.trials.size(); ++t) {
        EXPECT_EQ(got.trials[t].robustness_pct, want.trials[t].robustness_pct);
        EXPECT_EQ(got.trials[t].total_cost, want.trials[t].total_cost);
        EXPECT_EQ(got.trials[t].completed_on_time,
                  want.trials[t].completed_on_time);
      }
    }
  }
  EXPECT_EQ(cache.size(), 1u);
}

}  // namespace
}  // namespace taskdrop
