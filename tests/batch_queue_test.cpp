#include "sim/batch_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/rng.hpp"

namespace taskdrop {
namespace {

std::vector<TaskId> contents(const BatchQueue& queue) {
  std::vector<TaskId> out;
  for (TaskId id : queue) out.push_back(id);
  return out;
}

TEST(BatchQueue, StartsEmpty) {
  BatchQueue queue;
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.size(), 0u);
  EXPECT_EQ(queue.front(), -1);
  EXPECT_EQ(contents(queue), std::vector<TaskId>{});
}

TEST(BatchQueue, PreservesArrivalOrder) {
  BatchQueue queue;
  queue.reset(8);
  for (TaskId id : {3, 1, 7, 0}) queue.push_back(id);
  EXPECT_EQ(queue.size(), 4u);
  EXPECT_EQ(queue.front(), 3);
  EXPECT_EQ(contents(queue), (std::vector<TaskId>{3, 1, 7, 0}));
}

TEST(BatchQueue, RemoveKeepsRemainingOrder) {
  BatchQueue queue;
  queue.reset(6);
  for (TaskId id : {0, 1, 2, 3, 4, 5}) queue.push_back(id);

  queue.remove(0);  // head
  EXPECT_EQ(contents(queue), (std::vector<TaskId>{1, 2, 3, 4, 5}));
  EXPECT_EQ(queue.front(), 1);

  queue.remove(3);  // middle
  EXPECT_EQ(contents(queue), (std::vector<TaskId>{1, 2, 4, 5}));

  queue.remove(5);  // tail
  EXPECT_EQ(contents(queue), (std::vector<TaskId>{1, 2, 4}));

  EXPECT_FALSE(queue.contains(3));
  EXPECT_TRUE(queue.contains(4));
}

TEST(BatchQueue, ReinsertAfterRemoveGoesToTheBack) {
  BatchQueue queue;
  queue.reset(4);
  for (TaskId id : {0, 1, 2}) queue.push_back(id);
  queue.remove(1);
  queue.push_back(1);
  EXPECT_EQ(contents(queue), (std::vector<TaskId>{0, 2, 1}));
}

TEST(BatchQueue, DrainToEmptyAndRefill) {
  BatchQueue queue;
  queue.reset(3);
  for (TaskId id : {0, 1, 2}) queue.push_back(id);
  for (TaskId id : {1, 0, 2}) queue.remove(id);
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.front(), -1);
  queue.push_back(2);
  EXPECT_EQ(contents(queue), std::vector<TaskId>{2});
  EXPECT_EQ(queue.front(), 2);
}

TEST(BatchQueue, GrowsLinkSlotsOnDemand) {
  BatchQueue queue;  // no reset: push_back must size the slots itself
  queue.push_back(10);
  queue.push_back(2);
  EXPECT_EQ(contents(queue), (std::vector<TaskId>{10, 2}));
  EXPECT_FALSE(queue.contains(7));
  queue.remove(10);
  EXPECT_EQ(contents(queue), std::vector<TaskId>{2});
}

TEST(BatchQueue, NextWalksLiveEntries) {
  BatchQueue queue;
  queue.reset(4);
  for (TaskId id : {0, 1, 2, 3}) queue.push_back(id);
  queue.remove(1);
  EXPECT_EQ(queue.next(0), 2);
  EXPECT_EQ(queue.next(2), 3);
  EXPECT_EQ(queue.next(3), -1);
}

/// Differential check against the vector representation the engine used
/// before: random interleavings of pushes and position-preserving removals
/// must iterate identically.
TEST(BatchQueue, MatchesVectorSemanticsUnderRandomMutation) {
  Rng rng(2026);
  for (int round = 0; round < 50; ++round) {
    BatchQueue queue;
    std::vector<TaskId> reference;
    TaskId next_id = 0;
    for (int step = 0; step < 200; ++step) {
      const bool push = reference.empty() || rng.uniform01() < 0.6;
      if (push) {
        queue.push_back(next_id);
        reference.push_back(next_id);
        ++next_id;
      } else {
        const auto victim = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<Tick>(reference.size()) - 1));
        queue.remove(reference[victim]);
        reference.erase(reference.begin() +
                        static_cast<std::ptrdiff_t>(victim));
      }
      ASSERT_EQ(queue.size(), reference.size());
      ASSERT_EQ(contents(queue), reference);
      ASSERT_EQ(queue.front(), reference.empty() ? -1 : reference.front());
    }
  }
}

}  // namespace
}  // namespace taskdrop
