#include "online/snapshot.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/null_dropper.hpp"
#include "online/online_scheduler.hpp"
#include "sched/registry.hpp"
#include "sched/round_robin.hpp"
#include "test_util.hpp"

namespace taskdrop {
namespace {

using test::pet_of;

/// 2 task types x 2 machine types with asymmetric deterministic costs, so
/// mapping decisions actually depend on machine/type identity.
PetMatrix serve_pet() {
  return pet_of({{{{4, 1.0}}, {{7, 1.0}}}, {{{6, 1.0}}, {{3, 1.0}}}});
}

/// Live-mode serve harness: 3 machines (types 0, 1, 0), pluggable mapper.
/// Mirrors the CLI daemon: every Start offer is confirmed immediately.
struct ServeFixture {
  PetMatrix pet = serve_pet();
  std::unique_ptr<Mapper> mapper;
  std::unique_ptr<Dropper> dropper;
  OnlineScheduler scheduler;

  explicit ServeFixture(const std::string& mapper_name,
                        OnlineConfig config = {})
      : mapper(make_mapper(mapper_name)),
        dropper(make_dropper(DropperConfig::heuristic())),
        scheduler(pet, {0, 1, 0}, *mapper, *dropper, config) {}
};

struct Ev {
  enum Kind { Arrive, Finish, Down, Up, Advance };
  Kind kind;
  Tick t;
  long long a = 0;  // arrive: task type; finish/down/up: machine id
  Tick b = 0;       // arrive: deadline
};

/// Feeds one event, confirms Start offers immediately (live mode), and
/// returns the decision stream rendered exactly as the CLI daemon logs it.
std::string apply(OnlineScheduler& scheduler, const Ev& event) {
  const std::vector<Decision>* decisions = nullptr;
  switch (event.kind) {
    case Ev::Arrive:
      decisions = &scheduler.task_arrived(
          event.t, static_cast<TaskTypeId>(event.a), event.b);
      break;
    case Ev::Finish:
      decisions =
          &scheduler.task_finished(event.t, static_cast<MachineId>(event.a));
      break;
    case Ev::Down:
      decisions =
          &scheduler.machine_down(event.t, static_cast<MachineId>(event.a));
      break;
    case Ev::Up:
      decisions =
          &scheduler.machine_up(event.t, static_cast<MachineId>(event.a));
      break;
    case Ev::Advance:
      decisions = &scheduler.advance(event.t);
      break;
  }
  std::ostringstream out;
  for (const Decision& decision : *decisions) out << decision << '\n';
  for (const Decision& decision : *decisions) {
    if (decision.kind == DecisionKind::Start) {
      scheduler.task_started(event.t, decision.machine, decision.task);
    }
  }
  return out.str();
}

/// Generates a valid event script by probing a scheduler as it goes: a mix
/// of arrivals (both types, some with tight deadlines that expire), a
/// machine failure/recovery, finishes of whichever machine is running, and
/// idle advances. The script is then replayed verbatim against fresh
/// schedulers — validity (finish only on a running machine) is guaranteed
/// because the kernels are deterministic.
std::vector<Ev> make_script(const std::string& mapper_name,
                            const OnlineConfig& config) {
  ServeFixture probe(mapper_name, config);
  std::vector<Ev> script;
  Tick t = 0;
  const auto push = [&](Ev event) {
    script.push_back(event);
    apply(probe.scheduler, event);
  };
  for (int i = 0; i < 40; ++i) {
    t += 2;
    if (i == 13) {
      push({Ev::Down, t, 1, 0});
      continue;
    }
    if (i == 21) {
      push({Ev::Up, t, 1, 0});
      continue;
    }
    if (i % 3 == 2) {
      MachineId running = -1;
      for (const Machine& machine : probe.scheduler.machines()) {
        if (machine.running) {
          running = machine.id;
          break;
        }
      }
      if (running >= 0) {
        push({Ev::Finish, t, running, 0});
        continue;
      }
    }
    if (i % 7 == 6) {
      push({Ev::Advance, t, 0, 0});
      continue;
    }
    // Alternate task types; every fourth deadline is tight enough to
    // expire, so the reactive pass fires and the expiry heap has content.
    push({Ev::Arrive, t, i % 2, t + (i % 4 == 3 ? 3 : 25)});
  }
  return script;
}

std::string run_full(const std::vector<Ev>& script,
                     const std::string& mapper_name,
                     const OnlineConfig& config) {
  ServeFixture fx(mapper_name, config);
  std::string out;
  for (const Ev& event : script) out += apply(fx.scheduler, event);
  return out;
}

/// Runs `script[0..split)`, snapshots, restores into an entirely fresh
/// kernel stack (new mapper, new dropper, new scheduler), and finishes the
/// script there — the kill-and-resume scenario.
std::string run_split(const std::vector<Ev>& script, std::size_t split,
                      const std::string& mapper_name,
                      const OnlineConfig& config) {
  ServeFixture first(mapper_name, config);
  std::string out;
  for (std::size_t i = 0; i < split; ++i) {
    out += apply(first.scheduler, script[i]);
  }
  const std::string snapshot = snapshot_to_string(first.scheduler);
  ServeFixture second(mapper_name, config);
  restore_from_string(second.scheduler, snapshot);
  for (std::size_t i = split; i < script.size(); ++i) {
    out += apply(second.scheduler, script[i]);
  }
  return out;
}

OnlineConfig volatile_config() {
  OnlineConfig config;
  config.queue_capacity = 3;
  config.volatile_machines = true;
  return config;
}

TEST(OnlineSnapshot, EverySplitPointResumesByteIdentically) {
  const OnlineConfig config = volatile_config();
  const std::vector<Ev> script = make_script("PAM", config);
  const std::string uninterrupted = run_full(script, "PAM", config);
  ASSERT_FALSE(uninterrupted.empty());
  for (std::size_t split = 0; split <= script.size(); ++split) {
    EXPECT_EQ(run_split(script, split, "PAM", config), uninterrupted)
        << "divergence when killed after event " << split;
  }
}

TEST(OnlineSnapshot, ConditionedVolatileResumesByteIdentically) {
  // condition_running=1 together with failures drives the chain-keeping
  // paths (conditioned set_now keep, notify_head_started) across a
  // snapshot boundary: the script's Down/Up events at steps 13/21 plus
  // the conditioned re-examinations must replay byte-identically from
  // any split point, and the config echo must round-trip the flags.
  OnlineConfig config = volatile_config();
  config.condition_running = true;
  const std::vector<Ev> script = make_script("PAM", config);
  const std::string uninterrupted = run_full(script, "PAM", config);
  ASSERT_FALSE(uninterrupted.empty());
  for (std::size_t split = 0; split <= script.size(); ++split) {
    EXPECT_EQ(run_split(script, split, "PAM", config), uninterrupted)
        << "divergence when killed after event " << split;
  }
}

TEST(OnlineSnapshot, RoundRobinMapperStateSurvivesResume) {
  // RR is the one stock mapper with genuine cross-event state (the cyclic
  // dealing position); a restore that lost it would re-deal from machine 0
  // and shift every subsequent assignment.
  const OnlineConfig config = volatile_config();
  const std::vector<Ev> script = make_script("RR", config);
  const std::string uninterrupted = run_full(script, "RR", config);
  for (std::size_t split = 0; split <= script.size(); split += 5) {
    EXPECT_EQ(run_split(script, split, "RR", config), uninterrupted)
        << "divergence when killed after event " << split;
  }
}

TEST(OnlineSnapshot, SheddingConfigAndCounterSurviveResume) {
  OnlineConfig config = volatile_config();
  config.shed.total_pending_watermark = 2;
  const std::vector<Ev> script = make_script("PAM", config);
  const std::string uninterrupted = run_full(script, "PAM", config);
  // The valve must actually have fired for this test to mean anything.
  ASSERT_NE(uninterrupted.find("shed_overload"), std::string::npos);
  for (std::size_t split = 0; split <= script.size(); split += 3) {
    EXPECT_EQ(run_split(script, split, "PAM", config), uninterrupted)
        << "divergence when killed after event " << split;
  }
}

TEST(OnlineSnapshot, SnapshotIsDeterministic) {
  ServeFixture fx("PAM");
  fx.scheduler.task_arrived(0, 0, 100);
  fx.scheduler.task_arrived(2, 1, 50);
  EXPECT_EQ(snapshot_to_string(fx.scheduler),
            snapshot_to_string(fx.scheduler));
}

TEST(OnlineSnapshot, CountersAndClockSurviveRoundTrip) {
  ServeFixture fx("PAM", volatile_config());
  std::string ignored;
  ignored += apply(fx.scheduler, {Ev::Arrive, 1, 0, 30});
  ignored += apply(fx.scheduler, {Ev::Arrive, 4, 1, 40});
  ignored += apply(fx.scheduler, {Ev::Advance, 9, 0, 0});
  const std::string snapshot = snapshot_to_string(fx.scheduler);

  ServeFixture restored("PAM", volatile_config());
  restore_from_string(restored.scheduler, snapshot);
  EXPECT_EQ(restored.scheduler.now(), fx.scheduler.now());
  EXPECT_EQ(restored.scheduler.task_count(), fx.scheduler.task_count());
  EXPECT_EQ(restored.scheduler.mapping_events(),
            fx.scheduler.mapping_events());
  EXPECT_EQ(restored.scheduler.dropper_invocations(),
            fx.scheduler.dropper_invocations());
  EXPECT_EQ(restored.scheduler.unmapped_count(),
            fx.scheduler.unmapped_count());
  EXPECT_EQ(restored.scheduler.pending_backlog(),
            fx.scheduler.pending_backlog());
  // And the restored instance re-snapshots to the identical bytes.
  EXPECT_EQ(snapshot_to_string(restored.scheduler), snapshot);
}

TEST(OnlineSnapshot, RestoreRejectsNonFreshScheduler) {
  ServeFixture source("PAM");
  source.scheduler.task_arrived(0, 0, 100);
  const std::string snapshot = snapshot_to_string(source.scheduler);

  ServeFixture target("PAM");
  target.scheduler.task_arrived(0, 0, 100);  // no longer fresh
  EXPECT_THROW(restore_from_string(target.scheduler, snapshot),
               std::invalid_argument);
}

TEST(OnlineSnapshot, RestoreRejectsConfigMismatch) {
  ServeFixture source("PAM");
  const std::string snapshot = snapshot_to_string(source.scheduler);

  OnlineConfig other;
  other.queue_capacity = 4;  // snapshot echoes the default 6
  ServeFixture target("PAM", other);
  EXPECT_THROW(restore_from_string(target.scheduler, snapshot),
               std::invalid_argument);
}

TEST(OnlineSnapshot, RestoreRejectsMapperMismatch) {
  ServeFixture source("PAM");
  const std::string snapshot = snapshot_to_string(source.scheduler);
  ServeFixture target("FCFS");
  EXPECT_THROW(restore_from_string(target.scheduler, snapshot),
               std::invalid_argument);
}

TEST(OnlineSnapshot, RestoreRejectsDifferentPet) {
  ServeFixture source("PAM");
  const std::string snapshot = snapshot_to_string(source.scheduler);

  // Same shape, different cell content: only the fingerprint can tell.
  PetMatrix other_pet =
      pet_of({{{{5, 1.0}}, {{7, 1.0}}}, {{{6, 1.0}}, {{3, 1.0}}}});
  auto mapper = make_mapper("PAM");
  NullDropper dropper;
  OnlineScheduler target(other_pet, {0, 1, 0}, *mapper, dropper);
  EXPECT_THROW(restore_from_string(target, snapshot),
               std::invalid_argument);
}

TEST(OnlineSnapshot, RestoreRejectsTruncatedSnapshot) {
  ServeFixture source("PAM");
  source.scheduler.task_arrived(0, 0, 100);
  const std::string snapshot = snapshot_to_string(source.scheduler);
  for (const std::size_t cut : {std::size_t{0}, snapshot.size() / 4,
                                snapshot.size() / 2, snapshot.size() - 2}) {
    ServeFixture target("PAM");
    EXPECT_THROW(
        restore_from_string(target.scheduler, snapshot.substr(0, cut)),
        std::invalid_argument)
        << "truncation at byte " << cut << " was accepted";
  }
}

TEST(OnlineSnapshot, RestoreRejectsGarbage) {
  ServeFixture target("PAM");
  EXPECT_THROW(restore_from_string(target.scheduler, "not a snapshot\n"),
               std::invalid_argument);
}

TEST(OnlineSnapshot, FingerprintSeparatesPets) {
  const PetMatrix a = serve_pet();
  const PetMatrix b =
      pet_of({{{{5, 1.0}}, {{7, 1.0}}}, {{{6, 1.0}}, {{3, 1.0}}}});
  EXPECT_EQ(pet_fingerprint(a), pet_fingerprint(serve_pet()));
  EXPECT_NE(pet_fingerprint(a), pet_fingerprint(b));
}

TEST(RoundRobinState, RoundTripAndValidation) {
  RoundRobinMapper mapper;
  EXPECT_EQ(mapper.snapshot_state(), "0");
  mapper.restore_state("7");
  EXPECT_EQ(mapper.snapshot_state(), "7");
  EXPECT_THROW(mapper.restore_state("abc"), std::invalid_argument);
  EXPECT_THROW(mapper.restore_state(""), std::invalid_argument);
}

TEST(MapperState, StatelessMapperRejectsForeignState) {
  auto mapper = make_mapper("FCFS");
  EXPECT_EQ(mapper->snapshot_state(), "");
  mapper->restore_state("");  // no state: fine
  EXPECT_THROW(mapper->restore_state("3"), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Overload shedding semantics (the admission valve itself).

TEST(OnlineShed, DisabledByDefaultAdmitsEverything) {
  ServeFixture fx("PAM");
  for (Tick t = 0; t < 20; ++t) fx.scheduler.task_arrived(t, 0, t + 100);
  EXPECT_EQ(fx.scheduler.shed_count(), 0);
}

TEST(OnlineShed, TotalWatermarkShedsAtThreshold) {
  OnlineConfig config;
  config.shed.total_pending_watermark = 1;
  ServeFixture fx("PAM", config);
  // First arrival: backlog 0 < 1 — admitted (assigned, Start offered, left
  // unconfirmed so it stays pending).
  const auto& first = fx.scheduler.task_arrived(0, 0, 100);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first[0].kind, DecisionKind::Assign);
  EXPECT_EQ(fx.scheduler.pending_backlog(), 1u);
  // Second arrival: backlog 1 >= 1 — shed, never enters the batch.
  const auto& second = fx.scheduler.task_arrived(1, 0, 100);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].kind, DecisionKind::ShedOverload);
  EXPECT_EQ(second[0].task, 1);
  EXPECT_EQ(second[0].machine, -1);
  EXPECT_EQ(fx.scheduler.task(1).state, TaskState::DroppedProactive);
  EXPECT_EQ(fx.scheduler.task(1).drop_time, 1);
  EXPECT_EQ(fx.scheduler.shed_count(), 1);
  EXPECT_EQ(fx.scheduler.unmapped_count(), 0u);
}

TEST(OnlineShed, MachineWatermarkShedsOnlyWhenNoMachineHasHeadroom) {
  // Single machine, greedy FCFS mapping (no deferral), so queue occupancy
  // is fully hand-computable.
  PetMatrix pet = pet_of({{{{5, 1.0}}}});
  auto mapper = make_mapper("FCFS");
  NullDropper dropper;
  OnlineConfig config;
  config.shed.machine_backlog_watermark = 1;
  OnlineScheduler scheduler(pet, {0}, *mapper, dropper, config);

  // First arrival runs (confirmed): pending 0, headroom remains.
  const auto& first = scheduler.task_arrived(0, 0, 200);
  for (const Decision& decision : first) {
    if (decision.kind == DecisionKind::Start) {
      scheduler.task_started(0, decision.machine, decision.task);
    }
  }
  // Second arrival queues behind the running head: pending becomes 1.
  scheduler.task_arrived(1, 0, 200);
  ASSERT_EQ(scheduler.machine(0).pending_count(), 1u);
  ASSERT_EQ(scheduler.shed_count(), 0);
  // Third arrival: the only machine is at the watermark — shed.
  const auto& third = scheduler.task_arrived(2, 0, 200);
  ASSERT_FALSE(third.empty());
  EXPECT_EQ(third[0].kind, DecisionKind::ShedOverload);
  EXPECT_EQ(scheduler.shed_count(), 1);
  // A finish promotes the queued task to the head: headroom returns and
  // the next arrival is admitted again.
  const auto& after_finish = scheduler.task_finished(5, 0);
  for (const Decision& decision : after_finish) {
    if (decision.kind == DecisionKind::Start) {
      scheduler.task_started(5, decision.machine, decision.task);
    }
  }
  const auto& fourth = scheduler.task_arrived(6, 0, 200);
  ASSERT_FALSE(fourth.empty());
  EXPECT_EQ(fourth[0].kind, DecisionKind::Assign);
  EXPECT_EQ(scheduler.shed_count(), 1);
}

TEST(OnlineShed, FleetFullyDownCountsAsBacklogged) {
  OnlineConfig config;
  config.volatile_machines = true;
  config.shed.machine_backlog_watermark = 5;
  ServeFixture fx("PAM", config);
  for (MachineId m = 0; m < 3; ++m) fx.scheduler.machine_down(0, m);
  const auto& decisions = fx.scheduler.task_arrived(1, 0, 100);
  ASSERT_FALSE(decisions.empty());
  EXPECT_EQ(decisions[0].kind, DecisionKind::ShedOverload);
}

TEST(OnlineShed, ShedArrivalStillRunsTheMappingEvent) {
  OnlineConfig config;
  config.shed.total_pending_watermark = 1;
  ServeFixture fx("PAM", config);
  // An unconfirmed pending task whose deadline passes before the next
  // arrival: the shed arrival's mapping event must still expire it.
  fx.scheduler.task_arrived(0, 0, 5);
  const auto& decisions = fx.scheduler.task_arrived(10, 0, 100);
  ASSERT_GE(decisions.size(), 2u);
  EXPECT_EQ(decisions[0].kind, DecisionKind::ShedOverload);
  bool dropped_stale = false;
  for (const Decision& decision : decisions) {
    if (decision.task == 0 && is_terminal(decision.kind)) {
      dropped_stale = true;
    }
  }
  EXPECT_TRUE(dropped_stale);
}

TEST(OnlineShed, ShedOverloadIsTerminal) {
  EXPECT_TRUE(is_terminal(DecisionKind::ShedOverload));
  EXPECT_EQ(std::string(to_string(DecisionKind::ShedOverload)),
            "shed_overload");
}

}  // namespace
}  // namespace taskdrop
