#include "prob/convolution.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"
#include "util/rng.hpp"

namespace taskdrop {
namespace {

using test::pmf_of;

void expect_pmf_near(const Pmf& actual, const Pmf& expected,
                     double tolerance = 1e-12) {
  ASSERT_EQ(actual.empty(), expected.empty());
  if (expected.empty()) return;
  for (Tick t = std::min(actual.min_time(), expected.min_time());
       t <= std::max(actual.max_time(), expected.max_time()); ++t) {
    EXPECT_NEAR(actual.prob_at(t), expected.prob_at(t), tolerance)
        << "at time " << t;
  }
}

// ------------------------- plain convolution -------------------------

TEST(Convolve, WithDeltaIsAShift) {
  const Pmf exec = pmf_of({{1, 0.6}, {2, 0.4}});
  const Pmf shifted = convolve(Pmf::delta(10), exec);
  expect_pmf_near(shifted, pmf_of({{11, 0.6}, {12, 0.4}}));
}

TEST(Convolve, IsCommutative) {
  const Pmf a = pmf_of({{1, 0.3}, {3, 0.7}});
  const Pmf b = pmf_of({{2, 0.5}, {4, 0.25}, {6, 0.25}});
  expect_pmf_near(convolve(a, b), convolve(b, a));
}

TEST(Convolve, ConservesMassAndAddsMeans) {
  const Pmf a = pmf_of({{1, 0.25}, {2, 0.5}, {4, 0.25}});
  const Pmf b = pmf_of({{3, 0.5}, {5, 0.5}});
  const Pmf c = convolve(a, b);
  EXPECT_NEAR(c.total_mass(), 1.0, 1e-12);
  EXPECT_NEAR(c.mean(), a.mean() + b.mean(), 1e-9);
  EXPECT_EQ(c.min_time(), a.min_time() + b.min_time());
  EXPECT_EQ(c.max_time(), a.max_time() + b.max_time());
}

TEST(Convolve, EmptyInputYieldsEmpty) {
  const Pmf a = pmf_of({{1, 1.0}});
  EXPECT_TRUE(convolve(a, Pmf()).empty());
  EXPECT_TRUE(convolve(Pmf(), a).empty());
}

TEST(Convolve, HandComputedExample) {
  const Pmf a = pmf_of({{0, 0.5}, {1, 0.5}});
  const Pmf b = pmf_of({{0, 0.5}, {1, 0.5}});
  expect_pmf_near(convolve(a, b), pmf_of({{0, 0.25}, {1, 0.5}, {2, 0.25}}));
}

TEST(Convolve, CoarseStrideStaysOnLattice) {
  const Pmf a = pmf_of({{10, 0.5}, {15, 0.5}}, 5);
  const Pmf b = pmf_of({{20, 0.5}, {25, 0.5}}, 5);
  const Pmf c = convolve(a, b);
  EXPECT_EQ(c.stride(), 5);
  expect_pmf_near(c, pmf_of({{30, 0.25}, {35, 0.5}, {40, 0.25}}, 5));
}

// --------------------- deadline-truncated (Eq. 1) ---------------------

// The worked example of Fig. 2: execution PMF {1: 0.6, 2: 0.4}, predecessor
// completion {10: 0.6, 11: 0.3, 12: 0.05, 13: 0.05}, deadline 13. The paper
// shows the result {11: 0.36, 12: 0.42, 13: 0.2, 14: 0.02}.
TEST(DeadlineConvolve, PaperFigure2WorkedExample) {
  const Pmf exec = pmf_of({{1, 0.6}, {2, 0.4}});
  const Pmf pred = pmf_of({{10, 0.6}, {11, 0.3}, {12, 0.05}, {13, 0.05}});
  const Pmf completion = deadline_convolve(pred, exec, /*deadline=*/13);
  expect_pmf_near(completion,
                  pmf_of({{11, 0.36}, {12, 0.42}, {13, 0.2}, {14, 0.02}}));
  // And Eq. 2's chance of success (mass strictly before the deadline).
  EXPECT_NEAR(chance_of_success(completion, 13), 0.78, 1e-12);
}

TEST(DeadlineConvolve, NoTruncationEqualsPlainConvolve) {
  const Pmf exec = pmf_of({{1, 0.6}, {2, 0.4}});
  const Pmf pred = pmf_of({{10, 0.5}, {11, 0.5}});
  // Deadline far beyond any start time: the task always starts.
  expect_pmf_near(deadline_convolve(pred, exec, 1000), convolve(pred, exec));
}

TEST(DeadlineConvolve, CertainDropPassesPredecessorThrough) {
  const Pmf exec = pmf_of({{5, 1.0}});
  const Pmf pred = pmf_of({{10, 0.5}, {12, 0.5}});
  // Deadline at or before every predecessor completion: never starts.
  expect_pmf_near(deadline_convolve(pred, exec, 10), pred);
  expect_pmf_near(deadline_convolve(pred, exec, 5), pred);
}

TEST(DeadlineConvolve, MixedCaseSplitsAtDeadline) {
  const Pmf exec = pmf_of({{2, 1.0}});
  const Pmf pred = pmf_of({{9, 0.5}, {11, 0.5}});
  // Start at 9 (allowed, < 10) finishes at 11; start at 11 is dropped and
  // the slot completes when the predecessor did (11).
  const Pmf completion = deadline_convolve(pred, exec, 10);
  expect_pmf_near(completion, pmf_of({{11, 1.0}}));
  EXPECT_NEAR(chance_of_success(completion, 10), 0.0, 1e-12);
}

TEST(DeadlineConvolve, AlwaysConservesMass) {
  const Pmf exec = pmf_of({{1, 0.25}, {2, 0.5}, {3, 0.25}});
  const Pmf pred = pmf_of({{5, 0.2}, {7, 0.3}, {9, 0.3}, {12, 0.2}});
  for (Tick deadline = 4; deadline <= 14; ++deadline) {
    const Pmf completion = deadline_convolve(pred, exec, deadline);
    EXPECT_NEAR(completion.total_mass(), 1.0, 1e-12)
        << "deadline " << deadline;
  }
}

TEST(DeadlineConvolve, EmptyPredecessorYieldsEmpty) {
  const Pmf exec = pmf_of({{1, 1.0}});
  EXPECT_TRUE(deadline_convolve(Pmf(), exec, 10).empty());
}

TEST(DeadlineConvolve, DeltaPredecessorActsAsStartTime) {
  const Pmf exec = pmf_of({{1, 0.6}, {2, 0.4}});
  // Machine free at 5, deadline 7: the task starts at 5 for sure.
  expect_pmf_near(deadline_convolve(Pmf::delta(5), exec, 7),
                  pmf_of({{6, 0.6}, {7, 0.4}}));
  // Machine free at 8, deadline 7: dropped for sure.
  expect_pmf_near(deadline_convolve(Pmf::delta(8), exec, 7), Pmf::delta(8));
}

TEST(DeadlineConvolve, CoarseLatticeMixedCase) {
  const Pmf exec = pmf_of({{5, 0.5}, {10, 0.5}}, 5);
  const Pmf pred = pmf_of({{10, 0.5}, {20, 0.5}}, 5);
  // Deadline 15: start at 10 allowed, start at 20 dropped (pass-through).
  const Pmf completion = deadline_convolve(pred, exec, 15);
  expect_pmf_near(completion, pmf_of({{15, 0.25}, {20, 0.75}}, 5));
  EXPECT_EQ(completion.stride(), 5);
}

// Chance of success through chains: chaining Eq. 1 over a queue conserves
// mass at every link regardless of deadlines (property sweep).
class DeadlineChainTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeadlineChainTest, ChainedMassConservation) {
  Rng rng(GetParam());
  // Random proper exec PMF on stride 1.
  auto random_pmf = [&rng](Tick lo) {
    std::vector<std::pair<Tick, double>> impulses;
    const int n = static_cast<int>(rng.uniform_int(1, 6));
    for (int i = 0; i < n; ++i) {
      impulses.emplace_back(lo + rng.uniform_int(0, 10),
                            rng.uniform(0.1, 1.0));
    }
    Pmf pmf = Pmf::from_impulses(std::move(impulses));
    pmf.normalize();
    return pmf;
  };
  Pmf chain = Pmf::delta(rng.uniform_int(0, 5));
  for (int link = 0; link < 6; ++link) {
    const Pmf exec = random_pmf(1);
    const Tick deadline = chain.min_time() + rng.uniform_int(0, 15);
    chain = deadline_convolve(chain, exec, deadline);
    ASSERT_NEAR(chain.total_mass(), 1.0, 1e-9) << "link " << link;
    const double chance = chance_of_success(chain, deadline);
    ASSERT_GE(chance, -1e-12);
    ASSERT_LE(chance, 1.0 + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomChains, DeadlineChainTest,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace taskdrop
