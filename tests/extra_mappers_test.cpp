// Tests for the mapping heuristics this repo adds beyond the paper's six:
// MaxMin, MET, RR, and the deferring PAM variant (PAMD).
#include <gtest/gtest.h>

#include "core/sandbox.hpp"
#include "sched/registry.hpp"
#include "test_util.hpp"

namespace taskdrop {
namespace {

using test::pet_of;

/// type 0: m0 10, m1 20; type 1: m0 20, m1 5 (inconsistent).
PetMatrix inconsistent_pet() {
  return pet_of({{{{10, 1.0}}, {{20, 1.0}}}, {{{20, 1.0}}, {{5, 1.0}}}});
}

MachineId machine_of(const SystemSandbox& sandbox, TaskId task) {
  for (const auto& [assigned_task, machine] : sandbox.assigned) {
    if (assigned_task == task) return machine;
  }
  return -1;
}

TEST(MaxMin, AssignsLongestOfTheBestPairsFirst) {
  const PetMatrix pet = inconsistent_pet();
  SystemSandbox sandbox(pet, {0}, 1);  // one slot forces the choice
  const TaskId longer = sandbox.add_unmapped(0, 0, 1000);   // 10 on m0
  sandbox.add_unmapped(1, 0, 1000);                         // 20 on m0
  make_mapper("MaxMin")->map_tasks(sandbox.view(), sandbox);
  ASSERT_EQ(sandbox.assigned.size(), 1u);
  // Phase 1 pairs both tasks with m0; phase 2 takes the *largest* expected
  // completion: the type-1 task (20) wins over type-0 (10).
  EXPECT_NE(sandbox.assigned.front().first, longer);
}

TEST(MaxMin, StillPairsTasksWithTheirFastestMachine) {
  const PetMatrix pet = inconsistent_pet();
  SystemSandbox sandbox(pet, {0, 1}, 6);
  const TaskId t0 = sandbox.add_unmapped(0, 0, 1000);
  const TaskId t1 = sandbox.add_unmapped(1, 0, 1000);
  make_mapper("MaxMin")->map_tasks(sandbox.view(), sandbox);
  EXPECT_EQ(machine_of(sandbox, t0), 0);
  EXPECT_EQ(machine_of(sandbox, t1), 1);
}

TEST(Met, IgnoresQueueBacklog) {
  const PetMatrix pet = inconsistent_pet();
  SystemSandbox sandbox(pet, {0, 1}, 6);
  // Pile backlog onto m0; MET still sends type-0 there because only the
  // raw execution time matters (10 < 20).
  for (int i = 0; i < 4; ++i) sandbox.enqueue(0, 0, 100000);
  const TaskId task = sandbox.add_unmapped(0, 0, 100000);
  make_mapper("MET")->map_tasks(sandbox.view(), sandbox);
  EXPECT_EQ(machine_of(sandbox, task), 0);
}

TEST(Met, TakesBatchInArrivalOrder) {
  const PetMatrix pet = inconsistent_pet();
  SystemSandbox sandbox(pet, {0}, 2);
  const TaskId first = sandbox.add_unmapped(1, 0, 1000);
  const TaskId second = sandbox.add_unmapped(0, 1, 1000);
  make_mapper("MET")->map_tasks(sandbox.view(), sandbox);
  ASSERT_EQ(sandbox.assigned.size(), 2u);
  EXPECT_EQ(sandbox.assigned[0].first, first);
  EXPECT_EQ(sandbox.assigned[1].first, second);
}

TEST(RoundRobin, DealsTasksCyclically) {
  const PetMatrix pet = inconsistent_pet();
  SystemSandbox sandbox(pet, {0, 1}, 6);
  std::vector<TaskId> tasks;
  for (int i = 0; i < 4; ++i) {
    tasks.push_back(sandbox.add_unmapped(0, i, 100000));
  }
  make_mapper("RR")->map_tasks(sandbox.view(), sandbox);
  ASSERT_EQ(sandbox.assigned.size(), 4u);
  EXPECT_EQ(machine_of(sandbox, tasks[0]), 0);
  EXPECT_EQ(machine_of(sandbox, tasks[1]), 1);
  EXPECT_EQ(machine_of(sandbox, tasks[2]), 0);
  EXPECT_EQ(machine_of(sandbox, tasks[3]), 1);
}

TEST(RoundRobin, SkipsFullQueues) {
  const PetMatrix pet = inconsistent_pet();
  SystemSandbox sandbox(pet, {0, 1}, 1);
  sandbox.enqueue(0, 0, 100000);  // m0 full
  const TaskId task = sandbox.add_unmapped(0, 0, 100000);
  make_mapper("RR")->map_tasks(sandbox.view(), sandbox);
  EXPECT_EQ(machine_of(sandbox, task), 1);
}

TEST(Pamd, DefersHopelessTasksInsteadOfMapping) {
  const PetMatrix pet = inconsistent_pet();
  SystemSandbox sandbox(pet, {0, 1}, 6);
  sandbox.set_now(100);
  // Deadline already passed: chance 0 < the 0.3 defer threshold.
  sandbox.add_unmapped(0, 0, 50);
  make_mapper("PAMD")->map_tasks(sandbox.view(), sandbox);
  EXPECT_TRUE(sandbox.assigned.empty());
  EXPECT_EQ(sandbox.view().batch_queue->size(), 1u);
}

TEST(Pamd, MapsViableTasksLikePam) {
  const PetMatrix pet = inconsistent_pet();
  SystemSandbox sandbox(pet, {0, 1}, 6);
  const TaskId viable = sandbox.add_unmapped(0, 0, 15);  // certain on m0
  make_mapper("PAMD")->map_tasks(sandbox.view(), sandbox);
  EXPECT_EQ(machine_of(sandbox, viable), 0);
  EXPECT_EQ(make_mapper("PAMD")->name(), "PAMD");
}

TEST(ExtraMappers, AreRegistered) {
  for (const std::string name : {"MaxMin", "MET", "RR", "PAMD"}) {
    EXPECT_NE(make_mapper(name), nullptr) << name;
  }
}

}  // namespace
}  // namespace taskdrop
