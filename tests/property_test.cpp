// Property-based sweeps over randomised inputs: invariants that must hold
// for every seed, exercised via TEST_P.
#include <gtest/gtest.h>

#include "core/optimal_dropper.hpp"
#include "core/proactive_heuristic_dropper.hpp"
#include "core/sandbox.hpp"
#include "prob/convolution.hpp"
#include "sched/registry.hpp"
#include "sim/engine.hpp"
#include "test_util.hpp"
#include "workload/generator.hpp"
#include "workload/scenario.hpp"

namespace taskdrop {
namespace {

Pmf random_exec_pmf(Rng& rng, Tick stride) {
  std::vector<std::pair<Tick, double>> impulses;
  const int n = static_cast<int>(rng.uniform_int(1, 8));
  for (int i = 0; i < n; ++i) {
    impulses.emplace_back(stride * rng.uniform_int(1, 12),
                          rng.uniform(0.05, 1.0));
  }
  Pmf pmf = Pmf::from_impulses(std::move(impulses), stride);
  pmf.normalize();
  return pmf;
}

class SeededProperty : public ::testing::TestWithParam<std::uint64_t> {};

// Eq. 1 output is a proper PMF and success chance is a probability, for
// arbitrary inputs and deadlines.
TEST_P(SeededProperty, DeadlineConvolveYieldsProperPmf) {
  Rng rng(GetParam());
  for (const Tick stride : {Tick{1}, Tick{5}}) {
    const Pmf pred = random_exec_pmf(rng, stride);
    const Pmf exec = random_exec_pmf(rng, stride);
    for (int i = 0; i < 10; ++i) {
      const Tick deadline = stride * rng.uniform_int(0, 30);
      const Pmf completion = deadline_convolve(pred, exec, deadline);
      ASSERT_NEAR(completion.total_mass(), 1.0, 1e-9);
      const double chance = chance_of_success(completion, deadline);
      ASSERT_GE(chance, -1e-12);
      ASSERT_LE(chance, 1.0 + 1e-12);
      // Completion can never precede the earliest possible start+exec or
      // the predecessor itself.
      ASSERT_GE(completion.min_time(),
                std::min(pred.min_time() + exec.min_time(), pred.min_time()));
    }
  }
}

// Dropping any mid-queue task never hurts its influence zone: each
// successor's chance of success is non-decreasing (section IV-A's "dropping
// improves the chance of success for the tasks behind").
TEST_P(SeededProperty, DroppingNeverHurtsSuccessors) {
  Rng rng(GetParam());
  const PetMatrix pet = test::pet_of(
      {{{{2, 0.5}, {8, 0.5}}}, {{{1, 0.7}, {4, 0.3}}}, {{{5, 1.0}}}});
  SystemSandbox sandbox(pet, {0}, 8);
  const int depth = static_cast<int>(rng.uniform_int(3, 6));
  for (int i = 0; i < depth; ++i) {
    sandbox.enqueue(0, static_cast<TaskTypeId>(rng.uniform_int(0, 2)),
                    rng.uniform_int(3, 40));
  }
  CompletionModel& model = sandbox.model(0);
  const auto victim =
      static_cast<std::size_t>(rng.uniform_int(0, depth - 2));
  std::vector<double> before;
  for (std::size_t pos = victim + 1; pos < sandbox.machine(0).queue.size();
       ++pos) {
    before.push_back(model.chance(pos));
  }
  sandbox.drop_queued_task(0, victim);
  for (std::size_t i = 0; i < before.size(); ++i) {
    ASSERT_GE(model.chance(victim + i) + 1e-12, before[i])
        << "successor " << i;
  }
}

// The heuristic dropper only ever drops when Eq. 8 certifies a gain, so the
// queue's instantaneous robustness never decreases across a pass.
TEST_P(SeededProperty, HeuristicPassNeverReducesInstantaneousRobustness) {
  Rng rng(GetParam());
  const PetMatrix pet = test::pet_of(
      {{{{2, 0.5}, {8, 0.5}}}, {{{1, 0.7}, {4, 0.3}}}, {{{5, 1.0}}}});
  SystemSandbox sandbox(pet, {0, 0}, 8);
  for (const MachineId machine : {0, 1}) {
    const int depth = static_cast<int>(rng.uniform_int(2, 6));
    for (int i = 0; i < depth; ++i) {
      sandbox.enqueue(machine, static_cast<TaskTypeId>(rng.uniform_int(0, 2)),
                      rng.uniform_int(3, 40));
    }
  }
  const double before = sandbox.model(0).instantaneous_robustness() +
                        sandbox.model(1).instantaneous_robustness();
  ProactiveHeuristicDropper dropper;
  dropper.run(sandbox.view(), sandbox);
  const double after = sandbox.model(0).instantaneous_robustness() +
                       sandbox.model(1).instantaneous_robustness();
  ASSERT_GE(after + 1e-9, before);
}

// Engine conservation law: every generated task ends in exactly one
// terminal state, for every mapper/dropper combination.
TEST_P(SeededProperty, EngineConservesTasksAcrossConfigurations) {
  const std::uint64_t seed = GetParam();
  const Scenario scenario = make_scenario(ScenarioKind::SpecHC, seed);
  WorkloadConfig workload;
  workload.n_tasks = 150;
  workload.oversubscription = 3.0;
  workload.seed = seed;
  const Trace trace =
      generate_trace(scenario.pet, scenario.machine_count(), workload);

  const std::vector<DropperConfig> droppers = {
      DropperConfig::reactive_only(), DropperConfig::heuristic(),
      DropperConfig::threshold(), DropperConfig::optimal(),
      DropperConfig::approximate()};
  for (const auto& mapper_name : mapper_names()) {
    for (const auto& dropper_config : droppers) {
      auto mapper = make_mapper(mapper_name);
      auto dropper = make_dropper(dropper_config);
      EngineConfig config;
      config.exec_seed = seed;
      Engine engine(scenario.pet, scenario.profile.machine_types, *mapper,
                    *dropper, config);
      const SimResult result = engine.run(trace);
      ASSERT_EQ(result.counts().total(),
                static_cast<long long>(trace.size()))
          << mapper_name << " + " << dropper->name();
      for (const Task& task : result.tasks) {
        ASSERT_TRUE(is_terminal(task.state));
        if (task.state == TaskState::CompletedOnTime) {
          ASSERT_LT(task.finish_time, task.deadline);
        }
        if (task.state == TaskState::CompletedLate) {
          ASSERT_GE(task.finish_time, task.deadline);
        }
        if (task.state == TaskState::Running ||
            task.state == TaskState::CompletedOnTime ||
            task.state == TaskState::CompletedLate) {
          ASSERT_LT(task.start_time, task.deadline)
              << "a task must start before its deadline";
        }
      }
    }
  }
}

// Workload generation is a pure function of its seed at any scale.
TEST_P(SeededProperty, TraceGenerationIsPure) {
  const std::uint64_t seed = GetParam();
  const PetMatrix pet = test::pet_of({{{{100, 1.0}}}, {{{50, 1.0}}}});
  WorkloadConfig config;
  config.n_tasks = 64;
  config.seed = seed;
  const Trace a = generate_trace(pet, 4, config);
  const Trace b = generate_trace(pet, 4, config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].arrival, b[i].arrival);
    ASSERT_EQ(a[i].deadline, b[i].deadline);
    ASSERT_EQ(a[i].type, b[i].type);
  }
  EXPECT_TRUE(validate_trace(a, pet.task_type_count()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace taskdrop
