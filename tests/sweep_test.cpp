// SweepSpec expansion, spec round-trips, scenario-cache sharing, and
// bitwise equivalence of SweepRunner cells with run_experiment.
#include "exp/sweep.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "metrics/report.hpp"

namespace taskdrop {
namespace {

SweepSpec small_spec() {
  SweepSpec spec;
  spec.name = "test sweep";
  spec.levels = {{"tiny", 300, 3.0}};
  spec.mappers = {"PAM", "MM"};
  spec.droppers = {{"heuristic", DropperConfig::heuristic()},
                   {"reactive", DropperConfig::reactive_only()}};
  spec.trials = 2;
  spec.seed = 42;
  return spec;
}

TEST(SweepSpec, CellCountIsTheCrossProduct) {
  SweepSpec spec = small_spec();
  spec.scenarios = {ScenarioKind::SpecHC, ScenarioKind::Homogeneous};
  spec.levels = {{"a", 300, 2.5}, {"b", 300, 3.0}, {"c", 300, 3.5}};
  spec.gammas = {2.0, 4.0};
  spec.conditioning = {false, true};
  // 2 scenarios x 3 levels x 2 mappers x 2 droppers x 2 gammas x 2 cond.
  EXPECT_EQ(spec.cell_count(), 96u);
  EXPECT_EQ(expand(spec).size(), 96u);
}

TEST(SweepSpec, SeriesReplacesMapperDropperCross) {
  SweepSpec spec = small_spec();
  spec.series = {{"PAM+Heuristic", "PAM", DropperConfig::heuristic()},
                 {"MM+ReactDrop", "MM", DropperConfig::reactive_only()},
                 {"PAM+Threshold", "PAM", DropperConfig::threshold()}};
  EXPECT_EQ(spec.cell_count(), 3u);
  const auto cells = expand(spec);
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_EQ(cells[1].point.mapper, "MM");
  EXPECT_EQ(cells[1].point.dropper, "MM+ReactDrop");
  EXPECT_EQ(cells[1].config.dropper.kind, DropperConfig::Kind::ReactiveOnly);
}

TEST(SweepSpec, ExpansionFillsConfigsAndPoints) {
  const SweepSpec spec = small_spec();
  const auto cells = expand(spec);
  ASSERT_EQ(cells.size(), 4u);
  // Nesting order: mapper outer, dropper inner.
  EXPECT_EQ(cells[0].point.mapper, "PAM");
  EXPECT_EQ(cells[0].point.dropper, "heuristic");
  EXPECT_EQ(cells[1].point.mapper, "PAM");
  EXPECT_EQ(cells[1].point.dropper, "reactive");
  EXPECT_EQ(cells[2].point.mapper, "MM");
  for (const SweepCell& cell : cells) {
    EXPECT_EQ(cell.config.workload.n_tasks, 300);
    EXPECT_EQ(cell.config.trials, 2);
    EXPECT_EQ(cell.config.seed, 42u);
    EXPECT_EQ(cell.point.level, "tiny");
    EXPECT_EQ(cell.point.gamma, "4");
    EXPECT_EQ(cell.point.capacity, "6");
    EXPECT_EQ(cell.point.engagement, "every-event");
    EXPECT_EQ(cell.point.conditioning, "unconditioned");
    EXPECT_EQ(cell.point.failures, "off");
  }
}

TEST(SweepSpec, ValidateRejectsBadSpecsUpFront) {
  SweepSpec spec = small_spec();
  spec.trials = 0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = small_spec();
  spec.mappers.clear();
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = small_spec();
  spec.levels = {{"bad", 0, 3.0}};
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = small_spec();
  spec.queue_capacities = {0};
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = small_spec();
  spec.mappers = {"NOPE"};
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(SweepSpec, FromMapBuildsGridsThroughTheRegistries) {
  const SweepSpec spec = SweepSpec::from_map(parse_spec_text(
      "name = grid\n"
      "scenario = spec_hc, homogeneous\n"
      "mapper = PAM, MM\n"
      "dropper = heuristic, threshold, reactive\n"
      "eta = 1, 2\n"
      "levels = 20k:2000:2.5, 30k:3000:3.0\n"
      "engagement = every-event, on-deadline-miss\n"
      "trials = 3\n"
      "seed = 7\n"));
  EXPECT_EQ(spec.name, "grid");
  EXPECT_EQ(spec.scenarios.size(), 2u);
  EXPECT_EQ(spec.mappers.size(), 2u);
  // heuristic x {eta 1, 2} + threshold + reactive.
  ASSERT_EQ(spec.droppers.size(), 4u);
  EXPECT_EQ(spec.droppers[0].label, "heuristic eta=1");
  EXPECT_EQ(spec.droppers[1].label, "heuristic eta=2");
  EXPECT_EQ(spec.droppers[1].config.effective_depth, 2);
  EXPECT_EQ(spec.droppers[2].label, "threshold");
  EXPECT_EQ(spec.levels[1].n_tasks, 3000);
  EXPECT_DOUBLE_EQ(spec.levels[1].oversubscription, 3.0);
  EXPECT_EQ(spec.engagements.size(), 2u);
  EXPECT_EQ(spec.trials, 3);
  EXPECT_EQ(spec.seed, 7u);
  EXPECT_EQ(spec.cell_count(), 2u * 2u * 4u * 2u * 2u);
}

TEST(SweepSpec, FromMapZipsTasksAndOversub) {
  const SweepSpec spec = SweepSpec::from_map(
      parse_spec_text("tasks = 2000, 3000\noversub = 2.5, 3.0\ntrials = 1\n"));
  ASSERT_EQ(spec.levels.size(), 2u);
  EXPECT_EQ(spec.levels[0].n_tasks, 2000);
  EXPECT_DOUBLE_EQ(spec.levels[1].oversubscription, 3.0);

  const SweepSpec broadcast = SweepSpec::from_map(
      parse_spec_text("tasks = 500\noversub = 2.5, 3.0, 3.5\ntrials = 1\n"));
  ASSERT_EQ(broadcast.levels.size(), 3u);
  EXPECT_EQ(broadcast.levels[2].n_tasks, 500);

  EXPECT_THROW(SweepSpec::from_map(parse_spec_text(
                   "tasks = 1, 2\noversub = 2.5, 3.0, 3.5\n")),
               std::invalid_argument);
}

TEST(SweepSpec, FromMapRejectsUnknownKeysAndBadValues) {
  try {
    SweepSpec::from_map(parse_spec_text("droper = heuristic\n"));
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("dropper"), std::string::npos);
  }
  EXPECT_THROW(SweepSpec::from_map(parse_spec_text("trials = 0\n")),
               std::invalid_argument);
  EXPECT_THROW(SweepSpec::from_map(parse_spec_text("trials = many\n")),
               std::invalid_argument);
  EXPECT_THROW(SweepSpec::from_map(parse_spec_text("scenario = mars\n")),
               std::invalid_argument);
  EXPECT_THROW(SweepSpec::from_map(parse_spec_text("engagement = never\n")),
               std::invalid_argument);
  // Out-of-range magnitudes are loud errors, not silent truncation.
  EXPECT_THROW(
      SweepSpec::from_map(parse_spec_text("capacity = 99999999999\n")),
      std::invalid_argument);
  EXPECT_THROW(SweepSpec::from_map(parse_spec_text("seed = -1\n")),
               std::invalid_argument);
  // The levels axis has two spellings; mixing them is ambiguous.
  EXPECT_THROW(SweepSpec::from_map(parse_spec_text(
                   "levels = a:2000:2.5\ntasks = 300\n")),
               std::invalid_argument);
  // ':' is the levels-entry separator, so a label containing it cannot
  // round-trip through to_map — rejected at parse time with a clear
  // error, and at validate() for hand-built specs.
  try {
    SweepSpec::from_map(parse_spec_text("levels = a:b:2000:2.5\n"));
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("':'"), std::string::npos);
  }
  {
    SweepSpec spec;
    spec.levels = {{"a:b", 2000, 2.5}};
    EXPECT_THROW(spec.validate(), std::invalid_argument);
    // And the fixed rendering round-trips: a ':'-free label re-parses to
    // the identical level.
    spec.levels = {{"20k", 2000, 2.5}};
    const SpecMap map = spec.to_map();
    const SweepSpec reparsed = SweepSpec::from_map(map);
    ASSERT_EQ(reparsed.levels.size(), 1u);
    EXPECT_EQ(reparsed.levels[0].label, "20k");
    EXPECT_EQ(reparsed.levels[0].n_tasks, 2000);
    EXPECT_DOUBLE_EQ(reparsed.levels[0].oversubscription, 2.5);
  }
  // mttr without the mtbf axis would silently disable failure injection.
  EXPECT_THROW(SweepSpec::from_map(parse_spec_text("mttr = 500\n")),
               std::invalid_argument);
}

TEST(SweepSpec, KeyRegistryCoversFromMap) {
  // Every documented key must round through from_map without an
  // unknown-key error (the CLI derives its flag set from this list).
  for (const std::string& key : sweep_spec_keys()) {
    SpecMap map;
    if (key == "name") {
      map[key] = {"x"};
    } else if (key == "scenario") {
      map[key] = {"spec_hc"};
    } else if (key == "mapper") {
      map[key] = {"PAM"};
    } else if (key == "dropper") {
      map[key] = {"heuristic"};
    } else if (key == "levels") {
      map[key] = {"a:300:3.0"};
    } else if (key == "engagement") {
      map[key] = {"every-event"};
    } else if (key == "pattern") {
      map[key] = {"poisson"};
    } else if (key == "adaptive" || key == "conditioning" ||
               key == "approx") {
      map[key] = {"1"};
    } else if (key == "beta") {
      map[key] = {"1.5"};  // beta < 1 is rejected by the dropper registry
    } else if (key == "approx_time_factor" ||
               key == "approx_utility_weight" || key == "oversub" ||
               key == "threshold") {
      map[key] = {"0.5"};
    } else if (key == "mtbf") {
      map[key] = {"60000"};
    } else if (key == "mttr") {
      map["mtbf"] = {"60000"};  // mttr alone is rejected as ambiguous
      map[key] = {"500"};
    } else {
      map[key] = {"2"};
    }
    EXPECT_NO_THROW(SweepSpec::from_map(map)) << "key: " << key;
  }
}

TEST(SweepSpec, ToMapFromMapIsAFixpoint) {
  const SweepSpec first = SweepSpec::from_map(parse_spec_text(
      "name = roundtrip\n"
      "scenario = spec_hc\n"
      "mapper = PAM, MM\n"
      "dropper = heuristic, reactive\n"
      "eta = 1, 3\n"
      "levels = a:2000:2.5, b:3000:3\n"
      "gamma = 2, 4\n"
      "mtbf = 0, 60000\n"
      "trials = 2\n"));
  const SpecMap canonical = first.to_map();
  const SweepSpec second = SweepSpec::from_map(canonical);
  EXPECT_EQ(second.to_map(), canonical);
  EXPECT_EQ(second.cell_count(), first.cell_count());
  // And the canonical text form parses back to the same map.
  EXPECT_EQ(parse_spec_text(spec_to_text(canonical)), canonical);
}

TEST(SweepSpec, ToMapRoundTripsAwkwardDoubles) {
  // The old 6-significant-digit rendering truncated these, so
  // from_map(to_map()) drifted; the shortest-round-trip formatter makes
  // the round trip bitwise for any finite double.
  SweepSpec spec;
  spec.levels = {{"x", 1234567, 0.1234567}};
  spec.gammas = {1.0 / 3.0, 4.000000000000001};
  spec.droppers = {{"heuristic", DropperConfig::heuristic(2, 1.0000001)}};
  const SweepSpec reparsed = SweepSpec::from_map(spec.to_map());
  ASSERT_EQ(reparsed.levels.size(), 1u);
  EXPECT_EQ(reparsed.levels[0].oversubscription, 0.1234567);
  ASSERT_EQ(reparsed.gammas.size(), 2u);
  EXPECT_EQ(reparsed.gammas[0], 1.0 / 3.0);
  EXPECT_EQ(reparsed.gammas[1], 4.000000000000001);
  ASSERT_EQ(reparsed.droppers.size(), 1u);
  EXPECT_EQ(reparsed.droppers[0].config.beta, 1.0000001);
  EXPECT_EQ(reparsed.to_map(), spec.to_map());
}

TEST(ScenarioCache, SharesOneScenarioPerKindAndSeed) {
  ScenarioCache cache;
  const auto a = cache.get(ScenarioKind::SpecHC, 42);
  const auto b = cache.get(ScenarioKind::SpecHC, 42);
  EXPECT_EQ(a.get(), b.get());
  const auto other_seed = cache.get(ScenarioKind::SpecHC, 43);
  EXPECT_NE(a.get(), other_seed.get());
  const auto other_kind = cache.get(ScenarioKind::Homogeneous, 42);
  EXPECT_NE(a.get(), other_kind.get());
  EXPECT_EQ(cache.size(), 3u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  // Cleared entries stay alive through the returned shared_ptr.
  EXPECT_FALSE(a->profile.machine_types.empty());
}

void expect_bitwise_equal(const TrialMetrics& a, const TrialMetrics& b) {
  EXPECT_EQ(a.robustness_pct, b.robustness_pct);
  EXPECT_EQ(a.utility_pct, b.utility_pct);
  EXPECT_EQ(a.total_cost, b.total_cost);
  EXPECT_EQ(a.normalized_cost, b.normalized_cost);
  EXPECT_EQ(a.reactive_drop_share_pct, b.reactive_drop_share_pct);
  EXPECT_EQ(a.completed_on_time, b.completed_on_time);
  EXPECT_EQ(a.completed_late, b.completed_late);
  EXPECT_EQ(a.dropped_reactive_queued, b.dropped_reactive_queued);
  EXPECT_EQ(a.dropped_proactive, b.dropped_proactive);
  EXPECT_EQ(a.expired_unmapped, b.expired_unmapped);
  EXPECT_EQ(a.lost_to_failure, b.lost_to_failure);
  EXPECT_EQ(a.approx_on_time, b.approx_on_time);
  EXPECT_EQ(a.mapping_events, b.mapping_events);
  EXPECT_EQ(a.dropper_invocations, b.dropper_invocations);
}

TEST(SweepRunner, CellsMatchRunExperimentBitwise) {
  const SweepSpec spec = small_spec();
  const SweepReport report = run_sweep(spec);
  ASSERT_EQ(report.cells.size(), 4u);
  for (const SweepCellResult& cell : report.cells) {
    const ExperimentResult expected = run_experiment(cell.config);
    ASSERT_EQ(cell.result.trials.size(), expected.trials.size());
    for (std::size_t t = 0; t < expected.trials.size(); ++t) {
      expect_bitwise_equal(cell.result.trials[t], expected.trials[t]);
    }
    EXPECT_EQ(cell.result.robustness.mean, expected.robustness.mean);
    EXPECT_EQ(cell.result.robustness.ci95, expected.robustness.ci95);
    EXPECT_EQ(cell.result.normalized_cost.mean, expected.normalized_cost.mean);
    EXPECT_EQ(cell.result.reactive_share.mean, expected.reactive_share.mean);
  }
}

TEST(SweepRunner, UsesTheSharedCacheAndStreamsProgress) {
  const SweepSpec spec = small_spec();
  ScenarioCache cache;
  SweepOptions options;
  options.cache = &cache;
  std::atomic<std::size_t> calls{0};
  std::size_t last_total = 0;
  options.on_cell = [&](const SweepCellResult&, std::size_t done,
                        std::size_t total) {
    ++calls;
    EXPECT_GE(done, 1u);
    EXPECT_LE(done, total);
    last_total = total;
  };
  const SweepReport report = run_sweep(spec, options);
  EXPECT_EQ(report.cells.size(), 4u);
  // One scenario (kind, seed) pair serves all four cells.
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(calls.load(), 4u);
  EXPECT_EQ(last_total, 4u);
}

TEST(SweepRunner, CellLookupByAxisLabels) {
  const SweepReport report = run_sweep(small_spec());
  const SweepCellResult& cell =
      cell_at(report, {{"mapper", "MM"}, {"dropper", "reactive"}});
  EXPECT_EQ(cell.config.mapper, "MM");
  EXPECT_EQ(cell.config.dropper.kind, DropperConfig::Kind::ReactiveOnly);
  EXPECT_THROW(cell_at(report, {{"mapper", "FCFS"}}), std::out_of_range);
  EXPECT_EQ(find_cell(report, [](const SweepCellResult&) { return false; }),
            nullptr);
  EXPECT_THROW(axis_label(cell.point, "flavor"), std::invalid_argument);
}

TEST(SweepReportEmitters, TableCsvAndJsonAgreeOnCells) {
  const SweepReport report = run_sweep(small_spec());
  EXPECT_EQ(report.active_axes,
            (std::vector<std::string>{"mapper", "dropper"}));

  const Table table = sweep_table(report);
  EXPECT_EQ(table.row_count(), report.cells.size());
  EXPECT_EQ(table.headers().front(), "mapper");

  std::ostringstream csv;
  write_sweep_csv(csv, report);
  EXPECT_NE(csv.str().find("mapper,dropper,robustness"), std::string::npos);

  std::ostringstream json;
  write_sweep_json(json, report);
  EXPECT_NE(json.str().find("taskdrop-sweep/v2"), std::string::npos);
  EXPECT_NE(json.str().find("\"robustness_pct\""), std::string::npos);
  EXPECT_NE(json.str().find("\"mapper\": \"MM\""), std::string::npos);
  // A plain (unsharded) dump carries summaries, not per-trial payloads.
  EXPECT_EQ(json.str().find("\"shard\""), std::string::npos);
  EXPECT_EQ(json.str().find("\"trials\": ["), std::string::npos);
}

TEST(SweepReportEmitters, JsonStaysValidForNonFiniteSummaries) {
  SweepReport report;
  report.name = "nan report";
  report.active_axes = {"mapper"};
  report.cells.resize(1);
  report.cells[0].result.robustness = {std::nan(""), std::nan("")};
  report.cells[0].result.normalized_cost = {
      std::numeric_limits<double>::infinity(), 0.0};
  std::ostringstream json;
  write_sweep_json(json, report);
  // Non-finite summaries degrade to null; the bare inf/nan tokens the
  // default ostream formatting used to emit are invalid JSON.
  EXPECT_NE(json.str().find("\"robustness_pct\": {\"mean\": null, "
                            "\"ci95\": null}"),
            std::string::npos);
  EXPECT_NE(json.str().find("\"normalized_cost\": {\"mean\": null, "
                            "\"ci95\": 0}"),
            std::string::npos);
  EXPECT_EQ(json.str().find("nan"), json.str().find("nan report"));
  EXPECT_EQ(json.str().find("inf"), std::string::npos);
}

TEST(Summaries, SingleTrialCi95IsZeroNotNan) {
  // One trial gives no variance estimate; the paper's convention (and the
  // JSON emitter) need CI95 == 0, never nan.
  const ExperimentResult result =
      summarize_trials({TrialMetrics{.robustness_pct = 73.0}});
  EXPECT_EQ(result.robustness.mean, 73.0);
  EXPECT_EQ(result.robustness.ci95, 0.0);
  EXPECT_TRUE(std::isfinite(result.normalized_cost.ci95));
}

TEST(Engagement, NamesRoundTripAndRejectUnknown) {
  EXPECT_EQ(engagement_from_name("every-event"),
            DropperEngagement::EveryMappingEvent);
  EXPECT_EQ(engagement_from_name("on-deadline-miss"),
            DropperEngagement::OnDeadlineMiss);
  EXPECT_EQ(engagement_name(DropperEngagement::OnDeadlineMiss),
            "on-deadline-miss");
  EXPECT_THROW(engagement_from_name("sometimes"), std::invalid_argument);
}

TEST(RunExperiment, RejectsZeroTrials) {
  ExperimentConfig config;
  config.trials = 0;
  EXPECT_THROW(run_experiment(config), std::invalid_argument);
}

}  // namespace
}  // namespace taskdrop
