// Differential lockdown for the revision-keyed appended-distribution cache:
// chance_if_appended and appended_view must reproduce the pre-cache direct
// computation — the ascending-time dot product of the cached tail PMF
// against the execution CDF — at every deadline, across random machine
// states, revisions and type sets, including every cache-invalidation-
// after-mutation path (enqueue, drop, start, time advance).
#include <gtest/gtest.h>

#include <vector>

#include "core/completion_model.hpp"
#include "core/sandbox.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace taskdrop {
namespace {

using test::pet_of;

/// The pre-cache computation, verbatim: Eq. 2 applied to Eq. 1 without
/// materialising the convolution (see CompletionModel::chance_if_appended
/// before the cache landed).
double reference_chance_if_appended(CompletionModel& model, const Machine& m,
                                    const PetMatrix& pet, Tick now,
                                    TaskTypeId type, Tick deadline) {
  const PmfCdf& exec_cdf = pet.cdf(type, m.type);
  if (m.queue.empty()) {
    return now < deadline ? exec_cdf.mass_before(deadline - now) : 0.0;
  }
  const Pmf& pred = model.completion(m.queue.size() - 1);
  double sum = 0.0;
  const double* p = pred.data();
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const Tick k = pred.time_at(i);
    if (k >= deadline) break;
    if (p[i] == 0.0) continue;
    sum += p[i] * exec_cdf.mass_before(deadline - k);
  }
  return sum;
}

/// Random PET: `types` task types x 1 machine type on the given stride
/// lattice, positive execution times, proper per-cell mass.
PetMatrix random_pet(Rng& rng, int types, Tick stride) {
  std::vector<std::vector<std::vector<std::pair<Tick, double>>>> cells;
  for (int t = 0; t < types; ++t) {
    const Tick offset = stride * rng.uniform_int(1, 4);
    const int bins = static_cast<int>(rng.uniform_int(1, 12));
    std::vector<std::pair<Tick, double>> impulses;
    double total = 0.0;
    for (int b = 0; b < bins; ++b) {
      const double p = rng.uniform(0.05, 1.0);
      impulses.emplace_back(offset + stride * b, p);
      total += p;
    }
    for (auto& impulse : impulses) impulse.second /= total;
    cells.push_back({impulses});
  }
  return pet_of(cells, stride);
}

/// Probes every type over a deadline sweep spanning (and overshooting) the
/// appended support, both through the lazy memo (chance_if_appended) and
/// the eager table (appended_view), against the direct reference.
void expect_probes_match(SystemSandbox& sandbox, const PetMatrix& pet,
                         Tick now, Tick horizon, Tick step,
                         const char* label) {
  CompletionModel& model = sandbox.model(0);
  const Machine& machine = sandbox.machine(0);
  for (TaskTypeId type = 0; type < pet.task_type_count(); ++type) {
    for (Tick deadline = 0; deadline <= horizon; deadline += step) {
      const double expected = reference_chance_if_appended(
          model, machine, pet, now, type, deadline);
      const double memoised = model.chance_if_appended(type, deadline);
      ASSERT_DOUBLE_EQ(memoised, expected)
          << label << " type=" << type << " deadline=" << deadline;
      // Repeat once more to hit the filled memo cell.
      ASSERT_DOUBLE_EQ(model.chance_if_appended(type, deadline), expected)
          << label << " (repeat) type=" << type << " deadline=" << deadline;
      const double viewed = model.appended_view(type).mass_before(deadline);
      ASSERT_DOUBLE_EQ(viewed, expected)
          << label << " (view) type=" << type << " deadline=" << deadline;
    }
  }
}

TEST(AppendedView, MatchesDirectComputationAcrossRandomStates) {
  Rng rng(7042);
  for (const Tick stride : {Tick{1}, Tick{3}}) {
    for (int round = 0; round < 20; ++round) {
      const int types = static_cast<int>(rng.uniform_int(1, 4));
      const PetMatrix pet = random_pet(rng, types, stride);
      SystemSandbox sandbox(pet, {0}, /*queue_capacity=*/8, /*now=*/0);

      const int depth = static_cast<int>(rng.uniform_int(0, 6));
      Tick deadline = stride * 6;
      for (int i = 0; i < depth; ++i) {
        deadline += stride * rng.uniform_int(1, 8);
        sandbox.enqueue(0, static_cast<TaskTypeId>(rng.uniform_int(
                               0, static_cast<Tick>(types) - 1)),
                        deadline);
      }
      const bool running = depth > 0 && rng.uniform01() < 0.5;
      if (running) sandbox.set_running(0, /*run_start=*/0);

      const Tick horizon = deadline + stride * 60;
      // Off-lattice probes included on purpose: step 1 walks every tick.
      expect_probes_match(sandbox, pet, /*now=*/0, horizon, /*step=*/1,
                          "random state");
    }
  }
}

TEST(AppendedView, InvalidatesOnEveryQueueMutation) {
  Rng rng(99);
  const PetMatrix pet = random_pet(rng, 2, /*stride=*/1);
  SystemSandbox sandbox(pet, {0}, 8, /*now=*/0);
  CompletionModel& model = sandbox.model(0);

  // Warm the cache on the empty queue, then mutate step by step; each
  // mutation bumps the revision and must fully refresh the cache.
  expect_probes_match(sandbox, pet, 0, 80, 1, "empty");

  sandbox.enqueue(0, 0, 30);
  auto revision = model.revision();
  expect_probes_match(sandbox, pet, 0, 120, 1, "after enqueue");

  sandbox.enqueue(0, 1, 45);
  EXPECT_NE(model.revision(), revision);
  expect_probes_match(sandbox, pet, 0, 140, 1, "after second enqueue");

  sandbox.set_running(0, /*run_start=*/2);
  expect_probes_match(sandbox, pet, 0, 140, 1, "after start");

  sandbox.drop_queued_task(0, 1);
  expect_probes_match(sandbox, pet, 0, 140, 1, "after drop");
}

TEST(AppendedView, EmptyQueueTracksNow) {
  Rng rng(5);
  const PetMatrix pet = random_pet(rng, 2, /*stride=*/2);
  SystemSandbox sandbox(pet, {0}, 8, /*now=*/0);
  // The idle probe depends on `now` even though no mutation bumps the
  // revision — the cache must not serve stale values across set_now.
  expect_probes_match(sandbox, pet, 0, 60, 1, "now=0");
  sandbox.set_now(7);
  expect_probes_match(sandbox, pet, 7, 80, 1, "now=7");
  sandbox.set_now(8);
  expect_probes_match(sandbox, pet, 8, 80, 1, "now=8");
}

TEST(AppendedView, ViewAgreesWithMaterialisedAppend) {
  // Appending the probed task and reading chance(last) must agree with the
  // view within convolution rounding (the probe-vs-append property the
  // incremental suite checks for chance_if_appended, now for the view).
  Rng rng(123);
  const PetMatrix pet = random_pet(rng, 3, /*stride=*/1);
  for (int round = 0; round < 10; ++round) {
    SystemSandbox sandbox(pet, {0}, 8, /*now=*/0);
    sandbox.enqueue(0, 0, 20 + round);
    sandbox.enqueue(0, 1, 30 + round);
    CompletionModel& model = sandbox.model(0);
    const Tick deadline = 25 + 3 * round;
    const double viewed = model.appended_view(2).mass_before(deadline);
    sandbox.enqueue(0, 2, deadline);
    EXPECT_NEAR(model.chance(2), viewed, 1e-9) << "round " << round;
  }
}

TEST(AppendedView, TailMeanMemoMatchesDirectMean) {
  Rng rng(77);
  const PetMatrix pet = random_pet(rng, 2, /*stride=*/1);
  SystemSandbox sandbox(pet, {0}, 8, /*now=*/3);
  CompletionModel& model = sandbox.model(0);
  EXPECT_DOUBLE_EQ(model.tail_mean(), 3.0);  // empty queue: starts at now

  sandbox.enqueue(0, 0, 40);
  EXPECT_DOUBLE_EQ(model.tail_mean(), model.completion(0).mean());
  // Second read: memo hit, same value.
  EXPECT_DOUBLE_EQ(model.tail_mean(), model.completion(0).mean());

  sandbox.enqueue(0, 1, 60);
  EXPECT_DOUBLE_EQ(model.tail_mean(), model.completion(1).mean());
  sandbox.drop_queued_task(0, 1);
  EXPECT_DOUBLE_EQ(model.tail_mean(), model.completion(0).mean());
}

TEST(AppendedView, RevisionBumpsOnInvalidateNotOnReads) {
  Rng rng(11);
  const PetMatrix pet = random_pet(rng, 2, /*stride=*/1);
  SystemSandbox sandbox(pet, {0}, 8, /*now=*/0);
  CompletionModel& model = sandbox.model(0);
  sandbox.enqueue(0, 0, 50);
  const auto before = model.revision();
  (void)model.chance_if_appended(1, 30);
  (void)model.appended_view(1);
  (void)model.tail_mean();
  (void)model.instantaneous_robustness();
  EXPECT_EQ(model.revision(), before);
  model.invalidate_all();
  EXPECT_NE(model.revision(), before);
}

}  // namespace
}  // namespace taskdrop
