#include "core/completion_model.hpp"

#include <gtest/gtest.h>

#include "core/sandbox.hpp"
#include "prob/convolution.hpp"
#include "test_util.hpp"

namespace taskdrop {
namespace {

using test::pet_of;
using test::pmf_of;

/// 2 task types x 1 machine type:
///   type 0: deterministic 2 ticks
///   type 1: {1: 0.6, 2: 0.4} (Fig. 2's execution PMF)
PetMatrix two_type_pet() {
  return pet_of({{{{2, 1.0}}}, {{{1, 0.6}, {2, 0.4}}}});
}

TEST(CompletionModel, IdleMachineSingleTask) {
  const PetMatrix pet = two_type_pet();
  SystemSandbox sandbox(pet, {0}, 6, /*now=*/10);
  sandbox.enqueue(0, /*type=*/1, /*deadline=*/12);
  CompletionModel& model = sandbox.model(0);
  // Starts at now=10: completion = {11: 0.6, 12: 0.4}; success iff < 12.
  EXPECT_EQ(model.completion(0), pmf_of({{11, 0.6}, {12, 0.4}}));
  EXPECT_NEAR(model.chance(0), 0.6, 1e-12);
}

TEST(CompletionModel, ChainMatchesManualDeadlineConvolution) {
  const PetMatrix pet = two_type_pet();
  SystemSandbox sandbox(pet, {0}, 6, /*now=*/0);
  sandbox.enqueue(0, 1, /*deadline=*/3);   // head
  sandbox.enqueue(0, 1, /*deadline=*/4);   // second
  CompletionModel& model = sandbox.model(0);

  const Pmf c0 = deadline_convolve(Pmf::delta(0), pet.pmf(1, 0), 3);
  const Pmf c1 = deadline_convolve(c0, pet.pmf(1, 0), 4);
  EXPECT_EQ(model.completion(0), c0);
  EXPECT_EQ(model.completion(1), c1);
  EXPECT_NEAR(model.chance(1), c1.mass_before(4), 1e-12);
}

TEST(CompletionModel, RunningTaskIsUnconditionedShift) {
  const PetMatrix pet = two_type_pet();
  SystemSandbox sandbox(pet, {0}, 6, /*now=*/0);
  sandbox.enqueue(0, 1, /*deadline=*/100);
  sandbox.set_running(0, /*run_start=*/5);
  sandbox.set_now(7);
  CompletionModel& model = sandbox.model(0);
  // Paper model: completion = run_start + exec, regardless of `now`.
  EXPECT_EQ(model.completion(0), pmf_of({{6, 0.6}, {7, 0.4}}));
}

TEST(CompletionModel, ConditionedRunningTaskDiscardsElapsedMass) {
  const PetMatrix pet = two_type_pet();
  CompletionModel::Options options;
  options.condition_running = true;
  SystemSandbox sandbox(pet, {0}, 6, /*now=*/0, options);
  sandbox.enqueue(0, 1, /*deadline=*/100);
  sandbox.set_running(0, /*run_start=*/5);
  sandbox.set_now(6);
  CompletionModel& model = sandbox.model(0);
  // Unconditioned would be {6: 0.6, 7: 0.4}; at now=6 the mass at 6 is
  // impossible, so the conditioned PMF is a point mass at 7.
  EXPECT_EQ(model.completion(0), pmf_of({{7, 1.0}}));
}

TEST(CompletionModel, ConditionedRunningFallsBackWhenAllMassElapsed) {
  const PetMatrix pet = two_type_pet();
  CompletionModel::Options options;
  options.condition_running = true;
  SystemSandbox sandbox(pet, {0}, 6, /*now=*/0, options);
  sandbox.enqueue(0, 0, /*deadline=*/100);  // deterministic 2 ticks
  sandbox.set_running(0, /*run_start=*/0);
  sandbox.set_now(50);  // completion "should" have happened at 2
  CompletionModel& model = sandbox.model(0);
  EXPECT_EQ(model.completion(0), Pmf::delta(2));
}

TEST(CompletionModel, PredecessorOfFirstPendingBehindRunning) {
  const PetMatrix pet = two_type_pet();
  SystemSandbox sandbox(pet, {0}, 6, /*now=*/0);
  sandbox.enqueue(0, 0, /*deadline=*/100);
  sandbox.enqueue(0, 1, /*deadline=*/100);
  sandbox.set_running(0, /*run_start=*/0);
  CompletionModel& model = sandbox.model(0);
  EXPECT_EQ(model.predecessor(1), model.completion(0));
}

TEST(CompletionModel, TailAndTailMean) {
  const PetMatrix pet = two_type_pet();
  SystemSandbox sandbox(pet, {0}, 6, /*now=*/25);
  CompletionModel& model = sandbox.model(0);
  // Empty queue: the tail is "machine free now".
  EXPECT_EQ(model.tail(), Pmf::delta(25));
  EXPECT_DOUBLE_EQ(model.tail_mean(), 25.0);

  sandbox.enqueue(0, 1, /*deadline=*/1000);
  EXPECT_EQ(model.tail(), pmf_of({{26, 0.6}, {27, 0.4}}));
  EXPECT_NEAR(model.tail_mean(), 26.4, 1e-12);
}

TEST(CompletionModel, InstantaneousRobustnessIsChanceSum) {
  const PetMatrix pet = two_type_pet();
  SystemSandbox sandbox(pet, {0}, 6, /*now=*/0);
  sandbox.enqueue(0, 1, 2);
  sandbox.enqueue(0, 1, 4);
  sandbox.enqueue(0, 0, 5);
  CompletionModel& model = sandbox.model(0);
  const double expected =
      model.chance(0) + model.chance(1) + model.chance(2);
  EXPECT_NEAR(model.instantaneous_robustness(), expected, 1e-12);
}

TEST(CompletionModel, InvalidationAfterDropRecomputes) {
  const PetMatrix pet = two_type_pet();
  SystemSandbox sandbox(pet, {0}, 6, /*now=*/0);
  sandbox.enqueue(0, 0, /*deadline=*/3);  // head, finishes at 2
  sandbox.enqueue(0, 1, /*deadline=*/4);  // second
  CompletionModel& model = sandbox.model(0);
  const double before = model.chance(1);
  // Drop the head: the second task now starts at 0 instead of 2.
  sandbox.drop_queued_task(0, 0);
  const double after = model.chance(0);
  EXPECT_GT(after, before);
  EXPECT_EQ(model.completion(0), pmf_of({{1, 0.6}, {2, 0.4}}));
}

TEST(CompletionModel, RevisionBumpsOnMutation) {
  const PetMatrix pet = two_type_pet();
  SystemSandbox sandbox(pet, {0}, 6, /*now=*/0);
  CompletionModel& model = sandbox.model(0);
  const auto v0 = model.revision();
  sandbox.enqueue(0, 0, 100);
  const auto v1 = model.revision();
  EXPECT_NE(v0, v1);
  sandbox.enqueue(0, 1, 100);
  sandbox.drop_queued_task(0, 1);
  EXPECT_NE(model.revision(), v1);
}

TEST(CompletionModel, ChanceIfAppendedMatchesMaterialisedAppend) {
  const PetMatrix pet = two_type_pet();
  for (const Tick deadline : {1, 3, 5, 8, 20}) {
    SystemSandbox sandbox(pet, {0}, 6, /*now=*/0);
    sandbox.enqueue(0, 1, 4);
    sandbox.enqueue(0, 0, 6);
    CompletionModel& model = sandbox.model(0);
    const double predicted = model.chance_if_appended(1, deadline);
    sandbox.enqueue(0, 1, deadline);
    EXPECT_NEAR(model.chance(2), predicted, 1e-12) << "deadline " << deadline;
  }
}

TEST(CompletionModel, ChanceIfAppendedOnEmptyQueue) {
  const PetMatrix pet = two_type_pet();
  SystemSandbox sandbox(pet, {0}, 6, /*now=*/10);
  CompletionModel& model = sandbox.model(0);
  // Task starts at 10; exec {1:0.6, 2:0.4}; success iff finish < deadline.
  EXPECT_NEAR(model.chance_if_appended(1, 12), 0.6, 1e-12);
  EXPECT_NEAR(model.chance_if_appended(1, 13), 1.0, 1e-12);
  EXPECT_NEAR(model.chance_if_appended(1, 10), 0.0, 1e-12);
}

TEST(WindowChanceSum, MatchesModelChancesFromPredecessor) {
  const PetMatrix pet = two_type_pet();
  SystemSandbox sandbox(pet, {0}, 6, /*now=*/0);
  sandbox.enqueue(0, 1, 3);
  sandbox.enqueue(0, 0, 5);
  sandbox.enqueue(0, 1, 7);
  CompletionModel& model = sandbox.model(0);
  const Machine& machine = sandbox.machine(0);
  const auto& tasks = *sandbox.view().tasks;

  const double expected = model.chance(0) + model.chance(1) + model.chance(2);
  const double actual =
      window_chance_sum(Pmf::delta(0), machine, tasks, pet, 0, 2);
  EXPECT_NEAR(actual, expected, 1e-12);

  // Sub-window starting mid-queue from the real predecessor.
  const double tail_expected = model.chance(1) + model.chance(2);
  const double tail_actual =
      window_chance_sum(model.completion(0), machine, tasks, pet, 1, 2);
  EXPECT_NEAR(tail_actual, tail_expected, 1e-12);
}

TEST(WindowChanceSum, ClampsLastToQueueTail) {
  const PetMatrix pet = two_type_pet();
  SystemSandbox sandbox(pet, {0}, 6, /*now=*/0);
  sandbox.enqueue(0, 1, 5);
  const Machine& machine = sandbox.machine(0);
  const auto& tasks = *sandbox.view().tasks;
  const double all =
      window_chance_sum(Pmf::delta(0), machine, tasks, pet, 0, 99);
  EXPECT_NEAR(all, sandbox.model(0).chance(0), 1e-12);
  EXPECT_DOUBLE_EQ(
      window_chance_sum(Pmf::delta(0), machine, tasks, pet, 5, 9), 0.0);
}

}  // namespace
}  // namespace taskdrop
