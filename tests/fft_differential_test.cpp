// Differential suite for the radix-2 real-FFT convolution path.
//
// The FFT path (prob/fft.{hpp,cpp}) serves the wide-PMF regime behind the
// fft_min_bins crossover in convolve_into / deadline_convolve_into. Two
// properties are locked here:
//
//  1. Accuracy: FFT convolution agrees with the direct multiply-accumulate
//     reference to 1e-12 per bin across ~200 seeded random pairs, including
//     sizes straddling the crossover boundary and power-of-two edges.
//  2. Dispatch: below the crossover the kernels are BIT-IDENTICAL to the
//     direct path — the figure suites' byte-identity rests on every paper
//     configuration staying on the order-preserving kernels — and the gate
//     requires *both* operands to be wide.
#include "prob/fft.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "prob/convolution.hpp"
#include "util/rng.hpp"

namespace taskdrop {
namespace {

constexpr double kTol = 1e-12;

/// Restores the production crossover whatever a test does to it.
class FftGateGuard {
 public:
  FftGateGuard() : saved_(fft_min_bins()) {}
  ~FftGateGuard() { set_fft_min_bins(saved_); }

 private:
  std::size_t saved_;
};

/// Direct O(n*m) coefficient-product reference, independent of the kernels.
std::vector<double> direct_convolve(const std::vector<double>& a,
                                    const std::vector<double>& b) {
  std::vector<double> out(a.size() + b.size() - 1, 0.0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < b.size(); ++j) out[i + j] += a[i] * b[j];
  }
  return out;
}

std::vector<double> random_probs(Rng& rng, std::size_t bins) {
  std::vector<double> probs(bins);
  double total = 0.0;
  for (double& p : probs) {
    p = rng.uniform01() < 0.15 ? 0.0 : rng.uniform(0.0, 1.0);
    total += p;
  }
  if (total > 0.0) {
    for (double& p : probs) p /= total;
  }
  return probs;
}

Pmf random_wide_pmf(Rng& rng, Tick stride, std::size_t bins) {
  return Pmf(stride * rng.uniform_int(0, 20), stride, random_probs(rng, bins));
}

class FftDifferentialTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FftDifferentialTest, PlanMatchesDirectReference) {
  Rng rng(GetParam() * 0x9E3779B97F4A7C15ull + 3);
  FftPlan plan;
  std::vector<double> out;
  // Reusing one plan across growing and shrinking sizes exercises the
  // twiddle/scratch caching; sizes mix odd, prime-ish and power-of-two
  // next_pow2 edges.
  for (const std::size_t na :
       {std::size_t{1}, std::size_t{7}, std::size_t{129},
        static_cast<std::size_t>(rng.uniform_int(200, 900))}) {
    for (const std::size_t nb :
         {std::size_t{1}, std::size_t{64},
          static_cast<std::size_t>(rng.uniform_int(150, 1100))}) {
      const std::vector<double> a = random_probs(rng, na);
      const std::vector<double> b = random_probs(rng, nb);
      const std::vector<double> expected = direct_convolve(a, b);
      out.assign(na + nb - 1, -1.0);
      plan.convolve(a.data(), na, b.data(), nb, out.data());
      ASSERT_EQ(out.size(), expected.size());
      for (std::size_t i = 0; i < out.size(); ++i) {
        ASSERT_NEAR(out[i], expected[i], kTol)
            << "bin " << i << " of " << na << "x" << nb << ", seed "
            << GetParam();
        ASSERT_GE(out[i], 0.0) << "negative round-off must be clamped";
      }
    }
  }
}

TEST_P(FftDifferentialTest, ForcedFftConvolveIntoMatchesDirect) {
  Rng rng(GetParam() * 0xBF58476D1CE4E5B9ull + 11);
  FftGateGuard guard;
  PmfWorkspace ws;
  const Tick stride = rng.uniform01() < 0.5 ? 1 : 5;
  const auto na = static_cast<std::size_t>(rng.uniform_int(80, 600));
  const auto nb = static_cast<std::size_t>(rng.uniform_int(80, 600));
  const Pmf a = random_wide_pmf(rng, stride, na);
  const Pmf b = random_wide_pmf(rng, stride, nb);

  set_fft_min_bins(0);  // direct reference
  Pmf direct;
  convolve_into(a, b, ws, direct);
  set_fft_min_bins(2);  // force the FFT path
  Pmf viafft;
  convolve_into(a, b, ws, viafft);

  ASSERT_FALSE(viafft.empty());
  ASSERT_EQ(viafft.stride(), direct.stride());
  const Tick lo = std::min(viafft.min_time(), direct.min_time());
  const Tick hi = std::max(viafft.max_time(), direct.max_time());
  for (Tick t = lo; t <= hi; t += stride) {
    ASSERT_NEAR(viafft.prob_at(t), direct.prob_at(t), kTol)
        << "time " << t << ", seed " << GetParam();
  }
}

TEST_P(FftDifferentialTest, ForcedFftDeadlineConvolveMatchesDirect) {
  Rng rng(GetParam() * 0x94D049BB133111EBull + 5);
  FftGateGuard guard;
  PmfWorkspace ws;
  const Tick stride = 1;
  const auto np = static_cast<std::size_t>(rng.uniform_int(100, 500));
  const auto ne = static_cast<std::size_t>(rng.uniform_int(100, 500));
  const Pmf pred = random_wide_pmf(rng, stride, np);
  const Pmf exec = random_wide_pmf(rng, stride, ne);
  // Deadlines in every truncation regime; the mixed one exercises the FFT
  // block coexisting with pass-through accumulation.
  const Tick deadlines[] = {pred.min_time() + 1,
                            (pred.min_time() + pred.max_time()) / 2,
                            pred.max_time() + 1,
                            pred.max_time() + exec.max_time() + 10};
  for (const Tick deadline : deadlines) {
    set_fft_min_bins(0);
    Pmf direct;
    deadline_convolve_into(pred, exec, deadline, ws, direct);
    set_fft_min_bins(2);
    Pmf viafft;
    deadline_convolve_into(pred, exec, deadline, ws, viafft);
    ASSERT_EQ(viafft.empty(), direct.empty()) << "seed " << GetParam();
    if (direct.empty()) continue;
    const Tick lo = std::min(viafft.min_time(), direct.min_time());
    const Tick hi = std::max(viafft.max_time(), direct.max_time());
    for (Tick t = lo; t <= hi; t += stride) {
      ASSERT_NEAR(viafft.prob_at(t), direct.prob_at(t), kTol)
          << "time " << t << " deadline " << deadline << ", seed "
          << GetParam();
    }
  }
}

// 24 seeds x (12 plan pairs + 1 convolve pair + 4 deadline regimes) ~= 200+
// seeded pairs, crossover-boundary cases below on top.
INSTANTIATE_TEST_SUITE_P(SeededPairs, FftDifferentialTest,
                         ::testing::Range<std::uint64_t>(1, 25));

TEST(FftCrossover, GateRequiresBothOperandsWide) {
  FftGateGuard guard;
  set_fft_min_bins(64);
  EXPECT_TRUE(fft_profitable(64, 64));
  EXPECT_TRUE(fft_profitable(1000, 64));
  EXPECT_FALSE(fft_profitable(63, 10000));
  EXPECT_FALSE(fft_profitable(10000, 63));
  EXPECT_FALSE(fft_profitable(1, 1));
  set_fft_min_bins(0);
  EXPECT_FALSE(fft_profitable(100000, 100000)) << "0 disables the path";
}

TEST(FftCrossover, BelowGateIsBitIdenticalToDirect) {
  // The load-bearing dispatch property: at and below the boundary the
  // kernels must run the order-preserving direct path, bit for bit — this
  // is what keeps every figure configuration (narrow execution PMFs)
  // byte-identical across the FFT introduction.
  FftGateGuard guard;
  Rng rng(0xC0FFEEull);
  PmfWorkspace ws;
  for (int round = 0; round < 8; ++round) {
    const auto na = static_cast<std::size_t>(rng.uniform_int(60, 63));
    const auto nb = static_cast<std::size_t>(rng.uniform_int(40, 63));
    const Pmf a = random_wide_pmf(rng, 1, na);
    const Pmf b = random_wide_pmf(rng, 1, nb);
    set_fft_min_bins(0);
    Pmf direct;
    convolve_into(a, b, ws, direct);
    set_fft_min_bins(64);  // gate above both sizes: must dispatch direct
    Pmf gated;
    convolve_into(a, b, ws, gated);
    ASSERT_EQ(gated.size(), direct.size());
    for (std::size_t i = 0; i < gated.size(); ++i) {
      ASSERT_EQ(gated.time_at(i), direct.time_at(i));
      // float-eq-ok: bit-identity dispatch check is exact by design
      ASSERT_EQ(gated.prob_at_index(i), direct.prob_at_index(i))
          << "bin " << i << " round " << round;
    }
  }
}

TEST(FftCrossover, BoundarySizesAgreeAcrossTheGate) {
  // Sizes straddling the gate: (T-1, T-1) direct, (T, T) FFT — both must
  // agree with each other to 1e-12 on a common sub-problem shape, so a
  // decision quantity computed just below and just above the crossover
  // cannot jump by more than round-off.
  FftGateGuard guard;
  Rng rng(0xB0A71E5ull);
  const std::size_t t = 96;
  set_fft_min_bins(t);
  PmfWorkspace ws;
  const Pmf below_a = random_wide_pmf(rng, 1, t - 1);
  const Pmf below_b = random_wide_pmf(rng, 1, t - 1);
  Pmf out_below;
  convolve_into(below_a, below_b, ws, out_below);  // direct dispatch
  set_fft_min_bins(0);
  Pmf ref_below;
  convolve_into(below_a, below_b, ws, ref_below);
  ASSERT_EQ(out_below.size(), ref_below.size());
  for (std::size_t i = 0; i < out_below.size(); ++i) {
    // float-eq-ok: bit-identity dispatch check is exact by design
    ASSERT_EQ(out_below.prob_at_index(i), ref_below.prob_at_index(i));
  }

  set_fft_min_bins(t);
  const Pmf at_a = random_wide_pmf(rng, 1, t);
  const Pmf at_b = random_wide_pmf(rng, 1, t);
  Pmf out_at;
  convolve_into(at_a, at_b, ws, out_at);  // FFT dispatch
  set_fft_min_bins(0);
  Pmf ref_at;
  convolve_into(at_a, at_b, ws, ref_at);
  ASSERT_EQ(out_at.empty(), ref_at.empty());
  const Tick lo = std::min(out_at.min_time(), ref_at.min_time());
  const Tick hi = std::max(out_at.max_time(), ref_at.max_time());
  for (Tick time = lo; time <= hi; ++time) {
    ASSERT_NEAR(out_at.prob_at(time), ref_at.prob_at(time), kTol);
  }
}

TEST(FftCrossover, EqualInputsGiveBitEqualOutputsAcrossPlanHistories) {
  // The FFT result is a pure function of (inputs, transform size): a plan
  // that transformed other sizes first must reproduce a fresh plan's
  // output exactly. Snapshot/restore determinism leans on this — a
  // restored process replays convolutions with a different plan history.
  Rng rng(0xDE7E12ull);
  const std::vector<double> a = random_probs(rng, 700);
  const std::vector<double> b = random_probs(rng, 900);
  FftPlan fresh;
  std::vector<double> out_fresh(a.size() + b.size() - 1, 0.0);
  fresh.convolve(a.data(), a.size(), b.data(), b.size(), out_fresh.data());

  FftPlan warmed;
  const std::vector<double> filler = random_probs(rng, 5000);
  std::vector<double> scratch(2 * filler.size() - 1, 0.0);
  warmed.convolve(filler.data(), filler.size(), filler.data(), filler.size(),
                  scratch.data());
  std::vector<double> out_warmed(a.size() + b.size() - 1, 0.0);
  warmed.convolve(a.data(), a.size(), b.data(), b.size(), out_warmed.data());
  for (std::size_t i = 0; i < out_fresh.size(); ++i) {
    // float-eq-ok: determinism check is exact by design
    ASSERT_EQ(out_fresh[i], out_warmed[i]) << "bin " << i;
  }
}

}  // namespace
}  // namespace taskdrop
