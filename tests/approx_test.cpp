// Approximate-computing extension tests (section VI future work).
#include <gtest/gtest.h>

#include "core/approx_dropper.hpp"
#include "core/sandbox.hpp"
#include "exp/experiment.hpp"
#include "pet/pet_builder.hpp"
#include "sched/registry.hpp"
#include "sim/engine.hpp"
#include "test_util.hpp"
#include "workload/generator.hpp"
#include "workload/scenario.hpp"

namespace taskdrop {
namespace {

using test::pet_of;
using test::pmf_of;

// ---------------------------- scale_time -----------------------------

TEST(ScaleTime, HalvesTimesOnTheLattice) {
  const Pmf pmf = pmf_of({{10, 0.5}, {20, 0.5}}, 5);
  const Pmf scaled = pmf.scale_time(0.5);
  EXPECT_EQ(scaled, pmf_of({{5, 0.5}, {10, 0.5}}, 5));
}

TEST(ScaleTime, MergesCollidingBinsAndClampsToOneStride) {
  const Pmf pmf = pmf_of({{1, 0.3}, {2, 0.3}, {10, 0.4}});
  const Pmf scaled = pmf.scale_time(0.1);
  // 1 -> clamp 1, 2 -> clamp 1, 10 -> 1: everything lands on tick 1.
  EXPECT_EQ(scaled, pmf_of({{1, 1.0}}));
  EXPECT_NEAR(scaled.total_mass(), 1.0, 1e-12);
}

TEST(ScaleTime, PreservesMassForAnyFactor) {
  const Pmf pmf = pmf_of({{10, 0.2}, {15, 0.3}, {40, 0.5}}, 5);
  for (const double factor : {0.25, 0.5, 0.75, 1.0, 2.0}) {
    EXPECT_NEAR(pmf.scale_time(factor).total_mass(), 1.0, 1e-12) << factor;
  }
}

TEST(ScaledPet, ScalesEveryCell) {
  const PetMatrix pet =
      pet_of({{{{10, 1.0}}, {{20, 1.0}}}, {{{40, 1.0}}, {{8, 1.0}}}});
  const PetMatrix half = scaled_pet(pet, 0.5);
  EXPECT_TRUE(half.frozen());
  EXPECT_DOUBLE_EQ(half.mean_execution(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(half.mean_execution(0, 1), 10.0);
  EXPECT_DOUBLE_EQ(half.mean_execution(1, 0), 20.0);
  EXPECT_DOUBLE_EQ(half.mean_execution(1, 1), 4.0);
}

// --------------------------- ApproxDropper ---------------------------

/// big {10}, small {1}; the approximate PET halves times (big~ = {5}).
struct ApproxRig {
  PetMatrix pet = pet_of({{{{10, 1.0}}}, {{{1, 1.0}}}});
  PetMatrix approx = scaled_pet(pet, 0.5);

  std::unique_ptr<SystemSandbox> sandbox(int capacity = 6) {
    CompletionModel::Options options;
    options.approx_pet = &approx;
    return std::make_unique<SystemSandbox>(pet, std::vector<MachineTypeId>{0},
                                           capacity, 0, options);
  }
};

TEST(ApproxDropper, DowngradesWhenApproximateVersionSucceeds) {
  ApproxRig rig;
  auto sandbox = rig.sandbox();
  // Full big task (10 ticks) with deadline 8: hopeless at full quality,
  // certain at approximate quality (5 ticks). No successors, so dropping is
  // off the table (last task) — downgrade is the only sensible move:
  // keep utility = 0, downgrade utility = 0.5 * 1.0.
  const TaskId task = sandbox->enqueue(0, 0, 8);
  ApproxDropper dropper;
  dropper.run(sandbox->view(), *sandbox);
  ASSERT_EQ(sandbox->downgraded.size(), 1u);
  EXPECT_EQ(sandbox->downgraded.front(), task);
  EXPECT_TRUE(sandbox->dropped.empty());
  EXPECT_TRUE(sandbox->task(task).approximate);
  EXPECT_NEAR(sandbox->model(0).chance(0), 1.0, 1e-12);
}

TEST(ApproxDropper, PrefersDropWhenDowngradeCannotSave) {
  ApproxRig rig;
  auto sandbox = rig.sandbox();
  // Big head with deadline 3: even the approximate version (5 ticks) misses.
  // Successors gain everything from a drop.
  const TaskId big = sandbox->enqueue(0, 0, 3);
  sandbox->enqueue(0, 1, 4);
  sandbox->enqueue(0, 1, 5);
  ApproxDropper dropper;
  dropper.run(sandbox->view(), *sandbox);
  ASSERT_EQ(sandbox->dropped.size(), 1u);
  EXPECT_EQ(sandbox->dropped.front(), big);
  EXPECT_TRUE(sandbox->downgraded.empty());
}

TEST(ApproxDropper, KeepsCertainTasksAtFullQuality) {
  ApproxRig rig;
  auto sandbox = rig.sandbox();
  sandbox->enqueue(0, 1, 100);
  sandbox->enqueue(0, 1, 101);
  ApproxDropper dropper;
  dropper.run(sandbox->view(), *sandbox);
  EXPECT_TRUE(sandbox->dropped.empty());
  // Downgrading a certain task would shrink its utility from 1.0 to 0.5.
  EXPECT_TRUE(sandbox->downgraded.empty());
}

TEST(ApproxDropper, WithoutApproxPetBehavesLikeHeuristic) {
  const PetMatrix pet = pet_of({{{{10, 1.0}}}, {{{1, 1.0}}}});
  SystemSandbox sandbox(pet, {0}, 6);  // no approx_pet in options
  sandbox.enqueue(0, 0, 5);
  sandbox.enqueue(0, 1, 3);
  sandbox.enqueue(0, 1, 4);
  ApproxDropper dropper;
  dropper.run(sandbox.view(), sandbox);
  EXPECT_EQ(sandbox.dropped.size(), 1u);
  EXPECT_TRUE(sandbox.downgraded.empty());
}

TEST(ApproxDropper, DowngradeIsIdempotentPerTask) {
  ApproxRig rig;
  auto sandbox = rig.sandbox();
  sandbox->enqueue(0, 0, 8);
  ApproxDropper dropper;
  dropper.run(sandbox->view(), *sandbox);
  dropper.run(sandbox->view(), *sandbox);
  EXPECT_EQ(sandbox->downgraded.size(), 1u);  // not downgraded twice
}

// ----------------------- engine integration --------------------------

TEST(ApproxEngine, ApproximateTasksRunWithScaledDurations) {
  const PetMatrix pet = pet_of({{{{10, 1.0}}}, {{{1, 1.0}}}});
  // Head task arrives first and runs; the big task behind it would miss its
  // deadline at full quality but fits at half duration.
  const Trace trace = {{1, 0, 100}, {0, 1, 9}};
  auto mapper = make_mapper("FCFS");
  auto dropper = make_dropper(DropperConfig::approximate());
  EngineConfig config;
  config.approx.enabled = true;
  config.approx.time_factor = 0.5;
  Engine engine(pet, {0}, *mapper, *dropper, config);
  const SimResult result = engine.run(trace);
  EXPECT_EQ(result.tasks[1].state, TaskState::CompletedOnTime);
  EXPECT_TRUE(result.tasks[1].approximate);
  EXPECT_EQ(result.tasks[1].actual_execution, 5);
  EXPECT_EQ(result.counts().approx_on_time, 1);
}

TEST(ApproxEngine, UtilityWeighsApproxCompletions) {
  const PetMatrix pet = pet_of({{{{10, 1.0}}}, {{{1, 1.0}}}});
  const Trace trace = {{1, 0, 100}, {0, 1, 9}};
  auto mapper = make_mapper("FCFS");
  auto dropper = make_dropper(DropperConfig::approximate());
  EngineConfig config;
  config.approx.enabled = true;
  Engine engine(pet, {0}, *mapper, *dropper, config);
  const SimResult result = engine.run(trace);
  // Both tasks on time; one approximate at weight 0.5 -> utility 75 %.
  EXPECT_NEAR(result.robustness_pct(0, 0), 100.0, 1e-12);
  EXPECT_NEAR(result.utility_pct(0.5, 0, 0), 75.0, 1e-12);
  EXPECT_NEAR(result.utility_pct(1.0, 0, 0), 100.0, 1e-12);
}

TEST(ApproxExperiment, UtilityAtLeastMatchesDropOnlyUnderOversubscription) {
  ExperimentConfig config;
  config.scenario = ScenarioKind::SpecHC;
  config.mapper = "PAM";
  config.workload.n_tasks = 600;
  config.workload.oversubscription = 3.0;
  config.trials = 3;
  config.seed = 21;

  config.dropper = DropperConfig::heuristic();
  const ExperimentResult drop_only = run_experiment(config);
  config.dropper = DropperConfig::approximate();
  const ExperimentResult approx = run_experiment(config);

  // Downgrading converts would-be drops into half-credit completions, so
  // robustness (on-time %) should not fall apart and typically rises.
  EXPECT_GT(approx.robustness.mean + 5.0, drop_only.robustness.mean);
  // And some tasks actually ran approximately.
  long long approx_completions = 0;
  for (const TrialMetrics& trial : approx.trials) {
    approx_completions += trial.approx_on_time;
  }
  EXPECT_GT(approx_completions, 0);
}

}  // namespace
}  // namespace taskdrop
