// Property suite locking down the incremental completion-chain maintenance.
//
// CompletionModel keeps per-slot completion PMFs (plus cumulative-mass
// views) and re-convolves only from the first dirty slot after a mutation.
// These tests drive seeded random sequences of the engine's structural
// mutations — append, drop, start, complete, time advance — against one
// model that receives exactly the engine's minimal invalidation hints, and
// require its chain to be *bitwise equal* to a from-scratch rebuild at
// every step. Invariants of the underlying stochastic model (mass
// conservation, Eq. 2 bounds, append-probe consistency, deadline
// monotonicity) ride along.
#include "core/completion_model.hpp"

#include <gtest/gtest.h>

#include <deque>
#include <tuple>
#include <vector>

#include "pet/pet_builder.hpp"
#include "prob/convolution.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace taskdrop {
namespace {

constexpr int kTaskTypes = 3;
constexpr Tick kStride = 5;

PetMatrix make_pet(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> means(
      kTaskTypes, std::vector<double>(/*machine types=*/1));
  for (auto& row : means) row[0] = rng.uniform(40.0, 160.0);
  PetBuildOptions options;
  options.bin_width = kStride;
  options.samples_per_cell = 200;
  return build_pet_from_means(means, rng, options);
}

/// Harness owning the queue state shared by an incrementally-invalidated
/// model and a freshly-rebuilt one.
struct ChainHarness {
  explicit ChainHarness(std::uint64_t seed)
      : pet(make_pet(seed)), machine(0, 0, /*capacity=*/64) {
    tasks.reserve(256);
  }

  /// A model bound to the current state with nothing cached: queries
  /// recompute the whole chain from scratch.
  CompletionModel fresh_model(Tick now,
                              CompletionModel::Options options = {}) {
    CompletionModel model(&pet, &machine, &tasks, options);
    model.set_now(now);
    return model;
  }

  TaskId add_task(TaskTypeId type, Tick deadline) {
    Task task;
    task.id = static_cast<TaskId>(tasks.size());
    task.type = type;
    task.deadline = deadline;
    task.state = TaskState::Queued;
    tasks.push_back(task);
    return task.id;
  }

  PetMatrix pet;
  Machine machine;
  std::vector<Task> tasks;
};

/// Bitwise chain comparison: every slot's completion PMF and cached chance.
void expect_chain_bitwise_equal(CompletionModel& incremental,
                                CompletionModel& rebuilt,
                                const Machine& machine, const char* after) {
  for (std::size_t pos = 0; pos < machine.queue.size(); ++pos) {
    ASSERT_TRUE(incremental.completion(pos) == rebuilt.completion(pos))
        << "completion PMF diverged at pos " << pos << " after " << after;
    ASSERT_EQ(incremental.chance(pos), rebuilt.chance(pos))
        << "chance diverged at pos " << pos << " after " << after;
  }
}

class CompletionIncrementalTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CompletionIncrementalTest, ChainMatchesFromScratchRebuild) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 0x2545F4914F6CDD1Dull + 3);
  ChainHarness h(seed);
  const double mean = h.pet.mean_overall();

  Tick now = 0;
  CompletionModel incremental(&h.pet, &h.machine, &h.tasks, {});
  incremental.set_now(now);

  for (int step = 0; step < 60; ++step) {
    const auto op = rng.uniform_int(0, 9);
    const std::size_t q = h.machine.queue.size();
    const char* what = "nothing";
    if (op <= 3 || q == 0) {
      // Append one task: the engine invalidates from the new tail slot.
      const auto type = static_cast<TaskTypeId>(rng.uniform_int(0, kTaskTypes - 1));
      const Tick deadline =
          now + static_cast<Tick>(mean * rng.uniform(0.5, 6.0));
      h.machine.enqueue(h.add_task(type, deadline));
      incremental.invalidate_from(h.machine.queue.size() - 1);
      what = "append";
    } else if (op <= 6 && h.machine.pending_count() > 0) {
      // Drop a random pending task: invalidate from its position.
      const std::size_t pos = static_cast<std::size_t>(rng.uniform_int(
          static_cast<std::int64_t>(h.machine.first_pending_pos()),
          static_cast<std::int64_t>(q - 1)));
      h.machine.remove_at(pos);
      incremental.invalidate_from(pos);
      what = "drop";
    } else if (op == 7 && h.machine.running) {
      // Complete the running task: pop the front; every slot shifts.
      h.machine.queue.pop_front();
      h.machine.running = false;
      incremental.invalidate_all();
      what = "complete";
    } else {
      // Advance simulated time (the idle-machine base moves with `now`).
      now += kStride * rng.uniform_int(1, 8);
      incremental.set_now(now);
      what = "advance";
    }
    // Engine invariant (start_next runs at the end of every mapping
    // event): an up machine never sits idle with a non-empty queue. This
    // is what licenses set_now's no-invalidation fast path — only the
    // chain of a *running* machine survives a time advance, and that
    // chain is rooted at run_start, not now.
    if (!h.machine.running && !h.machine.queue.empty()) {
      h.machine.running = true;
      h.machine.run_start = now;
      incremental.invalidate_all();
    }

    CompletionModel rebuilt = h.fresh_model(now);
    expect_chain_bitwise_equal(incremental, rebuilt, h.machine, what);

    // Model invariants at every step: each slot's completion PMF carries
    // (sub-)unit mass, its chance respects Eq. 2's bounds, and the cached
    // cumulative view answers exactly like the PMF it summarises.
    for (std::size_t pos = 0; pos < h.machine.queue.size(); ++pos) {
      const Pmf& completion = incremental.completion(pos);
      const double mass = completion.total_mass();
      ASSERT_LE(mass, 1.0 + 1e-9);
      ASSERT_GE(mass, 1.0 - 1e-9);  // chains of proper PMFs stay proper
      ASSERT_GE(incremental.chance(pos), 0.0);
      ASSERT_LE(incremental.chance(pos), 1.0 + 1e-12);
      const PmfCdf& cdf = incremental.completion_cdf(pos);
      for (const Tick t : {completion.min_time() - 1, completion.min_time(),
                           (completion.min_time() + completion.max_time()) / 2,
                           completion.max_time() + 1}) {
        ASSERT_EQ(cdf.mass_before(t), completion.mass_before(t))
            << "cdf view diverged at horizon " << t << ", pos " << pos;
      }
    }
  }
}

TEST_P(CompletionIncrementalTest, ChanceIfAppendedMatchesAppendThenChance) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 0x9E3779B97F4A7C15ull + 11);
  ChainHarness h(seed);
  const double mean = h.pet.mean_overall();
  CompletionModel model(&h.pet, &h.machine, &h.tasks, {});
  model.set_now(100);

  for (int depth = 0; depth < 10; ++depth) {
    const auto type = static_cast<TaskTypeId>(rng.uniform_int(0, kTaskTypes - 1));
    const Tick deadline =
        100 + static_cast<Tick>(mean * rng.uniform(0.5, 8.0));
    // Probe first (no materialised convolution) ...
    const double probe = model.chance_if_appended(type, deadline);
    // ... then actually append and compare against the chain's Eq. 2.
    h.machine.enqueue(h.add_task(type, deadline));
    model.invalidate_from(h.machine.queue.size() - 1);
    // The probe folds the *untrimmed* tail against the execution CDF while
    // the materialised chain sheds sub-epsilon bins at every link, so the
    // two agree to the library's proper-mass tolerance (1e-9), not to the
    // single-kernel 1e-12 bound.
    const double actual = model.chance(h.machine.queue.size() - 1);
    ASSERT_NEAR(probe, actual, 1e-9)
        << "depth " << depth << ", seed " << seed;
  }
}

TEST_P(CompletionIncrementalTest, ChanceMonotoneUnderDeadlineTightening) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 0xBF58476D1CE4E5B9ull + 5);
  ChainHarness h(seed);
  const Pmf& exec = h.pet.pmf(0, 0);

  // Build a random predecessor chain, then sweep the last link's deadline:
  // the chance of success (Eq. 2 of the Eq. 1 result) must be
  // non-decreasing as the deadline loosens, and the completion mass below
  // any fixed horizon must be non-increasing as the deadline tightens.
  Pmf chain = Pmf::delta(kStride * rng.uniform_int(0, 10));
  for (int link = 0; link < 3; ++link) {
    const Tick d = chain.min_time() +
                   kStride * rng.uniform_int(1, 40);
    chain = deadline_convolve(chain, exec, d);
  }
  double prev = -1.0;
  for (Tick d = chain.min_time() - kStride;
       d <= chain.max_time() + exec.max_time() + kStride; d += kStride) {
    const double chance =
        chance_of_success(deadline_convolve(chain, exec, d), d);
    ASSERT_GE(chance, prev - 1e-12) << "deadline " << d << ", seed " << seed;
    prev = chance;
  }
}

INSTANTIATE_TEST_SUITE_P(SeededSequences, CompletionIncrementalTest,
                         ::testing::Range<std::uint64_t>(1, 13));

/// Chain-keeping lockdown for the conditioned and failure paths.
///
/// Drives random start / complete / fail / drop / advance scripts with
/// *production* invalidation hints — notify_head_started on starts, set_now
/// (with its conditioned keep) on advances — against two witnesses at every
/// step: an identically-driven paranoid_rebuild model (every keep fast path
/// disabled, i.e. the pre-refactor conservative invalidation) and a
/// from-scratch rebuild. All three chains must be bitwise equal. Failures
/// are modelled as the scheduler mutates state: the running task is killed
/// and the queue sits idle across a time gap until a later start — exactly
/// the regime whose blanket invalidate the keep replaces.
class ChainKeepTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, bool>> {};

TEST_P(ChainKeepTest, KeepPathsMatchParanoidAndRebuild) {
  const std::uint64_t seed = std::get<0>(GetParam());
  const bool conditioned = std::get<1>(GetParam());
  Rng rng(seed * 0xD1B54A32D192ED03ull + (conditioned ? 17 : 2));
  ChainHarness h(seed);
  const double mean = h.pet.mean_overall();

  CompletionModel::Options keep_options;
  keep_options.condition_running = conditioned;
  CompletionModel::Options paranoid_options = keep_options;
  paranoid_options.paranoid_rebuild = true;

  Tick now = 0;
  CompletionModel kept(&h.pet, &h.machine, &h.tasks, keep_options);
  CompletionModel paranoid(&h.pet, &h.machine, &h.tasks, paranoid_options);
  kept.set_now(now);
  paranoid.set_now(now);

  for (int step = 0; step < 80; ++step) {
    const auto op = rng.uniform_int(0, 9);
    const char* what = "advance";
    if ((op <= 2 && h.machine.queue.size() < 48) ||
        h.machine.queue.empty()) {
      const auto type =
          static_cast<TaskTypeId>(rng.uniform_int(0, kTaskTypes - 1));
      const Tick deadline =
          now + static_cast<Tick>(mean * rng.uniform(0.5, 6.0));
      h.machine.enqueue(h.add_task(type, deadline));
      kept.invalidate_from(h.machine.queue.size() - 1);
      paranoid.invalidate_from(h.machine.queue.size() - 1);
      what = "append";
    } else if (op == 3 && !h.machine.running) {
      // Start the head "now" — the keep-eligible event. A late head is
      // reactively dropped instead, mirroring start_pass.
      const Task& head =
          h.tasks[static_cast<std::size_t>(h.machine.queue.front())];
      if (now < head.deadline) {
        h.machine.running = true;
        h.machine.run_start = now;
        kept.notify_head_started(head.deadline);
        paranoid.notify_head_started(head.deadline);
        what = "start";
      } else {
        h.machine.queue.pop_front();
        kept.invalidate_all();
        paranoid.invalidate_all();
        what = "late-head drop";
      }
    } else if (op == 4 && h.machine.running) {
      h.machine.queue.pop_front();
      h.machine.running = false;
      kept.invalidate_all();
      paranoid.invalidate_all();
      what = "complete";
    } else if (op == 5 && h.machine.running) {
      // Machine failure: the running task is lost; the queue then sits
      // idle across whatever time gap follows (no auto-restart).
      h.machine.queue.pop_front();
      h.machine.running = false;
      kept.invalidate_all();
      paranoid.invalidate_all();
      what = "fail";
    } else if (op <= 7 && h.machine.pending_count() > 0) {
      const std::size_t pos = static_cast<std::size_t>(rng.uniform_int(
          static_cast<std::int64_t>(h.machine.first_pending_pos()),
          static_cast<std::int64_t>(h.machine.queue.size() - 1)));
      h.machine.remove_at(pos);
      kept.invalidate_from(pos);
      paranoid.invalidate_from(pos);
      what = "drop";
    } else {
      // Mix short advances (below the conditioned slot's first kept bin —
      // the keep regime) with long ones (crossing into the running task's
      // completion support — the rebuild regime).
      const Tick delta = rng.uniform01() < 0.6
                             ? kStride * rng.uniform_int(1, 6)
                             : kStride * rng.uniform_int(8, 40);
      now += delta;
      kept.set_now(now);
      paranoid.set_now(now);
    }

    CompletionModel rebuilt = h.fresh_model(now, keep_options);
    expect_chain_bitwise_equal(kept, paranoid, h.machine, what);
    expect_chain_bitwise_equal(kept, rebuilt, h.machine, what);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeededScripts, ChainKeepTest,
    ::testing::Combine(::testing::Range<std::uint64_t>(1, 11),
                       ::testing::Bool()));

}  // namespace
}  // namespace taskdrop
