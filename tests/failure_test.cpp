// Failure-injection extension tests (section VI future work: resource
// failure as a compound uncertainty source).
#include <gtest/gtest.h>

#include "core/null_dropper.hpp"
#include "core/proactive_heuristic_dropper.hpp"
#include "sched/registry.hpp"
#include "sim/engine.hpp"
#include "test_util.hpp"
#include "workload/generator.hpp"
#include "workload/scenario.hpp"

namespace taskdrop {
namespace {

using test::pet_of;

SimResult run_with_failures(double mtbf, double mttr, std::uint64_t seed,
                            int n_tasks = 300, bool paranoid = false,
                            bool conditioned = false) {
  const Scenario scenario = make_scenario(ScenarioKind::SpecHC, seed);
  WorkloadConfig workload;
  workload.n_tasks = n_tasks;
  workload.oversubscription = 2.0;
  workload.seed = seed;
  const Trace trace =
      generate_trace(scenario.pet, scenario.machine_count(), workload);
  auto mapper = make_mapper("PAM");
  ProactiveHeuristicDropper dropper;
  EngineConfig config;
  config.exec_seed = seed;
  config.failures.enabled = mtbf > 0.0;
  config.failures.mean_time_between_failures = mtbf;
  config.failures.mean_time_to_repair = mttr;
  config.failures.seed = seed ^ 0xF;
  config.paranoid_invalidate = paranoid;
  config.condition_running = conditioned;
  Engine engine(scenario.pet, scenario.profile.machine_types, *mapper, dropper,
                config);
  return engine.run(trace);
}

/// Full-result bitwise comparison: every per-task outcome and every
/// machine's billed time must match exactly.
void expect_results_identical(const SimResult& a, const SimResult& b,
                              const char* what) {
  ASSERT_EQ(a.tasks.size(), b.tasks.size()) << what;
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    ASSERT_EQ(a.tasks[i].state, b.tasks[i].state) << what << " task " << i;
    ASSERT_EQ(a.tasks[i].machine, b.tasks[i].machine) << what << " task " << i;
    ASSERT_EQ(a.tasks[i].start_time, b.tasks[i].start_time)
        << what << " task " << i;
    ASSERT_EQ(a.tasks[i].finish_time, b.tasks[i].finish_time)
        << what << " task " << i;
    ASSERT_EQ(a.tasks[i].drop_time, b.tasks[i].drop_time)
        << what << " task " << i;
  }
  ASSERT_EQ(a.busy_ticks, b.busy_ticks) << what;
}

TEST(FailureInjection, SimulationDrainsAndConservesTasks) {
  const SimResult result = run_with_failures(5000.0, 1000.0, 11);
  EXPECT_EQ(result.counts().total(), 300);
  for (const Task& task : result.tasks) {
    EXPECT_TRUE(is_terminal(task.state));
  }
}

TEST(FailureInjection, FrequentFailuresLoseTasksAndRobustness) {
  const SimResult healthy = run_with_failures(0.0, 0.0, 12);
  const SimResult flaky = run_with_failures(4000.0, 2000.0, 12);
  EXPECT_EQ(healthy.counts().lost_to_failure, 0);
  EXPECT_GT(flaky.counts().lost_to_failure, 0);
  EXPECT_LT(flaky.robustness_pct(0, 0), healthy.robustness_pct(0, 0));
}

TEST(FailureInjection, LostTasksWereRunningWhenKilled) {
  const SimResult result = run_with_failures(4000.0, 2000.0, 13);
  for (const Task& task : result.tasks) {
    if (task.state == TaskState::LostToFailure) {
      EXPECT_NE(task.start_time, kNeverTick);  // it had started
      EXPECT_GE(task.drop_time, task.start_time);
      EXPECT_GE(task.machine, 0);
    }
  }
}

TEST(FailureInjection, PartialExecutionIsBilled) {
  // A deterministic 10-tick task killed mid-run must contribute the elapsed
  // portion to busy_ticks, not the full duration.
  const PetMatrix pet = pet_of({{{{10, 1.0}}}});
  const Trace trace = {{0, 0, 1000}};
  auto mapper = make_mapper("FCFS");
  NullDropper dropper;
  EngineConfig config;
  config.failures.enabled = true;
  // Mean up-time 4 ticks: the machine almost surely fails before tick 10.
  config.failures.mean_time_between_failures = 4.0;
  config.failures.mean_time_to_repair = 5.0;
  config.failures.seed = 3;
  Engine engine(pet, {0}, *mapper, dropper, config);
  const SimResult result = engine.run(trace);
  if (result.tasks[0].state == TaskState::LostToFailure) {
    EXPECT_GT(result.busy_ticks[0], 0);
    EXPECT_LT(result.busy_ticks[0], 10);
  } else {
    // The failure happened to land after completion; then billing is full.
    EXPECT_EQ(result.busy_ticks[0], 10);
  }
}

TEST(FailureInjection, DownMachineAcceptsNoAssignments) {
  // One machine that fails almost immediately and repairs slowly, plus a
  // healthy one: all completed tasks must have run on a machine while it
  // was up (machine 0 completes nothing before its first recovery window).
  const SimResult result = run_with_failures(500.0, 50000.0, 14, 100);
  // Sanity: the run drains despite machines spending most time down.
  EXPECT_EQ(result.counts().total(), 100);
}

TEST(FailureInjection, DeterministicGivenSeeds) {
  const SimResult a = run_with_failures(4000.0, 2000.0, 15);
  const SimResult b = run_with_failures(4000.0, 2000.0, 15);
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    EXPECT_EQ(a.tasks[i].state, b.tasks[i].state);
    EXPECT_EQ(a.tasks[i].finish_time, b.tasks[i].finish_time);
  }
}

TEST(FailureInjection, ProactiveDroppingStillHelpsUnderFailures) {
  const Scenario scenario = make_scenario(ScenarioKind::SpecHC, 16);
  WorkloadConfig workload;
  workload.n_tasks = 600;
  workload.oversubscription = 3.0;
  workload.seed = 16;
  const Trace trace =
      generate_trace(scenario.pet, scenario.machine_count(), workload);

  auto run_one = [&](bool proactive) {
    auto mapper = make_mapper("PAM");
    auto dropper = make_dropper(proactive ? DropperConfig::heuristic()
                                          : DropperConfig::reactive_only());
    EngineConfig config;
    config.exec_seed = 16;
    config.failures.enabled = true;
    config.failures.mean_time_between_failures = 20000.0;
    config.failures.mean_time_to_repair = 2000.0;
    config.failures.seed = 77;
    Engine engine(scenario.pet, scenario.profile.machine_types, *mapper,
                  *dropper, config);
    return engine.run(trace).robustness_pct();
  };
  EXPECT_GT(run_one(true), run_one(false));
}

TEST(FailureInjection, ChainKeepDecisionsBitIdenticalToParanoidInvalidate) {
  // The chain-keep fast paths (notify_head_started on starts under
  // volatile_machines, the conditioned set_now keep) are pure cache
  // optimisations: against the paranoid invalidate-and-rebuild scheduler
  // they must produce the same SimResult bit for bit, failures included.
  for (const bool conditioned : {false, true}) {
    const char* what = conditioned ? "conditioned" : "unconditioned";
    const SimResult keep =
        run_with_failures(4000.0, 2000.0, 21, 300, /*paranoid=*/false,
                          conditioned);
    const SimResult paranoid =
        run_with_failures(4000.0, 2000.0, 21, 300, /*paranoid=*/true,
                          conditioned);
    expect_results_identical(keep, paranoid, what);
  }
}

TEST(FailureInjection, VolatileFlagAloneKeepsDecisionsIdentical) {
  // Satellite regression for the old blanket invalidate at task_started:
  // a fleet *declared* volatile (failures enabled) whose machines happen to
  // stay up the whole run must decide exactly like the paranoid rebuild —
  // the keep is exercised on every start, the failure path never fires.
  const double kQuietMtbf = 1e12;
  const SimResult keep =
      run_with_failures(kQuietMtbf, 1000.0, 22, 250, /*paranoid=*/false);
  const SimResult paranoid =
      run_with_failures(kQuietMtbf, 1000.0, 22, 250, /*paranoid=*/true);
  EXPECT_EQ(keep.counts().lost_to_failure, 0);
  expect_results_identical(keep, paranoid, "volatile-only");
}

TEST(FailureInjection, RecoveryRestartsTheQueue) {
  // Machine fails while running, recovers, and still finishes later work:
  // some tasks must complete even with failures on a single machine.
  const PetMatrix pet = pet_of({{{{5, 1.0}}}});
  Trace trace;
  for (int i = 0; i < 20; ++i) {
    trace.push_back(TaskSpec{0, i * 10, i * 10 + 500});
  }
  auto mapper = make_mapper("FCFS");
  NullDropper dropper;
  EngineConfig config;
  config.failures.enabled = true;
  config.failures.mean_time_between_failures = 30.0;
  config.failures.mean_time_to_repair = 10.0;
  config.failures.seed = 9;
  Engine engine(pet, {0}, *mapper, dropper, config);
  const SimResult result = engine.run(trace);
  EXPECT_EQ(result.counts().total(), 20);
  EXPECT_GT(result.counts().completed_on_time, 0);
  EXPECT_GT(result.counts().lost_to_failure, 0);
}

}  // namespace
}  // namespace taskdrop
