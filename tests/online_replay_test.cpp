#include "online/replay.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cost/cost_model.hpp"
#include "exp/experiment.hpp"
#include "online/online_scheduler.hpp"
#include "sched/registry.hpp"
#include "workload/scenario.hpp"

namespace taskdrop {
namespace {

/// Differential replay: record one engine-driven trial's environment trace,
/// feed it back through a freshly constructed OnlineScheduler via the
/// wall-clock callback API, and require the decision stream and every
/// per-task outcome to be bit-identical. This is the lockdown proving the
/// engine is just one driver of the same decision kernels.
struct ReplayCase {
  std::string name;
  ExperimentConfig config;
};

ExperimentConfig paper_config(ScenarioKind scenario, const std::string& mapper,
                              DropperConfig dropper, int n_tasks,
                              double oversubscription, std::uint64_t seed) {
  ExperimentConfig config;
  config.scenario = scenario;
  config.mapper = mapper;
  config.dropper = dropper;
  config.workload.n_tasks = n_tasks;
  config.workload.oversubscription = oversubscription;
  config.seed = seed;
  return config;
}

std::vector<ReplayCase> replay_cases() {
  std::vector<ReplayCase> cases;
  cases.push_back({"spec_hc_pam_heuristic",
                   paper_config(ScenarioKind::SpecHC, "PAM",
                                DropperConfig::heuristic(), 600, 3.0, 11)});
  cases.push_back({"video_mm_threshold",
                   paper_config(ScenarioKind::Video, "MM",
                                DropperConfig::threshold(), 500, 2.5, 12)});
  {
    // Deferring mapper: PAMD leaves unmapped tasks in the batch queue, so
    // the replay exercises ExpireUnmapped decisions and Advance events
    // (drain-time mapping wakeups).
    ReplayCase c{"spec_hc_pamd_deferring",
                 paper_config(ScenarioKind::SpecHC, "PAMD",
                              DropperConfig::heuristic(), 500, 4.0, 13)};
    cases.push_back(c);
  }
  {
    // Failure injection: machine_down/machine_up callbacks, LostToFailure
    // decisions, stale completions replayed as Advance events.
    ReplayCase c{"spec_hc_failures",
                 paper_config(ScenarioKind::SpecHC, "PAM",
                              DropperConfig::heuristic(), 500, 3.0, 14)};
    c.config.failures.enabled = true;
    c.config.failures.mean_time_between_failures = 4000.0;
    c.config.failures.mean_time_to_repair = 800.0;
    cases.push_back(c);
  }
  {
    // OnDeadlineMiss engagement: the dropper-invocation gating depends on
    // deadline_miss_pending_ crossing the callback boundary correctly.
    ReplayCase c{"spec_hc_on_miss",
                 paper_config(ScenarioKind::SpecHC, "PAM",
                              DropperConfig::heuristic(), 500, 3.0, 15)};
    c.config.engagement = DropperEngagement::OnDeadlineMiss;
    cases.push_back(c);
  }
  {
    // Approximate-computing extension: Downgrade decisions plus the
    // time-scaled PET on both the decision and the sampling side.
    ReplayCase c{"video_approx",
                 paper_config(ScenarioKind::Video, "PAM",
                              DropperConfig::approximate(), 400, 3.0, 16)};
    c.config.approx.enabled = true;
    cases.push_back(c);
  }
  {
    // Conditioned-running ablation: chain rebuilds on every start.
    ReplayCase c{"spec_hc_conditioned",
                 paper_config(ScenarioKind::SpecHC, "MSD",
                              DropperConfig::optimal(), 300, 3.0, 17)};
    c.config.condition_running = true;
    cases.push_back(c);
  }
  return cases;
}

/// Mirrors run_trial's engine setup for the online side of the diff.
OnlineConfig online_config_of(const ExperimentConfig& config) {
  OnlineConfig online;
  online.queue_capacity = config.queue_capacity;
  online.engagement = config.engagement;
  online.condition_running = config.condition_running;
  online.volatile_machines = config.failures.enabled;
  online.approx = config.approx;
  if (config.dropper.kind == DropperConfig::Kind::Approx) {
    online.approx.enabled = true;
  }
  return online;
}

TEST(OnlineReplay, ReproducesEngineDecisionsBitIdentically) {
  for (const ReplayCase& test_case : replay_cases()) {
    SCOPED_TRACE(test_case.name);
    const Scenario scenario = build_scenario(test_case.config);
    const CostModel cost_model(scenario.profile.cost_per_hour);

    ReplayLog log;
    run_trial(test_case.config, scenario, cost_model, 0, &log);
    ASSERT_FALSE(log.events.empty());
    ASSERT_FALSE(log.decisions.empty());

    auto mapper = make_mapper(test_case.config.mapper,
                              test_case.config.candidate_window);
    auto dropper = make_dropper(test_case.config.dropper);
    OnlineScheduler scheduler(scenario.pet, scenario.profile.machine_types,
                              *mapper, *dropper,
                              online_config_of(test_case.config));
    const std::vector<Decision> replayed = replay_decisions(scheduler, log);

    ASSERT_EQ(replayed.size(), log.decisions.size());
    for (std::size_t i = 0; i < replayed.size(); ++i) {
      ASSERT_EQ(replayed[i], log.decisions[i])
          << "decision " << i << ": engine {" << log.decisions[i]
          << "} vs replay {" << replayed[i] << "}";
    }
  }
}

TEST(OnlineReplay, ReproducesPerTaskOutcomesAndMetrics) {
  for (const ReplayCase& test_case : replay_cases()) {
    SCOPED_TRACE(test_case.name);
    const Scenario scenario = build_scenario(test_case.config);
    const CostModel cost_model(scenario.profile.cost_per_hour);

    ReplayLog log;
    const TrialMetrics engine_metrics =
        run_trial(test_case.config, scenario, cost_model, 0, &log);

    auto mapper = make_mapper(test_case.config.mapper,
                              test_case.config.candidate_window);
    auto dropper = make_dropper(test_case.config.dropper);
    OnlineScheduler scheduler(scenario.pet, scenario.profile.machine_types,
                              *mapper, *dropper,
                              online_config_of(test_case.config));
    replay_decisions(scheduler, log);

    // Rebuild the SimResult from the replayed scheduler and require the
    // figure metrics to match exactly — the decision streams agreeing is
    // necessary but not sufficient; times and busy accounting must too.
    SimResult replayed;
    replayed.machine_types = scenario.profile.machine_types;
    for (const Machine& machine : scheduler.machines()) {
      replayed.busy_ticks.push_back(machine.busy_ticks);
      EXPECT_TRUE(machine.queue.empty());
    }
    replayed.makespan = scheduler.now();
    replayed.mapping_events = scheduler.mapping_events();
    replayed.dropper_invocations = scheduler.dropper_invocations();
    replayed.tasks = scheduler.take_tasks();

    for (const Task& task : replayed.tasks) {
      EXPECT_TRUE(is_terminal(task.state)) << to_string(task.state);
    }

    const double utility_weight = online_config_of(test_case.config)
                                      .approx.utility_weight;
    const TrialMetrics replay_metrics = compute_trial_metrics(
        replayed, cost_model, test_case.config.exclude_head,
        test_case.config.exclude_tail, utility_weight);
    EXPECT_EQ(engine_metrics.robustness_pct, replay_metrics.robustness_pct);
    EXPECT_EQ(engine_metrics.utility_pct, replay_metrics.utility_pct);
    EXPECT_EQ(engine_metrics.normalized_cost, replay_metrics.normalized_cost);
    EXPECT_EQ(engine_metrics.reactive_drop_share_pct,
              replay_metrics.reactive_drop_share_pct);
  }
}

TEST(OnlineReplay, RecordedDecisionsCoverEveryTerminalTask) {
  // Sanity on the log itself: every task must end in exactly one terminal
  // decision, so a consumer of the stream can account for the whole trace.
  ReplayCase test_case{"spec_hc_pam_heuristic",
                       paper_config(ScenarioKind::SpecHC, "PAM",
                                    DropperConfig::heuristic(), 400, 3.0, 21)};
  const Scenario scenario = build_scenario(test_case.config);
  const CostModel cost_model(scenario.profile.cost_per_hour);
  ReplayLog log;
  run_trial(test_case.config, scenario, cost_model, 0, &log);

  std::vector<int> terminal_count(log.tasks.size(), 0);
  for (const Decision& decision : log.decisions) {
    if (is_terminal(decision.kind)) {
      ++terminal_count[static_cast<std::size_t>(decision.task)];
    }
  }
  for (std::size_t i = 0; i < terminal_count.size(); ++i) {
    EXPECT_EQ(terminal_count[i], 1) << "task " << i;
  }
}

TEST(OnlineReplay, RejectsReusedScheduler) {
  const ExperimentConfig config = paper_config(
      ScenarioKind::SpecHC, "PAM", DropperConfig::heuristic(), 50, 2.0, 22);
  const Scenario scenario = build_scenario(config);
  const CostModel cost_model(scenario.profile.cost_per_hour);
  ReplayLog log;
  run_trial(config, scenario, cost_model, 0, &log);

  auto mapper = make_mapper(config.mapper, config.candidate_window);
  auto dropper = make_dropper(config.dropper);
  OnlineScheduler scheduler(scenario.pet, scenario.profile.machine_types,
                            *mapper, *dropper, online_config_of(config));
  replay_decisions(scheduler, log);
  EXPECT_THROW(replay_decisions(scheduler, log), std::invalid_argument);
}

}  // namespace
}  // namespace taskdrop
