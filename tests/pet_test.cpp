#include <gtest/gtest.h>

#include "pet/pet_builder.hpp"
#include "pet/pet_matrix.hpp"
#include "test_util.hpp"

namespace taskdrop {
namespace {

using test::pmf_of;

TEST(PetMatrix, StoresAndReturnsCells) {
  PetMatrix pet(2, 2);
  pet.set(0, 0, pmf_of({{10, 1.0}}));
  pet.set(0, 1, pmf_of({{20, 1.0}}));
  pet.set(1, 0, pmf_of({{30, 1.0}}));
  pet.set(1, 1, pmf_of({{40, 1.0}}));
  pet.freeze();
  EXPECT_TRUE(pet.frozen());
  EXPECT_DOUBLE_EQ(pet.pmf(0, 1).mean(), 20.0);
  EXPECT_DOUBLE_EQ(pet.mean_execution(1, 0), 30.0);
}

TEST(PetMatrix, TaskAndGrandMeans) {
  PetMatrix pet(2, 2);
  pet.set(0, 0, pmf_of({{10, 1.0}}));
  pet.set(0, 1, pmf_of({{20, 1.0}}));
  pet.set(1, 0, pmf_of({{30, 1.0}}));
  pet.set(1, 1, pmf_of({{50, 1.0}}));
  pet.freeze();
  EXPECT_DOUBLE_EQ(pet.mean_over_machines(0), 15.0);
  EXPECT_DOUBLE_EQ(pet.mean_over_machines(1), 40.0);
  EXPECT_DOUBLE_EQ(pet.mean_overall(), 27.5);
}

TEST(PetMatrix, SamplerAndCdfDeriveFromCell) {
  PetMatrix pet(1, 1);
  pet.set(0, 0, pmf_of({{5, 0.5}, {15, 0.5}}));
  pet.freeze();
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const Tick draw = pet.sampler(0, 0).sample(rng);
    EXPECT_TRUE(draw == 5 || draw == 15);
  }
  EXPECT_DOUBLE_EQ(pet.cdf(0, 0).mass_before(6), 0.5);
  EXPECT_DOUBLE_EQ(pet.cdf(0, 0).mass_before(16), 1.0);
}

// ------------------------------ builder ------------------------------

TEST(PetBuilder, GammaPmfHasRequestedMeanAndLattice) {
  Rng rng(7);
  const Pmf pmf = gamma_execution_pmf(rng, 125.0, 10.0, 2000, 5);
  EXPECT_EQ(pmf.stride(), 5);
  EXPECT_EQ(pmf.min_time() % 5, 0);
  EXPECT_NEAR(pmf.total_mass(), 1.0, 1e-12);
  // Gamma(shape=12.5, scale=10): stddev ~ 35; 2000 samples pin the mean
  // within a few ms.
  EXPECT_NEAR(pmf.mean(), 125.0, 5.0);
}

TEST(PetBuilder, HigherScaleMeansWiderPmf) {
  Rng rng1(7), rng2(7);
  const Pmf narrow = gamma_execution_pmf(rng1, 125.0, 1.0, 2000, 5);
  const Pmf wide = gamma_execution_pmf(rng2, 125.0, 20.0, 2000, 5);
  EXPECT_LT(narrow.variance(), wide.variance());
}

TEST(PetBuilder, BuildsFrozenMatrixOfRightShape) {
  const std::vector<std::vector<double>> means = {
      {60.0, 80.0, 100.0}, {120.0, 90.0, 70.0}};
  Rng rng(42);
  PetBuildOptions options;
  options.samples_per_cell = 200;
  const PetMatrix pet = build_pet_from_means(means, rng, options);
  EXPECT_TRUE(pet.frozen());
  EXPECT_EQ(pet.task_type_count(), 2);
  EXPECT_EQ(pet.machine_type_count(), 3);
  for (int t = 0; t < 2; ++t) {
    for (int m = 0; m < 3; ++m) {
      // With scale up to 20 and 200 samples the empirical mean may wander,
      // but must stay in the right neighbourhood.
      EXPECT_NEAR(pet.mean_execution(t, m),
                  means[static_cast<std::size_t>(t)][static_cast<std::size_t>(m)],
                  means[static_cast<std::size_t>(t)][static_cast<std::size_t>(m)] * 0.15);
    }
  }
}

TEST(PetBuilder, DeterministicGivenSeed) {
  const std::vector<std::vector<double>> means = {{100.0}};
  Rng rng1(9), rng2(9);
  const PetMatrix a = build_pet_from_means(means, rng1);
  const PetMatrix b = build_pet_from_means(means, rng2);
  EXPECT_EQ(a.pmf(0, 0), b.pmf(0, 0));
}

TEST(PetBuilder, PaperRecipeDefaults) {
  const PetBuildOptions options;
  EXPECT_EQ(options.samples_per_cell, 500);  // "We sampled 500 execution times"
  EXPECT_DOUBLE_EQ(options.scale_min, 1.0);  // "chosen uniformly from [1, 20]"
  EXPECT_DOUBLE_EQ(options.scale_max, 20.0);
}

}  // namespace
}  // namespace taskdrop
