#include "prob/pmf.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "test_util.hpp"

namespace taskdrop {
namespace {

using test::pmf_of;

TEST(Pmf, DefaultIsEmpty) {
  const Pmf pmf;
  EXPECT_TRUE(pmf.empty());
  EXPECT_EQ(pmf.size(), 0u);
  EXPECT_DOUBLE_EQ(pmf.total_mass(), 0.0);
  EXPECT_DOUBLE_EQ(pmf.mean(), 0.0);
  EXPECT_DOUBLE_EQ(pmf.mass_before(100), 0.0);
}

TEST(Pmf, DeltaCarriesAllMassAtOnePoint) {
  const Pmf pmf = Pmf::delta(42);
  EXPECT_EQ(pmf.size(), 1u);
  EXPECT_DOUBLE_EQ(pmf.prob_at(42), 1.0);
  EXPECT_DOUBLE_EQ(pmf.total_mass(), 1.0);
  EXPECT_DOUBLE_EQ(pmf.mean(), 42.0);
  EXPECT_DOUBLE_EQ(pmf.variance(), 0.0);
  EXPECT_EQ(pmf.min_time(), 42);
  EXPECT_EQ(pmf.max_time(), 42);
}

TEST(Pmf, FromImpulsesSortsAndAccumulatesDuplicates) {
  const Pmf pmf = pmf_of({{5, 0.25}, {3, 0.5}, {5, 0.25}});
  EXPECT_EQ(pmf.min_time(), 3);
  EXPECT_EQ(pmf.max_time(), 5);
  EXPECT_DOUBLE_EQ(pmf.prob_at(3), 0.5);
  EXPECT_DOUBLE_EQ(pmf.prob_at(4), 0.0);
  EXPECT_DOUBLE_EQ(pmf.prob_at(5), 0.5);
}

TEST(Pmf, ProbAtOffLatticeAndOutOfRangeIsZero) {
  const Pmf pmf = pmf_of({{10, 0.5}, {20, 0.5}}, 10);
  EXPECT_DOUBLE_EQ(pmf.prob_at(15), 0.0);  // off lattice
  EXPECT_DOUBLE_EQ(pmf.prob_at(0), 0.0);   // below support
  EXPECT_DOUBLE_EQ(pmf.prob_at(30), 0.0);  // above support
}

TEST(Pmf, MassBeforeIsStrict) {
  // Matches Eq. 2: success means completion strictly before the deadline.
  const Pmf pmf = pmf_of({{10, 0.6}, {11, 0.3}, {12, 0.1}});
  EXPECT_DOUBLE_EQ(pmf.mass_before(10), 0.0);
  EXPECT_DOUBLE_EQ(pmf.mass_before(11), 0.6);
  EXPECT_DOUBLE_EQ(pmf.mass_before(12), 0.9);
  EXPECT_DOUBLE_EQ(pmf.mass_before(13), 1.0);
  EXPECT_DOUBLE_EQ(pmf.mass_before(1000), 1.0);
}

TEST(Pmf, MassBeforeOnCoarseLattice) {
  const Pmf pmf = pmf_of({{10, 0.25}, {15, 0.25}, {20, 0.5}}, 5);
  // Times strictly below 16 are bins 10 and 15.
  EXPECT_DOUBLE_EQ(pmf.mass_before(16), 0.5);
  EXPECT_DOUBLE_EQ(pmf.mass_before(15), 0.25);
  EXPECT_DOUBLE_EQ(pmf.mass_before(21), 1.0);
}

TEST(Pmf, MassAtOrAfterComplementsMassBefore) {
  const Pmf pmf = pmf_of({{1, 0.2}, {2, 0.3}, {5, 0.5}});
  for (Tick t = 0; t <= 6; ++t) {
    EXPECT_NEAR(pmf.mass_before(t) + pmf.mass_at_or_after(t), 1.0, 1e-12);
  }
}

TEST(Pmf, MeanAndVariance) {
  const Pmf pmf = pmf_of({{1, 0.6}, {2, 0.4}});  // Fig. 2's execution PMF
  EXPECT_NEAR(pmf.mean(), 1.4, 1e-12);
  EXPECT_NEAR(pmf.variance(), 0.24, 1e-12);
}

TEST(Pmf, ScaleAndNormalize) {
  Pmf pmf = pmf_of({{1, 0.5}, {2, 0.5}});
  pmf.scale(0.25);
  EXPECT_NEAR(pmf.total_mass(), 0.25, 1e-12);
  pmf.normalize();
  EXPECT_NEAR(pmf.total_mass(), 1.0, 1e-12);
  EXPECT_NEAR(pmf.prob_at(1), 0.5, 1e-12);
}

TEST(Pmf, NormalizeOnZeroMassIsNoOp) {
  Pmf pmf = pmf_of({{1, 0.0}});
  pmf.normalize();
  EXPECT_DOUBLE_EQ(pmf.total_mass(), 0.0);
}

TEST(Pmf, TrimStripsEdgeZerosOnly) {
  Pmf pmf(0, 1, {0.0, 0.0, 0.5, 0.0, 0.5, 0.0});
  pmf.trim();
  EXPECT_EQ(pmf.min_time(), 2);
  EXPECT_EQ(pmf.max_time(), 4);
  EXPECT_EQ(pmf.size(), 3u);  // interior zero kept
  EXPECT_DOUBLE_EQ(pmf.prob_at(3), 0.0);
  EXPECT_NEAR(pmf.total_mass(), 1.0, 1e-12);
}

TEST(Pmf, TrimAllZerosYieldsEmpty) {
  Pmf pmf(5, 1, {0.0, 0.0});
  pmf.trim();
  EXPECT_TRUE(pmf.empty());
}

TEST(Pmf, LumpTailCollapsesMassAtHorizon) {
  Pmf pmf = pmf_of({{1, 0.25}, {2, 0.25}, {3, 0.25}, {4, 0.25}});
  pmf.lump_tail(3);
  EXPECT_EQ(pmf.max_time(), 3);
  EXPECT_DOUBLE_EQ(pmf.prob_at(3), 0.5);
  EXPECT_NEAR(pmf.total_mass(), 1.0, 1e-12);
}

TEST(Pmf, LumpTailBeyondSupportIsNoOp) {
  Pmf pmf = pmf_of({{1, 0.5}, {2, 0.5}});
  const Pmf before = pmf;
  pmf.lump_tail(10);
  EXPECT_EQ(pmf, before);
}

TEST(Pmf, LumpTailOffLatticeHorizonUsesNextBin) {
  Pmf pmf = pmf_of({{0, 0.25}, {5, 0.25}, {10, 0.25}, {15, 0.25}}, 5);
  pmf.lump_tail(7);  // first lattice point at or above 7 is 10
  EXPECT_EQ(pmf.max_time(), 10);
  EXPECT_DOUBLE_EQ(pmf.prob_at(10), 0.5);
}

TEST(Pmf, AddImpulseGrowsFrontAndBack) {
  Pmf pmf = pmf_of({{5, 0.5}});
  pmf.add_impulse(3, 0.25);
  pmf.add_impulse(8, 0.25);
  EXPECT_EQ(pmf.min_time(), 3);
  EXPECT_EQ(pmf.max_time(), 8);
  EXPECT_DOUBLE_EQ(pmf.prob_at(3), 0.25);
  EXPECT_DOUBLE_EQ(pmf.prob_at(5), 0.5);
  EXPECT_DOUBLE_EQ(pmf.prob_at(8), 0.25);
  EXPECT_NEAR(pmf.total_mass(), 1.0, 1e-12);
}

TEST(Pmf, AddImpulseOnEmptySetsOrigin) {
  Pmf pmf;
  pmf.add_impulse(7, 1.0);
  EXPECT_EQ(pmf.min_time(), 7);
  EXPECT_DOUBLE_EQ(pmf.prob_at(7), 1.0);
}

TEST(Pmf, QuantileWalksTheCdf) {
  const Pmf pmf = pmf_of({{1, 0.2}, {2, 0.3}, {3, 0.5}});
  EXPECT_EQ(pmf.quantile(0.1), 1);
  EXPECT_EQ(pmf.quantile(0.2), 1);
  EXPECT_EQ(pmf.quantile(0.21), 2);
  EXPECT_EQ(pmf.quantile(0.5), 2);
  EXPECT_EQ(pmf.quantile(1.0), 3);
}

TEST(Pmf, SampleIsDeterministicGivenRngState) {
  const Pmf pmf = pmf_of({{1, 0.5}, {2, 0.5}});
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(pmf.sample(a), pmf.sample(b));
  }
}

TEST(Pmf, SampleMatchesDistribution) {
  const Pmf pmf = pmf_of({{10, 0.7}, {20, 0.3}});
  Rng rng(99);
  int tens = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    const Tick draw = pmf.sample(rng);
    ASSERT_TRUE(draw == 10 || draw == 20);
    if (draw == 10) ++tens;
  }
  EXPECT_NEAR(static_cast<double>(tens) / kDraws, 0.7, 0.02);
}

// Lattice behaviour must be stride-independent: the same logical
// distribution expressed at different strides yields identical statistics.
class PmfStrideTest : public ::testing::TestWithParam<Tick> {};

TEST_P(PmfStrideTest, StatisticsAreStrideInvariant) {
  const Tick stride = GetParam();
  const Pmf pmf = pmf_of(
      {{10 * stride, 0.25}, {11 * stride, 0.5}, {13 * stride, 0.25}}, stride);
  EXPECT_NEAR(pmf.total_mass(), 1.0, 1e-12);
  EXPECT_NEAR(pmf.mean(),
              static_cast<double>(stride) * (10 * 0.25 + 11 * 0.5 + 13 * 0.25),
              1e-9);
  // Strictly-before semantics at bin boundaries.
  EXPECT_DOUBLE_EQ(pmf.mass_before(10 * stride), 0.0);
  EXPECT_DOUBLE_EQ(pmf.mass_before(10 * stride + 1), 0.25);
  EXPECT_DOUBLE_EQ(pmf.mass_before(13 * stride), 0.75);
  EXPECT_DOUBLE_EQ(pmf.mass_before(13 * stride + 1), 1.0);
}

TEST_P(PmfStrideTest, QuantileSampleAgree) {
  const Tick stride = GetParam();
  const Pmf pmf = pmf_of({{2 * stride, 0.5}, {4 * stride, 0.5}}, stride);
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const Tick draw = pmf.sample(rng);
    EXPECT_TRUE(draw == 2 * stride || draw == 4 * stride);
  }
}

INSTANTIATE_TEST_SUITE_P(Strides, PmfStrideTest,
                         ::testing::Values<Tick>(1, 2, 5, 10));


// Validation is a real (throwing) error path, not assert-only: Release
// builds must reject malformed inputs too (lint rule: no assert-only
// validation in src/prob).
TEST(PmfValidation, RejectsMalformedInputs) {
  EXPECT_THROW(Pmf(0, 0, {1.0}), std::invalid_argument);
  EXPECT_THROW(Pmf::from_impulses({{0, 1.0}}, 0), std::invalid_argument);
  EXPECT_THROW(Pmf::from_impulses({{0, 0.5}, {3, 0.5}}, 2),
               std::invalid_argument);
  EXPECT_THROW(Pmf::from_impulses({{0, -0.5}}, 1), std::invalid_argument);
}

TEST(PmfValidation, AddImpulseRejectsOffLatticeAndNegativeMass) {
  Pmf pmf = Pmf::from_impulses({{0, 0.5}, {4, 0.5}}, 2);
  EXPECT_THROW(pmf.add_impulse(3, 0.1), std::invalid_argument);
  EXPECT_THROW(pmf.add_impulse(2, -0.1), std::invalid_argument);
}

TEST(PmfValidation, ScaleTimeRejectsNonPositiveFactor) {
  const Pmf pmf = Pmf::delta(5);
  EXPECT_THROW(pmf.scale_time(0.0), std::invalid_argument);
  EXPECT_THROW(pmf.scale_time(-1.0), std::invalid_argument);
}

TEST(PmfValidation, QuantileAndSampleRejectEmpty) {
  const Pmf pmf;
  Rng rng(1);
  EXPECT_THROW(pmf.quantile(0.5), std::logic_error);
  EXPECT_THROW(pmf.sample(rng), std::logic_error);
}

}  // namespace
}  // namespace taskdrop
