#include "core/optimal_dropper.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/proactive_heuristic_dropper.hpp"
#include "core/sandbox.hpp"
#include "prob/convolution.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace taskdrop {
namespace {

using test::pet_of;

/// Same palette as dropper_test: big {10}, small {1}, medium {5},
/// coin {2: 0.5, 20: 0.5}.
PetMatrix dropper_pet() {
  return pet_of({{{{10, 1.0}}}, {{{1, 1.0}}}, {{{5, 1.0}}},
                 {{{2, 0.5}, {20, 0.5}}}});
}

TEST(OptimalDropper, NoDropsWhenEverythingIsCertain) {
  const PetMatrix pet = dropper_pet();
  SystemSandbox sandbox(pet, {0}, 6);
  for (int i = 0; i < 5; ++i) {
    sandbox.enqueue(0, /*type=*/1, /*deadline=*/100 + i);
  }
  OptimalDropper dropper;
  dropper.run(sandbox.view(), sandbox);
  EXPECT_TRUE(sandbox.dropped.empty());
}

TEST(OptimalDropper, DropsHopelessBlockingHead) {
  const PetMatrix pet = dropper_pet();
  SystemSandbox sandbox(pet, {0}, 6);
  const TaskId big = sandbox.enqueue(0, 0, 5);
  sandbox.enqueue(0, 1, 3);
  sandbox.enqueue(0, 1, 4);
  OptimalDropper dropper;
  dropper.run(sandbox.view(), sandbox);
  ASSERT_EQ(sandbox.dropped.size(), 1u);
  EXPECT_EQ(sandbox.dropped.front(), big);
  EXPECT_NEAR(sandbox.model(0).instantaneous_robustness(), 2.0, 1e-12);
}

TEST(OptimalDropper, CollectiveDropBeatsGreedySinglePass) {
  // Section IV-D's motivating case: two consecutive hopeless big tasks
  // block two certain small ones. Dropping either big alone gains nothing
  // (the other still blocks), so the greedy heuristic keeps both; only the
  // *collective* view finds that dropping both rescues the smalls.
  const PetMatrix pet = dropper_pet();

  SystemSandbox greedy(pet, {0}, 6);
  greedy.enqueue(0, 0, 5);
  greedy.enqueue(0, 0, 6);
  greedy.enqueue(0, 1, 3);
  greedy.enqueue(0, 1, 4);
  ProactiveHeuristicDropper heuristic;
  heuristic.run(greedy.view(), greedy);
  EXPECT_TRUE(greedy.dropped.empty());
  EXPECT_NEAR(greedy.model(0).instantaneous_robustness(), 0.0, 1e-12);

  SystemSandbox optimal(pet, {0}, 6);
  optimal.enqueue(0, 0, 5);
  optimal.enqueue(0, 0, 6);
  optimal.enqueue(0, 1, 3);
  optimal.enqueue(0, 1, 4);
  OptimalDropper dropper;
  dropper.run(optimal.view(), optimal);
  EXPECT_EQ(optimal.dropped.size(), 2u);
  EXPECT_NEAR(optimal.model(0).instantaneous_robustness(), 2.0, 1e-12);
}

TEST(OptimalDropper, NeverDropsLastOrRunningTask) {
  const PetMatrix pet = dropper_pet();
  SystemSandbox sandbox(pet, {0}, 6);
  const TaskId running = sandbox.enqueue(0, 0, 5);   // hopeless but running
  sandbox.enqueue(0, 0, 6);                          // hopeless pending
  const TaskId last = sandbox.enqueue(0, 0, 7);      // hopeless last
  sandbox.set_running(0, 0);
  OptimalDropper dropper;
  dropper.run(sandbox.view(), sandbox);
  for (TaskId dropped : sandbox.dropped) {
    EXPECT_NE(dropped, running);
    EXPECT_NE(dropped, last);
  }
  EXPECT_EQ(sandbox.machine(0).queue.front(), running);
  EXPECT_EQ(sandbox.machine(0).queue.back(), last);
}

TEST(OptimalDropper, PrefersFewerDropsOnTies) {
  const PetMatrix pet = dropper_pet();
  SystemSandbox sandbox(pet, {0}, 6);
  // Certain small tasks with huge slack: dropping any subset only removes
  // successful tasks; robustness is maximised by the empty subset.
  sandbox.enqueue(0, 1, 1000);
  sandbox.enqueue(0, 1, 1001);
  sandbox.enqueue(0, 1, 1002);
  OptimalDropper dropper;
  dropper.run(sandbox.view(), sandbox);
  EXPECT_TRUE(sandbox.dropped.empty());
}

TEST(OptimalDropper, AtLeastAsGoodAsHeuristicOnRandomQueues) {
  const PetMatrix pet = dropper_pet();
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    Rng rng(seed);
    const int depth = static_cast<int>(rng.uniform_int(2, 6));
    std::vector<std::pair<TaskTypeId, Tick>> specs;
    for (int i = 0; i < depth; ++i) {
      specs.emplace_back(static_cast<TaskTypeId>(rng.uniform_int(0, 3)),
                         rng.uniform_int(2, 30));
    }
    SystemSandbox for_heuristic(pet, {0}, depth + 1);
    SystemSandbox for_optimal(pet, {0}, depth + 1);
    for (const auto& [type, deadline] : specs) {
      for_heuristic.enqueue(0, type, deadline);
      for_optimal.enqueue(0, type, deadline);
    }
    ProactiveHeuristicDropper heuristic;
    heuristic.run(for_heuristic.view(), for_heuristic);
    OptimalDropper optimal;
    optimal.run(for_optimal.view(), for_optimal);
    EXPECT_GE(for_optimal.model(0).instantaneous_robustness() + 1e-9,
              for_heuristic.model(0).instantaneous_robustness())
        << "seed " << seed;
  }
}

/// The pre-PR direct evaluation: rebuild the surviving chain from scratch
/// for every subset, scanning masks in ascending order with the same
/// epsilon tie-break. The prefix-sharing enumeration must select the
/// identical subset on every queue.
std::vector<TaskId> reference_best_drops(SystemSandbox& sandbox) {
  const Machine& machine = sandbox.machine(0);
  CompletionModel& model = sandbox.model(0);
  const std::vector<Task>& tasks = *sandbox.view().tasks;
  const PetMatrix& pet = *sandbox.view().pet;

  std::vector<std::size_t> droppable;
  for (std::size_t pos = machine.first_pending_pos();
       pos + 1 < machine.queue.size(); ++pos) {
    droppable.push_back(pos);
  }
  if (droppable.empty()) return {};

  const auto robustness_without = [&](unsigned mask) {
    double sum = 0.0;
    Pmf chain;
    std::size_t start = machine.first_pending_pos();
    if (machine.running) {
      sum += model.chance(0);
      chain = model.completion(0);
    } else {
      chain = model.predecessor(start);
    }
    std::size_t bit = 0;
    for (std::size_t pos = start; pos < machine.queue.size(); ++pos) {
      const bool dropped = bit < droppable.size() && droppable[bit] == pos &&
                           ((mask >> bit) & 1u);
      if (bit < droppable.size() && droppable[bit] == pos) ++bit;
      if (dropped) continue;
      const Task& task = tasks[static_cast<std::size_t>(machine.queue[pos])];
      chain = deadline_convolve(
          chain, execution_pmf(task, machine.type, pet, nullptr),
          task.deadline);
      sum += chain.mass_before(task.deadline);
    }
    return sum;
  };

  unsigned best_mask = 0;
  int best_popcount = 0;
  double best_robustness = robustness_without(0u);
  const unsigned subsets = 1u << droppable.size();
  for (unsigned mask = 1; mask < subsets; ++mask) {
    const double r = robustness_without(mask);
    const int popcount = __builtin_popcount(mask);
    if (r > best_robustness + 1e-12 ||
        (r > best_robustness - 1e-12 && popcount < best_popcount)) {
      best_robustness = r;
      best_mask = mask;
      best_popcount = popcount;
    }
  }
  std::vector<TaskId> drops;
  for (std::size_t bit = 0; bit < droppable.size(); ++bit) {
    if ((best_mask >> bit) & 1u) {
      drops.push_back(machine.queue[droppable[bit]]);
    }
  }
  return drops;
}

TEST(OptimalDropper, MatchesDirectSubsetEvaluationOnRandomQueues) {
  const PetMatrix pet = dropper_pet();
  for (std::uint64_t seed = 500; seed < 560; ++seed) {
    Rng rng(seed);
    const int depth = static_cast<int>(rng.uniform_int(2, 6));
    std::vector<std::pair<TaskTypeId, Tick>> specs;
    for (int i = 0; i < depth; ++i) {
      specs.emplace_back(static_cast<TaskTypeId>(rng.uniform_int(0, 3)),
                         rng.uniform_int(2, 40));
    }
    const bool running = rng.uniform01() < 0.5;

    SystemSandbox expected(pet, {0}, depth + 1);
    SystemSandbox actual(pet, {0}, depth + 1);
    for (const auto& [type, deadline] : specs) {
      expected.enqueue(0, type, deadline);
      actual.enqueue(0, type, deadline);
    }
    if (running) {
      expected.set_running(0, 0);
      actual.set_running(0, 0);
    }

    const std::vector<TaskId> want = reference_best_drops(expected);
    OptimalDropper dropper;
    dropper.run(actual.view(), actual);
    // The dropper applies back-to-front; compare as sets of task ids.
    std::vector<TaskId> got = actual.dropped;
    std::sort(got.begin(), got.end());
    std::vector<TaskId> want_sorted = want;
    std::sort(want_sorted.begin(), want_sorted.end());
    EXPECT_EQ(got, want_sorted) << "seed " << seed;
  }
}

TEST(OptimalDropper, SecondRunOnUnchangedQueueIsIdempotent) {
  const PetMatrix pet = dropper_pet();
  SystemSandbox sandbox(pet, {0}, 6);
  sandbox.enqueue(0, 0, 5);
  sandbox.enqueue(0, 0, 6);
  sandbox.enqueue(0, 1, 3);
  sandbox.enqueue(0, 1, 4);
  OptimalDropper dropper;
  dropper.run(sandbox.view(), sandbox);
  const std::size_t after_first = sandbox.dropped.size();
  dropper.run(sandbox.view(), sandbox);
  EXPECT_EQ(sandbox.dropped.size(), after_first);
}

TEST(OptimalDropper, NeverDecreasesInstantaneousRobustness) {
  const PetMatrix pet = dropper_pet();
  for (std::uint64_t seed = 100; seed < 115; ++seed) {
    Rng rng(seed);
    const int depth = static_cast<int>(rng.uniform_int(2, 6));
    SystemSandbox sandbox(pet, {0}, depth + 1);
    for (int i = 0; i < depth; ++i) {
      sandbox.enqueue(0, static_cast<TaskTypeId>(rng.uniform_int(0, 3)),
                      rng.uniform_int(2, 30));
    }
    const double before = sandbox.model(0).instantaneous_robustness();
    OptimalDropper dropper;
    dropper.run(sandbox.view(), sandbox);
    EXPECT_GE(sandbox.model(0).instantaneous_robustness() + 1e-9, before)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace taskdrop
