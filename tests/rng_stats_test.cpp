#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace taskdrop {
namespace {

// -------------------------------- Rng --------------------------------

TEST(Rng, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(42), b(43);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, DerivedStreamsAreIndependentAndReproducible) {
  Rng a = Rng::derive(7, 1);
  Rng b = Rng::derive(7, 2);
  EXPECT_NE(a(), b());
  // Two derivations of the same (seed, stream) agree exactly.
  Rng x = Rng::derive(99, 5), y = Rng::derive(99, 5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(x(), y());
}

TEST(Rng, Uniform01InRangeWithCorrectMean) {
  Rng rng(1);
  double sum = 0.0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(2);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, GammaMatchesMoments) {
  Rng rng(4);
  const double shape = 20.0, scale = 6.0;
  double sum = 0.0, sumsq = 0.0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.gamma(shape, scale);
    ASSERT_GT(x, 0.0);
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / kDraws;
  const double var = sumsq / kDraws - mean * mean;
  EXPECT_NEAR(mean, shape * scale, 2.0);              // 120 +/- 2
  EXPECT_NEAR(var, shape * scale * scale, 40.0);      // 720 +/- 40
}

TEST(Rng, ExponentialMatchesMean) {
  Rng rng(5);
  double sum = 0.0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) sum += rng.exponential(25.0);
  EXPECT_NEAR(sum / kDraws, 25.0, 0.5);
}

// ------------------------------- stats -------------------------------

TEST(Stats, MeanAndStddev) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  // Sample (n-1) stddev of this classic dataset is sqrt(32/7).
  EXPECT_NEAR(sample_stddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Stats, EmptyAndSingletonEdgeCases) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(sample_stddev({}), 0.0);
  EXPECT_DOUBLE_EQ(sample_stddev({3.0}), 0.0);
  EXPECT_DOUBLE_EQ(ci95_halfwidth({3.0}), 0.0);
}

TEST(Stats, RunningStatsMatchesBatch) {
  const std::vector<double> xs = {1.5, 2.5, -3.0, 4.0, 0.0};
  RunningStats acc;
  for (double x : xs) acc.add(x);
  EXPECT_EQ(acc.count(), xs.size());
  EXPECT_NEAR(acc.mean(), mean(xs), 1e-12);
  EXPECT_NEAR(acc.stddev(), sample_stddev(xs), 1e-12);
}

TEST(Stats, TCriticalValues) {
  EXPECT_NEAR(t_critical_95(1), 12.706, 1e-9);
  EXPECT_NEAR(t_critical_95(10), 2.228, 1e-9);
  EXPECT_NEAR(t_critical_95(29), 2.045, 1e-9);
  EXPECT_NEAR(t_critical_95(1000), 1.96, 1e-9);
  EXPECT_DOUBLE_EQ(t_critical_95(0), 0.0);
}

TEST(Stats, Ci95HalfwidthKnownExample) {
  // n=4, s=2 -> hw = t(3) * 2 / 2 = 3.182.
  const std::vector<double> xs = {-2.0, 0.0, 2.0, 0.0};
  EXPECT_NEAR(sample_stddev(xs), std::sqrt(8.0 / 3.0), 1e-12);
  EXPECT_NEAR(ci95_halfwidth(xs),
              3.182 * std::sqrt(8.0 / 3.0) / 2.0, 1e-9);
}

TEST(Stats, PercentileInterpolatesOrderStatistics) {
  // Unsorted on purpose: percentile sorts its copy.
  const std::vector<double> xs = {40.0, 10.0, 30.0, 20.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 25.0);  // between 20 and 30
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 17.5);  // rank 0.75 -> 10 + .75*10
  EXPECT_DOUBLE_EQ(percentile({7.0}, 99.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0);
  EXPECT_THROW(percentile(xs, -1.0), std::invalid_argument);
  EXPECT_THROW(percentile(xs, 100.5), std::invalid_argument);
}

TEST(Stats, PercentileSortedAgreesWithPercentile) {
  const std::vector<double> xs = {30.0, 10.0, 40.0, 20.0, 25.0, 10.0};
  std::vector<double> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  for (const double p : {0.0, 12.5, 25.0, 50.0, 75.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(percentile_sorted(sorted, p), percentile(xs, p)) << p;
  }
}

TEST(Stats, PercentileSortedEdgeCases) {
  EXPECT_DOUBLE_EQ(percentile_sorted({}, 50.0), 0.0);
  // n=1: every percentile is the sample.
  EXPECT_DOUBLE_EQ(percentile_sorted({7.0}, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile_sorted({7.0}, 50.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile_sorted({7.0}, 100.0), 7.0);
  // p=0 / p=100 pin to min / max without interpolation.
  const std::vector<double> sorted = {1.0, 2.0, 4.0, 8.0};
  EXPECT_DOUBLE_EQ(percentile_sorted(sorted, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(sorted, 100.0), 8.0);
  // Ties: interpolation across equal values stays on the tied value.
  const std::vector<double> tied = {5.0, 5.0, 5.0, 9.0};
  EXPECT_DOUBLE_EQ(percentile_sorted(tied, 25.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(tied, 50.0), 5.0);
  EXPECT_THROW(percentile_sorted(sorted, -0.001), std::invalid_argument);
  EXPECT_THROW(percentile_sorted(sorted, 100.001), std::invalid_argument);
}

TEST(Reservoir, ExactBelowCapacity) {
  LatencyReservoir reservoir(8);
  std::vector<double> fed;
  for (int i = 0; i < 8; ++i) {
    const double x = static_cast<double>(10 * i + 1);
    reservoir.add(x);
    fed.push_back(x);
  }
  EXPECT_EQ(reservoir.stride(), 1u);
  EXPECT_EQ(reservoir.count(), 8u);
  EXPECT_EQ(reservoir.samples(), fed);
  EXPECT_DOUBLE_EQ(reservoir.max(), 71.0);
  double total = 0.0;
  for (const double x : fed) total += x;
  EXPECT_DOUBLE_EQ(reservoir.total(), total);
}

TEST(Reservoir, StrideDoublingKeepsAnEvenlyStridedSubsample) {
  LatencyReservoir reservoir(4);
  for (int i = 0; i < 10; ++i) reservoir.add(static_cast<double>(i));
  // Indices kept: 0..3 exactly; the 5th add compacts to {0, 2} (stride 2)
  // and admits 4; the 9th compacts to {0, 4} (stride 4) and admits 8.
  EXPECT_EQ(reservoir.stride(), 4u);
  EXPECT_EQ(reservoir.samples(), (std::vector<double>{0.0, 4.0, 8.0}));
  // count/total/max stay exact across compactions.
  EXPECT_EQ(reservoir.count(), 10u);
  EXPECT_DOUBLE_EQ(reservoir.total(), 45.0);
  EXPECT_DOUBLE_EQ(reservoir.max(), 9.0);
}

TEST(Reservoir, OddCapacityRoundsUpToEven) {
  // Capacity 5 behaves as 6: six exact samples, then compaction to three.
  LatencyReservoir reservoir(5);
  for (int i = 0; i < 7; ++i) reservoir.add(static_cast<double>(i));
  EXPECT_EQ(reservoir.stride(), 2u);
  EXPECT_EQ(reservoir.samples(), (std::vector<double>{0.0, 2.0, 4.0, 6.0}));
}

TEST(Reservoir, DeterministicAcrossIdenticalStreams) {
  LatencyReservoir a(16), b(16);
  for (int i = 0; i < 1000; ++i) {
    const double x = static_cast<double>((i * 37) % 101);
    a.add(x);
    b.add(x);
  }
  EXPECT_EQ(a.samples(), b.samples());
  EXPECT_EQ(a.stride(), b.stride());
  EXPECT_DOUBLE_EQ(a.total(), b.total());
}

TEST(Reservoir, BufferStaysBounded) {
  LatencyReservoir reservoir(16);
  for (int i = 0; i < 100000; ++i) reservoir.add(1.0);
  EXPECT_LE(reservoir.samples().size(), 16u);
  EXPECT_GE(reservoir.samples().size(), 8u);
  EXPECT_EQ(reservoir.count(), 100000u);
  EXPECT_DOUBLE_EQ(reservoir.total(), 100000.0);
}

TEST(Reservoir, TinyCapacityRejected) {
  EXPECT_THROW(LatencyReservoir(0), std::invalid_argument);
  EXPECT_THROW(LatencyReservoir(1), std::invalid_argument);
}

}  // namespace
}  // namespace taskdrop
