#include <gtest/gtest.h>

#include <stdexcept>

#include "prob/histogram.hpp"
#include "prob/sampler.hpp"
#include "test_util.hpp"

namespace taskdrop {
namespace {

using test::pmf_of;

// ----------------------------- histogram -----------------------------

TEST(Histogram, BinsSamplesToNearestLatticePoint) {
  // bin width 5: 12 -> 10, 13 -> 15, 22 -> 20.
  const Pmf pmf = pmf_from_samples({12.0, 13.0, 22.0, 22.0}, 5);
  EXPECT_EQ(pmf.stride(), 5);
  EXPECT_DOUBLE_EQ(pmf.prob_at(10), 0.25);
  EXPECT_DOUBLE_EQ(pmf.prob_at(15), 0.25);
  EXPECT_DOUBLE_EQ(pmf.prob_at(20), 0.5);
  EXPECT_NEAR(pmf.total_mass(), 1.0, 1e-12);
}

TEST(Histogram, ClampsToAtLeastOneBin) {
  // Samples near zero land in the first positive bin: execution times are
  // strictly positive.
  const Pmf pmf = pmf_from_samples({0.0, 0.4, 1.0}, 5);
  EXPECT_EQ(pmf.min_time(), 5);
  EXPECT_NEAR(pmf.total_mass(), 1.0, 1e-12);
}

TEST(Histogram, OffsetIsLatticeMultiple) {
  // Required by deadline_convolve's pass-through lattice alignment.
  const Pmf pmf = pmf_from_samples({103.0, 197.0, 151.0}, 7);
  EXPECT_EQ(pmf.min_time() % 7, 0);
  EXPECT_EQ(pmf.stride(), 7);
}

TEST(Histogram, PreservesMeanApproximately) {
  std::vector<double> samples;
  Rng rng(11);
  for (int i = 0; i < 5000; ++i) samples.push_back(rng.gamma(25.0, 5.0));
  const Pmf pmf = pmf_from_samples(samples, 5);
  // Gamma(25, 5) has mean 125; binning at width 5 keeps it within a bin.
  EXPECT_NEAR(pmf.mean(), 125.0, 5.0);
}

// ----------------------------- CdfSampler ----------------------------

TEST(CdfSampler, InvalidWhenDefaultConstructed) {
  const CdfSampler sampler;
  EXPECT_FALSE(sampler.valid());
}

TEST(CdfSampler, MatchesPmfSampleDistribution) {
  const Pmf pmf = pmf_of({{10, 0.2}, {20, 0.5}, {30, 0.3}});
  const CdfSampler sampler(pmf);
  ASSERT_TRUE(sampler.valid());
  Rng rng(3);
  int counts[3] = {0, 0, 0};
  constexpr int kDraws = 30000;
  for (int i = 0; i < kDraws; ++i) {
    const Tick draw = sampler.sample(rng);
    ASSERT_TRUE(draw == 10 || draw == 20 || draw == 30);
    ++counts[(draw - 10) / 10];
  }
  EXPECT_NEAR(counts[0] / double(kDraws), 0.2, 0.02);
  EXPECT_NEAR(counts[1] / double(kDraws), 0.5, 0.02);
  EXPECT_NEAR(counts[2] / double(kDraws), 0.3, 0.02);
}

TEST(CdfSampler, SkipsZeroProbabilityBins) {
  Pmf pmf(0, 1, {0.0, 1.0, 0.0});
  const CdfSampler sampler(pmf);
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(sampler.sample(rng), 1);
  }
}

// ------------------------------ PmfCdf -------------------------------

class PmfCdfTest : public ::testing::TestWithParam<Tick> {};

TEST_P(PmfCdfTest, MassBeforeAgreesWithPmfEverywhere) {
  const Tick stride = GetParam();
  const Pmf pmf = pmf_of({{2 * stride, 0.1},
                          {3 * stride, 0.4},
                          {5 * stride, 0.2},
                          {8 * stride, 0.3}},
                         stride);
  const PmfCdf cdf(pmf);
  ASSERT_TRUE(cdf.valid());
  EXPECT_NEAR(cdf.total_mass(), 1.0, 1e-12);
  for (Tick t = 0; t <= 10 * stride; ++t) {
    ASSERT_DOUBLE_EQ(cdf.mass_before(t), pmf.mass_before(t)) << "t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Strides, PmfCdfTest,
                         ::testing::Values<Tick>(1, 3, 5));

TEST(PmfCdf, InvalidWhenDefaultConstructed) {
  const PmfCdf cdf;
  EXPECT_FALSE(cdf.valid());
  EXPECT_DOUBLE_EQ(cdf.total_mass(), 0.0);
}


TEST(HistogramValidation, RejectsMalformedInputs) {
  EXPECT_THROW(pmf_from_samples({}, 10), std::invalid_argument);
  EXPECT_THROW(pmf_from_samples({50.0}, 0), std::invalid_argument);
  EXPECT_THROW(pmf_from_samples({-1.0}, 10), std::invalid_argument);
}

TEST(CdfSamplerValidation, SampleFromEmptyThrows) {
  const CdfSampler sampler{Pmf{}};
  Rng rng(1);
  EXPECT_THROW(sampler.sample(rng), std::logic_error);
}

}  // namespace
}  // namespace taskdrop
