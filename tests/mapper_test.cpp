#include <gtest/gtest.h>

#include "core/sandbox.hpp"
#include "sched/registry.hpp"
#include "test_util.hpp"

namespace taskdrop {
namespace {

using test::pet_of;

/// Inconsistent 2 task types x 2 machine types:
///   type 0: m0 takes 10, m1 takes 20  (prefers m0)
///   type 1: m0 takes 20, m1 takes 5   (prefers m1)
PetMatrix inconsistent_pet() {
  return pet_of({{{{10, 1.0}}, {{20, 1.0}}}, {{{20, 1.0}}, {{5, 1.0}}}});
}

MachineId machine_of(const SystemSandbox& sandbox, TaskId task) {
  for (const auto& [assigned_task, machine] : sandbox.assigned) {
    if (assigned_task == task) return machine;
  }
  return -1;
}

TEST(Registry, KnowsAllMappersAndRejectsUnknown) {
  for (const std::string name :
       {"MM", "MinMin", "MSD", "PAM", "FCFS", "SJF", "EDF"}) {
    EXPECT_NE(make_mapper(name), nullptr) << name;
  }
  EXPECT_THROW(make_mapper("NOPE"), std::invalid_argument);
  EXPECT_EQ(make_mapper("MinMin")->name(), "MM");
}

TEST(Registry, BuildsEveryDropperKind) {
  EXPECT_EQ(make_dropper(DropperConfig::reactive_only())->name(), "ReactDrop");
  EXPECT_EQ(make_dropper(DropperConfig::heuristic())->name(), "Heuristic");
  EXPECT_EQ(make_dropper(DropperConfig::optimal())->name(), "Optimal");
  EXPECT_EQ(make_dropper(DropperConfig::threshold())->name(), "Threshold");
}

TEST(MinMin, AssignsEachTaskToItsFastestMachine) {
  const PetMatrix pet = inconsistent_pet();
  SystemSandbox sandbox(pet, {0, 1}, 6);
  const TaskId t0 = sandbox.add_unmapped(0, 0, 1000);
  const TaskId t1 = sandbox.add_unmapped(1, 0, 1000);
  make_mapper("MM")->map_tasks(sandbox.view(), sandbox);
  EXPECT_EQ(machine_of(sandbox, t0), 0);
  EXPECT_EQ(machine_of(sandbox, t1), 1);
  EXPECT_TRUE(sandbox.view().batch_queue->empty());
}

TEST(MinMin, AccountsForQueueBacklogInPhaseOne) {
  const PetMatrix pet = inconsistent_pet();
  SystemSandbox sandbox(pet, {0, 1}, 6);
  // Load m0 with 3 type-0 tasks (30 ticks of backlog). A new type-0 task
  // now completes sooner on the "slow" m1 (20) than behind the backlog
  // (30 + 10 = 40).
  for (int i = 0; i < 3; ++i) sandbox.enqueue(0, 0, 10000);
  const TaskId task = sandbox.add_unmapped(0, 0, 10000);
  make_mapper("MM")->map_tasks(sandbox.view(), sandbox);
  EXPECT_EQ(machine_of(sandbox, task), 1);
}

TEST(MinMin, AssignsOnePairPerMachinePerRound) {
  const PetMatrix pet = inconsistent_pet();
  SystemSandbox sandbox(pet, {0}, 2);
  // Three type-0 tasks, one machine with 2 slots: only two get mapped.
  sandbox.add_unmapped(0, 0, 1000);
  sandbox.add_unmapped(0, 1, 1000);
  sandbox.add_unmapped(0, 2, 1000);
  make_mapper("MM")->map_tasks(sandbox.view(), sandbox);
  EXPECT_EQ(sandbox.assigned.size(), 2u);
  EXPECT_EQ(sandbox.view().batch_queue->size(), 1u);
}

TEST(Msd, PhaseTwoPrefersSoonestDeadline) {
  const PetMatrix pet = inconsistent_pet();
  SystemSandbox sandbox(pet, {0}, 1);  // single slot forces a choice
  sandbox.add_unmapped(0, 0, /*deadline=*/5000);
  const TaskId urgent = sandbox.add_unmapped(0, 0, /*deadline=*/50);
  make_mapper("MSD")->map_tasks(sandbox.view(), sandbox);
  ASSERT_EQ(sandbox.assigned.size(), 1u);
  EXPECT_EQ(sandbox.assigned.front().first, urgent);
}

TEST(Msd, DeadlineTieBreaksOnCompletionTime) {
  // Two tasks with equal deadlines but different execution times on the
  // only machine: the faster one wins the slot.
  const PetMatrix pet = pet_of({{{{10, 1.0}}}, {{{5, 1.0}}}});
  SystemSandbox sandbox(pet, {0}, 1);
  sandbox.add_unmapped(0, 0, 100);
  const TaskId fast = sandbox.add_unmapped(1, 0, 100);
  make_mapper("MSD")->map_tasks(sandbox.view(), sandbox);
  ASSERT_EQ(sandbox.assigned.size(), 1u);
  EXPECT_EQ(sandbox.assigned.front().first, fast);
}

TEST(Pam, PhaseOnePicksHighestChanceMachine) {
  // Type 0 on m0 finishes in 10, on m1 in 20. Deadline 15: chance is 1 on
  // m0 and 0 on m1, even though m1's queue is empty too.
  const PetMatrix pet = inconsistent_pet();
  SystemSandbox sandbox(pet, {0, 1}, 6);
  const TaskId task = sandbox.add_unmapped(0, 0, /*deadline=*/15);
  make_mapper("PAM")->map_tasks(sandbox.view(), sandbox);
  EXPECT_EQ(machine_of(sandbox, task), 0);
}

TEST(Pam, PhaseTwoMapsLowestCompletionFirst) {
  const PetMatrix pet = inconsistent_pet();
  SystemSandbox sandbox(pet, {0, 1}, 1);
  // Deadline 15 makes each task's fast machine the unique highest-chance
  // choice (the slow one would finish at 20); the type-1 task (5 ticks on
  // m1) then has the lower expected completion and is assigned first.
  sandbox.add_unmapped(0, 0, 15);
  const TaskId quick = sandbox.add_unmapped(1, 0, 15);
  make_mapper("PAM")->map_tasks(sandbox.view(), sandbox);
  ASSERT_GE(sandbox.assigned.size(), 2u);
  EXPECT_EQ(sandbox.assigned.front().first, quick);
}

TEST(Pam, MapsHopelessTasksRatherThanDeferring)  {
  // Deferring is disabled (section V-B3): even a task with zero chance on
  // every machine is mapped once slots exist.
  const PetMatrix pet = inconsistent_pet();
  SystemSandbox sandbox(pet, {0, 1}, 6);
  sandbox.set_now(100);
  const TaskId doomed = sandbox.add_unmapped(0, 0, /*deadline=*/50);
  make_mapper("PAM")->map_tasks(sandbox.view(), sandbox);
  EXPECT_NE(machine_of(sandbox, doomed), -1);
}

TEST(Fcfs, MapsInArrivalOrder) {
  const PetMatrix pet = inconsistent_pet();
  SystemSandbox sandbox(pet, {0}, 3);
  const TaskId first = sandbox.add_unmapped(0, /*arrival=*/10, 1000);
  const TaskId second = sandbox.add_unmapped(0, /*arrival=*/20, 1000);
  const TaskId third = sandbox.add_unmapped(0, /*arrival=*/30, 1000);
  make_mapper("FCFS")->map_tasks(sandbox.view(), sandbox);
  ASSERT_EQ(sandbox.assigned.size(), 3u);
  EXPECT_EQ(sandbox.assigned[0].first, first);
  EXPECT_EQ(sandbox.assigned[1].first, second);
  EXPECT_EQ(sandbox.assigned[2].first, third);
}

TEST(Sjf, MapsShortestMeanExecutionFirst) {
  // Mean over machines: type 0 -> 15, type 1 -> 12.5.
  const PetMatrix pet = inconsistent_pet();
  SystemSandbox sandbox(pet, {0}, 2);
  const TaskId longer = sandbox.add_unmapped(0, 0, 1000);
  const TaskId shorter = sandbox.add_unmapped(1, 1, 1000);
  make_mapper("SJF")->map_tasks(sandbox.view(), sandbox);
  ASSERT_EQ(sandbox.assigned.size(), 2u);
  EXPECT_EQ(sandbox.assigned[0].first, shorter);
  EXPECT_EQ(sandbox.assigned[1].first, longer);
}

TEST(Edf, MapsEarliestDeadlineFirst) {
  const PetMatrix pet = inconsistent_pet();
  SystemSandbox sandbox(pet, {0}, 2);
  const TaskId relaxed = sandbox.add_unmapped(0, 0, 900);
  const TaskId urgent = sandbox.add_unmapped(0, 1, 100);
  make_mapper("EDF")->map_tasks(sandbox.view(), sandbox);
  ASSERT_EQ(sandbox.assigned.size(), 2u);
  EXPECT_EQ(sandbox.assigned[0].first, urgent);
  EXPECT_EQ(sandbox.assigned[1].first, relaxed);
}

TEST(OrderedMappers, PickLeastLoadedMachine) {
  const PetMatrix pet = pet_of({{{{10, 1.0}}, {{10, 1.0}}}});
  SystemSandbox sandbox(pet, {0, 0}, 6);
  sandbox.enqueue(0, 0, 10000);  // machine 0 has backlog
  const TaskId task = sandbox.add_unmapped(0, 0, 10000);
  make_mapper("FCFS")->map_tasks(sandbox.view(), sandbox);
  EXPECT_EQ(machine_of(sandbox, task), 1);
}

TEST(AllMappers, RespectQueueCapacity) {
  const PetMatrix pet = inconsistent_pet();
  for (const std::string& name : mapper_names()) {
    SystemSandbox sandbox(pet, {0, 1}, 2);
    for (int i = 0; i < 10; ++i) {
      sandbox.add_unmapped(static_cast<TaskTypeId>(i % 2), i, 10000 + i);
    }
    make_mapper(name)->map_tasks(sandbox.view(), sandbox);
    EXPECT_EQ(sandbox.assigned.size(), 4u) << name;  // 2 machines x 2 slots
    EXPECT_LE(sandbox.machine(0).queue.size(), 2u) << name;
    EXPECT_LE(sandbox.machine(1).queue.size(), 2u) << name;
    EXPECT_EQ(sandbox.view().batch_queue->size(), 6u) << name;
  }
}

TEST(AllMappers, NoOpOnEmptyBatchOrFullQueues) {
  const PetMatrix pet = inconsistent_pet();
  for (const std::string& name : mapper_names()) {
    SystemSandbox empty_batch(pet, {0}, 2);
    make_mapper(name)->map_tasks(empty_batch.view(), empty_batch);
    EXPECT_TRUE(empty_batch.assigned.empty()) << name;

    SystemSandbox full(pet, {0}, 1);
    full.enqueue(0, 0, 1000);
    full.add_unmapped(0, 0, 1000);
    make_mapper(name)->map_tasks(full.view(), full);
    EXPECT_TRUE(full.assigned.empty()) << name;
  }
}

TEST(CandidateWindow, LimitsConsideredTasks) {
  // With window 1, only the batch head is a candidate; SJF cannot reach the
  // shorter task sitting behind it.
  const PetMatrix pet = inconsistent_pet();
  SystemSandbox sandbox(pet, {0}, 1);
  const TaskId long_head = sandbox.add_unmapped(0, 0, 1000);
  sandbox.add_unmapped(1, 1, 1000);  // shorter, but outside the window
  make_mapper("SJF", /*candidate_window=*/1)
      ->map_tasks(sandbox.view(), sandbox);
  ASSERT_EQ(sandbox.assigned.size(), 1u);
  EXPECT_EQ(sandbox.assigned.front().first, long_head);
}

}  // namespace
}  // namespace taskdrop
