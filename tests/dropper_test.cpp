#include "core/proactive_heuristic_dropper.hpp"

#include <gtest/gtest.h>

#include "core/null_dropper.hpp"
#include "core/sandbox.hpp"
#include "test_util.hpp"

namespace taskdrop {
namespace {

using test::pet_of;

/// Task types on one machine type:
///   0 "big":    {10: 1.0}
///   1 "small":  {1: 1.0}
///   2 "medium": {5: 1.0}
///   3 "coin":   {2: 0.5, 20: 0.5}
PetMatrix dropper_pet() {
  return pet_of({{{{10, 1.0}}}, {{{1, 1.0}}}, {{{5, 1.0}}},
                 {{{2, 0.5}, {20, 0.5}}}});
}

TEST(HeuristicDropper, DropsHopelessHeadThatBlocksSuccessors) {
  const PetMatrix pet = dropper_pet();
  SystemSandbox sandbox(pet, {0}, 6);
  // Head: big task that cannot finish by 5 (chance 0) but would occupy the
  // machine for 10 ticks, dooming both small successors.
  const TaskId big = sandbox.enqueue(0, /*type=*/0, /*deadline=*/5);
  sandbox.enqueue(0, /*type=*/1, /*deadline=*/3);
  sandbox.enqueue(0, /*type=*/1, /*deadline=*/4);

  ProactiveHeuristicDropper dropper;  // eta=2, beta=1
  dropper.run(sandbox.view(), sandbox);

  ASSERT_EQ(sandbox.dropped.size(), 1u);
  EXPECT_EQ(sandbox.dropped.front(), big);
  // The survivors are now certain to succeed.
  EXPECT_NEAR(sandbox.model(0).chance(0), 1.0, 1e-12);
  EXPECT_NEAR(sandbox.model(0).chance(1), 1.0, 1e-12);
}

TEST(HeuristicDropper, NeverDropsTheLastTask) {
  const PetMatrix pet = dropper_pet();
  SystemSandbox sandbox(pet, {0}, 6);
  // A single hopeless task: its influence zone is null (section IV-D), so
  // proactive dropping must leave it alone.
  sandbox.enqueue(0, /*type=*/0, /*deadline=*/2);
  ProactiveHeuristicDropper dropper;
  dropper.run(sandbox.view(), sandbox);
  EXPECT_TRUE(sandbox.dropped.empty());
  EXPECT_EQ(sandbox.machine(0).queue.size(), 1u);
}

TEST(HeuristicDropper, NeverDropsTheRunningTask) {
  const PetMatrix pet = dropper_pet();
  SystemSandbox sandbox(pet, {0}, 6);
  const TaskId running = sandbox.enqueue(0, /*type=*/0, /*deadline=*/5);
  sandbox.enqueue(0, /*type=*/1, /*deadline=*/3);
  sandbox.enqueue(0, /*type=*/1, /*deadline=*/4);
  sandbox.set_running(0, /*run_start=*/0);

  ProactiveHeuristicDropper dropper;
  dropper.run(sandbox.view(), sandbox);
  // The hopeless running task is untouchable (no preemption); at most the
  // pending tasks may go. The first queued position must still hold it.
  EXPECT_EQ(sandbox.machine(0).queue.front(), running);
  for (TaskId dropped : sandbox.dropped) EXPECT_NE(dropped, running);
}

TEST(HeuristicDropper, LargeBetaDisablesDropping) {
  // Note the queue must carry *some* robustness: Eq. 8 with a zero
  // keep-sum (R_keep = 0) confirms a drop for any beta, because any gain
  // beats beta * 0 — dropping is then strictly beneficial no matter how
  // conservative the factor. With positive keep-sum, beta -> infinity
  // disables dropping as section IV-E describes.
  const PetMatrix pet = dropper_pet();
  SystemSandbox sandbox(pet, {0}, 6);
  sandbox.enqueue(0, 3, 3);  // coin: chance 0.5
  sandbox.enqueue(0, 1, 4);
  sandbox.enqueue(0, 1, 5);
  ProactiveHeuristicDropper dropper(
      ProactiveHeuristicDropper::Params{2, 1e9});
  dropper.run(sandbox.view(), sandbox);
  EXPECT_TRUE(sandbox.dropped.empty());
}

TEST(HeuristicDropper, BetaGatesMarginalGains) {
  const PetMatrix pet = dropper_pet();
  // Head "coin" task (delta=3): chance 0.5. Two small successors with
  // deadlines 4 and 5: each has chance 0.5 behind the coin, 1.0 without it.
  // Eq. 8: gain 2.0 vs beta * keep 1.5 -> drops at beta=1, not at beta=1.5.
  for (const double beta : {1.0, 1.5}) {
    SystemSandbox sandbox(pet, {0}, 6);
    sandbox.enqueue(0, 3, 3);
    sandbox.enqueue(0, 1, 4);
    sandbox.enqueue(0, 1, 5);
    ProactiveHeuristicDropper dropper(
        ProactiveHeuristicDropper::Params{2, beta});
    dropper.run(sandbox.view(), sandbox);
    if (beta == 1.0) {
      EXPECT_EQ(sandbox.dropped.size(), 1u) << "beta " << beta;
    } else {
      EXPECT_TRUE(sandbox.dropped.empty()) << "beta " << beta;
    }
  }
}

TEST(HeuristicDropper, EffectiveDepthOneMissesDeeperGains) {
  const PetMatrix pet = dropper_pet();
  // Head: medium task (5 ticks, deadline 4 -> own chance 0, still occupies
  // the machine until 5). Successor 1 (deadline 7) succeeds either way;
  // successor 2 (deadline 3) succeeds only if the head is dropped.
  // eta=1 sees no gain; eta=2 sees it (the paper's Fig. 5 argument for
  // eta=1 being "not effective").
  for (const int eta : {1, 2}) {
    SystemSandbox sandbox(pet, {0}, 6);
    sandbox.enqueue(0, 2, 4);
    sandbox.enqueue(0, 1, 7);
    sandbox.enqueue(0, 1, 3);
    ProactiveHeuristicDropper dropper(
        ProactiveHeuristicDropper::Params{eta, 1.0});
    dropper.run(sandbox.view(), sandbox);
    if (eta == 1) {
      EXPECT_TRUE(sandbox.dropped.empty()) << "eta " << eta;
    } else {
      EXPECT_EQ(sandbox.dropped.size(), 1u) << "eta " << eta;
    }
  }
}

TEST(HeuristicDropper, SinglePassReexaminesShiftedPosition) {
  const PetMatrix pet = dropper_pet();
  SystemSandbox sandbox(pet, {0}, 6);
  // Two risky coin tasks (deadline 3: each succeeds with 0.5 alone, dooms
  // everything behind it on the slow branch) ahead of two certain smalls.
  // Dropping the first coin is worthwhile; the second coin then shifts into
  // the examined position and must be evaluated — and dropped — in the same
  // pass.
  sandbox.enqueue(0, 3, 3);
  sandbox.enqueue(0, 3, 3);
  sandbox.enqueue(0, 1, 4);
  sandbox.enqueue(0, 1, 5);
  ProactiveHeuristicDropper dropper;
  dropper.run(sandbox.view(), sandbox);
  EXPECT_EQ(sandbox.dropped.size(), 2u);
  EXPECT_EQ(sandbox.machine(0).queue.size(), 2u);
  EXPECT_NEAR(sandbox.model(0).instantaneous_robustness(), 2.0, 1e-12);
}

TEST(HeuristicDropper, SecondRunOnUnchangedQueueIsIdempotent) {
  const PetMatrix pet = dropper_pet();
  SystemSandbox sandbox(pet, {0}, 6);
  sandbox.enqueue(0, 0, 5);
  sandbox.enqueue(0, 1, 3);
  sandbox.enqueue(0, 1, 4);
  ProactiveHeuristicDropper dropper;
  dropper.run(sandbox.view(), sandbox);
  const std::size_t after_first = sandbox.dropped.size();
  dropper.run(sandbox.view(), sandbox);
  EXPECT_EQ(sandbox.dropped.size(), after_first);
}

TEST(HeuristicDropper, FreshDropperReachesSameFixpoint) {
  // The version-skip memoisation must not change decisions: a brand-new
  // dropper (no memo) on the post-pass queue finds nothing to drop either.
  const PetMatrix pet = dropper_pet();
  SystemSandbox sandbox(pet, {0}, 6);
  sandbox.enqueue(0, 0, 5);
  sandbox.enqueue(0, 3, 6);
  sandbox.enqueue(0, 1, 3);
  sandbox.enqueue(0, 1, 4);
  ProactiveHeuristicDropper first;
  first.run(sandbox.view(), sandbox);
  const std::size_t dropped = sandbox.dropped.size();
  ProactiveHeuristicDropper fresh;
  fresh.run(sandbox.view(), sandbox);
  EXPECT_EQ(sandbox.dropped.size(), dropped);
}

TEST(HeuristicDropper, NoDropsWhenEveryTaskIsCertain) {
  const PetMatrix pet = dropper_pet();
  SystemSandbox sandbox(pet, {0}, 6);
  for (int i = 0; i < 5; ++i) {
    sandbox.enqueue(0, /*type=*/1, /*deadline=*/100 + i);
  }
  ProactiveHeuristicDropper dropper;
  dropper.run(sandbox.view(), sandbox);
  EXPECT_TRUE(sandbox.dropped.empty());
}

TEST(HeuristicDropper, WindowClampsWhenFewerSuccessorsThanEta) {
  const PetMatrix pet = dropper_pet();
  SystemSandbox sandbox(pet, {0}, 6);
  sandbox.enqueue(0, 0, 5);  // hopeless head
  sandbox.enqueue(0, 1, 3);  // single successor
  ProactiveHeuristicDropper dropper(ProactiveHeuristicDropper::Params{5, 1.0});
  dropper.run(sandbox.view(), sandbox);
  EXPECT_EQ(sandbox.dropped.size(), 1u);
}

TEST(HeuristicDropper, MultiMachinePassCoversAllQueues) {
  const PetMatrix pet = dropper_pet();
  SystemSandbox sandbox(pet, {0, 0}, 6);
  sandbox.enqueue(0, 0, 5);
  sandbox.enqueue(0, 1, 3);
  sandbox.enqueue(0, 1, 4);
  sandbox.enqueue(1, 0, 5);
  sandbox.enqueue(1, 1, 3);
  sandbox.enqueue(1, 1, 4);
  ProactiveHeuristicDropper dropper;
  dropper.run(sandbox.view(), sandbox);
  EXPECT_EQ(sandbox.dropped.size(), 2u);
  EXPECT_EQ(sandbox.machine(0).queue.size(), 2u);
  EXPECT_EQ(sandbox.machine(1).queue.size(), 2u);
}

TEST(NullDropper, NeverDropsAnything) {
  const PetMatrix pet = dropper_pet();
  SystemSandbox sandbox(pet, {0}, 6);
  sandbox.enqueue(0, 0, 2);  // hopeless
  sandbox.enqueue(0, 1, 3);
  NullDropper dropper;
  dropper.run(sandbox.view(), sandbox);
  EXPECT_TRUE(sandbox.dropped.empty());
  EXPECT_EQ(dropper.name(), "ReactDrop");
}

}  // namespace
}  // namespace taskdrop
