#include "core/sandbox.hpp"

#include <gtest/gtest.h>

#include "core/robustness.hpp"
#include "test_util.hpp"

namespace taskdrop {
namespace {

using test::pet_of;

PetMatrix small_pet() { return pet_of({{{{2, 1.0}}}, {{{1, 0.6}, {2, 0.4}}}}); }

TEST(Sandbox, EnqueueBuildsConsistentState) {
  const PetMatrix pet = small_pet();
  SystemSandbox sandbox(pet, {0, 0}, 4, /*now=*/5);
  const TaskId a = sandbox.enqueue(0, 0, 100);
  const TaskId b = sandbox.enqueue(1, 1, 200, /*arrival=*/3);
  EXPECT_EQ(sandbox.machine(0).queue.size(), 1u);
  EXPECT_EQ(sandbox.machine(1).queue.size(), 1u);
  EXPECT_EQ(sandbox.task(a).state, TaskState::Queued);
  EXPECT_EQ(sandbox.task(a).machine, 0);
  EXPECT_EQ(sandbox.task(b).arrival, 3);
  EXPECT_EQ(sandbox.view().now, 5);
}

TEST(Sandbox, AssignMovesFromBatchToQueue) {
  const PetMatrix pet = small_pet();
  SystemSandbox sandbox(pet, {0}, 4);
  const TaskId task = sandbox.add_unmapped(0, 0, 100);
  EXPECT_EQ(sandbox.view().batch_queue->size(), 1u);
  sandbox.assign_task(task, 0);
  EXPECT_TRUE(sandbox.view().batch_queue->empty());
  EXPECT_EQ(sandbox.machine(0).queue.front(), task);
  ASSERT_EQ(sandbox.assigned.size(), 1u);
  EXPECT_EQ(sandbox.assigned.front().first, task);
}

TEST(Sandbox, DropRecordsAndRemoves) {
  const PetMatrix pet = small_pet();
  SystemSandbox sandbox(pet, {0}, 4);
  sandbox.enqueue(0, 0, 100);
  const TaskId victim = sandbox.enqueue(0, 0, 200);
  sandbox.drop_queued_task(0, 1);
  EXPECT_EQ(sandbox.machine(0).queue.size(), 1u);
  EXPECT_EQ(sandbox.task(victim).state, TaskState::DroppedProactive);
  ASSERT_EQ(sandbox.dropped.size(), 1u);
  EXPECT_EQ(sandbox.dropped.front(), victim);
}

TEST(Sandbox, SetRunningPinsTheHead) {
  const PetMatrix pet = small_pet();
  SystemSandbox sandbox(pet, {0}, 4);
  const TaskId head = sandbox.enqueue(0, 0, 100);
  sandbox.set_running(0, /*run_start=*/7);
  EXPECT_TRUE(sandbox.machine(0).running);
  EXPECT_EQ(sandbox.machine(0).run_start, 7);
  EXPECT_EQ(sandbox.task(head).state, TaskState::Running);
  EXPECT_EQ(sandbox.machine(0).first_pending_pos(), 1u);
}

TEST(Sandbox, SetNowPropagatesToModelsAndView) {
  const PetMatrix pet = small_pet();
  SystemSandbox sandbox(pet, {0}, 4, /*now=*/0);
  sandbox.set_now(42);
  EXPECT_EQ(sandbox.view().now, 42);
  // An empty machine's tail is "free now".
  EXPECT_EQ(sandbox.model(0).tail(), Pmf::delta(42));
}

TEST(SystemRobustness, SumsOverAllMachines) {
  const PetMatrix pet = small_pet();
  SystemSandbox sandbox(pet, {0, 0}, 4);
  sandbox.enqueue(0, 0, 100);   // chance 1
  sandbox.enqueue(1, 1, 2);     // chance: finish {1,2} < 2 -> 0.6
  const double expected =
      sandbox.model(0).instantaneous_robustness() +
      sandbox.model(1).instantaneous_robustness();
  EXPECT_NEAR(system_instantaneous_robustness(sandbox.view()), expected,
              1e-12);
  EXPECT_NEAR(expected, 1.6, 1e-12);
}

}  // namespace
}  // namespace taskdrop
