// Edge-case behaviour of the discrete-event engine: degenerate capacities,
// simultaneous events, single-machine systems, conditioning.
#include <gtest/gtest.h>

#include "core/null_dropper.hpp"
#include "core/proactive_heuristic_dropper.hpp"
#include "sched/pam.hpp"
#include "sched/registry.hpp"
#include "sim/engine.hpp"
#include "test_util.hpp"
#include "workload/generator.hpp"
#include "workload/scenario.hpp"

namespace taskdrop {
namespace {

using test::pet_of;

PetMatrix deterministic_pet() { return pet_of({{{{5, 1.0}}}}); }

SimResult run_simple(const PetMatrix& pet, const Trace& trace,
                     std::vector<MachineTypeId> machines, int capacity,
                     EngineConfig config = EngineConfig{}) {
  auto mapper = make_mapper("FCFS");
  NullDropper dropper;
  config.queue_capacity = capacity;
  Engine engine(pet, std::move(machines), *mapper, dropper, config);
  return engine.run(trace);
}

TEST(EngineEdge, CapacityOneSerialisesEverything) {
  const PetMatrix pet = deterministic_pet();
  Trace trace;
  for (int i = 0; i < 5; ++i) trace.push_back(TaskSpec{0, 0, 1000});
  const SimResult result = run_simple(pet, trace, {0}, 1);
  EXPECT_EQ(result.counts().completed_on_time, 5);
  // With capacity 1 a task is only mapped when the machine is idle; each
  // runs back-to-back.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(result.tasks[static_cast<std::size_t>(i)].finish_time,
              5 * (i + 1));
  }
}

TEST(EngineEdge, SimultaneousArrivalsKeepTraceOrderUnderFcfs) {
  const PetMatrix pet = deterministic_pet();
  Trace trace;
  for (int i = 0; i < 6; ++i) trace.push_back(TaskSpec{0, 7, 1000});
  const SimResult result = run_simple(pet, trace, {0}, 6);
  // All six arrive at tick 7 and run in trace order.
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(result.tasks[static_cast<std::size_t>(i)].start_time,
              7 + 5 * i);
  }
}

TEST(EngineEdge, ManyMachinesRunInParallel) {
  const PetMatrix pet = deterministic_pet();
  Trace trace;
  for (int i = 0; i < 4; ++i) trace.push_back(TaskSpec{0, 0, 1000});
  const SimResult result = run_simple(pet, trace, {0, 0, 0, 0}, 6);
  for (const Task& task : result.tasks) {
    EXPECT_EQ(task.start_time, 0);
    EXPECT_EQ(task.finish_time, 5);
  }
  EXPECT_EQ(result.makespan, 5);
}

TEST(EngineEdge, ZeroSlackTaskIsDroppedNotStarted) {
  const PetMatrix pet = deterministic_pet();
  // Deadline = arrival + 1 is startable; deadline == arrival would be
  // invalid per the trace contract, so probe the tightest legal case.
  const Trace trace = {{0, 10, 11}};
  const SimResult result = run_simple(pet, trace, {0}, 2);
  // Starts at 10 (< 11), finishes at 15 >= 11: late, not dropped.
  EXPECT_EQ(result.tasks[0].state, TaskState::CompletedLate);
}

TEST(EngineEdge, ConditioningChangesModelNotOutcome) {
  // With deterministic executions, conditioning the running PMF must not
  // change any ground-truth outcome (it only refines scheduler beliefs).
  const PetMatrix pet = deterministic_pet();
  Trace trace;
  for (int i = 0; i < 10; ++i) trace.push_back(TaskSpec{0, 2 * i, 40 + i});
  EngineConfig conditioned;
  conditioned.condition_running = true;
  const SimResult a = run_simple(pet, trace, {0}, 3, conditioned);
  const SimResult b = run_simple(pet, trace, {0}, 3);
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    EXPECT_EQ(a.tasks[i].state, b.tasks[i].state) << i;
  }
}

TEST(EngineEdge, ConditionedStochasticRunStillConserves) {
  const Scenario scenario = make_scenario(ScenarioKind::SpecHC, 31);
  WorkloadConfig workload;
  workload.n_tasks = 200;
  workload.oversubscription = 3.0;
  workload.seed = 31;
  const Trace trace =
      generate_trace(scenario.pet, scenario.machine_count(), workload);
  auto mapper = make_mapper("PAM");
  ProactiveHeuristicDropper dropper;
  EngineConfig config;
  config.condition_running = true;
  Engine engine(scenario.pet, scenario.profile.machine_types, *mapper, dropper,
                config);
  const SimResult result = engine.run(trace);
  EXPECT_EQ(result.counts().total(), 200);
}

TEST(EngineEdge, HugeQueueCapacityStillDrains) {
  const Scenario scenario = make_scenario(ScenarioKind::SpecHC, 32);
  WorkloadConfig workload;
  workload.n_tasks = 200;
  workload.oversubscription = 2.0;
  workload.seed = 32;
  const Trace trace =
      generate_trace(scenario.pet, scenario.machine_count(), workload);
  auto mapper = make_mapper("MM");
  ProactiveHeuristicDropper dropper;
  EngineConfig config;
  config.queue_capacity = 64;
  Engine engine(scenario.pet, scenario.profile.machine_types, *mapper, dropper,
                config);
  const SimResult result = engine.run(trace);
  EXPECT_EQ(result.counts().total(), 200);
}

TEST(EngineEdge, ExtraMappersSurviveOversubscribedRuns) {
  const Scenario scenario = make_scenario(ScenarioKind::SpecHC, 33);
  WorkloadConfig workload;
  workload.n_tasks = 200;
  workload.oversubscription = 3.0;
  workload.seed = 33;
  const Trace trace =
      generate_trace(scenario.pet, scenario.machine_count(), workload);
  for (const std::string name : {"MaxMin", "MET", "RR", "PAMD"}) {
    auto mapper = make_mapper(name);
    ProactiveHeuristicDropper dropper;
    Engine engine(scenario.pet, scenario.profile.machine_types, *mapper,
                  dropper, EngineConfig{});
    const SimResult result = engine.run(trace);
    EXPECT_EQ(result.counts().total(), 200) << name;
    EXPECT_GT(result.counts().completed_on_time, 0) << name;
  }
}

TEST(EngineEdge, BurstyArrivalsAreHarderThanPoissonWithoutDropping) {
  const Scenario scenario = make_scenario(ScenarioKind::SpecHC, 34);
  auto run_pattern = [&](ArrivalPattern pattern) {
    double total = 0.0;
    for (std::uint64_t trial = 0; trial < 4; ++trial) {
      WorkloadConfig workload;
      workload.n_tasks = 500;
      workload.oversubscription = 2.0;
      workload.pattern = pattern;
      workload.seed = 34 + trial;
      const Trace trace =
          generate_trace(scenario.pet, scenario.machine_count(), workload);
      auto mapper = make_mapper("MM");
      NullDropper dropper;
      Engine engine(scenario.pet, scenario.profile.machine_types, *mapper,
                    dropper, EngineConfig{});
      total += engine.run(trace).robustness_pct();
    }
    return total / 4.0;
  };
  // Bursts concentrate load: robustness should not be better than Poisson.
  EXPECT_LE(run_pattern(ArrivalPattern::Bursty),
            run_pattern(ArrivalPattern::Poisson) + 2.0);
}

TEST(EngineEdge, DeferringMapperCannotStrandBatchTasks) {
  // A deferring mapper (PAMD) refuses to map a task whose best chance of
  // success is below its threshold. With a defer threshold no queue can
  // satisfy, the only arrival event would leave the task in the batch
  // queue forever; the engine's drain-time wakeup must instead expire it
  // reactively at its deadline.
  const PetMatrix pet = deterministic_pet();  // always takes 5 ticks
  Trace trace;
  trace.push_back(TaskSpec{0, 0, 1000});
  PamMapper mapper(/*candidate_window=*/256, /*defer_threshold=*/1.1);
  NullDropper dropper;
  Engine engine(pet, {0}, mapper, dropper, EngineConfig{});
  const SimResult result = engine.run(trace);
  ASSERT_EQ(result.counts().total(), 1);
  EXPECT_EQ(result.tasks[0].state, TaskState::DroppedReactive);
  EXPECT_EQ(result.tasks[0].drop_time, 1000);
  EXPECT_EQ(result.makespan, 1000);
}

}  // namespace
}  // namespace taskdrop
