// Deeper property sweeps over the probabilistic model: relationships the
// mathematics guarantees for arbitrary queues, deadlines and PMF shapes.
#include <gtest/gtest.h>

#include "core/sandbox.hpp"
#include "pet/pet_builder.hpp"
#include "prob/convolution.hpp"
#include "test_util.hpp"

namespace taskdrop {
namespace {

class ModelProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  PetMatrix random_pet(Rng& rng, int task_types) {
    PetMatrix pet(task_types, 1);
    for (int t = 0; t < task_types; ++t) {
      std::vector<std::pair<Tick, double>> impulses;
      const int n = static_cast<int>(rng.uniform_int(1, 6));
      for (int i = 0; i < n; ++i) {
        impulses.emplace_back(rng.uniform_int(1, 15), rng.uniform(0.1, 1.0));
      }
      Pmf pmf = Pmf::from_impulses(std::move(impulses));
      pmf.normalize();
      pet.set(t, 0, std::move(pmf));
    }
    pet.freeze();
    return pet;
  }
};

// Convolution is associative up to floating-point noise; queue chains do
// not depend on evaluation grouping.
TEST_P(ModelProperty, ConvolutionIsAssociative) {
  Rng rng(GetParam());
  const PetMatrix pet = random_pet(rng, 3);
  const Pmf& a = pet.pmf(0, 0);
  const Pmf& b = pet.pmf(1, 0);
  const Pmf& c = pet.pmf(2, 0);
  const Pmf left = convolve(convolve(a, b), c);
  const Pmf right = convolve(a, convolve(b, c));
  ASSERT_EQ(left.min_time(), right.min_time());
  ASSERT_EQ(left.max_time(), right.max_time());
  for (std::size_t i = 0; i < left.size(); ++i) {
    ASSERT_NEAR(left.prob_at_index(i), right.prob_at_index(i), 1e-9);
  }
}

// Relaxing a deadline can only increase the chance of success and can only
// shift completion mass earlier or keep it (monotonicity of Eq. 1 in
// delta).
TEST_P(ModelProperty, ChanceIsMonotoneInDeadline) {
  Rng rng(GetParam());
  const PetMatrix pet = random_pet(rng, 1);
  const Pmf pred = convolve(Pmf::delta(rng.uniform_int(0, 5)), pet.pmf(0, 0));
  double prev = -1.0;
  for (Tick deadline = pred.min_time() - 2; deadline <= pred.max_time() + 20;
       ++deadline) {
    const Pmf completion = deadline_convolve(pred, pet.pmf(0, 0), deadline);
    const double chance = completion.mass_before(deadline);
    // Chance of success is non-decreasing in the deadline slack.
    ASSERT_GE(chance + 1e-12, prev) << "deadline " << deadline;
    prev = chance;
  }
  // ...and reaches the untruncated value once the deadline clears the whole
  // start-time support.
  const Tick loose = pred.max_time() + pet.pmf(0, 0).max_time() + 1;
  const Pmf untruncated = convolve(pred, pet.pmf(0, 0));
  ASSERT_NEAR(deadline_convolve(pred, pet.pmf(0, 0), loose).mass_before(loose),
              untruncated.mass_before(loose), 1e-9);
}

// The model's chance for a queue position equals the chance computed by an
// independent chain rebuilt from scratch (cache transparency).
TEST_P(ModelProperty, CachedChancesMatchFreshChains) {
  Rng rng(GetParam());
  const PetMatrix pet = random_pet(rng, 4);
  SystemSandbox sandbox(pet, {0}, 10);
  const int depth = static_cast<int>(rng.uniform_int(2, 8));
  for (int i = 0; i < depth; ++i) {
    sandbox.enqueue(0, static_cast<TaskTypeId>(rng.uniform_int(0, 3)),
                    rng.uniform_int(2, 60));
  }
  // Mutate a bit: drop a random pending task, enqueue another.
  if (depth > 2) {
    sandbox.drop_queued_task(
        0, static_cast<std::size_t>(rng.uniform_int(0, depth - 2)));
  }
  sandbox.enqueue(0, 0, rng.uniform_int(5, 60));

  CompletionModel& model = sandbox.model(0);
  const Machine& machine = sandbox.machine(0);
  Pmf chain = Pmf::delta(0);
  for (std::size_t pos = 0; pos < machine.queue.size(); ++pos) {
    const Task& task =
        sandbox.task(machine.queue[pos]);
    chain = deadline_convolve(chain, pet.pmf(task.type, 0), task.deadline);
    ASSERT_NEAR(model.chance(pos), chain.mass_before(task.deadline), 1e-9)
        << "position " << pos;
  }
}

// Downgrading a task to its (faster) approximate variant never lowers the
// task's *own* chance of success: the start-time distribution is unchanged
// and the execution time is stochastically smaller.
//
// Note what is deliberately NOT asserted: downgrading can *hurt* successors.
// A full-quality task that would miss its start deadline vanishes as a
// reactive drop (Eq. 1 pass-through — the successor starts at the
// predecessor's completion), whereas its faster approximate variant may now
// start in time and occupy the machine. The ApproxDropper's window utility
// (which this suite exercises end-to-end elsewhere) accounts for exactly
// this interaction; a per-successor monotonicity claim would be false.
TEST_P(ModelProperty, DowngradeNeverHurtsTheTaskItself) {
  Rng rng(GetParam());
  const PetMatrix pet = random_pet(rng, 3);
  const PetMatrix approx = scaled_pet(pet, 0.5);
  CompletionModel::Options options;
  options.approx_pet = &approx;
  SystemSandbox sandbox(pet, {0}, 10, 0, options);
  const int depth = static_cast<int>(rng.uniform_int(3, 7));
  for (int i = 0; i < depth; ++i) {
    sandbox.enqueue(0, static_cast<TaskTypeId>(rng.uniform_int(0, 2)),
                    rng.uniform_int(3, 50));
  }
  CompletionModel& model = sandbox.model(0);
  const auto victim = static_cast<std::size_t>(rng.uniform_int(0, depth - 2));
  const double own_before = model.chance(victim);
  sandbox.downgrade_task(0, victim);
  ASSERT_GE(model.chance(victim) + 1e-9, own_before);
}

// scale_time(1.0) is the identity on lattice-aligned PMFs, and the mean
// scales roughly with the factor.
TEST_P(ModelProperty, ScaleTimeBehavesLikeTimeScaling) {
  Rng rng(GetParam());
  const PetMatrix pet = random_pet(rng, 1);
  const Pmf& pmf = pet.pmf(0, 0);
  ASSERT_EQ(pmf.scale_time(1.0), pmf);
  const Pmf half = pmf.scale_time(0.5);
  ASSERT_NEAR(half.total_mass(), 1.0, 1e-12);
  // Rounding and the one-stride clamp allow modest deviation.
  ASSERT_NEAR(half.mean(), pmf.mean() * 0.5, 0.5 + pmf.mean() * 0.1);
  ASSERT_LE(half.max_time(), pmf.max_time());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelProperty,
                         ::testing::Range<std::uint64_t>(50, 70));

}  // namespace
}  // namespace taskdrop
