#include <gtest/gtest.h>

#include "cost/cost_model.hpp"
#include "metrics/aggregate.hpp"
#include "metrics/report.hpp"
#include "util/stats.hpp"

namespace taskdrop {
namespace {

/// Builds a SimResult by hand: n tasks in the given states, one machine of
/// each listed type with the given busy times.
SimResult make_result(const std::vector<TaskState>& states,
                      std::vector<Tick> busy,
                      std::vector<MachineTypeId> types) {
  SimResult result;
  for (std::size_t i = 0; i < states.size(); ++i) {
    Task task;
    task.id = static_cast<TaskId>(i);
    task.state = states[i];
    // Mark queue-level drops as mapped; batch expiries stay machine = -1.
    if (states[i] != TaskState::DroppedReactive || i % 2 == 0) {
      task.machine = 0;
    }
    result.tasks.push_back(task);
  }
  result.busy_ticks = std::move(busy);
  result.machine_types = std::move(types);
  return result;
}

TEST(CostModel, TotalCostIsBusyTimeTimesRate) {
  // 2 machines: type 0 at $3.6/h, type 1 at $7.2/h. One hour = 3.6e6 ticks.
  const CostModel model({3.6, 7.2});
  SimResult result = make_result({}, {3600000, 1800000}, {0, 1});
  // 1 h * 3.6 + 0.5 h * 7.2 = 7.2 dollars.
  EXPECT_NEAR(total_cost(model, result), 7.2, 1e-9);
  EXPECT_NEAR(model.busy_cost(result.busy_ticks, result.machine_types), 7.2,
              1e-9);
  EXPECT_DOUBLE_EQ(model.rate(1), 7.2);
}

TEST(CostModel, CostPerRobustnessNormalisesByOnTimeFraction) {
  const CostModel model({3.6});
  // 4 tasks, 2 on time -> robustness 50 %.
  SimResult result = make_result(
      {TaskState::CompletedOnTime, TaskState::CompletedOnTime,
       TaskState::CompletedLate, TaskState::CompletedLate},
      {3600000}, {0});
  EXPECT_NEAR(result.robustness_pct(0, 0), 50.0, 1e-12);
  EXPECT_NEAR(cost_per_robustness(model, result, 0, 0), 3.6 / 0.5, 1e-9);
}

TEST(CostModel, ZeroRobustnessYieldsZeroNormalisedCost) {
  const CostModel model({1.0});
  SimResult result =
      make_result({TaskState::CompletedLate}, {1000}, {0});
  EXPECT_DOUBLE_EQ(cost_per_robustness(model, result, 0, 0), 0.0);
}

TEST(SimResult, WindowExclusionClampsWhenTraceIsShort) {
  SimResult result = make_result(
      {TaskState::CompletedOnTime, TaskState::CompletedLate}, {0}, {0});
  // 100+100 exclusion on 2 tasks: fall back to the whole trace.
  EXPECT_NEAR(result.robustness_pct(100, 100), 50.0, 1e-12);
}

TEST(SimResult, WindowExclusionDropsHeadAndTail) {
  std::vector<TaskState> states(10, TaskState::CompletedLate);
  states[0] = TaskState::CompletedOnTime;   // excluded head
  states[9] = TaskState::CompletedOnTime;   // excluded tail
  states[5] = TaskState::CompletedOnTime;   // counted
  SimResult result = make_result(states, {0}, {0});
  // Window = tasks 1..8 (8 tasks), one on time.
  EXPECT_NEAR(result.robustness_pct(1, 1), 100.0 / 8.0, 1e-12);
}

TEST(SimResult, ReactiveShareCountsQueueDropsOnly) {
  // Indices: 0 queue-reactive (machine 0), 1 batch expiry (machine -1),
  // 2 proactive, 3 on-time.
  SimResult result = make_result(
      {TaskState::DroppedReactive, TaskState::DroppedReactive,
       TaskState::DroppedProactive, TaskState::CompletedOnTime},
      {0}, {0});
  const SimCounts counts = result.counts();
  EXPECT_EQ(counts.dropped_reactive_queued, 1);
  EXPECT_EQ(counts.expired_unmapped, 1);
  EXPECT_EQ(counts.dropped_proactive, 1);
  // Of the 2 queue-level drops, 1 was reactive.
  EXPECT_NEAR(result.reactive_drop_share_pct(0, 0), 50.0, 1e-12);
}

TEST(SimResult, ReactiveShareZeroWhenNoQueueDrops) {
  SimResult result = make_result({TaskState::CompletedOnTime}, {0}, {0});
  EXPECT_DOUBLE_EQ(result.reactive_drop_share_pct(0, 0), 0.0);
}

TEST(Aggregate, TrialMetricsExtractEverything) {
  const CostModel model({3.6});
  SimResult result = make_result(
      {TaskState::CompletedOnTime, TaskState::DroppedProactive},
      {3600000}, {0});
  const TrialMetrics metrics = compute_trial_metrics(result, model, 0, 0);
  EXPECT_NEAR(metrics.robustness_pct, 50.0, 1e-12);
  EXPECT_NEAR(metrics.total_cost, 3.6, 1e-9);
  EXPECT_NEAR(metrics.normalized_cost, 7.2, 1e-9);
  EXPECT_EQ(metrics.completed_on_time, 1);
  EXPECT_EQ(metrics.dropped_proactive, 1);
}

TEST(Aggregate, SummarizeMatchesStats) {
  const std::vector<double> xs = {40.0, 42.0, 44.0, 46.0};
  const Summary summary = summarize(xs);
  EXPECT_NEAR(summary.mean, mean(xs), 1e-12);
  EXPECT_NEAR(summary.ci95, ci95_halfwidth(xs), 1e-12);
}

TEST(Aggregate, SeriesExtractsField) {
  std::vector<TrialMetrics> trials(3);
  trials[0].robustness_pct = 1.0;
  trials[1].robustness_pct = 2.0;
  trials[2].robustness_pct = 3.0;
  const std::vector<double> xs = series(trials, &TrialMetrics::robustness_pct);
  EXPECT_EQ(xs, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(Report, FormatSummary) {
  EXPECT_EQ(format_summary(Summary{42.5, 1.25}, 2), "42.50 +/- 1.25");
}

TEST(Report, AddSummaryRow) {
  Table table({"label", "mean", "ci95"});
  add_summary_row(table, "PAM", Summary{46.0, 1.5});
  ASSERT_EQ(table.row_count(), 1u);
  EXPECT_EQ(table.rows()[0][0], "PAM");
  EXPECT_EQ(table.rows()[0][1], "46.00");
  EXPECT_EQ(table.rows()[0][2], "1.50");
}

}  // namespace
}  // namespace taskdrop
