#include "util/spec_parser.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace taskdrop {
namespace {

TEST(SpecParser, ParsesKeyValueLinesWithCommentsAndLists) {
  const SpecMap map = parse_spec_text(
      "# a sweep\n"
      "scenario = spec_hc\n"
      "mapper   = PAM, MM   # trailing comment\n"
      "dropper  = [optimal, heuristic, threshold]\n"
      "\n"
      "trials = 8\n");
  EXPECT_EQ(map.at("scenario"), (std::vector<std::string>{"spec_hc"}));
  EXPECT_EQ(map.at("mapper"), (std::vector<std::string>{"PAM", "MM"}));
  EXPECT_EQ(map.at("dropper"),
            (std::vector<std::string>{"optimal", "heuristic", "threshold"}));
  EXPECT_EQ(map.at("trials"), (std::vector<std::string>{"8"}));
}

TEST(SpecParser, RepeatedKeysAppend) {
  const SpecMap map = parse_spec_text("eta = 1, 2\neta = 3\n");
  EXPECT_EQ(map.at("eta"), (std::vector<std::string>{"1", "2", "3"}));
}

TEST(SpecParser, ParsesJsonObjects) {
  const SpecMap map = parse_spec_text(
      R"({"scenario": "spec_hc", "mapper": ["PAM", "MM"],
          "oversub": [2.5, 3.0], "trials": 8, "adaptive": true})");
  EXPECT_EQ(map.at("scenario"), (std::vector<std::string>{"spec_hc"}));
  EXPECT_EQ(map.at("mapper"), (std::vector<std::string>{"PAM", "MM"}));
  EXPECT_EQ(map.at("oversub"), (std::vector<std::string>{"2.5", "3.0"}));
  EXPECT_EQ(map.at("trials"), (std::vector<std::string>{"8"}));
  EXPECT_EQ(map.at("adaptive"), (std::vector<std::string>{"true"}));
}

TEST(SpecParser, JsonHandlesEmptyObjectAndEscapes) {
  EXPECT_TRUE(parse_spec_text("{}").empty());
  const SpecMap map = parse_spec_text(R"({"name": "fig \"8\""})");
  EXPECT_EQ(map.at("name"), (std::vector<std::string>{"fig \"8\""}));
}

TEST(SpecParser, RoundTripsThroughCanonicalText) {
  const SpecMap original = {
      {"dropper", {"optimal", "heuristic"}},
      {"levels", {"20k:2000:2.5", "30k:3000:3.0"}},
      {"seed", {"42"}},
  };
  EXPECT_EQ(parse_spec_text(spec_to_text(original)), original);
}

TEST(SpecParser, SplitsInlineLists) {
  EXPECT_EQ(split_spec_list("a, b ,c"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split_spec_list("[x, y]"), (std::vector<std::string>{"x", "y"}));
  EXPECT_EQ(split_spec_list("solo"), (std::vector<std::string>{"solo"}));
  EXPECT_TRUE(split_spec_list("  ").empty());
}

TEST(SpecParser, RejectsMalformedInput) {
  EXPECT_THROW(parse_spec_text("no equals sign"), std::invalid_argument);
  EXPECT_THROW(parse_spec_text("= value\n"), std::invalid_argument);
  EXPECT_THROW(parse_spec_text("key =   # nothing\n"), std::invalid_argument);
  EXPECT_THROW(parse_spec_text("{\"unterminated\": \"str"),
               std::invalid_argument);
  EXPECT_THROW(parse_spec_text("{\"a\": 1} trailing"), std::invalid_argument);
  EXPECT_THROW(parse_spec_file("/nonexistent/path.sweep"),
               std::runtime_error);
}

}  // namespace
}  // namespace taskdrop
