#include "util/audit.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/completion_model.hpp"
#include "core/proactive_heuristic_dropper.hpp"
#include "online/online_scheduler.hpp"
#include "sched/registry.hpp"
#include "sim/engine.hpp"
#include "sim/expiry_heap.hpp"
#include "sim/machine.hpp"
#include "test_util.hpp"

namespace taskdrop {
namespace {

using test::pet_of;

/// Restores the audit sampling interval a test overrode, so the rest of
/// the (possibly audited) suite keeps running at the configured density.
class IntervalGuard {
 public:
  IntervalGuard() : saved_(audit::interval()) {}
  ~IntervalGuard() { audit::set_interval_for_testing(saved_); }

 private:
  std::uint64_t saved_;
};

TEST(Audit, DueGateMatchesBuildMode) {
  std::uint64_t counter = 0;
  if constexpr (audit::kEnabled) {
    IntervalGuard guard;
    audit::set_interval_for_testing(3);
    int fired = 0;
    for (int i = 0; i < 9; ++i) fired += audit::due(counter) ? 1 : 0;
    EXPECT_EQ(fired, 3);
    audit::set_interval_for_testing(1);
    EXPECT_TRUE(audit::due(counter));
  } else {
    // Normal builds: the gate folds to constant false, whatever the count.
    for (int i = 0; i < 9; ++i) EXPECT_FALSE(audit::due(counter));
  }
}

TEST(Audit, ZeroTestingIntervalClampsToEveryCall) {
  if constexpr (!audit::kEnabled) GTEST_SKIP() << "needs TASKDROP_AUDIT";
  IntervalGuard guard;
  audit::set_interval_for_testing(0);
  EXPECT_EQ(audit::interval(), 1u);
}

TEST(Audit, FailThrowsLogicError) {
  EXPECT_THROW(audit::fail("synthetic breach"), std::logic_error);
}

TEST(ExpiryHeap, PopsInDeadlineOrderWithIdTieBreak) {
  ExpiryHeap heap;
  heap.push(30, 0);
  heap.push(10, 2);
  heap.push(10, 1);
  heap.push(20, 3);
  std::vector<ExpiryHeap::Entry> popped;
  while (!heap.empty()) {
    popped.push_back(heap.top());
    heap.pop();
  }
  const std::vector<ExpiryHeap::Entry> expected = {
      {10, 1}, {10, 2}, {20, 3}, {30, 0}};
  EXPECT_EQ(popped, expected);
}

TEST(ExpiryHeap, IntrospectionSeesEveryEntry) {
  ExpiryHeap heap;
  heap.push(5, 7);
  heap.push(3, 9);
  heap.push(8, 1);
  EXPECT_EQ(heap.size(), 3u);
  EXPECT_TRUE(heap.is_heap());
  EXPECT_TRUE(heap.contains(3, 9));
  EXPECT_TRUE(heap.contains(8, 1));
  EXPECT_FALSE(heap.contains(3, 7));
  EXPECT_FALSE(heap.contains(4, 9));
  heap.clear();
  EXPECT_TRUE(heap.empty());
  EXPECT_FALSE(heap.contains(3, 9));
}

TEST(Audit, DownMachineChainRebasesWhenTimeAdvances) {
  // Regression for a staleness bug the chain auditor surfaced under
  // failure injection: a machine held down by a failure keeps queued tasks
  // while not running, and set_now used to leave its cached chain rooted
  // at the old base delta(now). Chance queries at a later time must match
  // a model evaluated fresh at that time.
  const PetMatrix pet = test::pet_of({{{{4, 0.6}, {10, 0.4}}}});
  std::vector<Task> tasks(1);
  tasks[0].id = 0;
  tasks[0].type = 0;
  tasks[0].deadline = 12;
  Machine machine(0, 0, 4);
  machine.enqueue(0);
  machine.running = false;  // a failure killed the running task

  CompletionModel stale(&pet, &machine, &tasks, {});
  stale.set_now(0);
  const double at_zero = stale.chance(0);
  stale.set_now(6);
  const double rebased = stale.chance(0);

  CompletionModel fresh(&pet, &machine, &tasks, {});
  fresh.set_now(6);
  EXPECT_EQ(rebased, fresh.chance(0));
  EXPECT_NE(rebased, at_zero);  // deadline 12: only the 4-tick branch fits
}

TEST(Audit, AuditedRunMatchesUnauditedRun) {
  // A stochastic oversubscribed PAM + heuristic-dropper run, executed twice:
  // once at the configured sampling density and once (in audit builds) with
  // every single gate firing. The audit must neither trip nor perturb the
  // outcome — cross-checks recompute into scratch and only compare.
  const PetMatrix pet =
      pet_of({{{{4, 0.5}, {8, 0.3}, {12, 0.2}}}, {{{6, 0.7}, {14, 0.3}}}});
  Trace trace;
  for (int i = 0; i < 60; ++i) {
    trace.push_back({static_cast<TaskTypeId>(i % 2), Tick{i * 2},
                     Tick{i * 2 + 25}});
  }
  const auto run_once = [&] {
    auto mapper = make_mapper("PAM");
    ProactiveHeuristicDropper dropper;
    EngineConfig config;
    config.queue_capacity = 3;
    Engine engine(pet, {0, 0}, *mapper, dropper, config);
    return engine.run(trace);
  };
  const SimResult baseline = run_once();
  IntervalGuard guard;
  if (audit::kEnabled) audit::set_interval_for_testing(1);
  const SimResult audited = run_once();
  ASSERT_EQ(audited.tasks.size(), baseline.tasks.size());
  for (std::size_t i = 0; i < baseline.tasks.size(); ++i) {
    EXPECT_EQ(audited.tasks[i].state, baseline.tasks[i].state) << i;
    EXPECT_EQ(audited.tasks[i].finish_time, baseline.tasks[i].finish_time)
        << i;
  }
  EXPECT_EQ(audited.makespan, baseline.makespan);
  EXPECT_EQ(audited.busy_ticks, baseline.busy_ticks);
}

TEST(Audit, AuditedOnlineRunMatchesUnauditedRun) {
  // Same contract for the callback-driven path: the batch-coherence and
  // chain cross-checks fire on OnlineScheduler mutations too (the sampled
  // gates live in the kernels, not in the engine driver), and an audited
  // live-mode run must stream the exact same decisions.
  const PetMatrix pet =
      pet_of({{{{4, 0.5}, {8, 0.3}, {12, 0.2}}}, {{{6, 0.7}, {14, 0.3}}}});
  const auto run_once = [&] {
    auto mapper = make_mapper("PAM");
    ProactiveHeuristicDropper dropper;
    OnlineConfig config;
    config.queue_capacity = 3;
    OnlineScheduler scheduler(pet, {0, 0}, *mapper, dropper, config);
    std::vector<Decision> all;
    const auto drive = [&](const std::vector<Decision>& decisions) {
      all.insert(all.end(), decisions.begin(), decisions.end());
      for (const Decision& decision : decisions) {
        if (decision.kind == DecisionKind::Start) {
          // Deterministic pseudo-ground-truth so both runs see the same
          // environment: duration keyed off the task id.
          scheduler.task_started(decision.time, decision.machine,
                                 decision.task,
                                 4 + (decision.task % 2) * 2);
        }
      }
    };
    for (int i = 0; i < 60; ++i) {
      const Tick t = Tick{i * 2};
      for (MachineId m = 0; m < 2; ++m) {
        if (scheduler.machine(m).running && scheduler.machine(m).run_end <= t) {
          drive(scheduler.task_finished(scheduler.machine(m).run_end, m));
        }
      }
      drive(scheduler.task_arrived(t, static_cast<TaskTypeId>(i % 2),
                                   t + 25));
    }
    return all;
  };
  const std::vector<Decision> baseline = run_once();
  IntervalGuard guard;
  if (audit::kEnabled) audit::set_interval_for_testing(1);
  const std::vector<Decision> audited = run_once();
  ASSERT_EQ(audited.size(), baseline.size());
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    EXPECT_EQ(audited[i], baseline[i]) << i;
  }
}

}  // namespace
}  // namespace taskdrop
