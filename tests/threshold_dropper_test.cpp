#include "core/threshold_dropper.hpp"

#include <gtest/gtest.h>

#include "core/sandbox.hpp"
#include "test_util.hpp"

namespace taskdrop {
namespace {

using test::pet_of;

/// big {10}, small {1}, coin {2: 0.5, 20: 0.5}.
PetMatrix dropper_pet() {
  return pet_of({{{{10, 1.0}}}, {{{1, 1.0}}}, {{{2, 0.5}, {20, 0.5}}}});
}

TEST(ThresholdDropper, StaticThresholdDropsBelowOnly) {
  const PetMatrix pet = dropper_pet();
  SystemSandbox sandbox(pet, {0}, 6);
  const TaskId coin = sandbox.enqueue(0, /*type=*/2, /*deadline=*/3);  // 0.5
  sandbox.enqueue(0, /*type=*/1, /*deadline=*/30);                     // ~1.0
  ThresholdDropper dropper(ThresholdDropper::Params{0.7, /*adaptive=*/false});
  dropper.run(sandbox.view(), sandbox);
  ASSERT_EQ(sandbox.dropped.size(), 1u);
  EXPECT_EQ(sandbox.dropped.front(), coin);
}

TEST(ThresholdDropper, KeepsTasksExactlyAtThreshold) {
  const PetMatrix pet = dropper_pet();
  SystemSandbox sandbox(pet, {0}, 6);
  sandbox.enqueue(0, 2, 3);  // chance exactly 0.5
  sandbox.enqueue(0, 1, 30);
  ThresholdDropper dropper(ThresholdDropper::Params{0.5, false});
  dropper.run(sandbox.view(), sandbox);
  EXPECT_TRUE(sandbox.dropped.empty());  // drop requires chance < threshold
}

TEST(ThresholdDropper, AdaptiveThresholdBacksOffWhenQueuesAreEmpty) {
  const PetMatrix pet = dropper_pet();
  // 4 machines with capacity 6 = 24 slots; only 2 occupied -> fill = 1/12,
  // effective threshold = 0.5/12 < the coin's 0.5 chance.
  SystemSandbox sandbox(pet, {0, 0, 0, 0}, 6);
  sandbox.enqueue(0, 2, 3);
  sandbox.enqueue(0, 1, 30);
  ThresholdDropper dropper(ThresholdDropper::Params{0.5, /*adaptive=*/true});
  dropper.run(sandbox.view(), sandbox);
  EXPECT_TRUE(sandbox.dropped.empty());
}

TEST(ThresholdDropper, AdaptiveThresholdBitesWhenSaturated) {
  const PetMatrix pet = dropper_pet();
  SystemSandbox sandbox(pet, {0}, 3);
  // Saturated single machine: fill = 1, effective = base.
  sandbox.enqueue(0, 2, 3);   // 0.5 < 0.7 -> dropped
  sandbox.enqueue(0, 1, 30);
  sandbox.enqueue(0, 1, 31);
  ThresholdDropper dropper(ThresholdDropper::Params{0.7, true});
  dropper.run(sandbox.view(), sandbox);
  EXPECT_EQ(sandbox.dropped.size(), 1u);
}

TEST(ThresholdDropper, ZeroBaseNeverDrops) {
  const PetMatrix pet = dropper_pet();
  SystemSandbox sandbox(pet, {0}, 6);
  sandbox.enqueue(0, 0, 2);  // chance 0
  sandbox.enqueue(0, 0, 3);  // chance 0
  ThresholdDropper dropper(ThresholdDropper::Params{0.0, false});
  dropper.run(sandbox.view(), sandbox);
  EXPECT_TRUE(sandbox.dropped.empty());
}

TEST(ThresholdDropper, ReevaluatesSuccessorsAfterEachDrop) {
  const PetMatrix pet = dropper_pet();
  SystemSandbox sandbox(pet, {0}, 6);
  // Head: big task with deadline 5 (chance 0). Behind it a small task with
  // deadline 12: blocked it has chance 0 (starts at 10, finishes 11 < 12 —
  // actually succeeds!). Use deadline 8: start 10 >= 8 -> chance 0 blocked,
  // but once the big head is dropped it becomes certain. A naive
  // fixed-order scan would drop both; re-evaluation keeps the second.
  const TaskId big = sandbox.enqueue(0, 0, 5);
  const TaskId small = sandbox.enqueue(0, 1, 8);
  ThresholdDropper dropper(ThresholdDropper::Params{0.6, false});
  dropper.run(sandbox.view(), sandbox);
  ASSERT_EQ(sandbox.dropped.size(), 1u);
  EXPECT_EQ(sandbox.dropped.front(), big);
  EXPECT_EQ(sandbox.machine(0).queue.front(), small);
  EXPECT_NEAR(sandbox.model(0).chance(0), 1.0, 1e-12);
}

TEST(ThresholdDropper, MayDropTheLastTaskUnlikeProactive) {
  // The threshold family has no influence-zone reasoning: it prunes any
  // pending task below threshold, including the queue tail. This is a
  // behavioural contrast with the paper's mechanism (which excludes the
  // last task) worth pinning down.
  const PetMatrix pet = dropper_pet();
  SystemSandbox sandbox(pet, {0}, 6);
  sandbox.enqueue(0, 1, 30);
  const TaskId hopeless_tail = sandbox.enqueue(0, 0, 2);
  ThresholdDropper dropper(ThresholdDropper::Params{0.5, false});
  dropper.run(sandbox.view(), sandbox);
  ASSERT_EQ(sandbox.dropped.size(), 1u);
  EXPECT_EQ(sandbox.dropped.front(), hopeless_tail);
}

TEST(ThresholdDropper, SkipsRunningTask) {
  const PetMatrix pet = dropper_pet();
  SystemSandbox sandbox(pet, {0}, 6);
  const TaskId running = sandbox.enqueue(0, 0, 2);  // hopeless, running
  sandbox.enqueue(0, 1, 30);
  sandbox.set_running(0, 0);
  ThresholdDropper dropper(ThresholdDropper::Params{0.9, false});
  dropper.run(sandbox.view(), sandbox);
  EXPECT_EQ(sandbox.machine(0).queue.front(), running);
  for (TaskId dropped : sandbox.dropped) EXPECT_NE(dropped, running);
}

}  // namespace
}  // namespace taskdrop
