#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "util/flags.hpp"
#include "util/table.hpp"

namespace taskdrop {
namespace {

// ------------------------------- Table -------------------------------

TEST(Table, PrintsAlignedHeadersAndRows) {
  Table table({"name", "value"});
  table.row().cell("alpha").cell(1.5, 1);
  table.row().cell("b").cell(static_cast<long long>(42));
  std::ostringstream oss;
  table.print(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("1.5"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);  // separator line
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table table({"label"});
  table.row().cell("has,comma");
  table.row().cell("has\"quote");
  std::ostringstream oss;
  table.print_csv(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(out.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, RowAndCellCounts) {
  Table table({"a", "b"});
  EXPECT_EQ(table.row_count(), 0u);
  table.row().cell("1").cell("2");
  table.row().cell("3").cell("4");
  EXPECT_EQ(table.row_count(), 2u);
  EXPECT_EQ(table.rows()[1][0], "3");
}

TEST(Table, FormatFixedPrecision) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
  EXPECT_EQ(format_fixed(-1.005, 1), "-1.0");
}

// ------------------------------- Flags -------------------------------

TEST(Flags, ParsesKeyValueAndSwitches) {
  const char* argv[] = {"prog", "--alpha=3.5", "--on", "positional",
                        "--n=42"};
  const Flags flags(5, argv);
  EXPECT_TRUE(flags.has("alpha"));
  EXPECT_DOUBLE_EQ(flags.get_double("alpha", 0.0), 3.5);
  EXPECT_TRUE(flags.get_bool("on"));
  EXPECT_EQ(flags.get_int("n", 0), 42);
  EXPECT_FALSE(flags.has("positional"));
}

TEST(Flags, FallbacksWhenAbsent) {
  const char* argv[] = {"prog"};
  const Flags flags(1, argv);
  EXPECT_EQ(flags.get("missing", "dflt"), "dflt");
  EXPECT_EQ(flags.get_int("missing", 9), 9);
  EXPECT_DOUBLE_EQ(flags.get_double("missing", 1.5), 1.5);
  EXPECT_FALSE(flags.get_bool("missing"));
  EXPECT_TRUE(flags.get_bool("missing", true));
}

TEST(Flags, BoolFalseSpellings) {
  const char* argv[] = {"prog", "--a=0", "--b=false", "--c=true"};
  const Flags flags(4, argv);
  EXPECT_FALSE(flags.get_bool("a"));
  EXPECT_FALSE(flags.get_bool("b"));
  EXPECT_TRUE(flags.get_bool("c"));
}

TEST(Flags, ReproFullEnvBecomesFullFlag) {
  ::setenv("REPRO_FULL", "1", 1);
  const char* argv[] = {"prog"};
  const Flags flags(1, argv);
  EXPECT_TRUE(flags.get_bool("full"));
  ::unsetenv("REPRO_FULL");
  const Flags flags2(1, argv);
  EXPECT_FALSE(flags2.get_bool("full"));
}

TEST(Flags, ExplicitFlagBeatsEnv) {
  ::setenv("REPRO_FULL", "1", 1);
  const char* argv[] = {"prog", "--full=0"};
  const Flags flags(2, argv);
  EXPECT_FALSE(flags.get_bool("full"));
  ::unsetenv("REPRO_FULL");
}

}  // namespace
}  // namespace taskdrop
