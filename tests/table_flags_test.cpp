#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "util/flags.hpp"
#include "util/table.hpp"

namespace taskdrop {
namespace {

// ------------------------------- Table -------------------------------

TEST(Table, PrintsAlignedHeadersAndRows) {
  Table table({"name", "value"});
  table.row().cell("alpha").cell(1.5, 1);
  table.row().cell("b").cell(static_cast<long long>(42));
  std::ostringstream oss;
  table.print(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("1.5"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);  // separator line
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table table({"label"});
  table.row().cell("has,comma");
  table.row().cell("has\"quote");
  std::ostringstream oss;
  table.print_csv(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(out.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, RowAndCellCounts) {
  Table table({"a", "b"});
  EXPECT_EQ(table.row_count(), 0u);
  table.row().cell("1").cell("2");
  table.row().cell("3").cell("4");
  EXPECT_EQ(table.row_count(), 2u);
  EXPECT_EQ(table.rows()[1][0], "3");
}

TEST(Table, FormatFixedPrecision) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
  EXPECT_EQ(format_fixed(-1.005, 1), "-1.0");
}

TEST(Table, FormatDoubleShortestForms) {
  EXPECT_EQ(format_double(4.0), "4");
  EXPECT_EQ(format_double(2.5), "2.5");
  EXPECT_EQ(format_double(0.55), "0.55");
  EXPECT_EQ(format_double(0.0), "0");
  EXPECT_EQ(format_double(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(format_double(-std::numeric_limits<double>::infinity()), "-inf");
  EXPECT_EQ(format_double(std::nan("")), "nan");
}

TEST(Table, FormatDoubleParseBackIsAFixpoint) {
  // The contract the sweep-spec serialiser relies on: strtod of the
  // rendering recovers the exact bits, for awkward doubles the old
  // 6-significant-digit formatting silently truncated.
  const double awkward[] = {0.1234567,
                            1.0 / 3.0,
                            4.000000000000001,
                            1e-17,
                            123456789.123456789,
                            6.02214076e23,
                            -0.1,
                            5e-324,          // min subnormal
                            1.7976931348623157e308};
  for (const double value : awkward) {
    const std::string text = format_double(value);
    EXPECT_EQ(std::strtod(text.c_str(), nullptr), value) << text;
  }
  // Deterministic pseudo-random sweep over many magnitudes.
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  for (int i = 0; i < 2000; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const double mantissa =
        static_cast<double>(state >> 11) / 9007199254740992.0;
    const int exponent = static_cast<int>(state % 613) - 306;
    const double value = std::ldexp(mantissa, exponent);
    const std::string text = format_double(value);
    EXPECT_EQ(std::strtod(text.c_str(), nullptr), value) << text;
  }
}

// ------------------------------- Flags -------------------------------

TEST(Flags, ParsesKeyValueAndSwitches) {
  const char* argv[] = {"prog", "--alpha=3.5", "--on", "positional",
                        "--n=42"};
  const Flags flags(5, argv);
  EXPECT_TRUE(flags.has("alpha"));
  EXPECT_DOUBLE_EQ(flags.get_double("alpha", 0.0), 3.5);
  EXPECT_TRUE(flags.get_bool("on"));
  EXPECT_EQ(flags.get_int("n", 0), 42);
  EXPECT_FALSE(flags.has("positional"));
}

TEST(Flags, FallbacksWhenAbsent) {
  const char* argv[] = {"prog"};
  const Flags flags(1, argv);
  EXPECT_EQ(flags.get("missing", "dflt"), "dflt");
  EXPECT_EQ(flags.get_int("missing", 9), 9);
  EXPECT_DOUBLE_EQ(flags.get_double("missing", 1.5), 1.5);
  EXPECT_FALSE(flags.get_bool("missing"));
  EXPECT_TRUE(flags.get_bool("missing", true));
}

TEST(Flags, BoolFalseSpellings) {
  const char* argv[] = {"prog", "--a=0", "--b=false", "--c=true"};
  const Flags flags(4, argv);
  EXPECT_FALSE(flags.get_bool("a"));
  EXPECT_FALSE(flags.get_bool("b"));
  EXPECT_TRUE(flags.get_bool("c"));
}

TEST(Flags, ReproFullEnvBecomesFullFlag) {
  ::setenv("REPRO_FULL", "1", 1);
  const char* argv[] = {"prog"};
  const Flags flags(1, argv);
  EXPECT_TRUE(flags.get_bool("full"));
  ::unsetenv("REPRO_FULL");
  const Flags flags2(1, argv);
  EXPECT_FALSE(flags2.get_bool("full"));
}

TEST(Flags, ExplicitFlagBeatsEnv) {
  ::setenv("REPRO_FULL", "1", 1);
  const char* argv[] = {"prog", "--full=0"};
  const Flags flags(2, argv);
  EXPECT_FALSE(flags.get_bool("full"));
  ::unsetenv("REPRO_FULL");
}

}  // namespace
}  // namespace taskdrop
