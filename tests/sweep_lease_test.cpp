// Elastic lease coordination: the claim/renew/expire/steal state machine
// must hand every lease to exactly one live worker, dead workers' ranges
// must be reclaimed and re-executed to identical bytes, resuming against a
// partial lease directory must skip landed units, and merging must reject
// divergent re-executions loudly. Plan construction and the crash-safe
// JSON reader round out the crash-consistency contract.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "exp/lease.hpp"
#include "exp/sweep.hpp"
#include "metrics/report.hpp"
#include "util/atomic_file.hpp"
#include "util/spec_parser.hpp"

namespace taskdrop {
namespace {

namespace fs = std::filesystem;

/// Fresh directory under the system temp root, removed on destruction.
struct TempDir {
  fs::path path;
  TempDir() {
    static std::atomic<int> sequence{0};
    path = fs::temp_directory_path() /
           ("sweep_lease_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(sequence.fetch_add(1)));
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ignored;
    fs::remove_all(path, ignored);
  }
  std::string str() const { return path.string(); }
};

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(static_cast<bool>(in)) << "cannot read " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

SweepLeaseRange range_of(long long id, std::size_t begin, std::size_t end) {
  SweepLeaseRange lease;
  lease.id = id;
  lease.begin = begin;
  lease.end = end;
  return lease;
}

/// Tiny grid (2 mappers x 2 trials = 4 units) shared by the end-to-end
/// elastic tests; small tasks keep the whole suite in seconds.
SweepSpec lease_spec() {
  return SweepSpec::from_map(parse_spec_text(
      "name = lease differential\n"
      "scenario = spec_hc\n"
      "mapper = PAM, MM\n"
      "dropper = heuristic\n"
      "levels = a:120:2\n"
      "trials = 2\n"
      "seed = 7\n"));
}

std::string json_of(const SweepReport& report) {
  std::ostringstream out;
  write_sweep_json(out, report);
  return out.str();
}

std::vector<SweepShardReport> read_lease_docs(const std::string& dir,
                                              std::size_t count) {
  std::vector<SweepShardReport> docs;
  for (std::size_t i = 0; i < count; ++i) {
    std::ifstream in(dir + "/lease_" + std::to_string(i) + ".json");
    EXPECT_TRUE(static_cast<bool>(in)) << "missing result for lease " << i;
    docs.push_back(read_sweep_shard_json(in));
  }
  return docs;
}

void expect_tiles_grid(const LeasePlan& plan, std::size_t units) {
  ASSERT_FALSE(plan.ranges.empty());
  std::size_t next = 0;
  for (std::size_t i = 0; i < plan.ranges.size(); ++i) {
    EXPECT_EQ(plan.ranges[i].id, static_cast<long long>(i));
    EXPECT_EQ(plan.ranges[i].begin, next);
    EXPECT_LT(plan.ranges[i].begin, plan.ranges[i].end);
    next = plan.ranges[i].end;
  }
  EXPECT_EQ(next, units);
}

// --- Lease plans. -------------------------------------------------------

TEST(LeasePlan, FixedSizeChunksTileTheGrid) {
  const SweepSpec spec = lease_spec();  // 4 units
  const LeasePlan plan =
      LeasePlan::build(spec, 3, lease_cell_weights(spec, ""));
  ASSERT_EQ(plan.ranges.size(), 2u);
  EXPECT_EQ(plan.ranges[0].begin, 0u);
  EXPECT_EQ(plan.ranges[0].end, 3u);
  EXPECT_EQ(plan.ranges[1].begin, 3u);
  EXPECT_EQ(plan.ranges[1].end, 4u);
  expect_tiles_grid(plan, 4);
}

TEST(LeasePlan, WeightBalancedSplitTilesAndIsolatesHeavyCells) {
  // 8 cells x 3 trials = 24 units; the clamp floor gives 16 leases.
  const SweepSpec spec = SweepSpec::from_map(parse_spec_text(
      "name = weighted\n"
      "scenario = spec_hc\n"
      "mapper = PAM, MM\n"
      "dropper = heuristic, reactive\n"
      "levels = a:100:2, b:200:3\n"
      "trials = 3\n"
      "seed = 1\n"));
  std::vector<double> weights(spec.cell_count(), 1.0);
  weights[0] = 1e6;  // one pathologically expensive cell
  const LeasePlan plan = LeasePlan::build(spec, 0, weights);
  expect_tiles_grid(plan, 24);
  EXPECT_EQ(plan.ranges.size(), 16u);
  // The heavy cell's first unit saturates the first quantile on its own,
  // so the first lease must not drag light units along with it.
  EXPECT_EQ(plan.ranges.front().end, 1u);
}

TEST(LeasePlan, TextRoundTripIsExact) {
  const SweepSpec spec = lease_spec();
  const LeasePlan plan =
      LeasePlan::build(spec, 0, lease_cell_weights(spec, ""));
  const LeasePlan reread = LeasePlan::from_text(plan.to_text());
  EXPECT_EQ(reread.spec_map, plan.spec_map);
  ASSERT_EQ(reread.ranges.size(), plan.ranges.size());
  for (std::size_t i = 0; i < plan.ranges.size(); ++i) {
    EXPECT_EQ(reread.ranges[i].id, plan.ranges[i].id);
    EXPECT_EQ(reread.ranges[i].begin, plan.ranges[i].begin);
    EXPECT_EQ(reread.ranges[i].end, plan.ranges[i].end);
  }
}

TEST(LeasePlan, FromTextRejectsCorruptPlans) {
  EXPECT_THROW(LeasePlan::from_text("bogus header\n"), std::invalid_argument);
  EXPECT_THROW(
      LeasePlan::from_text("taskdrop-lease-plan/v1\nleases 1\n"),
      std::invalid_argument);  // truncated: lease line missing
  EXPECT_THROW(LeasePlan::from_text("taskdrop-lease-plan/v1\n"
                                    "leases 2\n"
                                    "lease 0 0 2\n"
                                    "lease 1 3 4\n"  // gap: unit 2 unowned
                                    "spec\nname = x\n"),
               std::invalid_argument);
}

// --- The claim state machine. -------------------------------------------

TEST(LeaseDir, ClaimRenewReleasePublishLifecycle) {
  TempDir tmp;
  const SweepLeaseRange lease = range_of(0, 0, 4);
  const LeaseDir alpha(tmp.str() + "/leases", 60000, "alpha");
  const LeaseDir beta(tmp.str() + "/leases", 60000, "beta");

  EXPECT_EQ(alpha.try_claim(lease), LeaseDir::Claim::Acquired);
  // A live claim is busy for everyone, the owner included on re-entry.
  EXPECT_EQ(beta.try_claim(lease), LeaseDir::Claim::Busy);
  EXPECT_EQ(alpha.try_claim(lease), LeaseDir::Claim::Busy);
  alpha.renew(lease);
  EXPECT_EQ(beta.try_claim(lease), LeaseDir::Claim::Busy);

  // Releasing without publishing frees the lease immediately.
  alpha.release(lease);
  EXPECT_EQ(beta.try_claim(lease), LeaseDir::Claim::Acquired);

  beta.publish_result(lease, "{}\n");
  EXPECT_FALSE(fs::exists(beta.claim_path(lease)));
  EXPECT_TRUE(beta.result_exists(lease));
  EXPECT_EQ(alpha.try_claim(lease), LeaseDir::Claim::Done);
  EXPECT_EQ(read_file(beta.result_path(lease)), "{}\n");
}

TEST(LeaseDir, ExpiredClaimIsStolenExactlyOnceAndHeartbeatPreventsIt) {
  TempDir tmp;
  const SweepLeaseRange lease = range_of(2, 8, 16);
  const LeaseDir dead(tmp.str() + "/leases", 40, "dead");
  const LeaseDir live(tmp.str() + "/leases", 40, "live");

  ASSERT_EQ(dead.try_claim(lease), LeaseDir::Claim::Acquired);
  // Renewal keeps the claim alive well past several timeouts.
  for (int i = 0; i < 5; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    dead.renew(lease);
  }
  EXPECT_EQ(live.try_claim(lease), LeaseDir::Claim::Busy);

  // Stop renewing: the claim expires and is stolen.
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  EXPECT_EQ(live.try_claim(lease), LeaseDir::Claim::Stolen);
  // The thief's claim is fresh, so it is busy again for everyone else.
  EXPECT_EQ(dead.try_claim(lease), LeaseDir::Claim::Busy);
}

TEST(LeaseDir, TwoWorkersRacingAClaimHaveExactlyOneWinner) {
  TempDir tmp;
  constexpr int kLeases = 64;
  const LeaseDir alpha(tmp.str() + "/leases", 60000, "alpha");
  const LeaseDir beta(tmp.str() + "/leases", 60000, "beta");

  std::vector<LeaseDir::Claim> results_a(kLeases), results_b(kLeases);
  std::atomic<int> ready{0};
  const auto race = [&](const LeaseDir& dir,
                        std::vector<LeaseDir::Claim>& results) {
    ready.fetch_add(1);
    while (ready.load() < 2) std::this_thread::yield();
    for (int i = 0; i < kLeases; ++i) {
      results[static_cast<std::size_t>(i)] = dir.try_claim(
          range_of(i, static_cast<std::size_t>(i),
                   static_cast<std::size_t>(i) + 1));
    }
  };
  std::thread worker_a(race, std::cref(alpha), std::ref(results_a));
  std::thread worker_b(race, std::cref(beta), std::ref(results_b));
  worker_a.join();
  worker_b.join();

  for (int i = 0; i < kLeases; ++i) {
    const auto a = results_a[static_cast<std::size_t>(i)];
    const auto b = results_b[static_cast<std::size_t>(i)];
    const int acquired = (a == LeaseDir::Claim::Acquired ? 1 : 0) +
                         (b == LeaseDir::Claim::Acquired ? 1 : 0);
    EXPECT_EQ(acquired, 1) << "lease " << i;
    EXPECT_EQ(a == LeaseDir::Claim::Acquired ? b : a, LeaseDir::Claim::Busy)
        << "lease " << i;
  }
}

TEST(LeaseDir, StalePlanForADifferentSpecIsRejected) {
  TempDir tmp;
  const SweepSpec spec = lease_spec();
  const LeaseDir dir(tmp.str() + "/leases", 60000, "w");
  const LeasePlan plan =
      LeasePlan::build(spec, 1, lease_cell_weights(spec, ""));
  dir.publish_or_load_plan(plan);

  SweepSpec other = spec;
  other.seed = 9001;
  const LeasePlan other_plan =
      LeasePlan::build(other, 1, lease_cell_weights(other, ""));
  EXPECT_THROW(dir.publish_or_load_plan(other_plan), std::invalid_argument);
}

// --- End-to-end elastic execution. --------------------------------------

ElasticSweepOptions elastic_options(const std::string& dir,
                                    const std::string& owner) {
  ElasticSweepOptions options;
  options.lease_dir = dir;
  options.lease_timeout_ms = 60000;
  options.lease_units = 1;  // 4 leases for the 4-unit grid
  options.threads = 1;
  options.owner = owner;
  return options;
}

TEST(ElasticSweep, MergedLeaseResultsMatchTheUnshardedReportByteForByte) {
  TempDir tmp;
  const SweepSpec spec = lease_spec();
  const ElasticSweepStats stats =
      run_sweep_elastic(spec, elastic_options(tmp.str() + "/leases", "solo"));
  EXPECT_EQ(stats.leases_total, 4u);
  EXPECT_EQ(stats.leases_run, 4u);
  EXPECT_EQ(stats.leases_stolen, 0u);
  EXPECT_EQ(stats.leases_skipped, 0u);

  const std::vector<SweepShardReport> docs =
      read_lease_docs(tmp.str() + "/leases", 4);
  const SweepReport merged = merge_sweep_reports(docs);
  EXPECT_EQ(json_of(merged), json_of(run_sweep(spec)));
}

TEST(ElasticSweep, ResumeSkipsLandedLeasesAndCompletesTheRest) {
  TempDir tmp;
  const std::string dir = tmp.str() + "/leases";
  const SweepSpec spec = lease_spec();
  run_sweep_elastic(spec, elastic_options(dir, "first"));

  // A dead worker's world: one result lost (never published), the rest
  // landed. The resumed worker must re-run exactly the missing lease.
  ASSERT_TRUE(fs::remove(dir + "/lease_2.json"));
  const ElasticSweepStats resumed =
      run_sweep_elastic(spec, elastic_options(dir, "second"));
  EXPECT_EQ(resumed.leases_run, 1u);
  EXPECT_EQ(resumed.leases_skipped, 3u);

  const SweepReport merged = merge_sweep_reports(read_lease_docs(dir, 4));
  EXPECT_EQ(json_of(merged), json_of(run_sweep(spec)));
}

TEST(ElasticSweep, StolenLeaseReproducesIdenticalBytes) {
  TempDir tmp;
  const std::string dir = tmp.str() + "/leases";
  const SweepSpec spec = lease_spec();
  run_sweep_elastic(spec, elastic_options(dir, "victim"));
  const std::string original = read_file(dir + "/lease_1.json");

  // Forge the crash site: the result vanished and the victim's claim is
  // ancient. The next worker must steal and re-execute to the same bytes.
  ASSERT_TRUE(fs::remove(dir + "/lease_1.json"));
  atomic_write_file(dir + "/lease_1.claim", "owner victim\nheartbeat 1\n");

  ElasticSweepOptions options = elastic_options(dir, "thief");
  options.lease_timeout_ms = 500;
  const ElasticSweepStats stats = run_sweep_elastic(spec, options);
  EXPECT_EQ(stats.leases_run, 1u);
  EXPECT_EQ(stats.leases_stolen, 1u);
  EXPECT_EQ(stats.leases_skipped, 3u);
  EXPECT_EQ(read_file(dir + "/lease_1.json"), original);
}

// --- Merging re-executed and damaged documents. -------------------------

TEST(ElasticSweep, ReexecutedDuplicatesNeedTheFlagAndDivergenceIsFatal) {
  TempDir tmp;
  const std::string dir = tmp.str() + "/leases";
  const SweepSpec spec = lease_spec();
  run_sweep_elastic(spec, elastic_options(dir, "solo"));

  std::vector<SweepShardReport> docs = read_lease_docs(dir, 4);
  const SweepReport merged = merge_sweep_reports(docs);

  // The same lease document twice — the signature of a reclaimed lease
  // whose original owner also finished — is rejected by default ...
  docs.push_back(docs[1]);
  EXPECT_THROW(merge_sweep_reports(docs), std::invalid_argument);
  // ... tolerated under allow_reexecuted when bitwise identical ...
  MergeOptions allow;
  allow.allow_reexecuted = true;
  EXPECT_EQ(json_of(merge_sweep_reports(docs, allow)), json_of(merged));
  // ... and fatal even under the flag when the payloads disagree.
  docs.back().trials.front().metrics.robustness_pct += 1.0;
  try {
    merge_sweep_reports(docs, allow);
    FAIL() << "divergent re-executed payloads must not merge";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("divergent"), std::string::npos)
        << error.what();
  }
}

TEST(ElasticSweep, TruncatedResultFileIsRejectedWithLineAndOffset) {
  TempDir tmp;
  const std::string dir = tmp.str() + "/leases";
  run_sweep_elastic(lease_spec(), elastic_options(dir, "solo"));

  const std::string whole = read_file(dir + "/lease_0.json");
  std::istringstream truncated(whole.substr(0, whole.size() / 2));
  try {
    read_sweep_shard_json(truncated);
    FAIL() << "a truncated shard document must not parse";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("line"), std::string::npos) << message;
    EXPECT_NE(message.find("offset"), std::string::npos) << message;
  }
}

// --- Cost-model lease sizing. -------------------------------------------

TEST(LeaseCellWeights, AnalyticFallbackAndBenchScaling) {
  TempDir tmp;
  const SweepSpec spec = lease_spec();  // cells: (spec_hc, PAM), (spec_hc, MM)

  // No benchmark file: the analytic n_tasks x oversubscription proxy.
  const std::vector<double> analytic = lease_cell_weights(spec, "");
  ASSERT_EQ(analytic.size(), 2u);
  EXPECT_DOUBLE_EQ(analytic[0], 120.0 * 2.0);
  EXPECT_DOUBLE_EQ(analytic[1], 120.0 * 2.0);
  EXPECT_EQ(lease_cell_weights(spec, tmp.str() + "/missing.json"), analytic);

  // Full coverage: each cell priced by linear task-count scaling from its
  // (scenario, mapper) measurement.
  const std::string bench = tmp.str() + "/bench.json";
  atomic_write_file(
      bench,
      "{\"benchmarks\": {\"macro_trial\": {\"benchmarks\": ["
      "{\"run_name\": \"spec_hc/PAM/1k\", \"real_time\": 10.0},"
      "{\"run_name\": \"spec_hc/MM/1k\", \"real_time\": 40.0}]}}}");
  const std::vector<double> measured = lease_cell_weights(spec, bench);
  ASSERT_EQ(measured.size(), 2u);
  EXPECT_DOUBLE_EQ(measured[0], 10.0 * 120.0 / 1000.0);
  EXPECT_DOUBLE_EQ(measured[1], 40.0 * 120.0 / 1000.0);

  // Partial coverage (no MM point): all-or-nothing fallback to analytic —
  // mixing measured and analytic scales would skew the split.
  const std::string partial = tmp.str() + "/partial.json";
  atomic_write_file(
      partial,
      "{\"benchmarks\": {\"macro_trial\": {\"benchmarks\": ["
      "{\"run_name\": \"spec_hc/PAM/1k\", \"real_time\": 10.0}]}}}");
  EXPECT_EQ(lease_cell_weights(spec, partial), analytic);
}

// --- run_sweep lease plumbing. ------------------------------------------

TEST(RunSweep, LeaseAndShardOptionsAreMutuallyExclusive) {
  SweepOptions options;
  options.shard = ShardSpec{0, 2};
  options.lease = range_of(0, 0, 1);
  EXPECT_THROW(run_sweep(lease_spec(), options), std::invalid_argument);
}

TEST(RunSweep, LeaseRangeBeyondTheGridIsRejected) {
  SweepOptions options;
  options.lease = range_of(0, 0, 5);  // the grid has 4 units
  EXPECT_THROW(run_sweep(lease_spec(), options), std::invalid_argument);
}

}  // namespace
}  // namespace taskdrop
