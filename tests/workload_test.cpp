#include <gtest/gtest.h>

#include "test_util.hpp"
#include "workload/arrival.hpp"
#include "workload/deadline.hpp"
#include "workload/generator.hpp"
#include "workload/trace.hpp"

namespace taskdrop {
namespace {

// ------------------------------ arrivals -----------------------------

TEST(Arrival, CountAndMonotonicity) {
  Rng rng(1);
  const auto arrivals = generate_arrivals(rng, 500, 0.1, ArrivalPattern::Poisson);
  ASSERT_EQ(arrivals.size(), 500u);
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    EXPECT_LE(arrivals[i - 1], arrivals[i]);
  }
  EXPECT_GE(arrivals.front(), 1);
}

TEST(Arrival, PoissonMeanRateApproximatelyCorrect) {
  Rng rng(2);
  const double rate = 0.05;  // one task per 20 ticks
  const auto arrivals =
      generate_arrivals(rng, 20000, rate, ArrivalPattern::Poisson);
  const double measured =
      static_cast<double>(arrivals.size()) / static_cast<double>(arrivals.back());
  EXPECT_NEAR(measured, rate, rate * 0.05);
}

TEST(Arrival, BurstyPreservesMeanRate) {
  Rng rng(3);
  const double rate = 0.05;
  const auto arrivals =
      generate_arrivals(rng, 20000, rate, ArrivalPattern::Bursty);
  const double measured =
      static_cast<double>(arrivals.size()) / static_cast<double>(arrivals.back());
  EXPECT_NEAR(measured, rate, rate * 0.15);
}

TEST(Arrival, BurstyIsSpikierThanPoisson) {
  // Compare the variance of per-window counts: bursty arrivals must show
  // larger dispersion at the same mean rate.
  const double rate = 0.05;
  auto window_count_variance = [&](ArrivalPattern pattern, std::uint64_t seed) {
    Rng rng(seed);
    const auto arrivals = generate_arrivals(rng, 20000, rate, pattern);
    const Tick window = 2000;
    std::vector<double> counts;
    std::size_t i = 0;
    for (Tick start = 0; start < arrivals.back(); start += window) {
      double c = 0;
      while (i < arrivals.size() && arrivals[i] < start + window) {
        ++c;
        ++i;
      }
      counts.push_back(c);
    }
    double mean = 0;
    for (double c : counts) mean += c;
    mean /= static_cast<double>(counts.size());
    double var = 0;
    for (double c : counts) var += (c - mean) * (c - mean);
    return var / static_cast<double>(counts.size());
  };
  EXPECT_GT(window_count_variance(ArrivalPattern::Bursty, 4),
            2.0 * window_count_variance(ArrivalPattern::Poisson, 4));
}

TEST(Arrival, ZeroTasks) {
  Rng rng(5);
  EXPECT_TRUE(generate_arrivals(rng, 0, 0.1, ArrivalPattern::Poisson).empty());
}

// ------------------------------ deadline -----------------------------

TEST(Deadline, PaperRuleExactArithmetic) {
  // delta_i = arr_i + avg_i + gamma * avg_all
  EXPECT_EQ(assign_deadline(1000, 120.0, 125.0, 1.0), 1000 + 245);
  EXPECT_EQ(assign_deadline(1000, 120.0, 125.0, 4.0), 1000 + 620);
  EXPECT_EQ(assign_deadline(0, 50.0, 100.0, 0.0), 50);
}

TEST(Deadline, RoundsToNearestTick) {
  EXPECT_EQ(assign_deadline(0, 10.4, 10.0, 0.01), 11);  // 10.5 -> 11
  EXPECT_EQ(assign_deadline(0, 10.3, 10.0, 0.01), 10);  // 10.4 -> 10
}

// ------------------------------ trace --------------------------------

TEST(Trace, ValidationCatchesDefects) {
  Trace good = {{0, 10, 100}, {1, 20, 120}};
  EXPECT_TRUE(validate_trace(good, 2));
  EXPECT_FALSE(validate_trace(good, 1));  // type 1 out of range

  Trace unsorted = {{0, 20, 100}, {0, 10, 120}};
  EXPECT_FALSE(validate_trace(unsorted, 1));

  Trace bad_deadline = {{0, 10, 10}};
  EXPECT_FALSE(validate_trace(bad_deadline, 1));
}

// ----------------------------- generator -----------------------------

TEST(Generator, ProducesValidTraceWithPaperDeadlines) {
  const PetMatrix pet = test::pet_of(
      {{{{100, 1.0}}, {{200, 1.0}}}, {{{50, 1.0}}, {{150, 1.0}}}});
  WorkloadConfig config;
  config.n_tasks = 300;
  config.oversubscription = 2.0;
  config.gamma = 1.0;
  config.seed = 9;
  const Trace trace = generate_trace(pet, 2, config);
  ASSERT_EQ(trace.size(), 300u);
  EXPECT_TRUE(validate_trace(trace, pet.task_type_count()));
  for (const TaskSpec& spec : trace) {
    const double avg_i = pet.mean_over_machines(spec.type);
    const Tick expected =
        assign_deadline(spec.arrival, avg_i, pet.mean_overall(), config.gamma);
    EXPECT_EQ(spec.deadline, expected);
  }
}

TEST(Generator, DeterministicPerSeedDistinctAcrossSeeds) {
  const PetMatrix pet = test::pet_of({{{{100, 1.0}}}});
  WorkloadConfig config;
  config.n_tasks = 100;
  config.seed = 5;
  const Trace a = generate_trace(pet, 4, config);
  const Trace b = generate_trace(pet, 4, config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].type, b[i].type);
  }
  config.seed = 6;
  const Trace c = generate_trace(pet, 4, config);
  bool any_different = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].arrival != c[i].arrival) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(Generator, OversubscriptionCompressesTheArrivalWindow) {
  const PetMatrix pet = test::pet_of({{{{100, 1.0}}}});
  WorkloadConfig config;
  config.n_tasks = 2000;
  config.seed = 7;
  config.oversubscription = 1.0;
  const Tick window_1x = generate_trace(pet, 8, config).back().arrival;
  config.oversubscription = 4.0;
  const Tick window_4x = generate_trace(pet, 8, config).back().arrival;
  // 4x the arrival rate -> about a quarter of the window.
  EXPECT_NEAR(static_cast<double>(window_4x),
              static_cast<double>(window_1x) / 4.0,
              static_cast<double>(window_1x) * 0.05);
}

TEST(Generator, TaskTypesCoverTheWholePet) {
  const PetMatrix pet = test::pet_of(
      {{{{100, 1.0}}}, {{{100, 1.0}}}, {{{100, 1.0}}}});
  WorkloadConfig config;
  config.n_tasks = 600;
  config.seed = 8;
  const Trace trace = generate_trace(pet, 2, config);
  std::vector<int> seen(3, 0);
  for (const TaskSpec& spec : trace) {
    ++seen[static_cast<std::size_t>(spec.type)];
  }
  for (int count : seen) EXPECT_GT(count, 100);  // roughly uniform
}

}  // namespace
}  // namespace taskdrop
