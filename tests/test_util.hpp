#pragma once

#include <initializer_list>
#include <utility>
#include <vector>

#include "pet/pet_matrix.hpp"
#include "prob/pmf.hpp"

namespace taskdrop::test {

/// Pmf from an initializer list of (time, probability) impulses.
inline Pmf pmf_of(std::initializer_list<std::pair<Tick, double>> impulses,
                  Tick stride = 1) {
  return Pmf::from_impulses(
      std::vector<std::pair<Tick, double>>(impulses.begin(), impulses.end()),
      stride);
}

/// A frozen PET matrix whose cells are explicit PMFs. `cells[t][m]` is the
/// impulse list for task type t on machine type m. Deterministic cells
/// (single impulses) make hand-computed expectations exact.
inline PetMatrix pet_of(
    std::vector<std::vector<std::vector<std::pair<Tick, double>>>> cells,
    Tick stride = 1) {
  const int task_types = static_cast<int>(cells.size());
  const int machine_types = static_cast<int>(cells.front().size());
  PetMatrix pet(task_types, machine_types);
  for (int t = 0; t < task_types; ++t) {
    for (int m = 0; m < machine_types; ++m) {
      pet.set(t, m,
              Pmf::from_impulses(cells[static_cast<std::size_t>(t)]
                                      [static_cast<std::size_t>(m)],
                                 stride));
    }
  }
  pet.freeze();
  return pet;
}

/// 1 task type x 1 machine type PET with the given execution PMF.
inline PetMatrix single_cell_pet(
    std::initializer_list<std::pair<Tick, double>> impulses, Tick stride = 1) {
  return pet_of({{std::vector<std::pair<Tick, double>>(impulses.begin(),
                                                       impulses.end())}},
                stride);
}

}  // namespace taskdrop::test
