#include "pet/profiles.hpp"

#include <gtest/gtest.h>

#include "workload/scenario.hpp"

namespace taskdrop {
namespace {

TEST(Profiles, SpecHcShapeMatchesPaper) {
  const SystemProfile profile = spec_hc_profile();
  EXPECT_EQ(profile.mean_execution_ms.size(), 12u);  // 12 SPECint task types
  for (const auto& row : profile.mean_execution_ms) {
    EXPECT_EQ(row.size(), 8u);  // 8 machine types
  }
  EXPECT_EQ(profile.machine_types.size(), 8u);  // one machine per type
  EXPECT_EQ(profile.cost_per_hour.size(), 8u);
}

TEST(Profiles, SpecHcMeansInPaperBand) {
  const SystemProfile profile = spec_hc_profile();
  for (const auto& row : profile.mean_execution_ms) {
    for (double mean : row) {
      EXPECT_GE(mean, 50.0);
      EXPECT_LE(mean, 200.0);
    }
  }
}

TEST(Profiles, SpecHcIsInconsistentlyHeterogeneous) {
  // Definition from section I: machine A faster than B for task 1 but
  // slower for task 2. Look for at least one such preference reversal.
  const SystemProfile profile = spec_hc_profile();
  const auto& m = profile.mean_execution_ms;
  bool reversal_found = false;
  for (std::size_t t1 = 0; t1 < m.size() && !reversal_found; ++t1) {
    for (std::size_t t2 = t1 + 1; t2 < m.size() && !reversal_found; ++t2) {
      for (std::size_t a = 0; a < m[t1].size() && !reversal_found; ++a) {
        for (std::size_t b = a + 1; b < m[t1].size(); ++b) {
          if ((m[t1][a] < m[t1][b]) != (m[t2][a] < m[t2][b])) {
            reversal_found = true;
            break;
          }
        }
      }
    }
  }
  EXPECT_TRUE(reversal_found);
}

TEST(Profiles, SpecHcIsDeterministic) {
  const SystemProfile a = spec_hc_profile();
  const SystemProfile b = spec_hc_profile();
  EXPECT_EQ(a.mean_execution_ms, b.mean_execution_ms);
  EXPECT_EQ(a.cost_per_hour, b.cost_per_hour);
}

TEST(Profiles, VideoShapeMatchesSectionVH) {
  const SystemProfile profile = video_profile();
  EXPECT_EQ(profile.mean_execution_ms.size(), 4u);   // 4 transcoding types
  EXPECT_EQ(profile.mean_execution_ms[0].size(), 4u);  // 4 VM types
  EXPECT_EQ(profile.machine_types.size(), 8u);       // two machines per type
  for (int type = 0; type < 4; ++type) {
    int count = 0;
    for (int m : profile.machine_types) {
      if (m == type) ++count;
    }
    EXPECT_EQ(count, 2) << "VM type " << type;
  }
}

TEST(Profiles, VideoHasHighAcrossTypeVariation) {
  // "certain task type takes significantly shorter time to execute than the
  // others across all machine types" (section V-H).
  const SystemProfile profile = video_profile();
  for (std::size_t m = 0; m < 4; ++m) {
    EXPECT_GT(profile.mean_execution_ms[3][m],
              4.0 * profile.mean_execution_ms[0][m]);
  }
}

TEST(Profiles, HomogeneousHasOneMachineType) {
  const SystemProfile profile = homogeneous_profile();
  EXPECT_EQ(profile.machine_types.size(), 8u);
  for (int type : profile.machine_types) EXPECT_EQ(type, 0);
  for (const auto& row : profile.mean_execution_ms) {
    EXPECT_EQ(row.size(), 1u);
  }
  EXPECT_EQ(profile.cost_per_hour.size(), 1u);
}

TEST(Profiles, HomogeneousMeansAreSpecRowAverages) {
  const SystemProfile spec = spec_hc_profile();
  const SystemProfile homog = homogeneous_profile();
  ASSERT_EQ(homog.mean_execution_ms.size(), spec.mean_execution_ms.size());
  for (std::size_t t = 0; t < spec.mean_execution_ms.size(); ++t) {
    double avg = 0.0;
    for (double v : spec.mean_execution_ms[t]) avg += v;
    avg /= static_cast<double>(spec.mean_execution_ms[t].size());
    EXPECT_NEAR(homog.mean_execution_ms[t][0], avg, 1e-12);
  }
}

TEST(Profiles, CostsArePositive) {
  for (const SystemProfile& profile :
       {spec_hc_profile(), video_profile(), homogeneous_profile()}) {
    for (double rate : profile.cost_per_hour) EXPECT_GT(rate, 0.0);
  }
}

// ------------------------------ scenario -----------------------------

TEST(Scenario, BuildsFrozenPetMatchingProfile) {
  const Scenario scenario = make_scenario(ScenarioKind::Video, 1);
  EXPECT_EQ(scenario.profile.name, "video");
  EXPECT_TRUE(scenario.pet.frozen());
  EXPECT_EQ(scenario.pet.task_type_count(), 4);
  EXPECT_EQ(scenario.pet.machine_type_count(), 4);
  EXPECT_EQ(scenario.machine_count(), 8u);
}

TEST(Scenario, SeedPinsThePet) {
  const Scenario a = make_scenario(ScenarioKind::SpecHC, 7);
  const Scenario b = make_scenario(ScenarioKind::SpecHC, 7);
  const Scenario c = make_scenario(ScenarioKind::SpecHC, 8);
  EXPECT_EQ(a.pet.pmf(3, 2), b.pet.pmf(3, 2));
  EXPECT_NE(a.pet.pmf(3, 2), c.pet.pmf(3, 2));
}

TEST(Scenario, KindNames) {
  EXPECT_EQ(to_string(ScenarioKind::SpecHC), "spec_hc");
  EXPECT_EQ(to_string(ScenarioKind::Video), "video");
  EXPECT_EQ(to_string(ScenarioKind::Homogeneous), "homogeneous");
}

}  // namespace
}  // namespace taskdrop
