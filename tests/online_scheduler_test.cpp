#include "online/online_scheduler.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <vector>

#include "core/null_dropper.hpp"
#include "core/proactive_heuristic_dropper.hpp"
#include "sched/registry.hpp"
#include "test_util.hpp"

namespace taskdrop {
namespace {

using test::pet_of;

/// Deterministic single-type PET: every execution takes exactly 5 ticks.
PetMatrix deterministic_pet() { return pet_of({{{{5, 1.0}}}}); }

std::vector<DecisionKind> kinds(const std::vector<Decision>& decisions) {
  std::vector<DecisionKind> out;
  out.reserve(decisions.size());
  for (const Decision& decision : decisions) out.push_back(decision.kind);
  return out;
}

/// Live-mode harness: a FCFS fleet of one machine with a 2-slot queue.
struct LiveFixture {
  PetMatrix pet = deterministic_pet();
  std::unique_ptr<Mapper> mapper = make_mapper("FCFS");
  NullDropper dropper;
  OnlineScheduler scheduler;

  explicit LiveFixture(int capacity = 2, OnlineConfig config = {})
      : scheduler(pet, {0}, *mapper, dropper,
                  [&] {
                    config.queue_capacity = capacity;
                    return config;
                  }()) {}
};

TEST(OnlineScheduler, ArrivalYieldsAssignAndStartOffer) {
  LiveFixture fx;
  TaskId id = -1;
  const auto& decisions = fx.scheduler.task_arrived(0, 0, 1000, &id);
  EXPECT_EQ(id, 0);
  ASSERT_EQ(decisions.size(), 2u);
  EXPECT_EQ(decisions[0], (Decision{DecisionKind::Assign, 0, 0, 0}));
  EXPECT_EQ(decisions[1], (Decision{DecisionKind::Start, 0, 0, 0}));
  // The start is advisory: the task is still Queued until confirmed.
  EXPECT_EQ(fx.scheduler.task(0).state, TaskState::Queued);
  fx.scheduler.task_started(0, 0, 0);
  EXPECT_EQ(fx.scheduler.task(0).state, TaskState::Running);
}

TEST(OnlineScheduler, StartOfferIsNotRepeatedWhileUnconfirmed) {
  LiveFixture fx;
  fx.scheduler.task_arrived(0, 0, 1000);
  // Further mapping events must not re-offer the same head.
  EXPECT_TRUE(fx.scheduler.advance(1).empty());
  EXPECT_TRUE(fx.scheduler.advance(2).empty());
  // Confirming late is fine (live mode): the task runs from t=2.
  fx.scheduler.task_started(2, 0, 0);
  EXPECT_EQ(fx.scheduler.task(0).start_time, 2);
  EXPECT_EQ(fx.scheduler.machine(0).run_start, 2);
}

TEST(OnlineScheduler, LapsedOfferIsReissuedForTheNewHead) {
  LiveFixture fx;
  fx.scheduler.task_arrived(0, 0, 10);
  // The offered head expires before the environment confirmed the start;
  // the next callback drops it and offers the new head instead.
  const auto& arrival2 = fx.scheduler.task_arrived(4, 0, 100);
  ASSERT_EQ(arrival2.size(), 1u);
  EXPECT_EQ(arrival2[0].kind, DecisionKind::Assign);
  const auto& decisions = fx.scheduler.advance(10);
  ASSERT_EQ(decisions.size(), 2u);
  EXPECT_EQ(decisions[0], (Decision{DecisionKind::DropReactive, 10, 0, 0}));
  EXPECT_EQ(decisions[1], (Decision{DecisionKind::Start, 10, 1, 0}));
}

TEST(OnlineScheduler, FinishEmitsTerminalRecordThenRefills) {
  LiveFixture fx;
  fx.scheduler.task_arrived(0, 0, 1000);
  fx.scheduler.task_started(0, 0, 0);
  fx.scheduler.task_arrived(1, 0, 1000);  // queues behind the running task
  const auto& decisions = fx.scheduler.task_finished(5, 0);
  EXPECT_EQ(kinds(decisions),
            (std::vector<DecisionKind>{DecisionKind::FinishOnTime,
                                       DecisionKind::Start}));
  EXPECT_EQ(fx.scheduler.task(0).state, TaskState::CompletedOnTime);
  EXPECT_EQ(fx.scheduler.task(0).finish_time, 5);
  EXPECT_EQ(fx.scheduler.machine(0).busy_ticks, 5);
}

TEST(OnlineScheduler, FinishAtDeadlineIsLate) {
  LiveFixture fx;
  fx.scheduler.task_arrived(0, 0, 5);
  fx.scheduler.task_started(0, 0, 0);
  const auto& decisions = fx.scheduler.task_finished(5, 0);
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0].kind, DecisionKind::FinishLate);
  EXPECT_EQ(fx.scheduler.task(0).state, TaskState::CompletedLate);
}

TEST(OnlineScheduler, UnmappedTaskExpiresViaAdvance) {
  LiveFixture fx(1);  // capacity 1: the second task cannot be mapped
  fx.scheduler.task_arrived(0, 0, 1000);
  fx.scheduler.task_started(0, 0, 0);
  fx.scheduler.task_arrived(1, 0, 4);
  EXPECT_EQ(fx.scheduler.unmapped_count(), 1u);
  EXPECT_EQ(fx.scheduler.earliest_unmapped_deadline(), 4);
  const auto& decisions = fx.scheduler.advance(4);
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0], (Decision{DecisionKind::ExpireUnmapped, 4, 1, -1}));
  EXPECT_EQ(fx.scheduler.unmapped_count(), 0u);
  EXPECT_EQ(fx.scheduler.earliest_unmapped_deadline(), kNeverTick);
}

TEST(OnlineScheduler, MachineDownKillsRunAndUpResumesQueue) {
  OnlineConfig config;
  config.volatile_machines = true;
  LiveFixture fx(2, config);
  fx.scheduler.task_arrived(0, 0, 1000);
  fx.scheduler.task_started(0, 0, 0);
  fx.scheduler.task_arrived(1, 0, 1000);

  const auto& down = fx.scheduler.machine_down(2, 0);
  ASSERT_EQ(down.size(), 1u);
  EXPECT_EQ(down[0], (Decision{DecisionKind::LostToFailure, 2, 0, 0}));
  EXPECT_EQ(fx.scheduler.task(0).state, TaskState::LostToFailure);
  // Partially executed time is still billed.
  EXPECT_EQ(fx.scheduler.machine(0).busy_ticks, 2);
  // The queued task waits (mapped tasks cannot be remapped) and no start is
  // offered while the machine is down.
  EXPECT_EQ(fx.scheduler.task(1).state, TaskState::Queued);

  const auto& up = fx.scheduler.machine_up(7, 0);
  ASSERT_EQ(up.size(), 1u);
  EXPECT_EQ(up[0], (Decision{DecisionKind::Start, 7, 1, 0}));
  fx.scheduler.task_started(7, 0, 1);
  EXPECT_EQ(fx.scheduler.task(1).start_time, 7);
}

TEST(OnlineScheduler, ProactiveDropperStreamsDropDecisions) {
  // Types: 0 = 3 ticks, 1 = 10 ticks, 2 = 1 tick (the engine_test rescue
  // scenario, driven through the callback API).
  const PetMatrix pet = pet_of({{{{3, 1.0}}}, {{{10, 1.0}}}, {{{1, 1.0}}}});
  auto mapper = make_mapper("FCFS");
  ProactiveHeuristicDropper dropper;
  OnlineScheduler scheduler(pet, {0}, *mapper, dropper, OnlineConfig{});

  std::vector<Decision> all;
  const auto collect = [&all](const std::vector<Decision>& decisions) {
    all.insert(all.end(), decisions.begin(), decisions.end());
  };
  collect(scheduler.task_arrived(0, 0, 100));
  scheduler.task_started(0, 0, 0, 3);
  collect(scheduler.task_arrived(1, 1, 9));  // doomed: would finish at 13
  collect(scheduler.task_arrived(1, 2, 6));
  collect(scheduler.task_arrived(1, 2, 7));
  bool doomed_dropped = false;
  for (const Decision& decision : all) {
    if (decision.kind == DecisionKind::DropProactive && decision.task == 1) {
      doomed_dropped = true;
    }
  }
  EXPECT_TRUE(doomed_dropped);
  EXPECT_EQ(scheduler.task(1).state, TaskState::DroppedProactive);
}

TEST(OnlineScheduler, ClockMustBeMonotone) {
  LiveFixture fx;
  fx.scheduler.advance(10);
  EXPECT_THROW(fx.scheduler.advance(9), std::invalid_argument);
  EXPECT_THROW(fx.scheduler.task_arrived(5, 0, 100),
               std::invalid_argument);
  // Equal timestamps are fine (several events on one tick).
  EXPECT_NO_THROW(fx.scheduler.advance(10));
}

TEST(OnlineScheduler, RejectsBadConstruction) {
  const PetMatrix pet = deterministic_pet();
  auto mapper = make_mapper("FCFS");
  NullDropper dropper;
  EXPECT_THROW(OnlineScheduler(pet, {}, *mapper, dropper, OnlineConfig{}),
               std::invalid_argument);
  OnlineConfig config;
  config.queue_capacity = 0;
  EXPECT_THROW(OnlineScheduler(pet, {0}, *mapper, dropper, config),
               std::invalid_argument);
}

TEST(OnlineScheduler, DecisionRecordFormatIsStable) {
  std::ostringstream out;
  out << Decision{DecisionKind::Assign, 42, 7, 3} << '\n'
      << Decision{DecisionKind::ExpireUnmapped, 43, 8, -1};
  EXPECT_EQ(out.str(), "t=42 kind=assign task=7 machine=3\n"
                       "t=43 kind=expire_unmapped task=8");
}

TEST(OnlineScheduler, GeneralizesOverDynamicArrivalsWithoutRegistration) {
  // A steady stream through a 2-machine fleet, confirming every offer
  // immediately — the serve-daemon usage pattern.
  const PetMatrix pet = deterministic_pet();
  auto mapper = make_mapper("FCFS");
  ProactiveHeuristicDropper dropper;
  OnlineScheduler scheduler(pet, {0, 0}, *mapper, dropper, OnlineConfig{});

  // Live mode: no ground-truth durations are announced; the environment
  // simply reports finishes when they happen (here: 5 ticks of wall time
  // after the confirmed start).
  long long started = 0;
  long long finishes = 0;
  const auto confirm = [&](Tick t, const std::vector<Decision>& decisions) {
    for (const Decision& decision : decisions) {
      if (decision.kind == DecisionKind::Start) {
        scheduler.task_started(t, decision.machine, decision.task);
        ++started;
      }
    }
  };
  Tick t = 0;
  for (int i = 0; i < 200; ++i) {
    t += 1;
    for (MachineId m = 0; m < 2; ++m) {
      if (scheduler.machine(m).running &&
          t - scheduler.machine(m).run_start >= 5) {
        const std::vector<Decision> decisions = scheduler.task_finished(t, m);
        ++finishes;
        confirm(t, decisions);
      }
    }
    confirm(t, scheduler.task_arrived(t, 0, t + 40));
  }
  EXPECT_GT(started, 0);
  EXPECT_GT(finishes, 0);
  EXPECT_EQ(scheduler.task_count(), 200u);
  EXPECT_EQ(scheduler.mapping_events(), 200 + finishes);
}

}  // namespace
}  // namespace taskdrop
