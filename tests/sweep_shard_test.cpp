// Sharded sweep execution and shard-report merging: every shard count
// must merge back to the exact unsharded report (trial RNG is seeded per
// (cell, trial), so the partition cannot drift), the JSON round trip must
// be lossless, and malformed merges must be loud errors.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "exp/sweep.hpp"
#include "metrics/report.hpp"

namespace taskdrop {
namespace {

/// Canonical multi-axis grid (built through from_map so to_map is a
/// fixpoint, the precondition for sharding): 2 levels x 2 mappers x
/// 2 droppers = 8 cells x 3 trials = 24 units. Small tasks keep the
/// whole differential suite in seconds.
SweepSpec shard_spec() {
  return SweepSpec::from_map(parse_spec_text(
      "name = shard differential\n"
      "scenario = spec_hc\n"
      "mapper = PAM, MM\n"
      "dropper = heuristic, reactive\n"
      "levels = a:250:2.5, b:300:3\n"
      "trials = 3\n"
      "seed = 42\n"));
}

void expect_bitwise_equal(const TrialMetrics& a, const TrialMetrics& b) {
  EXPECT_EQ(a.robustness_pct, b.robustness_pct);
  EXPECT_EQ(a.utility_pct, b.utility_pct);
  EXPECT_EQ(a.total_cost, b.total_cost);
  EXPECT_EQ(a.normalized_cost, b.normalized_cost);
  EXPECT_EQ(a.reactive_drop_share_pct, b.reactive_drop_share_pct);
  EXPECT_EQ(a.completed_on_time, b.completed_on_time);
  EXPECT_EQ(a.completed_late, b.completed_late);
  EXPECT_EQ(a.dropped_reactive_queued, b.dropped_reactive_queued);
  EXPECT_EQ(a.dropped_proactive, b.dropped_proactive);
  EXPECT_EQ(a.expired_unmapped, b.expired_unmapped);
  EXPECT_EQ(a.lost_to_failure, b.lost_to_failure);
  EXPECT_EQ(a.approx_on_time, b.approx_on_time);
  EXPECT_EQ(a.mapping_events, b.mapping_events);
  EXPECT_EQ(a.dropper_invocations, b.dropper_invocations);
}

void expect_reports_bitwise_equal(const SweepReport& merged,
                                  const SweepReport& unsharded) {
  ASSERT_EQ(merged.cells.size(), unsharded.cells.size());
  EXPECT_EQ(merged.name, unsharded.name);
  EXPECT_EQ(merged.active_axes, unsharded.active_axes);
  for (std::size_t c = 0; c < merged.cells.size(); ++c) {
    const SweepCellResult& a = merged.cells[c];
    const SweepCellResult& b = unsharded.cells[c];
    EXPECT_EQ(a.point.mapper, b.point.mapper);
    EXPECT_EQ(a.point.dropper, b.point.dropper);
    EXPECT_EQ(a.point.level, b.point.level);
    ASSERT_EQ(a.result.trials.size(), b.result.trials.size());
    for (std::size_t t = 0; t < a.result.trials.size(); ++t) {
      expect_bitwise_equal(a.result.trials[t], b.result.trials[t]);
    }
    EXPECT_EQ(a.result.robustness.mean, b.result.robustness.mean);
    EXPECT_EQ(a.result.robustness.ci95, b.result.robustness.ci95);
    EXPECT_EQ(a.result.utility.mean, b.result.utility.mean);
    EXPECT_EQ(a.result.utility.ci95, b.result.utility.ci95);
    EXPECT_EQ(a.result.normalized_cost.mean, b.result.normalized_cost.mean);
    EXPECT_EQ(a.result.normalized_cost.ci95, b.result.normalized_cost.ci95);
    EXPECT_EQ(a.result.reactive_share.mean, b.result.reactive_share.mean);
    EXPECT_EQ(a.result.reactive_share.ci95, b.result.reactive_share.ci95);
  }
  // The strongest form of the contract: the rendered JSON documents match
  // byte for byte (both are complete reports, so both use the plain form).
  std::ostringstream a_json, b_json;
  write_sweep_json(a_json, merged);
  write_sweep_json(b_json, unsharded);
  EXPECT_EQ(a_json.str(), b_json.str());
}

/// Runs shard i/n, round-trips it through the JSON writer/reader exactly
/// as the CLI pipeline does, and returns the parsed shard document.
SweepShardReport run_shard_via_json(const SweepSpec& spec, int index,
                                    int count) {
  SweepOptions options;
  options.shard = ShardSpec{index, count};
  const SweepReport report = run_sweep(spec, options);
  EXPECT_TRUE(report.shard.has_value());
  std::ostringstream json;
  write_sweep_json(json, report);
  std::istringstream in(json.str());
  return read_sweep_shard_json(in);
}

TEST(SweepShards, EveryShardCountMergesBitwiseIdentical) {
  const SweepSpec spec = shard_spec();
  const SweepReport unsharded = run_sweep(spec);
  for (const int count : {1, 2, 3, 7}) {
    std::vector<SweepShardReport> shards;
    for (int i = 0; i < count; ++i) {
      shards.push_back(run_shard_via_json(spec, i, count));
    }
    const SweepReport merged = merge_sweep_reports(shards);
    SCOPED_TRACE("shard count " + std::to_string(count));
    expect_reports_bitwise_equal(merged, unsharded);
  }
}

TEST(SweepShards, OutOfOrderMergeIsIdentical) {
  const SweepSpec spec = shard_spec();
  const SweepReport unsharded = run_sweep(spec);
  std::vector<SweepShardReport> shards;
  for (int i = 0; i < 3; ++i) shards.push_back(run_shard_via_json(spec, i, 3));
  std::reverse(shards.begin(), shards.end());
  expect_reports_bitwise_equal(merge_sweep_reports(shards), unsharded);
}

TEST(SweepShards, PartitionCoversEveryUnitExactlyOnce) {
  const SweepSpec spec = shard_spec();
  const int count = 3;
  std::vector<int> owners(8 * 3, 0);
  for (int i = 0; i < count; ++i) {
    SweepOptions options;
    options.shard = ShardSpec{i, count};
    const SweepReport report = run_sweep(spec, options);
    ASSERT_EQ(report.cells.size(), 8u);
    for (std::size_t c = 0; c < report.cells.size(); ++c) {
      const SweepCellResult& cell = report.cells[c];
      ASSERT_EQ(cell.trial_indices.size(), cell.result.trials.size());
      for (const int t : cell.trial_indices) {
        EXPECT_TRUE(shard_owns(*report.shard, sweep_unit(c, t, spec.trials)));
        ++owners[sweep_unit(c, t, spec.trials)];
      }
    }
  }
  for (const int owner_count : owners) EXPECT_EQ(owner_count, 1);
}

TEST(SweepShards, DuplicateShardIsRejected) {
  const SweepSpec spec = shard_spec();
  std::vector<SweepShardReport> shards;
  shards.push_back(run_shard_via_json(spec, 0, 2));
  shards.push_back(run_shard_via_json(spec, 0, 2));
  EXPECT_THROW(merge_sweep_reports(shards), std::invalid_argument);
}

TEST(SweepShards, MissingShardIsRejected) {
  const SweepSpec spec = shard_spec();
  std::vector<SweepShardReport> shards;
  shards.push_back(run_shard_via_json(spec, 0, 3));
  shards.push_back(run_shard_via_json(spec, 2, 3));
  EXPECT_THROW(merge_sweep_reports(shards), std::invalid_argument);
  EXPECT_THROW(merge_sweep_reports({}), std::invalid_argument);
}

TEST(SweepShards, MismatchedHeadersAreRejected) {
  const SweepSpec spec = shard_spec();
  // Shard-count disagreement.
  {
    std::vector<SweepShardReport> shards;
    shards.push_back(run_shard_via_json(spec, 0, 2));
    shards.push_back(run_shard_via_json(spec, 1, 3));
    EXPECT_THROW(merge_sweep_reports(shards), std::invalid_argument);
  }
  // Spec disagreement (different seed => different canonical header).
  {
    SweepSpec other = spec;
    other.seed = 43;
    std::vector<SweepShardReport> shards;
    shards.push_back(run_shard_via_json(spec, 0, 2));
    shards.push_back(run_shard_via_json(other, 1, 2));
    EXPECT_THROW(merge_sweep_reports(shards), std::invalid_argument);
  }
  // A trial payload claimed by the wrong shard index.
  {
    std::vector<SweepShardReport> shards;
    shards.push_back(run_shard_via_json(spec, 0, 2));
    shards.push_back(run_shard_via_json(spec, 1, 2));
    ASSERT_FALSE(shards[1].trials.empty());
    shards[0].trials.push_back(shards[1].trials.front());
    EXPECT_THROW(merge_sweep_reports(shards), std::invalid_argument);
  }
}

TEST(SweepShards, ShardOptionsAreValidated) {
  const SweepSpec spec = shard_spec();
  SweepOptions options;
  options.shard = ShardSpec{3, 3};
  EXPECT_THROW(run_sweep(spec, options), std::invalid_argument);
  options.shard = ShardSpec{0, 0};
  EXPECT_THROW(run_sweep(spec, options), std::invalid_argument);
  options.shard = ShardSpec{-1, 2};
  EXPECT_THROW(run_sweep(spec, options), std::invalid_argument);

  // Series lists have no canonical to_map rendering, so sharding them
  // would produce unmergeable headers — rejected up front.
  SweepSpec series = spec;
  series.series = {{"PAM+Heuristic", "PAM", DropperConfig::heuristic()}};
  options.shard = ShardSpec{0, 2};
  EXPECT_THROW(run_sweep(series, options), std::invalid_argument);

  // A hand-built dropper variant list can render to a grid of the same
  // keys and size whose re-expansion orders cells differently — the
  // map-level fixpoint holds, but merging by cell index would attribute
  // payloads to the wrong cells. The guard must compare cell for cell.
  SweepSpec reordered = spec;
  reordered.droppers = {{"heuristic eta=2", DropperConfig::heuristic(2)},
                        {"approx eta=4", DropperConfig::approximate(4)},
                        {"heuristic eta=4", DropperConfig::heuristic(4)},
                        {"approx eta=2", DropperConfig::approximate(2)}};
  EXPECT_THROW(run_sweep(reordered, options), std::invalid_argument);
  // The same variants in grid order are canonical and shard fine.
  SweepSpec ordered = spec;
  ordered.droppers = {{"heuristic eta=2", DropperConfig::heuristic(2)},
                      {"heuristic eta=4", DropperConfig::heuristic(4)},
                      {"approx eta=2", DropperConfig::approximate(2)},
                      {"approx eta=4", DropperConfig::approximate(4)}};
  EXPECT_NO_THROW(run_sweep(ordered, options));
}

TEST(SweepShards, PlainJsonDumpIsNotMergeable) {
  SweepSpec spec = shard_spec();
  spec.trials = 1;
  const SweepReport report = run_sweep(spec);
  std::ostringstream json;
  write_sweep_json(json, report);
  std::istringstream in(json.str());
  EXPECT_THROW(read_sweep_shard_json(in), std::invalid_argument);
}

TEST(SweepShards, ShardJsonRoundTripsNonFiniteTrialValues) {
  const SweepSpec spec = shard_spec();
  SweepOptions options;
  options.shard = ShardSpec{0, 1};
  SweepReport report = run_sweep(spec, options);
  // Force the values JSON cannot represent natively through the round
  // trip: they must come back as the same class, not as null/zero.
  report.cells[0].result.trials[0].normalized_cost =
      std::numeric_limits<double>::infinity();
  report.cells[0].result.trials[1].total_cost =
      -std::numeric_limits<double>::infinity();
  report.cells[0].result.trials[2].utility_pct =
      std::numeric_limits<double>::quiet_NaN();
  std::ostringstream json;
  write_sweep_json(json, report);
  std::istringstream in(json.str());
  const SweepShardReport parsed = read_sweep_shard_json(in);
  const auto find_trial = [&](int trial) -> const TrialMetrics& {
    for (const auto& record : parsed.trials) {
      if (record.cell == 0 && record.trial == trial) return record.metrics;
    }
    throw std::out_of_range("trial not found");
  };
  EXPECT_TRUE(std::isinf(find_trial(0).normalized_cost));
  EXPECT_GT(find_trial(0).normalized_cost, 0.0);
  EXPECT_TRUE(std::isinf(find_trial(1).total_cost));
  EXPECT_LT(find_trial(1).total_cost, 0.0);
  EXPECT_TRUE(std::isnan(find_trial(2).utility_pct));
}

TEST(SweepShards, CorruptedNumbersAreLoudErrors) {
  // The token scanner accepts any run of number characters; conversion
  // must reject tokens strtod/stoll would silently truncate, or a
  // corrupted shard file merges with wrong metrics.
  SweepSpec spec = shard_spec();
  spec.trials = 1;
  SweepOptions options;
  options.shard = ShardSpec{0, 1};
  const SweepReport report = run_sweep(spec, options);
  std::ostringstream json;
  write_sweep_json(json, report);
  const std::string good = json.str();

  const auto corrupt = [&](const std::string& key,
                           const std::string& replacement) {
    std::string text = good;
    const auto pos = text.find("\"" + key + "\": ");
    ASSERT_NE(pos, std::string::npos);
    const auto value_begin = pos + key.size() + 4;
    const auto value_end = text.find_first_of(",}", value_begin);
    text.replace(value_begin, value_end - value_begin, replacement);
    std::istringstream in(text);
    EXPECT_THROW(read_sweep_shard_json(in), std::invalid_argument)
        << key << " = " << replacement;
  };
  corrupt("robustness_pct", "1.2.3");
  corrupt("robustness_pct", "1e");
  corrupt("completed_on_time", "1-2");
}

TEST(SweepShards, WorkerExceptionIsRethrownNotFatal) {
  // A dropper config whose construction fails only inside run_trial: the
  // registry never validated beta here, so make_dropper throws on the
  // pool worker. Before the exception-capture fix this terminated the
  // whole process (ThreadPool jobs must not throw).
  SweepSpec spec = shard_spec();
  DropperConfig bad = DropperConfig::heuristic();
  bad.beta = 0.5;
  spec.droppers = {{"bad beta", bad}};
  try {
    run_sweep(spec);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("beta"), std::string::npos);
  }
}

}  // namespace
}  // namespace taskdrop
