// Differential suite for the optimized convolution kernels.
//
// The workspace-based kernels in prob/convolution.cpp replace the original
// O(n*m) per-call-allocating implementations. Those originals are preserved
// verbatim below as `naive_reference` and the optimized kernels (both the
// allocating wrappers and the *_into workspace variants, including the
// chain-aliasing form) are checked against them on seeded random PMF pairs
// covering strides, deltas, empty/singleton edges, and deadlines inside and
// outside the predecessor support, to within 1e-12 per bin.
#include "prob/convolution.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "test_util.hpp"
#include "util/rng.hpp"

namespace taskdrop {
namespace naive_reference {

// The pre-optimization kernels, kept bit-for-bit as the reference
// implementation. Only valid for lattice-compatible inputs (the optimized
// kernels turn those misuses into exceptions; see the error-path tests).
Tick combined_stride(const Pmf& a, const Pmf& b) {
  if (a.size() <= 1) return b.size() <= 1 ? Tick{1} : b.stride();
  if (b.size() <= 1) return a.stride();
  return a.stride();
}

Pmf convolve(const Pmf& a, const Pmf& b) {
  if (a.empty() || b.empty()) return Pmf();
  const Tick stride = combined_stride(a, b);
  const Tick lo = a.min_time() + b.min_time();
  const Tick hi = a.max_time() + b.max_time();
  std::vector<double> out(static_cast<std::size_t>((hi - lo) / stride) + 1,
                          0.0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double pa = a.prob_at_index(i);
    if (pa == 0.0) continue;
    const Tick ta = a.time_at(i);
    for (std::size_t j = 0; j < b.size(); ++j) {
      const double pb = b.prob_at_index(j);
      if (pb == 0.0) continue;
      out[static_cast<std::size_t>((ta + b.time_at(j) - lo) / stride)] +=
          pa * pb;
    }
  }
  Pmf result(lo, stride, std::move(out));
  result.trim();
  return result;
}

Pmf deadline_convolve(const Pmf& pred, const Pmf& exec, Tick deadline) {
  if (pred.empty()) return Pmf();

  const bool has_conv = pred.min_time() < deadline;
  const bool has_pass = pred.max_time() >= deadline;
  if (!has_conv) return pred;

  const Tick stride = combined_stride(pred, exec);
  Tick last_start = pred.max_time();
  if (last_start >= deadline) {
    const Tick over = last_start - (deadline - 1);
    last_start -= ((over + stride - 1) / stride) * stride;
  }
  Tick lo = pred.min_time() + exec.min_time();
  Tick hi = last_start + exec.max_time();
  if (has_pass) {
    const Tick over = deadline - pred.min_time();
    const Tick pass_lo =
        pred.min_time() + ((over + stride - 1) / stride) * stride;
    lo = std::min(lo, pass_lo);
    hi = std::max(hi, pred.max_time());
  }
  std::vector<double> out(static_cast<std::size_t>((hi - lo) / stride) + 1,
                          0.0);
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double pk = pred.prob_at_index(i);
    if (pk == 0.0) continue;
    const Tick k = pred.time_at(i);
    if (k < deadline) {
      for (std::size_t j = 0; j < exec.size(); ++j) {
        const double pe = exec.prob_at_index(j);
        if (pe == 0.0) continue;
        out[static_cast<std::size_t>((k + exec.time_at(j) - lo) / stride)] +=
            pk * pe;
      }
    } else {
      out[static_cast<std::size_t>((k - lo) / stride)] += pk;
    }
  }
  Pmf result(lo, stride, std::move(out));
  result.trim();
  return result;
}

}  // namespace naive_reference

namespace {

using test::pmf_of;

constexpr double kTol = 1e-12;

/// Per-bin comparison over the union of both supports.
void expect_pmf_close(const Pmf& actual, const Pmf& expected,
                      const char* what, std::uint64_t seed) {
  ASSERT_EQ(actual.empty(), expected.empty())
      << what << " emptiness mismatch, seed " << seed;
  if (expected.empty()) return;
  ASSERT_EQ(actual.stride(), expected.stride())
      << what << " stride mismatch, seed " << seed;
  const Tick lo = std::min(actual.min_time(), expected.min_time());
  const Tick hi = std::max(actual.max_time(), expected.max_time());
  for (Tick t = lo; t <= hi; t += actual.stride()) {
    ASSERT_NEAR(actual.prob_at(t), expected.prob_at(t), kTol)
        << what << " at time " << t << ", seed " << seed;
  }
  ASSERT_NEAR(actual.total_mass(), expected.total_mass(), kTol)
      << what << " mass, seed " << seed;
}

/// Random PMF on a stride lattice: mixes empties, deltas, singletons,
/// interior zeros, unnormalised masses, and varying offsets/sizes.
Pmf random_pmf(Rng& rng, Tick stride, bool allow_empty) {
  const auto shape = rng.uniform_int(0, 9);
  if (allow_empty && shape == 0) return Pmf();
  const Tick offset = stride * rng.uniform_int(0, 30);
  if (shape == 1) return Pmf::delta(offset);
  if (shape == 2) {
    // Singleton with non-unit mass (sub-probability impulse).
    return Pmf(offset, stride, {rng.uniform(0.05, 1.0)});
  }
  const auto bins = static_cast<std::size_t>(rng.uniform_int(2, 48));
  std::vector<double> probs(bins);
  for (double& p : probs) {
    p = rng.uniform01() < 0.2 ? 0.0 : rng.uniform(0.0, 1.0);
  }
  // Ensure the edges carry mass most of the time so trimming stays
  // interesting but not dominant.
  probs.front() = rng.uniform01() < 0.8 ? rng.uniform(0.1, 1.0) : 0.0;
  probs.back() = rng.uniform01() < 0.8 ? rng.uniform(0.1, 1.0) : 0.0;
  Pmf pmf(offset, stride, std::move(probs));
  if (rng.uniform01() < 0.7) pmf.normalize();
  return pmf;
}

Tick stride_for(Rng& rng) {
  constexpr Tick kStrides[] = {1, 2, 5};
  return kStrides[rng.uniform_int(0, 2)];
}

class ConvolutionDifferentialTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConvolutionDifferentialTest, ConvolveMatchesNaive) {
  Rng rng(GetParam() * 0x9E3779B97F4A7C15ull + 1);
  PmfWorkspace ws;
  Pmf reused;  // persistent out-param: exercises capacity reuse
  for (int round = 0; round < 4; ++round) {
    const Tick stride = stride_for(rng);
    const Pmf a = random_pmf(rng, stride, /*allow_empty=*/true);
    const Pmf b = random_pmf(rng, stride, /*allow_empty=*/true);
    const Pmf expected = naive_reference::convolve(a, b);
    expect_pmf_close(convolve(a, b), expected, "convolve", GetParam());
    convolve_into(a, b, ws, reused);
    expect_pmf_close(reused, expected, "convolve_into", GetParam());
  }
}

TEST_P(ConvolutionDifferentialTest, DeadlineConvolveMatchesNaive) {
  Rng rng(GetParam() * 0xBF58476D1CE4E5B9ull + 7);
  PmfWorkspace ws;
  Pmf reused;
  for (int round = 0; round < 2; ++round) {
    const Tick stride = stride_for(rng);
    const Pmf pred = random_pmf(rng, stride, /*allow_empty=*/true);
    Pmf exec = random_pmf(rng, stride, /*allow_empty=*/false);
    if (exec.empty()) exec = Pmf::delta(stride);
    // Deadlines spanning every truncation regime: certain drop (at or
    // below the support), mixed (inside), and pure convolution (beyond).
    std::vector<Tick> deadlines;
    if (!pred.empty()) {
      deadlines = {pred.min_time() - 3, pred.min_time(),
                   (pred.min_time() + pred.max_time()) / 2 + 1,
                   pred.max_time(), pred.max_time() + stride,
                   pred.max_time() + exec.max_time() + 11};
    } else {
      deadlines = {0, 17};
    }
    for (const Tick deadline : deadlines) {
      const Pmf expected =
          naive_reference::deadline_convolve(pred, exec, deadline);
      expect_pmf_close(deadline_convolve(pred, exec, deadline), expected,
                       "deadline_convolve", GetParam());
      deadline_convolve_into(pred, exec, deadline, ws, reused);
      expect_pmf_close(reused, expected, "deadline_convolve_into",
                       GetParam());
      // Chain-aliasing form: out is also the predecessor (the droppers'
      // provisional-chain idiom).
      ws.chain = pred;
      deadline_convolve_into(ws.chain, exec, deadline, ws, ws.chain);
      expect_pmf_close(ws.chain, expected, "aliased deadline_convolve_into",
                       GetParam());
    }
  }
}

// 50 seeds x 4 convolve pairs and 50 seeds x 2 preds x 6 deadlines
// ~= 200 random pairs per kernel, as the lockdown suite promises.
INSTANTIATE_TEST_SUITE_P(SeededPairs, ConvolutionDifferentialTest,
                         ::testing::Range<std::uint64_t>(1, 51));

// ------------------------- error paths -------------------------
//
// The stride-mismatch check used to be assert-only, so Release builds
// silently produced a garbage lattice; it is now a real error path.

TEST(ConvolutionErrors, StrideMismatchThrows) {
  const Pmf a = pmf_of({{0, 0.5}, {3, 0.5}}, 3);
  const Pmf b = pmf_of({{0, 0.5}, {5, 0.5}}, 5);
  EXPECT_THROW(convolve(a, b), std::invalid_argument);
  EXPECT_THROW(deadline_convolve(a, b, 100), std::invalid_argument);
  PmfWorkspace ws;
  Pmf out;
  EXPECT_THROW(convolve_into(a, b, ws, out), std::invalid_argument);
  EXPECT_THROW(deadline_convolve_into(a, b, 100, ws, out),
               std::invalid_argument);
}

TEST(ConvolutionErrors, SingleImpulseSidestepsStrideMismatch) {
  // Deltas are stride-agnostic shifts: no error even though strides differ.
  const Pmf delta = Pmf::delta(7);
  const Pmf b = pmf_of({{0, 0.5}, {5, 0.5}}, 5);
  EXPECT_NO_THROW(convolve(delta, b));
  EXPECT_NEAR(convolve(delta, b).total_mass(), 1.0, kTol);
}

TEST(ConvolutionErrors, EmptyExecThrows) {
  const Pmf pred = pmf_of({{0, 0.5}, {1, 0.5}});
  EXPECT_THROW(deadline_convolve(pred, Pmf(), 10), std::invalid_argument);
}

TEST(ConvolutionErrors, OffLatticeExecWithPassThroughThrows) {
  // Pass-through bins exist (deadline inside pred support) and the exec
  // offset 7 is not a multiple of stride 5: the two lattices cannot merge.
  const Pmf pred = pmf_of({{10, 0.5}, {20, 0.5}}, 5);
  const Pmf exec = pmf_of({{7, 0.5}, {12, 0.5}}, 5);
  EXPECT_THROW(deadline_convolve(pred, exec, 15), std::invalid_argument);
  // Without pass-through bins the result lives purely on pred + exec, so
  // the same inputs are fine with a late deadline.
  EXPECT_NO_THROW(deadline_convolve(pred, exec, 1000));
}

TEST(ConvolutionErrors, OffLatticeDeltaExecWithPassThroughThrows) {
  // A single-impulse exec is normally a stride-agnostic shift, but mixed
  // with pass-through bins the shifted and unshifted lattices cannot
  // merge either — this must throw, not write a garbage (or out-of-range)
  // bin.
  const Pmf pred = pmf_of({{0, 0.4}, {10, 0.3}, {20, 0.3}}, 10);
  const Pmf delta_exec = Pmf::delta(7);
  EXPECT_THROW(deadline_convolve(pred, delta_exec, 15),
               std::invalid_argument);
  // On-lattice delta: fine, and equal to the naive reference.
  const Pmf aligned = Pmf::delta(10);
  expect_pmf_close(deadline_convolve(pred, aligned, 15),
                   naive_reference::deadline_convolve(pred, aligned, 15),
                   "aligned delta exec", 0);
  // Off-lattice delta without pass-through bins: a pure shift, still fine.
  EXPECT_NO_THROW(deadline_convolve(pred, delta_exec, 1000));
  expect_pmf_close(deadline_convolve(pred, delta_exec, 1000),
                   naive_reference::deadline_convolve(pred, delta_exec, 1000),
                   "off-lattice delta exec, no pass-through", 0);
}

}  // namespace
}  // namespace taskdrop
