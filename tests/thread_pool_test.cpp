#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace taskdrop {
namespace {

TEST(ThreadPool, ParallelForVisitsEveryIndexExactlyOnce) {
  constexpr std::size_t kCount = 500;
  std::vector<std::atomic<int>> visits(kCount);
  ThreadPool::parallel_for(kCount,
                           [&](std::size_t i) { visits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForZeroCountIsNoOp) {
  ThreadPool::parallel_for(0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPool, ParallelForRethrowsTheFirstException) {
  // A throwing body used to escape a pool worker and std::terminate;
  // parallel_for now captures the first exception, skips the remaining
  // iterations, and rethrows on the calling thread.
  try {
    ThreadPool::parallel_for(64, [](std::size_t i) {
      if (i == 3) throw std::runtime_error("boom at 3");
    });
    FAIL() << "expected runtime_error";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("boom"), std::string::npos);
  }
  // The pool stays usable for the next call.
  std::atomic<int> visits{0};
  ThreadPool::parallel_for(8, [&](std::size_t) { visits.fetch_add(1); });
  EXPECT_EQ(visits.load(), 8);
}

TEST(ThreadPool, ResultsLandInCallerOwnedSlots) {
  constexpr std::size_t kCount = 64;
  std::vector<double> out(kCount, 0.0);
  ThreadPool::parallel_for(kCount, [&](std::size_t i) {
    out[i] = static_cast<double>(i) * 2.0;
  });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_DOUBLE_EQ(out[i], 2.0 * static_cast<double>(i));
  }
}

TEST(ThreadPool, SubmitAndWaitIdle) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ReusableAfterWaitIdle) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPool, DestructorDrainsOutstandingJobs) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
    // No wait_idle: the destructor must finish the queue before joining.
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, WaitIdleOnFreshPoolReturnsImmediately) {
  ThreadPool pool(1);
  pool.wait_idle();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPool, SingleThreadPoolRunsEverything) {
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    pool.submit([&order, i] { order.push_back(i); });
  }
  pool.wait_idle();
  // One worker: submission order is execution order.
  std::vector<int> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

}  // namespace
}  // namespace taskdrop
