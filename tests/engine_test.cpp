#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include "core/null_dropper.hpp"
#include "core/proactive_heuristic_dropper.hpp"
#include "sched/registry.hpp"
#include "test_util.hpp"
#include "workload/generator.hpp"
#include "workload/scenario.hpp"

namespace taskdrop {
namespace {

using test::pet_of;

/// Deterministic single-type PET: every execution takes exactly 5 ticks.
PetMatrix deterministic_pet() { return pet_of({{{{5, 1.0}}}}); }

SimResult run_fcfs(const PetMatrix& pet, const Trace& trace,
                   std::vector<MachineTypeId> machines, int capacity,
                   Dropper* dropper = nullptr) {
  auto mapper = make_mapper("FCFS");
  NullDropper null_dropper;
  EngineConfig config;
  config.queue_capacity = capacity;
  Engine engine(pet, std::move(machines), *mapper,
                dropper != nullptr ? *dropper : null_dropper, config);
  return engine.run(trace);
}

TEST(Engine, DeterministicPipelineOnOneMachine) {
  const PetMatrix pet = deterministic_pet();
  const Trace trace = {{0, 0, 1000}, {0, 1, 1000}, {0, 2, 1000}};
  const SimResult result = run_fcfs(pet, trace, {0}, 2);

  // Task 0 runs [0, 5), task 1 [5, 10). Task 2 does not fit in the 2-slot
  // queue at arrival; it is mapped when task 0 completes and runs [10, 15).
  ASSERT_EQ(result.tasks.size(), 3u);
  EXPECT_EQ(result.tasks[0].start_time, 0);
  EXPECT_EQ(result.tasks[0].finish_time, 5);
  EXPECT_EQ(result.tasks[1].finish_time, 10);
  EXPECT_EQ(result.tasks[2].finish_time, 15);
  for (const Task& task : result.tasks) {
    EXPECT_EQ(task.state, TaskState::CompletedOnTime);
    EXPECT_EQ(task.actual_execution, 5);
  }
  EXPECT_EQ(result.makespan, 15);
  EXPECT_EQ(result.busy_ticks.at(0), 15);
  const SimCounts counts = result.counts();
  EXPECT_EQ(counts.completed_on_time, 3);
  EXPECT_EQ(counts.total(), 3);
}

TEST(Engine, ClassifiesLateCompletionStrictly) {
  const PetMatrix pet = deterministic_pet();
  // Finish at exactly the deadline is late (Eq. 2 counts t < delta only).
  const Trace trace = {{0, 0, 5}};
  const SimResult result = run_fcfs(pet, trace, {0}, 2);
  EXPECT_EQ(result.tasks[0].state, TaskState::CompletedLate);

  const Trace trace_ok = {{0, 0, 6}};
  const SimResult result_ok = run_fcfs(pet, trace_ok, {0}, 2);
  EXPECT_EQ(result_ok.tasks[0].state, TaskState::CompletedOnTime);
}

TEST(Engine, ReactivelyDropsQueuedTaskWhoseDeadlinePassed) {
  const PetMatrix pet = deterministic_pet();
  // Task 1 queues behind task 0 but its deadline (4) passes while waiting;
  // it is reactively dropped from the machine queue.
  const Trace trace = {{0, 0, 1000}, {0, 1, 4}};
  const SimResult result = run_fcfs(pet, trace, {0}, 2);
  EXPECT_EQ(result.tasks[1].state, TaskState::DroppedReactive);
  EXPECT_EQ(result.tasks[1].machine, 0);  // was mapped -> queue-level drop
  const SimCounts counts = result.counts();
  EXPECT_EQ(counts.dropped_reactive_queued, 1);
  EXPECT_EQ(counts.expired_unmapped, 0);
}

TEST(Engine, ExpiresUnmappedTaskInBatchQueue) {
  const PetMatrix pet = deterministic_pet();
  // Capacity 1: task 1 cannot be mapped while task 0 runs; its deadline
  // passes in the batch queue.
  const Trace trace = {{0, 0, 1000}, {0, 1, 4}};
  const SimResult result = run_fcfs(pet, trace, {0}, 1);
  EXPECT_EQ(result.tasks[1].state, TaskState::DroppedReactive);
  EXPECT_EQ(result.tasks[1].machine, -1);  // never mapped
  const SimCounts counts = result.counts();
  EXPECT_EQ(counts.expired_unmapped, 1);
  EXPECT_EQ(counts.dropped_reactive_queued, 0);
}

TEST(Engine, NeverStartsATaskAtOrPastItsDeadline) {
  const PetMatrix pet = deterministic_pet();
  // Task 1's deadline is exactly when the machine frees up (5): it must be
  // dropped, not started (a task must *begin* before its deadline).
  const Trace trace = {{0, 0, 1000}, {0, 1, 5}};
  const SimResult result = run_fcfs(pet, trace, {0}, 2);
  EXPECT_EQ(result.tasks[1].state, TaskState::DroppedReactive);
  EXPECT_EQ(result.tasks[1].start_time, kNeverTick);
}

TEST(Engine, AllTasksReachTerminalStates) {
  const Scenario scenario = make_scenario(ScenarioKind::SpecHC, 3);
  WorkloadConfig workload;
  workload.n_tasks = 400;
  workload.oversubscription = 3.0;
  workload.seed = 3;
  const Trace trace =
      generate_trace(scenario.pet, scenario.machine_count(), workload);
  auto mapper = make_mapper("PAM");
  ProactiveHeuristicDropper dropper;
  Engine engine(scenario.pet, scenario.profile.machine_types, *mapper, dropper,
                EngineConfig{});
  const SimResult result = engine.run(trace);
  ASSERT_EQ(result.tasks.size(), 400u);
  for (const Task& task : result.tasks) {
    EXPECT_TRUE(is_terminal(task.state)) << to_string(task.state);
  }
  EXPECT_EQ(result.counts().total(), 400);
  EXPECT_GT(result.mapping_events, 400);  // arrivals + completions
}

TEST(Engine, BusyTicksEqualExecutedDurations) {
  const Scenario scenario = make_scenario(ScenarioKind::SpecHC, 4);
  WorkloadConfig workload;
  workload.n_tasks = 200;
  workload.oversubscription = 2.0;
  workload.seed = 4;
  const Trace trace =
      generate_trace(scenario.pet, scenario.machine_count(), workload);
  auto mapper = make_mapper("MM");
  NullDropper dropper;
  Engine engine(scenario.pet, scenario.profile.machine_types, *mapper, dropper,
                EngineConfig{});
  const SimResult result = engine.run(trace);

  std::vector<Tick> executed(result.busy_ticks.size(), 0);
  for (const Task& task : result.tasks) {
    if (task.state == TaskState::CompletedOnTime ||
        task.state == TaskState::CompletedLate) {
      executed[static_cast<std::size_t>(task.machine)] +=
          task.actual_execution;
    }
  }
  EXPECT_EQ(result.busy_ticks, executed);
}

TEST(Engine, RunIsDeterministicAndReusable) {
  const Scenario scenario = make_scenario(ScenarioKind::SpecHC, 5);
  WorkloadConfig workload;
  workload.n_tasks = 300;
  workload.oversubscription = 3.0;
  workload.seed = 5;
  const Trace trace =
      generate_trace(scenario.pet, scenario.machine_count(), workload);
  auto mapper = make_mapper("PAM");
  ProactiveHeuristicDropper dropper;
  Engine engine(scenario.pet, scenario.profile.machine_types, *mapper, dropper,
                EngineConfig{});
  const SimResult first = engine.run(trace);
  const SimResult second = engine.run(trace);
  ASSERT_EQ(first.tasks.size(), second.tasks.size());
  for (std::size_t i = 0; i < first.tasks.size(); ++i) {
    EXPECT_EQ(first.tasks[i].state, second.tasks[i].state) << i;
    EXPECT_EQ(first.tasks[i].finish_time, second.tasks[i].finish_time) << i;
  }
  EXPECT_EQ(first.makespan, second.makespan);
}

TEST(Engine, ProactiveDropperRescuesBlockedTasks) {
  // Types: 0 = 3 ticks, 1 = 10 ticks, 2 = 1 tick. Task 0 runs first; the
  // doomed type-1 task queues behind it (would finish at 13, deadline 9)
  // and blocks two 1-tick tasks whose deadlines (6, 7) it would burn.
  const PetMatrix pet = pet_of({{{{3, 1.0}}}, {{{10, 1.0}}}, {{{1, 1.0}}}});
  const Trace trace = {{0, 0, 100}, {1, 1, 9}, {2, 1, 6}, {2, 1, 7}};

  auto mapper = make_mapper("FCFS");
  {
    NullDropper reactive_only;
    Engine engine(pet, {0}, *mapper, reactive_only, EngineConfig{});
    const SimResult result = engine.run(trace);
    // Only task 0 makes it: the doomed task runs [3, 13) and is late; both
    // short tasks expire while it hogs the machine.
    EXPECT_EQ(result.counts().completed_on_time, 1);
    EXPECT_EQ(result.tasks[1].state, TaskState::CompletedLate);
  }
  {
    ProactiveHeuristicDropper heuristic;
    Engine engine(pet, {0}, *mapper, heuristic, EngineConfig{});
    const SimResult result = engine.run(trace);
    EXPECT_EQ(result.counts().completed_on_time, 3);
    EXPECT_EQ(result.tasks[1].state, TaskState::DroppedProactive);
  }
}

TEST(Engine, EngagementPolicyChangesDropperInvocations) {
  const Scenario scenario = make_scenario(ScenarioKind::SpecHC, 6);
  WorkloadConfig workload;
  workload.n_tasks = 300;
  workload.oversubscription = 3.0;
  workload.seed = 6;
  const Trace trace =
      generate_trace(scenario.pet, scenario.machine_count(), workload);

  auto run_with = [&](DropperEngagement engagement) {
    auto mapper = make_mapper("PAM");
    ProactiveHeuristicDropper dropper;
    EngineConfig config;
    config.engagement = engagement;
    Engine engine(scenario.pet, scenario.profile.machine_types, *mapper,
                  dropper, config);
    return engine.run(trace);
  };
  const SimResult every = run_with(DropperEngagement::EveryMappingEvent);
  const SimResult on_miss = run_with(DropperEngagement::OnDeadlineMiss);
  EXPECT_GT(every.dropper_invocations, on_miss.dropper_invocations);
  EXPECT_EQ(every.dropper_invocations, every.mapping_events);
}

TEST(Engine, EmptyTraceYieldsEmptyResult) {
  const PetMatrix pet = deterministic_pet();
  const SimResult result = run_fcfs(pet, {}, {0}, 2);
  EXPECT_TRUE(result.tasks.empty());
  EXPECT_EQ(result.counts().total(), 0);
  EXPECT_DOUBLE_EQ(result.robustness_pct(), 0.0);
}

}  // namespace
}  // namespace taskdrop
