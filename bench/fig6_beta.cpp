#include "figure_main.hpp"

int main(int argc, char** argv) {
  return taskdrop::benchmain::run_figure(
      argc, argv,
      "Fig. 6 — impact of the robustness improvement factor (beta) on system "
      "robustness (PAM + proactive dropping heuristic)",
      taskdrop::fig6_beta);
}
