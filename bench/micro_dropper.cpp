// Micro benchmarks for section IV-F, factor (A): the per-mapping-event cost
// of the dropping mechanisms as a function of machine-queue depth q. The
// heuristic needs O(eta * q) convolutions while the optimal subset search
// needs O(q * 2^(q-1)) — this bench makes the gap concrete.
#include <benchmark/benchmark.h>

#include <memory>

#include "core/optimal_dropper.hpp"
#include "core/proactive_heuristic_dropper.hpp"
#include "core/sandbox.hpp"
#include "core/threshold_dropper.hpp"
#include "workload/scenario.hpp"

namespace {

using namespace taskdrop;

const Scenario& scenario() {
  static const Scenario s = make_scenario(ScenarioKind::SpecHC, 42);
  return s;
}

/// Builds one machine whose queue holds `depth` tasks with deadlines tight
/// enough that dropping decisions are non-trivial.
std::unique_ptr<SystemSandbox> make_queue(int depth) {
  const Scenario& scn = scenario();
  auto sandbox = std::make_unique<SystemSandbox>(
      scn.pet, std::vector<MachineTypeId>{0}, /*queue_capacity=*/depth + 1);
  const double mean = scn.pet.mean_overall();
  for (int i = 0; i < depth; ++i) {
    const auto type = static_cast<TaskTypeId>(i % scn.pet.task_type_count());
    const auto deadline =
        static_cast<Tick>(mean * (1.0 + 0.4 * static_cast<double>(i)));
    sandbox->enqueue(0, type, deadline);
  }
  return sandbox;
}

template <typename DropperT>
void run_dropper_bench(benchmark::State& state, DropperT& dropper) {
  const int depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto sandbox = make_queue(depth);
    state.ResumeTiming();
    dropper.run(sandbox->view(), *sandbox);
    benchmark::DoNotOptimize(sandbox->dropped.size());
  }
}

void BM_HeuristicDropper(benchmark::State& state) {
  ProactiveHeuristicDropper dropper;
  run_dropper_bench(state, dropper);
}
BENCHMARK(BM_HeuristicDropper)->DenseRange(2, 8);

void BM_OptimalDropper(benchmark::State& state) {
  OptimalDropper dropper;
  run_dropper_bench(state, dropper);
}
BENCHMARK(BM_OptimalDropper)->DenseRange(2, 8);

void BM_ThresholdDropper(benchmark::State& state) {
  ThresholdDropper dropper;
  run_dropper_bench(state, dropper);
}
BENCHMARK(BM_ThresholdDropper)->DenseRange(2, 8);

}  // namespace

BENCHMARK_MAIN();
